/* LULESH — mini-Chapel port of the Livermore Unstructured Lagrangian
   Explicit Shock Hydrodynamics proxy app, following the Chapel version
   profiled in the paper (§V.C).

   Structure mirrors the paper's call tree: main drives LagrangeLeapFrog,
   which does the nodal phase (CalcForceForNodes -> CalcVolumeForceForElems
   -> IntegrateStressForElems + CalcHourglassControlForElems ->
   CalcFBHourglassForceForElems -> CalcElemFBHourglassForce) and the
   element phase. The variables of Table VI appear with their original
   names and contexts: hgfx/hgfy/hgfz and hourgam/hourmodx(y/z) in
   CalcFBHourglassForceForElems, shx/hx in CalcElemFBHourglassForce,
   determ in CalcVolumeForceForElems, dvdx(y/z) in
   CalcHourglassControlForElems, b_x(y/z) in IntegrateStressForElems.

   The three 'param' markers (tagged P1-P3) are the loop-unrolling locations of
   Table VII; benchmarks generate the P-variants by dropping individual
   markers. This ORIGINAL version ships with all three `param` keywords,
   local (per-call) determ/dvdx arrays (the VG opportunity) and
   tuple-temporary face normals in CalcElemNodeNormals (the CENN
   opportunity).                                                          */

config const edgeElems = 6;       // scaled from the paper's 15
config const numSteps = 3;
config const hgcoef = 3.0;
config const dtfixed = 0.0001;

const numElems = edgeElems * edgeElems * edgeElems;
const Elems = {0..#numElems};
const edgeNodes = edgeElems + 1;
const numNodes = edgeNodes * edgeNodes * edgeNodes;
const Nodes = {0..#numNodes};

/* Hourglass shape vectors (4 modes x 8 nodes). */
const gammaCoef: 4*(8*real) =
    (( 1.0,  1.0, -1.0, -1.0, -1.0, -1.0,  1.0,  1.0),
     ( 1.0, -1.0, -1.0,  1.0, -1.0,  1.0,  1.0, -1.0),
     ( 1.0, -1.0,  1.0, -1.0,  1.0, -1.0,  1.0, -1.0),
     (-1.0,  1.0, -1.0,  1.0,  1.0, -1.0, -1.0,  1.0));

/* Nodal fields. */
var x: [Nodes] real;
var y: [Nodes] real;
var z: [Nodes] real;
var xd: [Nodes] real;
var yd: [Nodes] real;
var zd: [Nodes] real;
var fx: [Nodes] real;
var fy: [Nodes] real;
var fz: [Nodes] real;

/* Element fields. */
var e: [Elems] real;
var p: [Elems] real;
var volo: [Elems] real;
var elemToNode: [Elems] 8*int;

proc initMesh() {
  forall n in Nodes {
    var nz = n / (edgeNodes * edgeNodes);
    var rem = n % (edgeNodes * edgeNodes);
    var ny = rem / edgeNodes;
    var nx = rem % edgeNodes;
    x[n] = 1.125 * nx / edgeElems;
    y[n] = 1.125 * ny / edgeElems;
    z[n] = 1.125 * nz / edgeElems;
    xd[n] = 0.0;
    yd[n] = 0.0;
    zd[n] = 0.0;
  }
  forall i in Elems {
    var ez = i / (edgeElems * edgeElems);
    var rem = i % (edgeElems * edgeElems);
    var ey = rem / edgeElems;
    var ex = rem % edgeElems;
    var n0 = ez * edgeNodes * edgeNodes + ey * edgeNodes + ex;
    elemToNode[i] = (n0, n0 + 1, n0 + edgeNodes + 1, n0 + edgeNodes,
                     n0 + edgeNodes * edgeNodes, n0 + edgeNodes * edgeNodes + 1,
                     n0 + edgeNodes * edgeNodes + edgeNodes + 1,
                     n0 + edgeNodes * edgeNodes + edgeNodes);
    volo[i] = 1.0 / (edgeElems * edgeElems * edgeElems);
    e[i] = 0.0;
    p[i] = 0.0;
  }
  e[0] = 3.948746e+7 / numElems;   // initial energy deposition, scaled
}

/* Gather one nodal field at an element's corners. */
proc gatherElem(i: int, src: [Nodes] real): 8*real {
  var t: 8*real;
  var c = elemToNode[i];
  for param k in 1..8 {
    t(k) = src[c(k)];
  }
  return t;
}

/* Partial face normal from two edge vectors (CENN helper). */
proc faceNormal(ax: real, ay: real, az: real, bx: real, by: real, bz: real): 3*real {
  return (ay*bz - az*by, az*bx - ax*bz, ax*by - ay*bx);
}

/* Compute node normals of an element from its corner coordinates. The
   partial results of each face are produced in tuple temporaries and
   accumulated with whole-tuple additions — the construct/destruct churn
   the paper's CENN optimization removes. */
proc CalcElemNodeNormals(ref b_x: 8*real, ref b_y: 8*real, ref b_z: 8*real,
                         x8: 8*real, y8: 8*real, z8: 8*real) {
  for param f in 1..6 {
    var n = faceNormal(x8(f%8+1) - x8(f), y8(f%8+1) - y8(f), z8(f%8+1) - z8(f),
                       x8(f%4+1) - x8(f), y8(f%4+1) - y8(f), z8(f%4+1) - z8(f));
    var tx: 8*real;
    var ty: 8*real;
    var tz: 8*real;
    tx(f) = n(1) * 0.25;
    tx(f%8+1) = n(1) * 0.25;
    ty(f) = n(2) * 0.25;
    ty(f%8+1) = n(2) * 0.25;
    tz(f) = n(3) * 0.25;
    tz(f%8+1) = n(3) * 0.25;
    b_x = b_x + tx;
    b_y = b_y + ty;
    b_z = b_z + tz;
  }
}

/* Element volume from corner coordinates (simplified hexahedron). */
proc CalcElemVolume(x8: 8*real, y8: 8*real, z8: 8*real): real {
  var dv = 0.0;
  for param k in 1..4 {
    dv = dv + (x8(k+4) - x8(k)) * (y8(k%4+1) - y8(k)) * (z8(k%4+1) - z8(k+4));
  }
  return 0.25 * dv + 0.7 / numElems;
}

proc IntegrateStressForElems(determ: [Elems] real) {
  forall i in Elems {
    var b_x: 8*real;
    var b_y: 8*real;
    var b_z: 8*real;
    var x8 = gatherElem(i, x);
    var y8 = gatherElem(i, y);
    var z8 = gatherElem(i, z);
    CalcElemNodeNormals(b_x, b_y, b_z, x8, y8, z8);
    determ[i] = CalcElemVolume(x8, y8, z8);
    var stress = 0.0 - p[i] - e[i] * 0.3;
    var c = elemToNode[i];
    for param k in 1..8 {
      fx[c(k)] = fx[c(k)] + b_x(k) * stress;
      fy[c(k)] = fy[c(k)] + b_y(k) * stress;
      fz[c(k)] = fz[c(k)] + b_z(k) * stress;
    }
  }
}

proc CalcElemFBHourglassForce(ref hgfx: 8*real, ref hgfy: 8*real, ref hgfz: 8*real,
                              ref hourgam: 8*(4*real),
                              xd8: 8*real, yd8: 8*real, zd8: 8*real,
                              coefficient: real) {
  var hx: 4*real;
  var hy: 4*real;
  var hz: 4*real;
  for /*P2*/param i in 1..4 {
    var shx = 0.0;
    var shy = 0.0;
    var shz = 0.0;
    for param j in 1..8 {
      shx = shx + xd8(j) * hourgam(j)(i);
      shy = shy + yd8(j) * hourgam(j)(i);
      shz = shz + zd8(j) * hourgam(j)(i);
    }
    hx(i) = shx;
    hy(i) = shy;
    hz(i) = shz;
  }
  for /*P3*/param i in 1..8 {
    var hgx = 0.0;
    var hgy = 0.0;
    var hgz = 0.0;
    for param j in 1..4 {
      hgx = hgx + hourgam(i)(j) * hx(j);
      hgy = hgy + hourgam(i)(j) * hy(j);
      hgz = hgz + hourgam(i)(j) * hz(j);
    }
    hgfx(i) = hgx * coefficient;
    hgfy(i) = hgy * coefficient;
    hgfz(i) = hgz * coefficient;
  }
}

proc CalcFBHourglassForceForElems(determ: [Elems] real,
                                  dvdx: [Elems] 8*real,
                                  dvdy: [Elems] 8*real,
                                  dvdz: [Elems] 8*real) {
  forall i in Elems {
    var hourgam: 8*(4*real);
    var hourmodx = 0.0;
    var hourmody = 0.0;
    var hourmodz = 0.0;
    var volinv = 1.0 / determ[i];
    var x8 = gatherElem(i, x);
    var y8 = gatherElem(i, y);
    var z8 = gatherElem(i, z);
    /* The hot loop block of the paper's Fig. 5. */
    for /*P1*/param j in 1..4 {
      hourmodx = 0.0;
      hourmody = 0.0;
      hourmodz = 0.0;
      for param k in 1..8 {
        hourmodx = hourmodx + x8(k) * gammaCoef(j)(k);
        hourmody = hourmody + y8(k) * gammaCoef(j)(k);
        hourmodz = hourmodz + z8(k) * gammaCoef(j)(k);
      }
      for param k in 1..8 {
        hourgam(k)(j) = gammaCoef(j)(k) - volinv * (dvdx[i](k) * hourmodx +
                                                    dvdy[i](k) * hourmody +
                                                    dvdz[i](k) * hourmodz);
      }
    }
    var hgfx: 8*real;
    var hgfy: 8*real;
    var hgfz: 8*real;
    var xd8 = gatherElem(i, xd);
    var yd8 = gatherElem(i, yd);
    var zd8 = gatherElem(i, zd);
    var coefficient = 0.0 - hgcoef * 0.01 * volinv;
    CalcElemFBHourglassForce(hgfx, hgfy, hgfz, hourgam, xd8, yd8, zd8, coefficient);
    var c = elemToNode[i];
    for param k in 1..8 {
      fx[c(k)] = fx[c(k)] + hgfx(k);
      fy[c(k)] = fy[c(k)] + hgfy(k);
      fz[c(k)] = fz[c(k)] + hgfz(k);
    }
  }
}

proc CalcHourglassControlForElems(determ: [Elems] real) {
  var dvdx: [Elems] 8*real;
  var dvdy: [Elems] 8*real;
  var dvdz: [Elems] 8*real;
  var x8n: [Elems] 8*real;
  var y8n: [Elems] 8*real;
  var z8n: [Elems] 8*real;
  for i in Elems {
    x8n[i] = gatherElem(i, x);
    y8n[i] = gatherElem(i, y);
    z8n[i] = gatherElem(i, z);
    var x8 = x8n[i];
    var y8 = y8n[i];
    var z8 = z8n[i];
    var vol = determ[i];
    for param k in 1..8 {
      dvdx[i](k) = (y8(k%8+1) * z8(k%4+1) - y8(k%4+1) * z8(k%8+1)) / (vol * 12.0 + 1.0);
      dvdy[i](k) = (z8(k%8+1) * x8(k%4+1) - z8(k%4+1) * x8(k%8+1)) / (vol * 12.0 + 1.0);
      dvdz[i](k) = (x8(k%8+1) * y8(k%4+1) - x8(k%4+1) * y8(k%8+1)) / (vol * 12.0 + 1.0);
    }
  }
  CalcFBHourglassForceForElems(determ, dvdx, dvdy, dvdz);
}

proc CalcVolumeForceForElems() {
  var determ: [Elems] real;
  var sigxx: [Elems] real;
  var sigyy: [Elems] real;
  var sigzz: [Elems] real;
  for i in Elems {
    sigxx[i] = 0.0 - p[i] - e[i] * 0.3;
    sigyy[i] = sigxx[i];
    sigzz[i] = sigxx[i];
  }
  IntegrateStressForElems(determ);
  CalcHourglassControlForElems(determ);
}

proc CalcForceForNodes() {
  forall n in Nodes {
    fx[n] = 0.0;
    fy[n] = 0.0;
    fz[n] = 0.0;
  }
  CalcVolumeForceForElems();
}

proc LagrangeNodal() {
  CalcForceForNodes();
  for n in Nodes {
    xd[n] = xd[n] + fx[n] * dtfixed;
    yd[n] = yd[n] + fy[n] * dtfixed;
    zd[n] = zd[n] + fz[n] * dtfixed;
    x[n] = x[n] + xd[n] * dtfixed;
    y[n] = y[n] + yd[n] * dtfixed;
    z[n] = z[n] + zd[n] * dtfixed;
  }
}

proc LagrangeElements() {
  for i in Elems {
    var xd8 = gatherElem(i, xd);
    var yd8 = gatherElem(i, yd);
    var zd8 = gatherElem(i, zd);
    var dvol = 0.0;
    for param k in 1..8 {
      dvol = dvol + xd8(k) + yd8(k) + zd8(k);
    }
    e[i] = e[i] + dvol * dtfixed;
    p[i] = e[i] * 0.3333;
  }
}

proc LagrangeLeapFrog() {
  LagrangeNodal();
  LagrangeElements();
}

proc main() {
  initMesh();
  for step in 0..#numSteps {
    LagrangeLeapFrog();
  }
  var chk = 0.0;
  for i in Elems {
    chk = chk + e[i];
  }
  for n in Nodes {
    chk = chk + fx[n] + xd[n];
  }
  writeln("LULESH checksum:", chk);
}
