/* Index gather/scatter (naive) — the conveyors/bale "indexgather"
   microbenchmark shape over one BLOCK- and one CYCLIC-distributed table.

   Each locale walks its own contiguous window [lo, lo+chunk) and, per slot,
   gathers a table element through a per-round rotated index, then scatters
   an update back through a second rotation. Rotations are permutations of
   the window, so every slot is read and written exactly once per round and
   the final state is order-independent.

   Window-local indices are owner-local under `dmapped Block`, so ABlk
   traffic stays on-locale; under `dmapped Cyclic` the same indices land on
   locale (i % numLocales), so nearly every ACyc access is a fine-grained
   remote GET (gather) or PUT (scatter) — the pathology aggregators exist
   for. Setup and checksum iterate in owner order (cyclic-strided for ACyc)
   and touch nothing remote: all communication is in the kernels.

   Compare ig_agg.chpl: identical kernels routed through SrcAggregator/
   DstAggregator task intents, identical checksum.                        */

config const tableSize = 512;
config const numRounds = 16;

const TBlk = {0..#tableSize} dmapped Block;
const TCyc = {0..#tableSize} dmapped Cyclic;

var ABlk: [TBlk] int;
var ACyc: [TCyc] int;

var GotBlk: [{0..#tableSize}] int;
var GotCyc: [{0..#tableSize}] int;

/* Owner-order initialization: ABlk in block windows, ACyc cyclic-strided,
   so nothing here crosses locales. */
proc initTables() {
  const chunk = tableSize / numLocales;
  for l in 0..#numLocales {
    on Locales[l] {
      const lo = l * chunk;
      for k in lo..#chunk {
        ABlk[k] = k * 3 + 1;
        GotBlk[k] = 0;
        GotCyc[k] = 0;
      }
      for m in 0..#chunk {
        const c = m * numLocales + l;
        ACyc[c] = c * 5 + 2;
      }
    }
  }
}

/* Gather: read each table through the rotated window-local index. One
   loop per table keeps the per-array blame clean. */
proc gather(lo: int, hi: int, chunk: int, shift: int) {
  forall k in lo..hi {
    var t = k + shift;
    if t > hi then t = t - chunk;
    GotBlk[k] = ABlk[t];
  }
  forall k in lo..hi {
    var t = k + shift;
    if t > hi then t = t - chunk;
    GotCyc[k] = ACyc[t];
  }
}

/* Scatter: push updates back through a second rotation. */
proc scatter(lo: int, hi: int, chunk: int, shift: int, round: int) {
  forall k in lo..hi {
    var t = k + shift;
    if t > hi then t = t - chunk;
    ABlk[t] = GotCyc[k] + round;
  }
  forall k in lo..hi {
    var t = k + shift;
    if t > hi then t = t - chunk;
    ACyc[t] = GotBlk[k] + round;
  }
}

proc run() {
  const chunk = tableSize / numLocales;
  for round in 0..#numRounds {
    for l in 0..#numLocales {
      on Locales[l] {
        const lo = l * chunk;
        const hi = lo + chunk - 1;
        gather(lo, hi, chunk, (round * 3 + 1) % chunk);
        scatter(lo, hi, chunk, (round * 5 + 2) % chunk, round);
      }
    }
  }
}

proc main() {
  initTables();
  run();
  var chk = 0;
  const chunk = tableSize / numLocales;
  for l in 0..#numLocales {
    on Locales[l] {
      const lo = l * chunk;
      for k in lo..#chunk {
        chk = chk + ABlk[k] + GotBlk[k] + GotCyc[k];
      }
      for m in 0..#chunk {
        chk = chk + ACyc[m * numLocales + l];
      }
    }
  }
  writeln("IG checksum:", chk);
}
