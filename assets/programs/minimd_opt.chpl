/* MiniMD, optimized as in the paper's §V.A (after Johnson's de-zippering
   transformations, Appendix A of [19]): the zippered iterations and the
   domain-remapping expressions in the nested loops are replaced by plain
   foralls over binSpace with direct global indexing, and per-bin loop
   invariants (occupancy counts) are hoisted.

   Identical physics, identical iteration counts, identical checksum to
   minimd.chpl — only the iteration machinery changed.                    */

type v3 = 3*real;

config const numBins = 96;
config const perBin = 8;
config const numSteps = 8;
config const dt = 0.002;
config const cutsq = 0.95;

const binSpace = {0..#numBins};
const DistSpace = binSpace.expand(1);
const perBinSpace = {0..#perBin};

record atom {
  var velocity: v3;
  var force: v3;
  var neighbors: int;
}

var Pos: [DistSpace] [perBinSpace] v3;
var Bins: [binSpace] [perBinSpace] atom;
var Count: [DistSpace] int;

proc initAtoms() {
  forall b in binSpace {
    Count[b] = perBin;
    for i in perBinSpace {
      Pos[b][i] = (random(), random(), random());
      Bins[b][i].velocity = (0.0, 0.0, 0.0);
      Bins[b][i].force = (0.0, 0.0, 0.0);
      Bins[b][i].neighbors = 0;
    }
  }
}

proc buildNeighbors() {
  forall b in binSpace {
    var c = Count[b];
    for i in perBinSpace {
      if i < c {
        var ncount = 0;
        for nb in b-1..b+1 {
          var nc = Count[nb];
          for j in perBinSpace {
            if j < nc {
              var del = Pos[b][i] - Pos[nb][j];
              var rsq = del(1)*del(1) + del(2)*del(2) + del(3)*del(3);
              if rsq < cutsq then ncount = ncount + 1;
            }
          }
        }
        Bins[b][i].neighbors = ncount;
      }
    }
  }
}

proc updateFluff() {
  for i in perBinSpace {
    Pos[0-1][i] = Pos[numBins-1][i];
    Pos[numBins][i] = Pos[0][i];
  }
  Count[0-1] = Count[numBins-1];
  Count[numBins] = Count[0];
}

proc computeForce() {
  forall b in binSpace {
    var c = Count[b];
    for i in perBinSpace {
      if i < c {
        var f = (0.0, 0.0, 0.0);
        for nb in b-1..b+1 {
          var nc = Count[nb];
          for j in perBinSpace {
            if j < nc {
              var del = Pos[b][i] - Pos[nb][j];
              var rsq = del(1)*del(1) + del(2)*del(2) + del(3)*del(3);
              if rsq < cutsq && rsq > 0.000001 {
                var sr2 = 1.0 / rsq;
                var sr6 = sr2 * sr2 * sr2;
                var fpair = min(48.0 * sr6 * (sr6 - 0.5) * sr2, 50.0);
                f = f + del * fpair;
              }
            }
          }
        }
        Bins[b][i].force = f;
      }
    }
  }
}

proc integrate() {
  forall b in binSpace {
    var c = Count[b];
    for i in perBinSpace {
      if i < c {
        Bins[b][i].velocity = Bins[b][i].velocity + Bins[b][i].force * dt;
        Pos[b][i] = Pos[b][i] + Bins[b][i].velocity * dt;
      }
    }
  }
}

proc run() {
  for step in 0..#numSteps {
    buildNeighbors();
    updateFluff();
    computeForce();
    integrate();
  }
}

proc main() {
  initAtoms();
  run();
  var chk = 0.0;
  for b in binSpace {
    for i in perBinSpace {
      chk = chk + Pos[b][i](1) + Bins[b][i].velocity(1);
    }
  }
  writeln("MiniMD checksum:", chk);
}
