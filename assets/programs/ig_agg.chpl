/* Index gather/scatter (aggregated) — ig_naive.chpl with the fine-grained
   remote traffic routed through remote-access aggregators, the conveyors/
   bale optimization: each task buffers its copies per destination locale
   and flushes them in batches, paying one latency per flush plus a small
   per-element bandwidth cost instead of a full round trip per element.

   The kernels are identical to the naive twin — same tables, same rotated
   indices, same rounds, same checksum — only the copy statements go
   through `with (var agg = new Src/DstAggregator(int))` task intents and
   `agg.copy(...)`. The Block-vs-Cyclic blame gap the naive version shows
   should collapse here, and total virtual time drops severalfold.        */

config const tableSize = 512;
config const numRounds = 16;

const TBlk = {0..#tableSize} dmapped Block;
const TCyc = {0..#tableSize} dmapped Cyclic;

var ABlk: [TBlk] int;
var ACyc: [TCyc] int;

var GotBlk: [{0..#tableSize}] int;
var GotCyc: [{0..#tableSize}] int;

/* Owner-order initialization: ABlk in block windows, ACyc cyclic-strided,
   so nothing here crosses locales. */
proc initTables() {
  const chunk = tableSize / numLocales;
  for l in 0..#numLocales {
    on Locales[l] {
      const lo = l * chunk;
      for k in lo..#chunk {
        ABlk[k] = k * 3 + 1;
        GotBlk[k] = 0;
        GotCyc[k] = 0;
      }
      for m in 0..#chunk {
        const c = m * numLocales + l;
        ACyc[c] = c * 5 + 2;
      }
    }
  }
}

/* Gather through source aggregators: remote reads are batched per owning
   locale instead of paying a round trip each. One loop per table keeps the
   per-array blame clean. */
proc gather(lo: int, hi: int, chunk: int, shift: int) {
  forall k in lo..hi with (var ga = new SrcAggregator(int)) {
    var t = k + shift;
    if t > hi then t = t - chunk;
    ga.copy(GotBlk[k], ABlk[t]);
  }
  forall k in lo..hi with (var ga = new SrcAggregator(int)) {
    var t = k + shift;
    if t > hi then t = t - chunk;
    ga.copy(GotCyc[k], ACyc[t]);
  }
}

/* Scatter through destination aggregators: remote writes are batched. */
proc scatter(lo: int, hi: int, chunk: int, shift: int, round: int) {
  forall k in lo..hi with (var da = new DstAggregator(int)) {
    var t = k + shift;
    if t > hi then t = t - chunk;
    da.copy(ABlk[t], GotCyc[k] + round);
  }
  forall k in lo..hi with (var da = new DstAggregator(int)) {
    var t = k + shift;
    if t > hi then t = t - chunk;
    da.copy(ACyc[t], GotBlk[k] + round);
  }
}

proc run() {
  const chunk = tableSize / numLocales;
  for round in 0..#numRounds {
    for l in 0..#numLocales {
      on Locales[l] {
        const lo = l * chunk;
        const hi = lo + chunk - 1;
        gather(lo, hi, chunk, (round * 3 + 1) % chunk);
        scatter(lo, hi, chunk, (round * 5 + 2) % chunk, round);
      }
    }
  }
}

proc main() {
  initTables();
  run();
  var chk = 0;
  const chunk = tableSize / numLocales;
  for l in 0..#numLocales {
    on Locales[l] {
      const lo = l * chunk;
      for k in lo..#chunk {
        chk = chk + ABlk[k] + GotBlk[k] + GotCyc[k];
      }
      for m in 0..#chunk {
        chk = chk + ACyc[m * numLocales + l];
      }
    }
  }
  writeln("IG checksum:", chk);
}
