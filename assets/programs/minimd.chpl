/* MiniMD — mini-Chapel port of Sandia's Mini Molecular Dynamics proxy app,
   following the Chapel version profiled in the paper (§V.A).

   Atoms live in spatial bins. `Pos` holds per-bin atom positions over the
   ghost-extended DistSpace; `Bins` holds per-bin atom attributes (velocity,
   force, neighbor count); `Count` tracks per-bin occupancy. `RealPos` and
   `RealCount` are array slices aliasing the non-ghost interior — Chapel
   slices alias the data rather than copying it (Table II).

   This ORIGINAL version uses the succinct zippered-iteration expressions
   and performs domain remapping inside the nested loops, the pattern the
   paper's profile flags as the bottleneck ("the hot spots of these three
   functions are inside the nested for loop, where Bins and Pos are
   calculated after several domain remapping operations").               */

type v3 = 3*real;

config const numBins = 96;      // scaled stand-in for the 16^3-cell box
config const perBin = 8;        // atoms per bin
config const numSteps = 8;
config const dt = 0.002;
config const cutsq = 0.95;

const binSpace = {0..#numBins};
const DistSpace = binSpace.expand(1);   // +1 ghost bin on each side
const perBinSpace = {0..#perBin};

record atom {
  var velocity: v3;
  var force: v3;
  var neighbors: int;
}

var Pos: [DistSpace] [perBinSpace] v3;
var Bins: [binSpace] [perBinSpace] atom;
var Count: [DistSpace] int;
var RealCount => Count[binSpace];
var RealPos => Pos[binSpace];

proc initAtoms() {
  forall b in binSpace {
    RealCount[b] = perBin;
    for i in perBinSpace {
      RealPos[b][i] = (random(), random(), random());
      Bins[b][i].velocity = (0.0, 0.0, 0.0);
      Bins[b][i].force = (0.0, 0.0, 0.0);
      Bins[b][i].neighbors = 0;
    }
  }
}

/* Put atoms into bins and rebuild the neighbor counts. */
proc buildNeighbors() {
  forall (b, bin, c) in zip(binSpace, Bins, Count[binSpace]) {
    for (i, bp) in zip(perBinSpace, RealPos[b]) {
      if i < c {
        var ncount = 0;
        for nb in b-1..b+1 {
          var npos => Pos[DistSpace];       // domain remap in the nested loop
          var ncnt => Count[DistSpace];
          for (j, np) in zip(perBinSpace, npos[nb]) {
            if j < ncnt[nb] {
              var del = bp - np;
              var rsq = del(1)*del(1) + del(2)*del(2) + del(3)*del(3);
              if rsq < cutsq then ncount = ncount + 1;
            }
          }
        }
        bin[i].neighbors = ncount;
      }
    }
  }
}

/* Update the ghost copies of position and occupancy (periodic). */
proc updateFluff() {
  for i in perBinSpace {
    Pos[0-1][i] = Pos[numBins-1][i];
    Pos[numBins][i] = Pos[0][i];
  }
  Count[0-1] = RealCount[numBins-1];
  Count[numBins] = RealCount[0];
}

/* Lennard-Jones force between atoms in neighboring bins. */
proc computeForce() {
  forall (b, bin) in zip(binSpace, Bins) {
    for (i, bp) in zip(perBinSpace, RealPos[b]) {
      if i < perBin {
        var f = (0.0, 0.0, 0.0);
        for nb in b-1..b+1 {
          var npos => Pos[DistSpace];       // domain remap in the nested loop
          for (j, np) in zip(perBinSpace, npos[nb]) {
            if j < Count[nb] {
              var del = bp - np;
              var rsq = del(1)*del(1) + del(2)*del(2) + del(3)*del(3);
              if rsq < cutsq && rsq > 0.000001 {
                var sr2 = 1.0 / rsq;
                var sr6 = sr2 * sr2 * sr2;
                var fpair = min(48.0 * sr6 * (sr6 - 0.5) * sr2, 50.0);
                f = f + del * fpair;
              }
            }
          }
        }
        bin[i].force = f;
      }
    }
  }
}

/* Velocity-Verlet-ish integration of the interior atoms. */
proc integrate() {
  forall (b, bin) in zip(binSpace, Bins) {
    for i in perBinSpace {
      if i < RealCount[b] {
        bin[i].velocity = bin[i].velocity + bin[i].force * dt;
        RealPos[b][i] = RealPos[b][i] + bin[i].velocity * dt;
      }
    }
  }
}

proc run() {
  for step in 0..#numSteps {
    buildNeighbors();
    updateFluff();
    computeForce();
    integrate();
  }
}

proc main() {
  initAtoms();
  run();
  var chk = 0.0;
  for b in binSpace {
    for i in perBinSpace {
      chk = chk + RealPos[b][i](1) + Bins[b][i].velocity(1);
    }
  }
  writeln("MiniMD checksum:", chk);
}
