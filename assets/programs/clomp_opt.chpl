/* CLOMP, optimized as in the paper's §V.B (after Johnson & Hollingsworth):
   "we can use a large 2D array to hold those values ... Accessing elements
   in one big array is much faster than through nested structures."

   The Part/Zone record hierarchy is flattened into module-level 2-D value
   arrays plus per-part residue/ratio vectors; everything else (module
   structure, deposit math, iteration counts, the checksum) is identical
   to clomp.chpl, so the two programs are directly comparable.            */

config const CLOMP_numParts = 64;
config const CLOMP_zonesPerPart = 500;
config const CLOMP_timeScale = 8;

const partDomain = {0..#CLOMP_numParts};
const zoneDomain = {0..#CLOMP_zonesPerPart};
const flatDomain = {0..#CLOMP_numParts, 0..#CLOMP_zonesPerPart};

var zoneValues: [flatDomain] real;
var residues: [partDomain] real;
var ratios: [partDomain] real;
var total_deposit = 0.0;

proc init_part(i: int) {
  ratios[i] = 0.7 / CLOMP_zonesPerPart;
  residues[i] = 0.0;
  for j in zoneDomain {
    zoneValues[i, j] = 0.0;
  }
}

proc calc_deposit(): real {
  var deposit = 0.0;
  for i in partDomain {
    deposit = deposit + residues[i];
  }
  return 0.5 + deposit * 0.01 / CLOMP_numParts;
}

proc update_part(i: int, deposit_in: real) {
  var remaining_deposit: real;
  remaining_deposit = deposit_in;
  var ratio = ratios[i];
  for j in zoneDomain {
    var deposit = remaining_deposit * ratio;
    zoneValues[i, j] = zoneValues[i, j] + deposit;
    remaining_deposit = remaining_deposit - deposit;
  }
  residues[i] = remaining_deposit;
}

proc parallel_module1() {
  var deposit = calc_deposit();
  forall i in partDomain { update_part(i, deposit); }
}

proc parallel_module2() {
  var d1 = calc_deposit();
  forall i in partDomain { update_part(i, d1); }
  var d2 = calc_deposit();
  forall i in partDomain { update_part(i, d2); }
}

proc parallel_module3() {
  var d1 = calc_deposit();
  forall i in partDomain { update_part(i, d1); }
  var d2 = calc_deposit();
  forall i in partDomain { update_part(i, d2); }
  var d3 = calc_deposit();
  forall i in partDomain { update_part(i, d3); }
}

proc parallel_module4() {
  var d1 = calc_deposit();
  forall i in partDomain { update_part(i, d1); }
  var d2 = calc_deposit();
  forall i in partDomain { update_part(i, d2); }
  var d3 = calc_deposit();
  forall i in partDomain { update_part(i, d3); }
  var d4 = calc_deposit();
  forall i in partDomain { update_part(i, d4); }
}

proc parallel_cycle() {
  parallel_module1();
  parallel_module2();
  parallel_module3();
  parallel_module4();
}

proc do_parallel_version() {
  for t in 0..#CLOMP_timeScale {
    parallel_cycle();
  }
}

proc main() {
  forall i in partDomain { init_part(i); }
  do_parallel_version();
  total_deposit = calc_deposit();
  writeln("CLOMP checksum:", total_deposit);
}
