/* Weak-scaling probe: per-locale work is CONSTANT at any locale count.
   Each rank owns a `win`-element window of a Block-distributed ring,
   initializes it, does `reps` passes of local compute over it, then reads
   its right neighbor's window remotely — exactly one (me -> me+1) comm
   pair per rank, so the global comm matrix is a sparse ring with
   numLocales cells whether 4 locales run or 1024.

   Unlike the minimd/ig programs, no rank ever loops over `Locales`: the
   per-rank instruction count does not grow with numLocales, which is what
   makes this the bench_weak_scale driver (1/4/16/64/256/1024 locales at
   fixed per-locale cost, memory bounded by the streaming aggregator).   */

config const win = 32;
config const reps = 64;

const ringSize = win * numLocales;
const R = {0..#ringSize} dmapped Block;

var Ring: [R] int;
var Acc: [{0..#win}] int;

proc main() {
  const me = here.id;
  const lo = me * win;

  /* Owner-order init: this rank touches only its own window — all local. */
  for k in lo..#win {
    Ring[k] = k * 3 + 1;
  }

  /* Fixed local compute: reps passes over the owned window. */
  var s = 0;
  for r in 0..#reps {
    for k in lo..#win {
      s = s + Ring[k] * (r + 1);
    }
  }

  /* Neighbor exchange: win remote GETs from the next rank's window. */
  const nb = (me + 1) % numLocales;
  const nlo = nb * win;
  for k in 0..#win {
    Acc[k] = Ring[nlo + k];
  }
  for k in 0..#win {
    s = s + Acc[k];
  }

  writeln("weakscale checksum:", s);
}
