/* CLOMP — mini-Chapel port of the Livermore OpenMP benchmark, following
   the Chapel port profiled in the paper (§V.B).

   Structure mirrors the paper's description: `main` initializes
   `partArray`, then `do_parallel_version` repeatedly runs
   `parallel_cycle`, which calls `parallel_module1..4` (differing only in
   the number of forall loops). Each forall updates every Part via
   `update_part`, which deposits value into the part's zones and leaves a
   residue. The dominant data structure is the nested
   partArray[i].zoneArray[j].value hierarchy (Table IV).                  */

config const CLOMP_numParts = 64;
config const CLOMP_zonesPerPart = 500;
config const CLOMP_timeScale = 8;

const partDomain = {0..#CLOMP_numParts};
const zoneDomain = {0..#CLOMP_zonesPerPart};

record Zone {
  var value: real;
}

record Part {
  var residue: real;
  var deposit_ratio: real;
  var zoneArray: [zoneDomain] Zone;
}

var partArray: [partDomain] Part;
var total_deposit = 0.0;

proc init_part(ref p: Part) {
  p.deposit_ratio = 0.7 / CLOMP_zonesPerPart;
  p.residue = 0.0;
  for j in zoneDomain {
    p.zoneArray[j].value = 0.0;
  }
}

proc calc_deposit(): real {
  var deposit = 0.0;
  for i in partDomain {
    deposit = deposit + partArray[i].residue;
  }
  return 0.5 + deposit * 0.01 / CLOMP_numParts;
}

proc update_part(ref p: Part, deposit_in: real) {
  var remaining_deposit: real;
  remaining_deposit = deposit_in;
  for j in zoneDomain {
    var deposit = remaining_deposit * p.deposit_ratio;
    p.zoneArray[j].value = p.zoneArray[j].value + deposit;
    remaining_deposit = remaining_deposit - deposit;
  }
  p.residue = remaining_deposit;
}

proc parallel_module1() {
  var deposit = calc_deposit();
  forall i in partDomain { update_part(partArray[i], deposit); }
}

proc parallel_module2() {
  var d1 = calc_deposit();
  forall i in partDomain { update_part(partArray[i], d1); }
  var d2 = calc_deposit();
  forall i in partDomain { update_part(partArray[i], d2); }
}

proc parallel_module3() {
  var d1 = calc_deposit();
  forall i in partDomain { update_part(partArray[i], d1); }
  var d2 = calc_deposit();
  forall i in partDomain { update_part(partArray[i], d2); }
  var d3 = calc_deposit();
  forall i in partDomain { update_part(partArray[i], d3); }
}

proc parallel_module4() {
  var d1 = calc_deposit();
  forall i in partDomain { update_part(partArray[i], d1); }
  var d2 = calc_deposit();
  forall i in partDomain { update_part(partArray[i], d2); }
  var d3 = calc_deposit();
  forall i in partDomain { update_part(partArray[i], d3); }
  var d4 = calc_deposit();
  forall i in partDomain { update_part(partArray[i], d4); }
}

proc parallel_cycle() {
  parallel_module1();
  parallel_module2();
  parallel_module3();
  parallel_module4();
}

proc do_parallel_version() {
  for t in 0..#CLOMP_timeScale {
    parallel_cycle();
  }
}

proc main() {
  forall i in partDomain { init_part(partArray[i]); }
  do_parallel_version();
  total_deposit = calc_deposit();
  writeln("CLOMP checksum:", total_deposit);
}
