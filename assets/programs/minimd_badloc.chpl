/* MiniMD (mis-distributed PGAS variant) — the flattened MiniMD force/
   integrate kernel over a CYCLIC-distributed atom space, iterated in
   contiguous per-locale chunks via `on Locales[l]` blocks.

   The iteration is owner-compute for a BLOCK distribution: locale l walks
   atoms [l*chunk, (l+1)*chunk). Under `dmapped Cyclic` atom i instead lives
   on locale i % numLocales, so nearly every Pos read is a remote GET and
   every Force/Vel write a remote PUT — the classic distribution mismatch a
   data-centric comm profile should pin on the arrays themselves. Compare
   minimd_blockloc.chpl, identical except for `dmapped Block`.           */

type v3 = 3*real;

config const numAtoms = 256;
config const numSteps = 4;
config const dt = 0.002;
config const cutsq = 0.95;

const Space = {0..#numAtoms} dmapped Cyclic;

var Pos: [Space] v3;
var Vel: [Space] v3;
var Force: [Space] v3;

proc initAtoms() {
  for i in 0..#numAtoms {
    Pos[i] = (random(), random(), random());
    Vel[i] = (0.0, 0.0, 0.0);
    Force[i] = (0.0, 0.0, 0.0);
  }
}

/* Short-range pair force over the 2-neighborhood of each owned atom. */
proc computeForce(lo: int, hi: int) {
  for i in lo..hi {
    var f = (0.0, 0.0, 0.0);
    for j in i-2..i+2 {
      if j >= 0 && j < numAtoms && j != i {
        var del = Pos[i] - Pos[j];
        var rsq = del(1)*del(1) + del(2)*del(2) + del(3)*del(3);
        if rsq < cutsq && rsq > 0.000001 {
          var sr2 = 1.0 / rsq;
          var sr6 = sr2 * sr2 * sr2;
          var fpair = min(48.0 * sr6 * (sr6 - 0.5) * sr2, 50.0);
          f = f + del * fpair;
        }
      }
    }
    Force[i] = f;
  }
}

proc integrate(lo: int, hi: int) {
  for i in lo..hi {
    Vel[i] = Vel[i] + Force[i] * dt;
    Pos[i] = Pos[i] + Vel[i] * dt;
  }
}

proc run() {
  const chunk = numAtoms / numLocales;
  for step in 0..#numSteps {
    for l in 0..#numLocales {
      on Locales[l] {
        const lo = l * chunk;
        var hi = lo + chunk - 1;
        if l == numLocales - 1 then hi = numAtoms - 1;
        computeForce(lo, hi);
        integrate(lo, hi);
      }
    }
  }
}

proc main() {
  initAtoms();
  run();
  var chk = 0.0;
  for i in 0..#numAtoms {
    chk = chk + Pos[i](1) + Vel[i](1);
  }
  writeln("MiniMD checksum:", chk);
}
