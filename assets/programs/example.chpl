/* Fig. 1 example from "Data Centric Performance Measurement Techniques
   for Chapel Programs" (Zhang & Hollingsworth, IPDPSW 2017).
   The five statements sit exactly at source lines 16-20 so the
   regenerated Table I matches the paper line-for-line:

     a -> 16, 18, 19
     b -> 17
     c -> 16, 17, 18, 19, 20                                          */
proc main() {
  var a: int;
  var b: int;
  var c: int;

  // The statements from the paper's Fig. 1 occupy lines 16-20.

  a = 2;
  b = 3;
  if a < b then
    a = b + 1;
  c = a + b;
}
