#include "service/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "support/thread_pool.h"

namespace cb::svc {

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), resident_(opts_.residentCapacity) {}

Server::~Server() { stop(); }

bool Server::start() {
  if (running_.load()) return true;
  if (opts_.socketPath.empty()) {
    error_ = "no socket path";
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socketPath.size() >= sizeof(addr.sun_path)) {
    error_ = "socket path too long: " + opts_.socketPath;
    return false;
  }
  std::strncpy(addr.sun_path, opts_.socketPath.c_str(), sizeof(addr.sun_path) - 1);

  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A stale socket file from a dead daemon would fail the bind; remove it.
  // A LIVE daemon on the same path is not detected here — callers pick
  // per-instance socket paths (tests use the test's temp dir).
  ::unlink(opts_.socketPath.c_str());
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listenFd_, 64) < 0) {
    error_ = std::string("bind/listen ") + opts_.socketPath + ": " + std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    return false;
  }

  uint32_t workers = opts_.workers ? opts_.workers : ThreadPool::defaultConcurrency();
  pool_ = std::make_unique<ThreadPool>(workers);
  stopping_.store(false);
  running_.store(true);
  acceptor_ = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::acceptLoop() {
  uint64_t accepted = 0;
  while (!stopping_.load()) {
    int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket closed by stop()
    }
    ++accepted;
    pool_->submit([this, fd] { handleConnection(fd); });
    if (opts_.maxRequests && accepted >= opts_.maxRequests) break;
  }
  running_.store(false);
}

void Server::handleConnection(int fd) {
  // One request per connection. Every failure path just closes the fd: the
  // client observes a dropped connection, the daemon carries on.
  std::string payload;
  if (readFrame(fd, payload)) {
    std::vector<std::string> args;
    JobResult result;
    if (!decodeRequest(payload, args)) {
      result.exitCode = 2;
      result.err = "cb-serve: malformed request frame\n";
    } else {
      JobContext ctx;
      ctx.resident = &resident_;
      ctx.cacheDir = opts_.cacheDir;
      result = runJob(args, ctx);  // runJob never throws
    }
    writeFrame(fd, encodeResponse(result));
    served_.fetch_add(1);
  }
  ::close(fd);
}

uint64_t Server::wait() {
  if (acceptor_.joinable()) acceptor_.join();
  if (pool_) pool_->wait();
  return served_.load();
}

void Server::stop() {
  if (listenFd_ < 0 && !acceptor_.joinable()) return;
  stopping_.store(true);
  if (listenFd_ >= 0) {
    // Unblock accept(): shutdown() first (portable wakeup), then close.
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    listenFd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (pool_) pool_->wait();
  running_.store(false);
  ::unlink(opts_.socketPath.c_str());
}

}  // namespace cb::svc
