#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cb::svc {

ClientResult runRemote(const std::string& socketPath, const std::vector<std::string>& args) {
  ClientResult res;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.empty() || socketPath.size() >= sizeof(addr.sun_path)) {
    res.error = "invalid socket path: '" + socketPath + "'";
    return res;
  }
  std::strncpy(addr.sun_path, socketPath.c_str(), sizeof(addr.sun_path) - 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    res.error = std::string("socket: ") + std::strerror(errno);
    return res;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    res.error = "cannot connect to cb-serve at " + socketPath + ": " + std::strerror(errno);
    ::close(fd);
    return res;
  }
  std::string payload;
  if (!writeFrame(fd, encodeRequest(args)) || !readFrame(fd, payload)) {
    res.error = "cb-serve connection dropped (daemon gone or request refused)";
    ::close(fd);
    return res;
  }
  ::close(fd);
  if (!decodeResponse(payload, res.job)) {
    res.error = "malformed cb-serve response";
    return res;
  }
  res.ok = true;
  return res;
}

}  // namespace cb::svc
