// Thin client for cb-serve: forward one cb argv to a daemon and collect
// the framed response. No profiling logic lives here — the daemon runs the
// same job runner the local CLI does, which is what makes served output
// bit-identical to local output.
#pragma once

#include <string>
#include <vector>

#include "service/protocol.h"

namespace cb::svc {

struct ClientResult {
  bool ok = false;    // transport-level success (job may still have failed)
  JobResult job;      // valid when ok
  std::string error;  // transport-level failure description when !ok
};

/// Connects to the daemon at `socketPath`, sends `args` as one request and
/// waits for the response.
ClientResult runRemote(const std::string& socketPath, const std::vector<std::string>& args);

}  // namespace cb::svc
