#include "service/job.h"

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/profiler.h"
#include "postmortem/streaming.h"
#include "report/html.h"
#include "report/views.h"
#include "sampling/log_io.h"

namespace cb::svc {

std::string usageText() {
  return
      "usage: cb <program|path.chpl> [options]   (flags may appear anywhere)\n"
      "  --lint                static locality & race lint: no execution, prints\n"
      "                        predicted comm splits, findings, race verdicts\n"
      "  --with-run            with --lint: also profile the program so the\n"
      "                        static-vs-dynamic differential is reported\n"
      "  --diagnose            causal what-if profile + rule-based diagnosis:\n"
      "                        critical path, per-variable virtual speedups, and\n"
      "                        ranked findings (models 4 locales unless --locales;\n"
      "                        works with --from-log to diagnose a saved log)\n"
      "  --diagnose-baseline F compare the diagnose metric block against a saved\n"
      "                        report F; exit 4 when a metric regressed >10%\n"
      "  --fast                compile with the --fast pipeline\n"
      "  --threshold N         PMU overflow threshold (virtual cycles)\n"
      "  --workers N           worker streams (default 12)\n"
      "  --pm-workers N        post-mortem worker threads (0 = hardware, 1 = sequential)\n"
      "  --config K=V          override a config const (repeatable)\n"
      "  --view V              data|code|pprof|hybrid|gui|baseline|csv|comm|commmatrix|locale\n"
      "                        (default data; locale requires --locales N)\n"
      "  --skid N              simulate PMU skid of N instructions\n"
      "  --reference-interp    use the tree-walking oracle instead of bytecode\n"
      "  --replay-threads N    replay eligible parallel regions on N OS threads\n"
      "  --locales N           simulate N locales (1..4096) and aggregate blame\n"
      "  --save-log PATH       write the raw monitoring dataset to PATH\n"
      "  --from-log PATH       skip execution: stream an existing run log (text or\n"
      "                        binary) through the memory-bounded post-mortem\n"
      "  --stream-chunk N      samples per streaming attribution batch (default 4096)\n"
      "  --cache-dir PATH      on-disk analysis cache (also: $CB_CACHE_DIR)\n"
      "  --html PATH           write a standalone HTML report (the GUI) to PATH\n"
      "  --no-idle             do not sample idle workers\n"
      "  --echo                echo program writeln output\n"
      "  --time                print total virtual cycles\n"
      "\n"
      "service mode (see also README):\n"
      "  cb --serve [--socket PATH] [--serve-workers N] [--max-requests N]\n"
      "                        run as a resident profiling daemon on a unix socket\n"
      "  cb --socket PATH ...  run this invocation on the daemon at PATH instead\n"
      "                        of locally ($CB_SERVE_SOCKET works too)\n";
}

namespace {

JobResult runJobInner(const std::vector<std::string>& args, const JobContext& ctx) {
  JobResult res;
  std::ostringstream out, err;
  auto usage = [&](int code) {
    err << usageText();
    res.out = out.str();
    res.err = err.str();
    res.exitCode = code;
    return res;
  };

  std::string program;
  std::string view = "data";
  bool showTime = false;
  bool lintMode = false;
  bool lintWithRun = false;
  bool diagnoseMode = false;
  std::string diagnoseBaselinePath;
  uint32_t numLocales = 1;
  bool localesSet = false;
  std::string saveLogPath;
  std::string fromLogPath;
  std::string htmlPath;
  uint32_t streamChunk = 4096;
  Profiler profiler;
  profiler.options().run.sampleThreshold = 9973;
  profiler.options().cacheDir = ctx.cacheDir;

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    bool missing = false;
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        missing = true;
        return {};
      }
      return args[++i];
    };
    if (arg == "--lint") {
      lintMode = true;
    } else if (arg == "--with-run") {
      lintWithRun = true;
    } else if (arg == "--diagnose") {
      diagnoseMode = true;
    } else if (arg == "--diagnose-baseline") {
      diagnoseMode = true;
      diagnoseBaselinePath = next();
    } else if (arg == "--fast") {
      profiler.options().compile.fast = true;
      profiler.options().run.fastCostProfile = true;
    } else if (arg == "--threshold") {
      profiler.options().run.sampleThreshold = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--workers") {
      profiler.options().run.numWorkers =
          static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--pm-workers") {
      profiler.options().postmortem.workers =
          static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--config") {
      std::string kv = next();
      size_t eq = kv.find('=');
      if (!missing && eq == std::string::npos) return usage(2);
      if (!missing)
        profiler.options().run.configOverrides[kv.substr(0, eq)] = kv.substr(eq + 1);
    } else if (arg == "--view") {
      view = next();
    } else if (arg == "--skid") {
      profiler.options().run.skidInstructions =
          static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--reference-interp") {
      profiler.options().run.referenceInterp = true;
    } else if (arg == "--replay-threads") {
      profiler.options().run.replayThreads =
          static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--locales") {
      uint64_t requested = std::strtoull(next().c_str(), nullptr, 10);
      if (!missing) {
        if (std::string e = validateLocaleCount(requested); !e.empty()) {
          err << "error: --locales: " << e << "\n";
          res.out = out.str();
          res.err = err.str();
          res.exitCode = 2;
          return res;
        }
        numLocales = static_cast<uint32_t>(requested);
        localesSet = true;
      }
    } else if (arg == "--save-log") {
      saveLogPath = next();
    } else if (arg == "--from-log") {
      fromLogPath = next();
    } else if (arg == "--stream-chunk") {
      streamChunk = static_cast<uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--cache-dir") {
      profiler.options().cacheDir = next();
    } else if (arg == "--html") {
      htmlPath = next();
    } else if (arg == "--no-idle") {
      profiler.options().run.sampleIdle = false;
    } else if (arg == "--echo") {
      profiler.options().run.echoWriteln = true;
    } else if (arg == "--time") {
      showTime = true;
    } else if (arg.rfind("--", 0) == 0 || !program.empty()) {
      // Unknown flag, or a second positional argument.
      return usage(2);
    } else {
      program = arg;
    }
    if (missing) return usage(2);
  }
  if (program.empty()) return usage(2);

  std::string path = program.size() > 5 && program.substr(program.size() - 5) == ".chpl"
                         ? program
                         : assetProgram(program);

  auto fail = [&](const std::string& msg) {
    err << "error:\n" << msg << "\n";
    res.out = out.str();
    res.err = err.str();
    res.exitCode = 1;
    return res;
  };
  auto finish = [&](int code) {
    res.out = out.str();
    res.err = err.str();
    res.exitCode = code;
    return res;
  };

  if (lintMode) {
    // Static analysis defaults to a 4-locale model so distribution effects
    // are visible even without an explicit --locales; the override wins.
    uint32_t lintLocales = localesSet ? numLocales : 4;
    profiler.options().run.numLocales = lintLocales;
    bool ok = lintWithRun ? profiler.profileFile(path) : profiler.compileFile(path);
    if (!ok) return fail(profiler.lastError());
    out << profiler.lintText();
    return finish(0);
  }

  if (diagnoseMode) {
    // Diagnose runs the full pipeline with per-site span tracking on and —
    // like --lint — models 4 locales by default so distribution effects are
    // measurable in one run (which models locale 0; --locales overrides the
    // count but still runs a single diagnosed locale).
    profiler.options().run.trackCausalSites = true;
    profiler.options().run.numLocales = localesSet ? numLocales : 4;
  }

  if (numLocales > 1 && !diagnoseMode) {
    MultiLocaleResult ml = profileMultiLocale(path, numLocales, profiler.options());
    if (!ml.ok) {
      // Partial profiles (some locales failed) still print their aggregate;
      // only a total failure is fatal.
      bool anyOk = false;
      for (const std::string& e : ml.localeErrors) anyOk |= e.empty();
      if (!anyOk) return fail(ml.error);
      err << "warning (partial profile):\n" << ml.error << "\n";
    }
    if (view == "comm") {
      out << rpt::commView(ml.aggregate, profiler.options().view);
    } else if (view == "commmatrix") {
      out << rpt::commMatrixView(ml.aggregate, profiler.options().view);
    } else if (view == "locale") {
      out << rpt::perLocaleView(ml.perLocale, profiler.options().view);
    } else {
      out << "Aggregated blame across " << numLocales << " locales:\n"
          << rpt::dataCentricView(ml.aggregate, profiler.options().view);
    }
    return finish(0);
  }

  // Resident fast path: when the daemon's program cache already holds this
  // (source, options) build, adopt it and skip compile + analyze entirely.
  bool attached = false;
  uint64_t key = 0;
  if (ctx.resident) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      key = cache::hashProgram(path, ss.str(), profiler.options().compile,
                               profiler.options().blame);
      if (auto hit = ctx.resident->find(key)) {
        profiler.attachProgram(hit->comp, hit->blame, key);
        attached = true;
      }
    }
  }
  if (!attached) {
    if (!profiler.compileFile(path) || !profiler.analyze()) return fail(profiler.lastError());
    if (ctx.resident && profiler.programKey() != 0) {
      auto prog = std::make_shared<cache::CachedProgram>();
      prog->comp = profiler.sharedCompilation();
      prog->blame = profiler.sharedModuleBlame();
      ctx.resident->insert(profiler.programKey(), std::move(prog));
    }
  }

  if (!fromLogPath.empty() && diagnoseMode) {
    // Causal diagnosis needs the full log (task spans + per-site splits),
    // so this path materializes it instead of streaming.
    sampling::RunLog log;
    if (!sampling::loadRunLog(fromLogPath, log))
      return fail("cannot load run log '" + fromLogPath + "' (missing or malformed)");
    profiler.attachRunLog(std::move(log));
    if (!profiler.postProcess()) return fail(profiler.lastError());
  } else if (!fromLogPath.empty()) {
    // Streaming ingestion: attribute an existing run log chunk-by-chunk
    // without materializing its samples. Only report-shaped views are
    // available (code-centric views need the full instance vector).
    if (view != "data" && view != "hybrid" && view != "csv" && view != "comm" &&
        view != "commmatrix") {
      err << "error: --from-log supports --view data|hybrid|csv|comm|commmatrix\n";
      return finish(2);
    }
    const ir::Module& m = profiler.compilation()->module();
    if (m.debugInfoStripped)
      return fail("--from-log requires a non---fast module (data-centric mapping stripped)");
    pm::StreamingPostmortemOptions sopts;
    sopts.consolidate = profiler.options().consolidate;
    sopts.attribution = profiler.options().attribution;
    sopts.chunkSamples = streamChunk;
    pm::BlameReport report;
    pm::StreamingPostmortemStats stats;
    if (!pm::runPostmortemStreamingFile(m, profiler.moduleBlame(), fromLogPath, sopts, report,
                                        nullptr, &stats))
      return fail("cannot stream run log '" + fromLogPath + "' (missing or malformed)");
    if (view == "data") out << rpt::dataCentricView(report, profiler.options().view);
    else if (view == "hybrid") out << rpt::hybridView(report, profiler.options().view);
    else if (view == "csv") out << rpt::dataCentricCsv(report);
    else if (view == "comm") out << rpt::commView(report, profiler.options().view);
    else out << rpt::commMatrixView(report, profiler.options().view);
    if (showTime)
      out << "streamed samples: " << stats.samples << " in " << stats.chunks << " chunks\n";
    return finish(0);
  }

  if (fromLogPath.empty() && (!profiler.run() || !profiler.postProcess()))
    return fail(profiler.lastError());
  if (!saveLogPath.empty() && !sampling::saveRunLog(profiler.runResult()->log, saveLogPath)) {
    err << "error: cannot write " << saveLogPath << "\n";
    return finish(1);
  }

  if (diagnoseMode) {
    std::string text = profiler.diagnoseText();
    out << text;
    if (!diagnoseBaselinePath.empty()) {
      std::ifstream bf(diagnoseBaselinePath, std::ios::binary);
      if (!bf) return fail("cannot read baseline '" + diagnoseBaselinePath + "'");
      std::ostringstream bs;
      bs << bf.rdbuf();
      std::vector<an::diag::Regression> regs = an::diag::compareBaselineText(bs.str(), text);
      if (regs.empty()) {
        out << "baseline: no regressions vs " << diagnoseBaselinePath << "\n";
      } else {
        out << "baseline regressions vs " << diagnoseBaselinePath << " (" << regs.size()
            << "):\n";
        for (const an::diag::Regression& r : regs) out << "  [regression] " << r.message << "\n";
        return finish(4);
      }
    }
    return finish(0);
  }
  if (!htmlPath.empty() && !rpt::writeHtmlReport(htmlPath, program, *profiler.blameReport(),
                                                 *profiler.codeReport())) {
    err << "error: cannot write " << htmlPath << "\n";
    return finish(1);
  }

  if (view == "data") out << profiler.dataCentricText();
  else if (view == "code") out << profiler.codeCentricText();
  else if (view == "pprof") out << profiler.pprofText(program);
  else if (view == "hybrid") out << profiler.hybridText();
  else if (view == "gui") out << profiler.guiText();
  else if (view == "baseline") out << rpt::baselineView(profiler.baselineReport());
  else if (view == "csv") out << rpt::dataCentricCsv(*profiler.blameReport());
  else if (view == "comm") out << rpt::commView(*profiler.blameReport(), profiler.options().view);
  else if (view == "commmatrix")
    out << rpt::commMatrixView(*profiler.blameReport(), profiler.options().view);
  else
    return usage(2);

  if (showTime) {
    out << "total virtual cycles: " << profiler.runResult()->totalCycles << "\n";
    out << "instructions executed: " << profiler.runResult()->instructionsExecuted << "\n";
  }
  return finish(0);
}

}  // namespace

JobResult runJob(const std::vector<std::string>& args, const JobContext& ctx) {
  // Per-job isolation: a crash in one job must fail that job only, never
  // the daemon or its caches.
  try {
    return runJobInner(args, ctx);
  } catch (const std::exception& e) {
    JobResult r;
    r.exitCode = 3;
    r.err = std::string("internal error: ") + e.what() + "\n";
    return r;
  } catch (...) {
    JobResult r;
    r.exitCode = 3;
    r.err = "internal error: unknown exception\n";
    return r;
  }
}

}  // namespace cb::svc
