// cb-serve wire protocol: length-prefixed frames over a local stream socket.
//
//   frame    := u32-LE payload length | payload bytes
//   request  := varint argc | argc x (varint len | bytes)   (raw cb argv)
//   response := varint exitCode | varint-len stdout | varint-len stderr
//
// The request is the client's argv, verbatim — the daemon feeds it to the
// SAME job runner the local CLI uses (service/job.h), so a served profile is
// bit-identical to a local one by construction. One request per connection;
// the daemon replies with exactly one response frame and closes.
//
// Decoding is defensive at every layer (frame length cap, bounds-checked
// varints, trailing-byte checks): a malformed frame fails the one
// connection that sent it and never the daemon.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cb::svc {

/// Hard cap on a single frame; larger announcements are treated as protocol
/// errors (a length prefix of garbage must not trigger a huge allocation).
inline constexpr size_t kMaxFrameBytes = 64ull * 1024 * 1024;

struct JobResult {
  int exitCode = 0;
  std::string out;  // captured stdout payload
  std::string err;  // captured stderr payload
};

/// Blocking frame I/O over a file descriptor. Both retry on EINTR and
/// return false on EOF, I/O error, or an over-cap length prefix.
bool writeFrame(int fd, std::string_view payload);
bool readFrame(int fd, std::string& payload, size_t maxBytes = kMaxFrameBytes);

std::string encodeRequest(const std::vector<std::string>& args);
bool decodeRequest(const std::string& payload, std::vector<std::string>& args);

std::string encodeResponse(const JobResult& r);
bool decodeResponse(const std::string& payload, JobResult& r);

}  // namespace cb::svc
