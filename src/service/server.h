// cb-serve: the resident profiling daemon. Listens on a local (AF_UNIX)
// stream socket; each connection carries one framed request (a cb argv,
// see service/protocol.h), which is dispatched to the shared job runner on
// a cb::ThreadPool and answered with one framed response.
//
// Why resident: the daemon keeps a ResidentProgramCache across jobs, so the
// N-th profile of an unchanged program skips parse, lowering, CFG/dominators
// and the blame fixpoint — only execution and post-mortem remain. Job
// isolation is strict: a malformed frame fails its connection, a throwing
// job answers exit code 3, and neither ever poisons the daemon, its pool,
// or the cache (entries are immutable shared_ptr<const> snapshots).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "cache/analysis_cache.h"
#include "service/job.h"

namespace cb {
class ThreadPool;
}

namespace cb::svc {

struct ServerOptions {
  std::string socketPath;
  /// Concurrent jobs; 0 = hardware concurrency.
  uint32_t workers = 0;
  /// Resident program-cache capacity (entries).
  size_t residentCapacity = 32;
  /// Disk-tier cache directory applied to every job ("" = disabled;
  /// a job's own --cache-dir still overrides).
  std::string cacheDir;
  /// Stop accepting after this many requests (0 = serve until stop()).
  /// Used by tests and the soak harness for deterministic shutdown.
  uint64_t maxRequests = 0;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and starts the accept loop. False (with lastError set)
  /// when the socket cannot be created/bound.
  bool start();

  /// Stops accepting, drains in-flight jobs, joins the accept thread and
  /// removes the socket file. Idempotent.
  void stop();

  /// Blocks until the accept loop exits (stop() or maxRequests reached),
  /// then drains. Returns the number of requests served.
  uint64_t wait();

  bool running() const { return running_.load(); }
  uint64_t requestsServed() const { return served_.load(); }
  const std::string& lastError() const { return error_; }
  const std::string& socketPath() const { return opts_.socketPath; }

  /// The daemon's resident tier (exposed for tests and stats).
  cache::ResidentProgramCache& residentCache() { return resident_; }

 private:
  void acceptLoop();
  void handleConnection(int fd);

  ServerOptions opts_;
  cache::ResidentProgramCache resident_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> served_{0};
  int listenFd_ = -1;
  std::string error_;
};

}  // namespace cb::svc
