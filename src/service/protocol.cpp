#include "service/protocol.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

#include "support/varint.h"

namespace cb::svc {

namespace {

bool writeAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

bool readAll(int fd, char* data, size_t n) {
  while (n > 0) {
    ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF mid-frame
    data += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

}  // namespace

bool writeFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  unsigned char len[4];
  for (int i = 0; i < 4; ++i) len[i] = static_cast<unsigned char>(payload.size() >> (8 * i));
  return writeAll(fd, reinterpret_cast<const char*>(len), 4) &&
         writeAll(fd, payload.data(), payload.size());
}

bool readFrame(int fd, std::string& payload, size_t maxBytes) {
  unsigned char len[4];
  if (!readAll(fd, reinterpret_cast<char*>(len), 4)) return false;
  uint32_t n = 0;
  for (int i = 0; i < 4; ++i) n |= static_cast<uint32_t>(len[i]) << (8 * i);
  if (n > maxBytes) return false;
  payload.resize(n);
  return n == 0 || readAll(fd, payload.data(), n);
}

std::string encodeRequest(const std::vector<std::string>& args) {
  std::string out;
  putVarint(out, args.size());
  for (const std::string& a : args) putString(out, a);
  return out;
}

bool decodeRequest(const std::string& payload, std::vector<std::string>& args) {
  StringByteReader r(payload);
  uint64_t n;
  if (!r.varint(n) || n > r.remaining() + 1) return false;
  args.resize(n);
  for (std::string& a : args)
    if (!r.str(a)) return false;
  return r.atEnd();
}

std::string encodeResponse(const JobResult& res) {
  std::string out;
  putVarint(out, zigzag(res.exitCode));
  putString(out, res.out);
  putString(out, res.err);
  return out;
}

bool decodeResponse(const std::string& payload, JobResult& res) {
  StringByteReader r(payload);
  uint64_t code;
  if (!r.varint(code)) return false;
  int64_t c = unzigzag(code);
  if (c < INT32_MIN || c > INT32_MAX) return false;
  res.exitCode = static_cast<int>(c);
  return r.str(res.out) && r.str(res.err) && r.atEnd();
}

}  // namespace cb::svc
