// The cb profiling job, factored out of the CLI so the local binary and the
// cb-serve daemon execute the IDENTICAL code path — argv in, rendered
// report text + exit code out. Serving a job can therefore never change its
// bytes: the daemon only changes where compile/analyze artefacts come from
// (the resident cache), and cached artefacts are bit-identical to freshly
// built ones by the cache-equivalence property tests.
#pragma once

#include <string>
#include <vector>

#include "cache/analysis_cache.h"
#include "service/protocol.h"

namespace cb::svc {

/// Ambient state a job runs against. Everything is optional: the plain CLI
/// passes a default-constructed context (plus any --cache-dir flag).
struct JobContext {
  /// Resident program cache shared across jobs; nullptr = no resident tier.
  cache::ResidentProgramCache* resident = nullptr;
  /// Default on-disk analysis-cache directory. A --cache-dir argument in the
  /// job's argv overrides this; empty disables the disk tier.
  std::string cacheDir;
};

/// Runs one profiling job from a cb argv (argv[0] excluded). Captures all
/// output; never exits, never throws (internal failures become exit code 3
/// with the reason on the error stream).
JobResult runJob(const std::vector<std::string>& args, const JobContext& ctx = {});

/// The CLI usage text (shared by local and served error paths).
std::string usageText();

}  // namespace cb::svc
