#include "analysis/propagation.h"

#include <algorithm>

namespace cb::an {

namespace {

constexpr uint32_t kUnvisited = ~0u;

}  // namespace

// Iterative Tarjan — the synthetic-scale benchmarks build inheritance chains
// thousands of entities deep, so the textbook recursion would overflow the
// stack.
SccResult tarjanScc(size_t n, const std::vector<SparseBitSet>& edges) {
  SccResult out;
  out.comp.assign(n, kUnvisited);

  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> onStack(n, false);
  std::vector<uint32_t> stack;
  uint32_t nextIndex = 0;

  struct Frame {
    uint32_t v;
    std::vector<uint32_t>::const_iterator next, last;
  };
  std::vector<Frame> callStack;

  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    callStack.push_back({root, edges[root].begin(), edges[root].end()});
    index[root] = lowlink[root] = nextIndex++;
    stack.push_back(root);
    onStack[root] = true;

    while (!callStack.empty()) {
      Frame& f = callStack.back();
      if (f.next != f.last) {
        uint32_t w = *f.next++;
        if (w >= n) continue;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = nextIndex++;
          stack.push_back(w);
          onStack[w] = true;
          callStack.push_back({w, edges[w].begin(), edges[w].end()});
        } else if (onStack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
        continue;
      }
      uint32_t v = f.v;
      callStack.pop_back();
      if (!callStack.empty())
        lowlink[callStack.back().v] = std::min(lowlink[callStack.back().v], lowlink[v]);
      if (lowlink[v] == index[v]) {
        uint32_t cid = static_cast<uint32_t>(out.components.size());
        out.components.emplace_back();
        uint32_t w;
        do {
          w = stack.back();
          stack.pop_back();
          onStack[w] = false;
          out.comp[w] = cid;
          out.components[cid].push_back(w);
        } while (w != v);
      }
    }
  }
  return out;
}

void propagateInherits(std::vector<BitSet>& sets, const std::vector<SparseBitSet>& edges) {
  size_t n = sets.size();
  SccResult scc = tarjanScc(n, edges);
  for (uint32_t cid = 0; cid < scc.components.size(); ++cid) {
    const std::vector<uint32_t>& members = scc.components[cid];
    if (members.size() == 1) {
      uint32_t e = members[0];
      for (uint32_t u : edges[e]) {
        if (u == e || u >= n) continue;
        sets[e].unionWith(sets[u]);  // dependency already final (smaller cid)
      }
      continue;
    }
    // Every member of a cycle reaches every other, so they all converge to
    // the same union: member seeds plus all external dependencies.
    BitSet acc;
    for (uint32_t e : members) acc.unionWith(sets[e]);
    for (uint32_t e : members)
      for (uint32_t u : edges[e])
        if (u < n && scc.comp[u] != cid) acc.unionWith(sets[u]);
    for (uint32_t e : members) sets[e] = acc;
  }
}

void propagateInheritsReference(std::vector<BitSet>& sets,
                                const std::vector<SparseBitSet>& edges) {
  // The seed's exact loop and data structure: round-robin over every entity,
  // merging dependency sets into std::set until a full round adds nothing.
  size_t n = sets.size();
  std::vector<std::set<uint32_t>> work(n);
  for (size_t e = 0; e < n; ++e) work[e].insert(sets[e].begin(), sets[e].end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t e = 0; e < n; ++e) {
      auto& set = work[e];
      size_t before = set.size();
      for (uint32_t u : edges[e]) {
        if (u == e || u >= n) continue;
        set.insert(work[u].begin(), work[u].end());
      }
      if (set.size() != before) changed = true;
    }
  }
  for (size_t e = 0; e < n; ++e) {
    sets[e].clear();
    sets[e].insert(work[e].begin(), work[e].end());
  }
}

}  // namespace cb::an
