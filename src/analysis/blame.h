// The paper's §III/§IV static blame analysis over CIR.
//
// For every function we compute a set of *blame entities* — user variables,
// parameters, globals, compiler temporaries, the return value, and
// hierarchical sub-object paths like `partArray[i].zoneArray[j].value` —
// and for each entity its *blame set*: the instructions whose samples the
// entity is blamed for,
//
//     BlameSet(v) = U_{w in writes(v)} BackwardsSlice(w)
//
// built from explicit transfer (data flow), implicit transfer (control
// dependence: loop indices and branch conditions), alias edges (array
// slices), and sub-object containment (a struct inherits its fields' blame).
// Exit variables (ref/array/domain parameters, globals, return values) and
// per-callsite transfer maps support interprocedural bubbling at
// post-mortem time (§IV.C).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/module.h"
#include "support/bitset.h"

namespace cb::an {

using EntityId = uint32_t;
inline constexpr EntityId kNoEntity = ~0u;

struct PathElem {
  enum class Kind : uint8_t { Field, TupleElem, Index } kind;
  uint32_t idx = 0;           // field / tuple element index (Index ignores it)
  std::string fieldName;      // rendered name for Field elements

  friend bool operator==(const PathElem& a, const PathElem& b) {
    return a.kind == b.kind && a.idx == b.idx;
  }
};

/// What a store address or array value ultimately roots at.
enum class RootKind : uint8_t { Local, Param, Global, Ret, Unknown };

struct EntityKey {
  RootKind root = RootKind::Unknown;
  uint32_t rootId = 0;  // alloca InstrId / param index / GlobalId / 0
  std::vector<PathElem> path;

  friend bool operator==(const EntityKey& a, const EntityKey& b) {
    return a.root == b.root && a.rootId == b.rootId && a.path == b.path;
  }
};

struct EntityKeyHash {
  size_t operator()(const EntityKey& k) const {
    size_t h = (static_cast<size_t>(k.root) << 24) ^ k.rootId;
    for (const PathElem& p : k.path)
      h = h * 1000003u + (static_cast<size_t>(p.kind) << 16) + p.idx + 1;
    return h;
  }
};

struct Entity {
  EntityKey key;
  ir::DebugVarId debugVar = ir::kNone;  // of the root (kNone for Ret/Unknown)
  std::string displayName;              // "partArray" / "->partArray[i].residue"
  std::string typeDisplay;              // Chapel-style type of the leaf object
  bool displayable = false;             // false for temps / Ret / Unknown
  EntityId parent = kNoEntity;          // containing prefix entity (path pop)
};

/// Per-function analysis result.
struct FunctionBlame {
  ir::FuncId func = ir::kNone;
  std::vector<Entity> entities;
  std::unordered_map<EntityKey, EntityId, EntityKeyHash> index;

  /// Value-flow blame set per entity (propagates along inheritance edges).
  /// Dense bitmaps over the function's InstrIds; iterate in ascending order.
  std::vector<BitSet> blameInstrs;
  /// Region-only blame set per entity: IR-level writes to the variable's
  /// memory region that are not part of any value computation — view
  /// descriptor writes (domain remapping), zippered-iterator advances, and
  /// call sites whose callee writes the variable. These match samples (the
  /// paper's Count/binSpace rows, and the inclusive call-path credit) but
  /// do NOT transfer to consumers of the variable's value.
  std::vector<BitSet> regionInstrs;
  /// Explicit/implicit/alias inheritance edges: e inherits the full
  /// value-flow blame set of each entity in inheritsFrom[e].
  std::vector<SparseBitSet> inheritsFrom;
  /// Region inheritance: containment (a struct spans its fields' regions)
  /// and aliasing (an owner spans its slices' regions). Region blame flows
  /// only along these edges — never through value dependencies.
  std::vector<SparseBitSet> regionInheritsFrom;
  /// True when samples blamed to this entity must bubble to the caller
  /// (parameter roots of by-ref / array / domain kind).
  std::vector<bool> exitViaCaller;

  /// Interprocedural transfer function data per call/spawn site.
  struct CallSite {
    ir::FuncId callee = ir::kNone;
    /// Callee param index -> caller entity the argument roots at.
    std::vector<EntityId> paramToCallerEntity;  // kNoEntity when untracked
    /// Caller entities that consume the call's return value.
    SparseBitSet resultTargets;
  };
  std::unordered_map<ir::InstrId, CallSite> callsites;

  /// Inverted index: instruction -> entities whose blame set contains it.
  std::vector<std::vector<EntityId>> instrEntities;

  /// Source lines (within the defining file) of an entity's blame set —
  /// the "Blame Lines" representation from the paper's Table I.
  std::set<uint32_t> blameLines(const ir::Module& m, EntityId e) const;

  EntityId find(const EntityKey& k) const {
    auto it = index.find(k);
    return it == index.end() ? kNoEntity : it->second;
  }
};

/// Whole-module blame database (the paper's step-1 output).
struct ModuleBlame {
  const ir::Module* mod = nullptr;
  std::vector<FunctionBlame> functions;  // indexed by FuncId

  /// Module-scope alias groups: `var RealPos => Pos[binSpace];` puts
  /// RealPos and Pos in one group — a sample blaming one blames the whole
  /// group ("writes to the memory region allocated to the variable v, the
  /// aliases of v, ...", §III). Indexed by GlobalId; singleton groups for
  /// unaliased globals.
  std::vector<uint32_t> globalAliasGroup;
  std::vector<std::vector<ir::GlobalId>> aliasGroups;

  const FunctionBlame& fn(ir::FuncId f) const { return functions.at(f); }
  /// Other globals aliasing this one (excluding itself).
  std::vector<ir::GlobalId> aliasSiblings(ir::GlobalId g) const;
};

struct BlameOptions {
  bool implicitTransfer = true;   // control-dependence blame (ablatable)
  bool aliasTransfer = true;      // array-slice alias edges (ablatable)
  /// Use the seed's Jacobi round-robin fixpoints (intra-function blame
  /// propagation AND the write-summary call-graph closure) instead of the
  /// SCC-condensation passes. Oracle/ablation only: results are identical,
  /// this is the baseline `bench_analysis_scale` measures against.
  bool referenceFixpoint = false;
};

/// Runs the full static analysis over every function of the module.
ModuleBlame analyzeModule(const ir::Module& m, const BlameOptions& opts = {});

}  // namespace cb::an
