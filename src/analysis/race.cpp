#include "analysis/race.h"

#include <map>
#include <set>
#include <string>
#include <utility>

namespace cb::an::race {

using ir::BinKind;
using ir::BuiltinKind;
using ir::FuncId;
using ir::Instr;
using ir::InstrId;
using ir::Opcode;
using ir::TypeId;
using ir::TypeKind;
using ir::ValueRef;

namespace {

bool typeOwnsArrays(const ir::Module& m, TypeId t) {
  const ir::Type& ty = m.types().get(t);
  switch (ty.kind) {
    case TypeKind::Array: return true;
    case TypeKind::Tuple:
      for (TypeId e : ty.elems)
        if (typeOwnsArrays(m, e)) return true;
      return false;
    case TypeKind::Record:
      for (const ir::RecordField& f : ty.fields)
        if (typeOwnsArrays(m, f.type)) return true;
      return false;
    default: return false;
  }
}

constexpr uint32_t kArbSig = ~0u;

// The abstract interpreter. The *decision* logic is the battle-tested
// analysis extracted from the bytecode compiler: the fixpoint, the lattice
// joins and every fatal condition are unchanged, so eligibility is
// bit-identical to the historical in-engine check. What is new is the
// annotation layer: every way the proof can fail records a human-readable
// reason and the first offending instruction(s) into the Verdict.
struct Analyzer {
  const ir::Module& m;
  const ir::Function& fn;

  struct VC {
    enum K : uint8_t { Bot, Uni, Ind, Aff, AffN, CLo, CHi, Vary };
    K k = Bot;
    uint32_t s = 0;
  };
  struct RC {
    enum K : uint8_t { NotRef, Local, LocalField, TaskElem, Elem, Cap, Glob, Vary };
    K k = NotRef;
    uint32_t a = 0;    // alloca id / root id / arg index / global id
    uint32_t sig = 0;  // Elem only
    std::vector<uint32_t> path;  // Cap/Glob only
  };
  struct AC {
    enum K : uint8_t { NotArr, Root, TaskLocal, Vary };
    K k = NotArr;
    uint32_t root = 0;
  };

  std::vector<VC> vc;
  std::vector<RC> rc;
  std::vector<AC> ac;
  struct AllocaState {
    VC v;
    AC a;
  };
  std::vector<AllocaState> allocaSt;
  std::vector<bool> isInduction;

  std::map<std::string, uint32_t> symIds;
  std::vector<std::string> rootKeys;
  std::map<std::string, uint32_t> rootIds;
  std::vector<RootRef> rootRefs;
  struct SigElem {
    uint8_t k;  // 0 Uni, 1 Ind, 2 Aff, 3 AffN
    uint32_t s;
  };
  std::vector<std::pair<bool, std::vector<SigElem>>> sigs;
  std::map<std::string, uint32_t> sigIds;

  struct RootInfo {
    std::set<uint32_t> wsigs, rsigs;
    bool arbW = false, arbR = false;
    // Diagnostics only: first instruction seen per signature / arbitrary
    // access (never consulted by the eligibility decision).
    std::map<uint32_t, InstrId> wAt, rAt;
    InstrId arbWAt = ir::kNone, arbRAt = ir::kNone;
  };
  std::map<uint32_t, RootInfo> rootInfo;

  bool fatal = false;
  bool anyUnknownRead = false;
  InstrId unknownReadAt = ir::kNone;
  bool changed = false;
  bool record = false;

  Verdict verdict;

  Analyzer(const ir::Module& mod, const ir::Function& f) : m(mod), fn(f) {
    size_t n = fn.numInstrs();
    vc.resize(n);
    rc.resize(n);
    ac.resize(n);
    allocaSt.resize(n);
    isInduction.assign(n, false);
    findInductionAllocas();
  }

  uint32_t sym(const std::string& s) {
    auto [it, fresh] = symIds.emplace(s, static_cast<uint32_t>(symIds.size()));
    return it->second;
  }

  uint32_t rootId(bool fromGlobal, bool deref, uint32_t index,
                  const std::vector<uint32_t>& path) {
    std::string key = (fromGlobal ? "g" : "a");
    key += deref ? "d:" : ":";
    key += std::to_string(index);
    for (uint32_t p : path) key += "." + std::to_string(p);
    auto it = rootIds.find(key);
    if (it != rootIds.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(rootRefs.size());
    rootIds.emplace(key, id);
    rootRefs.push_back(RootRef{fromGlobal, deref, index, path, false});
    return id;
  }

  uint32_t internSig(bool linear, const std::vector<SigElem>& elems) {
    std::string key = linear ? "L" : "M";
    for (const SigElem& e : elems)
      key += ";" + std::to_string(e.k) + ":" + std::to_string(e.s);
    auto it = sigIds.find(key);
    if (it != sigIds.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(sigs.size());
    sigIds.emplace(key, id);
    sigs.emplace_back(linear, elems);
    return id;
  }

  void findInductionAllocas() {
    // The chunk loop's counter: an alloca with exactly two stores, one of
    // the chunk_lo argument (arg 0) and one of (load(self) + 1).
    std::vector<std::vector<InstrId>> storesTo(fn.numInstrs());
    for (InstrId i = 0; i < fn.numInstrs(); ++i) {
      const Instr& in = fn.instrs[i];
      if (in.op != Opcode::Store || in.ops.size() != 2) continue;
      if (in.ops[1].isReg() && fn.instrs[in.ops[1].reg].op == Opcode::Alloca)
        storesTo[in.ops[1].reg].push_back(i);
    }
    for (InstrId a = 0; a < fn.numInstrs(); ++a) {
      if (fn.instrs[a].op != Opcode::Alloca || storesTo[a].size() != 2) continue;
      bool init = false, inc = false;
      for (InstrId s : storesTo[a]) {
        const ValueRef& v = fn.instrs[s].ops[0];
        if (v.kind == ValueRef::Kind::Arg && v.arg == 0) { init = true; continue; }
        if (!v.isReg()) continue;
        const Instr& add = fn.instrs[v.reg];
        if (add.op != Opcode::Bin || add.extra.bin != BinKind::Add || add.ops.size() != 2)
          continue;
        for (int side = 0; side < 2; ++side) {
          const ValueRef& x = add.ops[side];
          const ValueRef& y = add.ops[1 - side];
          if (y.kind != ValueRef::Kind::ConstInt || y.i != 1) continue;
          if (x.isReg() && fn.instrs[x.reg].op == Opcode::Load &&
              fn.instrs[x.reg].ops[0].isReg() && fn.instrs[x.reg].ops[0].reg == a)
            inc = true;
        }
      }
      if (init && inc) isInduction[a] = true;
    }
  }

  // -- joins ----------------------------------------------------------------
  static VC joinVC(const VC& a, const VC& b) {
    if (a.k == VC::Bot) return b;
    if (b.k == VC::Bot) return a;
    if (a.k == b.k && a.s == b.s) return a;
    return VC{VC::Vary, 0};
  }
  static AC joinAC(const AC& a, const AC& b) {
    if (a.k == AC::NotArr) return b;
    if (b.k == AC::NotArr) return a;
    if (a.k == b.k && a.root == b.root) return a;
    return AC{AC::Vary, 0};
  }

  void setVC(InstrId i, VC v) {
    if (vc[i].k != v.k || vc[i].s != v.s) { vc[i] = v; changed = true; }
  }
  void setRC(InstrId i, RC r) {
    if (rc[i].k != r.k || rc[i].a != r.a || rc[i].sig != r.sig || rc[i].path != r.path) {
      rc[i] = std::move(r);
      changed = true;
    }
  }
  void setAC(InstrId i, AC a) {
    if (ac[i].k != a.k || ac[i].root != a.root) { ac[i] = a; changed = true; }
  }
  void joinAlloca(InstrId a, const VC& v, const AC& arr) {
    VC nv = joinVC(allocaSt[a].v, v);
    AC na = joinAC(allocaSt[a].a, arr);
    if (nv.k != allocaSt[a].v.k || nv.s != allocaSt[a].v.s || na.k != allocaSt[a].a.k ||
        na.root != allocaSt[a].a.root) {
      allocaSt[a].v = nv;
      allocaSt[a].a = na;
      changed = true;
    }
  }

  // -- operand classification ----------------------------------------------
  VC vcOf(const ValueRef& v) {
    switch (v.kind) {
      case ValueRef::Kind::ConstInt: return VC{VC::Uni, sym("ci:" + std::to_string(v.i))};
      case ValueRef::Kind::ConstReal: {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v.r));
        __builtin_memcpy(&bits, &v.r, sizeof(bits));
        return VC{VC::Uni, sym("cr:" + std::to_string(bits))};
      }
      case ValueRef::Kind::ConstBool: return VC{VC::Uni, sym(v.b ? "cb:1" : "cb:0")};
      case ValueRef::Kind::ConstString:
        return VC{VC::Uni, sym("cs:" + std::to_string(v.stringId))};
      case ValueRef::Kind::Arg:
        if (v.arg == 0) return VC{VC::CLo, 0};
        if (v.arg == 1) return VC{VC::CHi, 0};
        if (v.arg < fn.params.size() && fn.params[v.arg].byRef) return VC{VC::Vary, 0};
        return VC{VC::Uni, sym("arg:" + std::to_string(v.arg))};
      case ValueRef::Kind::Reg: return vc[v.reg];
      default: return VC{VC::Vary, 0};
    }
  }
  RC rcOf(const ValueRef& v) {
    if (v.isReg()) return rc[v.reg];
    if (v.kind == ValueRef::Kind::Arg && v.arg < fn.params.size() && fn.params[v.arg].byRef)
      return RC{RC::Cap, v.arg, 0, {}};
    if (v.kind == ValueRef::Kind::GlobalAddr) return RC{RC::Glob, v.global, 0, {}};
    return RC{RC::NotRef, 0, 0, {}};
  }
  AC acOf(const ValueRef& v) {
    if (v.isReg()) return ac[v.reg];
    if (v.kind == ValueRef::Kind::Arg && v.arg < fn.params.size() && !fn.params[v.arg].byRef &&
        m.types().kindOf(fn.params[v.arg].type) == TypeKind::Array)
      return AC{AC::Root, rootId(false, false, v.arg, {})};
    return AC{AC::NotArr};
  }
  bool operandIsRefValue(const ValueRef& v) {
    return rcOf(v).k != RC::NotRef;
  }
  TypeId operandType(const ValueRef& v) {
    if (v.isReg()) return fn.instrs[v.reg].type;
    if (v.kind == ValueRef::Kind::Arg && v.arg < fn.params.size())
      return fn.params[v.arg].type;
    return ir::kInvalidType;
  }

  void markRead(uint32_t root, uint32_t sig, InstrId at) {
    if (!record) return;
    RootInfo& info = rootInfo[root];
    if (sig == kArbSig) {
      info.arbR = true;
      if (info.arbRAt == ir::kNone) info.arbRAt = at;
    } else {
      info.rsigs.insert(sig);
      info.rAt.emplace(sig, at);
    }
  }
  void markWrite(uint32_t root, uint32_t sig, InstrId at) {
    if (!record) return;
    RootInfo& info = rootInfo[root];
    if (sig == kArbSig) {
      info.arbW = true;
      if (info.arbWAt == ir::kNone) info.arbWAt = at;
    } else {
      info.wsigs.insert(sig);
      info.wAt.emplace(sig, at);
    }
  }
  void noteUnknownRead(InstrId at) {
    if (!record) return;
    anyUnknownRead = true;
    if (unknownReadAt == ir::kNone) unknownReadAt = at;
  }
  /// The analysis hit something outside its abstraction: record why (first
  /// obstruction wins) and force the sequential fallback.
  void bail(InstrId at, const char* what) {
    if (!record) return;
    fatal = true;
    if (verdict.reason.empty()) {
      verdict.reason = what;
      verdict.offenders.push_back(Offender{at, false, what});
    }
  }

  // -- transfer -------------------------------------------------------------
  void transfer(InstrId i) {
    const Instr& in = fn.instrs[i];
    switch (in.op) {
      case Opcode::Alloca:
        setRC(i, RC{RC::Local, i, 0, {}});
        break;
      case Opcode::Load: {
        RC r = rcOf(in.ops[0]);
        bool isArr = in.type != ir::kInvalidType &&
                     m.types().kindOf(in.type) == TypeKind::Array;
        bool owns = in.type != ir::kInvalidType && !isArr && typeOwnsArrays(m, in.type);
        if (owns && r.k != RC::Local)
          bail(i, "a record-of-arrays handle escapes task-local storage");
        switch (r.k) {
          case RC::Local:
            setVC(i, isInduction[r.a] ? VC{VC::Ind, 0} : allocaSt[r.a].v);
            if (isArr) setAC(i, allocaSt[r.a].a);
            break;
          case RC::LocalField:
            if (isArr || owns)
              bail(i, "an array handle is loaded through a record field");
            setVC(i, VC{VC::Vary, 0});
            break;
          case RC::TaskElem:
            if (isArr) setAC(i, AC{AC::TaskLocal, 0});
            setVC(i, VC{VC::Vary, 0});
            break;
          case RC::Elem:
            markRead(r.a, r.sig, i);
            if (isArr) setAC(i, AC{AC::Vary, 0});
            setVC(i, VC{VC::Vary, 0});
            break;
          case RC::Cap:
          case RC::Glob: {
            bool g = r.k == RC::Glob;
            std::string tag = (g ? "g:" : "cap:") + std::to_string(r.a);
            for (uint32_t p : r.path) tag += "." + std::to_string(p);
            if (isArr) setAC(i, AC{AC::Root, rootId(g, !g, r.a, r.path)});
            setVC(i, VC{VC::Uni, sym(tag)});
            break;
          }
          default:
            noteUnknownRead(i);
            if (isArr) setAC(i, AC{AC::Vary, 0});
            setVC(i, VC{VC::Vary, 0});
            break;
        }
        break;
      }
      case Opcode::Store: {
        RC r = rcOf(in.ops[1]);
        VC v = vcOf(in.ops[0]);
        AC av = acOf(in.ops[0]);
        TypeId vt = operandType(in.ops[0]);
        bool vIsArr = vt != ir::kInvalidType && m.types().kindOf(vt) == TypeKind::Array;
        bool vOwns = vt != ir::kInvalidType && !vIsArr && typeOwnsArrays(m, vt);
        bool vIsRef = operandIsRefValue(in.ops[0]) ||
                      in.ops[0].kind == ValueRef::Kind::GlobalAddr;
        switch (r.k) {
          case RC::Local:
            joinAlloca(r.a, vIsArr ? VC{VC::Vary, 0} : v, vIsArr ? av : AC{AC::NotArr});
            if (vOwns || vIsRef)
              bail(i, "a reference or array-owning value is stored to a local");
            break;
          case RC::LocalField:
          case RC::TaskElem:
            if (vOwns || vIsRef || (vIsArr && av.k != AC::TaskLocal))
              bail(i, "a shared handle is stored through a record field or element");
            break;
          case RC::Elem:
            markWrite(r.a, r.sig, i);
            if (vOwns || vIsArr || vIsRef)
              bail(i, "a reference or array value is stored into an array element");
            break;
          default:
            bail(i, "a store through an unresolved reference (capture or global write)");
            break;
        }
        break;
      }
      case Opcode::FieldAddr:
      case Opcode::TupleAddr: {
        RC r = rcOf(in.ops[0]);
        bool dyn = in.op == Opcode::TupleAddr && in.ops.size() == 2;
        switch (r.k) {
          case RC::Local:
          case RC::LocalField: setRC(i, RC{RC::LocalField, r.a, 0, {}}); break;
          case RC::TaskElem: setRC(i, RC{RC::TaskElem, 0, 0, {}}); break;
          case RC::Elem: setRC(i, RC{RC::Elem, r.a, r.sig, {}}); break;
          case RC::Cap:
          case RC::Glob:
            if (dyn) { setRC(i, RC{RC::Vary, 0, 0, {}}); break; }
            {
              RC nr = r;
              nr.path.push_back(in.imm);
              setRC(i, std::move(nr));
            }
            break;
          default: setRC(i, RC{RC::Vary, 0, 0, {}}); break;
        }
        break;
      }
      case Opcode::IndexAddr: {
        AC base = acOf(in.ops[0]);
        switch (base.k) {
          case AC::Root: {
            bool linear = (in.imm & 1) != 0;
            std::vector<SigElem> elems;
            bool arb = false;
            for (size_t k = 1; k < in.ops.size(); ++k) {
              VC c = vcOf(in.ops[k]);
              switch (c.k) {
                case VC::Uni: elems.push_back({0, c.s}); break;
                case VC::Ind: elems.push_back({1, 0}); break;
                case VC::Aff: elems.push_back({2, c.s}); break;
                case VC::AffN: elems.push_back({3, c.s}); break;
                default: arb = true; break;
              }
            }
            setRC(i, RC{RC::Elem, base.root, arb ? kArbSig : internSig(linear, elems), {}});
            break;
          }
          case AC::TaskLocal: setRC(i, RC{RC::TaskElem, 0, 0, {}}); break;
          default: setRC(i, RC{RC::Vary, 0, 0, {}}); break;
        }
        break;
      }
      case Opcode::Bin: {
        TypeKind rk = m.types().kindOf(in.type);
        VC a = vcOf(in.ops[0]), b = vcOf(in.ops[1]);
        auto uni2 = [&](const char* tag) {
          return VC{VC::Uni, sym(std::string(tag) + "(" + std::to_string(a.s) + "," +
                                 std::to_string(b.s) + ")")};
        };
        if (rk != TypeKind::Int) {
          setVC(i, (a.k == VC::Uni && b.k == VC::Uni)
                       ? uni2(("b" + std::to_string(static_cast<int>(in.extra.bin))).c_str())
                       : VC{VC::Vary, 0});
          break;
        }
        VC out{VC::Vary, 0};
        BinKind k = in.extra.bin;
        if (a.k == VC::Uni && b.k == VC::Uni) {
          out = uni2(("b" + std::to_string(static_cast<int>(k))).c_str());
        } else if (k == BinKind::Add) {
          if ((a.k == VC::Uni && b.k == VC::Ind) || (a.k == VC::Ind && b.k == VC::Uni))
            out = VC{VC::Aff, a.k == VC::Uni ? a.s : b.s};
          else if ((a.k == VC::Uni && b.k == VC::Aff) || (a.k == VC::Aff && b.k == VC::Uni))
            out = VC{VC::Aff, sym("+(" + std::to_string(std::min(a.s, b.s)) + "," +
                                  std::to_string(std::max(a.s, b.s)) + ")+")};
          else if ((a.k == VC::Uni && b.k == VC::AffN) || (a.k == VC::AffN && b.k == VC::Uni))
            out = VC{VC::AffN, sym("+(" + std::to_string(std::min(a.s, b.s)) + "," +
                                   std::to_string(std::max(a.s, b.s)) + ")-")};
        } else if (k == BinKind::Sub) {
          if (a.k == VC::Ind && b.k == VC::Uni)
            out = VC{VC::Aff, sym("neg(" + std::to_string(b.s) + ")")};
          else if (a.k == VC::Aff && b.k == VC::Uni)
            out = VC{VC::Aff, sym("-(" + std::to_string(a.s) + "," + std::to_string(b.s) + ")+")};
          else if (a.k == VC::Uni && b.k == VC::Ind)
            out = VC{VC::AffN, a.s};
          else if (a.k == VC::Uni && b.k == VC::Aff)
            out = VC{VC::AffN, sym("-(" + std::to_string(a.s) + "," + std::to_string(b.s) + ")-")};
          else if (a.k == VC::AffN && b.k == VC::Uni)
            out = VC{VC::AffN, sym("-(" + std::to_string(a.s) + "," + std::to_string(b.s) + ")n")};
        }
        setVC(i, out);
        break;
      }
      case Opcode::Un: {
        VC a = vcOf(in.ops[0]);
        setVC(i, a.k == VC::Uni
                     ? VC{VC::Uni, sym("u" + std::to_string(static_cast<int>(in.extra.un)) +
                                       "(" + std::to_string(a.s) + ")")}
                     : VC{VC::Vary, 0});
        break;
      }
      case Opcode::TupleMake: {
        bool allUni = true;
        std::string tag = "tm";
        for (const ValueRef& o : in.ops) {
          // Keep the original short-circuit: acOf interns root ids, so it
          // must not run during the fixpoint passes (id numbering parity).
          if (record && (operandIsRefValue(o) || acOf(o).k != AC::NotArr))
            bail(i, "a tuple captures a reference or array handle");
          VC c = vcOf(o);
          if (c.k != VC::Uni) allUni = false;
          else tag += ":" + std::to_string(c.s);
        }
        if (in.type != ir::kInvalidType && typeOwnsArrays(m, in.type))
          bail(i, "a tuple owning array storage is constructed");
        setVC(i, allUni ? VC{VC::Uni, sym(tag)} : VC{VC::Vary, 0});
        break;
      }
      case Opcode::TupleGet: {
        if (in.type != ir::kInvalidType && typeOwnsArrays(m, in.type))
          bail(i, "an array handle is extracted from a tuple");
        VC t = vcOf(in.ops[0]);
        bool dyn = in.ops.size() == 2;
        VC idx = dyn ? vcOf(in.ops[1]) : VC{VC::Uni, sym("imm:" + std::to_string(in.imm))};
        setVC(i, (t.k == VC::Uni && idx.k == VC::Uni)
                     ? VC{VC::Uni, sym("tg(" + std::to_string(t.s) + "," +
                                       std::to_string(idx.s) + ")")}
                     : VC{VC::Vary, 0});
        break;
      }
      case Opcode::RecordNew:
        if (typeOwnsArrays(m, in.type))
          bail(i, "a record owning array storage is constructed (runs domain thunks)");
        setVC(i, VC{VC::Vary, 0});
        break;
      case Opcode::DomainMake:
      case Opcode::DomainExpand: {
        bool allUni = true;
        std::string tag = "dm";
        for (const ValueRef& o : in.ops) {
          VC c = vcOf(o);
          if (c.k != VC::Uni) { allUni = false; break; }
          tag += ":" + std::to_string(c.s);
        }
        setVC(i, allUni ? VC{VC::Uni, sym(tag)} : VC{VC::Vary, 0});
        break;
      }
      case Opcode::DomainSize:
      case Opcode::DomainDim: {
        AC base = acOf(in.ops[0]);
        if (base.k == AC::Root) {
          setVC(i, VC{VC::Uni, sym("dq:" + std::to_string(base.root) + ":" +
                                   std::to_string(in.imm) +
                                   (in.op == Opcode::DomainSize ? "s" : "d"))});
        } else {
          VC d = vcOf(in.ops[0]);
          setVC(i, d.k == VC::Uni
                       ? VC{VC::Uni, sym("dq(" + std::to_string(d.s) + "," +
                                         std::to_string(in.imm) + ")")}
                       : VC{VC::Vary, 0});
        }
        break;
      }
      case Opcode::ArrayNew:
        setAC(i, AC{AC::TaskLocal, 0});
        break;
      case Opcode::ArrayView:
        // Views remap coordinates; accesses through them are not comparable
        // with direct-root signatures. Reads stay safe, writes bail.
        setAC(i, AC{AC::Vary, 0});
        break;
      case Opcode::Call:
        bail(i, "the region calls another procedure");
        setVC(i, VC{VC::Vary, 0});
        break;
      case Opcode::Spawn:
        bail(i, "the region contains a nested forall/coforall");
        setVC(i, VC{VC::Vary, 0});
        break;
      case Opcode::Builtin:
        switch (in.extra.builtin) {
          case BuiltinKind::Random:
            bail(i, "the region draws from the shared random stream");
            break;
          case BuiltinKind::Writeln:
            for (const ValueRef& o : in.ops) {
              if (operandIsRefValue(o))
                bail(i, "writeln prints through a reference");
              AC a = acOf(o);
              if (a.k == AC::Root) {
                if (record) {
                  RootInfo& info = rootInfo[a.root];
                  info.arbR = true;
                  if (info.arbRAt == ir::kNone) info.arbRAt = i;
                }
              } else if (a.k == AC::Vary) {
                noteUnknownRead(i);
              }
            }
            break;
          case BuiltinKind::ArrayFill:
          case BuiltinKind::ArrayCopy: {
            AC dst = acOf(in.ops[0]);
            if (dst.k != AC::TaskLocal)
              bail(i, "a whole-array fill/copy targets a shared array");
            if (in.extra.builtin == BuiltinKind::ArrayCopy) {
              AC src = acOf(in.ops[1]);
              if (src.k == AC::Root) {
                if (record) {
                  RootInfo& info = rootInfo[src.root];
                  info.arbR = true;
                  if (info.arbRAt == ir::kNone) info.arbRAt = i;
                }
              } else if (src.k == AC::Vary) {
                noteUnknownRead(i);
              }
            }
            break;
          }
          case BuiltinKind::ConfigGet:
            setVC(i, vcOf(in.ops[1]).k == VC::Uni
                         ? VC{VC::Uni, sym("cfg:" + std::to_string(i))}
                         : VC{VC::Vary, 0});
            break;
          case BuiltinKind::Dmapped:
          case BuiltinKind::OnBegin:
          case BuiltinKind::OnEnd:
            // Locale switches mutate shared runtime state (current locale,
            // comm counters follow task order): keep such regions sequential.
            bail(i, "the region switches locales (`on` block)");
            setVC(i, VC{VC::Vary, 0});
            break;
          case BuiltinKind::AggOpen:
          case BuiltinKind::AggCopy:
          case BuiltinKind::AggClose:
            // Aggregator buffers are per-task mutable runtime state whose
            // flush points depend on copy order: keep such regions
            // sequential so replay stays deterministic.
            bail(i, "the region uses a remote-access aggregator (flush order)");
            setVC(i, VC{VC::Vary, 0});
            break;
          case BuiltinKind::HereId:
            setVC(i, VC{VC::Uni, sym("here")});
            break;
          case BuiltinKind::NumLocales:
            setVC(i, VC{VC::Uni, sym("nloc")});
            break;
          default:  // Clock / Yield / HeapHint
            setVC(i, VC{VC::Vary, 0});
            break;
        }
        break;
      default:  // Ret / Br / CondBr / IterOverhead
        break;
    }
  }

  Verdict mayRace(std::string reason, std::vector<Offender> offenders) {
    Verdict v;
    v.raceFree = false;
    v.reason = std::move(reason);
    v.offenders = std::move(offenders);
    return v;
  }

  std::string rootName(uint32_t root) const {
    return describeRoot(m, fn, rootRefs[root]);
  }

  Verdict run() {
    for (int iter = 0; iter < 32; ++iter) {
      changed = false;
      for (InstrId i = 0; i < fn.numInstrs(); ++i) transfer(i);
      if (!changed) break;
      if (iter == 31)
        return mayRace("the abstract interpretation did not converge", {});
    }
    record = true;
    for (InstrId i = 0; i < fn.numInstrs(); ++i) {
      transfer(i);
      if (fatal) {
        verdict.raceFree = false;
        return std::move(verdict);
      }
    }
    bool anyWrite = false;
    for (auto& [root, info] : rootInfo) {
      bool w = info.arbW || !info.wsigs.empty();
      if (!w) continue;
      anyWrite = true;
      rootRefs[root].written = true;
      if (info.arbW || info.arbR) {
        std::vector<Offender> off;
        if (info.arbWAt != ir::kNone)
          off.push_back({info.arbWAt, true, "non-affine write index"});
        if (info.arbRAt != ir::kNone)
          off.push_back({info.arbRAt, false, "non-affine read index"});
        return mayRace("`" + rootName(root) +
                           "` is written and indexed by a non-affine (task-varying) "
                           "expression, so tasks may collide",
                       std::move(off));
      }
      std::set<uint32_t> all = info.wsigs;
      all.insert(info.rsigs.begin(), info.rsigs.end());
      if (all.size() != 1) {
        std::vector<Offender> off;
        for (const auto& [sig, at] : info.wAt)
          off.push_back({at, true, "write signature " + std::to_string(sig)});
        for (const auto& [sig, at] : info.rAt)
          off.push_back({at, false, "read signature " + std::to_string(sig)});
        return mayRace("`" + rootName(root) + "` is accessed through " +
                           std::to_string(all.size()) +
                           " distinct index expressions, which may overlap across tasks",
                       std::move(off));
      }
      const auto& [linear, elems] = sigs[*all.begin()];
      bool disjoint = false;
      for (const SigElem& e : elems)
        if (e.k != 0) disjoint = true;
      (void)linear;
      if (!disjoint) {
        std::vector<Offender> off;
        if (!info.wAt.empty())
          off.push_back({info.wAt.begin()->second, true, "task-uniform write index"});
        return mayRace("every task writes `" + rootName(root) +
                           "` at the same task-uniform indices",
                       std::move(off));
      }
    }
    if (anyUnknownRead && anyWrite) {
      std::vector<Offender> off;
      if (unknownReadAt != ir::kNone)
        off.push_back({unknownReadAt, false, "read through an unresolved reference"});
      return mayRace(
          "a read through an unresolved reference may alias a written array",
          std::move(off));
    }
    verdict.raceFree = true;
    verdict.reason.clear();
    verdict.offenders.clear();
    verdict.roots = rootRefs;
    return std::move(verdict);
  }
};

}  // namespace

Verdict analyzeTaskFunction(const ir::Module& m, ir::FuncId taskFn) {
  Analyzer an(m, m.function(taskFn));
  return an.run();
}

std::string describeRoot(const ir::Module& m, const ir::Function& taskFn, const RootRef& r) {
  std::string s;
  if (r.fromGlobal) {
    s = m.interner().str(m.global(r.index).name);
  } else if (r.index < taskFn.params.size()) {
    s = m.interner().str(taskFn.params[r.index].name);
  } else {
    s = "arg" + std::to_string(r.index);
  }
  for (uint32_t p : r.path) s += ".field" + std::to_string(p);
  return s;
}

}  // namespace cb::an::race
