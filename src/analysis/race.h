// Race-freedom prover for forall/coforall task functions.
//
// This is the formalized version of the parallel-replay eligibility analysis
// that used to live privately inside the bytecode compiler
// (src/runtime/bytecode.cpp). Both execution engines now gate their
// parallel-replay decision on the verdicts produced here, and the lint pass
// (analysis/locality.h) reports the same verdicts as diagnostics explaining
// WHY a region fell back to sequential replay.
//
// The analysis is a flow-insensitive abstract interpretation of the outlined
// task function. Integer values are classified relative to the chunk loop:
// Uniform (same value in every task, with an interned symbolic identity),
// Induction (the chunk-loop counter, whose ranges are disjoint across tasks),
// Aff/AffN (uniform +/- induction — still injective, so same-signature
// accesses from different tasks never collide), or Varying. Shared arrays are
// tracked back to task-invariant roots (globals / byval iterand args / byref
// captures, possibly through record-field paths); every element access
// through a root is summarized by the signature of its index vector.
//
// A region is RaceFree when each written root is touched through exactly one
// disjointness-bearing signature and nothing falls outside the abstraction
// (calls, nested spawns, RNG, global or capture stores, views, escaping
// handles...). Anything not understood degrades to MayRace — i.e. a
// sequential fallback — never to an actual replay race. Soundness therefore
// only depends on the *positive* direction: RaceFree must imply that
// worker-stream replay order cannot change any observable value.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/module.h"

namespace cb::an::race {

/// A shared-array root the task function accesses: the task-invariant place
/// the array handle is loaded from, resolved to a concrete ArrayObj at spawn
/// time by the engines. `index`/`deref` describe task-fn arguments (byval
/// iterand arrays, or byref captures dereferenced once); globals walk
/// `index` as a GlobalId. `path` is a chain of record-field / tuple-element
/// indices.
struct RootRef {
  bool fromGlobal = false;
  bool deref = false;       // arg holds a Ref that must be dereferenced first
  uint32_t index = 0;       // GlobalId or task-fn arg index
  std::vector<uint32_t> path;
  bool written = false;     // some task may write elements of this root
};

/// One access (or other instruction) that defeated the proof.
struct Offender {
  ir::InstrId instr = ir::kNone;
  bool isWrite = false;
  std::string what;         // short description of the offending operation
};

/// Per-region verdict: RaceFree (parallel replay allowed, `roots` lists the
/// shared arrays needing runtime alias checks) or MayRace (`reason` explains
/// the first obstruction, `offenders` pins it to instructions when known).
struct Verdict {
  bool raceFree = false;
  std::string reason;               // empty when raceFree
  std::vector<Offender> offenders;  // may be empty (structural reasons)
  std::vector<RootRef> roots;       // all roots seen (valid when raceFree)
};

/// Analyzes one outlined task function. Deterministic and side-effect free;
/// the eligibility decision is bit-identical to the historical in-engine
/// analysis (the instrumentation only *annotates* failures).
Verdict analyzeTaskFunction(const ir::Module& m, ir::FuncId taskFn);

/// Memoizing wrapper for engines / lint passes that query per spawn site.
class RaceCache {
 public:
  const Verdict& verdictFor(const ir::Module& m, ir::FuncId taskFn) {
    auto it = cache_.find(taskFn);
    if (it != cache_.end()) return it->second;
    return cache_.emplace(taskFn, analyzeTaskFunction(m, taskFn)).first->second;
  }

 private:
  std::unordered_map<ir::FuncId, Verdict> cache_;
};

/// Human-readable name of a root for diagnostics: the global's name, the
/// task-fn parameter's name, plus any record-field path ("g:Force" style
/// keys never leak to users).
std::string describeRoot(const ir::Module& m, const ir::Function& taskFn, const RootRef& r);

}  // namespace cb::an::race
