#include "analysis/cfg.h"

#include <algorithm>

namespace cb::an {

namespace {

void postorder(ir::BlockId start, const std::vector<std::vector<ir::BlockId>>& adj,
               std::vector<ir::BlockId>& out) {
  std::vector<uint8_t> state(adj.size(), 0);  // 0=unseen 1=open 2=done
  std::vector<std::pair<ir::BlockId, size_t>> stack;
  stack.emplace_back(start, 0);
  state[start] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    if (next < adj[b].size()) {
      ir::BlockId s = adj[b][next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      out.push_back(b);
      state[b] = 2;
      stack.pop_back();
    }
  }
}

}  // namespace

Cfg::Cfg(const ir::Function& fn) : fn_(&fn), numBlocks_(fn.numBlocks()) {
  size_t n = numBlocks_ + 1;  // + virtual exit
  succs_.resize(n);
  preds_.resize(n);
  for (ir::BlockId b = 0; b < numBlocks_; ++b) {
    for (ir::BlockId s : fn.successors(b)) {
      succs_[b].push_back(s);
      preds_[s].push_back(b);
    }
    if (fn.terminator(b).op == ir::Opcode::Ret) {
      succs_[b].push_back(virtualExit());
      preds_[virtualExit()].push_back(b);
    }
  }

  std::vector<ir::BlockId> po;
  postorder(0, succs_, po);
  rpo_.assign(po.rbegin(), po.rend());

  std::vector<ir::BlockId> rpoBack;
  postorder(virtualExit(), preds_, rpoBack);
  rrpo_.assign(rpoBack.rbegin(), rpoBack.rend());
}

}  // namespace cb::an
