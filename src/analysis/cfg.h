// Control-flow-graph utilities over CIR functions.
#pragma once

#include <vector>

#include "ir/function.h"

namespace cb::an {

/// Predecessor lists and traversal orders for one function's CFG.
/// A virtual exit node (id = numBlocks()) is appended so post-dominance is
/// well-defined for functions with multiple returns.
class Cfg {
 public:
  explicit Cfg(const ir::Function& fn);

  const ir::Function& fn() const { return *fn_; }
  size_t numBlocks() const { return numBlocks_; }          // real blocks
  ir::BlockId virtualExit() const { return static_cast<ir::BlockId>(numBlocks_); }

  const std::vector<ir::BlockId>& succs(ir::BlockId b) const { return succs_[b]; }
  const std::vector<ir::BlockId>& preds(ir::BlockId b) const { return preds_[b]; }

  /// Reverse postorder over the forward CFG starting at the entry.
  const std::vector<ir::BlockId>& rpo() const { return rpo_; }
  /// Reverse postorder over the reversed CFG starting at the virtual exit.
  const std::vector<ir::BlockId>& reverseRpo() const { return rrpo_; }

 private:
  const ir::Function* fn_;
  size_t numBlocks_;
  std::vector<std::vector<ir::BlockId>> succs_;  // incl. virtual exit node
  std::vector<std::vector<ir::BlockId>> preds_;
  std::vector<ir::BlockId> rpo_;
  std::vector<ir::BlockId> rrpo_;
};

}  // namespace cb::an
