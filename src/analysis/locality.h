// Static locality-and-parallelism analysis (`cb --lint`).
//
// Predicts, at compile time, the PGAS communication behaviour the virtual
// runtime would measure: for every distributed array, the expected
// local/remote-GET/remote-PUT split, the locale-pair footprint, and a
// counterfactual split under the swapped Block<->Cyclic distribution. The
// predictor is a concrete mirror of the CIR interpreter's array-ownership
// semantics (src/runtime/interp.cpp): it evaluates index expressions against
// each array's `dmapped` domain exactly as the runtime would, but without the
// PMU, worker streams, or sampling machinery — so on a well-formed module the
// predicted remote GET/PUT counts equal the RunLog's commGets/commPuts
// bit-for-bit (tests/test_lint.cpp asserts this on generated programs).
//
// On top of the per-site statistics, the linter derives findings:
//   - DistributionMismatch: a mostly-remote array whose swapped distribution
//     would be mostly-local ("`Pos` is Cyclic but iterated in Block chunks;
//     suggest `dmapped Block`").
//   - MissingAggregator: fine-grained naive remote traffic inside a
//     forall/coforall with no Src/DstAggregator on the array.
//   - MayRaceRegion: a forall/coforall region the race-freedom prover
//     (analysis/race.h) could not clear, with the reason and the offending
//     instructions — these regions silently serialize at replay time.
//   - AnalysisTruncated: the mirror hit its step budget; statistics are a
//     prefix of the program, not the whole run.
//
// The static-vs-dynamic differential (predicted split vs a measured
// BlameReport) lives in the report layer (rpt::lintView), which can see the
// postmortem types without creating a library cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/race.h"
#include "ir/module.h"

namespace cb::an::loc {

struct Params {
  /// Simulated locale count / starting locale, matching
  /// rt::RunOptions::numLocales / localeId for exact-parity checks.
  uint32_t numLocales = 4;
  uint32_t homeLocale = 0;
  /// Abstract instruction budget: the mirror stops (truncated = true) rather
  /// than run away on huge inputs. Statistics stay valid as a prefix.
  uint64_t stepBudget = 400000000ULL;
  /// config-const overrides, exactly like rt::RunOptions::configOverrides.
  std::unordered_map<std::string, std::string> configOverrides;
  uint64_t rngSeed = 0x5eedULL;  // mirror of RunOptions::rngSeed
  /// Per-instruction static cost, used only for the expected-sample-mass
  /// model behind ArrayStats::remoteFraction (injected so the analysis
  /// library needs no runtime dependency; pass rt::CostModel::cost).
  /// When empty, fractions fall back to raw access counts.
  std::function<uint64_t(const ir::Instr&)> instrCost;
  /// Cycle surcharges for remote transfers under the mass model; defaults
  /// match rt::CostProfile::standard().
  uint64_t remoteGetCost = 600, remotePutCost = 700, viewIndexExtraCost = 10;
  /// Naive remote accesses inside one parallel region before a
  /// MissingAggregator finding fires (default: the aggregator buffer
  /// capacity, where batching starts to pay).
  uint64_t aggSuggestThreshold = 64;
};

enum class FindingKind : uint8_t {
  DistributionMismatch,
  MissingAggregator,
  MayRaceRegion,
  StaticDynamicDivergence,  // produced by the report layer's differential
  AnalysisTruncated,
};

struct Finding {
  FindingKind kind = FindingKind::DistributionMismatch;
  std::string variable;           // array / region anchor ("" when global)
  SourceLoc loc;                  // best source anchor for the diagnostic
  std::string message;            // human-readable, includes the suggestion
  double predictedRemoteFraction = 0.0;
  double counterfactualRemoteFraction = 0.0;  // swapped-distribution estimate
  double measuredRemoteFraction = 0.0;        // differential findings only
};

const char* findingKindName(FindingKind k);

/// Aggregated statistics for one runtime array object (views collapse onto
/// the owning allocation, like the runtime's ownership resolution).
struct ArrayStats {
  std::string name;          // user variable name, or "<anon>" fallback
  SourceLoc declLoc;         // allocation site (or naming store)
  uint8_t distKind = 0;      // 0 = local, 1 = Block, 2 = Cyclic
  int64_t elems = 0;
  uint64_t accesses = 0;     // naive element accesses (IndexAddr)
  uint64_t remoteGets = 0;
  uint64_t remotePuts = 0;
  uint64_t aggGets = 0;      // aggregated remote traffic (AggCopy)
  uint64_t aggPuts = 0;
  uint64_t aggLocal = 0;
  /// Remote count had the distribution been swapped (Block<->Cyclic) with
  /// every access replayed unchanged — the counterfactual behind the
  /// DistributionMismatch suggestion.
  uint64_t counterfactualRemote = 0;
  /// Naive remote traffic issued inside forall/coforall bodies (aggregation
  /// candidates).
  uint64_t forallRemoteGets = 0;
  uint64_t forallRemotePuts = 0;
  /// Every dynamic index observed at every site followed a fixed stride.
  bool strideRegular = true;
  /// Every indexing site is statically affine in loop-induction variables.
  bool staticallyAffine = true;
  /// Some indexing site reads a marked loop-induction alloca
  /// (fe::markLoopInductionAllocas): the access walks a loop iterator.
  bool inductionIndexed = false;
  /// Expected sample mass (virtual cycles charged at access sites) split by
  /// locality — the static analogue of a VariableBlame comm split.
  uint64_t localMass = 0;
  uint64_t remoteMass = 0;
  std::map<uint64_t, uint64_t> pairTransfers;  // RunLog::pairKey -> count

  uint64_t remoteCount() const { return remoteGets + remotePuts; }
  /// Predicted remote share of this variable's samples: by cycle mass when a
  /// cost function was supplied, by access counts otherwise.
  double remoteFraction() const;
  double countFraction() const;
  double counterfactualFraction() const;
};

/// One forall/coforall region with its race-freedom verdict.
struct RegionReport {
  ir::FuncId taskFn = ir::kNone;
  bool isCoforall = false;
  std::string parentName;    // enclosing user function display name
  SourceLoc loc;             // source location of the forall/coforall
  bool executed = false;     // reached by the mirror
  race::Verdict verdict;
};

struct LintReport {
  bool ok = false;           // mirror ran (possibly truncated/aborted)
  bool truncated = false;    // step budget exhausted
  std::string error;         // abort reason when execution stopped early
  uint64_t steps = 0;        // abstract instructions executed
  uint32_t numLocales = 1;
  /// Exact predicted comm counters (== RunLog commGets/commPuts/commAggGets/
  /// commAggPuts for the same locale view of a well-formed program).
  uint64_t predictedGets = 0;
  uint64_t predictedPuts = 0;
  uint64_t predictedAggGets = 0;
  uint64_t predictedAggPuts = 0;
  uint64_t predictedOnForks = 0;
  std::vector<ArrayStats> arrays;     // sorted by remote traffic, descending
  std::vector<RegionReport> regions;  // every task function in the module
  std::vector<Finding> findings;      // sorted by severity
};

/// Runs the static locality analysis over a module. Never throws and never
/// crashes on parser-recovered input: malformed IR aborts the mirror, leaving
/// a partial report with `error` set.
LintReport lint(const ir::Module& m, const Params& p = {});

}  // namespace cb::an::loc
