#include "analysis/resolve.h"

namespace cb::an {

using ir::Instr;
using ir::Opcode;
using ir::TypeId;
using ir::TypeKind;
using ir::ValueRef;

TypeId typeOfValue(const ir::Module& m, const ir::Function& fn, const ValueRef& v) {
  switch (v.kind) {
    case ValueRef::Kind::Reg:
      return fn.instrs[v.reg].type;
    case ValueRef::Kind::Arg: {
      const ir::Param& p = fn.params[v.arg];
      // By-ref formals carry the address of a value of their declared type.
      if (p.byRef) {
        // Look the Ref type up without mutating the context: scan for it.
        for (TypeId t = 0; t < m.types().size(); ++t) {
          const ir::Type& ty = m.types().get(t);
          if (ty.kind == TypeKind::Ref && ty.elem == p.type) return t;
        }
        return ir::kInvalidType;  // no address of this type was ever formed
      }
      return p.type;
    }
    case ValueRef::Kind::GlobalAddr: {
      TypeId g = m.global(v.global).type;
      for (TypeId t = 0; t < m.types().size(); ++t) {
        const ir::Type& ty = m.types().get(t);
        if (ty.kind == TypeKind::Ref && ty.elem == g) return t;
      }
      return ir::kInvalidType;
    }
    case ValueRef::Kind::ConstInt: return m.types().intTy();
    case ValueRef::Kind::ConstReal: return m.types().realTy();
    case ValueRef::Kind::ConstBool: return m.types().boolTy();
    case ValueRef::Kind::ConstString: return m.types().stringTy();
    case ValueRef::Kind::None: return ir::kInvalidType;
  }
  return ir::kInvalidType;
}

EntityKey resolveChainKey(const ir::Module& m, const ir::Function& fn, ValueRef v) {
  std::vector<PathElem> rpath;  // leaf-to-root
  for (;;) {
    switch (v.kind) {
      case ValueRef::Kind::Arg: {
        EntityKey k{RootKind::Param, v.arg, {}};
        k.path.assign(rpath.rbegin(), rpath.rend());
        return k;
      }
      case ValueRef::Kind::GlobalAddr: {
        EntityKey k{RootKind::Global, v.global, {}};
        k.path.assign(rpath.rbegin(), rpath.rend());
        return k;
      }
      case ValueRef::Kind::Reg: {
        const Instr& in = fn.instrs[v.reg];
        switch (in.op) {
          case Opcode::Alloca: {
            EntityKey k{RootKind::Local, v.reg, {}};
            k.path.assign(rpath.rbegin(), rpath.rend());
            return k;
          }
          case Opcode::FieldAddr: {
            PathElem pe{PathElem::Kind::Field, in.imm, {}};
            TypeId baseTy = typeOfValue(m, fn, in.ops[0]);
            if (baseTy != ir::kInvalidType && m.types().kindOf(baseTy) == TypeKind::Ref) {
              const ir::Type& rec = m.types().get(m.types().pointee(baseTy));
              if (rec.kind == TypeKind::Record && in.imm < rec.fields.size())
                pe.fieldName = m.interner().str(rec.fields[in.imm].name);
            }
            rpath.push_back(std::move(pe));
            v = in.ops[0];
            continue;
          }
          case Opcode::TupleAddr:
            // Dynamic tuple indexing folds all positions together (~0u).
            rpath.push_back(
                PathElem{PathElem::Kind::TupleElem, in.ops.size() == 2 ? ~0u : in.imm, {}});
            v = in.ops[0];
            continue;
          case Opcode::IndexAddr:
            rpath.push_back(PathElem{PathElem::Kind::Index, 0, {}});
            v = in.ops[0];
            continue;
          case Opcode::Load:
            v = in.ops[0];
            continue;
          case Opcode::ArrayView:
            v = in.ops[0];
            continue;
          case Opcode::TupleGet: {
            // Value-path extraction from a record or tuple.
            TypeId baseTy = typeOfValue(m, fn, in.ops[0]);
            uint32_t idx = in.ops.size() == 2 ? ~0u : in.imm;
            if (baseTy != ir::kInvalidType && m.types().kindOf(baseTy) == TypeKind::Record) {
              PathElem pe{PathElem::Kind::Field, idx, {}};
              const ir::Type& rec = m.types().get(baseTy);
              if (idx < rec.fields.size())
                pe.fieldName = m.interner().str(rec.fields[idx].name);
              rpath.push_back(std::move(pe));
            } else {
              rpath.push_back(PathElem{PathElem::Kind::TupleElem, idx, {}});
            }
            v = in.ops[0];
            continue;
          }
          default:
            return EntityKey{RootKind::Unknown, 0, {}};
        }
      }
      default:
        return EntityKey{RootKind::Unknown, 0, {}};
    }
  }
}

}  // namespace cb::an
