#include "analysis/diagnose.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace cb::an::diag {

const char* ruleName(RuleKind k) {
  switch (k) {
    case RuleKind::DistributionMismatch: return "distribution-mismatch";
    case RuleKind::MissingAggregator: return "missing-aggregator";
    case RuleKind::SerializedRegion: return "serialized-region";
    case RuleKind::LowParallelism: return "low-parallelism";
    case RuleKind::SpeedupOpportunity: return "speedup-opportunity";
  }
  return "?";
}

namespace {

std::string pct(double f) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << f * 100.0 << "%";
  return os.str();
}

std::string times(double x) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << x << "x";
  return os.str();
}

const VarStat* findVar(const Inputs& in, const std::string& name) {
  for (const VarStat& v : in.vars)
    if (v.name == name) return &v;
  return nullptr;
}

/// The fraction of run time a variable's remote traffic is worth: its blame
/// share weighted by how remote it is. Falls back to the static prediction
/// when the measured profile saw no remote samples for the variable (e.g. a
/// single-locale run diagnosed against a multi-locale lint model).
double remoteImpact(const Inputs& in, const std::string& name, double fallback) {
  const VarStat* v = findVar(in, name);
  if (v && v->remoteFraction() > 0.0) return (v->percent / 100.0) * v->remoteFraction();
  return fallback;
}

/// Distribution + aggregator rules. Prefers the static lint's exact
/// counterfactuals; falls back to measured-only heuristics when no lint is
/// available (--from-log on a stripped module).
void commRules(const Inputs& in, std::vector<Diagnosis>& out) {
  bool sawMismatch = false;
  bool sawAggregator = false;
  if (in.lint) {
    for (const loc::Finding& f : in.lint->findings) {
      if (f.kind == loc::FindingKind::DistributionMismatch) {
        sawMismatch = true;
        Diagnosis d;
        d.kind = RuleKind::DistributionMismatch;
        d.variable = f.variable;
        d.impact = remoteImpact(in, f.variable, f.predictedRemoteFraction);
        d.message = "redistribute `" + f.variable + "`: " + f.message;
        out.push_back(std::move(d));
      } else if (f.kind == loc::FindingKind::MissingAggregator) {
        sawAggregator = true;
        Diagnosis d;
        d.kind = RuleKind::MissingAggregator;
        d.variable = f.variable;
        d.impact = remoteImpact(in, f.variable, f.predictedRemoteFraction);
        d.message = f.message;
        out.push_back(std::move(d));
      }
    }
  }
  if (!sawMismatch) {
    // Measured-only: a high-blame variable whose samples are mostly remote
    // is mis-placed even if we cannot compute the swapped-distribution
    // counterfactual here.
    for (const VarStat& v : in.vars) {
      if (v.sampleCount < 16 || v.percent < 10.0 || v.remoteFraction() < 0.5) continue;
      Diagnosis d;
      d.kind = RuleKind::DistributionMismatch;
      d.variable = v.name;
      d.impact = (v.percent / 100.0) * v.remoteFraction();
      d.message = "`" + v.name + "` spends " + pct(v.remoteFraction()) +
                  " of its samples on remote accesses — redistribute it (Block vs Cyclic) so "
                  "the hot loop iterates over local elements";
      out.push_back(std::move(d));
      break;  // one fallback finding: the top remote-heavy variable
    }
  }
  if (!sawAggregator && in.commGets + in.commPuts >= 64 && in.commAggGets + in.commAggPuts == 0) {
    // Fine-grained remote traffic with the aggregated path never used.
    const VarStat* top = nullptr;
    for (const VarStat& v : in.vars)
      if (v.remoteSamples() > 0 && (!top || v.remoteSamples() > top->remoteSamples())) top = &v;
    if (top) {
      Diagnosis d;
      d.kind = RuleKind::MissingAggregator;
      d.variable = top->name;
      d.impact = (top->percent / 100.0) * top->remoteFraction();
      std::ostringstream os;
      os << "the run issued " << in.commGets + in.commPuts
         << " naive remote element transfers and zero aggregated ones — batch `" << top->name
         << "`'s traffic with a Src/DstAggregator";
      d.message = os.str();
      out.push_back(std::move(d));
    }
  }
}

/// Schedule-shape rules from the causal critical-path report.
void scheduleRules(const Inputs& in, std::vector<Diagnosis>& out) {
  if (!in.causal || !in.causal->ok || in.causal->totalCycles == 0) return;
  const causal::CausalReport& c = *in.causal;
  double total = static_cast<double>(c.totalCycles);
  for (size_t i = 0; i < c.regions.size(); ++i) {
    const causal::RegionSummary& r = c.regions[i];
    if (r.width != 1 || in.numWorkers < 2) continue;
    double share = static_cast<double>(r.cycles) / total;
    if (share < 0.10) continue;
    Diagnosis d;
    d.kind = RuleKind::SerializedRegion;
    if (i < in.regionNames.size()) d.variable = in.regionNames[i];
    d.impact = share * (1.0 - 1.0 / in.numWorkers);
    std::ostringstream os;
    os << "parallel region " << (d.variable.empty() ? "#" + std::to_string(i + 1) : d.variable)
       << " runs " << pct(share) << " of the program with a critical path 1 task wide ("
       << r.tasks << " task" << (r.tasks == 1 ? "" : "s") << " on 1 of " << in.numWorkers
       << " workers)";
    if (in.raceFallbackRegions > 0)
      os << " — the race-freedom prover could not clear " << in.raceFallbackRegions
         << " region(s), so they replay sequentially; make the body provably race-free";
    else if (r.tasks == 1)
      os << " — split the work into more tasks";
    else
      os << " — one chunk serializes the region; balance the per-task work";
    d.message = os.str();
    out.push_back(std::move(d));
  }
  if (in.numWorkers >= 2 && !c.regions.empty() &&
      c.parallelism < 0.5 * static_cast<double>(in.numWorkers)) {
    double serialFrac = static_cast<double>(c.serialCycles) / total;
    Diagnosis d;
    d.kind = RuleKind::LowParallelism;
    d.impact = (1.0 - serialFrac) * (1.0 - c.parallelism / in.numWorkers);
    std::ostringstream os;
    os << "average parallelism is " << times(c.parallelism) << " across " << in.numWorkers
       << " workers (" << pct(serialFrac)
       << " of the run is serial main-thread time) — widen or rebalance the parallel regions";
    d.message = os.str();
    out.push_back(std::move(d));
  }
}

/// What-if rules: variables whose 2x site speedup moves the whole program.
void whatIfRules(const Inputs& in, std::vector<Diagnosis>& out) {
  if (!in.causal || !in.causal->ok) return;
  size_t emitted = 0;
  for (const causal::VariablePrediction& vp : in.causal->predictions) {
    if (vp.factors.size() < causal::kNumFactors) continue;
    const causal::FactorPrediction& k2 = vp.factors[1];
    const causal::FactorPrediction& kInf = vp.factors[3];
    if (k2.speedup < 1.10) continue;
    Diagnosis d;
    d.kind = RuleKind::SpeedupOpportunity;
    d.variable = vp.name;
    d.impact = 1.0 - 1.0 / k2.speedup;
    std::ostringstream os;
    os << "`" << vp.name << "` (" << vp.context << ") holds " << pct(vp.attributedFraction)
       << " of all busy cycles; making its code 2x faster speeds the whole program "
       << times(k2.speedup) << " (upper bound " << times(kInf.speedup) << " at k=inf)";
    d.message = os.str();
    out.push_back(std::move(d));
    if (++emitted == 3) break;
  }
}

/// Bad direction of a metric: +1 = higher is worse, -1 = lower is worse.
int badDirection(const std::string& name) { return name == "parallelism" ? -1 : 1; }

}  // namespace

DiagnoseReport diagnose(const Inputs& in) {
  DiagnoseReport rep;
  commRules(in, rep.findings);
  scheduleRules(in, rep.findings);
  whatIfRules(in, rep.findings);
  std::stable_sort(rep.findings.begin(), rep.findings.end(),
                   [](const Diagnosis& a, const Diagnosis& b) {
                     if (a.impact != b.impact) return a.impact > b.impact;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.variable < b.variable;
                   });

  rep.metrics.emplace_back("total_cycles", static_cast<double>(in.totalCycles));
  if (in.causal && in.causal->ok) {
    rep.metrics.emplace_back("critical_path_cycles",
                             static_cast<double>(in.causal->criticalPath));
    rep.metrics.emplace_back("parallelism", in.causal->parallelism);
    rep.metrics.emplace_back("serial_fraction",
                             in.causal->totalCycles
                                 ? static_cast<double>(in.causal->serialCycles) /
                                       static_cast<double>(in.causal->totalCycles)
                                 : 0.0);
  }
  rep.metrics.emplace_back("naive_remote_ops", static_cast<double>(in.commGets + in.commPuts));
  rep.metrics.emplace_back("race_fallback_regions",
                           static_cast<double>(in.raceFallbackRegions));
  rep.metrics.emplace_back("findings", static_cast<double>(rep.findings.size()));
  return rep;
}

namespace {

/// Extracts the `metric <name> <value>` lines out of a saved report text;
/// every other line is ignored.
std::vector<std::pair<std::string, double>> parseMetrics(const std::string& text) {
  std::vector<std::pair<std::string, double>> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string word, name, value;
    if (!(ls >> word >> name >> value) || word != "metric") continue;
    char* end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) continue;
    out.emplace_back(name, v);
  }
  return out;
}

std::vector<Regression> compareMetrics(const std::vector<std::pair<std::string, double>>& base,
                                       const std::vector<std::pair<std::string, double>>& cur,
                                       double threshold) {
  std::vector<Regression> out;
  for (const auto& [name, curValue] : cur) {
    const std::pair<std::string, double>* b = nullptr;
    for (const auto& p : base)
      if (p.first == name) {
        b = &p;
        break;
      }
    if (!b) continue;
    double delta = (curValue - b->second) * badDirection(name);
    double worsened = b->second != 0.0 ? delta / std::abs(b->second) : delta;
    if (worsened <= threshold) continue;
    Regression r;
    r.metric = name;
    r.baseline = b->second;
    r.current = curValue;
    r.worsened = worsened;
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(1);
    os << name << " worsened " << worsened * 100.0 << "% (baseline " << b->second << ", now "
       << curValue << ")";
    r.message = os.str();
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

std::vector<Regression> compareBaseline(const std::string& baselineText,
                                        const DiagnoseReport& current, double threshold) {
  return compareMetrics(parseMetrics(baselineText), current.metrics, threshold);
}

std::vector<Regression> compareBaselineText(const std::string& baselineText,
                                            const std::string& currentText, double threshold) {
  return compareMetrics(parseMetrics(baselineText), parseMetrics(currentText), threshold);
}

}  // namespace cb::an::diag
