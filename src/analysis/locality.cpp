// Concrete-mirror locality predictor behind `cb --lint`.
//
// The mirror re-executes the CIR with the runtime's value model
// (runtime/value.h is header-only for everything used here) and the exact
// array-ownership rules of the interpreter, but collects per-site access
// statistics instead of cycles and samples. Divergences from
// src/runtime/interp.cpp are deliberate and limited to:
//   - no PMU / worker streams / bandwidth ceilings (nothing to sample);
//   - forall/coforall bodies run once over the whole [lo, hi] range instead
//     of per-chunk — chunking partitions the same iteration set, so access
//     counts are identical;
//   - Clock returns the mirror's accumulated cost instead of a stream clock;
//   - runtime failures (bad index, division by zero, malformed IR from
//     parser recovery) abort the mirror softly: the report keeps the
//     statistics gathered so far and records the reason. Lint never crashes.
#include "analysis/locality.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <unordered_set>

#include "runtime/value.h"
#include "sampling/sample.h"
#include "support/rng.h"

namespace cb::an::loc {

using ir::BuiltinKind;
using ir::FuncId;
using ir::Instr;
using ir::InstrId;
using ir::Opcode;
using ir::TypeId;
using ir::TypeKind;
using ir::ValueRef;
using rt::ArrayObj;
using rt::DomainVal;
using rt::Value;
using rt::VKind;

double ArrayStats::countFraction() const {
  uint64_t total = accesses + aggGets + aggPuts + aggLocal;
  if (total == 0) return 0.0;
  return static_cast<double>(remoteGets + remotePuts + aggGets + aggPuts) /
         static_cast<double>(total);
}

double ArrayStats::remoteFraction() const {
  uint64_t mass = localMass + remoteMass;
  if (mass == 0) return countFraction();
  return static_cast<double>(remoteMass) / static_cast<double>(mass);
}

double ArrayStats::counterfactualFraction() const {
  uint64_t total = accesses + aggGets + aggPuts + aggLocal;
  if (total == 0) return 0.0;
  return static_cast<double>(counterfactualRemote) / static_cast<double>(total);
}

const char* findingKindName(FindingKind k) {
  switch (k) {
    case FindingKind::DistributionMismatch: return "mis-distribution";
    case FindingKind::MissingAggregator: return "missing-aggregator";
    case FindingKind::MayRaceRegion: return "may-race";
    case FindingKind::StaticDynamicDivergence: return "static-dynamic-divergence";
    case FindingKind::AnalysisTruncated: return "analysis-truncated";
  }
  return "?";
}

namespace {

/// Soft abort: malformed IR or a genuine runtime error in the analyzed
/// program. The mirror unwinds and the report keeps partial statistics.
struct LintStop {
  std::string message;
  SourceLoc loc;
};

/// Step budget exhausted — not an error, just a bounded analysis.
struct BudgetStop {};

const char* distName(uint8_t k) {
  return k == 1 ? "Block" : k == 2 ? "Cyclic" : "local";
}

/// basename:line:col — keeps lint output (and its golden fixtures)
/// independent of the checkout path.
std::string shortLoc(const ir::Module& m, SourceLoc loc) {
  std::string s = m.sourceManager().render(loc);
  size_t slash = s.rfind('/');
  return slash == std::string::npos ? s : s.substr(slash + 1);
}

class Mirror {
 public:
  Mirror(const ir::Module& m, const Params& p, LintReport& out)
      : m_(m), p_(p), out_(out), rng_(p.rngSeed),
        curLocale_(static_cast<int64_t>(p.homeLocale)) {
    allocaSlot_.resize(m.numFunctions());
    numSlots_.assign(m.numFunctions(), 0);
    for (FuncId f = 0; f < m.numFunctions(); ++f) {
      const ir::Function& fn = m.function(f);
      allocaSlot_[f].assign(fn.numInstrs(), -1);
      uint32_t n = 0;
      for (InstrId i = 0; i < fn.numInstrs(); ++i)
        if (fn.instrs[i].op == Opcode::Alloca)
          allocaSlot_[f][i] = static_cast<int32_t>(n++);
      numSlots_[f] = n;
    }
    globals_.resize(m.numGlobals());
  }

  void run() {
    try {
      if (m_.moduleInitFunc != ir::kNone) callFunction(m_.moduleInitFunc, {});
      if (m_.mainFunc == ir::kNone) throw LintStop{"module has no main", {}};
      callFunction(m_.mainFunc, {});
    } catch (const LintStop& e) {
      out_.error = m_.sourceManager().render(e.loc) + ": " + e.message;
    } catch (const BudgetStop&) {
      out_.truncated = true;
    }
    out_.ok = true;
    out_.steps = steps_;
    finalize();
  }

 private:
  struct Frame {
    FuncId fid = ir::kNone;
    const ir::Function* fn = nullptr;
    std::vector<Value> regs;
    std::vector<Value> slots;
    std::vector<Value> args;
  };

  struct AggState {
    bool isSrc = false;
  };

  /// Registry entry: the stats plus an owning reference that keeps the
  /// ArrayObj alive so the pointer key can never be reused.
  struct Entry {
    ArrayStats s;
    std::shared_ptr<ArrayObj> keep;
    int nameTier = 0;  // 0 anon, 1 local var, 2 global var
  };

  [[noreturn]] void stop(const std::string& msg, SourceLoc loc) const {
    throw LintStop{msg, loc};
  }

  // ---- checked value accessors (parser-recovered IR must never crash) -----

  int64_t asIntCk(const Value& v, SourceLoc loc) const {
    if (v.kind != VKind::Int) stop("expected an integer value", loc);
    return v.i;
  }
  bool asBoolCk(const Value& v, SourceLoc loc) const {
    if (v.kind != VKind::Bool) stop("expected a boolean value", loc);
    return v.b;
  }
  double numCk(const Value& v, SourceLoc loc) const {
    if (v.kind == VKind::Int) return static_cast<double>(v.i);
    if (v.kind != VKind::Real) stop("expected a numeric value", loc);
    return v.d;
  }

  Value evalOp(Frame& fr, const ValueRef& v) {
    switch (v.kind) {
      case ValueRef::Kind::Reg: return fr.regs[v.reg];
      case ValueRef::Kind::Arg:
        if (v.arg >= fr.args.size()) return Value{};
        return fr.args[v.arg];
      case ValueRef::Kind::GlobalAddr: return Value::makeRef(&globals_[v.global]);
      case ValueRef::Kind::ConstInt: return Value::makeInt(v.i);
      case ValueRef::Kind::ConstReal: return Value::makeReal(v.r);
      case ValueRef::Kind::ConstBool: return Value::makeBool(v.b);
      case ValueRef::Kind::ConstString: return Value::makeStr(m_.string(v.stringId));
      case ValueRef::Kind::None: return Value{};
    }
    return Value{};
  }

  Value* refOfCk(Frame& fr, const ValueRef& v, SourceLoc loc) {
    Value x = evalOp(fr, v);
    if (x.kind != VKind::Ref || !x.ref) stop("expected an address value", loc);
    return x.ref;
  }

  Value defaultValue(TypeId t) {
    const ir::Type& ty = m_.types().get(t);
    switch (ty.kind) {
      case TypeKind::Int: return Value::makeInt(0);
      case TypeKind::Real: return Value::makeReal(0.0);
      case TypeKind::Bool: return Value::makeBool(false);
      case TypeKind::String: return Value::makeStr("");
      case TypeKind::Domain: return Value::makeDomain(DomainVal{});
      case TypeKind::Tuple: {
        Value v;
        v.kind = VKind::Tuple;
        v.elems.reserve(ty.elems.size());
        for (TypeId e : ty.elems) v.elems.push_back(defaultValue(e));
        return v;
      }
      case TypeKind::Record: {
        Value v;
        v.kind = VKind::Record;
        v.elems.reserve(ty.fields.size());
        for (uint32_t i = 0; i < ty.fields.size(); ++i) {
          TypeId ft = ty.fields[i].type;
          if (m_.types().kindOf(ft) == TypeKind::Array) {
            auto th = m_.fieldDomainThunks.find({t, i});
            if (th != m_.fieldDomainThunks.end()) {
              Value dom = callFunction(th->second, {});
              if (dom.kind != VKind::Domain)
                stop("field domain thunk did not produce a domain", {});
              v.elems.push_back(makeArray(dom.dom, m_.types().get(ft).elem, SourceLoc{}));
            } else {
              Value empty;
              empty.kind = VKind::Array;
              v.elems.push_back(std::move(empty));
            }
          } else {
            v.elems.push_back(defaultValue(ft));
          }
        }
        return v;
      }
      case TypeKind::Array: {
        Value v;
        v.kind = VKind::Array;
        return v;
      }
      default:
        return Value{};
    }
  }

  bool typeOwnsArrays(TypeId t) {
    const ir::Type& ty = m_.types().get(t);
    switch (ty.kind) {
      case TypeKind::Array:
        return true;
      case TypeKind::Tuple:
        for (TypeId e : ty.elems)
          if (typeOwnsArrays(e)) return true;
        return false;
      case TypeKind::Record:
        for (const ir::RecordField& f : ty.fields)
          if (typeOwnsArrays(f.type)) return true;
        return false;
      default:
        return false;
    }
  }

  Value makeArray(const DomainVal& dom, TypeId elemTy, SourceLoc loc) {
    int64_t n = dom.size();
    if (n < 0 || n > (1LL << 31)) stop("array size out of range", loc);
    auto obj = std::make_shared<ArrayObj>();
    obj->dom = dom;
    obj->data.reserve(static_cast<size_t>(n));
    if (n > 0) {
      if (typeOwnsArrays(elemTy)) {
        for (int64_t k = 0; k < n; ++k) obj->data.push_back(defaultValue(elemTy));
      } else {
        Value proto = defaultValue(elemTy);
        for (int64_t k = 0; k < n; ++k) obj->data.push_back(proto);
      }
    }
    // Register the allocation so statistics and naming can find it later.
    size_t idx = entries_.size();
    entries_.push_back(Entry{});
    Entry& e = entries_.back();
    e.keep = obj;
    e.s.declLoc = loc;
    e.s.distKind = dom.distKind;
    e.s.elems = n;
    index_[obj.get()] = idx;
    Value v;
    v.kind = VKind::Array;
    v.arr = std::move(obj);
    return v;
  }

  Entry& entryFor(const ArrayObj* own) {
    auto it = index_.find(own);
    if (it != index_.end()) return entries_[it->second];
    // Arrays born outside ArrayNew (defaulted record fields without thunks)
    // get a late anonymous entry.
    size_t idx = entries_.size();
    entries_.push_back(Entry{});
    index_[own] = idx;
    return entries_.back();
  }

  /// Store-site naming: an array value stored to a global or to a
  /// debug-named local adopts that variable's name (globals win).
  void maybeName(Frame& fr, const Instr& in, const Value& v) {
    if (v.kind != VKind::Array || !v.arr) return;
    const ArrayObj* own = v.arr->base ? v.arr->base.get() : v.arr.get();
    Entry& e = entryFor(own);
    const ValueRef& dst = in.ops[1];
    if (dst.kind == ValueRef::Kind::GlobalAddr) {
      if (e.nameTier < 2) {
        e.s.name = m_.interner().str(m_.global(dst.global).name);
        e.nameTier = 2;
      }
      return;
    }
    if (dst.kind == ValueRef::Kind::Reg && fr.fn->instrs[dst.reg].op == Opcode::Alloca) {
      ir::DebugVarId dv = fr.fn->instrs[dst.reg].extra.debugVar;
      if (dv != ir::kNone && dv < m_.numDebugVars() && m_.debugVar(dv).displayable() &&
          e.nameTier < 1) {
        e.s.name = m_.interner().str(m_.debugVar(dv).name);
        e.nameTier = 1;
      }
    }
  }

  // ---- static affine classification ---------------------------------------

  /// True when the operand is an affine combination of loop-induction
  /// variables and loop-invariant scalars: chains of Add/Sub/Mul over
  /// constants, argument values (chunk bounds), loads of plain locals and
  /// globals, and domain queries. Loads through array elements or record
  /// fields, Mod/Div arithmetic, and anything data-dependent break affinity
  /// (the gather/scatter patterns aggregation exists for).
  bool affineOperand(const ir::Function& fn, const ValueRef& v, int depth) const {
    if (depth > 16) return false;
    switch (v.kind) {
      case ValueRef::Kind::ConstInt:
      case ValueRef::Kind::ConstReal:
      case ValueRef::Kind::ConstBool:
      case ValueRef::Kind::Arg:
        return true;
      case ValueRef::Kind::Reg: {
        const Instr& d = fn.instrs[v.reg];
        switch (d.op) {
          case Opcode::Load: {
            const ValueRef& a = d.ops[0];
            if (a.kind == ValueRef::Kind::GlobalAddr) return true;
            if (a.kind == ValueRef::Kind::Reg &&
                fn.instrs[a.reg].op == Opcode::Alloca) {
              // Plain local: an induction counter (marked by
              // fe::markLoopInductionAllocas) or an invariant scalar.
              if (fn.instrs[a.reg].imm & 1) sawInduction_ = true;
              return true;
            }
            return false;   // array element / record field: data-dependent
          }
          case Opcode::Bin:
            switch (d.extra.bin) {
              case ir::BinKind::Add:
              case ir::BinKind::Sub:
              case ir::BinKind::Mul:
                return affineOperand(fn, d.ops[0], depth + 1) &&
                       affineOperand(fn, d.ops[1], depth + 1);
              default:
                return false;
            }
          case Opcode::Un:
            switch (d.extra.un) {
              case ir::UnKind::Neg:
              case ir::UnKind::IntToReal:
              case ir::UnKind::RealToInt:
              case ir::UnKind::Floor:
                return affineOperand(fn, d.ops[0], depth + 1);
              default:
                return false;
            }
          case Opcode::Builtin:
            return d.extra.builtin == BuiltinKind::HereId ||
                   d.extra.builtin == BuiltinKind::NumLocales ||
                   d.extra.builtin == BuiltinKind::ConfigGet;
          case Opcode::DomainSize:
          case Opcode::DomainDim:
            return true;
          default:
            return false;
        }
      }
      default:
        return false;
    }
  }

  /// (statically affine, walks a marked induction variable) for one
  /// IndexAddr site, cached.
  std::pair<bool, bool> siteAffineInfo(FuncId fid, InstrId id) {
    uint64_t key = (static_cast<uint64_t>(fid) << 32) | id;
    auto it = affineCache_.find(key);
    if (it != affineCache_.end()) return it->second;
    const ir::Function& fn = m_.function(fid);
    const Instr& in = fn.instrs[id];
    sawInduction_ = false;
    bool ok = true;
    for (size_t k = 1; k < in.ops.size(); ++k)
      ok = ok && affineOperand(fn, in.ops[k], 0);
    std::pair<bool, bool> res{ok, sawInduction_};
    affineCache_[key] = res;
    return res;
  }

  // ---- access accounting ---------------------------------------------------

  /// The ownership classification of noteArrayAccess (interp.cpp), recording
  /// statistics instead of charging cycles.
  void noteAccess(Frame& fr, InstrId id, const Instr& in, const ArrayObj* arr,
                  int64_t idx0, bool isStore, bool isView) {
    const ArrayObj* own = arr->base ? arr->base.get() : arr;
    const DomainVal& od = own->dom;
    Entry& e = entryFor(own);
    ArrayStats& st = e.s;
    st.distKind = od.distKind;
    ++st.accesses;
    // Dynamic stride regularity per indexing site.
    uint64_t key = (static_cast<uint64_t>(fr.fid) << 32) | id;
    SiteState& site = sites_[key];
    if (site.seen >= 2) {
      if (idx0 - site.lastIdx != site.stride) st.strideRegular = false;
    } else if (site.seen == 1) {
      site.stride = idx0 - site.lastIdx;
      site.seen = 2;
    } else {
      site.seen = 1;
    }
    site.lastIdx = idx0;
    auto [affine, induction] = siteAffineInfo(fr.fid, id);
    if (!affine) st.staticallyAffine = false;
    if (induction) st.inductionIndexed = true;

    uint64_t c = p_.instrCost ? p_.instrCost(in) : 0;
    if (isView) c += p_.viewIndexExtraCost;
    bool remote = false;
    int64_t owner = 0;
    if (od.distKind != 0 && od.distLocales > 1 &&
        (owner = od.ownerOf(idx0)) != curLocale_) {
      remote = true;
      ++st.pairTransfers[sampling::RunLog::pairKey(curLocale_, owner)];
      if (isStore) {
        ++st.remotePuts;
        ++out_.predictedPuts;
        c += p_.remotePutCost;
        if (parallelDepth_ > 0) ++st.forallRemotePuts;
      } else {
        ++st.remoteGets;
        ++out_.predictedGets;
        c += p_.remoteGetCost;
        if (parallelDepth_ > 0) ++st.forallRemoteGets;
      }
    }
    if (remote) st.remoteMass += c;
    else st.localMass += c;
    // Counterfactual: the same access replayed under the swapped
    // distribution (the what-if behind the mis-distribution suggestion).
    if (od.distKind != 0 && od.distLocales > 1) {
      DomainVal swapped = od;
      swapped.distKind = od.distKind == 1 ? 2 : 1;
      if (swapped.ownerOf(idx0) != curLocale_) ++st.counterfactualRemote;
    }
  }

  // ---- execution -----------------------------------------------------------

  Value callFunction(FuncId f, std::vector<Value> args) {
    if (++callDepth_ > 2000) stop("call depth limit exceeded", m_.function(f).loc);
    const ir::Function& fn = m_.function(f);
    Frame fr;
    fr.fid = f;
    fr.fn = &fn;
    fr.args = std::move(args);
    fr.regs.resize(fn.numInstrs());
    fr.slots.resize(numSlots_[f]);
    int64_t savedLocale = curLocale_;
    size_t savedOnDepth = onStack_.size();
    Value ret = execFrame(fr);
    curLocale_ = savedLocale;
    onStack_.resize(savedOnDepth);
    --callDepth_;
    return ret;
  }

  Value execFrame(Frame& fr) {
    const ir::Function& fn = *fr.fn;
    ir::BlockId block = 0;
    size_t ip = 0;
    for (;;) {
      if (block >= fn.blocks.size()) stop("branch to a missing block", fn.loc);
      const ir::BasicBlock& bb = fn.blocks[block];
      if (ip >= bb.instrs.size()) stop("fell off block end", fn.loc);
      InstrId id = bb.instrs[ip];
      const Instr& in = fn.instrs[id];
      if (++steps_ > p_.stepBudget) throw BudgetStop{};

      switch (in.op) {
        case Opcode::Alloca: {
          int32_t slot = allocaSlot_[fr.fid][id];
          fr.regs[id] = Value::makeRef(&fr.slots[slot]);
          break;
        }
        case Opcode::Load: {
          Value* pv = refOfCk(fr, in.ops[0], in.loc);
          fr.regs[id] = *pv;
          break;
        }
        case Opcode::Store: {
          Value* pv = refOfCk(fr, in.ops[1], in.loc);
          Value v = evalOp(fr, in.ops[0]);
          maybeName(fr, in, v);
          *pv = std::move(v);
          break;
        }
        case Opcode::FieldAddr: {
          Value* rec = refOfCk(fr, in.ops[0], in.loc);
          if (rec->kind != VKind::Record || in.imm >= rec->elems.size())
            stop("bad field access", in.loc);
          fr.regs[id] = Value::makeRef(&rec->elems[in.imm]);
          break;
        }
        case Opcode::TupleAddr: {
          Value* tup = refOfCk(fr, in.ops[0], in.loc);
          if (tup->kind != VKind::Tuple) stop("bad tuple element access", in.loc);
          uint64_t idx =
              in.ops.size() == 2
                  ? static_cast<uint64_t>(asIntCk(evalOp(fr, in.ops[1]), in.loc) - 1)
                  : in.imm;
          if (idx >= tup->elems.size()) stop("tuple index out of range", in.loc);
          fr.regs[id] = Value::makeRef(&tup->elems[idx]);
          break;
        }
        case Opcode::IndexAddr: {
          Value base = evalOp(fr, in.ops[0]);
          if (base.kind != VKind::Array || !base.arr) stop("indexing a non-array", in.loc);
          Value* pv = nullptr;
          int64_t idx0 = 0;
          if (in.imm & 1) {
            int64_t k = asIntCk(evalOp(fr, in.ops[1]), in.loc);
            pv = base.arr->atLinear(k);
            if (pv) {
              int64_t idx[3];
              base.arr->dom.delinearize(k, idx);
              idx0 = idx[0];
            }
          } else {
            int64_t idx[3] = {0, 0, 0};
            int n = static_cast<int>(in.ops.size()) - 1;
            for (int d = 0; d < n && d < 3; ++d)
              idx[d] = asIntCk(evalOp(fr, in.ops[d + 1]), in.loc);
            pv = base.arr->at(idx);
            idx0 = idx[0];
          }
          if (!pv) stop("array index out of bounds", in.loc);
          noteAccess(fr, id, in, base.arr.get(), idx0, (in.imm & 2) != 0,
                     base.arr->isView());
          fr.regs[id] = Value::makeRef(pv);
          break;
        }
        case Opcode::Bin: execBin(fr, id, in); break;
        case Opcode::Un: execUn(fr, id, in); break;
        case Opcode::TupleMake: {
          Value v;
          v.kind = VKind::Tuple;
          v.elems.reserve(in.ops.size());
          for (const ValueRef& o : in.ops) v.elems.push_back(evalOp(fr, o));
          fr.regs[id] = std::move(v);
          break;
        }
        case Opcode::TupleGet: {
          Value t = evalOp(fr, in.ops[0]);
          if (t.kind != VKind::Tuple && t.kind != VKind::Record)
            stop("tuple access on non-tuple", in.loc);
          uint64_t idx =
              in.ops.size() == 2
                  ? static_cast<uint64_t>(asIntCk(evalOp(fr, in.ops[1]), in.loc) - 1)
                  : in.imm;
          if (idx >= t.elems.size()) stop("tuple index out of range", in.loc);
          fr.regs[id] = t.elems[idx];
          break;
        }
        case Opcode::RecordNew:
          fr.regs[id] = defaultValue(in.type);
          break;
        case Opcode::DomainMake: {
          DomainVal d;
          d.rank = static_cast<uint8_t>(in.imm);
          if (d.rank > 3 || in.ops.size() < 2u * d.rank)
            stop("malformed domain literal", in.loc);
          for (uint8_t k = 0; k < d.rank; ++k) {
            d.lo[k] = asIntCk(evalOp(fr, in.ops[2 * k]), in.loc);
            d.hi[k] = asIntCk(evalOp(fr, in.ops[2 * k + 1]), in.loc);
          }
          fr.regs[id] = Value::makeDomain(d);
          break;
        }
        case Opcode::DomainExpand: {
          Value d = evalOp(fr, in.ops[0]);
          if (d.kind != VKind::Domain) stop("expand on non-domain", in.loc);
          fr.regs[id] =
              Value::makeDomain(d.dom.expand(asIntCk(evalOp(fr, in.ops[1]), in.loc)));
          break;
        }
        case Opcode::DomainSize: {
          Value d = evalOp(fr, in.ops[0]);
          if (d.kind == VKind::Domain) fr.regs[id] = Value::makeInt(d.dom.size());
          else if (d.kind == VKind::Array && d.arr)
            fr.regs[id] = Value::makeInt(d.arr->dom.size());
          else stop("size of a non-domain", in.loc);
          break;
        }
        case Opcode::DomainDim: {
          Value d = evalOp(fr, in.ops[0]);
          DomainVal dom;
          if (d.kind == VKind::Domain) dom = d.dom;
          else if (d.kind == VKind::Array && d.arr) dom = d.arr->dom;
          else stop("dim of a non-domain", in.loc);
          uint32_t dim = in.imm / 2;
          bool hi = in.imm % 2;
          if (dim >= dom.rank) stop("domain dim out of range", in.loc);
          fr.regs[id] = Value::makeInt(hi ? dom.hi[dim] : dom.lo[dim]);
          break;
        }
        case Opcode::ArrayNew: {
          Value d = evalOp(fr, in.ops[0]);
          if (d.kind != VKind::Domain) stop("array over a non-domain", in.loc);
          TypeId elem = m_.types().get(in.type).elem;
          fr.regs[id] = makeArray(d.dom, elem, in.loc);
          break;
        }
        case Opcode::ArrayView: {
          Value base = evalOp(fr, in.ops[0]);
          Value d = evalOp(fr, in.ops[1]);
          if (base.kind != VKind::Array || !base.arr) stop("view of a non-array", in.loc);
          if (d.kind != VKind::Domain) stop("view over a non-domain", in.loc);
          auto view = std::make_shared<ArrayObj>();
          view->dom = d.dom;
          view->base = base.arr->base ? base.arr->base : base.arr;
          Value v;
          v.kind = VKind::Array;
          v.arr = std::move(view);
          fr.regs[id] = std::move(v);
          break;
        }
        case Opcode::Call: {
          if (in.extra.func >= m_.numFunctions()) stop("call to a missing function", in.loc);
          std::vector<Value> args;
          args.reserve(in.ops.size());
          for (const ValueRef& o : in.ops) args.push_back(evalOp(fr, o));
          fr.regs[id] = callFunction(in.extra.func, std::move(args));
          break;
        }
        case Opcode::Ret:
          return in.ops.empty() ? Value{} : evalOp(fr, in.ops[0]);
        case Opcode::Br:
          block = in.target0;
          ip = 0;
          continue;
        case Opcode::CondBr: {
          Value c = evalOp(fr, in.ops[0]);
          block = asBoolCk(c, in.loc) ? in.target0 : in.target1;
          ip = 0;
          continue;
        }
        case Opcode::Spawn:
          execSpawn(fr, in);
          break;
        case Opcode::IterOverhead:
          break;
        case Opcode::Builtin:
          execBuiltin(fr, id, in);
          break;
      }
      ++ip;
    }
  }

  void execBin(Frame& fr, InstrId id, const Instr& in) {
    using ir::BinKind;
    Value a = evalOp(fr, in.ops[0]);
    Value b = evalOp(fr, in.ops[1]);
    TypeKind rk = m_.types().kindOf(in.type);
    BinKind k = in.extra.bin;
    if (rk == TypeKind::Bool) {
      switch (k) {
        case BinKind::And:
          fr.regs[id] = Value::makeBool(asBoolCk(a, in.loc) && asBoolCk(b, in.loc));
          return;
        case BinKind::Or:
          fr.regs[id] = Value::makeBool(asBoolCk(a, in.loc) || asBoolCk(b, in.loc));
          return;
        default: break;
      }
      if (a.kind == VKind::Bool && b.kind == VKind::Bool) {
        bool r = (k == BinKind::Eq) ? a.b == b.b : a.b != b.b;
        fr.regs[id] = Value::makeBool(r);
        return;
      }
      double x = numCk(a, in.loc), y = numCk(b, in.loc);
      bool r = false;
      switch (k) {
        case BinKind::Eq: r = x == y; break;
        case BinKind::Ne: r = x != y; break;
        case BinKind::Lt: r = x < y; break;
        case BinKind::Le: r = x <= y; break;
        case BinKind::Gt: r = x > y; break;
        case BinKind::Ge: r = x >= y; break;
        default: stop("bad boolean op", in.loc);
      }
      fr.regs[id] = Value::makeBool(r);
      return;
    }
    if (rk == TypeKind::Int) {
      int64_t x = asIntCk(a, in.loc), y = asIntCk(b, in.loc), r = 0;
      switch (k) {
        case BinKind::Add: r = x + y; break;
        case BinKind::Sub: r = x - y; break;
        case BinKind::Mul: r = x * y; break;
        case BinKind::Div:
          if (y == 0) stop("integer division by zero", in.loc);
          r = x / y;
          break;
        case BinKind::Mod:
          if (y == 0) stop("integer modulo by zero", in.loc);
          r = x % y;
          break;
        case BinKind::Min: r = x < y ? x : y; break;
        case BinKind::Max: r = x > y ? x : y; break;
        default: stop("bad integer op", in.loc);
      }
      fr.regs[id] = Value::makeInt(r);
      return;
    }
    double x = numCk(a, in.loc), y = numCk(b, in.loc), r = 0;
    switch (k) {
      case BinKind::Add: r = x + y; break;
      case BinKind::Sub: r = x - y; break;
      case BinKind::Mul: r = x * y; break;
      case BinKind::Div: r = x / y; break;
      case BinKind::Pow: r = std::pow(x, y); break;
      case BinKind::Min: r = x < y ? x : y; break;
      case BinKind::Max: r = x > y ? x : y; break;
      case BinKind::Mod: r = std::fmod(x, y); break;
      default: stop("bad real op", in.loc);
    }
    fr.regs[id] = Value::makeReal(r);
  }

  void execUn(Frame& fr, InstrId id, const Instr& in) {
    using ir::UnKind;
    Value v = evalOp(fr, in.ops[0]);
    switch (in.extra.un) {
      case UnKind::Neg:
        fr.regs[id] = (v.kind == VKind::Int) ? Value::makeInt(-v.i)
                                             : Value::makeReal(-numCk(v, in.loc));
        return;
      case UnKind::Not: fr.regs[id] = Value::makeBool(!asBoolCk(v, in.loc)); return;
      case UnKind::IntToReal:
        fr.regs[id] = Value::makeReal(static_cast<double>(asIntCk(v, in.loc)));
        return;
      case UnKind::RealToInt:
        fr.regs[id] = Value::makeInt(static_cast<int64_t>(numCk(v, in.loc)));
        return;
      case UnKind::Abs:
        fr.regs[id] = (v.kind == VKind::Int) ? Value::makeInt(std::llabs(v.i))
                                             : Value::makeReal(std::fabs(numCk(v, in.loc)));
        return;
      case UnKind::Sqrt: fr.regs[id] = Value::makeReal(std::sqrt(numCk(v, in.loc))); return;
      case UnKind::Sin: fr.regs[id] = Value::makeReal(std::sin(numCk(v, in.loc))); return;
      case UnKind::Cos: fr.regs[id] = Value::makeReal(std::cos(numCk(v, in.loc))); return;
      case UnKind::Exp: fr.regs[id] = Value::makeReal(std::exp(numCk(v, in.loc))); return;
      case UnKind::Floor:
        fr.regs[id] = Value::makeInt(static_cast<int64_t>(std::floor(numCk(v, in.loc))));
        return;
    }
  }

  void execSpawn(Frame& fr, const Instr& in) {
    if (in.extra.func >= m_.numFunctions()) stop("spawn of a missing function", in.loc);
    int64_t lo = asIntCk(evalOp(fr, in.ops[0]), in.loc);
    int64_t hi = asIntCk(evalOp(fr, in.ops[1]), in.loc);
    executedRegions_.insert(in.extra.func);
    if (hi < lo) return;  // empty range: the runtime creates no chunks
    // One call over the whole range: worker chunking partitions [lo, hi], so
    // the union of chunk iterations is exactly this iteration set.
    std::vector<Value> args;
    args.push_back(Value::makeInt(lo));
    args.push_back(Value::makeInt(hi));
    for (size_t k = 2; k < in.ops.size(); ++k) args.push_back(evalOp(fr, in.ops[k]));
    ++parallelDepth_;
    size_t savedAggDepth = aggStack_.size();
    callFunction(in.extra.func, std::move(args));
    aggStack_.resize(savedAggDepth);
    --parallelDepth_;
  }

  void execBuiltin(Frame& fr, InstrId id, const Instr& in) {
    switch (in.extra.builtin) {
      case BuiltinKind::Writeln:
        break;  // output is irrelevant to locality; operands are pure
      case BuiltinKind::Random:
        fr.regs[id] = Value::makeReal(rng_.nextDouble());
        break;
      case BuiltinKind::Clock:
        fr.regs[id] = Value::makeInt(static_cast<int64_t>(steps_));
        break;
      case BuiltinKind::Yield:
      case BuiltinKind::HeapHint:
        break;
      case BuiltinKind::ArrayFill: {
        Value arr = evalOp(fr, in.ops[0]);
        Value v = evalOp(fr, in.ops[1]);
        if (arr.kind != VKind::Array || !arr.arr) stop("fill of a non-array", in.loc);
        int64_t n = arr.arr->dom.size();
        for (int64_t k = 0; k < n; ++k) {
          Value* pv = arr.arr->atLinear(k);
          if (!pv) stop("fill out of bounds", in.loc);
          *pv = v;
        }
        steps_ += static_cast<uint64_t>(n > 0 ? n : 0);
        break;
      }
      case BuiltinKind::ArrayCopy: {
        Value dst = evalOp(fr, in.ops[0]);
        Value src = evalOp(fr, in.ops[1]);
        if (dst.kind != VKind::Array || !dst.arr || src.kind != VKind::Array || !src.arr)
          stop("copy of a non-array", in.loc);
        int64_t n = dst.arr->dom.size();
        if (n != src.arr->dom.size()) stop("array copy size mismatch", in.loc);
        for (int64_t k = 0; k < n; ++k) {
          Value* d = dst.arr->atLinear(k);
          Value* s = src.arr->atLinear(k);
          if (!d || !s) stop("copy out of bounds", in.loc);
          *d = *s;
        }
        steps_ += static_cast<uint64_t>(n > 0 ? n : 0);
        break;
      }
      case BuiltinKind::ConfigGet: {
        Value name = evalOp(fr, in.ops[0]);
        Value def = evalOp(fr, in.ops[1]);
        auto it = p_.configOverrides.find(name.str ? *name.str : "");
        if (it == p_.configOverrides.end()) {
          fr.regs[id] = def;
          break;
        }
        const std::string& s = it->second;
        switch (def.kind) {
          case VKind::Int:
            fr.regs[id] = Value::makeInt(std::strtoll(s.c_str(), nullptr, 10));
            break;
          case VKind::Real:
            fr.regs[id] = Value::makeReal(std::strtod(s.c_str(), nullptr));
            break;
          case VKind::Bool:
            fr.regs[id] = Value::makeBool(s == "true" || s == "1");
            break;
          default: fr.regs[id] = def; break;
        }
        break;
      }
      case BuiltinKind::Dmapped: {
        Value d = evalOp(fr, in.ops[0]);
        if (d.kind != VKind::Domain) stop("dmapped on a non-domain", in.loc);
        DomainVal dv = d.dom;
        dv.distKind = static_cast<uint8_t>(asIntCk(evalOp(fr, in.ops[1]), in.loc));
        dv.distLocales = static_cast<uint16_t>(std::max<uint32_t>(1, p_.numLocales));
        fr.regs[id] = Value::makeDomain(dv);
        break;
      }
      case BuiltinKind::OnBegin: {
        int64_t target = asIntCk(evalOp(fr, in.ops[0]), in.loc);
        int64_t L = std::max<int64_t>(1, p_.numLocales);
        target = ((target % L) + L) % L;
        onStack_.push_back(curLocale_);
        if (target != curLocale_) ++out_.predictedOnForks;
        curLocale_ = target;
        break;
      }
      case BuiltinKind::OnEnd:
        if (!onStack_.empty()) {
          curLocale_ = onStack_.back();
          onStack_.pop_back();
        }
        break;
      case BuiltinKind::HereId:
        fr.regs[id] = Value::makeInt(curLocale_);
        break;
      case BuiltinKind::NumLocales:
        fr.regs[id] = Value::makeInt(std::max<int64_t>(1, p_.numLocales));
        break;
      case BuiltinKind::AggOpen: {
        bool isSrc = asIntCk(evalOp(fr, in.ops[0]), in.loc) != 0;
        aggStack_.push_back(AggState{isSrc});
        fr.regs[id] = Value::makeInt(static_cast<int64_t>(aggStack_.size()) - 1);
        break;
      }
      case BuiltinKind::AggCopy:
        execAggCopy(fr, in);
        break;
      case BuiltinKind::AggClose: {
        int64_t h = asIntCk(evalOp(fr, in.ops[0]), in.loc);
        if (h != static_cast<int64_t>(aggStack_.size()) - 1 || h < 0)
          stop("aggregator closed out of order", in.loc);
        aggStack_.pop_back();
        break;
      }
    }
  }

  void execAggCopy(Frame& fr, const Instr& in) {
    int64_t h = asIntCk(evalOp(fr, in.ops[0]), in.loc);
    if (h < 0 || static_cast<size_t>(h) >= aggStack_.size())
      stop("aggregator used outside its task", in.loc);
    AggState& st = aggStack_[static_cast<size_t>(h)];
    Value remoteArrV = evalOp(fr, in.ops[st.isSrc ? 2 : 1]);
    if (remoteArrV.kind != VKind::Array || !remoteArrV.arr)
      stop("agg.copy element operand is not an array", in.loc);
    int64_t idx[3] = {asIntCk(evalOp(fr, in.ops[st.isSrc ? 3 : 2]), in.loc), 0, 0};
    Value* elem = remoteArrV.arr->at(idx);
    if (!elem) stop("array index out of bounds", in.loc);
    const ArrayObj* own =
        remoteArrV.arr->base ? remoteArrV.arr->base.get() : remoteArrV.arr.get();
    const DomainVal& od = own->dom;
    Entry& e = entryFor(own);
    e.s.distKind = od.distKind;
    int64_t owner;
    if (od.distKind != 0 && od.distLocales > 1 &&
        (owner = od.ownerOf(idx[0])) != curLocale_) {
      if (st.isSrc) {
        ++e.s.aggGets;
        ++out_.predictedAggGets;
      } else {
        ++e.s.aggPuts;
        ++out_.predictedAggPuts;
      }
      ++e.s.pairTransfers[sampling::RunLog::pairKey(curLocale_, owner)];
    } else {
      ++e.s.aggLocal;
    }
    if (st.isSrc) {
      Value* dst = refOfCk(fr, in.ops[1], in.loc);
      *dst = *elem;
    } else {
      *elem = evalOp(fr, in.ops[3]);
    }
  }

  // ---- report assembly -----------------------------------------------------

  void finalize() {
    out_.numLocales = std::max<uint32_t>(1, p_.numLocales);
    // Arrays: only entries that saw traffic, heaviest remote users first.
    for (Entry& e : entries_) {
      if (e.s.accesses + e.s.aggGets + e.s.aggPuts + e.s.aggLocal == 0) continue;
      if (e.s.name.empty()) e.s.name = "<anon>";
      out_.arrays.push_back(e.s);
    }
    std::stable_sort(out_.arrays.begin(), out_.arrays.end(),
                     [](const ArrayStats& a, const ArrayStats& b) {
                       uint64_t ra = a.remoteCount() + a.aggGets + a.aggPuts;
                       uint64_t rb = b.remoteCount() + b.aggGets + b.aggPuts;
                       if (ra != rb) return ra > rb;
                       return a.accesses > b.accesses;
                     });
    // Regions: every task function, executed or not, with its verdict.
    for (FuncId f = 0; f < m_.numFunctions(); ++f) {
      const ir::Function& fn = m_.function(f);
      if (!fn.isTaskFn()) continue;
      RegionReport r;
      r.taskFn = f;
      r.isCoforall = fn.taskKind == ir::TaskKind::Coforall;
      r.loc = fn.spawnLoc;
      if (fn.spawnParent != ir::kNone && fn.spawnParent < m_.numFunctions())
        r.parentName = m_.function(fn.spawnParent).displayName;
      r.executed = executedRegions_.count(f) != 0;
      r.verdict = raceCache_.verdictFor(m_, f);
      out_.regions.push_back(std::move(r));
    }
    deriveFindings();
  }

  void appendFinding(Finding f) { out_.findings.push_back(std::move(f)); }

  std::string pct(double f) const {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(1);
    os << f * 100.0 << "%";
    return os.str();
  }

  void deriveFindings() {
    for (const ArrayStats& a : out_.arrays) {
      double frac = a.countFraction();
      double cf = a.counterfactualFraction();
      // Mis-distribution: mostly remote as distributed, mostly local when
      // the same trace replays under the swapped distribution.
      if (a.distKind != 0 && a.accesses >= 32 && frac >= 0.5 && frac - cf >= 0.25) {
        Finding f;
        f.kind = FindingKind::DistributionMismatch;
        f.variable = a.name;
        f.loc = a.declLoc;
        f.predictedRemoteFraction = frac;
        f.counterfactualRemoteFraction = cf;
        const char* cur = distName(a.distKind);
        const char* alt = distName(a.distKind == 1 ? 2 : 1);
        std::ostringstream os;
        os << "`" << a.name << "` is dmapped " << cur << " but "
           << pct(frac) << " of its " << a.accesses
           << " element accesses are remote";
        if (a.staticallyAffine && a.inductionIndexed)
          os << " (indexed affinely by the loop iterator)";
        os << "; the same accesses under " << alt << " leave only " << pct(cf)
           << " remote — suggest `dmapped " << alt << "`";
        f.message = os.str();
        appendFinding(std::move(f));
      }
      // Missing aggregator: fine-grained naive remote traffic inside a
      // parallel region on an array with no aggregated path.
      if (a.forallRemotePuts >= p_.aggSuggestThreshold && a.aggPuts == 0) {
        Finding f;
        f.kind = FindingKind::MissingAggregator;
        f.variable = a.name;
        f.loc = a.declLoc;
        f.predictedRemoteFraction = frac;
        std::ostringstream os;
        os << "`" << a.name << "` receives " << a.forallRemotePuts
           << " fine-grained remote PUTs from forall bodies with no aggregator"
           << " — suggest `with (var agg = new DstAggregator(int))` and"
           << " `agg.copy(" << a.name << "[i], x)`";
        f.message = os.str();
        appendFinding(std::move(f));
      }
      if (a.forallRemoteGets >= p_.aggSuggestThreshold && a.aggGets == 0) {
        Finding f;
        f.kind = FindingKind::MissingAggregator;
        f.variable = a.name;
        f.loc = a.declLoc;
        f.predictedRemoteFraction = frac;
        std::ostringstream os;
        os << "`" << a.name << "` serves " << a.forallRemoteGets
           << " fine-grained remote GETs from forall bodies with no aggregator"
           << " — suggest `with (var agg = new SrcAggregator(int))` and"
           << " `agg.copy(x, " << a.name << "[i])`";
        f.message = os.str();
        appendFinding(std::move(f));
      }
    }
    for (const RegionReport& r : out_.regions) {
      if (r.verdict.raceFree) continue;
      Finding f;
      f.kind = FindingKind::MayRaceRegion;
      f.variable = r.parentName;
      f.loc = r.loc;
      std::ostringstream os;
      os << (r.isCoforall ? "coforall" : "forall");
      if (!r.parentName.empty()) os << " in " << r.parentName;
      os << " cannot be proven race-free: " << r.verdict.reason
         << "; the deterministic replayer will run it sequentially";
      const ir::Function& fn = m_.function(r.taskFn);
      size_t shown = 0;
      for (const race::Offender& o : r.verdict.offenders) {
        if (shown++ >= 2) break;
        os << " [" << o.what;
        if (o.instr != ir::kNone && o.instr < fn.numInstrs())
          os << " at " << shortLoc(m_, fn.instrs[o.instr].loc);
        os << "]";
      }
      f.message = os.str();
      appendFinding(std::move(f));
    }
    if (out_.truncated) {
      Finding f;
      f.kind = FindingKind::AnalysisTruncated;
      f.loc = m_.mainFunc != ir::kNone ? m_.function(m_.mainFunc).loc : SourceLoc{};
      std::ostringstream os;
      os << "analysis stopped after " << steps_
         << " abstract steps; statistics cover a prefix of the run";
      f.message = os.str();
      appendFinding(std::move(f));
    }
    if (!out_.error.empty()) {
      Finding f;
      f.kind = FindingKind::AnalysisTruncated;
      f.loc = m_.mainFunc != ir::kNone ? m_.function(m_.mainFunc).loc : SourceLoc{};
      f.message = "analysis aborted early: " + out_.error;
      appendFinding(std::move(f));
    }
  }

  struct SiteState {
    int seen = 0;
    int64_t lastIdx = 0;
    int64_t stride = 0;
  };

  const ir::Module& m_;
  const Params& p_;
  LintReport& out_;
  Rng rng_;

  std::vector<std::vector<int32_t>> allocaSlot_;
  std::vector<uint32_t> numSlots_;
  std::vector<Value> globals_;

  int64_t curLocale_ = 0;
  std::vector<int64_t> onStack_;
  std::vector<AggState> aggStack_;
  int parallelDepth_ = 0;
  uint32_t callDepth_ = 0;
  uint64_t steps_ = 0;

  std::vector<Entry> entries_;
  std::unordered_map<const ArrayObj*, size_t> index_;
  std::unordered_map<uint64_t, SiteState> sites_;
  std::unordered_map<uint64_t, std::pair<bool, bool>> affineCache_;
  mutable bool sawInduction_ = false;
  std::unordered_set<FuncId> executedRegions_;
  race::RaceCache raceCache_;
};

}  // namespace

LintReport lint(const ir::Module& m, const Params& p) {
  LintReport out;
  Mirror mirror(m, p, out);
  mirror.run();
  return out;
}

}  // namespace cb::an::loc
