// Control-dependence computation via the classic Ferrante-Ottenstein-Warren
// criterion: B is control-dependent on branch block A iff A has a successor
// S such that B post-dominates S, and B does not strictly post-dominate A.
//
// The paper's implicit blame transfer hangs off this: "All variables within
// control dependent basic blocks have a relationship to the implicit
// variables responsible for the control flow" (§IV.A).
#pragma once

#include <vector>

#include "analysis/dominators.h"

namespace cb::an {

class ControlDependence {
 public:
  ControlDependence(const Cfg& cfg, const DominatorTree& postDom);

  /// Branch blocks (with conditional terminators) that block b is
  /// control-dependent on.
  const std::vector<ir::BlockId>& controllers(ir::BlockId b) const { return deps_[b]; }

 private:
  std::vector<std::vector<ir::BlockId>> deps_;
};

}  // namespace cb::an
