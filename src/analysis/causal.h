// Causal what-if profiler (the data-centric analogue of Coz-style causal
// profiling): reconstructs the spawn-tree schedule a run actually executed
// from RunLog::taskSpans, derives the fork/join critical path, and answers
// "how much faster would the whole program be if variable V's code were k×
// faster?" by replaying the recorded schedule with V's attributed cycles
// scaled by 1/k.
//
// The replay is EXACT on the recorded schedule, not a model: task spans tile
// [0, totalCycles] (serial main segments alternate with parallel regions;
// each region's chunks chain back-to-back per worker stream), and each span
// carries its per-site cycle split together with the per-charge ceil-scaled
// sums for the fixed factor set (sampling::SiteCycles). Scaling a site set S
// by k therefore shortens each span by Σ_{site∈S}(raw − s_k), worker chains
// re-chain with the same chunk→stream assignment, and a region ends at its
// slowest worker — precisely what the runtime does when re-run with
// rt::RunOptions::causalScale on the same sites. tests/test_causal.cpp
// checks predicted == re-measured cycle-for-cycle on the whole corpus
// (programs whose control flow never reads clock(); per-charge rounding is
// shared via rt::causalScaledCost).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/module.h"
#include "sampling/sample.h"

namespace cb::an::causal {

/// One what-if speedup factor k = num/den; num == 0 encodes k = ∞ (the
/// charges vanish). Only the factors in kFactors carry recorded per-charge
/// sums (SiteCycles::s125/s2/s4), so only they replay exactly.
struct Factor {
  uint32_t num = 1;
  uint32_t den = 1;

  bool infinite() const { return num == 0; }
  friend bool operator==(const Factor&, const Factor&) = default;
};

/// The fixed factor set, in SiteCycles field order: 1.25×, 2×, 4×, ∞.
inline constexpr Factor kFactors[] = {{5, 4}, {2, 1}, {4, 1}, {0, 1}};
inline constexpr size_t kNumFactors = 4;

/// "1.25x" / "2x" / "4x" / "inf".
std::string factorName(const Factor& f);

/// Cycles still charged at `sc` after scaling by kFactors[factorIdx]
/// (factorIdx out of range returns sc.raw — no scaling).
uint64_t scaledSiteCycles(const sampling::SiteCycles& sc, size_t factorIdx);

// ---- timeline reconstruction -----------------------------------------------

/// One top-level parallel region: every chunk span sharing one spawn tag,
/// bounded by fork (= min chunk start = the main clock at the spawn) and
/// join (= max chunk end = the main clock after the jump).
struct Region {
  uint64_t tag = 0;
  uint64_t fork = 0;
  uint64_t join = 0;
  std::vector<size_t> chunkSpans;   // indices into RunLog::taskSpans, ti order
  std::vector<size_t> nestedSpans;  // nested-task spans inside this region
  uint64_t workCycles = 0;          // Σ chunk durations
  uint64_t maxChunkCycles = 0;      // longest single chunk (ideal-width span)
  uint32_t tasks = 0;               // chunk count
  uint32_t width = 0;               // distinct worker streams used

  uint64_t duration() const { return join - fork; }
};

/// The reconstructed schedule: alternating serial segments and parallel
/// regions, in time order, validated to tile [0, totalCycles] with per-worker
/// chunk chains intact. `ok == false` (with `error`) means the log's spans
/// are structurally inconsistent — a truncated or hand-edited log, or a run
/// that died mid-region.
struct Timeline {
  bool ok = false;
  std::string error;
  uint64_t totalCycles = 0;
  /// At least one span carries a per-site cycle split (the run had
  /// RunOptions::trackCausalSites on) — required for what-if predictions.
  bool hasSites = false;
  std::vector<size_t> serialSpans;  // tag==0 span indices, time order
  std::vector<Region> regions;      // time order (by fork)

  // Work/span decomposition over the fork/join DAG.
  uint64_t serialCycles = 0;   // Σ serial segment durations
  uint64_t workCycles = 0;     // serial + Σ region work (total busy cycles)
  uint64_t criticalPath = 0;   // Σ serial + Σ per-region max chunk (ideal width)
  double parallelism() const {
    return criticalPath ? static_cast<double>(workCycles) / static_cast<double>(criticalPath)
                        : 1.0;
  }
};

/// Rebuilds the schedule from a run log. Pure function of the log; cheap
/// (one pass over taskSpans plus a per-region sort by chunk).
Timeline buildTimeline(const sampling::RunLog& log);

// ---- what-if prediction ----------------------------------------------------

/// The code sites whose charges a variable's blame comes from — the bridge
/// from data-centric attribution (pm::attributionSites) into the schedule
/// replay. `sites` must be sorted ascending (RunLog::siteKey values).
struct VariableSites {
  std::string context;
  std::string name;
  std::string type;
  uint64_t sampleCount = 0;          // attribution weight, for ranking only
  std::vector<uint64_t> sites;
};

/// Predicted whole-program cycles when every charge at a site in `sites` is
/// scaled to ceil(c·den/num) — the exact total a re-run with
/// rt::RunOptions::causalScale{sites, num, den} measures, for every factor
/// in kFactors, as long as the program's control flow is cycle-independent
/// and no bandwidth ceiling is active. Requires tl.ok && tl.hasSites.
uint64_t predictTotal(const sampling::RunLog& log, const Timeline& tl,
                      const std::vector<uint64_t>& sites, size_t factorIdx);

struct FactorPrediction {
  Factor factor;
  uint64_t predictedCycles = 0;
  /// totalCycles / predictedCycles (1.0 = no effect).
  double speedup = 1.0;
};

struct VariablePrediction {
  std::string context;
  std::string name;
  std::string type;
  uint64_t attributedCycles = 0;   // Σ raw over the variable's sites, all spans
  double attributedFraction = 0.0; // attributedCycles / workCycles
  std::vector<FactorPrediction> factors;  // kFactors order
};

// ---- top-level report ------------------------------------------------------

struct Options {
  /// Blame rows (vars, in caller-supplied rank order) to run what-if
  /// predictions for.
  size_t maxVariables = 8;
};

struct RegionSummary {
  uint64_t tag = 0;
  ir::FuncId taskFn = ir::kNone;   // from the spawn registry (kNone if absent)
  uint64_t cycles = 0;             // join - fork
  uint64_t maxChunkCycles = 0;
  uint32_t tasks = 0;
  uint32_t width = 0;
};

struct CausalReport {
  bool ok = false;
  std::string error;
  uint64_t totalCycles = 0;
  uint64_t serialCycles = 0;
  uint64_t workCycles = 0;
  uint64_t criticalPath = 0;
  double parallelism = 1.0;
  bool hasSites = false;
  std::vector<RegionSummary> regions;          // time order, all regions
  std::vector<VariablePrediction> predictions; // input rank order, capped
};

/// Critical-path breakdown plus what-if predictions for the given variables
/// (pass them blame-ranked; only the first Options::maxVariables get
/// predictions). Predictions are skipped — not failed — when the log carries
/// no per-site splits.
CausalReport analyze(const sampling::RunLog& log, const std::vector<VariableSites>& vars,
                     const Options& opts = {});

}  // namespace cb::an::causal
