// Dominator and post-dominator trees (Cooper-Harvey-Kennedy "A Simple, Fast
// Dominance Algorithm"). The post-dominator tree feeds control-dependence
// computation, which drives the paper's *implicit* blame transfer.
#pragma once

#include <vector>

#include "analysis/cfg.h"

namespace cb::an {

inline constexpr ir::BlockId kNoBlock = ~0u;

class DominatorTree {
 public:
  /// post = false: dominators rooted at the entry; post = true:
  /// post-dominators rooted at the virtual exit.
  DominatorTree(const Cfg& cfg, bool post);

  /// Immediate (post-)dominator; kNoBlock for the root / unreachable blocks.
  ir::BlockId idom(ir::BlockId b) const { return idom_[b]; }
  ir::BlockId root() const { return root_; }

  /// True when a (post-)dominates b (reflexive).
  bool dominates(ir::BlockId a, ir::BlockId b) const;

  size_t size() const { return idom_.size(); }

 private:
  std::vector<ir::BlockId> idom_;
  ir::BlockId root_;
};

}  // namespace cb::an
