#include "analysis/dominators.h"

#include <unordered_map>

#include "support/common.h"

namespace cb::an {

DominatorTree::DominatorTree(const Cfg& cfg, bool post) {
  size_t n = cfg.numBlocks() + 1;
  idom_.assign(n, kNoBlock);
  root_ = post ? cfg.virtualExit() : 0;
  const std::vector<ir::BlockId>& order = post ? cfg.reverseRpo() : cfg.rpo();

  // Map block -> position in the chosen RPO; used by the intersect walk.
  std::vector<uint32_t> rpoIndex(n, ~0u);
  for (uint32_t i = 0; i < order.size(); ++i) rpoIndex[order[i]] = i;

  auto preds = [&](ir::BlockId b) -> const std::vector<ir::BlockId>& {
    return post ? cfg.succs(b) : cfg.preds(b);
  };

  auto intersect = [&](ir::BlockId a, ir::BlockId b) {
    while (a != b) {
      while (rpoIndex[a] > rpoIndex[b]) a = idom_[a];
      while (rpoIndex[b] > rpoIndex[a]) b = idom_[b];
    }
    return a;
  };

  idom_[root_] = root_;
  bool changed = true;
  while (changed) {
    changed = false;
    for (ir::BlockId b : order) {
      if (b == root_) continue;
      ir::BlockId newIdom = kNoBlock;
      for (ir::BlockId p : preds(b)) {
        if (rpoIndex[p] == ~0u || idom_[p] == kNoBlock) continue;  // unreachable
        newIdom = (newIdom == kNoBlock) ? p : intersect(p, newIdom);
      }
      if (newIdom != kNoBlock && idom_[b] != newIdom) {
        idom_[b] = newIdom;
        changed = true;
      }
    }
  }
  idom_[root_] = kNoBlock;  // the root has no immediate dominator
}

bool DominatorTree::dominates(ir::BlockId a, ir::BlockId b) const {
  while (b != kNoBlock) {
    if (a == b) return true;
    if (b == root_) return false;
    b = idom_[b];
  }
  return false;
}

}  // namespace cb::an
