// Address/value chain resolution shared by the blame analyzer and the
// allocation-threshold baseline profiler: walks Load / FieldAddr /
// TupleAddr / IndexAddr / ArrayView chains back to the rooting variable.
#pragma once

#include "analysis/blame.h"
#include "ir/module.h"

namespace cb::an {

/// Static type of an operand value in the context of `fn`.
ir::TypeId typeOfValue(const ir::Module& m, const ir::Function& fn, const ir::ValueRef& v);

/// Resolves an address (or array-value) chain to its root entity key.
/// Field path elements carry rendered field names. Unknown roots are
/// returned as RootKind::Unknown.
EntityKey resolveChainKey(const ir::Module& m, const ir::Function& fn, ir::ValueRef v);

}  // namespace cb::an
