#include "analysis/causal.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace cb::an::causal {

using sampling::RunLog;
using sampling::SiteCycles;
using sampling::TaskSpan;

std::string factorName(const Factor& f) {
  if (f.infinite()) return "inf";
  if (f.den == 1) return std::to_string(f.num) + "x";
  std::ostringstream os;
  os << static_cast<double>(f.num) / static_cast<double>(f.den) << "x";
  return os.str();
}

uint64_t scaledSiteCycles(const SiteCycles& sc, size_t factorIdx) {
  switch (factorIdx) {
    case 0: return sc.s125;
    case 1: return sc.s2;
    case 2: return sc.s4;
    case 3: return 0;  // k = ∞: every charge vanishes
    default: return sc.raw;
  }
}

namespace {

/// Incremental timeline builder: one pass over the spans in emission order,
/// validating as it goes that they tile [0, totalCycles] and that each
/// region's chunks chain back-to-back per worker stream — the structural
/// invariants the exact replay in predictTotal depends on.
class TimelineBuilder {
 public:
  explicit TimelineBuilder(const RunLog& log) : log_(log) {}

  Timeline build() {
    tl_.totalCycles = log_.totalCycles;
    for (size_t i = 0; i < log_.taskSpans.size() && tl_.error.empty(); ++i) addSpan(i);
    if (tl_.error.empty()) closeRegion();
    if (tl_.error.empty() && cursor_ != tl_.totalCycles) {
      std::ostringstream os;
      os << "spans cover [0, " << cursor_ << ") of " << tl_.totalCycles << " total cycles";
      tl_.error = os.str();
    }
    if (tl_.error.empty() && !pendingNested_.empty())
      tl_.error = "nested-task span without an enclosing top-level region";
    tl_.ok = tl_.error.empty();
    return std::move(tl_);
  }

 private:
  void addSpan(size_t i) {
    const TaskSpan& sp = log_.taskSpans[i];
    if (sp.endCycle < sp.startCycle) {
      tl_.error = "span with negative duration";
      return;
    }
    if (!sp.sites.empty()) tl_.hasSites = true;
    if (sp.tag == 0) {
      closeRegion();
      if (!tl_.error.empty()) return;
      if (sp.startCycle != cursor_) {
        std::ostringstream os;
        os << "serial segment starts at " << sp.startCycle << ", expected " << cursor_;
        tl_.error = os.str();
        return;
      }
      tl_.serialSpans.push_back(i);
      tl_.serialCycles += sp.duration();
      cursor_ = sp.endCycle;
      return;
    }
    auto rec = log_.spawns.find(sp.tag);
    if (rec == log_.spawns.end()) {
      tl_.error = "span tag " + std::to_string(sp.tag) + " missing from the spawn registry";
      return;
    }
    if (rec->second.parentTag != 0) {
      pendingNested_[rootTagOf(sp.tag)].push_back(i);
      return;
    }
    if (curRegion_ < 0 || tl_.regions[static_cast<size_t>(curRegion_)].tag != sp.tag) {
      closeRegion();
      if (!tl_.error.empty()) return;
      Region r;
      r.tag = sp.tag;
      r.fork = cursor_;
      curRegion_ = static_cast<long>(tl_.regions.size());
      tl_.regions.push_back(std::move(r));
    }
    tl_.regions[static_cast<size_t>(curRegion_)].chunkSpans.push_back(i);
  }

  /// Follows parentTag links up to the top-level spawn whose region a nested
  /// span belongs to (bounded: the registry is acyclic by construction, the
  /// guard only protects against corrupt logs).
  uint64_t rootTagOf(uint64_t tag) const {
    for (int guard = 0; guard < 64; ++guard) {
      auto it = log_.spawns.find(tag);
      if (it == log_.spawns.end() || it->second.parentTag == 0) return tag;
      tag = it->second.parentTag;
    }
    return tag;
  }

  void closeRegion() {
    if (curRegion_ < 0) return;
    Region& r = tl_.regions[static_cast<size_t>(curRegion_)];
    curRegion_ = -1;
    // Per-stream chain check: a worker's first chunk starts at the fork,
    // every later chunk starts where its previous one ended.
    std::unordered_map<uint32_t, uint64_t> chainEnd;
    uint32_t prevChunk = 0;
    bool first = true;
    for (size_t idx : r.chunkSpans) {
      const TaskSpan& sp = log_.taskSpans[idx];
      if (!first && sp.chunk <= prevChunk) {
        tl_.error = "region chunks out of order";
        return;
      }
      first = false;
      prevChunk = sp.chunk;
      auto [it, inserted] = chainEnd.try_emplace(sp.stream, r.fork);
      if (sp.startCycle != it->second) {
        std::ostringstream os;
        os << "chunk " << sp.chunk << " of region " << r.tag << " starts at " << sp.startCycle
           << ", expected " << it->second << " on stream " << sp.stream;
        tl_.error = os.str();
        return;
      }
      it->second = sp.endCycle;
      r.join = std::max(r.join, sp.endCycle);
      r.workCycles += sp.duration();
      r.maxChunkCycles = std::max(r.maxChunkCycles, sp.duration());
      ++r.tasks;
    }
    r.width = static_cast<uint32_t>(chainEnd.size());
    auto nested = pendingNested_.find(r.tag);
    if (nested != pendingNested_.end()) {
      for (size_t idx : nested->second) {
        const TaskSpan& sp = log_.taskSpans[idx];
        if (sp.startCycle < r.fork || sp.endCycle > r.join) {
          tl_.error = "nested-task span escapes its enclosing region";
          return;
        }
      }
      r.nestedSpans = std::move(nested->second);
      pendingNested_.erase(nested);
    }
    cursor_ = r.join;
    tl_.workCycles += r.workCycles;
    tl_.criticalPath += r.maxChunkCycles;
  }

  const RunLog& log_;
  Timeline tl_;
  uint64_t cursor_ = 0;
  long curRegion_ = -1;
  std::unordered_map<uint64_t, std::vector<size_t>> pendingNested_;
};

/// Per-span sums of the site entries whose key lies in a variable's site
/// set: the raw cycles plus all three pre-scaled totals at once, so one walk
/// of the span table serves every factor prediction and the attributed-cycle
/// count for that variable.
struct SiteSums {
  uint64_t raw = 0, s125 = 0, s2 = 0, s4 = 0;

  uint64_t scaled(size_t factorIdx) const {
    switch (factorIdx) {
      case 0: return s125;
      case 1: return s2;
      case 2: return s4;
      case 3: return 0;  // k = ∞: every charge vanishes
      default: return raw;
    }
  }
};

/// One two-pointer merge per span (span sites and the variable's site set are
/// both sorted by key) — O(Σ |sp.sites| + spans · |sites|) for the whole log,
/// replacing a per-factor binary-search walk.
std::vector<SiteSums> intersectSites(const RunLog& log, const std::vector<uint64_t>& sites) {
  std::vector<SiteSums> sums(log.taskSpans.size());
  for (size_t i = 0; i < log.taskSpans.size(); ++i) {
    const TaskSpan& sp = log.taskSpans[i];
    SiteSums& out = sums[i];
    size_t a = 0, b = 0;
    while (a < sp.sites.size() && b < sites.size()) {
      const SiteCycles& sc = sp.sites[a];
      if (sc.site < sites[b]) {
        ++a;
      } else if (sites[b] < sc.site) {
        ++b;
      } else {
        out.raw += sc.raw;
        out.s125 += sc.s125;
        out.s2 += sc.s2;
        out.s4 += sc.s4;
        ++a;
        ++b;
      }
    }
  }
  return sums;
}

/// Cycles the span sheds when every charge at a site in the set is scaled by
/// kFactors[factorIdx]. Never exceeds the span's duration: scaled sums are
/// per-charge ceilings of the raw charges, and Σ raw ≤ duration.
uint64_t spanSavings(const TaskSpan& sp, const SiteSums& s, size_t factorIdx) {
  return std::min(s.raw - s.scaled(factorIdx), sp.duration());
}

/// predictTotal over precomputed per-span site sums (shared across the four
/// factors when analyze() iterates them for one variable).
uint64_t predictWithSums(const RunLog& log, const Timeline& tl, const std::vector<SiteSums>& sums,
                         size_t factorIdx) {
  uint64_t total = 0;
  for (size_t idx : tl.serialSpans) {
    const TaskSpan& sp = log.taskSpans[idx];
    total += sp.duration() - spanSavings(sp, sums[idx], factorIdx);
  }
  std::unordered_map<uint32_t, uint64_t> busy;
  for (const Region& r : tl.regions) {
    // Re-chain every worker with its recorded chunks at scaled durations;
    // the region still ends at its slowest worker (what the main clock
    // jumps to on a re-run with RunOptions::causalScale).
    busy.clear();
    for (size_t idx : r.chunkSpans) {
      const TaskSpan& sp = log.taskSpans[idx];
      busy[sp.stream] += sp.duration() - spanSavings(sp, sums[idx], factorIdx);
    }
    uint64_t regionCycles = 0;
    for (const auto& [stream, end] : busy) regionCycles = std::max(regionCycles, end);
    total += regionCycles;
  }
  return total;
}

}  // namespace

Timeline buildTimeline(const RunLog& log) {
  Timeline tl = TimelineBuilder(log).build();
  tl.workCycles += tl.serialCycles;
  tl.criticalPath += tl.serialCycles;
  return tl;
}

uint64_t predictTotal(const RunLog& log, const Timeline& tl, const std::vector<uint64_t>& sites,
                      size_t factorIdx) {
  return predictWithSums(log, tl, intersectSites(log, sites), factorIdx);
}

CausalReport analyze(const RunLog& log, const std::vector<VariableSites>& vars,
                     const Options& opts) {
  CausalReport rep;
  Timeline tl = buildTimeline(log);
  rep.ok = tl.ok;
  rep.error = tl.error;
  rep.totalCycles = tl.totalCycles;
  rep.serialCycles = tl.serialCycles;
  rep.workCycles = tl.workCycles;
  rep.criticalPath = tl.criticalPath;
  rep.parallelism = tl.parallelism();
  rep.hasSites = tl.hasSites;
  if (!tl.ok) return rep;

  rep.regions.reserve(tl.regions.size());
  for (const Region& r : tl.regions) {
    RegionSummary s;
    s.tag = r.tag;
    auto rec = log.spawns.find(r.tag);
    if (rec != log.spawns.end()) s.taskFn = rec->second.taskFn;
    s.cycles = r.duration();
    s.maxChunkCycles = r.maxChunkCycles;
    s.tasks = r.tasks;
    s.width = r.width;
    rep.regions.push_back(s);
  }

  if (!tl.hasSites) return rep;  // spans recorded without per-site splits
  size_t n = std::min(vars.size(), opts.maxVariables);

  // One pass over the span table for ALL variables: merge their site sets
  // into a single sorted watchlist carrying a per-site membership bitmask,
  // then two-pointer each span against it once, scattering matches to every
  // member variable's per-span sums. Falls back to per-variable passes if
  // the bitmask can't hold the variable count.
  std::vector<std::vector<SiteSums>> allSums(n);
  if (n > 0 && n <= 64) {
    std::vector<std::pair<uint64_t, uint64_t>> watch;  // site -> variable mask
    for (size_t vi = 0; vi < n; ++vi)
      for (uint64_t s : vars[vi].sites) watch.emplace_back(s, uint64_t{1} << vi);
    std::sort(watch.begin(), watch.end());
    size_t w = 0;
    for (size_t r = 0; r < watch.size(); ++r) {
      if (w != 0 && watch[w - 1].first == watch[r].first) watch[w - 1].second |= watch[r].second;
      else watch[w++] = watch[r];
    }
    watch.resize(w);
    for (size_t vi = 0; vi < n; ++vi) allSums[vi].resize(log.taskSpans.size());
    for (size_t i = 0; i < log.taskSpans.size(); ++i) {
      const TaskSpan& sp = log.taskSpans[i];
      size_t a = 0, b = 0;
      while (a < sp.sites.size() && b < watch.size()) {
        const SiteCycles& sc = sp.sites[a];
        if (sc.site < watch[b].first) {
          ++a;
        } else if (watch[b].first < sc.site) {
          ++b;
        } else {
          uint64_t mask = watch[b].second;
          do {
            size_t vi = static_cast<size_t>(__builtin_ctzll(mask));
            SiteSums& out = allSums[vi][i];
            out.raw += sc.raw;
            out.s125 += sc.s125;
            out.s2 += sc.s2;
            out.s4 += sc.s4;
            mask &= mask - 1;
          } while (mask != 0);
          ++a;
          ++b;
        }
      }
    }
  } else {
    for (size_t vi = 0; vi < n; ++vi) allSums[vi] = intersectSites(log, vars[vi].sites);
  }

  rep.predictions.reserve(n);
  for (size_t vi = 0; vi < n; ++vi) {
    const VariableSites& v = vars[vi];
    VariablePrediction vp;
    vp.context = v.context;
    vp.name = v.name;
    vp.type = v.type;
    const std::vector<SiteSums>& sums = allSums[vi];
    for (const SiteSums& s : sums) vp.attributedCycles += s.raw;
    vp.attributedFraction =
        tl.workCycles ? static_cast<double>(vp.attributedCycles) / static_cast<double>(tl.workCycles)
                      : 0.0;
    vp.factors.reserve(kNumFactors);
    for (size_t fi = 0; fi < kNumFactors; ++fi) {
      FactorPrediction fp;
      fp.factor = kFactors[fi];
      fp.predictedCycles = predictWithSums(log, tl, sums, fi);
      fp.speedup = fp.predictedCycles
                       ? static_cast<double>(tl.totalCycles) /
                             static_cast<double>(fp.predictedCycles)
                       : 1.0;
      vp.factors.push_back(fp);
    }
    rep.predictions.push_back(std::move(vp));
  }
  return rep;
}

}  // namespace cb::an::causal
