#include "analysis/control_dep.h"

#include <algorithm>

namespace cb::an {

ControlDependence::ControlDependence(const Cfg& cfg, const DominatorTree& postDom) {
  size_t n = cfg.numBlocks();
  deps_.resize(n);
  // For every CFG edge A -> S where A does not post-dominate... walk the
  // post-dominator tree from S up to (but excluding) ipdom(A); every block on
  // that path is control-dependent on A.
  for (ir::BlockId a = 0; a < n; ++a) {
    if (cfg.succs(a).size() < 2) continue;  // only branches create dependence
    ir::BlockId stop = postDom.idom(a);
    for (ir::BlockId s : cfg.succs(a)) {
      ir::BlockId runner = s;
      while (runner != stop && runner != kNoBlock && runner != cfg.virtualExit()) {
        if (runner < n) {
          auto& d = deps_[runner];
          if (std::find(d.begin(), d.end(), a) == d.end()) d.push_back(a);
        }
        runner = postDom.idom(runner);
      }
    }
  }
}

}  // namespace cb::an
