// Dataflow propagation over "inherits" graphs.
//
// The blame analysis produces, per entity e, a seed set `sets[e]` (its own
// write/slice instructions) and dependency edges `edges[e]` (the entities
// whose full blame set e inherits). The required fixpoint is
//
//     result[e] = U_{u reachable from e} seed[u]
//
// The seed implementation iterated a Jacobi-style round-robin over every
// entity until quiescence — O(rounds · E) set unions, where `rounds` grows
// with the longest inheritance chain. `propagateInherits` instead condenses
// the graph with Tarjan's SCC algorithm and performs ONE union pass in
// dependency order: Tarjan emits components in reverse topological order of
// the condensation, so every dependency is final before its inheritors are
// visited, and all members of a non-trivial SCC share one union (they reach
// exactly the same node set). Effectively a single linear pass.
//
// `propagateInheritsReference` retains the seed algorithm (round-robin over
// `std::set`, the seed's exact data structure) as the oracle for equivalence
// tests and the before/after baseline in `bench_analysis_scale`.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "support/bitset.h"

namespace cb::an {

/// Strongly connected components of a graph over nodes [0, n) with adjacency
/// `edges`. `comp[v]` is the component id of node v; `components[c]` lists
/// the member nodes of component c. Components are numbered in Tarjan
/// emission order: every edge out of component c lands in a component with a
/// SMALLER id (reverse topological order of the condensation), so processing
/// components 0..k-1 in order visits dependencies before dependents.
struct SccResult {
  std::vector<uint32_t> comp;
  std::vector<std::vector<uint32_t>> components;
};

SccResult tarjanScc(size_t n, const std::vector<SparseBitSet>& edges);

/// Single-pass SCC-condensation propagation (see file comment). Self-edges
/// are ignored, matching the seed fixpoint.
void propagateInherits(std::vector<BitSet>& sets, const std::vector<SparseBitSet>& edges);

/// The seed's Jacobi round-robin fixpoint, kept verbatim over `std::set`
/// (rows are converted in and out) as the equivalence oracle and benchmark
/// baseline. Produces bit-identical results to `propagateInherits`.
void propagateInheritsReference(std::vector<BitSet>& sets,
                                const std::vector<SparseBitSet>& edges);

}  // namespace cb::an
