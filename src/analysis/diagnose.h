// Rule-based performance diagnosis (`cb --diagnose`): turns the measured
// artefacts of one profiled run — blame rows, comm counters, the causal
// critical-path report, and (when available) the static lint — into a short
// ranked list of actionable findings ("redistribute `Pos` to Block", "the
// critical path is 1 task wide", "add a DstAggregator"), plus a flat block
// of named scalar metrics a CI job can diff against a saved baseline to
// catch performance regressions (`--diagnose-baseline FILE`).
//
// Inputs are deliberately neutral POD copies (VarStat mirrors the fields of
// pm::VariableBlame) so this analysis-layer pass never links against the
// postmortem library — the bridge copy happens in the core/report layer,
// exactly like the lint differential in rpt::lintView.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/causal.h"
#include "analysis/locality.h"

namespace cb::an::diag {

/// Neutral copy of one blame row's fields (pm::VariableBlame without the
/// comm matrix), blame-ranked by the caller.
struct VarStat {
  std::string context;
  std::string name;
  std::string type;
  uint64_t sampleCount = 0;
  double percent = 0.0;  // blame share of user samples
  uint64_t computeSamples = 0;
  uint64_t localSamples = 0;
  uint64_t remoteGetSamples = 0;
  uint64_t remotePutSamples = 0;

  uint64_t remoteSamples() const { return remoteGetSamples + remotePutSamples; }
  double remoteFraction() const {
    return sampleCount ? static_cast<double>(remoteSamples()) / static_cast<double>(sampleCount)
                       : 0.0;
  }
};

struct Inputs {
  // Run facts (from the RunLog / RunOptions).
  uint64_t totalCycles = 0;
  uint32_t numWorkers = 0;
  uint64_t commGets = 0;
  uint64_t commPuts = 0;
  uint64_t commAggGets = 0;
  uint64_t commAggPuts = 0;
  uint64_t raceFallbackRegions = 0;
  uint64_t totalUserSamples = 0;
  std::vector<VarStat> vars;  // blame rank order
  /// Causal critical-path + what-if report; null disables schedule rules.
  const causal::CausalReport* causal = nullptr;
  /// Display names for causal->regions (same order; typically the task
  /// function's user context). May be shorter than the region list.
  std::vector<std::string> regionNames;
  /// Static lint; null (e.g. --from-log with a stripped module) falls back
  /// to measured-only heuristics for the distribution/aggregator rules.
  const loc::LintReport* lint = nullptr;
};

enum class RuleKind : uint8_t {
  DistributionMismatch,  // redistribute (Block<->Cyclic)
  MissingAggregator,     // batch fine-grained remote traffic
  SerializedRegion,      // critical path is 1 task wide
  LowParallelism,        // regions far narrower than the worker pool
  SpeedupOpportunity,    // causal what-if: top variable worth optimizing
};

const char* ruleName(RuleKind k);

struct Diagnosis {
  RuleKind kind = RuleKind::SpeedupOpportunity;
  std::string variable;  // empty for whole-program findings
  std::string message;   // symptom + suggested fix, one line
  /// Ranking key: estimated fraction of run time at stake (0..1).
  double impact = 0.0;
};

struct DiagnoseReport {
  std::vector<Diagnosis> findings;  // impact descending, deterministic ties
  /// Named scalars for regression tracking, in emission order. Rendered by
  /// rpt::diagnoseView as `metric <name> <value>` lines and re-parsed from
  /// a saved report by compareBaseline.
  std::vector<std::pair<std::string, double>> metrics;
};

DiagnoseReport diagnose(const Inputs& in);

// ---- baseline regression detection -----------------------------------------

struct Regression {
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  /// Relative change in the metric's bad direction (e.g. +0.25 = 25% worse).
  double worsened = 0.0;
  std::string message;
};

/// Parses `metric <name> <value>` lines out of a previously saved diagnose
/// report (the full report text is fine; all other lines are ignored) and
/// flags every metric that moved in its bad direction by more than
/// `threshold` (relative; absolute for metrics whose baseline is 0).
/// Metrics present on only one side are ignored.
std::vector<Regression> compareBaseline(const std::string& baselineText,
                                        const DiagnoseReport& current, double threshold = 0.10);

/// Text-vs-text form for the CLI: both sides are saved report texts (the
/// current run's rendered report vs an archived baseline file).
std::vector<Regression> compareBaselineText(const std::string& baselineText,
                                            const std::string& currentText,
                                            double threshold = 0.10);

}  // namespace cb::an::diag
