#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "analysis/blame.h"
#include "analysis/cfg.h"
#include "analysis/resolve.h"
#include "analysis/control_dep.h"
#include "analysis/dominators.h"
#include "analysis/propagation.h"
#include "support/common.h"

namespace cb::an {

using ir::Instr;
using ir::InstrId;
using ir::Opcode;
using ir::TypeId;
using ir::TypeKind;
using ir::ValueRef;

namespace {

/// What each function (transitively) writes: which of its formals, and
/// which module globals. Call sites become write points of the caller
/// entities bound to written formals and of written globals — the paper's
/// exit-variable transfer ("parameters that are pointers, return values,
/// global variables"). Without the written-check, read-only ref captures
/// would absorb the blame of entire parallel regions.
struct WriteSummary {
  std::vector<std::vector<bool>> params;   // per function, per formal
  std::vector<SparseBitSet> globals;       // per function
};

WriteSummary computeWriteSummary(const ir::Module& m, bool referenceFixpoint) {
  WriteSummary out;
  out.params.resize(m.numFunctions());
  out.globals.resize(m.numFunctions());
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f)
    out.params[f].assign(m.function(f).params.size(), false);

  auto markDirect = [&](ir::FuncId f, const ir::Function& fn, const ValueRef& addr) {
    EntityKey k = resolveChainKey(m, fn, addr);
    if (k.root == RootKind::Param && k.rootId < out.params[f].size())
      out.params[f][k.rootId] = true;
    else if (k.root == RootKind::Global)
      out.globals[f].insert(k.rootId);
  };
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    const ir::Function& fn = m.function(f);
    for (const Instr& in : fn.instrs) {
      if (in.op == Opcode::Store) {
        markDirect(f, fn, in.ops[1]);
      } else if (in.op == Opcode::Builtin &&
                 (in.extra.builtin == ir::BuiltinKind::ArrayFill ||
                  in.extra.builtin == ir::BuiltinKind::ArrayCopy)) {
        markDirect(f, fn, in.ops[0]);
      } else if (in.op == Opcode::Builtin && in.extra.builtin == ir::BuiltinKind::AggCopy) {
        // agg.copy writes its destination operand (element address in the
        // Src form, destination array in the Dst form — ops[1] either way).
        markDirect(f, fn, in.ops[1]);
      } else if (in.op == Opcode::ArrayView) {
        // Descriptor writes (domain remapping) count as IR-level writes.
        markDirect(f, fn, in.ops[0]);
        markDirect(f, fn, in.ops[1]);
      } else if (in.op == Opcode::IterOverhead) {
        // Zippered iterator advance writes the follower state of each
        // iterand.
        for (const ValueRef& op : in.ops) markDirect(f, fn, op);
      }
    }
  }
  // Transitive closure over the call graph.
  //
  // NOTE: globals written by a callee are deliberately NOT folded into
  // the caller's set — inclusive sample matching already visits every
  // frame on the call path, so the frame where the write really
  // happens provides the credit. Folding transitively would blame
  // every module variable for the whole program (losing Table II's
  // Count-vs-Pos differentiation).
  // Arguments bound to written formals are written by the caller.
  //
  // Argument roots don't depend on the summary state, so resolve every
  // callsite binding ONCE up front, then run the closure over the compact
  // binding lists in SCC dependency order (callees before callers; a
  // worklist only inside recursion cycles). The seed's round-robin loop
  // re-resolved chains every round and needed one full pass per call-chain
  // level; it is retained below as the reference oracle.
  struct CallBind {
    ir::FuncId callee;
    uint32_t formal;   // callee formal index
    RootKind root;     // Param or Global
    uint32_t rootId;   // caller formal index / GlobalId
  };
  std::vector<std::vector<CallBind>> binds(m.numFunctions());
  std::vector<SparseBitSet> callees(m.numFunctions());  // call-graph adjacency
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    const ir::Function& fn = m.function(f);
    for (const Instr& in : fn.instrs) {
      if (in.op != Opcode::Call && in.op != Opcode::Spawn) continue;
      ir::FuncId callee = in.extra.func;
      callees[f].insert(callee);
      size_t numFormals = out.params[callee].size();
      for (size_t i = 0; i < in.ops.size() && i < numFormals; ++i) {
        EntityKey k = resolveChainKey(m, fn, in.ops[i]);
        if (k.root != RootKind::Param && k.root != RootKind::Global) continue;
        binds[f].push_back({callee, static_cast<uint32_t>(i), k.root, k.rootId});
      }
    }
  }
  auto applyBinds = [&](ir::FuncId f) {
    bool changed = false;
    for (const CallBind& b : binds[f]) {
      if (!out.params[b.callee][b.formal]) continue;
      if (b.root == RootKind::Param) {
        if (b.rootId < out.params[f].size() && !out.params[f][b.rootId]) {
          out.params[f][b.rootId] = true;
          changed = true;
        }
      } else if (out.globals[f].insert(b.rootId)) {
        changed = true;
      }
    }
    return changed;
  };
  if (referenceFixpoint) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (ir::FuncId f = 0; f < m.numFunctions(); ++f)
        if (applyBinds(f)) changed = true;
    }
  } else {
    SccResult scc = tarjanScc(m.numFunctions(), callees);
    for (const std::vector<uint32_t>& comp : scc.components) {
      if (comp.size() == 1 && !callees[comp[0]].contains(comp[0])) {
        applyBinds(comp[0]);  // callees already final: one pass suffices
        continue;
      }
      bool changed = true;  // recursion cycle: fixpoint within the SCC only
      while (changed) {
        changed = false;
        for (uint32_t f : comp)
          if (applyBinds(f)) changed = true;
      }
    }
  }
  return out;
}

/// Per-function analyzer. Builds entities, blame sets, inheritance edges and
/// callsite transfer maps for one function.
class FunctionAnalyzer {
 public:
  FunctionAnalyzer(const ir::Module& m, ir::FuncId fid, const BlameOptions& opts,
                   const WriteSummary& writeSummary)
      : m_(m), fn_(m.function(fid)), fid_(fid), opts_(opts), writeSummary_(writeSummary) {
    out_.func = fid;
    sliceCache_.resize(fn_.numInstrs());
  }

  FunctionBlame run() {
    Cfg cfg(fn_);
    DominatorTree dom(cfg, /*post=*/false);
    DominatorTree postDom(cfg, /*post=*/true);
    ControlDependence cd(cfg, postDom);

    // A block's write is "conditional" when it is control-dependent on a
    // branch that is NOT a loop header (an if/else). Conditional writes
    // contribute their own statement lines but do not establish explicit
    // transfer edges — the statement "is not necessarily executed during
    // runtime" (paper §III; this is what keeps `b`'s line out of `a`'s
    // blame set for `if a<b then a=b+1` in Table I).
    auto isLoopHeader = [&](ir::BlockId a) {
      for (ir::BlockId p : cfg.preds(a))
        if (dom.dominates(a, p)) return true;  // back edge into a
      return false;
    };
    conditionalBlock_.assign(fn_.numBlocks(), false);
    for (ir::BlockId b = 0; b < fn_.numBlocks(); ++b) {
      for (ir::BlockId a : cd.controllers(b)) {
        if (!isLoopHeader(a)) {
          conditionalBlock_[b] = true;
          break;
        }
      }
    }

    collectWrites();
    applyDirectTransfer();
    applyImplicitTransfer(cd);
    propagate();
    finalizeEntities();
    invertIndex();
    return std::move(out_);
  }

 private:
  struct Slice {
    std::set<InstrId> instrs;
    std::set<EntityId> reads;   // entities read (explicit-transfer sources)
    std::set<InstrId> calls;    // call instructions feeding the value
  };

  struct WriteRec {
    InstrId instr;
    ir::BlockId block;
    EntityId target;
    const Slice* slice;            // may be null (call-site writes)
    const Slice* addrSlice = nullptr;  // write-address computation work
    bool aliasStore = false;       // stored value is an array handle/view
  };

  // ---- type / chain helpers (shared with the baseline profiler) ----------

  bool isArrayValue(const ValueRef& v) const {
    TypeId t = typeOfValue(m_, fn_, v);
    return t != ir::kInvalidType && m_.types().kindOf(t) == TypeKind::Array;
  }

  EntityKey resolveKey(const ValueRef& v) const { return resolveChainKey(m_, fn_, v); }

  /// Gets or creates the entity for a key, along with all prefix entities.
  /// Containment edges make every prefix inherit its sub-objects' blame.
  EntityId entityOf(const EntityKey& key) {
    auto it = out_.index.find(key);
    if (it != out_.index.end()) return it->second;

    EntityId parent = kNoEntity;
    if (!key.path.empty()) {
      EntityKey pk = key;
      pk.path.pop_back();
      parent = entityOf(pk);
    }
    EntityId id = static_cast<EntityId>(out_.entities.size());
    Entity e;
    e.key = key;
    e.parent = parent;
    out_.entities.push_back(std::move(e));
    out_.blameInstrs.emplace_back(static_cast<uint32_t>(fn_.numInstrs()));
    out_.regionInstrs.emplace_back(static_cast<uint32_t>(fn_.numInstrs()));
    out_.inheritsFrom.emplace_back();
    out_.regionInheritsFrom.emplace_back();
    out_.exitViaCaller.push_back(false);
    out_.index.emplace(key, id);
    if (parent != kNoEntity) {
      out_.inheritsFrom[parent].insert(id);
      out_.regionInheritsFrom[parent].insert(id);
    }
    return id;
  }

  // ---- slices -------------------------------------------------------------

  const Slice& sliceOf(InstrId r) {
    if (sliceCache_[r]) return *sliceCache_[r];
    Slice s;
    s.instrs.insert(r);
    const Instr& in = fn_.instrs[r];

    // Merge a sub-slice. `structural` operands (the base pointer of an
    // address chain) contribute their instructions — the addressing work —
    // but NOT their entity reads: reading p.ratio transfers blame from the
    // ratio field, not from the whole struct p.
    auto mergeReg = [&](const ValueRef& op, bool structural) {
      if (op.kind == ValueRef::Kind::Reg) {
        const Slice& sub = sliceOf(op.reg);
        s.instrs.insert(sub.instrs.begin(), sub.instrs.end());
        s.calls.insert(sub.calls.begin(), sub.calls.end());
        if (!structural) s.reads.insert(sub.reads.begin(), sub.reads.end());
      } else if (op.kind == ValueRef::Kind::Arg && !structural) {
        s.reads.insert(entityOf(EntityKey{RootKind::Param, op.arg, {}}));
      }
    };

    switch (in.op) {
      case Opcode::Load: {
        // Stop at loads: the loaded location becomes an explicit-transfer
        // source; its own blame set is inherited via an edge, not inlined.
        EntityKey k = resolveKey(in.ops[0]);
        if (k.root != RootKind::Unknown) s.reads.insert(entityOf(k));
        // Address-computation work (field/element addressing, descriptor
        // loads) belongs to this read; its reads are index reads only.
        mergeReg(in.ops[0], /*structural=*/false);
        break;
      }
      case Opcode::FieldAddr:
      case Opcode::TupleAddr:
      case Opcode::IndexAddr:
      case Opcode::ArrayView:
        mergeReg(in.ops[0], /*structural=*/true);
        for (size_t i = 1; i < in.ops.size(); ++i) mergeReg(in.ops[i], /*structural=*/false);
        break;
      case Opcode::Alloca:
        break;
      case Opcode::Call:
        s.calls.insert(r);
        for (const ValueRef& op : in.ops) mergeReg(op, /*structural=*/false);
        break;
      default:
        for (const ValueRef& op : in.ops) mergeReg(op, /*structural=*/false);
        break;
    }
    sliceCache_[r] = std::move(s);
    return *sliceCache_[r];
  }

  // ---- write collection ---------------------------------------------------

  void collectWrites() {
    for (ir::BlockId b = 0; b < fn_.numBlocks(); ++b) {
      for (InstrId id : fn_.blocks[b].instrs) {
        const Instr& in = fn_.instrs[id];
        switch (in.op) {
          case Opcode::Store: {
            EntityKey k = resolveKey(in.ops[1]);
            if (k.root == RootKind::Unknown) break;
            WriteRec w;
            w.instr = id;
            w.block = b;
            w.target = entityOf(k);
            w.slice = &sliceOf2(in.ops[0]);
            if (in.ops[1].kind == ValueRef::Kind::Reg) w.addrSlice = &sliceOf(in.ops[1].reg);
            w.aliasStore = isArrayValue(in.ops[0]);
            writes_.push_back(w);
            break;
          }
          case Opcode::Builtin: {
            if (in.extra.builtin == ir::BuiltinKind::ArrayFill ||
                in.extra.builtin == ir::BuiltinKind::ArrayCopy) {
              EntityKey k = resolveKey(in.ops[0]);
              if (k.root == RootKind::Unknown) break;
              WriteRec w;
              w.instr = id;
              w.block = b;
              w.target = entityOf(k);
              w.slice = &sliceOf2(in.ops[1]);
              if (in.ops[0].kind == ValueRef::Kind::Reg) w.addrSlice = &sliceOf(in.ops[0].reg);
              // Note: ArrayCopy is an element-wise value copy, so the
              // destination inherits the source explicitly (not an alias).
              writes_.push_back(w);
            } else if (in.extra.builtin == ir::BuiltinKind::AggCopy) {
              // Buffered agg.copy: ops[1] is the destination in both forms;
              // the copied value flows from the remaining operands (source
              // array + index, or index + source value).
              EntityKey k = resolveKey(in.ops[1]);
              if (k.root == RootKind::Unknown) break;
              for (int sop = 2; sop <= 3; ++sop) {
                WriteRec w;
                w.instr = id;
                w.block = b;
                w.target = entityOf(k);
                w.slice = &sliceOf2(in.ops[sop]);
                if (in.ops[1].kind == ValueRef::Kind::Reg) w.addrSlice = &sliceOf(in.ops[1].reg);
                writes_.push_back(w);
              }
            }
            break;
          }
          case Opcode::ArrayView: {
            // Domain remapping writes a view descriptor tied to the base
            // array and the mapping domain — an IR-level write, which is
            // exactly how the paper explains Count's and binSpace's blame
            // in Table II ("this variable is 'written' (not at the source
            // code level, but at the llvm instruction level) during the
            // main calculations").
            for (int k = 0; k < 2; ++k) {
              EntityKey key = resolveKey(in.ops[k]);
              if (key.root == RootKind::Unknown) continue;
              WriteRec w;
              w.instr = id;
              w.block = b;
              w.target = entityOf(key);
              w.slice = nullptr;
              writes_.push_back(w);
            }
            break;
          }
          case Opcode::IterOverhead: {
            // Per-iteration zippered iterator advance: an IR-level write to
            // each iterand's follower state.
            for (const ValueRef& op : in.ops) {
              EntityKey k = resolveKey(op);
              if (k.root == RootKind::Unknown) continue;
              WriteRec w;
              w.instr = id;
              w.block = b;
              w.target = entityOf(k);
              w.slice = nullptr;
              writes_.push_back(w);
            }
            break;
          }
          case Opcode::Ret: {
            if (in.ops.empty()) break;
            WriteRec w;
            w.instr = id;
            w.block = b;
            w.target = entityOf(EntityKey{RootKind::Ret, 0, {}});
            w.slice = &sliceOf2(in.ops[0]);
            writes_.push_back(w);
            break;
          }
          case Opcode::Call:
          case Opcode::Spawn: {
            if (in.op == Opcode::Spawn) {
              // Zippered iteration over a remapped view (`zip(Count[binSpace],
              // ...)`) drives the iterators through the view descriptor every
              // spawn: the mapping domain is written at the IR level here, so
              // samples under the forall blame it (Table II's binSpace row).
              for (const ValueRef& op : in.ops) {
                ValueRef v = op;
                while (v.kind == ValueRef::Kind::Reg) {
                  const Instr& def = fn_.instrs[v.reg];
                  if (def.op == Opcode::ArrayView) {
                    EntityKey dk = resolveKey(def.ops[1]);
                    if (dk.root != RootKind::Unknown) {
                      WriteRec w;
                      w.instr = id;
                      w.block = b;
                      w.target = entityOf(dk);
                      w.slice = nullptr;
                      writes_.push_back(w);
                    }
                    v = def.ops[0];
                  } else if (def.op == Opcode::Load) {
                    v = def.ops[0];
                  } else {
                    break;
                  }
                }
              }
            }
            // Globals (transitively) written by the callee: the call site
            // is a write point for each — this is what lets samples deep in
            // LagrangeLeapFrog-style call chains bubble up to module-scope
            // variables (the paper's global exit variables).
            for (ir::GlobalId g : writeSummary_.globals[in.extra.func]) {
              WriteRec w;
              w.instr = id;
              w.block = b;
              w.target = entityOf(EntityKey{RootKind::Global, g, {}});
              w.slice = nullptr;
              writes_.push_back(w);
            }
            FunctionBlame::CallSite cs;
            cs.callee = in.extra.func;
            const ir::Function& callee = m_.function(cs.callee);
            cs.paramToCallerEntity.assign(callee.params.size(), kNoEntity);
            for (size_t i = 0; i < in.ops.size() && i < callee.params.size(); ++i) {
              EntityKey k = resolveKey(in.ops[i]);
              if (k.root == RootKind::Unknown) continue;
              EntityId ce = entityOf(k);
              cs.paramToCallerEntity[i] = ce;
              // The call site is a write point of the caller entity only
              // when the callee (transitively) writes this formal.
              const auto& calleeWritten = writeSummary_.params[in.extra.func];
              if (i < calleeWritten.size() && calleeWritten[i]) {
                WriteRec w;
                w.instr = id;
                w.block = b;
                w.target = ce;
                w.slice = nullptr;
                writes_.push_back(w);
              }
            }
            out_.callsites.emplace(id, std::move(cs));
            break;
          }
          default:
            break;
        }
      }
    }
    // Writer blocks per entity (used by the loop-carried test below).
    writerBlocks_.assign(out_.entities.size(), {});
    for (const WriteRec& w : writes_) {
      if (w.target < writerBlocks_.size()) writerBlocks_[w.target].insert(w.block);
    }
  }

  /// sliceOf for an arbitrary operand (constants yield an empty slice).
  const Slice& sliceOf2(const ValueRef& v) {
    if (v.kind == ValueRef::Kind::Reg) return sliceOf(v.reg);
    static const Slice kEmpty{};
    if (v.kind == ValueRef::Kind::Arg) {
      // A by-value parameter use contributes the parameter as a read.
      Slice s;
      s.reads.insert(entityOf(EntityKey{RootKind::Param, v.arg, {}}));
      argSlices_.push_back(std::make_unique<Slice>(std::move(s)));
      return *argSlices_.back();
    }
    return kEmpty;
  }

  // ---- transfer -----------------------------------------------------------

  void applyDirectTransfer() {
    for (const WriteRec& w : writes_) {
      if (!w.slice && !w.addrSlice) {
        // Region-only write (descriptor / iterator-state / call-site).
        out_.regionInstrs[w.target].insert(w.instr);
        continue;
      }
      auto& set = out_.blameInstrs[w.target];
      set.insert(w.instr);
      if (w.addrSlice) {
        // Address computation for the write is work done on behalf of the
        // target; its reads (e.g. the element index) transfer explicitly.
        set.insert(w.addrSlice->instrs.begin(), w.addrSlice->instrs.end());
        if (w.block >= conditionalBlock_.size() || !conditionalBlock_[w.block])
          for (EntityId r : w.addrSlice->reads) out_.inheritsFrom[w.target].insert(r);
      }
      if (!w.slice) continue;
      set.insert(w.slice->instrs.begin(), w.slice->instrs.end());
      if (w.aliasStore && opts_.aliasTransfer) {
        // Alias-establishing store (`var RealPos => Pos[binSpace];` or an
        // array handle copy): the owner inherits the alias's future blame,
        // not the other way round — Pos >= RealPos, as in Table II.
        for (EntityId r : w.slice->reads) {
          out_.inheritsFrom[r].insert(w.target);
          out_.regionInheritsFrom[r].insert(w.target);
        }
      } else if (w.block >= conditionalBlock_.size() || !conditionalBlock_[w.block]) {
        for (EntityId r : w.slice->reads) out_.inheritsFrom[w.target].insert(r);
      }
      for (InstrId c : w.slice->calls) {
        auto cs = out_.callsites.find(c);
        if (cs != out_.callsites.end()) cs->second.resultTargets.insert(w.target);
      }
    }
  }

  void applyImplicitTransfer(const ControlDependence& cd) {
    if (!opts_.implicitTransfer) return;
    size_t numWrites = writes_.size();  // snapshot: implicit adds no writes
    for (size_t wi = 0; wi < numWrites; ++wi) {
      const WriteRec& w = writes_[wi];
      if (!w.slice && !w.addrSlice) continue;  // region-only writes: no implicit
      for (ir::BlockId a : cd.controllers(w.block)) {
        const ir::BasicBlock& ab = fn_.blocks[a];
        InstrId branchId = ab.instrs.back();
        const Instr& branch = fn_.instrs[branchId];
        out_.blameInstrs[w.target].insert(branchId);
        if (branch.op != Opcode::CondBr || branch.ops[0].kind != ValueRef::Kind::Reg) continue;
        // NOTE: sliceOf may create entities and reallocate blameInstrs, so
        // compute it before taking any reference into the table.
        const Slice& cond = sliceOf(branch.ops[0].reg);
        auto& set = out_.blameInstrs[w.target];
        set.insert(cond.instrs.begin(), cond.instrs.end());
        // Loop-carried condition variables (e.g. the loop index, whose
        // increment is itself controlled by this branch) transfer blame to
        // everything written under the branch.
        for (EntityId u : cond.reads) {
          if (u >= writerBlocks_.size()) continue;
          bool loopCarried = false;
          for (ir::BlockId wb : writerBlocks_[u]) {
            const auto& ctl = cd.controllers(wb);
            if (std::find(ctl.begin(), ctl.end(), a) != ctl.end()) {
              loopCarried = true;
              break;
            }
          }
          if (loopCarried) out_.inheritsFrom[w.target].insert(u);
        }
      }
    }
  }

  void propagate() {
    if (opts_.referenceFixpoint) {
      propagateInheritsReference(out_.blameInstrs, out_.inheritsFrom);
      propagateInheritsReference(out_.regionInstrs, out_.regionInheritsFrom);
    } else {
      propagateInherits(out_.blameInstrs, out_.inheritsFrom);
      propagateInherits(out_.regionInstrs, out_.regionInheritsFrom);
    }
  }

  // ---- finalize -----------------------------------------------------------

  void finalizeEntities() {
    for (EntityId id = 0; id < out_.entities.size(); ++id) {
      Entity& e = out_.entities[id];
      std::string rootName;
      ir::TypeId rootTy = ir::kInvalidType;
      bool rootDisplayable = false;
      switch (e.key.root) {
        case RootKind::Local: {
          const Instr& a = fn_.instrs[e.key.rootId];
          if (a.extra.debugVar != ir::kNone) {
            const ir::DebugVar& dv = m_.debugVar(a.extra.debugVar);
            e.debugVar = a.extra.debugVar;
            rootName = m_.interner().str(dv.name);
            rootDisplayable = dv.displayable();
          } else {
            rootName = "_local" + std::to_string(e.key.rootId);
          }
          rootTy = m_.types().pointee(a.type);
          break;
        }
        case RootKind::Param: {
          const ir::Param& p = fn_.params[e.key.rootId];
          e.debugVar = p.debugVar;
          rootName = m_.interner().str(p.name);
          rootTy = p.type;
          rootDisplayable = p.debugVar != ir::kNone && m_.debugVar(p.debugVar).displayable();
          // Compiler-generated iteration parameters are hidden, user
          // captures keep their names.
          if (rootName.rfind("_iter", 0) == 0 || rootName.rfind("chunk_", 0) == 0)
            rootDisplayable = false;
          out_.exitViaCaller[id] =
              p.byRef || m_.types().kindOf(p.type) == TypeKind::Array ||
              m_.types().kindOf(p.type) == TypeKind::Domain;
          break;
        }
        case RootKind::Global: {
          const ir::GlobalVar& g = m_.global(e.key.rootId);
          e.debugVar = g.debugVar;
          rootName = m_.interner().str(g.name);
          rootTy = g.type;
          rootDisplayable = g.debugVar != ir::kNone && m_.debugVar(g.debugVar).displayable();
          break;
        }
        case RootKind::Ret:
          rootName = "<ret>";
          rootTy = fn_.returnType;
          break;
        case RootKind::Unknown:
          rootName = "<unknown>";
          break;
      }

      // Render the display name and compute the leaf type along the path.
      std::string name = rootName;
      TypeId ty = rootTy;
      int indexDepth = 0;
      static const char* kIndexNames[] = {"i", "j", "k", "l", "m"};
      for (const PathElem& pe : e.key.path) {
        switch (pe.kind) {
          case PathElem::Kind::Field:
            name += "." + (pe.fieldName.empty() ? ("f" + std::to_string(pe.idx)) : pe.fieldName);
            if (ty != ir::kInvalidType && m_.types().kindOf(ty) == TypeKind::Record) {
              const ir::Type& rt = m_.types().get(ty);
              ty = pe.idx < rt.fields.size() ? rt.fields[pe.idx].type : ir::kInvalidType;
            } else {
              ty = ir::kInvalidType;
            }
            break;
          case PathElem::Kind::Index:
            name += std::string("[") + kIndexNames[std::min(indexDepth, 4)] + "]";
            ++indexDepth;
            if (ty != ir::kInvalidType && m_.types().kindOf(ty) == TypeKind::Array)
              ty = m_.types().get(ty).elem;
            else
              ty = ir::kInvalidType;
            break;
          case PathElem::Kind::TupleElem:
            name += pe.idx == ~0u ? "(i)" : "(" + std::to_string(pe.idx + 1) + ")";
            if (ty != ir::kInvalidType && m_.types().kindOf(ty) == TypeKind::Tuple) {
              const ir::Type& tt = m_.types().get(ty);
              ty = (pe.idx == ~0u && !tt.elems.empty()) ? tt.elems.front()
                   : pe.idx < tt.elems.size()           ? tt.elems[pe.idx]
                                                        : ir::kInvalidType;
            } else {
              ty = ir::kInvalidType;
            }
            break;
        }
      }
      e.displayName = e.key.path.empty() ? name : "->" + name;
      if (e.key.path.empty() && e.debugVar != ir::kNone &&
          !m_.debugVar(e.debugVar).typeDisplay.empty()) {
        e.typeDisplay = m_.debugVar(e.debugVar).typeDisplay;
      } else if (ty != ir::kInvalidType) {
        e.typeDisplay = m_.types().display(ty, m_.interner());
      } else {
        e.typeDisplay = "?";
      }
      e.displayable = rootDisplayable && e.key.root != RootKind::Ret &&
                      e.key.root != RootKind::Unknown && !m_.debugInfoStripped;
    }
  }

  void invertIndex() {
    out_.instrEntities.assign(fn_.numInstrs(), {});
    for (EntityId e = 0; e < out_.entities.size(); ++e) {
      for (InstrId i : out_.blameInstrs[e]) out_.instrEntities[i].push_back(e);
      for (InstrId i : out_.regionInstrs[e]) {
        if (!out_.blameInstrs[e].count(i)) out_.instrEntities[i].push_back(e);
      }
    }
  }

  const ir::Module& m_;
  const ir::Function& fn_;
  ir::FuncId fid_;
  BlameOptions opts_;
  const WriteSummary& writeSummary_;
  FunctionBlame out_;
  std::vector<std::optional<Slice>> sliceCache_;
  std::vector<std::unique_ptr<Slice>> argSlices_;
  std::vector<WriteRec> writes_;
  std::vector<SparseBitSet> writerBlocks_;
  std::vector<bool> conditionalBlock_;
};

}  // namespace

std::set<uint32_t> FunctionBlame::blameLines(const ir::Module& m, EntityId e) const {
  std::set<uint32_t> lines;
  const ir::Function& f = m.function(func);
  auto add = [&](const BitSet& set) {
    for (ir::InstrId i : set) {
      const ir::Instr& in = f.instrs.at(i);
      if (in.loc.valid()) lines.insert(in.loc.line);
    }
  };
  add(blameInstrs.at(e));
  add(regionInstrs.at(e));
  return lines;
}

std::vector<ir::GlobalId> ModuleBlame::aliasSiblings(ir::GlobalId g) const {
  std::vector<ir::GlobalId> out;
  if (g >= globalAliasGroup.size()) return out;
  for (ir::GlobalId other : aliasGroups[globalAliasGroup[g]])
    if (other != g) out.push_back(other);
  return out;
}

namespace {

/// Union-find over globals joined by module-scope alias stores
/// (`var RealPos => Pos[binSpace];`).
void computeAliasGroups(const ir::Module& m, ModuleBlame& out) {
  std::vector<uint32_t> parent(m.numGlobals());
  for (uint32_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    const ir::Function& fn = m.function(f);
    for (const Instr& in : fn.instrs) {
      if (in.op != Opcode::Store) continue;
      if (in.ops[1].kind != ValueRef::Kind::GlobalAddr) continue;
      ir::GlobalId dst = in.ops[1].global;
      if (m.types().kindOf(m.global(dst).type) != TypeKind::Array) continue;
      EntityKey src = resolveChainKey(m, fn, in.ops[0]);
      if (src.root != RootKind::Global || src.rootId == dst) continue;
      // Only view/handle aliases, not element stores (path must be empty).
      if (!src.path.empty()) continue;
      if (m.types().kindOf(m.global(src.rootId).type) != TypeKind::Array) continue;
      parent[find(dst)] = find(src.rootId);
    }
  }
  std::unordered_map<uint32_t, uint32_t> groupIds;
  out.globalAliasGroup.resize(m.numGlobals());
  for (ir::GlobalId g = 0; g < m.numGlobals(); ++g) {
    uint32_t root = find(g);
    auto [it, inserted] = groupIds.emplace(root, static_cast<uint32_t>(out.aliasGroups.size()));
    if (inserted) out.aliasGroups.emplace_back();
    out.globalAliasGroup[g] = it->second;
    out.aliasGroups[it->second].push_back(g);
  }
}

}  // namespace

ModuleBlame analyzeModule(const ir::Module& m, const BlameOptions& opts) {
  ModuleBlame out;
  out.mod = &m;
  WriteSummary summary = computeWriteSummary(m, opts.referenceFixpoint);
  out.functions.reserve(m.numFunctions());
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    out.functions.push_back(FunctionAnalyzer(m, f, opts, summary).run());
  }
  computeAliasGroups(m, out);
  return out;
}

}  // namespace cb::an
