// Deterministic bandwidth-ceiling machinery shared by both execution
// engines (interp.cpp and exec.cpp).
//
// The model is a token bucket per execution stream running on the stream's
// own virtual clock: an allowance accrues at `rate` bytes per 1024 cycles up
// to a burst cap, every charged transfer consumes its byte count, and a
// transfer that outruns the allowance stalls the stream for exactly the
// cycles needed to earn the deficit. In steady state that is the roofline:
// time per operation = max(compute cycles, bytes / rate) — a latency-bound
// loop is untouched, a bandwidth-bound loop is clamped to the ceiling, and
// the stall cycles are counted separately (RunLog::comm*StallCycles) so the
// post-mortem can tell the two regimes apart.
//
// Determinism discipline (the reason replay width and engine choice cannot
// change a single cycle): all state is a pure function of the stream-local
// clock, state resets at every task-chunk boundary — exactly where the
// pending-access classification resets in all four task loops — and is
// saved/restored around Spawn on the main stream, so chunks are independent
// of scheduling order by construction. Integer-only math, no randomness.
#pragma once

#include <cstdint>

#include "runtime/cost_model.h"

namespace cb::rt {

/// Per-stream ceiling parameters derived once from a CostProfile. Stream 0
/// gets the full rates; worker streams split them evenly (concurrent tasks
/// share the socket's memory bandwidth and the locale's injection port).
struct BwLimits {
  uint64_t memRate = 0;     // bytes per 1024 virtual cycles, 0 = off
  uint64_t memBurstQ = 0;   // burst allowance, bytes << 10
  uint64_t netRate = 0;
  uint64_t netBurstQ = 0;
  uint64_t netElemBytes = 8;
  uint64_t contWindow = 0;  // owner-contention window, cycles (0 = off)
  uint64_t contFree = 0;    // free transfers per window
  uint64_t contStall = 0;   // stall cycles per excess transfer

  bool enabled() const { return memRate != 0 || netRate != 0 || contWindow != 0; }

  static BwLimits forStream(const CostProfile& p, uint32_t stream, uint32_t numWorkers) {
    BwLimits l;
    uint64_t share = stream == 0 ? 1 : (numWorkers > 0 ? numWorkers : 1);
    if (p.memBandwidthBytesPerKCycle) {
      l.memRate = p.memBandwidthBytesPerKCycle / share;
      if (l.memRate == 0) l.memRate = 1;
      l.memBurstQ = p.memBandwidthBurstBytes << 10;
    }
    if (p.netInjectionBytesPerKCycle) {
      l.netRate = p.netInjectionBytesPerKCycle / share;
      if (l.netRate == 0) l.netRate = 1;
      l.netBurstQ = p.netInjectionBurstBytes << 10;
    }
    l.netElemBytes = p.netElemBytes;
    l.contWindow = p.netContentionWindowCycles;
    l.contFree = p.netContentionFreePerWindow;
    l.contStall = p.netContentionStallCycles;
    return l;
  }
};

/// Token bucket in Q10 fixed point: tokensQ holds bytes << 10, so a refill
/// of `elapsed * rate` units adds exactly rate bytes per 1024 cycles with no
/// fractional loss. Overflow-safe: the refill is clamped to the burst cap
/// before multiplying.
struct TokenBucket {
  uint64_t tokensQ = 0;
  uint64_t lastRefill = 0;

  void reset(uint64_t now, uint64_t burstQ) {
    tokensQ = burstQ;  // a fresh chunk starts with a full burst allowance
    lastRefill = now;
  }

  /// Consume `bytes` at stream time `now`; returns the stall cycles the
  /// caller must charge (0 when the allowance covers the transfer).
  uint64_t consume(uint64_t now, uint64_t bytes, uint64_t rate, uint64_t burstQ) {
    if (rate == 0 || bytes == 0) return 0;
    uint64_t elapsed = now >= lastRefill ? now - lastRefill : 0;
    uint64_t headQ = burstQ > tokensQ ? burstQ - tokensQ : 0;
    if (elapsed >= (headQ + rate - 1) / rate) tokensQ = burstQ;
    else tokensQ += elapsed * rate;
    lastRefill = now;
    uint64_t needQ = bytes << 10;
    if (tokensQ >= needQ) {
      tokensQ -= needQ;
      return 0;
    }
    uint64_t deficitQ = needQ - tokensQ;
    uint64_t stall = (deficitQ + rate - 1) / rate;
    tokensQ += stall * rate - needQ;  // leftover fraction of the last cycle
    lastRefill = now + stall;         // caller charges `stall` cycles next
    return stall;
  }
};

/// Owner-contention tracker: counts back-to-back transfers from this stream
/// to one destination locale. Beyond the free allowance inside a window the
/// home node's port is congested and each further transfer stalls. Changing
/// destination or letting the window expire starts a fresh window.
struct ContentionWindow {
  int64_t dst = -1;
  uint64_t windowStart = 0;
  uint64_t hits = 0;

  void reset() {
    dst = -1;
    windowStart = 0;
    hits = 0;
  }

  uint64_t note(uint64_t now, int64_t d, const BwLimits& lim) {
    if (lim.contWindow == 0) return 0;
    if (d != dst || now - windowStart >= lim.contWindow) {
      dst = d;
      windowStart = now;
      hits = 1;
      return 0;
    }
    ++hits;
    return hits > lim.contFree ? lim.contStall : 0;
  }
};

/// The complete per-stream bandwidth state. Plain value type: saving and
/// restoring around a Spawn is a struct copy, mirroring the pending-access
/// fields.
struct BwState {
  TokenBucket mem;
  TokenBucket net;
  ContentionWindow cont;

  void reset(uint64_t now, const BwLimits& lim) {
    mem.reset(now, lim.memBurstQ);
    net.reset(now, lim.netBurstQ);
    cont.reset();
  }
};

}  // namespace cb::rt
