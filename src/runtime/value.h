// Runtime values for the CIR interpreter.
//
// Chapel-faithful semantics: scalars, tuples and records are value types
// (deep copy on assignment); arrays are reference types (a Value holds a
// shared handle; slices alias the base array's storage). Domains are small
// value objects describing rectangular index sets of rank 1..3.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.h"
#include "support/common.h"

namespace cb::rt {

struct ArrayObj;

/// Rectangular index set, rank 1..3, inclusive bounds, row-major layout.
struct DomainVal {
  uint8_t rank = 1;
  /// PGAS distribution stamped by `dmapped` (0 = local, 1 = Block,
  /// 2 = Cyclic) and the locale count bound when the stamp was applied.
  /// Ownership partitions along dimension 0 only. Not part of equality:
  /// two domains with the same bounds describe the same index set.
  uint8_t distKind = 0;
  uint16_t distLocales = 1;
  int64_t lo[3] = {0, 0, 0};
  int64_t hi[3] = {-1, -1, -1};

  /// Owning locale of index `idx0` along dim 0; 0 for undistributed domains.
  int64_t ownerOf(int64_t idx0) const {
    if (distKind == 0 || distLocales <= 1) return 0;
    int64_t e = extent(0);
    if (e <= 0) return 0;
    int64_t off = idx0 - lo[0];
    if (off < 0) off = 0;
    if (off >= e) off = e - 1;
    if (distKind == 1) return off * distLocales / e;  // Block
    return off % distLocales;                         // Cyclic
  }

  int64_t extent(int d) const { return hi[d] >= lo[d] ? hi[d] - lo[d] + 1 : 0; }
  int64_t size() const {
    int64_t n = 1;
    for (int d = 0; d < rank; ++d) n *= extent(d);
    return n;
  }
  bool contains(const int64_t* idx) const {
    for (int d = 0; d < rank; ++d)
      if (idx[d] < lo[d] || idx[d] > hi[d]) return false;
    return true;
  }
  /// Row-major linearization; returns -1 when out of bounds.
  int64_t linearize(const int64_t* idx) const {
    if (!contains(idx)) return -1;
    int64_t k = 0;
    for (int d = 0; d < rank; ++d) k = k * extent(d) + (idx[d] - lo[d]);
    return k;
  }
  void delinearize(int64_t k, int64_t* idx) const {
    for (int d = rank - 1; d >= 0; --d) {
      int64_t e = extent(d);
      idx[d] = lo[d] + (e > 0 ? k % e : 0);
      if (e > 0) k /= e;
    }
  }
  DomainVal expand(int64_t n) const {
    DomainVal d = *this;
    for (int i = 0; i < rank; ++i) {
      d.lo[i] -= n;
      d.hi[i] += n;
    }
    return d;
  }
  friend bool operator==(const DomainVal& a, const DomainVal& b) {
    if (a.rank != b.rank) return false;
    for (int d = 0; d < a.rank; ++d)
      if (a.lo[d] != b.lo[d] || a.hi[d] != b.hi[d]) return false;
    return true;
  }
};

enum class VKind : uint8_t { None, Int, Real, Bool, Str, Ref, Tuple, Record, Domain, Array };

struct Value {
  VKind kind = VKind::None;
  union {
    int64_t i;
    double d;
    bool b;
    Value* ref;  // transient address (frame slot / global / element / field)
  };
  DomainVal dom;                       // Domain
  std::vector<Value> elems;            // Tuple / Record fields (value semantics)
  std::shared_ptr<ArrayObj> arr;       // Array (reference semantics)
  std::shared_ptr<std::string> str;    // Str

  Value() : i(0) {}
  static Value makeInt(int64_t v) { Value x; x.kind = VKind::Int; x.i = v; return x; }
  static Value makeReal(double v) { Value x; x.kind = VKind::Real; x.d = v; return x; }
  static Value makeBool(bool v) { Value x; x.kind = VKind::Bool; x.b = v; return x; }
  static Value makeRef(Value* p) { Value x; x.kind = VKind::Ref; x.ref = p; return x; }
  static Value makeStr(std::string s) {
    Value x;
    x.kind = VKind::Str;
    x.str = std::make_shared<std::string>(std::move(s));
    return x;
  }
  static Value makeDomain(const DomainVal& d) {
    Value x;
    x.kind = VKind::Domain;
    x.dom = d;
    return x;
  }

  int64_t asInt() const { CB_ASSERT(kind == VKind::Int, "not an int"); return i; }
  double asReal() const { CB_ASSERT(kind == VKind::Real, "not a real"); return d; }
  bool asBool() const { CB_ASSERT(kind == VKind::Bool, "not a bool"); return b; }

  /// Numeric coercion helper (int or real -> double).
  double num() const {
    if (kind == VKind::Int) return static_cast<double>(i);
    CB_ASSERT(kind == VKind::Real, "not numeric");
    return d;
  }
};

/// Array storage. Owners hold data; views hold a base handle and a
/// restricted domain — element lookups use the *same coordinates* as the
/// base (Chapel slice semantics: `Pos[binSpace]` aliases Pos's elements).
struct ArrayObj {
  DomainVal dom;
  std::vector<Value> data;             // empty for views
  std::shared_ptr<ArrayObj> base;      // non-null for views
  /// Bytes each element access moves against the memory-bandwidth ceiling
  /// (runtime/bandwidth.h). Decided once at allocation: 0 when the array's
  /// footprint fits the profile's cache-resident threshold (or the ceiling
  /// is off), else 8 * scalarWidth(elem). Views defer to their base.
  uint32_t streamBytes = 0;

  bool isView() const { return base != nullptr; }

  /// Element at multi-dimensional index; nullptr when out of bounds.
  Value* at(const int64_t* idx) {
    if (base) {
      if (!dom.contains(idx)) return nullptr;
      return base->at(idx);
    }
    int64_t k = dom.linearize(idx);
    if (k < 0) return nullptr;
    return &data[static_cast<size_t>(k)];
  }

  /// Element at 0-based flat offset within this array's (or view's) domain.
  Value* atLinear(int64_t k) {
    if (k < 0 || k >= dom.size()) return nullptr;
    if (!base) return &data[static_cast<size_t>(k)];
    int64_t idx[3];
    dom.delinearize(k, idx);
    return base->at(idx);
  }

  /// Approximate payload size in bytes (for the allocation-threshold
  /// baseline profiler). Scalars count as 8 bytes.
  uint64_t approxBytes() const;
};

/// Renders a value for writeln / debugging.
std::string renderValue(const Value& v);

}  // namespace cb::rt
