// Bytecode execution engine with deterministic parallel worker-stream replay.
//
// Executes the pre-decoded flat form produced by bytecode.cpp. Semantics —
// including every cycle charge, sample point, error message and log record —
// are bit-identical to the tree-walking interpreter in interp.cpp (the
// oracle behind RunOptions::referenceInterp); tests/test_exec_diff.cpp
// enforces this differentially.
//
// Parallel replay: a top-level forall/coforall whose SpawnPlan proved the
// tasks independent may execute its worker streams on OS threads. The
// sequential interpreter already runs each worker stream's tasks
// back-to-back on a continuous per-stream virtual clock (setClock at a
// task boundary is the identity there: after advance(), next ==
// (clock/th+1)*th always holds), so one job per worker stream, each with a
// thread-local Ctx and private sample/output/alloc/cycle sinks, reproduces
// the exact same per-stream artefacts; the main thread then merges them in
// canonical global task order. Anything the analysis could not prove falls
// back to the sequential path.
#include "runtime/exec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/bandwidth.h"
#include "runtime/bytecode.h"
#include "support/common.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace cb::rt {

using ir::FuncId;
using ir::InstrId;
using ir::TypeId;
using ir::TypeKind;

namespace {

struct RunError {
  std::string message;
  SourceLoc loc;
};

const Value kEmptyValue{};

// In-place Value writes for the hot paths. A plain `v = Value::makeInt(x)`
// move-assignment swaps in the temporary's (empty) elems buffer, throwing
// away whatever capacity `v` had accumulated; in tuple-heavy code that turns
// every register write into an allocator round-trip. These helpers overwrite
// the scalar payload directly and only touch the owning members when the old
// value actually held something, so pooled frames keep their element
// capacity warm across calls.

inline void clearHeavy(Value& v) {
  if (__builtin_expect(!v.elems.empty(), 0)) v.elems.clear();
  if (__builtin_expect(v.arr != nullptr, 0)) v.arr.reset();
  if (__builtin_expect(v.str != nullptr, 0)) v.str.reset();
}

inline void setInt(Value& out, int64_t v) {
  clearHeavy(out);
  out.kind = VKind::Int;
  out.i = v;
}

inline void setReal(Value& out, double v) {
  clearHeavy(out);
  out.kind = VKind::Real;
  out.d = v;
}

inline void setBool(Value& out, bool v) {
  clearHeavy(out);
  out.kind = VKind::Bool;
  out.b = v;
}

inline void setRef(Value& out, Value* p) {
  clearHeavy(out);
  out.kind = VKind::Ref;
  out.ref = p;
}

inline void setDomain(Value& out, const DomainVal& d) {
  clearHeavy(out);
  out.kind = VKind::Domain;
  out.dom = d;
}

inline void resetValue(Value& v) {
  clearHeavy(v);
  v.kind = VKind::None;
  v.i = 0;
}

/// `out = in` preserving out's buffers: scalars bypass the member-wise
/// assignment entirely, and tuples/records copy element-by-element so a warm
/// destination (same shape as last iteration) performs no allocator work at
/// all. `out` is always distinct storage from `in` and from `in`'s element
/// tree (registers, slots, array elements and record fields never overlap a
/// source operand), so reads cannot be clobbered mid-copy.
void copyInto(Value& out, const Value& in) {
  if (__builtin_expect(&out == &in, 0)) return;  // slot-forwarded `t = t;`
  if (in.elems.empty()) {
    if (!in.arr && !in.str) {  // scalar / ref / domain
      clearHeavy(out);
      out.kind = in.kind;
      out.i = in.i;
      if (__builtin_expect(in.kind == VKind::Domain, 0)) out.dom = in.dom;
    } else {
      out = in;  // array handle / string: shared_ptr copy
    }
    return;
  }
  // Tuple / record (possibly with array-valued fields — elements recurse).
  if (__builtin_expect(out.arr != nullptr, 0)) out.arr.reset();
  if (__builtin_expect(out.str != nullptr, 0)) out.str.reset();
  out.kind = in.kind;
  out.i = in.i;
  size_t n = in.elems.size();
  if (out.elems.size() != n) out.elems.resize(n);
  for (size_t k = 0; k < n; ++k) copyInto(out.elems[k], in.elems[k]);
}

class Engine {
 public:
  Engine(const ir::Module& m, const RunOptions& opts)
      : m_(m),
        opts_(opts),
        cost_(opts.costProfileOverride
                  ? *opts.costProfileOverride
                  : (opts.fastCostProfile ? CostProfile::fast() : CostProfile::standard())),
        rng_(opts.rngSeed),
        threshold_(opts.sampleThreshold),
        hasSkid_(opts.skidInstructions != 0) {
    std::vector<uint64_t> icacheQ10(m.numFunctions(), 1024);
    const CostProfile& p = cost_.profile();
    for (FuncId f = 0; f < m.numFunctions(); ++f) {
      uint64_t n = m.function(f).numInstrs();
      if (n > p.icacheThresholdInstrs) {
        uint64_t extra = (n - p.icacheThresholdInstrs) * p.icacheSlopeQ10;
        icacheQ10[f] = 1024 + std::min(p.icacheMaxQ10, extra);
      }
    }
    compiled_ = bc::compile(m, cost_, icacheQ10);
    result_.cyclesPerFunction.assign(m.numFunctions(), 0);
    result_.log.sampleThreshold = opts.sampleThreshold;
    result_.log.numStreams = opts.numWorkers + 1;
    lastBusyEnd_.assign(opts.numWorkers + 1, 0);
    globals_.resize(m.numGlobals());
    globalRefs_.reserve(m.numGlobals());
    for (size_t g = 0; g < m.numGlobals(); ++g)
      globalRefs_.push_back(Value::makeRef(&globals_[g]));
    nestedHandleC_ = p.nestedArrayHandle;
    viewExtraC_ = p.viewIndexExtra;
    spawnPerTaskC_ = p.spawnPerTask;
    arrayNewPerElemC_ = p.arrayNewPerElem;
    arrayFillPerElemC_ = p.arrayFillPerElem;
    arrayCopyPerElemC_ = p.arrayCopyPerElem;
    remoteGetC_ = p.remoteGet;
    remotePutC_ = p.remotePut;
    onForkC_ = p.onFork;
    aggFlushLatencyC_ = p.aggFlushLatency;
    aggPerElemC_ = p.aggPerElemBandwidth;
    aggBufferCapC_ = p.aggBufferCap;
    memBwRateC_ = p.memBandwidthBytesPerKCycle;
    memCacheResC_ = p.memCacheResidentBytes;
    limits0_ = BwLimits::forStream(p, 0, opts.numWorkers);
    limitsW_ = BwLimits::forStream(p, 1, opts.numWorkers);
    bwEnabled_ = limits0_.enabled();
    causalTrack_ = opts.trackCausalSites;
    causalScaleSites_.insert(opts.causalScale.sites.begin(), opts.causalScale.sites.end());
    causalScaleOn_ = !causalScaleSites_.empty();
    causalNum_ = opts.causalScale.num;
    causalDen_ = opts.causalScale.den;
    causalActive_ = causalTrack_ || causalScaleOn_;
    if (causalTrack_) {
      // Dense site index (fid, instr) -> siteBase_[fid] + instr, so the
      // per-charge accumulation is a flat array slot instead of a hash probe.
      siteBase_.assign(m.numFunctions() + 1, 0);
      for (FuncId f = 0; f < m.numFunctions(); ++f)
        siteBase_[f + 1] = siteBase_[f] + static_cast<uint32_t>(m.function(f).numInstrs());
      // Static per-site cost table, straight from the compiled bytecode
      // (bi.cost is already icache-scaled). Seeding the accumulators with it
      // lets the dispatch loop count a static prologue charge with a single
      // increment: the charged cost is bi.cost by construction, so it always
      // equals the seeded uniform cost.
      staticCost_.assign(siteBase_.back(), 0);
      for (FuncId f = 0; f < m.numFunctions(); ++f) {
        const uint32_t base = siteBase_[f];
        for (const bc::BInstr& bi : compiled_.funcs[f].code) {
          staticCost_[base + bi.ir] = bi.cost;
          if (bi.cost2 != 0) staticCost_[base + bi.ir2] = bi.cost2;
        }
      }
      causalAcc_.resize(opts.numWorkers + 1);
    }
  }

  RunResult run() {
    Ctx ctx;
    ctx.icount = &result_.instructionsExecuted;
    ctx.maxInstr = opts_.maxInstructions;
    ctx.samples = &result_.log.samples;
    ctx.output = &result_.output;
    ctx.cycles = result_.cyclesPerFunction.data();
    ctx.allocMap = &result_.log.allocBytesBySite;
    ctx.echo = opts_.echoWriteln;
    ctx.locale = opts_.localeId;
    ctx.commGets = &result_.log.commGets;
    ctx.commPuts = &result_.log.commPuts;
    ctx.commOnForks = &result_.log.commOnForks;
    ctx.commAggGets = &result_.log.commAggGets;
    ctx.commAggPuts = &result_.log.commAggPuts;
    ctx.commAggFlushes = &result_.log.commAggFlushes;
    ctx.commMatrix = &result_.log.commMatrix;
    ctx.commMemStall = &result_.log.commMemStallCycles;
    ctx.commNetStall = &result_.log.commNetStallCycles;
    ctx.commContention = &result_.log.commContentionCycles;
    ctx.spans = &result_.log.taskSpans;
    if (causalTrack_) {
      ctx.acc = &causalAcc_[0];
      ctx.acc->init(siteBase_, staticCost_.data());
    }
    ctx.bw.reset(0, limits0_);
    ctx.next = nextFor(0);
    try {
      if (m_.moduleInitFunc != ir::kNone) callFunction(ctx, m_.moduleInitFunc, {});
      CB_ASSERT(m_.mainFunc != ir::kNone, "module has no main");
      callFunction(ctx, m_.mainFunc, {});
      flushSkid(ctx);
      for (uint32_t ws = 1; ws <= opts_.numWorkers; ++ws)
        emitIdleSamples(ws, lastBusyEnd_[ws], ctx.clock);
      closeSerialSpan(ctx, ctx.clock);
      result_.ok = true;
    } catch (const RunError& e) {
      result_.ok = false;
      result_.error = m_.sourceManager().render(e.loc) + ": " + e.message;
    }
    result_.totalCycles = ctx.clock;
    result_.log.totalCycles = result_.totalCycles;
    return std::move(result_);
  }

 private:
  struct EFrame {
    uint32_t fid = 0;
    std::vector<Value> regs;
    std::vector<Value> slots;
    std::vector<Value> args;
    uint32_t curIr = 0;
  };

  /// Per-execution-thread state. The main thread owns one Ctx for the whole
  /// run; each parallel-replay stream gets a private Ctx whose sinks are
  /// merged canonically afterwards. No Engine state is written through a
  /// worker Ctx.
  struct Ctx {
    uint32_t stream = 0;
    uint32_t curFid = 0;
    uint64_t taskTag = 0;
    uint64_t clock = 0;
    uint64_t next = ~0ull;
    uint64_t* icount = nullptr;
    uint64_t maxInstr = 0;
    std::vector<sampling::RawSample>* samples = nullptr;
    std::string* output = nullptr;
    uint64_t* cycles = nullptr;  // per-function busy cycles
    std::unordered_map<uint64_t, uint64_t>* allocMap = nullptr;       // main thread
    std::vector<std::pair<uint64_t, uint64_t>>* allocVec = nullptr;   // workers
    bool echo = false;
    // PGAS locale simulation: the locale this context currently executes on,
    // the `on`-block restore stack, the comm classification pending for the
    // next sample, and exact comm counters (main thread points straight into
    // result_.log; workers into private tallies merged via TRec deltas).
    int64_t locale = 0;
    std::vector<int64_t> onStack;
    sampling::AccessKind pending = sampling::AccessKind::None;
    int32_t pendingSrc = 0;
    int32_t pendingDst = 0;
    uint64_t* commGets = nullptr;
    uint64_t* commPuts = nullptr;
    uint64_t* commOnForks = nullptr;
    uint64_t* commAggGets = nullptr;
    uint64_t* commAggPuts = nullptr;
    uint64_t* commAggFlushes = nullptr;
    std::map<uint64_t, uint64_t>* commMatrix = nullptr;
    // Bandwidth-ceiling state (runtime/bandwidth.h): chunk-local like the
    // pending access; the stall tallies point into result_.log on the main
    // thread and into per-worker sums merged via TRec deltas.
    BwState bw;
    uint64_t* commMemStall = nullptr;
    uint64_t* commNetStall = nullptr;
    uint64_t* commContention = nullptr;
    /// Open simulated aggregators (AggOpen handle = index, LIFO). Buffers
    /// hold per-destination COUNTS only; values move eagerly at copy time.
    struct AggState {
      bool isSrc;
      std::map<int64_t, uint32_t> pending;
    };
    std::vector<AggState> aggStack;
    /// Causal span state: completed spans sink (main thread points straight
    /// into result_.log.taskSpans, replay workers into per-stream vectors
    /// merged via TRec ranges), the per-site split accrued for the currently
    /// executing segment, and the start of the open main-stream serial
    /// segment (meaningful on the main Ctx only).
    std::vector<sampling::TaskSpan>* spans = nullptr;
    /// Per-stream causal site accumulator (Engine::causalAcc_[stream]):
    /// persistent across regions so a worker Ctx never re-zeroes the slot
    /// array, and per-stream so concurrent replay streams never share one.
    CausalAccumulator* acc = nullptr;
    uint64_t serialStart = 0;
    std::vector<uint32_t> skid;
    std::vector<EFrame*> stack;
    std::vector<sampling::Frame> cachedStack;
    uint64_t stackGen = 0;
    uint64_t cachedGen = ~0ull;
    std::vector<std::unique_ptr<EFrame>> frameStore;
    std::vector<EFrame*> freeFrames;
  };

  [[noreturn]] static void fail(const std::string& msg, SourceLoc loc) {
    throw RunError{msg, loc};
  }

  uint64_t nextFor(uint64_t t) const {
    return threshold_ != 0 ? ((t / threshold_) + 1) * threshold_ : ~0ull;
  }

  // ---- sampling -----------------------------------------------------------

  void emitSample(Ctx& c) {
    if (c.cachedGen != c.stackGen) {
      c.cachedStack.clear();
      c.cachedStack.reserve(c.stack.size());
      for (const EFrame* fr : c.stack) c.cachedStack.push_back({fr->fid, fr->curIr});
      c.cachedGen = c.stackGen;
    } else if (!c.cachedStack.empty()) {
      c.cachedStack.back().instr = c.stack.back()->curIr;
    }
    sampling::RawSample s;
    s.stream = c.stream;
    s.taskTag = c.taskTag;
    s.atCycle = c.clock;
    s.accessKind = c.pending;
    s.srcLocale = c.pendingSrc;
    s.dstLocale = c.pendingDst;
    s.stack = c.cachedStack;
    c.samples->push_back(std::move(s));
    c.pending = sampling::AccessKind::None;  // consumed by this sample
    c.pendingSrc = c.pendingDst = 0;
  }

  void overflow(Ctx& c) {
    while (c.clock >= c.next) {
      c.next += threshold_ == 0 ? ~0ull : threshold_;
      if (!hasSkid_) emitSample(c);
      else c.skid.push_back(opts_.skidInstructions);
    }
  }

  /// Causal charge hook — the bytecode twin of Interp's. The charge site is
  /// the leaf frame's instruction pointer, which fused superinstructions
  /// keep exact (curIr is advanced to ir2 before cost2 is charged), so both
  /// engines see the identical per-charge (site, cost) sequence. The
  /// what-if scale probe (ground-truth oracle re-runs only) stays
  /// out-of-line; the tracking path is the accumulator's 8-byte slot touch.
  inline void charge(Ctx& c, uint64_t cost) {
    if (__builtin_expect(causalActive_, 0) && !c.stack.empty()) {
      EFrame* fr = c.stack.back();
      if (causalScaleOn_ &&
          causalScaleSites_.count(sampling::RunLog::siteKey(fr->fid, fr->curIr)) != 0)
        cost = causalScaledCost(cost, causalNum_, causalDen_);
      if (causalTrack_ && cost != 0)
        c.acc->charge(siteBase_[fr->fid] + fr->curIr, cost);
    }
    c.cycles[c.curFid] += cost;
    c.clock += cost;
    if (__builtin_expect(c.clock >= c.next, 0)) overflow(c);
  }

  // ---- task spans -----------------------------------------------------------

  /// Appends one completed span to `c.spans` (completion order == canonical
  /// emission order). `takeSites` moves the accrued per-site split into the
  /// span — false for nested spans, whose cycles stay with the enclosing
  /// top-level segment.
  void pushSpan(Ctx& c, uint64_t tag, uint32_t chunk, uint32_t stream, uint64_t start,
                uint64_t end, bool takeSites) {
    sampling::TaskSpan sp;
    sp.tag = tag;
    sp.chunk = chunk;
    sp.stream = stream;
    sp.startCycle = start;
    sp.endCycle = end;
    if (takeSites && causalTrack_) {
      sp.sites.reserve(c.acc->lastDrainCount());
      c.acc->drain([&sp](uint32_t fid, uint32_t instr, uint64_t raw, uint64_t s125,
                         uint64_t s2, uint64_t s4) {
        sp.sites.push_back({sampling::RunLog::siteKey(fid, instr), raw, s125, s2, s4});
      });
    }
    c.spans->push_back(std::move(sp));
  }

  /// Closes the open main-stream serial segment at `end` (eliding zero-length
  /// segments) and re-opens it there.
  void closeSerialSpan(Ctx& c, uint64_t end) {
    if (end > c.serialStart) {
      pushSpan(c, 0, 0, 0, c.serialStart, end, true);
    } else if (causalTrack_) {
      c.acc->discard();
    }
    c.serialStart = end;
  }

  void tickSkid(Ctx& c) {
    if (c.skid.empty()) return;
    size_t w = 0;
    for (size_t r = 0; r < c.skid.size(); ++r) {
      if (--c.skid[r] == 0) emitSample(c);
      else c.skid[w++] = c.skid[r];
    }
    c.skid.resize(w);
  }

  void flushSkid(Ctx& c) {
    for (size_t k = 0; k < c.skid.size(); ++k) emitSample(c);
    c.skid.clear();
  }

  void emitIdleSamples(uint32_t stream, uint64_t from, uint64_t to) {
    if (!opts_.sampleIdle || threshold_ == 0) return;
    uint64_t first = (from / threshold_ + 1) * threshold_;
    for (uint64_t t = first; t <= to; t += threshold_) {
      sampling::RawSample s;
      s.stream = stream;
      s.atCycle = t;
      uint64_t k = idleSampleCounter_++;
      if (k % 20 == 19) s.runtimeFrame = sampling::RuntimeFrameKind::ChplTaskYield;
      else if (k % 20 >= 17) s.runtimeFrame = sampling::RuntimeFrameKind::PthreadState;
      else s.runtimeFrame = sampling::RuntimeFrameKind::SchedYield;
      result_.log.samples.push_back(std::move(s));
    }
  }

  // ---- operands / values --------------------------------------------------

  const Value& rd(Ctx&, EFrame& fr, const bc::BOperand& o) const {
    switch (o.k) {
      case bc::BOperand::K::Reg: return fr.regs[o.idx];
      case bc::BOperand::K::Arg: return fr.args[o.idx];
      case bc::BOperand::K::Const: return compiled_.constPool[o.idx];
      case bc::BOperand::K::Global: return globalRefs_[o.idx];
      case bc::BOperand::K::Slot: return fr.slots[o.idx];
      default: return kEmptyValue;
    }
  }

  Value* refOf(Ctx& c, EFrame& fr, const bc::BOperand& o, SourceLoc loc) const {
    const Value& x = rd(c, fr, o);
    if (x.kind != VKind::Ref) fail("expected an address value", loc);
    return x.ref;
  }

  bool typeOwnsArrays(TypeId t) const {
    const ir::Type& ty = m_.types().get(t);
    switch (ty.kind) {
      case TypeKind::Array: return true;
      case TypeKind::Tuple:
        for (TypeId e : ty.elems)
          if (typeOwnsArrays(e)) return true;
        return false;
      case TypeKind::Record:
        for (const ir::RecordField& f : ty.fields)
          if (typeOwnsArrays(f.type)) return true;
        return false;
      default: return false;
    }
  }

  uint64_t scalarWidth(TypeId t) const {
    const ir::Type& ty = m_.types().get(t);
    switch (ty.kind) {
      case TypeKind::Tuple: {
        uint64_t w = 0;
        for (TypeId e : ty.elems) w += scalarWidth(e);
        return w;
      }
      case TypeKind::Record: {
        uint64_t w = 0;
        for (const ir::RecordField& f : ty.fields) w += scalarWidth(f.type);
        return w;
      }
      default: return 1;
    }
  }

  Value defaultValue(Ctx& c, TypeId t) {
    const ir::Type& ty = m_.types().get(t);
    switch (ty.kind) {
      case TypeKind::Int: return Value::makeInt(0);
      case TypeKind::Real: return Value::makeReal(0.0);
      case TypeKind::Bool: return Value::makeBool(false);
      case TypeKind::String: return Value::makeStr("");
      case TypeKind::Domain: return Value::makeDomain(DomainVal{});
      case TypeKind::Tuple: {
        Value v;
        v.kind = VKind::Tuple;
        v.elems.reserve(ty.elems.size());
        for (TypeId e : ty.elems) v.elems.push_back(defaultValue(c, e));
        return v;
      }
      case TypeKind::Record: {
        Value v;
        v.kind = VKind::Record;
        v.elems.reserve(ty.fields.size());
        for (uint32_t i = 0; i < ty.fields.size(); ++i) {
          TypeId ft = ty.fields[i].type;
          if (m_.types().kindOf(ft) == TypeKind::Array) {
            auto th = m_.fieldDomainThunks.find({t, i});
            if (th != m_.fieldDomainThunks.end()) {
              Value dom = callFunction(c, th->second, {});
              v.elems.push_back(makeArray(c, dom.dom, m_.types().get(ft).elem, ir::kNone, 0));
            } else {
              Value empty;
              empty.kind = VKind::Array;
              v.elems.push_back(std::move(empty));
            }
          } else {
            v.elems.push_back(defaultValue(c, ft));
          }
        }
        return v;
      }
      case TypeKind::Array: {
        Value v;
        v.kind = VKind::Array;
        return v;
      }
      default: return Value{};
    }
  }

  Value makeArray(Ctx& c, const DomainVal& dom, TypeId elemTy, FuncId allocFn,
                  InstrId allocInstr) {
    int64_t n = dom.size();
    auto obj = std::make_shared<ArrayObj>();
    obj->dom = dom;
    uint64_t width = scalarWidth(elemTy);
    if (memBwRateC_ != 0 && static_cast<uint64_t>(n) * width * 8 > memCacheResC_)
      obj->streamBytes = static_cast<uint32_t>(8 * width);
    obj->data.reserve(static_cast<size_t>(n));
    if (n > 0) {
      if (typeOwnsArrays(elemTy)) {
        for (int64_t k = 0; k < n; ++k) obj->data.push_back(defaultValue(c, elemTy));
      } else {
        Value proto = defaultValue(c, elemTy);
        for (int64_t k = 0; k < n; ++k) obj->data.push_back(proto);
      }
    }
    charge(c, arrayNewPerElemC_ * static_cast<uint64_t>(n) * width);
    Value v;
    v.kind = VKind::Array;
    v.arr = std::move(obj);
    if (allocFn != ir::kNone) {
      uint64_t key = sampling::RunLog::siteKey(allocFn, allocInstr);
      uint64_t bytes = v.arr->approxBytes();
      if (c.allocVec) {
        c.allocVec->emplace_back(key, bytes);
      } else {
        auto& slot = (*c.allocMap)[key];
        if (bytes > slot) slot = bytes;
      }
    }
    return v;
  }

  // ---- calls / dispatch ---------------------------------------------------

  EFrame* acquireFrame(Ctx& c) {
    if (!c.freeFrames.empty()) {
      EFrame* f = c.freeFrames.back();
      c.freeFrames.pop_back();
      return f;
    }
    c.frameStore.push_back(std::make_unique<EFrame>());
    return c.frameStore.back().get();
  }

  /// Acquires and zeroes a frame for `f`, preserving the pooled vectors'
  /// capacity (including each element's tuple-buffer capacity).
  EFrame* setupFrame(Ctx& c, FuncId f, const bc::BFunc& bf) {
    EFrame* fr = acquireFrame(c);
    fr->fid = f;
    // Registers are never read before the defining instruction has executed
    // in this activation (IR operands reference dominating defs), so stale
    // contents from a previous pooled use need no reset — every handler
    // overwrites its destination fully. Keeping stale tuples alive preserves
    // their element buffers, which makes loop-carried TupleMake/copyInto
    // allocation-free. Slots DO need resetting: a declared-but-uninitialized
    // slot (e.g. a domain var before its store) must read back as None,
    // exactly like the reference interpreter's freshly-constructed frame.
    if (fr->regs.size() != bf.numRegs) fr->regs.resize(bf.numRegs);
    if (fr->slots.size() != bf.numSlots) fr->slots.resize(bf.numSlots);
    for (uint32_t s : bf.resetSlots) resetValue(fr->slots[s]);
    fr->curIr = 0;
    return fr;
  }

  void enterAndRun(Ctx& c, FuncId f, EFrame* fr, Value& out) {
    c.stack.push_back(fr);
    ++c.stackGen;
    uint32_t savedFid = c.curFid;
    // `on` blocks are lexically scoped: a return from inside one must not
    // leak the switched locale into the caller.
    int64_t savedLocale = c.locale;
    size_t savedOnDepth = c.onStack.size();
    c.curFid = f;
    execFrame(c, *fr, compiled_.funcs[f], m_.function(f), out);
    c.locale = savedLocale;
    c.onStack.resize(savedOnDepth);
    c.stack.pop_back();
    ++c.stackGen;
    c.curFid = savedFid;
    fr->args.clear();
    c.freeFrames.push_back(fr);
  }

  /// Hot Call path: arguments are copied straight from the caller's operand
  /// window into the pooled callee frame; the return value lands in `out`.
  void callFunctionOps(Ctx& c, FuncId f, EFrame& caller, const bc::BOperand* argOps,
                       uint32_t n, Value& out) {
    const bc::BFunc& bf = compiled_.funcs[f];
    EFrame* fr = setupFrame(c, f, bf);
    if (fr->args.size() != n) fr->args.resize(n);
    for (uint32_t k = 0; k < n; ++k) copyInto(fr->args[k], rd(c, caller, argOps[k]));
    enterAndRun(c, f, fr, out);
  }

  /// Cold path (spawn tasks, module init, field-domain thunks): takes
  /// materialized arguments.
  Value callFunction(Ctx& c, FuncId f, std::vector<Value> args) {
    const bc::BFunc& bf = compiled_.funcs[f];
    EFrame* fr = setupFrame(c, f, bf);
    fr->args = std::move(args);
    Value ret;
    enterAndRun(c, f, fr, ret);
    return ret;
  }

  /// Bool-typed Bin ops produce a plain bool so CmpBr can branch without
  /// materializing a Value.
  bool evalBoolBin(Ctx& c, EFrame& fr, const bc::BInstr& bi, const ir::Function& irFn) const {
    using ir::BinKind;
    const Value& a = rd(c, fr, bi.a);
    const Value& b = rd(c, fr, bi.b);
    BinKind k = static_cast<BinKind>(bi.sub);
    switch (k) {
      case BinKind::And: return a.asBool() && b.asBool();
      case BinKind::Or: return a.asBool() || b.asBool();
      default: break;
    }
    if (a.kind == VKind::Bool && b.kind == VKind::Bool)
      return k == BinKind::Eq ? a.b == b.b : a.b != b.b;
    double x = a.num(), y = b.num();
    switch (k) {
      case BinKind::Eq: return x == y;
      case BinKind::Ne: return x != y;
      case BinKind::Lt: return x < y;
      case BinKind::Le: return x <= y;
      case BinKind::Gt: return x > y;
      case BinKind::Ge: return x >= y;
      default: fail("bad boolean op", irFn.instrs[bi.ir].loc);
    }
  }

  void evalBinInto(Ctx& c, EFrame& fr, const bc::BInstr& bi, const ir::Function& irFn,
                   Value& out) const {
    using ir::BinKind;
    TypeKind rk = static_cast<TypeKind>(bi.rk);
    if (rk == TypeKind::Bool) {
      setBool(out, evalBoolBin(c, fr, bi, irFn));
      return;
    }
    const Value& a = rd(c, fr, bi.a);
    const Value& b = rd(c, fr, bi.b);
    BinKind k = static_cast<BinKind>(bi.sub);
    if (rk == TypeKind::Int) {
      int64_t x = a.asInt(), y = b.asInt(), r = 0;
      switch (k) {
        case BinKind::Add: r = x + y; break;
        case BinKind::Sub: r = x - y; break;
        case BinKind::Mul: r = x * y; break;
        case BinKind::Div:
          if (y == 0) fail("integer division by zero", irFn.instrs[bi.ir].loc);
          r = x / y;
          break;
        case BinKind::Mod:
          if (y == 0) fail("integer modulo by zero", irFn.instrs[bi.ir].loc);
          r = x % y;
          break;
        case BinKind::Min: r = x < y ? x : y; break;
        case BinKind::Max: r = x > y ? x : y; break;
        default: fail("bad integer op", irFn.instrs[bi.ir].loc);
      }
      setInt(out, r);
      return;
    }
    double x = a.num(), y = b.num(), r = 0;
    switch (k) {
      case BinKind::Add: r = x + y; break;
      case BinKind::Sub: r = x - y; break;
      case BinKind::Mul: r = x * y; break;
      case BinKind::Div: r = x / y; break;
      case BinKind::Pow: r = std::pow(x, y); break;
      case BinKind::Min: r = x < y ? x : y; break;
      case BinKind::Max: r = x > y ? x : y; break;
      case BinKind::Mod: r = std::fmod(x, y); break;
      default: fail("bad real op", irFn.instrs[bi.ir].loc);
    }
    setReal(out, r);
  }

  void evalUnInto(Ctx& c, EFrame& fr, const bc::BInstr& bi, Value& out) const {
    using ir::UnKind;
    const Value& v = rd(c, fr, bi.a);
    switch (static_cast<UnKind>(bi.sub)) {
      case UnKind::Neg:
        if (v.kind == VKind::Int) setInt(out, -v.i);
        else setReal(out, -v.num());
        return;
      case UnKind::Not: setBool(out, !v.asBool()); return;
      case UnKind::IntToReal: setReal(out, static_cast<double>(v.asInt())); return;
      case UnKind::RealToInt: setInt(out, static_cast<int64_t>(v.num())); return;
      case UnKind::Abs:
        if (v.kind == VKind::Int) setInt(out, std::llabs(v.i));
        else setReal(out, std::fabs(v.num()));
        return;
      case UnKind::Sqrt: setReal(out, std::sqrt(v.num())); return;
      case UnKind::Sin: setReal(out, std::sin(v.num())); return;
      case UnKind::Cos: setReal(out, std::cos(v.num())); return;
      case UnKind::Exp: setReal(out, std::exp(v.num())); return;
      case UnKind::Floor: setInt(out, static_cast<int64_t>(std::floor(v.num()))); return;
    }
  }

  /// PGAS access classification, mirroring Interp::noteArrayAccess: views
  /// defer ownership to their base array; a remote owner charges the GET/PUT
  /// cost and bumps the exact counters; the kind stays pending for the next
  /// sample.
  inline void noteArrayAccess(Ctx& c, const ArrayObj* arr, int64_t idx0, bool isStore) {
    const ArrayObj* own = arr->base ? arr->base.get() : arr;
    const DomainVal& od = own->dom;
    int64_t owner;
    if (od.distKind != 0 && od.distLocales > 1 && (owner = od.ownerOf(idx0)) != c.locale) {
      c.pendingSrc = static_cast<int32_t>(c.locale);
      c.pendingDst = static_cast<int32_t>(owner);
      ++(*c.commMatrix)[sampling::RunLog::pairKey(c.locale, owner)];
      if (isStore) {
        c.pending = sampling::AccessKind::RemotePut;
        ++*c.commPuts;
        charge(c, remotePutC_);
      } else {
        c.pending = sampling::AccessKind::RemoteGet;
        ++*c.commGets;
        charge(c, remoteGetC_);
      }
      if (bwEnabled_) chargeNetBw(c, owner, bwLimits(c).netElemBytes);
    } else {
      c.pending = sampling::AccessKind::Local;
      c.pendingSrc = c.pendingDst = 0;
      if (bwEnabled_) chargeLocalBw(c, own);
    }
  }

  // ---- bandwidth ceilings (mirrors Interp::chargeNetBw/chargeLocalBw) ----

  const BwLimits& bwLimits(const Ctx& c) const {
    return c.stream == 0 ? limits0_ : limitsW_;
  }

  void chargeNetBw(Ctx& c, int64_t peer, uint64_t bytes) {
    const BwLimits& lim = bwLimits(c);
    uint64_t cs = c.bw.cont.note(c.clock, peer, lim);
    if (cs) {
      *c.commContention += cs;
      charge(c, cs);
    }
    uint64_t ns = c.bw.net.consume(c.clock, bytes, lim.netRate, lim.netBurstQ);
    if (ns) {
      *c.commNetStall += ns;
      charge(c, ns);
    }
  }

  void chargeLocalBw(Ctx& c, const ArrayObj* own) {
    const BwLimits& lim = bwLimits(c);
    if (lim.memRate == 0 || own->streamBytes == 0) return;
    uint64_t ms = c.bw.mem.consume(c.clock, own->streamBytes, lim.memRate, lim.memBurstQ);
    if (ms) {
      *c.commMemStall += ms;
      charge(c, ms);
    }
  }

  /// IndexAddr address computation shared by the plain and fused forms;
  /// charges the view penalty and the PGAS remote-access cost exactly where
  /// the tree-walker does.
  Value* indexAddr(Ctx& c, EFrame& fr, const bc::BInstr& bi, const bc::BOperand* ops,
                   SourceLoc loc) {
    const Value& base = rd(c, fr, ops[bi.opBase]);
    if (base.kind != VKind::Array || !base.arr) fail("indexing a non-array", loc);
    Value* p = nullptr;
    int64_t idx0 = 0;
    if (bi.flags & bc::kLinear) {
      int64_t k = rd(c, fr, ops[bi.opBase + 1]).asInt();
      p = base.arr->atLinear(k);
      if (p) {
        const ArrayObj* own = base.arr->base ? base.arr->base.get() : base.arr.get();
        if (own->dom.distKind != 0 && own->dom.distLocales > 1) {
          int64_t idx[3];
          base.arr->dom.delinearize(k, idx);
          idx0 = idx[0];
        }
      }
    } else {
      int64_t idx[3] = {0, 0, 0};
      int n = static_cast<int>(bi.nops) - 1;
      for (int d = 0; d < n; ++d) idx[d] = rd(c, fr, ops[bi.opBase + 1 + d]).asInt();
      p = base.arr->at(idx);
      idx0 = idx[0];
    }
    if (!p) fail("array index out of bounds", loc);
    if (base.arr->isView()) charge(c, viewExtraC_);
    noteArrayAccess(c, base.arr.get(), idx0, (bi.flags & bc::kStore) != 0);
    return p;
  }

  void execFrame(Ctx& ctx, EFrame& fr, const bc::BFunc& bf, const ir::Function& irFn,
                 Value& out);
  /// The dispatch loop proper, compiled twice: the kCausal = false
  /// instantiation carries zero causal-mode code on the per-instruction
  /// path, the kCausal = true one tracks/scales with straight-line inline
  /// code. execFrame() picks the instantiation once per frame.
  template <bool kCausal>
  void execFrameT(Ctx& ctx, EFrame& fr, const bc::BFunc& bf, const ir::Function& irFn,
                  Value& out);

  void execBuiltin(Ctx& ctx, EFrame& fr, const bc::BInstr& bi, const bc::BOperand* ops,
                   const ir::Function& irFn) {
    using ir::BuiltinKind;
    switch (static_cast<BuiltinKind>(bi.sub)) {
      case BuiltinKind::Writeln: {
        std::string line;
        for (uint32_t k = 0; k < bi.nops; ++k) {
          if (k) line += " ";
          line += renderValue(rd(ctx, fr, ops[bi.opBase + k]));
        }
        line += "\n";
        if (ctx.echo) std::fputs(line.c_str(), stdout);
        *ctx.output += line;
        break;
      }
      case BuiltinKind::Random:
        fr.regs[bi.dst] = Value::makeReal(rng_.nextDouble());
        break;
      case BuiltinKind::Clock:
        fr.regs[bi.dst] = Value::makeInt(static_cast<int64_t>(ctx.clock));
        break;
      case BuiltinKind::Yield:
      case BuiltinKind::HeapHint:
        break;
      case BuiltinKind::ArrayFill: {
        const Value& arr = rd(ctx, fr, ops[bi.opBase]);
        const Value& v = rd(ctx, fr, ops[bi.opBase + 1]);
        if (arr.kind != VKind::Array || !arr.arr)
          fail("fill of a non-array", irFn.instrs[bi.ir].loc);
        int64_t n = arr.arr->dom.size();
        for (int64_t k = 0; k < n; ++k) *arr.arr->atLinear(k) = v;
        charge(ctx, arrayFillPerElemC_ * static_cast<uint64_t>(n));
        break;
      }
      case BuiltinKind::ArrayCopy: {
        const Value& dst = rd(ctx, fr, ops[bi.opBase]);
        const Value& src = rd(ctx, fr, ops[bi.opBase + 1]);
        if (dst.kind != VKind::Array || !dst.arr || src.kind != VKind::Array || !src.arr)
          fail("copy of a non-array", irFn.instrs[bi.ir].loc);
        int64_t n = dst.arr->dom.size();
        if (n != src.arr->dom.size()) fail("array copy size mismatch", irFn.instrs[bi.ir].loc);
        for (int64_t k = 0; k < n; ++k) *dst.arr->atLinear(k) = *src.arr->atLinear(k);
        charge(ctx, arrayCopyPerElemC_ * static_cast<uint64_t>(n));
        break;
      }
      case BuiltinKind::ConfigGet: {
        const Value& name = rd(ctx, fr, ops[bi.opBase]);
        const Value& def = rd(ctx, fr, ops[bi.opBase + 1]);
        auto it = opts_.configOverrides.find(name.str ? *name.str : "");
        if (it == opts_.configOverrides.end()) {
          fr.regs[bi.dst] = def;
          break;
        }
        const std::string& s = it->second;
        switch (def.kind) {
          case VKind::Int:
            fr.regs[bi.dst] = Value::makeInt(std::strtoll(s.c_str(), nullptr, 10));
            break;
          case VKind::Real:
            fr.regs[bi.dst] = Value::makeReal(std::strtod(s.c_str(), nullptr));
            break;
          case VKind::Bool:
            fr.regs[bi.dst] = Value::makeBool(s == "true" || s == "1");
            break;
          default: fr.regs[bi.dst] = def; break;
        }
        break;
      }
      case BuiltinKind::Dmapped: {
        const Value& d = rd(ctx, fr, ops[bi.opBase]);
        if (d.kind != VKind::Domain) fail("dmapped on a non-domain", irFn.instrs[bi.ir].loc);
        DomainVal dv = d.dom;
        dv.distKind = static_cast<uint8_t>(rd(ctx, fr, ops[bi.opBase + 1]).asInt());
        dv.distLocales = static_cast<uint16_t>(std::max<uint32_t>(1, opts_.numLocales));
        setDomain(fr.regs[bi.dst], dv);
        break;
      }
      case BuiltinKind::OnBegin: {
        int64_t target = rd(ctx, fr, ops[bi.opBase]).asInt();
        int64_t L = std::max<int64_t>(1, opts_.numLocales);
        target = ((target % L) + L) % L;  // wrap like Locales[i % numLocales]
        ctx.onStack.push_back(ctx.locale);
        if (target != ctx.locale) {
          ++*ctx.commOnForks;
          charge(ctx, onForkC_);
        }
        ctx.locale = target;
        break;
      }
      case BuiltinKind::OnEnd:
        if (!ctx.onStack.empty()) {
          ctx.locale = ctx.onStack.back();
          ctx.onStack.pop_back();
        }
        break;
      case BuiltinKind::HereId:
        setInt(fr.regs[bi.dst], ctx.locale);
        break;
      case BuiltinKind::NumLocales:
        setInt(fr.regs[bi.dst], std::max<int64_t>(1, opts_.numLocales));
        break;
      case BuiltinKind::AggOpen: {
        bool isSrc = rd(ctx, fr, ops[bi.opBase]).asInt() != 0;
        ctx.aggStack.push_back(Ctx::AggState{isSrc, {}});
        setInt(fr.regs[bi.dst], static_cast<int64_t>(ctx.aggStack.size()) - 1);
        break;
      }
      case BuiltinKind::AggCopy:
        execAggCopy(ctx, fr, bi, ops, irFn);
        break;
      case BuiltinKind::AggClose: {
        int64_t h = rd(ctx, fr, ops[bi.opBase]).asInt();
        if (h < 0 || static_cast<size_t>(h) != ctx.aggStack.size() - 1 ||
            ctx.aggStack.empty())
          fail("aggregator closed out of order", irFn.instrs[bi.ir].loc);
        Ctx::AggState& st = ctx.aggStack.back();
        for (const auto& [peer, n] : st.pending) {
          if (n == 0) continue;
          ++*ctx.commAggFlushes;
          charge(ctx, aggFlushLatencyC_ + aggPerElemC_ * n);
          if (bwEnabled_) chargeNetBw(ctx, peer, n * bwLimits(ctx).netElemBytes);
        }
        ctx.aggStack.pop_back();
        break;
      }
    }
  }

  /// One simulated agg.copy(), mirroring Interp::execAggCopy: classify the
  /// remote leg, bump the agg counters + matrix, buffer a per-destination
  /// count (flushing at capacity for latency + n*bandwidth), then move the
  /// value eagerly so final state matches the non-aggregated program.
  void execAggCopy(Ctx& ctx, EFrame& fr, const bc::BInstr& bi, const bc::BOperand* ops,
                   const ir::Function& irFn) {
    SourceLoc loc = irFn.instrs[bi.ir].loc;
    int64_t h = rd(ctx, fr, ops[bi.opBase]).asInt();
    if (h < 0 || static_cast<size_t>(h) >= ctx.aggStack.size())
      fail("aggregator used outside its task", loc);
    Ctx::AggState& st = ctx.aggStack[static_cast<size_t>(h)];
    const Value& remoteArrV = rd(ctx, fr, ops[bi.opBase + (st.isSrc ? 2 : 1)]);
    if (remoteArrV.kind != VKind::Array || !remoteArrV.arr)
      fail("agg.copy element operand is not an array", loc);
    int64_t idx[3] = {rd(ctx, fr, ops[bi.opBase + (st.isSrc ? 3 : 2)]).asInt(), 0, 0};
    Value* elem = remoteArrV.arr->at(idx);
    if (!elem) fail("array index out of bounds", loc);
    const ArrayObj* own = remoteArrV.arr->base ? remoteArrV.arr->base.get()
                                               : remoteArrV.arr.get();
    const DomainVal& od = own->dom;
    int64_t owner;
    if (od.distKind != 0 && od.distLocales > 1 &&
        (owner = od.ownerOf(idx[0])) != ctx.locale) {
      ctx.pending = st.isSrc ? sampling::AccessKind::RemoteGet
                             : sampling::AccessKind::RemotePut;
      ctx.pendingSrc = static_cast<int32_t>(ctx.locale);
      ctx.pendingDst = static_cast<int32_t>(owner);
      ++*(st.isSrc ? ctx.commAggGets : ctx.commAggPuts);
      ++(*ctx.commMatrix)[sampling::RunLog::pairKey(ctx.locale, owner)];
      uint32_t& pending = st.pending[owner];
      if (++pending >= aggBufferCapC_) {
        ++*ctx.commAggFlushes;
        charge(ctx, aggFlushLatencyC_ + aggPerElemC_ * pending);
        if (bwEnabled_) chargeNetBw(ctx, owner, pending * bwLimits(ctx).netElemBytes);
        pending = 0;
      }
    } else {
      ctx.pending = sampling::AccessKind::Local;
      ctx.pendingSrc = ctx.pendingDst = 0;
    }
    if (st.isSrc) {
      Value* dst = refOf(ctx, fr, ops[bi.opBase + 1], loc);
      *dst = *elem;
    } else {
      *elem = rd(ctx, fr, ops[bi.opBase + 3]);
    }
  }

  // ---- spawn --------------------------------------------------------------

  uint32_t effectiveReplayThreads() const {
    if (opts_.replayThreads != 0) return opts_.replayThreads;
    return std::min<uint32_t>(std::max<uint32_t>(1, opts_.numWorkers),
                              ThreadPool::defaultConcurrency());
  }

  /// Runtime half of the eligibility decision: resolves every analyzed root
  /// to a concrete array, then rejects the region if two distinct static
  /// roots reach the same storage and one of them is written (unforeseen
  /// aliasing — e.g. the same array captured twice).
  bool canParallelize(const bc::SpawnPlan& plan, size_t numChunks,
                      const std::vector<Value>& extra, Ctx& ctx) {
    if (!plan.eligible) return false;
    if (effectiveReplayThreads() <= 1) return false;
    if (numChunks < 2 || opts_.numWorkers < 2) return false;
    // Keep generous headroom so the documented post-merge budget check can
    // never fire before the sequential engine would have failed anyway.
    if (opts_.maxInstructions - *ctx.icount < (1ull << 30)) return false;
    std::vector<const ArrayObj*> canon;
    canon.reserve(plan.roots.size());
    for (const bc::RootRef& rr : plan.roots) {
      const Value* v;
      if (rr.fromGlobal) {
        if (rr.index >= globals_.size()) return false;
        v = &globals_[rr.index];
      } else {
        if (rr.index < 2 || rr.index - 2 >= extra.size()) return false;
        v = &extra[rr.index - 2];
        if (rr.deref) {
          if (v->kind != VKind::Ref) return false;
          v = v->ref;
        }
      }
      for (uint32_t p : rr.path) {
        if ((v->kind != VKind::Record && v->kind != VKind::Tuple) || p >= v->elems.size())
          return false;
        v = &v->elems[p];
      }
      if (v->kind != VKind::Array || !v->arr) return false;
      canon.push_back(v->arr->base ? v->arr->base.get() : v->arr.get());
    }
    for (size_t i = 0; i < canon.size(); ++i)
      for (size_t j = i + 1; j < canon.size(); ++j)
        if (canon[i] == canon[j] && (plan.roots[i].written || plan.roots[j].written))
          return false;
    return true;
  }

  void runParallel(Ctx& ctx, FuncId taskFn, const bc::BInstr& bi, const ir::Function& irFn,
                   const std::vector<std::pair<int64_t, int64_t>>& chunks,
                   const std::vector<Value>& extra, uint64_t tag, uint64_t t0,
                   std::vector<uint64_t>& workerEnd);

  void execSpawn(Ctx& ctx, EFrame& fr, const bc::BInstr& bi, const bc::BOperand* ops,
                 const ir::Function& irFn) {
    int64_t lo = rd(ctx, fr, ops[bi.opBase]).asInt();
    int64_t hi = rd(ctx, fr, ops[bi.opBase + 1]).asInt();
    std::vector<Value> extra;
    for (uint32_t k = 2; k < bi.nops; ++k) extra.push_back(rd(ctx, fr, ops[bi.opBase + k]));

    std::vector<std::pair<int64_t, int64_t>> chunks;
    int64_t count = hi - lo + 1;
    if (count > 0) {
      if (bi.sub == 1) {
        for (int64_t i = lo; i <= hi; ++i) chunks.emplace_back(i, i);
      } else {
        int64_t w = std::max<int64_t>(1, opts_.numWorkers);
        int64_t per = (count + w - 1) / w;
        for (int64_t c2 = lo; c2 <= hi; c2 += per)
          chunks.emplace_back(c2, std::min(hi, c2 + per - 1));
      }
    }
    charge(ctx, spawnPerTaskC_ * chunks.size());

    uint64_t tag = ++tagCounter_;
    sampling::SpawnRecord rec;
    rec.tag = tag;
    rec.parentTag = ctx.taskTag;
    rec.taskFn = bi.t0;
    rec.spawnInstr = bi.ir;
    rec.preSpawnStack.reserve(ctx.stack.size());
    for (const EFrame* f : ctx.stack) rec.preSpawnStack.push_back({f->fid, f->curIr});
    result_.log.spawns.emplace(tag, std::move(rec));

    flushSkid(ctx);
    uint64_t savedTag = ctx.taskTag;
    uint32_t savedStream = ctx.stream;
    // Each task chunk starts with no pending comm attribution, regardless of
    // whether chunks run here sequentially or on replay threads.
    sampling::AccessKind savedPending = ctx.pending;
    int32_t savedSrc = ctx.pendingSrc, savedDst = ctx.pendingDst;
    BwState savedBw = ctx.bw;  // bandwidth state is chunk-local, like the pending access
    std::vector<EFrame*> savedStack;
    savedStack.swap(ctx.stack);
    ++ctx.stackGen;

    if (savedTag != 0 || savedStream != 0) {
      // Nested spawn: run inline on the current stream (saturated pool).
      ctx.taskTag = tag;
      for (size_t ti = 0; ti < chunks.size(); ++ti) {
        std::vector<Value> args;
        args.reserve(2 + extra.size());
        args.push_back(Value::makeInt(chunks[ti].first));
        args.push_back(Value::makeInt(chunks[ti].second));
        for (const Value& v : extra) args.push_back(v);
        ctx.pending = sampling::AccessKind::None;
        ctx.pendingSrc = ctx.pendingDst = 0;
        uint64_t nStart = ctx.clock;
        ctx.bw.reset(nStart, bwLimits(ctx));
        callFunction(ctx, bi.t0, std::move(args));
        flushSkid(ctx);
        // Nested spans carry no site split — their cycles stay accrued to
        // the enclosing top-level segment's map.
        pushSpan(ctx, tag, static_cast<uint32_t>(ti), ctx.stream, nStart, ctx.clock,
                 /*takeSites=*/false);
      }
    } else {
      uint64_t t0 = ctx.clock;
      closeSerialSpan(ctx, t0);  // the fork ends the main-stream serial segment
      uint32_t w = opts_.numWorkers;
      for (uint32_t ws = 1; ws <= w; ++ws) {
        emitIdleSamples(ws, lastBusyEnd_[ws], t0);
        lastBusyEnd_[ws] = t0;
      }
      std::vector<uint64_t> workerEnd(w + 1, t0);
      ctx.taskTag = tag;
      // Count regions the prover could not clear: depends only on the static
      // verdict (not replay width or runtime aliasing), so the counter is
      // identical across engines and worker counts.
      if (!compiled_.plans[bi.t1].eligible) ++result_.log.raceFallbackRegions;
      try {
        if (canParallelize(compiled_.plans[bi.t1], chunks.size(), extra, ctx)) {
          runParallel(ctx, bi.t0, bi, irFn, chunks, extra, tag, t0, workerEnd);
        } else {
          for (size_t ti = 0; ti < chunks.size(); ++ti) {
            uint32_t ws = 1 + static_cast<uint32_t>(ti % w);
            uint64_t chunkStart = workerEnd[ws];
            ctx.stream = ws;
            ctx.clock = workerEnd[ws];
            ctx.next = nextFor(workerEnd[ws]);
            std::vector<Value> args;
            args.reserve(2 + extra.size());
            args.push_back(Value::makeInt(chunks[ti].first));
            args.push_back(Value::makeInt(chunks[ti].second));
            for (const Value& v : extra) args.push_back(v);
            ctx.pending = sampling::AccessKind::None;
            ctx.pendingSrc = ctx.pendingDst = 0;
            ctx.bw.reset(workerEnd[ws], limitsW_);
            callFunction(ctx, bi.t0, std::move(args));
            flushSkid(ctx);
            workerEnd[ws] = ctx.clock;
            pushSpan(ctx, tag, static_cast<uint32_t>(ti), ws, chunkStart, ctx.clock,
                     /*takeSites=*/true);
          }
        }
      } catch (...) {
        // The main stream's clock never moved during the region; leave the
        // Ctx exactly where the tree-walker's pmu would be on this error
        // path (clock(0) == t0) before unwinding to run().
        ctx.stream = 0;
        ctx.clock = t0;
        ctx.next = nextFor(t0);
        throw;
      }
      uint64_t tEnd = t0;
      for (uint32_t ws = 1; ws <= w; ++ws) tEnd = std::max(tEnd, workerEnd[ws]);
      for (uint32_t ws = 1; ws <= w; ++ws) {
        emitIdleSamples(ws, workerEnd[ws], tEnd);
        lastBusyEnd_[ws] = tEnd;
      }
      ctx.stream = 0;
      ctx.clock = tEnd;
      ctx.next = nextFor(tEnd);
      ctx.serialStart = tEnd;  // the join re-opens the main-stream serial segment
    }

    ctx.stack.swap(savedStack);
    ++ctx.stackGen;
    ctx.taskTag = savedTag;
    ctx.stream = savedStream;
    ctx.pending = savedPending;
    ctx.pendingSrc = savedSrc;
    ctx.pendingDst = savedDst;
    ctx.bw = savedBw;
  }

  const ir::Module& m_;
  RunOptions opts_;
  CostModel cost_;
  bc::CompiledModule compiled_;
  Rng rng_;
  RunResult result_;

  std::vector<Value> globals_;
  std::vector<Value> globalRefs_;  // pre-made makeRef(&globals_[g]) values
  uint64_t threshold_;
  bool hasSkid_;
  uint64_t tagCounter_ = 0;
  uint64_t idleSampleCounter_ = 0;
  std::vector<uint64_t> lastBusyEnd_;
  std::unique_ptr<ThreadPool> pool_;

  uint64_t nestedHandleC_ = 0, viewExtraC_ = 0, spawnPerTaskC_ = 0;
  uint64_t arrayNewPerElemC_ = 0, arrayFillPerElemC_ = 0, arrayCopyPerElemC_ = 0;
  uint64_t remoteGetC_ = 0, remotePutC_ = 0, onForkC_ = 0;
  uint64_t aggFlushLatencyC_ = 0, aggPerElemC_ = 0, aggBufferCapC_ = 0;
  uint64_t memBwRateC_ = 0, memCacheResC_ = 0;
  BwLimits limits0_;
  BwLimits limitsW_;
  bool bwEnabled_ = false;

  // Causal what-if state (interp.h: trackCausalSites / causalScale).
  bool causalTrack_ = false;
  bool causalScaleOn_ = false;
  bool causalActive_ = false;
  uint32_t causalNum_ = 1;
  uint32_t causalDen_ = 1;
  std::unordered_set<uint64_t> causalScaleSites_;
  /// Prefix sums of per-function instruction counts: the dense site index
  /// of (fid, instr) is siteBase_[fid] + instr (built only under
  /// trackCausalSites).
  std::vector<uint32_t> siteBase_;
  /// Per-site static (icache-scaled) charge cost, indexed like the
  /// accumulator slots; seeds every accumulator so the dispatch loop's
  /// prologue charge is a bare count increment.
  std::vector<uint32_t> staticCost_;
  /// One accumulator per stream (0 = main, 1..numWorkers = replay workers),
  /// lazily slot-sized on each stream's first charge and reused across
  /// regions. Safe under parallel replay: a stream never runs concurrently
  /// with itself.
  std::vector<CausalAccumulator> causalAcc_;
};

// ---------------------------------------------------------------------------
// Parallel worker-stream replay.
// ---------------------------------------------------------------------------

void Engine::runParallel(Ctx& ctx, FuncId taskFn, const bc::BInstr& bi,
                         const ir::Function& irFn,
                         const std::vector<std::pair<int64_t, int64_t>>& chunks,
                         const std::vector<Value>& extra, uint64_t tag, uint64_t t0,
                         std::vector<uint64_t>& workerEnd) {
  uint32_t w = opts_.numWorkers;
  struct TRec {
    size_t sampleEnd = 0, outputEnd = 0, allocEnd = 0;
    uint64_t icountDelta = 0;
    // Comm counters are commutative sums, so per-chunk deltas merged in
    // canonical task order reproduce the sequential totals exactly. The
    // same holds cell-wise for the locale-pair matrix.
    uint64_t gets = 0, puts = 0, forks = 0;
    uint64_t aggGets = 0, aggPuts = 0, aggFlushes = 0;
    uint64_t memStall = 0, netStall = 0, contention = 0;
    size_t spanEnd = 0;
    std::vector<std::pair<uint64_t, uint64_t>> matrix;
    std::vector<std::pair<uint32_t, uint64_t>> cycles;
  };
  struct StreamRes {
    std::vector<sampling::RawSample> samples;
    std::string output;
    std::vector<sampling::TaskSpan> spans;
    std::vector<std::pair<uint64_t, uint64_t>> allocs;
    std::vector<TRec> recs;
    bool failed = false;
    std::string errMsg;
    SourceLoc errLoc;
    uint64_t failTi = 0;
    uint64_t endClock = 0;
  };
  std::vector<StreamRes> streams(w + 1);
  uint32_t usedStreams = static_cast<uint32_t>(std::min<size_t>(w, chunks.size()));
  uint64_t workerBudget = opts_.maxInstructions - *ctx.icount;
  size_t nf = m_.numFunctions();

  ++result_.parallelRegionsReplayed;
  if (!pool_) pool_ = std::make_unique<ThreadPool>(effectiveReplayThreads());
  for (uint32_t ws = 1; ws <= usedStreams; ++ws) {
    pool_->submit([&, ws] {
      StreamRes& S = streams[ws];
      Ctx wc;
      wc.stream = ws;
      wc.taskTag = tag;
      wc.clock = t0;
      wc.next = nextFor(t0);
      uint64_t local = 0;
      wc.icount = &local;
      wc.maxInstr = workerBudget;
      wc.samples = &S.samples;
      wc.output = &S.output;
      std::vector<uint64_t> cyc(nf, 0);
      wc.cycles = cyc.data();
      wc.allocVec = &S.allocs;
      wc.echo = false;
      // The plan bails on OnBegin (and on Call), so the region's locale is
      // constant: inherit it, with per-worker comm tallies.
      wc.locale = ctx.locale;
      uint64_t wGets = 0, wPuts = 0, wForks = 0;
      uint64_t wAggGets = 0, wAggPuts = 0, wAggFlushes = 0;
      uint64_t wMemStall = 0, wNetStall = 0, wContention = 0;
      std::map<uint64_t, uint64_t> wMatrix;
      wc.commGets = &wGets;
      wc.commPuts = &wPuts;
      wc.commOnForks = &wForks;
      wc.commAggGets = &wAggGets;
      wc.commAggPuts = &wAggPuts;
      wc.commAggFlushes = &wAggFlushes;
      wc.commMatrix = &wMatrix;
      wc.commMemStall = &wMemStall;
      wc.commNetStall = &wNetStall;
      wc.commContention = &wContention;
      wc.spans = &S.spans;
      if (causalTrack_) {
        wc.acc = &causalAcc_[ws];
        if (!wc.acc->ready()) wc.acc->init(siteBase_, staticCost_.data());
      }
      uint64_t prevIc = 0;
      auto snap = [&] {
        TRec r;
        r.sampleEnd = S.samples.size();
        r.outputEnd = S.output.size();
        r.allocEnd = S.allocs.size();
        r.spanEnd = S.spans.size();
        r.icountDelta = local - prevIc;
        prevIc = local;
        r.gets = wGets;
        r.puts = wPuts;
        r.forks = wForks;
        r.aggGets = wAggGets;
        r.aggPuts = wAggPuts;
        r.aggFlushes = wAggFlushes;
        r.memStall = wMemStall;
        r.netStall = wNetStall;
        r.contention = wContention;
        wGets = wPuts = wForks = 0;
        wAggGets = wAggPuts = wAggFlushes = 0;
        wMemStall = wNetStall = wContention = 0;
        r.matrix.assign(wMatrix.begin(), wMatrix.end());
        wMatrix.clear();
        for (size_t f = 0; f < nf; ++f)
          if (cyc[f]) {
            r.cycles.emplace_back(static_cast<uint32_t>(f), cyc[f]);
            cyc[f] = 0;
          }
        S.recs.push_back(std::move(r));
      };
      for (uint64_t ti = ws - 1; ti < chunks.size(); ti += w) {
        uint64_t chunkStart = wc.clock;
        try {
          std::vector<Value> args;
          args.reserve(2 + extra.size());
          args.push_back(Value::makeInt(chunks[ti].first));
          args.push_back(Value::makeInt(chunks[ti].second));
          for (const Value& v : extra) args.push_back(v);
          wc.pending = sampling::AccessKind::None;
          wc.pendingSrc = wc.pendingDst = 0;
          wc.bw.reset(wc.clock, limitsW_);
          callFunction(wc, taskFn, std::move(args));
          flushSkid(wc);
          pushSpan(wc, tag, static_cast<uint32_t>(ti), ws, chunkStart, wc.clock,
                   /*takeSites=*/true);
        } catch (const RunError& e) {
          S.failed = true;
          S.errMsg = e.message;
          S.errLoc = e.loc;
          S.failTi = ti;
          snap();
          S.endClock = wc.clock;
          return;
        }
        snap();
      }
      S.endClock = wc.clock;
    });
  }
  pool_->wait();

  // Canonical merge in global task order: the artefact sequence becomes
  // indistinguishable from the sequential round-robin execution.
  uint64_t minFail = ~0ull;
  for (uint32_t ws = 1; ws <= usedStreams; ++ws)
    if (streams[ws].failed) minFail = std::min(minFail, streams[ws].failTi);
  std::vector<size_t> cursor(w + 1, 0), sStart(w + 1, 0), oStart(w + 1, 0), aStart(w + 1, 0),
      pStart(w + 1, 0);
  for (uint64_t ti = 0; ti < chunks.size(); ++ti) {
    if (ti > minFail) break;
    uint32_t ws = 1 + static_cast<uint32_t>(ti % w);
    StreamRes& S = streams[ws];
    const TRec& r = S.recs[cursor[ws]++];
    result_.log.samples.insert(result_.log.samples.end(),
                               std::make_move_iterator(S.samples.begin() + sStart[ws]),
                               std::make_move_iterator(S.samples.begin() + r.sampleEnd));
    sStart[ws] = r.sampleEnd;
    result_.log.taskSpans.insert(result_.log.taskSpans.end(),
                                 std::make_move_iterator(S.spans.begin() + pStart[ws]),
                                 std::make_move_iterator(S.spans.begin() + r.spanEnd));
    pStart[ws] = r.spanEnd;
    if (r.outputEnd > oStart[ws]) {
      if (opts_.echoWriteln)
        std::fwrite(S.output.data() + oStart[ws], 1, r.outputEnd - oStart[ws], stdout);
      result_.output.append(S.output, oStart[ws], r.outputEnd - oStart[ws]);
      oStart[ws] = r.outputEnd;
    }
    for (size_t j = aStart[ws]; j < r.allocEnd; ++j) {
      auto& slot = result_.log.allocBytesBySite[S.allocs[j].first];
      if (S.allocs[j].second > slot) slot = S.allocs[j].second;
    }
    aStart[ws] = r.allocEnd;
    for (const auto& [f, cyc] : r.cycles) result_.cyclesPerFunction[f] += cyc;
    result_.instructionsExecuted += r.icountDelta;
    result_.log.commGets += r.gets;
    result_.log.commPuts += r.puts;
    result_.log.commOnForks += r.forks;
    result_.log.commAggGets += r.aggGets;
    result_.log.commAggPuts += r.aggPuts;
    result_.log.commAggFlushes += r.aggFlushes;
    result_.log.commMemStallCycles += r.memStall;
    result_.log.commNetStallCycles += r.netStall;
    result_.log.commContentionCycles += r.contention;
    for (const auto& [k, v] : r.matrix) result_.log.commMatrix[k] += v;
  }
  if (minFail != ~0ull) {
    const StreamRes& S = streams[1 + static_cast<uint32_t>(minFail % w)];
    throw RunError{S.errMsg, S.errLoc};
  }
  // Documented deviation: with parallel streams the global instruction budget
  // is enforced after the region instead of at the exact crossing
  // instruction. canParallelize() requires 2^30 instructions of headroom, so
  // this path is unreachable unless a single region executes > 2^30
  // instructions; the error text matches the sequential engines.
  if (result_.instructionsExecuted > opts_.maxInstructions)
    throw RunError{"instruction budget exceeded", irFn.instrs[bi.ir].loc};
  for (uint32_t ws = 1; ws <= usedStreams; ++ws) workerEnd[ws] = streams[ws].endClock;
}

// ---------------------------------------------------------------------------
// The dispatch loop.
// ---------------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
#define CB_EXEC_CGOTO 1
#endif

#if CB_EXEC_CGOTO
#define CB_OP(name) L_##name
#define CB_NEXT \
  ++pc;         \
  continue
#else
#define CB_OP(name) case bc::Op::name
#define CB_NEXT \
  ++pc;         \
  continue
#endif

void Engine::execFrame(Ctx& ctx, EFrame& fr, const bc::BFunc& bf, const ir::Function& irFn,
                       Value& out) {
  if (__builtin_expect(causalActive_, 0))
    execFrameT<true>(ctx, fr, bf, irFn, out);
  else
    execFrameT<false>(ctx, fr, bf, irFn, out);
}

template <bool kCausal>
void Engine::execFrameT(Ctx& ctx, EFrame& fr, const bc::BFunc& bf, const ir::Function& irFn,
                        Value& out) {
  const bc::BInstr* code = bf.code.data();
  const bc::BOperand* ops = bf.operands.data();
  const size_t codeSize = bf.code.size();
  uint32_t pc = 0;

  // Causal-mode state for the per-instruction prologue charge. Everything
  // except the instruction index is loop-invariant for this frame, so it is
  // hoisted here instead of being re-derived through ctx.stack.back() on
  // every instruction the way the generic charge() does — that pointer chase
  // is fine for the rare out-of-line charges (builtins, allocation extras)
  // but dominates tracking overhead when paid per instruction.
  [[maybe_unused]] const bool cscale = causalScaleOn_;
  [[maybe_unused]] CausalAccumulator::Slot* cslots = nullptr;
  if constexpr (kCausal) {
    if (causalTrack_) cslots = ctx.acc->slotData() + siteBase_[fr.fid];
  }
  // Prologue charge for instruction `ir`: identical semantics to
  // charge(ctx, cost), with the causal site lookup resolved against the
  // hoisted frame state. The tracked fast path is a bare count increment:
  // the accumulator slots are seeded with staticCost_, and `cost` here IS
  // that static cost (both come from the same BInstr), so the uniform-cost
  // compare inside CausalAccumulator::charge() would always hit. A causally
  // re-scaled cost no longer matches and takes the exact compare/overlay
  // path instead. Only two values stay live across the loop (cscale,
  // cslots) — everything the cold scaling path needs is recomputed there —
  // to keep register pressure in the dispatch loop flat. Drains never
  // reallocate the slot array, so the cached cslots pointer stays valid
  // across samples and nested calls.
  auto chargePro = [&](uint32_t ir, uint64_t cost) __attribute__((always_inline)) {
    if constexpr (kCausal) {
      if (__builtin_expect(cscale, 0) &&
          causalScaleSites_.count((static_cast<uint64_t>(fr.fid) << 32) | ir) != 0) {
        cost = causalScaledCost(cost, causalNum_, causalDen_);
        if (cslots != nullptr && cost != 0)
          ctx.acc->charge(siteBase_[fr.fid] + ir, cost);
      } else if (cslots != nullptr && cost != 0) {
        ++cslots[ir].count;  // seeded: uniform == this site's static cost
      }
    }
    ctx.cycles[ctx.curFid] += cost;
    ctx.clock += cost;
    if (__builtin_expect(ctx.clock >= ctx.next, 0)) overflow(ctx);
  };

#if CB_EXEC_CGOTO
  // Must match bc::Op order exactly.
  static const void* kJump[] = {
      &&L_Alloca,     &&L_LoadSlot,  &&L_StoreSlot,  &&L_LoadRef,      &&L_StoreRef,
      &&L_FieldAddr,  &&L_TupleAddr, &&L_IndexAddr,  &&L_Bin,          &&L_Un,
      &&L_TupleMake,  &&L_TupleGet,  &&L_RecordNew,  &&L_DomainMake,   &&L_DomainExpand,
      &&L_DomainSize, &&L_DomainDim, &&L_ArrayNew,   &&L_ArrayView,    &&L_Call,
      &&L_Ret,        &&L_Br,        &&L_CondBr,     &&L_Spawn,        &&L_IterOverhead,
      &&L_Builtin,    &&L_CmpBr,     &&L_IndexLoad,  &&L_IndexStore,   &&L_BinStoreSlot,
      &&L_TupleGetSlot, &&L_TupleGetRef,
  };
  static_assert(sizeof(kJump) / sizeof(kJump[0]) == static_cast<size_t>(bc::Op::Count));
#endif

  for (;;) {
    if (__builtin_expect(pc >= codeSize, 0)) fail("fell off block end", irFn.loc);
    const bc::BInstr& bi = code[pc];
    // Per-instruction prologue: instruction count + budget, skid aging, the
    // icache-scaled static charge. Identical to the tree-walker's.
    fr.curIr = bi.ir;
    if (__builtin_expect(++*ctx.icount > ctx.maxInstr, 0))
      fail("instruction budget exceeded", irFn.instrs[bi.ir].loc);
    if (__builtin_expect(hasSkid_, 0)) tickSkid(ctx);
    chargePro(bi.ir, bi.cost);

#if CB_EXEC_CGOTO
    goto* kJump[static_cast<size_t>(bi.op)];
    {
#else
    switch (bi.op) {
#endif
      CB_OP(Alloca) : {
        setRef(fr.regs[bi.dst], &fr.slots[bi.t0]);
        CB_NEXT;
      }
      CB_OP(LoadSlot) : {
        copyInto(fr.regs[bi.dst], fr.slots[bi.t0]);
        CB_NEXT;
      }
      CB_OP(StoreSlot) : {
        copyInto(fr.slots[bi.t0], rd(ctx, fr, bi.a));
        CB_NEXT;
      }
      CB_OP(LoadRef) : {
        const Value& a = rd(ctx, fr, bi.a);
        if (a.kind != VKind::Ref) fail("expected an address value", irFn.instrs[bi.ir].loc);
        Value* p = a.ref;
        if ((bi.flags & bc::kNestedHandle) && p->kind == VKind::Array)
          charge(ctx, nestedHandleC_);
        copyInto(fr.regs[bi.dst], *p);
        CB_NEXT;
      }
      CB_OP(StoreRef) : {
        Value* p = refOf(ctx, fr, bi.b, irFn.instrs[bi.ir].loc);
        copyInto(*p, rd(ctx, fr, bi.a));
        CB_NEXT;
      }
      CB_OP(FieldAddr) : {
        Value* rec = refOf(ctx, fr, bi.a, irFn.instrs[bi.ir].loc);
        if (rec->kind != VKind::Record || bi.imm >= rec->elems.size())
          fail("bad field access", irFn.instrs[bi.ir].loc);
        setRef(fr.regs[bi.dst], &rec->elems[bi.imm]);
        CB_NEXT;
      }
      CB_OP(TupleAddr) : {
        Value* tup = refOf(ctx, fr, bi.a, irFn.instrs[bi.ir].loc);
        if (tup->kind != VKind::Tuple) fail("bad tuple element access", irFn.instrs[bi.ir].loc);
        uint64_t idx = (bi.flags & bc::kDynIndex)
                           ? static_cast<uint64_t>(rd(ctx, fr, bi.b).asInt() - 1)
                           : bi.imm;
        if (idx >= tup->elems.size()) fail("tuple index out of range", irFn.instrs[bi.ir].loc);
        setRef(fr.regs[bi.dst], &tup->elems[idx]);
        CB_NEXT;
      }
      CB_OP(IndexAddr) : {
        setRef(fr.regs[bi.dst], indexAddr(ctx, fr, bi, ops, irFn.instrs[bi.ir].loc));
        CB_NEXT;
      }
      CB_OP(Bin) : {
        evalBinInto(ctx, fr, bi, irFn, fr.regs[bi.dst]);
        CB_NEXT;
      }
      CB_OP(Un) : {
        evalUnInto(ctx, fr, bi, fr.regs[bi.dst]);
        CB_NEXT;
      }
      CB_OP(TupleMake) : {
        // Built in place: dst's element buffer (and each element's own
        // buffers) stay warm across loop iterations. Operand registers are
        // always distinct from dst, so no aliasing is possible.
        Value& v = fr.regs[bi.dst];
        if (__builtin_expect(v.arr != nullptr, 0)) v.arr.reset();
        if (__builtin_expect(v.str != nullptr, 0)) v.str.reset();
        v.kind = VKind::Tuple;
        v.elems.resize(bi.nops);
        for (uint32_t k = 0; k < bi.nops; ++k)
          copyInto(v.elems[k], rd(ctx, fr, ops[bi.opBase + k]));
        CB_NEXT;
      }
      CB_OP(TupleGet) : {
        const Value& t = rd(ctx, fr, bi.a);
        if (t.kind != VKind::Tuple && t.kind != VKind::Record)
          fail("tuple access on non-tuple", irFn.instrs[bi.ir].loc);
        uint64_t idx = (bi.flags & bc::kDynIndex)
                           ? static_cast<uint64_t>(rd(ctx, fr, bi.b).asInt() - 1)
                           : bi.imm;
        if (idx >= t.elems.size()) fail("tuple index out of range", irFn.instrs[bi.ir].loc);
        copyInto(fr.regs[bi.dst], t.elems[idx]);
        CB_NEXT;
      }
      CB_OP(RecordNew) : {
        charge(ctx, bi.imm);
        fr.regs[bi.dst] = defaultValue(ctx, bi.t0);
        CB_NEXT;
      }
      CB_OP(DomainMake) : {
        DomainVal d;
        d.rank = bi.sub;
        for (uint8_t k = 0; k < d.rank; ++k) {
          d.lo[k] = rd(ctx, fr, ops[bi.opBase + 2 * k]).asInt();
          d.hi[k] = rd(ctx, fr, ops[bi.opBase + 2 * k + 1]).asInt();
        }
        setDomain(fr.regs[bi.dst], d);
        CB_NEXT;
      }
      CB_OP(DomainExpand) : {
        const Value& d = rd(ctx, fr, bi.a);
        if (d.kind != VKind::Domain) fail("expand on non-domain", irFn.instrs[bi.ir].loc);
        setDomain(fr.regs[bi.dst], d.dom.expand(rd(ctx, fr, bi.b).asInt()));
        CB_NEXT;
      }
      CB_OP(DomainSize) : {
        const Value& d = rd(ctx, fr, bi.a);
        if (d.kind == VKind::Domain) setInt(fr.regs[bi.dst], d.dom.size());
        else if (d.kind == VKind::Array && d.arr)
          setInt(fr.regs[bi.dst], d.arr->dom.size());
        else fail("size of a non-domain", irFn.instrs[bi.ir].loc);
        CB_NEXT;
      }
      CB_OP(DomainDim) : {
        const Value& d = rd(ctx, fr, bi.a);
        DomainVal dom;
        if (d.kind == VKind::Domain) dom = d.dom;
        else if (d.kind == VKind::Array && d.arr) dom = d.arr->dom;
        else fail("dim of a non-domain", irFn.instrs[bi.ir].loc);
        uint32_t dim = static_cast<uint32_t>(bi.imm / 2);
        bool hi = bi.imm % 2;
        if (dim >= dom.rank) fail("domain dim out of range", irFn.instrs[bi.ir].loc);
        setInt(fr.regs[bi.dst], hi ? dom.hi[dim] : dom.lo[dim]);
        CB_NEXT;
      }
      CB_OP(ArrayNew) : {
        const Value& d = rd(ctx, fr, bi.a);
        if (d.kind != VKind::Domain) fail("array over a non-domain", irFn.instrs[bi.ir].loc);
        fr.regs[bi.dst] = makeArray(ctx, d.dom, bi.t0, fr.fid, bi.ir);
        CB_NEXT;
      }
      CB_OP(ArrayView) : {
        const Value& base = rd(ctx, fr, bi.a);
        const Value& d = rd(ctx, fr, bi.b);
        if (base.kind != VKind::Array || !base.arr)
          fail("view of a non-array", irFn.instrs[bi.ir].loc);
        if (d.kind != VKind::Domain) fail("view over a non-domain", irFn.instrs[bi.ir].loc);
        auto view = std::make_shared<ArrayObj>();
        view->dom = d.dom;
        view->base = base.arr->base ? base.arr->base : base.arr;
        Value v;
        v.kind = VKind::Array;
        v.arr = std::move(view);
        fr.regs[bi.dst] = std::move(v);
        CB_NEXT;
      }
      CB_OP(Call) : {
        callFunctionOps(ctx, bi.t0, fr, ops + bi.opBase, bi.nops, fr.regs[bi.dst]);
        CB_NEXT;
      }
      CB_OP(Ret) : {
        copyInto(out, rd(ctx, fr, bi.a));
        return;
      }
      CB_OP(Br) : {
        pc = bi.t0;
        continue;
      }
      CB_OP(CondBr) : {
        const Value& c = rd(ctx, fr, bi.a);
        if (c.kind != VKind::Bool) fail("branch on non-bool", irFn.instrs[bi.ir].loc);
        pc = c.b ? bi.t0 : bi.t1;
        continue;
      }
      CB_OP(Spawn) : {
        execSpawn(ctx, fr, bi, ops, irFn);
        CB_NEXT;
      }
      CB_OP(IterOverhead) : { CB_NEXT; }
      CB_OP(Builtin) : {
        execBuiltin(ctx, fr, bi, ops, irFn);
        CB_NEXT;
      }
      CB_OP(CmpBr) : {
        bool cond = evalBoolBin(ctx, fr, bi, irFn);
        // Second component's prologue (the fused CondBr).
        fr.curIr = bi.ir2;
        if (__builtin_expect(++*ctx.icount > ctx.maxInstr, 0))
          fail("instruction budget exceeded", irFn.instrs[bi.ir2].loc);
        if (__builtin_expect(hasSkid_, 0)) tickSkid(ctx);
        chargePro(bi.ir2, bi.cost2);
        pc = cond ? bi.t0 : bi.t1;
        continue;
      }
      CB_OP(IndexLoad) : {
        Value* p = indexAddr(ctx, fr, bi, ops, irFn.instrs[bi.ir].loc);
        fr.curIr = bi.ir2;
        if (__builtin_expect(++*ctx.icount > ctx.maxInstr, 0))
          fail("instruction budget exceeded", irFn.instrs[bi.ir2].loc);
        if (__builtin_expect(hasSkid_, 0)) tickSkid(ctx);
        chargePro(bi.ir2, bi.cost2);
        copyInto(fr.regs[bi.dst2], *p);
        CB_NEXT;
      }
      CB_OP(IndexStore) : {
        Value* p = indexAddr(ctx, fr, bi, ops, irFn.instrs[bi.ir].loc);
        fr.curIr = bi.ir2;
        if (__builtin_expect(++*ctx.icount > ctx.maxInstr, 0))
          fail("instruction budget exceeded", irFn.instrs[bi.ir2].loc);
        if (__builtin_expect(hasSkid_, 0)) tickSkid(ctx);
        chargePro(bi.ir2, bi.cost2);
        copyInto(*p, rd(ctx, fr, bi.a));
        CB_NEXT;
      }
      CB_OP(BinStoreSlot) : {
        // The arithmetic lands directly in the slot; operand reads complete
        // before the write, and the (single-use) Bin register is never read.
        evalBinInto(ctx, fr, bi, irFn, fr.slots[bi.dst2]);
        fr.curIr = bi.ir2;
        if (__builtin_expect(++*ctx.icount > ctx.maxInstr, 0))
          fail("instruction budget exceeded", irFn.instrs[bi.ir2].loc);
        if (__builtin_expect(hasSkid_, 0)) tickSkid(ctx);
        chargePro(bi.ir2, bi.cost2);
        CB_NEXT;
      }
      CB_OP(TupleGetSlot) : {
        // Part 1 (LoadSlot) prologue already ran; the whole-tuple copy into
        // the load's register is elided (single-use, never re-read). Part 2
        // is the fused TupleGet.
        const Value& t = fr.slots[bi.t0];
        fr.curIr = bi.ir2;
        if (__builtin_expect(++*ctx.icount > ctx.maxInstr, 0))
          fail("instruction budget exceeded", irFn.instrs[bi.ir2].loc);
        if (__builtin_expect(hasSkid_, 0)) tickSkid(ctx);
        chargePro(bi.ir2, bi.cost2);
        if (t.kind != VKind::Tuple && t.kind != VKind::Record)
          fail("tuple access on non-tuple", irFn.instrs[bi.ir2].loc);
        uint64_t idx = (bi.flags & bc::kDynIndex)
                           ? static_cast<uint64_t>(rd(ctx, fr, bi.b).asInt() - 1)
                           : bi.imm;
        if (idx >= t.elems.size())
          fail("tuple index out of range", irFn.instrs[bi.ir2].loc);
        copyInto(fr.regs[bi.dst2], t.elems[idx]);
        CB_NEXT;
      }
      CB_OP(TupleGetRef) : {
        // TupleAddr then Load through the (single-use, dead) address reg.
        Value* tup = refOf(ctx, fr, bi.a, irFn.instrs[bi.ir].loc);
        if (tup->kind != VKind::Tuple) fail("bad tuple element access", irFn.instrs[bi.ir].loc);
        uint64_t idx = (bi.flags & bc::kDynIndex)
                           ? static_cast<uint64_t>(rd(ctx, fr, bi.b).asInt() - 1)
                           : bi.imm;
        if (idx >= tup->elems.size())
          fail("tuple index out of range", irFn.instrs[bi.ir].loc);
        Value* p = &tup->elems[idx];
        fr.curIr = bi.ir2;
        if (__builtin_expect(++*ctx.icount > ctx.maxInstr, 0))
          fail("instruction budget exceeded", irFn.instrs[bi.ir2].loc);
        if (__builtin_expect(hasSkid_, 0)) tickSkid(ctx);
        chargePro(bi.ir2, bi.cost2);
        copyInto(fr.regs[bi.dst2], *p);
        CB_NEXT;
      }
#if !CB_EXEC_CGOTO
      default: fail("bad opcode", irFn.loc);
#endif
    }
  }
}

}  // namespace

RunResult executeBytecode(const ir::Module& m, const RunOptions& opts) {
  Engine engine(m, opts);
  return engine.run();
}

}  // namespace cb::rt
