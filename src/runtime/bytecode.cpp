#include "runtime/bytecode.h"

#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "support/common.h"

namespace cb::rt::bc {

using ir::BinKind;
using ir::BuiltinKind;
using ir::FuncId;
using ir::Instr;
using ir::InstrId;
using ir::Opcode;
using ir::TypeId;
using ir::TypeKind;
using ir::ValueRef;

namespace {

bool typeOwnsArrays(const ir::Module& m, TypeId t) {
  const ir::Type& ty = m.types().get(t);
  switch (ty.kind) {
    case TypeKind::Array: return true;
    case TypeKind::Tuple:
      for (TypeId e : ty.elems)
        if (typeOwnsArrays(m, e)) return true;
      return false;
    case TypeKind::Record:
      for (const ir::RecordField& f : ty.fields)
        if (typeOwnsArrays(m, f.type)) return true;
      return false;
    default: return false;
  }
}

// ---------------------------------------------------------------------------
// Parallel-replay eligibility analysis.
//
// Flow-insensitive abstract interpretation of the outlined task function.
// Integer values are classified relative to the chunk loop: Uniform (same
// value in every task, with an interned symbolic identity), Induction (the
// chunk-loop counter, whose ranges are disjoint across tasks), Aff/AffN
// (uniform +/- induction — still injective, so same-signature accesses from
// different tasks never collide), or Varying. Shared arrays are tracked back
// to task-invariant roots (globals / byval iterand args / byref captures,
// possibly through record-field paths); every element access through a root
// is summarized by the signature of its index vector. A region is eligible
// when each written root is touched through exactly one disjointness-bearing
// signature and nothing falls outside the abstraction (calls, nested spawns,
// RNG, global or capture stores, views, escaping handles...). Anything not
// understood degrades to a sequential fallback, never to a race.
// ---------------------------------------------------------------------------

constexpr uint32_t kArbSig = ~0u;

struct Analyzer {
  const ir::Module& m;
  const ir::Function& fn;

  struct VC {
    enum K : uint8_t { Bot, Uni, Ind, Aff, AffN, CLo, CHi, Vary };
    K k = Bot;
    uint32_t s = 0;
  };
  struct RC {
    enum K : uint8_t { NotRef, Local, LocalField, TaskElem, Elem, Cap, Glob, Vary };
    K k = NotRef;
    uint32_t a = 0;    // alloca id / root id / arg index / global id
    uint32_t sig = 0;  // Elem only
    std::vector<uint32_t> path;  // Cap/Glob only
  };
  struct AC {
    enum K : uint8_t { NotArr, Root, TaskLocal, Vary };
    K k = NotArr;
    uint32_t root = 0;
  };

  std::vector<VC> vc;
  std::vector<RC> rc;
  std::vector<AC> ac;
  struct AllocaState {
    VC v;
    AC a;
  };
  std::vector<AllocaState> allocaSt;
  std::vector<bool> isInduction;

  std::map<std::string, uint32_t> symIds;
  std::vector<std::string> rootKeys;
  std::map<std::string, uint32_t> rootIds;
  std::vector<RootRef> rootRefs;
  struct SigElem {
    uint8_t k;  // 0 Uni, 1 Ind, 2 Aff, 3 AffN
    uint32_t s;
  };
  std::vector<std::pair<bool, std::vector<SigElem>>> sigs;
  std::map<std::string, uint32_t> sigIds;

  struct RootInfo {
    std::set<uint32_t> wsigs, rsigs;
    bool arbW = false, arbR = false;
  };
  std::map<uint32_t, RootInfo> rootInfo;

  bool fatal = false;
  bool anyUnknownRead = false;
  bool changed = false;
  bool record = false;

  Analyzer(const ir::Module& mod, const ir::Function& f) : m(mod), fn(f) {
    size_t n = fn.numInstrs();
    vc.resize(n);
    rc.resize(n);
    ac.resize(n);
    allocaSt.resize(n);
    isInduction.assign(n, false);
    findInductionAllocas();
  }

  uint32_t sym(const std::string& s) {
    auto [it, fresh] = symIds.emplace(s, static_cast<uint32_t>(symIds.size()));
    return it->second;
  }

  uint32_t rootId(bool fromGlobal, bool deref, uint32_t index,
                  const std::vector<uint32_t>& path) {
    std::string key = (fromGlobal ? "g" : "a");
    key += deref ? "d:" : ":";
    key += std::to_string(index);
    for (uint32_t p : path) key += "." + std::to_string(p);
    auto it = rootIds.find(key);
    if (it != rootIds.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(rootRefs.size());
    rootIds.emplace(key, id);
    rootRefs.push_back(RootRef{fromGlobal, deref, index, path, false});
    return id;
  }

  uint32_t internSig(bool linear, const std::vector<SigElem>& elems) {
    std::string key = linear ? "L" : "M";
    for (const SigElem& e : elems)
      key += ";" + std::to_string(e.k) + ":" + std::to_string(e.s);
    auto it = sigIds.find(key);
    if (it != sigIds.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(sigs.size());
    sigIds.emplace(key, id);
    sigs.emplace_back(linear, elems);
    return id;
  }

  void findInductionAllocas() {
    // The chunk loop's counter: an alloca with exactly two stores, one of
    // the chunk_lo argument (arg 0) and one of (load(self) + 1).
    std::vector<std::vector<InstrId>> storesTo(fn.numInstrs());
    for (InstrId i = 0; i < fn.numInstrs(); ++i) {
      const Instr& in = fn.instrs[i];
      if (in.op != Opcode::Store || in.ops.size() != 2) continue;
      if (in.ops[1].isReg() && fn.instrs[in.ops[1].reg].op == Opcode::Alloca)
        storesTo[in.ops[1].reg].push_back(i);
    }
    for (InstrId a = 0; a < fn.numInstrs(); ++a) {
      if (fn.instrs[a].op != Opcode::Alloca || storesTo[a].size() != 2) continue;
      bool init = false, inc = false;
      for (InstrId s : storesTo[a]) {
        const ValueRef& v = fn.instrs[s].ops[0];
        if (v.kind == ValueRef::Kind::Arg && v.arg == 0) { init = true; continue; }
        if (!v.isReg()) continue;
        const Instr& add = fn.instrs[v.reg];
        if (add.op != Opcode::Bin || add.extra.bin != BinKind::Add || add.ops.size() != 2)
          continue;
        for (int side = 0; side < 2; ++side) {
          const ValueRef& x = add.ops[side];
          const ValueRef& y = add.ops[1 - side];
          if (y.kind != ValueRef::Kind::ConstInt || y.i != 1) continue;
          if (x.isReg() && fn.instrs[x.reg].op == Opcode::Load &&
              fn.instrs[x.reg].ops[0].isReg() && fn.instrs[x.reg].ops[0].reg == a)
            inc = true;
        }
      }
      if (init && inc) isInduction[a] = true;
    }
  }

  // -- joins ----------------------------------------------------------------
  static VC joinVC(const VC& a, const VC& b) {
    if (a.k == VC::Bot) return b;
    if (b.k == VC::Bot) return a;
    if (a.k == b.k && a.s == b.s) return a;
    return VC{VC::Vary, 0};
  }
  static AC joinAC(const AC& a, const AC& b) {
    if (a.k == AC::NotArr) return b;
    if (b.k == AC::NotArr) return a;
    if (a.k == b.k && a.root == b.root) return a;
    return AC{AC::Vary, 0};
  }

  void setVC(InstrId i, VC v) {
    if (vc[i].k != v.k || vc[i].s != v.s) { vc[i] = v; changed = true; }
  }
  void setRC(InstrId i, RC r) {
    if (rc[i].k != r.k || rc[i].a != r.a || rc[i].sig != r.sig || rc[i].path != r.path) {
      rc[i] = std::move(r);
      changed = true;
    }
  }
  void setAC(InstrId i, AC a) {
    if (ac[i].k != a.k || ac[i].root != a.root) { ac[i] = a; changed = true; }
  }
  void joinAlloca(InstrId a, const VC& v, const AC& arr) {
    VC nv = joinVC(allocaSt[a].v, v);
    AC na = joinAC(allocaSt[a].a, arr);
    if (nv.k != allocaSt[a].v.k || nv.s != allocaSt[a].v.s || na.k != allocaSt[a].a.k ||
        na.root != allocaSt[a].a.root) {
      allocaSt[a].v = nv;
      allocaSt[a].a = na;
      changed = true;
    }
  }

  // -- operand classification ----------------------------------------------
  VC vcOf(const ValueRef& v) {
    switch (v.kind) {
      case ValueRef::Kind::ConstInt: return VC{VC::Uni, sym("ci:" + std::to_string(v.i))};
      case ValueRef::Kind::ConstReal: {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v.r));
        __builtin_memcpy(&bits, &v.r, sizeof(bits));
        return VC{VC::Uni, sym("cr:" + std::to_string(bits))};
      }
      case ValueRef::Kind::ConstBool: return VC{VC::Uni, sym(v.b ? "cb:1" : "cb:0")};
      case ValueRef::Kind::ConstString:
        return VC{VC::Uni, sym("cs:" + std::to_string(v.stringId))};
      case ValueRef::Kind::Arg:
        if (v.arg == 0) return VC{VC::CLo, 0};
        if (v.arg == 1) return VC{VC::CHi, 0};
        if (v.arg < fn.params.size() && fn.params[v.arg].byRef) return VC{VC::Vary, 0};
        return VC{VC::Uni, sym("arg:" + std::to_string(v.arg))};
      case ValueRef::Kind::Reg: return vc[v.reg];
      default: return VC{VC::Vary, 0};
    }
  }
  RC rcOf(const ValueRef& v) {
    if (v.isReg()) return rc[v.reg];
    if (v.kind == ValueRef::Kind::Arg && v.arg < fn.params.size() && fn.params[v.arg].byRef)
      return RC{RC::Cap, v.arg, 0, {}};
    if (v.kind == ValueRef::Kind::GlobalAddr) return RC{RC::Glob, v.global, 0, {}};
    return RC{RC::NotRef, 0, 0, {}};
  }
  AC acOf(const ValueRef& v) {
    if (v.isReg()) return ac[v.reg];
    if (v.kind == ValueRef::Kind::Arg && v.arg < fn.params.size() && !fn.params[v.arg].byRef &&
        m.types().kindOf(fn.params[v.arg].type) == TypeKind::Array)
      return AC{AC::Root, rootId(false, false, v.arg, {})};
    return AC{AC::NotArr};
  }
  bool operandIsRefValue(const ValueRef& v) {
    return rcOf(v).k != RC::NotRef;
  }
  TypeId operandType(const ValueRef& v) {
    if (v.isReg()) return fn.instrs[v.reg].type;
    if (v.kind == ValueRef::Kind::Arg && v.arg < fn.params.size())
      return fn.params[v.arg].type;
    return ir::kInvalidType;
  }

  void markRead(uint32_t root, uint32_t sig) {
    if (!record) return;
    if (sig == kArbSig) rootInfo[root].arbR = true;
    else rootInfo[root].rsigs.insert(sig);
  }
  void markWrite(uint32_t root, uint32_t sig) {
    if (!record) return;
    if (sig == kArbSig) rootInfo[root].arbW = true;
    else rootInfo[root].wsigs.insert(sig);
  }
  void bail() {
    if (record) fatal = true;
  }

  // -- transfer -------------------------------------------------------------
  void transfer(InstrId i) {
    const Instr& in = fn.instrs[i];
    switch (in.op) {
      case Opcode::Alloca:
        setRC(i, RC{RC::Local, i, 0, {}});
        break;
      case Opcode::Load: {
        RC r = rcOf(in.ops[0]);
        bool isArr = in.type != ir::kInvalidType &&
                     m.types().kindOf(in.type) == TypeKind::Array;
        bool owns = in.type != ir::kInvalidType && !isArr && typeOwnsArrays(m, in.type);
        if (owns && r.k != RC::Local) bail();  // shared record-of-array handles escape
        switch (r.k) {
          case RC::Local:
            setVC(i, isInduction[r.a] ? VC{VC::Ind, 0} : allocaSt[r.a].v);
            if (isArr) setAC(i, allocaSt[r.a].a);
            break;
          case RC::LocalField:
            if (record && (isArr || owns)) fatal = true;
            setVC(i, VC{VC::Vary, 0});
            break;
          case RC::TaskElem:
            if (isArr) setAC(i, AC{AC::TaskLocal, 0});
            setVC(i, VC{VC::Vary, 0});
            break;
          case RC::Elem:
            markRead(r.a, r.sig);
            if (isArr) setAC(i, AC{AC::Vary, 0});
            setVC(i, VC{VC::Vary, 0});
            break;
          case RC::Cap:
          case RC::Glob: {
            bool g = r.k == RC::Glob;
            std::string tag = (g ? "g:" : "cap:") + std::to_string(r.a);
            for (uint32_t p : r.path) tag += "." + std::to_string(p);
            if (isArr) setAC(i, AC{AC::Root, rootId(g, !g, r.a, r.path)});
            setVC(i, VC{VC::Uni, sym(tag)});
            break;
          }
          default:
            if (record) anyUnknownRead = true;
            if (isArr) setAC(i, AC{AC::Vary, 0});
            setVC(i, VC{VC::Vary, 0});
            break;
        }
        break;
      }
      case Opcode::Store: {
        RC r = rcOf(in.ops[1]);
        VC v = vcOf(in.ops[0]);
        AC av = acOf(in.ops[0]);
        TypeId vt = operandType(in.ops[0]);
        bool vIsArr = vt != ir::kInvalidType && m.types().kindOf(vt) == TypeKind::Array;
        bool vOwns = vt != ir::kInvalidType && !vIsArr && typeOwnsArrays(m, vt);
        bool vIsRef = operandIsRefValue(in.ops[0]) ||
                      in.ops[0].kind == ValueRef::Kind::GlobalAddr;
        switch (r.k) {
          case RC::Local:
            joinAlloca(r.a, vIsArr ? VC{VC::Vary, 0} : v, vIsArr ? av : AC{AC::NotArr});
            if (record && (vOwns || vIsRef)) fatal = true;
            break;
          case RC::LocalField:
          case RC::TaskElem:
            if (record && (vOwns || vIsRef || (vIsArr && av.k != AC::TaskLocal))) fatal = true;
            break;
          case RC::Elem:
            markWrite(r.a, r.sig);
            if (record && (vOwns || vIsArr || vIsRef)) fatal = true;
            break;
          default:
            bail();
            break;
        }
        break;
      }
      case Opcode::FieldAddr:
      case Opcode::TupleAddr: {
        RC r = rcOf(in.ops[0]);
        bool dyn = in.op == Opcode::TupleAddr && in.ops.size() == 2;
        switch (r.k) {
          case RC::Local:
          case RC::LocalField: setRC(i, RC{RC::LocalField, r.a, 0, {}}); break;
          case RC::TaskElem: setRC(i, RC{RC::TaskElem, 0, 0, {}}); break;
          case RC::Elem: setRC(i, RC{RC::Elem, r.a, r.sig, {}}); break;
          case RC::Cap:
          case RC::Glob:
            if (dyn) { setRC(i, RC{RC::Vary, 0, 0, {}}); break; }
            {
              RC nr = r;
              nr.path.push_back(in.imm);
              setRC(i, std::move(nr));
            }
            break;
          default: setRC(i, RC{RC::Vary, 0, 0, {}}); break;
        }
        break;
      }
      case Opcode::IndexAddr: {
        AC base = acOf(in.ops[0]);
        switch (base.k) {
          case AC::Root: {
            bool linear = (in.imm & 1) != 0;
            std::vector<SigElem> elems;
            bool arb = false;
            for (size_t k = 1; k < in.ops.size(); ++k) {
              VC c = vcOf(in.ops[k]);
              switch (c.k) {
                case VC::Uni: elems.push_back({0, c.s}); break;
                case VC::Ind: elems.push_back({1, 0}); break;
                case VC::Aff: elems.push_back({2, c.s}); break;
                case VC::AffN: elems.push_back({3, c.s}); break;
                default: arb = true; break;
              }
            }
            setRC(i, RC{RC::Elem, base.root, arb ? kArbSig : internSig(linear, elems), {}});
            break;
          }
          case AC::TaskLocal: setRC(i, RC{RC::TaskElem, 0, 0, {}}); break;
          default: setRC(i, RC{RC::Vary, 0, 0, {}}); break;
        }
        break;
      }
      case Opcode::Bin: {
        TypeKind rk = m.types().kindOf(in.type);
        VC a = vcOf(in.ops[0]), b = vcOf(in.ops[1]);
        auto uni2 = [&](const char* tag) {
          return VC{VC::Uni, sym(std::string(tag) + "(" + std::to_string(a.s) + "," +
                                 std::to_string(b.s) + ")")};
        };
        if (rk != TypeKind::Int) {
          setVC(i, (a.k == VC::Uni && b.k == VC::Uni)
                       ? uni2(("b" + std::to_string(static_cast<int>(in.extra.bin))).c_str())
                       : VC{VC::Vary, 0});
          break;
        }
        VC out{VC::Vary, 0};
        BinKind k = in.extra.bin;
        if (a.k == VC::Uni && b.k == VC::Uni) {
          out = uni2(("b" + std::to_string(static_cast<int>(k))).c_str());
        } else if (k == BinKind::Add) {
          if ((a.k == VC::Uni && b.k == VC::Ind) || (a.k == VC::Ind && b.k == VC::Uni))
            out = VC{VC::Aff, a.k == VC::Uni ? a.s : b.s};
          else if ((a.k == VC::Uni && b.k == VC::Aff) || (a.k == VC::Aff && b.k == VC::Uni))
            out = VC{VC::Aff, sym("+(" + std::to_string(std::min(a.s, b.s)) + "," +
                                  std::to_string(std::max(a.s, b.s)) + ")+")};
          else if ((a.k == VC::Uni && b.k == VC::AffN) || (a.k == VC::AffN && b.k == VC::Uni))
            out = VC{VC::AffN, sym("+(" + std::to_string(std::min(a.s, b.s)) + "," +
                                   std::to_string(std::max(a.s, b.s)) + ")-")};
        } else if (k == BinKind::Sub) {
          if (a.k == VC::Ind && b.k == VC::Uni)
            out = VC{VC::Aff, sym("neg(" + std::to_string(b.s) + ")")};
          else if (a.k == VC::Aff && b.k == VC::Uni)
            out = VC{VC::Aff, sym("-(" + std::to_string(a.s) + "," + std::to_string(b.s) + ")+")};
          else if (a.k == VC::Uni && b.k == VC::Ind)
            out = VC{VC::AffN, a.s};
          else if (a.k == VC::Uni && b.k == VC::Aff)
            out = VC{VC::AffN, sym("-(" + std::to_string(a.s) + "," + std::to_string(b.s) + ")-")};
          else if (a.k == VC::AffN && b.k == VC::Uni)
            out = VC{VC::AffN, sym("-(" + std::to_string(a.s) + "," + std::to_string(b.s) + ")n")};
        }
        setVC(i, out);
        break;
      }
      case Opcode::Un: {
        VC a = vcOf(in.ops[0]);
        setVC(i, a.k == VC::Uni
                     ? VC{VC::Uni, sym("u" + std::to_string(static_cast<int>(in.extra.un)) +
                                       "(" + std::to_string(a.s) + ")")}
                     : VC{VC::Vary, 0});
        break;
      }
      case Opcode::TupleMake: {
        bool allUni = true;
        std::string tag = "tm";
        for (const ValueRef& o : in.ops) {
          if (record && (operandIsRefValue(o) || acOf(o).k != AC::NotArr)) fatal = true;
          VC c = vcOf(o);
          if (c.k != VC::Uni) allUni = false;
          else tag += ":" + std::to_string(c.s);
        }
        if (record && in.type != ir::kInvalidType && typeOwnsArrays(m, in.type)) fatal = true;
        setVC(i, allUni ? VC{VC::Uni, sym(tag)} : VC{VC::Vary, 0});
        break;
      }
      case Opcode::TupleGet: {
        if (record && in.type != ir::kInvalidType && typeOwnsArrays(m, in.type)) fatal = true;
        VC t = vcOf(in.ops[0]);
        bool dyn = in.ops.size() == 2;
        VC idx = dyn ? vcOf(in.ops[1]) : VC{VC::Uni, sym("imm:" + std::to_string(in.imm))};
        setVC(i, (t.k == VC::Uni && idx.k == VC::Uni)
                     ? VC{VC::Uni, sym("tg(" + std::to_string(t.s) + "," +
                                       std::to_string(idx.s) + ")")}
                     : VC{VC::Vary, 0});
        break;
      }
      case Opcode::RecordNew:
        if (record && typeOwnsArrays(m, in.type)) fatal = true;  // runs domain thunks
        setVC(i, VC{VC::Vary, 0});
        break;
      case Opcode::DomainMake:
      case Opcode::DomainExpand: {
        bool allUni = true;
        std::string tag = "dm";
        for (const ValueRef& o : in.ops) {
          VC c = vcOf(o);
          if (c.k != VC::Uni) { allUni = false; break; }
          tag += ":" + std::to_string(c.s);
        }
        setVC(i, allUni ? VC{VC::Uni, sym(tag)} : VC{VC::Vary, 0});
        break;
      }
      case Opcode::DomainSize:
      case Opcode::DomainDim: {
        AC base = acOf(in.ops[0]);
        if (base.k == AC::Root) {
          setVC(i, VC{VC::Uni, sym("dq:" + std::to_string(base.root) + ":" +
                                   std::to_string(in.imm) +
                                   (in.op == Opcode::DomainSize ? "s" : "d"))});
        } else {
          VC d = vcOf(in.ops[0]);
          setVC(i, d.k == VC::Uni
                       ? VC{VC::Uni, sym("dq(" + std::to_string(d.s) + "," +
                                         std::to_string(in.imm) + ")")}
                       : VC{VC::Vary, 0});
        }
        break;
      }
      case Opcode::ArrayNew:
        setAC(i, AC{AC::TaskLocal, 0});
        break;
      case Opcode::ArrayView:
        // Views remap coordinates; accesses through them are not comparable
        // with direct-root signatures. Reads stay safe, writes bail.
        setAC(i, AC{AC::Vary, 0});
        break;
      case Opcode::Call:
      case Opcode::Spawn:
        bail();
        setVC(i, VC{VC::Vary, 0});
        break;
      case Opcode::Builtin:
        switch (in.extra.builtin) {
          case BuiltinKind::Random: bail(); break;
          case BuiltinKind::Writeln:
            for (const ValueRef& o : in.ops) {
              if (record && operandIsRefValue(o)) fatal = true;
              AC a = acOf(o);
              if (a.k == AC::Root) { if (record) rootInfo[a.root].arbR = true; }
              else if (a.k == AC::Vary) { if (record) anyUnknownRead = true; }
            }
            break;
          case BuiltinKind::ArrayFill:
          case BuiltinKind::ArrayCopy: {
            AC dst = acOf(in.ops[0]);
            if (dst.k != AC::TaskLocal) bail();
            if (in.extra.builtin == BuiltinKind::ArrayCopy) {
              AC src = acOf(in.ops[1]);
              if (src.k == AC::Root) { if (record) rootInfo[src.root].arbR = true; }
              else if (src.k == AC::Vary) { if (record) anyUnknownRead = true; }
            }
            break;
          }
          case BuiltinKind::ConfigGet:
            setVC(i, vcOf(in.ops[1]).k == VC::Uni
                         ? VC{VC::Uni, sym("cfg:" + std::to_string(i))}
                         : VC{VC::Vary, 0});
            break;
          case BuiltinKind::Dmapped:
          case BuiltinKind::OnBegin:
          case BuiltinKind::OnEnd:
            // Locale switches mutate shared runtime state (current locale,
            // comm counters follow task order): keep such regions sequential.
            bail();
            setVC(i, VC{VC::Vary, 0});
            break;
          case BuiltinKind::AggOpen:
          case BuiltinKind::AggCopy:
          case BuiltinKind::AggClose:
            // Aggregator buffers are per-task mutable runtime state whose
            // flush points depend on copy order: keep such regions
            // sequential so replay stays deterministic.
            bail();
            setVC(i, VC{VC::Vary, 0});
            break;
          case BuiltinKind::HereId:
            setVC(i, VC{VC::Uni, sym("here")});
            break;
          case BuiltinKind::NumLocales:
            setVC(i, VC{VC::Uni, sym("nloc")});
            break;
          default:  // Clock / Yield / HeapHint
            setVC(i, VC{VC::Vary, 0});
            break;
        }
        break;
      default:  // Ret / Br / CondBr / IterOverhead
        break;
    }
  }

  SpawnPlan run() {
    for (int iter = 0; iter < 32; ++iter) {
      changed = false;
      for (InstrId i = 0; i < fn.numInstrs(); ++i) transfer(i);
      if (!changed) break;
      if (iter == 31) return SpawnPlan{};  // did not converge: fall back
    }
    record = true;
    for (InstrId i = 0; i < fn.numInstrs(); ++i) {
      transfer(i);
      if (fatal) return SpawnPlan{};
    }
    bool anyWrite = false;
    for (auto& [root, info] : rootInfo) {
      bool w = info.arbW || !info.wsigs.empty();
      if (!w) continue;
      anyWrite = true;
      rootRefs[root].written = true;
      if (info.arbW || info.arbR) return SpawnPlan{};
      std::set<uint32_t> all = info.wsigs;
      all.insert(info.rsigs.begin(), info.rsigs.end());
      if (all.size() != 1) return SpawnPlan{};
      const auto& [linear, elems] = sigs[*all.begin()];
      bool disjoint = false;
      for (const SigElem& e : elems)
        if (e.k != 0) disjoint = true;
      (void)linear;
      if (!disjoint) return SpawnPlan{};
    }
    if (anyUnknownRead && anyWrite) return SpawnPlan{};
    SpawnPlan plan;
    plan.eligible = true;
    plan.roots = rootRefs;
    return plan;
  }
};

// ---------------------------------------------------------------------------
// Bytecode lowering.
// ---------------------------------------------------------------------------

struct FnCompiler {
  const ir::Module& m;
  const ir::Function& fn;
  FuncId fid;
  CompiledModule& cm;
  const CostModel& cost;
  uint64_t q10;
  std::unordered_map<FuncId, uint32_t>& planOf;

  std::vector<uint32_t> uses;           // Reg use counts across the function
  std::vector<uint32_t> blockPc;        // BlockId -> bytecode pc
  struct Fixup { uint32_t pc; bool second; ir::BlockId block; };
  std::vector<Fixup> fixups;
  // Slot loads elided by operand forwarding: the load emits as a
  // prologue-only IterOverhead and its (single) consumer reads the slot in
  // place via a BOperand::K::Slot operand.
  std::unordered_map<uint32_t, uint32_t> slotForward;
  BFunc out;

  FnCompiler(const ir::Module& mod, FuncId f, CompiledModule& c, const CostModel& cst,
             uint64_t icq10, std::unordered_map<FuncId, uint32_t>& plans)
      : m(mod), fn(mod.function(f)), fid(f), cm(c), cost(cst), q10(icq10), planOf(plans) {
    uses.assign(fn.numInstrs(), 0);
    for (InstrId i = 0; i < fn.numInstrs(); ++i)
      for (const ValueRef& o : fn.instrs[i].ops)
        if (o.isReg()) ++uses[o.reg];
  }

  uint32_t scaled(const Instr& in) const {
    return static_cast<uint32_t>((cost.cost(in) * q10) >> 10);
  }

  BOperand dec(const ValueRef& v) {
    BOperand o;
    switch (v.kind) {
      case ValueRef::Kind::Reg: {
        auto fw = slotForward.find(v.reg);
        if (fw != slotForward.end()) { o = {BOperand::K::Slot, fw->second}; break; }
        o = {BOperand::K::Reg, v.reg};
        break;
      }
      case ValueRef::Kind::Arg: o = {BOperand::K::Arg, v.arg}; break;
      case ValueRef::Kind::GlobalAddr: o = {BOperand::K::Global, v.global}; break;
      case ValueRef::Kind::ConstInt: o = {BOperand::K::Const, addConst(Value::makeInt(v.i))}; break;
      case ValueRef::Kind::ConstReal:
        o = {BOperand::K::Const, addConst(Value::makeReal(v.r))};
        break;
      case ValueRef::Kind::ConstBool:
        o = {BOperand::K::Const, addConst(Value::makeBool(v.b))};
        break;
      case ValueRef::Kind::ConstString:
        o = {BOperand::K::Const, addConst(Value::makeStr(m.string(v.stringId)))};
        break;
      case ValueRef::Kind::None: o = {BOperand::K::None, 0}; break;
    }
    return o;
  }

  uint32_t addConst(Value v) {
    cm.constPool.push_back(std::move(v));
    return static_cast<uint32_t>(cm.constPool.size() - 1);
  }

  uint32_t window(const std::vector<ValueRef>& ops, size_t from = 0) {
    uint32_t base = static_cast<uint32_t>(out.operands.size());
    for (size_t k = from; k < ops.size(); ++k) out.operands.push_back(dec(ops[k]));
    return base;
  }

  /// Slot index when `v` is the register of an Alloca in this function.
  int32_t slotOf(const ValueRef& v) const {
    if (!v.isReg() || fn.instrs[v.reg].op != Opcode::Alloca) return -1;
    return cm.allocaSlot[fid][v.reg];
  }

  uint32_t planFor(FuncId taskFn) {
    auto it = planOf.find(taskFn);
    if (it != planOf.end()) return it->second;
    Analyzer an(m, m.function(taskFn));
    uint32_t idx = static_cast<uint32_t>(cm.plans.size());
    cm.plans.push_back(an.run());
    planOf.emplace(taskFn, idx);
    return idx;
  }

  /// Operand forwarding: slot index when single-use slot load `id` at block
  /// position `p` has its one consumer inside the same block, reachable only
  /// through instructions that cannot modify any frame slot (so the consumer
  /// observes the same value reading the slot in place of the dead register
  /// copy). Returns -1 when the copy must be materialized. The load still
  /// emits a prologue-only instruction carrying its InstrId and cost, so
  /// instruction counts, sample points and charges are unchanged.
  int32_t forwardableSlot(const std::vector<InstrId>& instrs, size_t p, InstrId id) {
    const Instr& in = fn.instrs[id];
    if (uses.size() <= id || uses[id] != 1) return -1;
    int32_t slot = slotOf(in.ops[0]);
    if (slot < 0) return -1;
    for (size_t q = p + 1; q < instrs.size(); ++q) {
      const Instr& c = fn.instrs[instrs[q]];
      for (const ValueRef& o : c.ops)
        if (o.isReg() && o.reg == id) return c.op == Opcode::Spawn ? -1 : slot;
      switch (c.op) {
        case Opcode::Load:
        case Opcode::Alloca:
        case Opcode::FieldAddr:
        case Opcode::TupleAddr:
        case Opcode::IndexAddr:
        case Opcode::Bin:
        case Opcode::Un:
        case Opcode::TupleMake:
        case Opcode::TupleGet:
        case Opcode::DomainMake:
        case Opcode::DomainExpand:
        case Opcode::DomainSize:
        case Opcode::DomainDim:
        case Opcode::RecordNew:
        case Opcode::ArrayNew:
        case Opcode::ArrayView:
        case Opcode::IterOverhead:
          continue;  // cannot write any frame slot
        case Opcode::Store: {
          int32_t s = slotOf(c.ops[1]);
          if (s >= 0 && s != slot) continue;  // store to a different slot
          return -1;  // same slot, or an arbitrary ref target
        }
        default:
          return -1;  // Call/Spawn/Builtin may write through captured refs
      }
    }
    return -1;  // consumed in a later block
  }

  void compile() {
    blockPc.assign(fn.blocks.size(), 0);
    for (ir::BlockId b = 0; b < fn.blocks.size(); ++b) {
      blockPc[b] = static_cast<uint32_t>(out.code.size());
      const auto& instrs = fn.blocks[b].instrs;
      for (size_t p = 0; p < instrs.size(); ++p) {
        InstrId id = instrs[p];
        const Instr* next = p + 1 < instrs.size() ? &fn.instrs[instrs[p + 1]] : nullptr;
        InstrId nextId = p + 1 < instrs.size() ? instrs[p + 1] : 0;
        if (next && emitFused(id, fn.instrs[id], nextId, *next)) { ++p; continue; }
        const Instr& in = fn.instrs[id];
        if (in.op == Opcode::Load) {
          int32_t fw = forwardableSlot(instrs, p, id);
          if (fw >= 0) {
            slotForward.emplace(id, static_cast<uint32_t>(fw));
            out.code.push_back(base(id, in, Op::IterOverhead));
            continue;
          }
        }
        emitOne(id, in);
      }
    }
    for (const Fixup& fx : fixups) {
      if (fx.second) out.code[fx.pc].t1 = blockPc[fx.block];
      else out.code[fx.pc].t0 = blockPc[fx.block];
    }
    out.numSlots = cm.numSlots[fid];
    out.numRegs = static_cast<uint32_t>(fn.numInstrs());
    // Slots whose every Alloca is immediately followed by a Store to it are
    // always written before any read; all others must be reset on frame
    // reuse (see BFunc::resetSlots).
    std::vector<uint8_t> mustReset(out.numSlots, 0), inited(out.numSlots, 0);
    for (ir::BlockId b = 0; b < fn.blocks.size(); ++b) {
      const auto& instrs = fn.blocks[b].instrs;
      for (size_t p = 0; p < instrs.size(); ++p) {
        InstrId id = instrs[p];
        if (fn.instrs[id].op != Opcode::Alloca) continue;
        int32_t slot = cm.allocaSlot[fid][id];
        if (slot < 0) continue;
        const Instr* nx = p + 1 < instrs.size() ? &fn.instrs[instrs[p + 1]] : nullptr;
        bool storedNext = nx && nx->op == Opcode::Store && nx->ops[1].isReg() &&
                          nx->ops[1].reg == id;
        (storedNext ? inited : mustReset)[static_cast<uint32_t>(slot)] = 1;
      }
    }
    for (uint32_t s = 0; s < out.numSlots; ++s)
      if (mustReset[s] || !inited[s]) out.resetSlots.push_back(s);
  }

  BInstr base(InstrId id, const Instr& in, Op op) {
    BInstr b;
    b.op = op;
    b.ir = id;
    b.cost = scaled(in);
    b.dst = id;
    return b;
  }

  bool emitFused(InstrId id, const Instr& in, InstrId nid, const Instr& nx) {
    if (uses.size() <= id || uses[id] != 1) return false;
    // Bin(bool) + CondBr -> CmpBr.
    if (in.op == Opcode::Bin && m.types().kindOf(in.type) == TypeKind::Bool &&
        nx.op == Opcode::CondBr && nx.ops[0].isReg() && nx.ops[0].reg == id) {
      BInstr b = base(id, in, Op::CmpBr);
      b.sub = static_cast<uint8_t>(in.extra.bin);
      b.rk = static_cast<uint8_t>(TypeKind::Bool);
      b.a = dec(in.ops[0]);
      b.b = dec(in.ops[1]);
      b.ir2 = nid;
      b.cost2 = scaled(nx);
      fixups.push_back({static_cast<uint32_t>(out.code.size()), false, nx.target0});
      fixups.push_back({static_cast<uint32_t>(out.code.size()), true, nx.target1});
      out.code.push_back(b);
      return true;
    }
    // IndexAddr + Load -> IndexLoad.
    if (in.op == Opcode::IndexAddr && nx.op == Opcode::Load && nx.ops[0].isReg() &&
        nx.ops[0].reg == id) {
      BInstr b = base(id, in, Op::IndexLoad);
      if (in.imm & 1) b.flags |= kLinear;
      if (in.imm & 2) b.flags |= kStore;
      b.opBase = window(in.ops);
      b.nops = static_cast<uint32_t>(in.ops.size());
      b.ir2 = nid;
      b.cost2 = scaled(nx);
      b.dst2 = nid;
      out.code.push_back(b);
      return true;
    }
    // IndexAddr + Store -> IndexStore.
    if (in.op == Opcode::IndexAddr && nx.op == Opcode::Store && nx.ops[1].isReg() &&
        nx.ops[1].reg == id) {
      BInstr b = base(id, in, Op::IndexStore);
      if (in.imm & 1) b.flags |= kLinear;
      if (in.imm & 2) b.flags |= kStore;
      b.opBase = window(in.ops);
      b.nops = static_cast<uint32_t>(in.ops.size());
      b.a = dec(nx.ops[0]);  // stored value
      b.ir2 = nid;
      b.cost2 = scaled(nx);
      out.code.push_back(b);
      return true;
    }
    // Load-from-slot + TupleGet -> TupleGetSlot. The dominant tuple-read
    // idiom (`t(k)` where t is a local) loads the whole tuple just to
    // extract one element; fused, the element is read straight out of the
    // slot and the dead whole-tuple copy disappears.
    if (in.op == Opcode::Load && nx.op == Opcode::TupleGet && nx.ops[0].isReg() &&
        nx.ops[0].reg == id) {
      int32_t slot = slotOf(in.ops[0]);
      if (slot >= 0) {
        BInstr b = base(id, in, Op::TupleGetSlot);
        b.t0 = static_cast<uint32_t>(slot);
        if (nx.ops.size() == 2) { b.b = dec(nx.ops[1]); b.flags |= kDynIndex; }
        b.imm = nx.imm;
        b.ir2 = nid;
        b.cost2 = scaled(nx);
        b.dst2 = nid;
        out.code.push_back(b);
        return true;
      }
    }
    // TupleAddr + Load -> TupleGetRef (`hourgam(i)(j)` style ref chains).
    if (in.op == Opcode::TupleAddr && nx.op == Opcode::Load && nx.ops[0].isReg() &&
        nx.ops[0].reg == id) {
      BInstr b = base(id, in, Op::TupleGetRef);
      b.a = dec(in.ops[0]);
      if (in.ops.size() == 2) { b.b = dec(in.ops[1]); b.flags |= kDynIndex; }
      b.imm = in.imm;
      b.ir2 = nid;
      b.cost2 = scaled(nx);
      b.dst2 = nid;
      out.code.push_back(b);
      return true;
    }
    // Bin(int/real) + Store-to-slot -> BinStoreSlot.
    if (in.op == Opcode::Bin && nx.op == Opcode::Store && nx.ops[0].isReg() &&
        nx.ops[0].reg == id) {
      TypeKind rk = m.types().kindOf(in.type);
      int32_t slot = slotOf(nx.ops[1]);
      if ((rk == TypeKind::Int || rk == TypeKind::Real) && slot >= 0) {
        BInstr b = base(id, in, Op::BinStoreSlot);
        b.sub = static_cast<uint8_t>(in.extra.bin);
        b.rk = static_cast<uint8_t>(rk);
        b.a = dec(in.ops[0]);
        b.b = dec(in.ops[1]);
        b.ir2 = nid;
        b.cost2 = scaled(nx);
        b.dst2 = static_cast<uint32_t>(slot);
        out.code.push_back(b);
        return true;
      }
    }
    return false;
  }

  void emitOne(InstrId id, const Instr& in) {
    switch (in.op) {
      case Opcode::Alloca: {
        BInstr b = base(id, in, Op::Alloca);
        b.t0 = static_cast<uint32_t>(cm.allocaSlot[fid][id]);
        out.code.push_back(b);
        break;
      }
      case Opcode::Load: {
        int32_t slot = slotOf(in.ops[0]);
        if (slot >= 0) {
          BInstr b = base(id, in, Op::LoadSlot);
          b.t0 = static_cast<uint32_t>(slot);
          out.code.push_back(b);
        } else {
          BInstr b = base(id, in, Op::LoadRef);
          b.a = dec(in.ops[0]);
          if (in.ops[0].isReg() && fn.instrs[in.ops[0].reg].op == Opcode::FieldAddr)
            b.flags |= kNestedHandle;
          out.code.push_back(b);
        }
        break;
      }
      case Opcode::Store: {
        int32_t slot = slotOf(in.ops[1]);
        if (slot >= 0) {
          BInstr b = base(id, in, Op::StoreSlot);
          b.a = dec(in.ops[0]);
          b.t0 = static_cast<uint32_t>(slot);
          out.code.push_back(b);
        } else {
          BInstr b = base(id, in, Op::StoreRef);
          b.a = dec(in.ops[0]);
          b.b = dec(in.ops[1]);
          out.code.push_back(b);
        }
        break;
      }
      case Opcode::FieldAddr: {
        BInstr b = base(id, in, Op::FieldAddr);
        b.a = dec(in.ops[0]);
        b.imm = in.imm;
        out.code.push_back(b);
        break;
      }
      case Opcode::TupleAddr: {
        BInstr b = base(id, in, Op::TupleAddr);
        b.a = dec(in.ops[0]);
        if (in.ops.size() == 2) { b.b = dec(in.ops[1]); b.flags |= kDynIndex; }
        b.imm = in.imm;
        out.code.push_back(b);
        break;
      }
      case Opcode::IndexAddr: {
        BInstr b = base(id, in, Op::IndexAddr);
        if (in.imm & 1) b.flags |= kLinear;
        if (in.imm & 2) b.flags |= kStore;
        b.opBase = window(in.ops);
        b.nops = static_cast<uint32_t>(in.ops.size());
        out.code.push_back(b);
        break;
      }
      case Opcode::Bin: {
        BInstr b = base(id, in, Op::Bin);
        b.sub = static_cast<uint8_t>(in.extra.bin);
        b.rk = static_cast<uint8_t>(m.types().kindOf(in.type));
        b.a = dec(in.ops[0]);
        b.b = dec(in.ops[1]);
        out.code.push_back(b);
        break;
      }
      case Opcode::Un: {
        BInstr b = base(id, in, Op::Un);
        b.sub = static_cast<uint8_t>(in.extra.un);
        b.a = dec(in.ops[0]);
        out.code.push_back(b);
        break;
      }
      case Opcode::TupleMake: {
        BInstr b = base(id, in, Op::TupleMake);
        b.opBase = window(in.ops);
        b.nops = static_cast<uint32_t>(in.ops.size());
        out.code.push_back(b);
        break;
      }
      case Opcode::TupleGet: {
        BInstr b = base(id, in, Op::TupleGet);
        b.a = dec(in.ops[0]);
        if (in.ops.size() == 2) { b.b = dec(in.ops[1]); b.flags |= kDynIndex; }
        b.imm = in.imm;
        out.code.push_back(b);
        break;
      }
      case Opcode::RecordNew: {
        BInstr b = base(id, in, Op::RecordNew);
        b.t0 = in.type;
        b.imm = cost.profile().recordNewPerField * m.types().get(in.type).fields.size();
        out.code.push_back(b);
        break;
      }
      case Opcode::DomainMake: {
        BInstr b = base(id, in, Op::DomainMake);
        b.sub = static_cast<uint8_t>(in.imm);
        b.opBase = window(in.ops);
        b.nops = static_cast<uint32_t>(in.ops.size());
        out.code.push_back(b);
        break;
      }
      case Opcode::DomainExpand: {
        BInstr b = base(id, in, Op::DomainExpand);
        b.a = dec(in.ops[0]);
        b.b = dec(in.ops[1]);
        out.code.push_back(b);
        break;
      }
      case Opcode::DomainSize: {
        BInstr b = base(id, in, Op::DomainSize);
        b.a = dec(in.ops[0]);
        out.code.push_back(b);
        break;
      }
      case Opcode::DomainDim: {
        BInstr b = base(id, in, Op::DomainDim);
        b.a = dec(in.ops[0]);
        b.imm = in.imm;
        out.code.push_back(b);
        break;
      }
      case Opcode::ArrayNew: {
        BInstr b = base(id, in, Op::ArrayNew);
        b.a = dec(in.ops[0]);
        b.t0 = m.types().get(in.type).elem;
        out.code.push_back(b);
        break;
      }
      case Opcode::ArrayView: {
        BInstr b = base(id, in, Op::ArrayView);
        b.a = dec(in.ops[0]);
        b.b = dec(in.ops[1]);
        out.code.push_back(b);
        break;
      }
      case Opcode::Call: {
        BInstr b = base(id, in, Op::Call);
        b.opBase = window(in.ops);
        b.nops = static_cast<uint32_t>(in.ops.size());
        b.t0 = in.extra.func;
        out.code.push_back(b);
        break;
      }
      case Opcode::Ret: {
        BInstr b = base(id, in, Op::Ret);
        if (!in.ops.empty()) b.a = dec(in.ops[0]);
        out.code.push_back(b);
        break;
      }
      case Opcode::Br: {
        BInstr b = base(id, in, Op::Br);
        fixups.push_back({static_cast<uint32_t>(out.code.size()), false, in.target0});
        out.code.push_back(b);
        break;
      }
      case Opcode::CondBr: {
        BInstr b = base(id, in, Op::CondBr);
        b.a = dec(in.ops[0]);
        fixups.push_back({static_cast<uint32_t>(out.code.size()), false, in.target0});
        fixups.push_back({static_cast<uint32_t>(out.code.size()), true, in.target1});
        out.code.push_back(b);
        break;
      }
      case Opcode::Spawn: {
        BInstr b = base(id, in, Op::Spawn);
        b.sub = static_cast<uint8_t>(in.imm);
        b.opBase = window(in.ops);
        b.nops = static_cast<uint32_t>(in.ops.size());
        b.t0 = in.extra.func;
        b.t1 = planFor(in.extra.func);
        out.code.push_back(b);
        break;
      }
      case Opcode::IterOverhead:
        out.code.push_back(base(id, in, Op::IterOverhead));
        break;
      case Opcode::Builtin: {
        BInstr b = base(id, in, Op::Builtin);
        b.sub = static_cast<uint8_t>(in.extra.builtin);
        b.opBase = window(in.ops);
        b.nops = static_cast<uint32_t>(in.ops.size());
        out.code.push_back(b);
        break;
      }
    }
  }
};

}  // namespace

CompiledModule compile(const ir::Module& m, const CostModel& cost,
                       const std::vector<uint64_t>& icacheQ10) {
  CompiledModule cm;
  cm.allocaSlot.resize(m.numFunctions());
  cm.numSlots.assign(m.numFunctions(), 0);
  for (FuncId f = 0; f < m.numFunctions(); ++f) {
    const ir::Function& fn = m.function(f);
    cm.allocaSlot[f].assign(fn.numInstrs(), -1);
    uint32_t n = 0;
    for (InstrId i = 0; i < fn.numInstrs(); ++i)
      if (fn.instrs[i].op == Opcode::Alloca)
        cm.allocaSlot[f][i] = static_cast<int32_t>(n++);
    cm.numSlots[f] = n;
  }
  cm.funcs.resize(m.numFunctions());
  std::unordered_map<FuncId, uint32_t> planOf;
  for (FuncId f = 0; f < m.numFunctions(); ++f) {
    FnCompiler fc(m, f, cm, cost, icacheQ10[f], planOf);
    fc.compile();
    cm.funcs[f] = std::move(fc.out);
  }
  return cm;
}

}  // namespace cb::rt::bc
