#include "runtime/bytecode.h"

#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "analysis/race.h"
#include "support/common.h"

namespace cb::rt::bc {

using ir::BinKind;
using ir::BuiltinKind;
using ir::FuncId;
using ir::Instr;
using ir::InstrId;
using ir::Opcode;
using ir::TypeId;
using ir::TypeKind;
using ir::ValueRef;

namespace {

// ---------------------------------------------------------------------------
// Bytecode lowering.
// ---------------------------------------------------------------------------

struct FnCompiler {
  const ir::Module& m;
  const ir::Function& fn;
  FuncId fid;
  CompiledModule& cm;
  const CostModel& cost;
  uint64_t q10;
  std::unordered_map<FuncId, uint32_t>& planOf;

  std::vector<uint32_t> uses;           // Reg use counts across the function
  std::vector<uint32_t> blockPc;        // BlockId -> bytecode pc
  struct Fixup { uint32_t pc; bool second; ir::BlockId block; };
  std::vector<Fixup> fixups;
  // Slot loads elided by operand forwarding: the load emits as a
  // prologue-only IterOverhead and its (single) consumer reads the slot in
  // place via a BOperand::K::Slot operand.
  std::unordered_map<uint32_t, uint32_t> slotForward;
  BFunc out;

  FnCompiler(const ir::Module& mod, FuncId f, CompiledModule& c, const CostModel& cst,
             uint64_t icq10, std::unordered_map<FuncId, uint32_t>& plans)
      : m(mod), fn(mod.function(f)), fid(f), cm(c), cost(cst), q10(icq10), planOf(plans) {
    uses.assign(fn.numInstrs(), 0);
    for (InstrId i = 0; i < fn.numInstrs(); ++i)
      for (const ValueRef& o : fn.instrs[i].ops)
        if (o.isReg()) ++uses[o.reg];
  }

  uint32_t scaled(const Instr& in) const {
    return static_cast<uint32_t>((cost.cost(in) * q10) >> 10);
  }

  BOperand dec(const ValueRef& v) {
    BOperand o;
    switch (v.kind) {
      case ValueRef::Kind::Reg: {
        auto fw = slotForward.find(v.reg);
        if (fw != slotForward.end()) { o = {BOperand::K::Slot, fw->second}; break; }
        o = {BOperand::K::Reg, v.reg};
        break;
      }
      case ValueRef::Kind::Arg: o = {BOperand::K::Arg, v.arg}; break;
      case ValueRef::Kind::GlobalAddr: o = {BOperand::K::Global, v.global}; break;
      case ValueRef::Kind::ConstInt: o = {BOperand::K::Const, addConst(Value::makeInt(v.i))}; break;
      case ValueRef::Kind::ConstReal:
        o = {BOperand::K::Const, addConst(Value::makeReal(v.r))};
        break;
      case ValueRef::Kind::ConstBool:
        o = {BOperand::K::Const, addConst(Value::makeBool(v.b))};
        break;
      case ValueRef::Kind::ConstString:
        o = {BOperand::K::Const, addConst(Value::makeStr(m.string(v.stringId)))};
        break;
      case ValueRef::Kind::None: o = {BOperand::K::None, 0}; break;
    }
    return o;
  }

  uint32_t addConst(Value v) {
    cm.constPool.push_back(std::move(v));
    return static_cast<uint32_t>(cm.constPool.size() - 1);
  }

  uint32_t window(const std::vector<ValueRef>& ops, size_t from = 0) {
    uint32_t base = static_cast<uint32_t>(out.operands.size());
    for (size_t k = from; k < ops.size(); ++k) out.operands.push_back(dec(ops[k]));
    return base;
  }

  /// Slot index when `v` is the register of an Alloca in this function.
  int32_t slotOf(const ValueRef& v) const {
    if (!v.isReg() || fn.instrs[v.reg].op != Opcode::Alloca) return -1;
    return cm.allocaSlot[fid][v.reg];
  }

  uint32_t planFor(FuncId taskFn) {
    auto it = planOf.find(taskFn);
    if (it != planOf.end()) return it->second;
    // Parallel-replay eligibility comes from the shared race-freedom prover
    // (analysis/race.h); the plan keeps only what the engines need.
    an::race::Verdict v = an::race::analyzeTaskFunction(m, taskFn);
    uint32_t idx = static_cast<uint32_t>(cm.plans.size());
    SpawnPlan plan;
    plan.eligible = v.raceFree;
    if (v.raceFree) plan.roots = std::move(v.roots);
    cm.plans.push_back(std::move(plan));
    planOf.emplace(taskFn, idx);
    return idx;
  }

  /// Operand forwarding: slot index when single-use slot load `id` at block
  /// position `p` has its one consumer inside the same block, reachable only
  /// through instructions that cannot modify any frame slot (so the consumer
  /// observes the same value reading the slot in place of the dead register
  /// copy). Returns -1 when the copy must be materialized. The load still
  /// emits a prologue-only instruction carrying its InstrId and cost, so
  /// instruction counts, sample points and charges are unchanged.
  int32_t forwardableSlot(const std::vector<InstrId>& instrs, size_t p, InstrId id) {
    const Instr& in = fn.instrs[id];
    if (uses.size() <= id || uses[id] != 1) return -1;
    int32_t slot = slotOf(in.ops[0]);
    if (slot < 0) return -1;
    for (size_t q = p + 1; q < instrs.size(); ++q) {
      const Instr& c = fn.instrs[instrs[q]];
      for (const ValueRef& o : c.ops)
        if (o.isReg() && o.reg == id) return c.op == Opcode::Spawn ? -1 : slot;
      switch (c.op) {
        case Opcode::Load:
        case Opcode::Alloca:
        case Opcode::FieldAddr:
        case Opcode::TupleAddr:
        case Opcode::IndexAddr:
        case Opcode::Bin:
        case Opcode::Un:
        case Opcode::TupleMake:
        case Opcode::TupleGet:
        case Opcode::DomainMake:
        case Opcode::DomainExpand:
        case Opcode::DomainSize:
        case Opcode::DomainDim:
        case Opcode::RecordNew:
        case Opcode::ArrayNew:
        case Opcode::ArrayView:
        case Opcode::IterOverhead:
          continue;  // cannot write any frame slot
        case Opcode::Store: {
          int32_t s = slotOf(c.ops[1]);
          if (s >= 0 && s != slot) continue;  // store to a different slot
          return -1;  // same slot, or an arbitrary ref target
        }
        default:
          return -1;  // Call/Spawn/Builtin may write through captured refs
      }
    }
    return -1;  // consumed in a later block
  }

  void compile() {
    blockPc.assign(fn.blocks.size(), 0);
    for (ir::BlockId b = 0; b < fn.blocks.size(); ++b) {
      blockPc[b] = static_cast<uint32_t>(out.code.size());
      const auto& instrs = fn.blocks[b].instrs;
      for (size_t p = 0; p < instrs.size(); ++p) {
        InstrId id = instrs[p];
        const Instr* next = p + 1 < instrs.size() ? &fn.instrs[instrs[p + 1]] : nullptr;
        InstrId nextId = p + 1 < instrs.size() ? instrs[p + 1] : 0;
        if (next && emitFused(id, fn.instrs[id], nextId, *next)) { ++p; continue; }
        const Instr& in = fn.instrs[id];
        if (in.op == Opcode::Load) {
          int32_t fw = forwardableSlot(instrs, p, id);
          if (fw >= 0) {
            slotForward.emplace(id, static_cast<uint32_t>(fw));
            out.code.push_back(base(id, in, Op::IterOverhead));
            continue;
          }
        }
        emitOne(id, in);
      }
    }
    for (const Fixup& fx : fixups) {
      if (fx.second) out.code[fx.pc].t1 = blockPc[fx.block];
      else out.code[fx.pc].t0 = blockPc[fx.block];
    }
    out.numSlots = cm.numSlots[fid];
    out.numRegs = static_cast<uint32_t>(fn.numInstrs());
    // Slots whose every Alloca is immediately followed by a Store to it are
    // always written before any read; all others must be reset on frame
    // reuse (see BFunc::resetSlots).
    std::vector<uint8_t> mustReset(out.numSlots, 0), inited(out.numSlots, 0);
    for (ir::BlockId b = 0; b < fn.blocks.size(); ++b) {
      const auto& instrs = fn.blocks[b].instrs;
      for (size_t p = 0; p < instrs.size(); ++p) {
        InstrId id = instrs[p];
        if (fn.instrs[id].op != Opcode::Alloca) continue;
        int32_t slot = cm.allocaSlot[fid][id];
        if (slot < 0) continue;
        const Instr* nx = p + 1 < instrs.size() ? &fn.instrs[instrs[p + 1]] : nullptr;
        bool storedNext = nx && nx->op == Opcode::Store && nx->ops[1].isReg() &&
                          nx->ops[1].reg == id;
        (storedNext ? inited : mustReset)[static_cast<uint32_t>(slot)] = 1;
      }
    }
    for (uint32_t s = 0; s < out.numSlots; ++s)
      if (mustReset[s] || !inited[s]) out.resetSlots.push_back(s);
  }

  BInstr base(InstrId id, const Instr& in, Op op) {
    BInstr b;
    b.op = op;
    b.ir = id;
    b.cost = scaled(in);
    b.dst = id;
    return b;
  }

  bool emitFused(InstrId id, const Instr& in, InstrId nid, const Instr& nx) {
    if (uses.size() <= id || uses[id] != 1) return false;
    // Bin(bool) + CondBr -> CmpBr.
    if (in.op == Opcode::Bin && m.types().kindOf(in.type) == TypeKind::Bool &&
        nx.op == Opcode::CondBr && nx.ops[0].isReg() && nx.ops[0].reg == id) {
      BInstr b = base(id, in, Op::CmpBr);
      b.sub = static_cast<uint8_t>(in.extra.bin);
      b.rk = static_cast<uint8_t>(TypeKind::Bool);
      b.a = dec(in.ops[0]);
      b.b = dec(in.ops[1]);
      b.ir2 = nid;
      b.cost2 = scaled(nx);
      fixups.push_back({static_cast<uint32_t>(out.code.size()), false, nx.target0});
      fixups.push_back({static_cast<uint32_t>(out.code.size()), true, nx.target1});
      out.code.push_back(b);
      return true;
    }
    // IndexAddr + Load -> IndexLoad.
    if (in.op == Opcode::IndexAddr && nx.op == Opcode::Load && nx.ops[0].isReg() &&
        nx.ops[0].reg == id) {
      BInstr b = base(id, in, Op::IndexLoad);
      if (in.imm & 1) b.flags |= kLinear;
      if (in.imm & 2) b.flags |= kStore;
      b.opBase = window(in.ops);
      b.nops = static_cast<uint32_t>(in.ops.size());
      b.ir2 = nid;
      b.cost2 = scaled(nx);
      b.dst2 = nid;
      out.code.push_back(b);
      return true;
    }
    // IndexAddr + Store -> IndexStore.
    if (in.op == Opcode::IndexAddr && nx.op == Opcode::Store && nx.ops[1].isReg() &&
        nx.ops[1].reg == id) {
      BInstr b = base(id, in, Op::IndexStore);
      if (in.imm & 1) b.flags |= kLinear;
      if (in.imm & 2) b.flags |= kStore;
      b.opBase = window(in.ops);
      b.nops = static_cast<uint32_t>(in.ops.size());
      b.a = dec(nx.ops[0]);  // stored value
      b.ir2 = nid;
      b.cost2 = scaled(nx);
      out.code.push_back(b);
      return true;
    }
    // Load-from-slot + TupleGet -> TupleGetSlot. The dominant tuple-read
    // idiom (`t(k)` where t is a local) loads the whole tuple just to
    // extract one element; fused, the element is read straight out of the
    // slot and the dead whole-tuple copy disappears.
    if (in.op == Opcode::Load && nx.op == Opcode::TupleGet && nx.ops[0].isReg() &&
        nx.ops[0].reg == id) {
      int32_t slot = slotOf(in.ops[0]);
      if (slot >= 0) {
        BInstr b = base(id, in, Op::TupleGetSlot);
        b.t0 = static_cast<uint32_t>(slot);
        if (nx.ops.size() == 2) { b.b = dec(nx.ops[1]); b.flags |= kDynIndex; }
        b.imm = nx.imm;
        b.ir2 = nid;
        b.cost2 = scaled(nx);
        b.dst2 = nid;
        out.code.push_back(b);
        return true;
      }
    }
    // TupleAddr + Load -> TupleGetRef (`hourgam(i)(j)` style ref chains).
    if (in.op == Opcode::TupleAddr && nx.op == Opcode::Load && nx.ops[0].isReg() &&
        nx.ops[0].reg == id) {
      BInstr b = base(id, in, Op::TupleGetRef);
      b.a = dec(in.ops[0]);
      if (in.ops.size() == 2) { b.b = dec(in.ops[1]); b.flags |= kDynIndex; }
      b.imm = in.imm;
      b.ir2 = nid;
      b.cost2 = scaled(nx);
      b.dst2 = nid;
      out.code.push_back(b);
      return true;
    }
    // Bin(int/real) + Store-to-slot -> BinStoreSlot.
    if (in.op == Opcode::Bin && nx.op == Opcode::Store && nx.ops[0].isReg() &&
        nx.ops[0].reg == id) {
      TypeKind rk = m.types().kindOf(in.type);
      int32_t slot = slotOf(nx.ops[1]);
      if ((rk == TypeKind::Int || rk == TypeKind::Real) && slot >= 0) {
        BInstr b = base(id, in, Op::BinStoreSlot);
        b.sub = static_cast<uint8_t>(in.extra.bin);
        b.rk = static_cast<uint8_t>(rk);
        b.a = dec(in.ops[0]);
        b.b = dec(in.ops[1]);
        b.ir2 = nid;
        b.cost2 = scaled(nx);
        b.dst2 = static_cast<uint32_t>(slot);
        out.code.push_back(b);
        return true;
      }
    }
    return false;
  }

  void emitOne(InstrId id, const Instr& in) {
    switch (in.op) {
      case Opcode::Alloca: {
        BInstr b = base(id, in, Op::Alloca);
        b.t0 = static_cast<uint32_t>(cm.allocaSlot[fid][id]);
        out.code.push_back(b);
        break;
      }
      case Opcode::Load: {
        int32_t slot = slotOf(in.ops[0]);
        if (slot >= 0) {
          BInstr b = base(id, in, Op::LoadSlot);
          b.t0 = static_cast<uint32_t>(slot);
          out.code.push_back(b);
        } else {
          BInstr b = base(id, in, Op::LoadRef);
          b.a = dec(in.ops[0]);
          if (in.ops[0].isReg() && fn.instrs[in.ops[0].reg].op == Opcode::FieldAddr)
            b.flags |= kNestedHandle;
          out.code.push_back(b);
        }
        break;
      }
      case Opcode::Store: {
        int32_t slot = slotOf(in.ops[1]);
        if (slot >= 0) {
          BInstr b = base(id, in, Op::StoreSlot);
          b.a = dec(in.ops[0]);
          b.t0 = static_cast<uint32_t>(slot);
          out.code.push_back(b);
        } else {
          BInstr b = base(id, in, Op::StoreRef);
          b.a = dec(in.ops[0]);
          b.b = dec(in.ops[1]);
          out.code.push_back(b);
        }
        break;
      }
      case Opcode::FieldAddr: {
        BInstr b = base(id, in, Op::FieldAddr);
        b.a = dec(in.ops[0]);
        b.imm = in.imm;
        out.code.push_back(b);
        break;
      }
      case Opcode::TupleAddr: {
        BInstr b = base(id, in, Op::TupleAddr);
        b.a = dec(in.ops[0]);
        if (in.ops.size() == 2) { b.b = dec(in.ops[1]); b.flags |= kDynIndex; }
        b.imm = in.imm;
        out.code.push_back(b);
        break;
      }
      case Opcode::IndexAddr: {
        BInstr b = base(id, in, Op::IndexAddr);
        if (in.imm & 1) b.flags |= kLinear;
        if (in.imm & 2) b.flags |= kStore;
        b.opBase = window(in.ops);
        b.nops = static_cast<uint32_t>(in.ops.size());
        out.code.push_back(b);
        break;
      }
      case Opcode::Bin: {
        BInstr b = base(id, in, Op::Bin);
        b.sub = static_cast<uint8_t>(in.extra.bin);
        b.rk = static_cast<uint8_t>(m.types().kindOf(in.type));
        b.a = dec(in.ops[0]);
        b.b = dec(in.ops[1]);
        out.code.push_back(b);
        break;
      }
      case Opcode::Un: {
        BInstr b = base(id, in, Op::Un);
        b.sub = static_cast<uint8_t>(in.extra.un);
        b.a = dec(in.ops[0]);
        out.code.push_back(b);
        break;
      }
      case Opcode::TupleMake: {
        BInstr b = base(id, in, Op::TupleMake);
        b.opBase = window(in.ops);
        b.nops = static_cast<uint32_t>(in.ops.size());
        out.code.push_back(b);
        break;
      }
      case Opcode::TupleGet: {
        BInstr b = base(id, in, Op::TupleGet);
        b.a = dec(in.ops[0]);
        if (in.ops.size() == 2) { b.b = dec(in.ops[1]); b.flags |= kDynIndex; }
        b.imm = in.imm;
        out.code.push_back(b);
        break;
      }
      case Opcode::RecordNew: {
        BInstr b = base(id, in, Op::RecordNew);
        b.t0 = in.type;
        b.imm = cost.profile().recordNewPerField * m.types().get(in.type).fields.size();
        out.code.push_back(b);
        break;
      }
      case Opcode::DomainMake: {
        BInstr b = base(id, in, Op::DomainMake);
        b.sub = static_cast<uint8_t>(in.imm);
        b.opBase = window(in.ops);
        b.nops = static_cast<uint32_t>(in.ops.size());
        out.code.push_back(b);
        break;
      }
      case Opcode::DomainExpand: {
        BInstr b = base(id, in, Op::DomainExpand);
        b.a = dec(in.ops[0]);
        b.b = dec(in.ops[1]);
        out.code.push_back(b);
        break;
      }
      case Opcode::DomainSize: {
        BInstr b = base(id, in, Op::DomainSize);
        b.a = dec(in.ops[0]);
        out.code.push_back(b);
        break;
      }
      case Opcode::DomainDim: {
        BInstr b = base(id, in, Op::DomainDim);
        b.a = dec(in.ops[0]);
        b.imm = in.imm;
        out.code.push_back(b);
        break;
      }
      case Opcode::ArrayNew: {
        BInstr b = base(id, in, Op::ArrayNew);
        b.a = dec(in.ops[0]);
        b.t0 = m.types().get(in.type).elem;
        out.code.push_back(b);
        break;
      }
      case Opcode::ArrayView: {
        BInstr b = base(id, in, Op::ArrayView);
        b.a = dec(in.ops[0]);
        b.b = dec(in.ops[1]);
        out.code.push_back(b);
        break;
      }
      case Opcode::Call: {
        BInstr b = base(id, in, Op::Call);
        b.opBase = window(in.ops);
        b.nops = static_cast<uint32_t>(in.ops.size());
        b.t0 = in.extra.func;
        out.code.push_back(b);
        break;
      }
      case Opcode::Ret: {
        BInstr b = base(id, in, Op::Ret);
        if (!in.ops.empty()) b.a = dec(in.ops[0]);
        out.code.push_back(b);
        break;
      }
      case Opcode::Br: {
        BInstr b = base(id, in, Op::Br);
        fixups.push_back({static_cast<uint32_t>(out.code.size()), false, in.target0});
        out.code.push_back(b);
        break;
      }
      case Opcode::CondBr: {
        BInstr b = base(id, in, Op::CondBr);
        b.a = dec(in.ops[0]);
        fixups.push_back({static_cast<uint32_t>(out.code.size()), false, in.target0});
        fixups.push_back({static_cast<uint32_t>(out.code.size()), true, in.target1});
        out.code.push_back(b);
        break;
      }
      case Opcode::Spawn: {
        BInstr b = base(id, in, Op::Spawn);
        b.sub = static_cast<uint8_t>(in.imm);
        b.opBase = window(in.ops);
        b.nops = static_cast<uint32_t>(in.ops.size());
        b.t0 = in.extra.func;
        b.t1 = planFor(in.extra.func);
        out.code.push_back(b);
        break;
      }
      case Opcode::IterOverhead:
        out.code.push_back(base(id, in, Op::IterOverhead));
        break;
      case Opcode::Builtin: {
        BInstr b = base(id, in, Op::Builtin);
        b.sub = static_cast<uint8_t>(in.extra.builtin);
        b.opBase = window(in.ops);
        b.nops = static_cast<uint32_t>(in.ops.size());
        out.code.push_back(b);
        break;
      }
    }
  }
};

}  // namespace

CompiledModule compile(const ir::Module& m, const CostModel& cost,
                       const std::vector<uint64_t>& icacheQ10) {
  CompiledModule cm;
  cm.allocaSlot.resize(m.numFunctions());
  cm.numSlots.assign(m.numFunctions(), 0);
  for (FuncId f = 0; f < m.numFunctions(); ++f) {
    const ir::Function& fn = m.function(f);
    cm.allocaSlot[f].assign(fn.numInstrs(), -1);
    uint32_t n = 0;
    for (InstrId i = 0; i < fn.numInstrs(); ++i)
      if (fn.instrs[i].op == Opcode::Alloca)
        cm.allocaSlot[f][i] = static_cast<int32_t>(n++);
    cm.numSlots[f] = n;
  }
  cm.funcs.resize(m.numFunctions());
  std::unordered_map<FuncId, uint32_t> planOf;
  for (FuncId f = 0; f < m.numFunctions(); ++f) {
    FnCompiler fc(m, f, cm, cost, icacheQ10[f], planOf);
    fc.compile();
    cm.funcs[f] = std::move(fc.out);
  }
  return cm;
}

}  // namespace cb::rt::bc
