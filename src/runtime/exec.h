// Bytecode execution engine entry point.
//
// The engine executes the flat pre-decoded form produced by
// src/runtime/bytecode.h and is the default for rt::execute(); the
// tree-walking interpreter in interp.cpp remains available behind
// RunOptions::referenceInterp as the correctness oracle. Both must produce
// bit-identical RunResults (same RunLog, cycles, output, errors).
#pragma once

#include "runtime/interp.h"

namespace cb::rt {

RunResult executeBytecode(const ir::Module& m, const RunOptions& opts);

}  // namespace cb::rt
