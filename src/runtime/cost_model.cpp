#include "runtime/cost_model.h"

namespace cb::rt {

CostProfile CostProfile::fast() {
  CostProfile p;
  // Optimized codegen: scalar ops pipelined, stack traffic largely in
  // registers, inlined address math, leaner tasking/iterator protocol.
  p.addSub = 1;
  p.mul = 1;
  p.div = 12;
  p.mod = 12;
  p.pow = 25;
  p.load = 1;
  p.store = 1;
  p.fieldAddr = 1;
  p.tupleAddr = 0;
  p.indexBase = 1;
  p.indexPerDim = 1;
  p.indexLinear = 1;
  p.viewIndexExtra = 6;
  p.nestedArrayHandle = 30;
  p.tupleMakeBase = 3;
  p.tupleMakePerElem = 2;
  p.tupleGet = 0;
  p.tupleDynAccess = 3;
  p.recordNewBase = 3;
  p.recordNewPerField = 1;
  p.domainMake = 4;
  p.domainExpand = 3;
  p.domainQuery = 1;
  p.arrayNewBase = 180;   // allocation itself barely improves
  p.arrayNewPerElem = 40;
  p.arrayViewBase = 150;
  p.arrayFillPerElem = 1;
  p.arrayCopyPerElem = 1;
  p.branch = 0;
  p.condBranch = 1;
  p.ret = 1;
  p.callOverhead = 6;
  p.spawnBase = 300;
  p.spawnPerTask = 90;
  p.iterOverheadPerIterand = 68;
  p.writelnBase = 200;
  // Comm costs barely improve with --fast: they model network latency, not
  // generated code quality.
  p.remoteGet = 550;
  p.remotePut = 650;
  p.onFork = 850;
  p.aggFlushLatency = 550;
  p.aggPerElemBandwidth = 2;
  p.aggBufferCap = 64;
  p.aggCopyLocal = 3;
  return p;
}

CostProfile CostProfile::bandwidthCeiling(bool fastCodegen) {
  CostProfile p = fastCodegen ? fast() : standard();
  // Memory roof, calibrated on Table V row 4 (CLOMP 1024 parts x 64 zones:
  // the optimized flat zone array is 512KB, past cache residency, while
  // rows 1-3 and every nested per-part array stay cache-resident). The rate
  // makes the roofline floor land just above the nested version's per-zone
  // cost, collapsing the row-4 speedup to the paper's band without touching
  // rows 1-3 (their arrays never leave cache). Calibrated by sweeping the
  // rate on bench_table5_clomp_speedup: 1165 lands the standard row-4
  // speedup on 1.10x (paper: 1.10) and 4990 lands fast on 1.96x (paper:
  // 1.96); rows 1-3 are bit-identical to the latency-only profile.
  p.memBandwidthBytesPerKCycle = fastCodegen ? 4990 : 1165;
  p.memBandwidthBurstBytes = 256;
  p.memCacheResidentBytes = 256 * 1024;
  // Network injection ceiling: a remote element costs its latency leg plus
  // 8 bytes from the per-stream injection allowance, so remote-dense loops
  // saturate and report bandwidth-bound stall cycles instead of scaling
  // with latency alone (the weak-scaling regime of bench_weak_scale).
  p.netInjectionBytesPerKCycle = 64;
  p.netInjectionBurstBytes = 512;
  p.netElemBytes = 8;
  // Owner contention: hammering one home locale beyond 8 back-to-back
  // transfers inside an 8192-cycle window stalls for a fraction of the
  // remote latency per excess hit. The window is sized against the remote
  // latencies (600/700 cycles): bare same-owner accesses arrive ~600-700
  // cycles apart, ~12 per window, so sustained single-owner streams pay the
  // hot-spot penalty while rotating-owner traffic never trips it.
  p.netContentionWindowCycles = 8192;
  p.netContentionFreePerWindow = 8;
  p.netContentionStallCycles = 150;
  return p;
}

uint64_t CostModel::cost(const ir::Instr& in) const {
  using ir::Opcode;
  switch (in.op) {
    case Opcode::Alloca: return 1;
    case Opcode::Load: return p_.load;
    case Opcode::Store: return p_.store;
    case Opcode::FieldAddr: return p_.fieldAddr;
    case Opcode::TupleAddr:
      return in.ops.size() == 2 ? p_.tupleDynAccess : p_.tupleAddr;
    case Opcode::IndexAddr: {
      if (in.imm & 1) return p_.indexLinear;  // linear iteration mode
      uint32_t dims = static_cast<uint32_t>(in.ops.size()) - 1;
      return p_.indexBase + p_.indexPerDim * dims;
    }
    case Opcode::Bin:
      switch (in.extra.bin) {
        case ir::BinKind::Add:
        case ir::BinKind::Sub: return p_.addSub;
        case ir::BinKind::Mul: return p_.mul;
        case ir::BinKind::Div: return p_.div;
        case ir::BinKind::Mod: return p_.mod;
        case ir::BinKind::Pow: return p_.pow;
        case ir::BinKind::Min:
        case ir::BinKind::Max: return p_.minmax;
        case ir::BinKind::And:
        case ir::BinKind::Or: return p_.logical;
        default: return p_.cmp;
      }
    case Opcode::Un:
      switch (in.extra.un) {
        case ir::UnKind::Neg: return p_.neg;
        case ir::UnKind::Not: return p_.neg;
        case ir::UnKind::IntToReal:
        case ir::UnKind::RealToInt:
        case ir::UnKind::Floor: return p_.conv;
        case ir::UnKind::Sqrt: return p_.sqrtC;
        case ir::UnKind::Abs: return p_.absC;
        default: return p_.trig;
      }
    case Opcode::TupleMake:
      return p_.tupleMakeBase + p_.tupleMakePerElem * in.ops.size();
    case Opcode::TupleGet:
      return in.ops.size() == 2 ? p_.tupleDynAccess : p_.tupleGet;
    case Opcode::RecordNew: return p_.recordNewBase;  // + per-field, charged dynamically
    case Opcode::DomainMake: return p_.domainMake;
    case Opcode::DomainExpand: return p_.domainExpand;
    case Opcode::DomainSize:
    case Opcode::DomainDim: return p_.domainQuery;
    case Opcode::ArrayNew: return p_.arrayNewBase;  // + per-elem, charged dynamically
    case Opcode::ArrayView: return p_.arrayViewBase;
    case Opcode::Call: return p_.callOverhead;
    case Opcode::Ret: return p_.ret;
    case Opcode::Br: return p_.branch;
    case Opcode::CondBr: return p_.condBranch;
    case Opcode::Spawn: return p_.spawnBase;  // + per-task, charged dynamically
    case Opcode::IterOverhead: return p_.iterOverheadPerIterand * in.imm;
    case Opcode::Builtin:
      switch (in.extra.builtin) {
        case ir::BuiltinKind::Writeln: return p_.writelnBase;
        case ir::BuiltinKind::Random: return p_.randomC;
        case ir::BuiltinKind::Clock: return p_.clockC;
        case ir::BuiltinKind::Yield: return p_.yieldC;
        case ir::BuiltinKind::ConfigGet: return p_.configGet;
        case ir::BuiltinKind::ArrayFill:
        case ir::BuiltinKind::ArrayCopy: return 4;  // + per-elem dynamically
        case ir::BuiltinKind::Dmapped: return p_.domainMake;
        case ir::BuiltinKind::OnBegin: return 2;  // + onFork dynamically if remote
        case ir::BuiltinKind::OnEnd: return 1;
        case ir::BuiltinKind::HereId:
        case ir::BuiltinKind::NumLocales: return 1;
        case ir::BuiltinKind::AggOpen: return 6;   // buffer setup
        case ir::BuiltinKind::AggCopy: return p_.aggCopyLocal;  // + flush dynamically
        case ir::BuiltinKind::AggClose: return 2;  // + final flushes dynamically
        default: return 1;
      }
  }
  return 1;
}

}  // namespace cb::rt
