// CIR interpreter with a deterministic task scheduler and virtual-PMU
// sampling — the stand-in for the Chapel runtime + qthreads + PAPI + the
// Dyninst monitoring process.
//
// Execution model:
//  - The main thread is stream 0; `numWorkers` worker streams are 1..W.
//  - Spawn from the main thread distributes tasks round-robin over workers;
//    each worker executes its tasks serially on its own virtual clock. The
//    region ends at the max worker clock; the main clock jumps there, and
//    worker idle time is charged to synthetic runtime frames (__sched_yield
//    et al. — the Fig. 4 story). Nested spawns execute inline on the
//    spawning stream (a saturated pool).
//  - Every spawn gets a unique tag and a recorded pre-spawn stack; samples
//    taken inside tasks carry the tag so the post-mortem step can glue full
//    call paths (§IV.B).
// Determinism: everything (scheduling, sampling, RNG) is a pure function of
// the module + options, so every paper table reproduces exactly.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/module.h"
#include "runtime/cost_model.h"
#include "runtime/value.h"
#include "sampling/sample.h"
#include "support/rng.h"

namespace cb::rt {

struct RunOptions {
  /// PMU overflow threshold in virtual cycles (0 disables sampling). The
  /// default is prime, like the paper's 608,888,809.
  uint64_t sampleThreshold = 9973;
  uint32_t numWorkers = 12;
  bool fastCostProfile = false;   // pair with the --fast compile pipeline
  bool sampleIdle = true;         // emit __sched_yield samples for idle workers
  bool echoWriteln = false;       // also print program output to stdout
  std::unordered_map<std::string, std::string> configOverrides;
  uint64_t rngSeed = 0x5eedULL;
  uint64_t maxInstructions = 4000000000ULL;  // runaway guard
  /// PMU skid: the sampled instruction pointer lands this many instructions
  /// AFTER the overflowing one (real PMUs overshoot; the paper notes skid
  /// as a known issue and leaves compensation to future work, §IV.B).
  /// 0 = precise sampling (the default, as if ProfileMe-style).
  uint32_t skidInstructions = 0;
  /// Full cost-profile override (calibration/ablation); when set it takes
  /// precedence over fastCostProfile.
  std::optional<CostProfile> costProfileOverride;
  /// Engine selection. The default engine pre-compiles each function to a
  /// flat bytecode with pre-decoded operands and fused superinstructions
  /// (src/runtime/bytecode.h, src/runtime/exec.cpp). Setting this flag runs
  /// the original tree-walking CIR interpreter instead — kept as the
  /// correctness oracle, mirroring BlameOptions::referenceFixpoint. Both
  /// engines produce bit-identical RunLogs.
  bool referenceInterp = false;
  /// OS threads used for deterministic parallel replay of worker streams in
  /// the bytecode engine. 0 = auto (min(numWorkers, hardware)); 1 = fully
  /// sequential execution. Any value yields a bit-identical RunLog: only
  /// provably independent forall/coforall regions replay in parallel, and
  /// their per-stream artefacts are merged in canonical task order.
  uint32_t replayThreads = 0;
  /// Simulated PGAS locale count (SPMD: profileMultiLocale runs the program
  /// once per locale) and the id of the locale this run models. `on` blocks
  /// switch the current locale dynamically; `dmapped` domains partition
  /// array ownership across `numLocales`; accesses whose owner differs from
  /// the current locale are charged remote GET/PUT costs.
  uint32_t numLocales = 1;
  uint32_t localeId = 0;
  /// Record the exact per-site cycle split of every task span (plus the
  /// per-charge ceil-scaled sums for the causal what-if factor set) in
  /// RunLog::taskSpans[*].sites. Spans themselves are always recorded; this
  /// only gates the per-site maps, which cost a hash probe per charge.
  bool trackCausalSites = false;
  /// Ground-truth causal oracle: scale every cycle charge whose site is in
  /// `sites` to ceil(c * den / num) at charge time (num/den = the speedup
  /// factor k; num == 0 means k = ∞, i.e. the charge becomes 0). Empty
  /// `sites` disables scaling. The re-run's schedule stays the recorded one
  /// whenever the program's control flow is cycle-independent (no clock()
  /// feedback), which makes analysis/causal.h predictions exactly checkable.
  struct CausalScale {
    std::vector<uint64_t> sites;  // RunLog::siteKey values
    uint32_t num = 1;             // speedup numerator (0 = infinite speedup)
    uint32_t den = 1;             // speedup denominator
  } causalScale;
};

struct RunResult {
  sampling::RunLog log;
  uint64_t totalCycles = 0;           // main-thread end-to-end virtual time
  uint64_t instructionsExecuted = 0;
  std::string output;                 // accumulated writeln text
  /// Exclusive busy cycles per function (ground truth for validating the
  /// sampling-based views).
  std::vector<uint64_t> cyclesPerFunction;
  bool ok = false;
  std::string error;                  // runtime error message when !ok
  /// Diagnostics only (never part of the RunLog comparison): number of
  /// top-level spawn regions the bytecode engine replayed on OS threads.
  /// Always 0 for the reference interpreter and for replayThreads == 1.
  uint64_t parallelRegionsReplayed = 0;
};

/// Compiles nothing — executes an already-lowered module under monitoring.
RunResult execute(const ir::Module& m, const RunOptions& opts);

}  // namespace cb::rt
