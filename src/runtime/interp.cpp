#include "runtime/interp.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

#include "analysis/race.h"
#include "runtime/bandwidth.h"
#include "runtime/exec.h"
#include "support/common.h"

namespace cb::rt {

using ir::BuiltinKind;
using ir::FuncId;
using ir::Instr;
using ir::InstrId;
using ir::Opcode;
using ir::TypeId;
using ir::TypeKind;
using ir::ValueRef;

namespace {

struct RuntimeError {
  std::string message;
  SourceLoc loc;
};

class Interp {
 public:
  Interp(const ir::Module& m, const RunOptions& opts)
      : m_(m),
        opts_(opts),
        cost_(opts.costProfileOverride
                  ? *opts.costProfileOverride
                  : (opts.fastCostProfile ? CostProfile::fast() : CostProfile::standard())),
        pmu_(opts.sampleThreshold, opts.numWorkers + 1),
        rng_(opts.rngSeed),
        curLocale_(opts.localeId) {
    // Precompute alloca -> slot maps per function.
    allocaSlot_.resize(m.numFunctions());
    numSlots_.resize(m.numFunctions(), 0);
    for (FuncId f = 0; f < m.numFunctions(); ++f) {
      const ir::Function& fn = m.function(f);
      allocaSlot_[f].assign(fn.numInstrs(), -1);
      uint32_t n = 0;
      for (InstrId i = 0; i < fn.numInstrs(); ++i)
        if (fn.instrs[i].op == Opcode::Alloca) allocaSlot_[f][i] = static_cast<int32_t>(n++);
      numSlots_[f] = n;
    }
    result_.cyclesPerFunction.assign(m.numFunctions(), 0);
    result_.log.sampleThreshold = opts.sampleThreshold;
    result_.log.numStreams = opts.numWorkers + 1;
    lastBusyEnd_.assign(opts.numWorkers + 1, 0);
    limits0_ = BwLimits::forStream(cost_.profile(), 0, opts.numWorkers);
    limitsW_ = BwLimits::forStream(cost_.profile(), 1, opts.numWorkers);
    bwEnabled_ = limits0_.enabled();
    bw_.reset(0, limits0_);
    // Instruction-footprint multiplier per function (Q10 fixed point).
    const CostProfile& p = cost_.profile();
    icacheQ10_.assign(m.numFunctions(), 1024);
    for (FuncId f = 0; f < m.numFunctions(); ++f) {
      uint64_t n = m.function(f).numInstrs();
      if (n > p.icacheThresholdInstrs) {
        uint64_t extra = (n - p.icacheThresholdInstrs) * p.icacheSlopeQ10;
        icacheQ10_[f] = 1024 + std::min(p.icacheMaxQ10, extra);
      }
    }
    causalTrack_ = opts.trackCausalSites;
    causalScaleSites_.insert(opts.causalScale.sites.begin(), opts.causalScale.sites.end());
    causalScaleOn_ = !causalScaleSites_.empty();
    causalNum_ = opts.causalScale.num;
    causalDen_ = opts.causalScale.den;
    causalActive_ = causalTrack_ || causalScaleOn_;
    if (causalTrack_) {
      // Dense site index (fid, instr) -> siteBase_[fid] + instr, so the
      // per-charge accumulation is a flat array slot instead of a hash probe
      // (the bytecode engine keeps the identical structure).
      siteBase_.assign(m.numFunctions() + 1, 0);
      for (FuncId f = 0; f < m.numFunctions(); ++f)
        siteBase_[f + 1] = siteBase_[f] + static_cast<uint32_t>(m.function(f).numInstrs());
      acc_.init(siteBase_);
    }
  }

  RunResult run() {
    try {
      if (m_.moduleInitFunc != ir::kNone) callFunction(m_.moduleInitFunc, {});
      CB_ASSERT(m_.mainFunc != ir::kNone, "module has no main");
      callFunction(m_.mainFunc, {});
      flushSkid();
      // Final stretch of worker idle time, up to program end.
      for (uint32_t ws = 1; ws <= opts_.numWorkers; ++ws)
        emitIdleSamples(ws, lastBusyEnd_[ws], pmu_.clock(0));
      closeSerialSpan(pmu_.clock(0));
      result_.ok = true;
    } catch (const RuntimeError& e) {
      result_.ok = false;
      result_.error = m_.sourceManager().render(e.loc) + ": " + e.message;
    }
    result_.totalCycles = pmu_.clock(0);
    result_.log.totalCycles = result_.totalCycles;
    return std::move(result_);
  }

 private:
  struct Frame {
    FuncId fid = ir::kNone;
    const ir::Function* fn = nullptr;
    std::vector<Value> regs;
    std::vector<Value> slots;
    std::vector<Value> args;
    InstrId curInstr = 0;
  };

  [[noreturn]] void fail(const std::string& msg, SourceLoc loc) const {
    throw RuntimeError{msg, loc};
  }

  // ---- cost / sampling ----------------------------------------------------

  /// The causal hook mirrors the bytecode engine's: scale the charge when
  /// its site carries a what-if speedup (the ground-truth oracle re-run),
  /// then accrue the per-site split of the current task span. The site is
  /// the leaf frame's instruction pointer — the same derivation emitSample
  /// uses for the leaf, and identical in the bytecode engine.
  void charge(uint64_t c) {
    if (__builtin_expect(causalActive_, 0) && !stack_.empty()) {
      const Frame* fr = stack_.back();
      if (causalScaleOn_ &&
          causalScaleSites_.count(sampling::RunLog::siteKey(fr->fid, fr->curInstr)) != 0)
        c = causalScaledCost(c, causalNum_, causalDen_);
      if (causalTrack_ && c != 0) acc_.charge(siteBase_[fr->fid] + fr->curInstr, c);
    }
    if (!stack_.empty()) result_.cyclesPerFunction[stack_.back()->fid] += c;
    uint32_t overflows = pmu_.advance(curStream_, c);
    for (uint32_t k = 0; k < overflows; ++k) {
      if (opts_.skidInstructions == 0) emitSample();
      else skidQueue_.push_back(opts_.skidInstructions);
    }
  }

  // ---- task spans -----------------------------------------------------------

  /// Appends one span to the log, in completion order (which IS the canonical
  /// emission order: nested spans complete before their enclosing chunk, and
  /// the serial segment is closed at the fork before any chunk span).
  /// `takeSites` moves the accrued per-site split into the span (sorted,
  /// all-zero entries dropped) — false for nested spans, whose cycles stay
  /// accrued to the enclosing top-level segment.
  void pushSpan(uint64_t tag, uint32_t chunk, uint32_t stream, uint64_t start, uint64_t end,
                bool takeSites) {
    sampling::TaskSpan sp;
    sp.tag = tag;
    sp.chunk = chunk;
    sp.stream = stream;
    sp.startCycle = start;
    sp.endCycle = end;
    if (takeSites && causalTrack_) {
      sp.sites.reserve(acc_.lastDrainCount());
      acc_.drain([&sp](uint32_t fid, uint32_t instr, uint64_t raw, uint64_t s125,
                       uint64_t s2, uint64_t s4) {
        sp.sites.push_back({sampling::RunLog::siteKey(fid, instr), raw, s125, s2, s4});
      });
    }
    result_.log.taskSpans.push_back(std::move(sp));
  }

  /// Closes the open main-stream serial segment at `end` (eliding zero-length
  /// segments) and re-opens it there.
  void closeSerialSpan(uint64_t end) {
    if (end > serialStart_) {
      pushSpan(0, 0, 0, serialStart_, end, true);
    } else if (causalTrack_) {
      acc_.discard();
    }
    serialStart_ = end;
  }

  /// Called once per executed instruction: ages pending skidded samples and
  /// emits those whose skid distance has elapsed (at the CURRENT, i.e.
  /// overshot, instruction pointer).
  void tickSkid() {
    if (skidQueue_.empty()) return;
    size_t w = 0;
    for (size_t r = 0; r < skidQueue_.size(); ++r) {
      if (--skidQueue_[r] == 0) emitSample();
      else skidQueue_[w++] = skidQueue_[r];
    }
    skidQueue_.resize(w);
  }

  /// Emits pending skidded samples before the stream/task context changes.
  void flushSkid() {
    for (size_t k = 0; k < skidQueue_.size(); ++k) emitSample();
    skidQueue_.clear();
  }

  void emitSample() {
    // Parent frames are suspended at their callsite, so between frame
    // pushes/pops only the leaf's instruction pointer moves: reuse the
    // resolved stack from the previous sample and patch the leaf.
    if (cachedStackGen_ != stackGen_) {
      cachedStack_.clear();
      cachedStack_.reserve(stack_.size());
      for (const Frame* fr : stack_) cachedStack_.push_back({fr->fid, fr->curInstr});
      cachedStackGen_ = stackGen_;
    } else if (!cachedStack_.empty()) {
      cachedStack_.back().instr = stack_.back()->curInstr;
    }
    sampling::RawSample s;
    s.stream = curStream_;
    s.taskTag = curTaskTag_;
    s.atCycle = pmu_.clock(curStream_);
    s.accessKind = pendingAccess_;
    s.srcLocale = pendingSrc_;
    s.dstLocale = pendingDst_;
    s.stack = cachedStack_;
    result_.log.samples.push_back(std::move(s));
    pendingAccess_ = sampling::AccessKind::None;  // consumed by this sample
    pendingSrc_ = pendingDst_ = 0;
  }

  void emitIdleSamples(uint32_t stream, uint64_t from, uint64_t to) {
    if (!opts_.sampleIdle || opts_.sampleThreshold == 0) return;
    // Idle workers still burn cycles in the tasking layer; attribute them to
    // the runtime frames gperftools reports (Fig. 4 ratios: mostly
    // __sched_yield, some pthread machinery, a little chpl task yield).
    uint64_t th = opts_.sampleThreshold;
    uint64_t first = (from / th + 1) * th;
    for (uint64_t t = first; t <= to; t += th) {
      sampling::RawSample s;
      s.stream = stream;
      s.atCycle = t;
      uint64_t k = idleSampleCounter_++;
      if (k % 20 == 19) s.runtimeFrame = sampling::RuntimeFrameKind::ChplTaskYield;
      else if (k % 20 >= 17) s.runtimeFrame = sampling::RuntimeFrameKind::PthreadState;
      else s.runtimeFrame = sampling::RuntimeFrameKind::SchedYield;
      result_.log.samples.push_back(std::move(s));
    }
  }

  /// Classifies one array element access for the PGAS simulation: resolves
  /// the owning locale of dim-0 coordinate `idx0` via the owning array's
  /// domain (views defer to their base) and, when the owner differs from the
  /// executing locale, charges the remote GET/PUT cost and bumps the exact
  /// comm counters. The classification is left pending for the next sample.
  void noteArrayAccess(const ArrayObj* arr, int64_t idx0, bool isStore) {
    const ArrayObj* own = arr->base ? arr->base.get() : arr;
    const DomainVal& od = own->dom;
    int64_t owner;
    if (od.distKind != 0 && od.distLocales > 1 && (owner = od.ownerOf(idx0)) != curLocale_) {
      pendingSrc_ = static_cast<int32_t>(curLocale_);
      pendingDst_ = static_cast<int32_t>(owner);
      ++result_.log.commMatrix[sampling::RunLog::pairKey(curLocale_, owner)];
      if (isStore) {
        pendingAccess_ = sampling::AccessKind::RemotePut;
        ++result_.log.commPuts;
        charge(cost_.profile().remotePut);
      } else {
        pendingAccess_ = sampling::AccessKind::RemoteGet;
        ++result_.log.commGets;
        charge(cost_.profile().remoteGet);
      }
      if (bwEnabled_) chargeNetBw(owner, bwLimits().netElemBytes);
    } else {
      pendingAccess_ = sampling::AccessKind::Local;
      pendingSrc_ = pendingDst_ = 0;
      if (bwEnabled_) chargeLocalBw(own);
    }
  }

  // ---- bandwidth ceilings ---------------------------------------------------

  const BwLimits& bwLimits() const { return curStream_ == 0 ? limits0_ : limitsW_; }

  /// Charges the network-side ceilings for one remote transfer of `bytes`
  /// toward locale `peer`: first the owner-contention hit, then the
  /// injection-bandwidth token bucket. Stall cycles are charged to the
  /// stream (so samples landing inside them blame the pending access) and
  /// counted separately so blame can split latency- from bandwidth-bound.
  void chargeNetBw(int64_t peer, uint64_t bytes) {
    const BwLimits& lim = bwLimits();
    uint64_t cs = bw_.cont.note(pmu_.clock(curStream_), peer, lim);
    if (cs) {
      result_.log.commContentionCycles += cs;
      charge(cs);
    }
    uint64_t ns = bw_.net.consume(pmu_.clock(curStream_), bytes, lim.netRate, lim.netBurstQ);
    if (ns) {
      result_.log.commNetStallCycles += ns;
      charge(ns);
    }
  }

  /// Charges the local memory-bandwidth roof for one element access against
  /// a streaming (cache-busting) array. Cache-resident arrays carry
  /// streamBytes == 0 and stay free.
  void chargeLocalBw(const ArrayObj* own) {
    const BwLimits& lim = bwLimits();
    if (lim.memRate == 0 || own->streamBytes == 0) return;
    uint64_t ms =
        bw_.mem.consume(pmu_.clock(curStream_), own->streamBytes, lim.memRate, lim.memBurstQ);
    if (ms) {
      result_.log.commMemStallCycles += ms;
      charge(ms);
    }
  }

  // ---- values ---------------------------------------------------------------

  Value evalOp(Frame& fr, const ValueRef& v) {
    switch (v.kind) {
      case ValueRef::Kind::Reg: return fr.regs[v.reg];
      case ValueRef::Kind::Arg: return fr.args[v.arg];
      case ValueRef::Kind::GlobalAddr: return Value::makeRef(&globals_[v.global]);
      case ValueRef::Kind::ConstInt: return Value::makeInt(v.i);
      case ValueRef::Kind::ConstReal: return Value::makeReal(v.r);
      case ValueRef::Kind::ConstBool: return Value::makeBool(v.b);
      case ValueRef::Kind::ConstString: return Value::makeStr(m_.string(v.stringId));
      case ValueRef::Kind::None: return Value{};
    }
    return Value{};
  }

  Value* refOf(Frame& fr, const ValueRef& v, SourceLoc loc) {
    Value x = evalOp(fr, v);
    if (x.kind != VKind::Ref) fail("expected an address value", loc);
    return x.ref;
  }

  Value defaultValue(TypeId t) {
    const ir::Type& ty = m_.types().get(t);
    switch (ty.kind) {
      case TypeKind::Int: return Value::makeInt(0);
      case TypeKind::Real: return Value::makeReal(0.0);
      case TypeKind::Bool: return Value::makeBool(false);
      case TypeKind::String: return Value::makeStr("");
      case TypeKind::Domain: return Value::makeDomain(DomainVal{});
      case TypeKind::Tuple: {
        Value v;
        v.kind = VKind::Tuple;
        v.elems.reserve(ty.elems.size());
        for (TypeId e : ty.elems) v.elems.push_back(defaultValue(e));
        return v;
      }
      case TypeKind::Record: {
        Value v;
        v.kind = VKind::Record;
        v.elems.reserve(ty.fields.size());
        for (uint32_t i = 0; i < ty.fields.size(); ++i) {
          TypeId ft = ty.fields[i].type;
          if (m_.types().kindOf(ft) == TypeKind::Array) {
            auto th = m_.fieldDomainThunks.find({t, i});
            if (th != m_.fieldDomainThunks.end()) {
              Value dom = callFunction(th->second, {});
              v.elems.push_back(makeArray(dom.dom, m_.types().get(ft).elem, ir::kNone, 0));
            } else {
              Value empty;
              empty.kind = VKind::Array;
              v.elems.push_back(std::move(empty));
            }
          } else {
            v.elems.push_back(defaultValue(ft));
          }
        }
        return v;
      }
      case TypeKind::Array: {
        Value v;
        v.kind = VKind::Array;
        return v;  // empty handle; real arrays come from ArrayNew
      }
      default:
        return Value{};
    }
  }

  /// Scalar slots of a type — array allocation/default-init cost scales
  /// with it (a [Elems] 8*real zero-fills 8 reals per element).
  uint64_t scalarWidth(TypeId t) {
    const ir::Type& ty = m_.types().get(t);
    switch (ty.kind) {
      case TypeKind::Tuple: {
        uint64_t w = 0;
        for (TypeId e : ty.elems) w += scalarWidth(e);
        return w;
      }
      case TypeKind::Record: {
        uint64_t w = 0;
        for (const ir::RecordField& f : ty.fields) w += scalarWidth(f.type);
        return w;
      }
      default:
        return 1;
    }
  }

  /// True when a type's default value owns array storage (so elements may
  /// NOT share a copied prototype).
  bool typeOwnsArrays(TypeId t) {
    const ir::Type& ty = m_.types().get(t);
    switch (ty.kind) {
      case TypeKind::Array:
        return true;
      case TypeKind::Tuple:
        for (TypeId e : ty.elems)
          if (typeOwnsArrays(e)) return true;
        return false;
      case TypeKind::Record:
        for (const ir::RecordField& f : ty.fields)
          if (typeOwnsArrays(f.type)) return true;
        return false;
      default:
        return false;
    }
  }

  Value makeArray(const DomainVal& dom, TypeId elemTy, FuncId allocFn, InstrId allocInstr) {
    int64_t n = dom.size();
    auto obj = std::make_shared<ArrayObj>();
    obj->dom = dom;
    uint64_t width = scalarWidth(elemTy);
    const CostProfile& prof = cost_.profile();
    if (prof.memBandwidthBytesPerKCycle != 0 &&
        static_cast<uint64_t>(n) * width * 8 > prof.memCacheResidentBytes)
      obj->streamBytes = static_cast<uint32_t>(8 * width);
    obj->data.reserve(static_cast<size_t>(n));
    if (n > 0) {
      if (typeOwnsArrays(elemTy)) {
        // Elements own nested array storage: each needs a fresh default
        // (copying a prototype would alias one shared inner array).
        for (int64_t k = 0; k < n; ++k) obj->data.push_back(defaultValue(elemTy));
      } else {
        Value proto = defaultValue(elemTy);
        for (int64_t k = 0; k < n; ++k) obj->data.push_back(proto);
      }
    }
    charge(prof.arrayNewPerElem * static_cast<uint64_t>(n) * width);
    Value v;
    v.kind = VKind::Array;
    v.arr = std::move(obj);
    if (allocFn != ir::kNone) {
      uint64_t key = sampling::RunLog::siteKey(allocFn, allocInstr);
      uint64_t bytes = v.arr->approxBytes();
      auto& slot = result_.log.allocBytesBySite[key];
      if (bytes > slot) slot = bytes;
    }
    return v;
  }

  // ---- calls ----------------------------------------------------------------

  Value callFunction(FuncId f, std::vector<Value> args) {
    const ir::Function& fn = m_.function(f);
    Frame fr;
    fr.fid = f;
    fr.fn = &fn;
    fr.args = std::move(args);
    fr.regs.resize(fn.numInstrs());
    fr.slots.resize(numSlots_[f]);
    stack_.push_back(&fr);
    ++stackGen_;
    // `on` blocks are lexically scoped: a return from inside one must not
    // leak the switched locale into the caller.
    int64_t savedLocale = curLocale_;
    size_t savedOnDepth = onStack_.size();
    Value ret = execFrame(fr);
    curLocale_ = savedLocale;
    onStack_.resize(savedOnDepth);
    stack_.pop_back();
    ++stackGen_;
    return ret;
  }

  Value execFrame(Frame& fr) {
    const ir::Function& fn = *fr.fn;
    ir::BlockId block = 0;
    size_t ip = 0;
    for (;;) {
      const ir::BasicBlock& bb = fn.blocks[block];
      if (ip >= bb.instrs.size()) fail("fell off block end", fn.loc);
      InstrId id = bb.instrs[ip];
      const Instr& in = fn.instrs[id];
      fr.curInstr = id;
      if (++result_.instructionsExecuted > opts_.maxInstructions)
        fail("instruction budget exceeded", in.loc);
      if (opts_.skidInstructions != 0) tickSkid();
      charge((cost_.cost(in) * icacheQ10_[fr.fid]) >> 10);

      switch (in.op) {
        case Opcode::Alloca: {
          int32_t slot = allocaSlot_[fr.fid][id];
          fr.regs[id] = Value::makeRef(&fr.slots[slot]);
          break;
        }
        case Opcode::Load: {
          Value* p = refOf(fr, in.ops[0], in.loc);
          // Array handles fetched out of record fields are dependent
          // pointer chases through nested descriptors.
          if (p->kind == VKind::Array && in.ops[0].kind == ValueRef::Kind::Reg &&
              fn.instrs[in.ops[0].reg].op == Opcode::FieldAddr)
            charge(cost_.profile().nestedArrayHandle);
          fr.regs[id] = *p;
          break;
        }
        case Opcode::Store: {
          Value* p = refOf(fr, in.ops[1], in.loc);
          *p = evalOp(fr, in.ops[0]);
          break;
        }
        case Opcode::FieldAddr: {
          Value* rec = refOf(fr, in.ops[0], in.loc);
          if (rec->kind != VKind::Record || in.imm >= rec->elems.size())
            fail("bad field access", in.loc);
          fr.regs[id] = Value::makeRef(&rec->elems[in.imm]);
          break;
        }
        case Opcode::TupleAddr: {
          Value* tup = refOf(fr, in.ops[0], in.loc);
          if (tup->kind != VKind::Tuple) fail("bad tuple element access", in.loc);
          uint64_t idx =
              in.ops.size() == 2
                  ? static_cast<uint64_t>(evalOp(fr, in.ops[1]).asInt() - 1)  // 1-based
                  : in.imm;
          if (idx >= tup->elems.size()) fail("tuple index out of range", in.loc);
          fr.regs[id] = Value::makeRef(&tup->elems[idx]);
          break;
        }
        case Opcode::IndexAddr: {
          Value base = evalOp(fr, in.ops[0]);
          if (base.kind != VKind::Array || !base.arr) fail("indexing a non-array", in.loc);
          Value* p = nullptr;
          int64_t idx0 = 0;
          if (in.imm & 1) {
            int64_t k = evalOp(fr, in.ops[1]).asInt();
            p = base.arr->atLinear(k);
            if (p) {
              int64_t idx[3];
              base.arr->dom.delinearize(k, idx);
              idx0 = idx[0];
            }
          } else {
            int64_t idx[3] = {0, 0, 0};
            int n = static_cast<int>(in.ops.size()) - 1;
            for (int d = 0; d < n; ++d) idx[d] = evalOp(fr, in.ops[d + 1]).asInt();
            p = base.arr->at(idx);
            idx0 = idx[0];
          }
          if (!p) fail("array index out of bounds", in.loc);
          if (base.arr->isView()) charge(cost_.profile().viewIndexExtra);
          noteArrayAccess(base.arr.get(), idx0, (in.imm & 2) != 0);
          fr.regs[id] = Value::makeRef(p);
          break;
        }
        case Opcode::Bin: execBin(fr, id, in); break;
        case Opcode::Un: execUn(fr, id, in); break;
        case Opcode::TupleMake: {
          Value v;
          v.kind = VKind::Tuple;
          v.elems.reserve(in.ops.size());
          for (const ValueRef& o : in.ops) v.elems.push_back(evalOp(fr, o));
          fr.regs[id] = std::move(v);
          break;
        }
        case Opcode::TupleGet: {
          Value t = evalOp(fr, in.ops[0]);
          if (t.kind != VKind::Tuple && t.kind != VKind::Record)
            fail("tuple access on non-tuple", in.loc);
          uint64_t idx =
              in.ops.size() == 2
                  ? static_cast<uint64_t>(evalOp(fr, in.ops[1]).asInt() - 1)  // 1-based
                  : in.imm;
          if (idx >= t.elems.size()) fail("tuple index out of range", in.loc);
          fr.regs[id] = t.elems[idx];
          break;
        }
        case Opcode::RecordNew: {
          charge(cost_.profile().recordNewPerField *
                 m_.types().get(in.type).fields.size());
          fr.regs[id] = defaultValue(in.type);
          break;
        }
        case Opcode::DomainMake: {
          DomainVal d;
          d.rank = static_cast<uint8_t>(in.imm);
          for (uint8_t k = 0; k < d.rank; ++k) {
            d.lo[k] = evalOp(fr, in.ops[2 * k]).asInt();
            d.hi[k] = evalOp(fr, in.ops[2 * k + 1]).asInt();
          }
          fr.regs[id] = Value::makeDomain(d);
          break;
        }
        case Opcode::DomainExpand: {
          Value d = evalOp(fr, in.ops[0]);
          if (d.kind != VKind::Domain) fail("expand on non-domain", in.loc);
          fr.regs[id] = Value::makeDomain(d.dom.expand(evalOp(fr, in.ops[1]).asInt()));
          break;
        }
        case Opcode::DomainSize: {
          Value d = evalOp(fr, in.ops[0]);
          if (d.kind == VKind::Domain) fr.regs[id] = Value::makeInt(d.dom.size());
          else if (d.kind == VKind::Array && d.arr)
            fr.regs[id] = Value::makeInt(d.arr->dom.size());
          else fail("size of a non-domain", in.loc);
          break;
        }
        case Opcode::DomainDim: {
          Value d = evalOp(fr, in.ops[0]);
          DomainVal dom;
          if (d.kind == VKind::Domain) dom = d.dom;
          else if (d.kind == VKind::Array && d.arr) dom = d.arr->dom;
          else fail("dim of a non-domain", in.loc);
          uint32_t dim = in.imm / 2;
          bool hi = in.imm % 2;
          if (dim >= dom.rank) fail("domain dim out of range", in.loc);
          fr.regs[id] = Value::makeInt(hi ? dom.hi[dim] : dom.lo[dim]);
          break;
        }
        case Opcode::ArrayNew: {
          Value d = evalOp(fr, in.ops[0]);
          if (d.kind != VKind::Domain) fail("array over a non-domain", in.loc);
          TypeId elem = m_.types().get(in.type).elem;
          fr.regs[id] = makeArray(d.dom, elem, fr.fid, id);
          break;
        }
        case Opcode::ArrayView: {
          Value base = evalOp(fr, in.ops[0]);
          Value d = evalOp(fr, in.ops[1]);
          if (base.kind != VKind::Array || !base.arr) fail("view of a non-array", in.loc);
          if (d.kind != VKind::Domain) fail("view over a non-domain", in.loc);
          auto view = std::make_shared<ArrayObj>();
          view->dom = d.dom;
          // Collapse view-of-view chains to the owning array.
          view->base = base.arr->base ? base.arr->base : base.arr;
          Value v;
          v.kind = VKind::Array;
          v.arr = std::move(view);
          fr.regs[id] = std::move(v);
          break;
        }
        case Opcode::Call: {
          std::vector<Value> args;
          args.reserve(in.ops.size());
          for (const ValueRef& o : in.ops) args.push_back(evalOp(fr, o));
          fr.regs[id] = callFunction(in.extra.func, std::move(args));
          break;
        }
        case Opcode::Ret:
          return in.ops.empty() ? Value{} : evalOp(fr, in.ops[0]);
        case Opcode::Br:
          block = in.target0;
          ip = 0;
          continue;
        case Opcode::CondBr: {
          Value c = evalOp(fr, in.ops[0]);
          if (c.kind != VKind::Bool) fail("branch on non-bool", in.loc);
          block = c.b ? in.target0 : in.target1;
          ip = 0;
          continue;
        }
        case Opcode::Spawn:
          execSpawn(fr, id, in);
          break;
        case Opcode::IterOverhead:
          break;  // pure cost
        case Opcode::Builtin:
          execBuiltin(fr, id, in);
          break;
      }
      ++ip;
    }
  }

  void execBin(Frame& fr, InstrId id, const Instr& in) {
    using ir::BinKind;
    Value a = evalOp(fr, in.ops[0]);
    Value b = evalOp(fr, in.ops[1]);
    TypeKind rk = m_.types().kindOf(in.type);
    BinKind k = in.extra.bin;
    if (rk == TypeKind::Bool) {
      switch (k) {
        case BinKind::And: fr.regs[id] = Value::makeBool(a.asBool() && b.asBool()); return;
        case BinKind::Or: fr.regs[id] = Value::makeBool(a.asBool() || b.asBool()); return;
        default: break;
      }
      if (a.kind == VKind::Bool && b.kind == VKind::Bool) {
        bool r = (k == BinKind::Eq) ? a.b == b.b : a.b != b.b;
        fr.regs[id] = Value::makeBool(r);
        return;
      }
      double x = a.num(), y = b.num();
      bool r = false;
      switch (k) {
        case BinKind::Eq: r = x == y; break;
        case BinKind::Ne: r = x != y; break;
        case BinKind::Lt: r = x < y; break;
        case BinKind::Le: r = x <= y; break;
        case BinKind::Gt: r = x > y; break;
        case BinKind::Ge: r = x >= y; break;
        default: fail("bad boolean op", in.loc);
      }
      fr.regs[id] = Value::makeBool(r);
      return;
    }
    if (rk == TypeKind::Int) {
      int64_t x = a.asInt(), y = b.asInt(), r = 0;
      switch (k) {
        case BinKind::Add: r = x + y; break;
        case BinKind::Sub: r = x - y; break;
        case BinKind::Mul: r = x * y; break;
        case BinKind::Div:
          if (y == 0) fail("integer division by zero", in.loc);
          r = x / y;
          break;
        case BinKind::Mod:
          if (y == 0) fail("integer modulo by zero", in.loc);
          r = x % y;
          break;
        case BinKind::Min: r = x < y ? x : y; break;
        case BinKind::Max: r = x > y ? x : y; break;
        default: fail("bad integer op", in.loc);
      }
      fr.regs[id] = Value::makeInt(r);
      return;
    }
    // Real result.
    double x = a.num(), y = b.num(), r = 0;
    switch (k) {
      case BinKind::Add: r = x + y; break;
      case BinKind::Sub: r = x - y; break;
      case BinKind::Mul: r = x * y; break;
      case BinKind::Div: r = x / y; break;
      case BinKind::Pow: r = std::pow(x, y); break;
      case BinKind::Min: r = x < y ? x : y; break;
      case BinKind::Max: r = x > y ? x : y; break;
      case BinKind::Mod: r = std::fmod(x, y); break;
      default: fail("bad real op", in.loc);
    }
    fr.regs[id] = Value::makeReal(r);
  }

  void execUn(Frame& fr, InstrId id, const Instr& in) {
    using ir::UnKind;
    Value v = evalOp(fr, in.ops[0]);
    switch (in.extra.un) {
      case UnKind::Neg:
        fr.regs[id] = (v.kind == VKind::Int) ? Value::makeInt(-v.i) : Value::makeReal(-v.num());
        return;
      case UnKind::Not: fr.regs[id] = Value::makeBool(!v.asBool()); return;
      case UnKind::IntToReal: fr.regs[id] = Value::makeReal(static_cast<double>(v.asInt())); return;
      case UnKind::RealToInt: fr.regs[id] = Value::makeInt(static_cast<int64_t>(v.num())); return;
      case UnKind::Abs:
        fr.regs[id] =
            (v.kind == VKind::Int) ? Value::makeInt(std::llabs(v.i)) : Value::makeReal(std::fabs(v.num()));
        return;
      case UnKind::Sqrt: fr.regs[id] = Value::makeReal(std::sqrt(v.num())); return;
      case UnKind::Sin: fr.regs[id] = Value::makeReal(std::sin(v.num())); return;
      case UnKind::Cos: fr.regs[id] = Value::makeReal(std::cos(v.num())); return;
      case UnKind::Exp: fr.regs[id] = Value::makeReal(std::exp(v.num())); return;
      case UnKind::Floor: fr.regs[id] = Value::makeInt(static_cast<int64_t>(std::floor(v.num()))); return;
    }
  }

  void execSpawn(Frame& fr, InstrId id, const Instr& in) {
    int64_t lo = evalOp(fr, in.ops[0]).asInt();
    int64_t hi = evalOp(fr, in.ops[1]).asInt();
    std::vector<Value> extra;
    for (size_t k = 2; k < in.ops.size(); ++k) extra.push_back(evalOp(fr, in.ops[k]));

    // Chunk plan: forall distributes [lo, hi] in blocks over the workers;
    // coforall creates one task per index.
    std::vector<std::pair<int64_t, int64_t>> chunks;
    int64_t count = hi - lo + 1;
    if (count > 0) {
      if (in.imm == 1) {
        for (int64_t i = lo; i <= hi; ++i) chunks.emplace_back(i, i);
      } else {
        int64_t w = std::max<int64_t>(1, opts_.numWorkers);
        int64_t per = (count + w - 1) / w;
        for (int64_t c = lo; c <= hi; c += per) chunks.emplace_back(c, std::min(hi, c + per - 1));
      }
    }
    charge(cost_.profile().spawnPerTask * chunks.size());

    uint64_t tag = ++tagCounter_;
    sampling::SpawnRecord rec;
    rec.tag = tag;
    rec.parentTag = curTaskTag_;
    rec.taskFn = in.extra.func;
    rec.spawnInstr = id;
    rec.preSpawnStack.reserve(stack_.size());
    for (const Frame* f : stack_) rec.preSpawnStack.push_back({f->fid, f->curInstr});
    result_.log.spawns.emplace(tag, std::move(rec));

    flushSkid();  // pending samples belong to the pre-spawn context
    uint64_t savedTag = curTaskTag_;
    uint32_t savedStream = curStream_;
    // Each task chunk starts with no pending comm attribution, regardless of
    // whether chunks run interleaved here or consecutively per worker in the
    // bytecode engine's parallel replay.
    sampling::AccessKind savedPending = pendingAccess_;
    int32_t savedSrc = pendingSrc_, savedDst = pendingDst_;
    BwState savedBw = bw_;  // bandwidth state is chunk-local, like the pending access
    std::vector<Frame*> savedStack;
    savedStack.swap(stack_);
    ++stackGen_;

    if (savedTag != 0 || savedStream != 0) {
      // Nested spawn: the pool is busy — run inline on the current stream.
      curTaskTag_ = tag;
      for (size_t ti = 0; ti < chunks.size(); ++ti) {
        std::vector<Value> args;
        args.push_back(Value::makeInt(chunks[ti].first));
        args.push_back(Value::makeInt(chunks[ti].second));
        for (const Value& v : extra) args.push_back(v);
        pendingAccess_ = sampling::AccessKind::None;
        pendingSrc_ = pendingDst_ = 0;
        uint64_t nStart = pmu_.clock(curStream_);
        bw_.reset(nStart, bwLimits());
        callFunction(in.extra.func, std::move(args));
        flushSkid();
        // Nested spans carry no site split — their cycles stay accrued to
        // the enclosing top-level segment's map.
        pushSpan(tag, static_cast<uint32_t>(ti), curStream_, nStart, pmu_.clock(curStream_),
                 /*takeSites=*/false);
      }
    } else {
      // Top-level parallel region: round-robin tasks over worker streams.
      uint64_t t0 = pmu_.clock(0);
      closeSerialSpan(t0);  // the fork ends the main-stream serial segment
      uint32_t w = opts_.numWorkers;
      // Workers spun idle since their last task ended (between regions /
      // during serial sections) — the __sched_yield time of Fig. 4.
      for (uint32_t ws = 1; ws <= w; ++ws) {
        emitIdleSamples(ws, lastBusyEnd_[ws], t0);
        lastBusyEnd_[ws] = t0;
      }
      std::vector<uint64_t> workerEnd(w + 1, t0);
      curTaskTag_ = tag;
      // Count regions the race-freedom prover could not clear (the bytecode
      // engine would replay them sequentially). The reference interpreter
      // always runs chunks interleaved, but the counter depends only on the
      // static verdict so the RunLog stays bit-identical across engines.
      if (!raceCache_.verdictFor(m_, in.extra.func).raceFree)
        ++result_.log.raceFallbackRegions;
      for (size_t ti = 0; ti < chunks.size(); ++ti) {
        uint32_t ws = 1 + static_cast<uint32_t>(ti % w);
        uint64_t chunkStart = workerEnd[ws];
        pmu_.setClock(ws, workerEnd[ws]);
        curStream_ = ws;
        std::vector<Value> args;
        args.push_back(Value::makeInt(chunks[ti].first));
        args.push_back(Value::makeInt(chunks[ti].second));
        for (const Value& v : extra) args.push_back(v);
        pendingAccess_ = sampling::AccessKind::None;
        pendingSrc_ = pendingDst_ = 0;
        bw_.reset(workerEnd[ws], limitsW_);
        callFunction(in.extra.func, std::move(args));
        flushSkid();
        workerEnd[ws] = pmu_.clock(ws);
        pushSpan(tag, static_cast<uint32_t>(ti), ws, chunkStart, workerEnd[ws],
                 /*takeSites=*/true);
      }
      uint64_t tEnd = t0;
      for (uint32_t ws = 1; ws <= w; ++ws) tEnd = std::max(tEnd, workerEnd[ws]);
      for (uint32_t ws = 1; ws <= w; ++ws) {
        emitIdleSamples(ws, workerEnd[ws], tEnd);
        lastBusyEnd_[ws] = tEnd;
      }
      pmu_.setClock(0, tEnd);
      serialStart_ = tEnd;  // the join re-opens the main-stream serial segment
    }

    stack_.swap(savedStack);
    ++stackGen_;
    curTaskTag_ = savedTag;
    curStream_ = savedStream;
    pendingAccess_ = savedPending;
    pendingSrc_ = savedSrc;
    pendingDst_ = savedDst;
    bw_ = savedBw;
  }

  void execBuiltin(Frame& fr, InstrId id, const Instr& in) {
    switch (in.extra.builtin) {
      case BuiltinKind::Writeln: {
        std::string line;
        for (size_t k = 0; k < in.ops.size(); ++k) {
          if (k) line += " ";
          line += renderValue(evalOp(fr, in.ops[k]));
        }
        line += "\n";
        if (opts_.echoWriteln) std::fputs(line.c_str(), stdout);
        result_.output += line;
        break;
      }
      case BuiltinKind::Random:
        fr.regs[id] = Value::makeReal(rng_.nextDouble());
        break;
      case BuiltinKind::Clock:
        fr.regs[id] = Value::makeInt(static_cast<int64_t>(pmu_.clock(curStream_)));
        break;
      case BuiltinKind::Yield:
      case BuiltinKind::HeapHint:
        break;
      case BuiltinKind::ArrayFill: {
        Value arr = evalOp(fr, in.ops[0]);
        Value v = evalOp(fr, in.ops[1]);
        if (arr.kind != VKind::Array || !arr.arr) fail("fill of a non-array", in.loc);
        int64_t n = arr.arr->dom.size();
        for (int64_t k = 0; k < n; ++k) *arr.arr->atLinear(k) = v;
        charge(cost_.profile().arrayFillPerElem * static_cast<uint64_t>(n));
        break;
      }
      case BuiltinKind::ArrayCopy: {
        Value dst = evalOp(fr, in.ops[0]);
        Value src = evalOp(fr, in.ops[1]);
        if (dst.kind != VKind::Array || !dst.arr || src.kind != VKind::Array || !src.arr)
          fail("copy of a non-array", in.loc);
        int64_t n = dst.arr->dom.size();
        if (n != src.arr->dom.size()) fail("array copy size mismatch", in.loc);
        for (int64_t k = 0; k < n; ++k) *dst.arr->atLinear(k) = *src.arr->atLinear(k);
        charge(cost_.profile().arrayCopyPerElem * static_cast<uint64_t>(n));
        break;
      }
      case BuiltinKind::ConfigGet: {
        Value name = evalOp(fr, in.ops[0]);
        Value def = evalOp(fr, in.ops[1]);
        auto it = opts_.configOverrides.find(name.str ? *name.str : "");
        if (it == opts_.configOverrides.end()) {
          fr.regs[id] = def;
          break;
        }
        const std::string& s = it->second;
        switch (def.kind) {
          case VKind::Int: fr.regs[id] = Value::makeInt(std::strtoll(s.c_str(), nullptr, 10)); break;
          case VKind::Real: fr.regs[id] = Value::makeReal(std::strtod(s.c_str(), nullptr)); break;
          case VKind::Bool: fr.regs[id] = Value::makeBool(s == "true" || s == "1"); break;
          default: fr.regs[id] = def; break;
        }
        break;
      }
      case BuiltinKind::Dmapped: {
        Value d = evalOp(fr, in.ops[0]);
        if (d.kind != VKind::Domain) fail("dmapped on a non-domain", in.loc);
        DomainVal dv = d.dom;
        dv.distKind = static_cast<uint8_t>(evalOp(fr, in.ops[1]).asInt());
        dv.distLocales = static_cast<uint16_t>(std::max<uint32_t>(1, opts_.numLocales));
        fr.regs[id] = Value::makeDomain(dv);
        break;
      }
      case BuiltinKind::OnBegin: {
        int64_t target = evalOp(fr, in.ops[0]).asInt();
        int64_t L = std::max<int64_t>(1, opts_.numLocales);
        target = ((target % L) + L) % L;  // wrap like Locales[i % numLocales]
        onStack_.push_back(curLocale_);
        if (target != curLocale_) {
          ++result_.log.commOnForks;
          charge(cost_.profile().onFork);
        }
        curLocale_ = target;
        break;
      }
      case BuiltinKind::OnEnd:
        if (!onStack_.empty()) {
          curLocale_ = onStack_.back();
          onStack_.pop_back();
        }
        break;
      case BuiltinKind::HereId:
        fr.regs[id] = Value::makeInt(curLocale_);
        break;
      case BuiltinKind::NumLocales:
        fr.regs[id] = Value::makeInt(std::max<int64_t>(1, opts_.numLocales));
        break;
      case BuiltinKind::AggOpen: {
        bool isSrc = evalOp(fr, in.ops[0]).asInt() != 0;
        aggStack_.push_back(AggState{isSrc, {}});
        fr.regs[id] = Value::makeInt(static_cast<int64_t>(aggStack_.size()) - 1);
        break;
      }
      case BuiltinKind::AggCopy:
        execAggCopy(fr, in);
        break;
      case BuiltinKind::AggClose: {
        int64_t h = evalOp(fr, in.ops[0]).asInt();
        if (h != static_cast<int64_t>(aggStack_.size()) - 1 || h < 0)
          fail("aggregator closed out of order", in.loc);
        AggState& st = aggStack_.back();
        const CostProfile& p = cost_.profile();
        for (const auto& [peer, n] : st.pending) {
          if (n == 0) continue;
          ++result_.log.commAggFlushes;
          charge(p.aggFlushLatency + p.aggPerElemBandwidth * n);
          if (bwEnabled_) chargeNetBw(peer, n * bwLimits().netElemBytes);
        }
        aggStack_.pop_back();
        break;
      }
    }
  }

  /// One agg.copy(): the value moves eagerly (aggregation changes cost,
  /// never values); the remote leg is classified like a naive access — same
  /// pending-sample channel, same comm matrix cell — but counts toward the
  /// aggregated counters and a per-destination buffer that flushes at
  /// aggBufferCap for aggFlushLatency + n*aggPerElemBandwidth cycles.
  void execAggCopy(Frame& fr, const Instr& in) {
    int64_t h = evalOp(fr, in.ops[0]).asInt();
    if (h < 0 || static_cast<size_t>(h) >= aggStack_.size())
      fail("aggregator used outside its task", in.loc);
    AggState& st = aggStack_[static_cast<size_t>(h)];
    Value remoteArrV = evalOp(fr, in.ops[st.isSrc ? 2 : 1]);
    if (remoteArrV.kind != VKind::Array || !remoteArrV.arr)
      fail("agg.copy element operand is not an array", in.loc);
    int64_t idx[3] = {evalOp(fr, in.ops[st.isSrc ? 3 : 2]).asInt(), 0, 0};
    Value* elem = remoteArrV.arr->at(idx);
    if (!elem) fail("array index out of bounds", in.loc);
    const ArrayObj* own =
        remoteArrV.arr->base ? remoteArrV.arr->base.get() : remoteArrV.arr.get();
    const DomainVal& od = own->dom;
    int64_t owner;
    if (od.distKind != 0 && od.distLocales > 1 && (owner = od.ownerOf(idx[0])) != curLocale_) {
      pendingAccess_ =
          st.isSrc ? sampling::AccessKind::RemoteGet : sampling::AccessKind::RemotePut;
      pendingSrc_ = static_cast<int32_t>(curLocale_);
      pendingDst_ = static_cast<int32_t>(owner);
      ++(st.isSrc ? result_.log.commAggGets : result_.log.commAggPuts);
      ++result_.log.commMatrix[sampling::RunLog::pairKey(curLocale_, owner)];
      const CostProfile& p = cost_.profile();
      uint32_t& pending = st.pending[owner];
      if (++pending >= p.aggBufferCap) {
        ++result_.log.commAggFlushes;
        charge(p.aggFlushLatency + p.aggPerElemBandwidth * pending);
        if (bwEnabled_) chargeNetBw(owner, pending * bwLimits().netElemBytes);
        pending = 0;
      }
    } else {
      pendingAccess_ = sampling::AccessKind::Local;
      pendingSrc_ = pendingDst_ = 0;
    }
    if (st.isSrc) {
      Value* dst = refOf(fr, in.ops[1], in.loc);
      *dst = *elem;
    } else {
      *elem = evalOp(fr, in.ops[3]);
    }
  }

  const ir::Module& m_;
  RunOptions opts_;
  CostModel cost_;
  sampling::VirtualPmu pmu_;
  Rng rng_;
  RunResult result_;

  std::vector<Value> globals_;
  std::vector<Frame*> stack_;
  uint32_t curStream_ = 0;
  uint64_t curTaskTag_ = 0;
  uint64_t tagCounter_ = 0;
  uint64_t idleSampleCounter_ = 0;

  // Causal what-if state (interp.h: trackCausalSites / causalScale). The
  // open main-stream serial segment starts at serialStart_; segSites_ accrues
  // the per-site split of whichever segment is currently executing (only one
  // segment is ever live at a time — the interpreter runs chunks one by one).
  bool causalTrack_ = false;
  bool causalScaleOn_ = false;
  bool causalActive_ = false;
  uint32_t causalNum_ = 1;
  uint32_t causalDen_ = 1;
  std::unordered_set<uint64_t> causalScaleSites_;
  uint64_t serialStart_ = 0;
  /// Dense per-site accumulator for the currently executing segment:
  /// siteAcc_[siteBase_[fid] + instr] with touched_ listing live slots, so
  /// each charge is a flat array slot and draining is O(sites touched).
  std::vector<uint32_t> siteBase_;
  CausalAccumulator acc_;

  // Memoized race-freedom verdicts per task function, queried at each
  // top-level spawn for the raceFallbackRegions counter.
  an::race::RaceCache raceCache_;

  // PGAS locale simulation state.
  int64_t curLocale_ = 0;
  std::vector<int64_t> onStack_;
  sampling::AccessKind pendingAccess_ = sampling::AccessKind::None;
  int32_t pendingSrc_ = 0;
  int32_t pendingDst_ = 0;

  // Bandwidth-ceiling state (runtime/bandwidth.h); inert when the profile's
  // rates are all 0. limits0_ serves the main stream, limitsW_ every worker.
  BwState bw_;
  BwLimits limits0_;
  BwLimits limitsW_;
  bool bwEnabled_ = false;

  /// Open simulated aggregators, innermost last; AggCopy addresses one by
  /// its AggOpen handle (= stack index), AggClose pops in LIFO order. The
  /// per-destination map holds buffered-element COUNTS only — values moved
  /// eagerly at copy time.
  struct AggState {
    bool isSrc;
    std::map<int64_t, uint32_t> pending;
  };
  std::vector<AggState> aggStack_;

  std::vector<sampling::Frame> cachedStack_;   // resolved copy of stack_
  uint64_t stackGen_ = 0;                      // bumped on push/pop/swap
  uint64_t cachedStackGen_ = ~0ull;            // generation cachedStack_ matches

  std::vector<std::vector<int32_t>> allocaSlot_;
  std::vector<uint32_t> numSlots_;
  std::vector<uint64_t> lastBusyEnd_;
  std::vector<uint64_t> icacheQ10_;
  std::vector<uint32_t> skidQueue_;

  friend RunResult cb::rt::execute(const ir::Module&, const RunOptions&);
};

}  // namespace

RunResult execute(const ir::Module& m, const RunOptions& opts) {
  if (!opts.referenceInterp) return executeBytecode(m, opts);
  Interp interp(m, opts);
  // Globals live for the whole run; _module_init assigns every one of them
  // in declaration order, so plain empty values suffice here.
  interp.globals_.resize(m.numGlobals());
  return interp.run();
}

}  // namespace cb::rt
