// Flat bytecode form of CIR plus the parallel-replay eligibility analysis.
//
// `compile()` lowers every ir::Function once per run into a cache-friendly
// instruction array with pre-decoded operands: register indices, frame-slot
// indices for allocas, pre-resolved branch targets (bytecode pcs instead of
// block ids), interned constants, and per-instruction cycle costs pre-scaled
// by the function's icache multiplier. Hot idioms are fused into
// superinstructions (compare+branch, array index+load/store, int/real
// arithmetic into a slot); each fused instruction carries BOTH constituents'
// instruction ids and costs so the executed-instruction count, sample
// points and sample instruction pointers stay bit-identical to the
// tree-walking reference interpreter.
//
// For every Spawn site the compiler also runs a conservative independence
// analysis over the outlined task function and records a SpawnPlan: when a
// top-level forall/coforall region is provably race-free (all shared-array
// accesses go through one disjoint induction-affine index signature per
// written array, no global stores, no captured-variable stores, no RNG, no
// nested spawns, no calls), the engine may replay its worker streams on OS
// threads (see exec.cpp); otherwise the region runs sequentially. Either
// way the RunLog is identical.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/race.h"
#include "ir/module.h"
#include "runtime/cost_model.h"
#include "runtime/value.h"

namespace cb::rt::bc {

enum class Op : uint8_t {
  Alloca,        // dst reg = ref to frame slot t0
  LoadSlot,      // dst = slots[t0] (addr statically known to be a local alloca)
  StoreSlot,     // slots[t0] = a
  LoadRef,       // dst = *a   (flag kNestedHandle: charge on array-from-field)
  StoreRef,      // *b = a
  FieldAddr,     // dst = &record(a).field[imm]
  TupleAddr,     // dst = &tuple(a).elem[imm or dyn b]
  IndexAddr,     // dst = &array[idx...]; window = [array, idx...]
  Bin,           // dst = a <sub> b; rk = result TypeKind
  Un,            // dst = <sub> a
  TupleMake,     // dst = tuple(window)
  TupleGet,      // dst = tuple(a)[imm or dyn b]
  RecordNew,     // dst = default record of type t0; imm = per-field charge
  DomainMake,    // dst = domain(window); sub = rank
  DomainExpand,  // dst = domain(a).expand(b)
  DomainSize,    // dst = size(a)
  DomainDim,     // dst = dim of a; imm = dim*2 + (0=lo,1=hi)
  ArrayNew,      // dst = new array over domain a; t0 = elem TypeId
  ArrayView,     // dst = view of array a over domain b
  Call,          // dst = call t0(window)
  Ret,           // return a (or none)
  Br,            // goto t0 (bytecode pc)
  CondBr,        // a ? goto t0 : goto t1
  Spawn,         // task fn t0, plan t1, kind sub (0 forall / 1 coforall)
  IterOverhead,  // pure cost
  Builtin,       // sub = BuiltinKind; window = args
  // Fused superinstructions. Semantics == first op then second op, with the
  // per-instruction prologue (count, skid tick, charge) run for each part.
  CmpBr,         // Bin(bool) a,b then CondBr on the result
  IndexLoad,     // IndexAddr(window) then dst2 = *elem
  IndexStore,    // IndexAddr(window) then *elem = a
  BinStoreSlot,  // Bin a,b (int/real) then slots[dst2] = result
  TupleGetSlot,  // LoadSlot t0 then dst2 = tuple[imm or dyn b]; elides the
                 //   whole-tuple copy into the (single-use, dead) load reg
  TupleGetRef,   // TupleAddr a[imm or dyn b] then dst2 = *elem
  Count
};

/// Pre-decoded operand. Const indexes the module constant pool; Reg/Arg
/// index the current frame; Global indexes the interpreter's global store.
/// Slot reads a frame slot directly: a single-use slot load whose in-block
/// consumer is reached only through slot-safe instructions is emitted as a
/// prologue-only IterOverhead and its consumer reads the slot in place,
/// eliding the (dead) copy into the load's register.
struct BOperand {
  enum class K : uint8_t { None, Reg, Arg, Global, Const, Slot };
  K k = K::None;
  uint32_t idx = 0;
};

inline constexpr uint8_t kNestedHandle = 1;  // LoadRef: addr comes from FieldAddr
inline constexpr uint8_t kLinear = 2;        // IndexAddr family: linear (imm bit 0) mode
inline constexpr uint8_t kDynIndex = 4;      // TupleAddr/TupleGet: runtime index in b
inline constexpr uint8_t kStore = 8;         // IndexAddr family: address feeds a Store
                                             //   (imm bit 1; remote access = PUT)

struct BInstr {
  Op op = Op::Ret;
  uint8_t sub = 0;    // BinKind / UnKind / BuiltinKind / rank / spawn kind
  uint8_t rk = 0;     // Bin & fused-bin: result TypeKind
  uint8_t flags = 0;
  uint32_t ir = 0;    // originating InstrId (curInstr for samples/errors)
  uint32_t cost = 0;  // static cost, pre-scaled by the icache multiplier
  uint32_t dst = 0;   // result register (== ir)
  BOperand a, b;
  uint32_t opBase = 0, nops = 0;  // extra operand window in BFunc::operands
  uint32_t t0 = 0, t1 = 0;        // branch pcs / callee / type / slot / plan
  uint64_t imm = 0;
  // Second component of a fused superinstruction.
  uint32_t ir2 = 0, cost2 = 0, dst2 = 0;
};

struct BFunc {
  std::vector<BInstr> code;
  std::vector<BOperand> operands;  // shared operand windows
  uint32_t numSlots = 0;           // alloca slots
  uint32_t numRegs = 0;            // == numInstrs of the source function
  // Slots that might be read before being stored in some activation and so
  // must be reset to None when a pooled frame is reused. A slot is exempt
  // when every Alloca producing it is immediately followed by a Store to it
  // (the lowering's default-init idiom): all reads then observe the stored
  // value, never pool-stale state — and exempt tuple slots keep their warm
  // element buffers across calls.
  std::vector<uint32_t> resetSlots;
};

/// A shared-array root the task function accesses (see analysis/race.h —
/// the race-freedom prover both engines gate parallel replay on).
using RootRef = ::cb::an::race::RootRef;

/// Result of the static independence analysis for one Spawn site. Derived
/// from the prover's Verdict: `eligible` is `raceFree`, `roots` the shared
/// arrays needing runtime alias checks (kept only when eligible).
struct SpawnPlan {
  bool eligible = false;          // streams may replay on OS threads
  std::vector<RootRef> roots;     // shared arrays needing runtime alias checks
};

struct CompiledModule {
  std::vector<BFunc> funcs;
  std::vector<Value> constPool;
  std::vector<SpawnPlan> plans;
  std::vector<std::vector<int32_t>> allocaSlot;  // per function, InstrId -> slot
  std::vector<uint32_t> numSlots;
};

/// Lowers the whole module. `icacheQ10` is the per-function Q10 cycle
/// multiplier (see Interp); costs are folded as (cost * q10) >> 10.
CompiledModule compile(const ir::Module& m, const CostModel& cost,
                       const std::vector<uint64_t>& icacheQ10);

}  // namespace cb::rt::bc
