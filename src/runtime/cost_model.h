// Virtual-cycle cost model.
//
// Plays the role of the hardware the paper measured on (PAPI_TOT_CYC on a
// 2.53 GHz Xeon SMP): each executed IR operation is charged a cycle cost.
// Relative costs encode the performance phenomena the case studies hinge on:
//   - zippered-iterator coordination and domain-remapping views are
//     expensive (MiniMD, §V.A; "domain remapping and zippered iterations are
//     expensive to use");
//   - per-call dynamic array allocation is expensive (LULESH VG, §V.C);
//   - tuple construction/destruction is non-trivial (LULESH CENN, §V.C);
//   - multi-level struct/element indirection costs per level (CLOMP, §V.B).
// The `fast()` profile models --fast codegen: cheaper loads/stores/branches
// and cheaper abstraction overheads, as an optimizing backend would emit.
#pragma once

#include <cstdint>

#include "ir/instr.h"

namespace cb::rt {

struct CostProfile {
  // Scalar ALU.
  uint64_t addSub = 1, mul = 3, div = 20, mod = 20, pow = 40, cmp = 1, logical = 1, minmax = 2;
  uint64_t neg = 1, conv = 1, sqrtC = 20, trig = 40, absC = 1;
  // Memory.
  uint64_t load = 3, store = 3, fieldAddr = 2, tupleAddr = 1;
  uint64_t indexBase = 3, indexPerDim = 3, indexLinear = 2, viewIndexExtra = 10;
  /// Loading an array handle out of a record field is a dependent pointer
  /// chase through a nested descriptor (the CLOMP nested-structs penalty;
  /// "accessing elements in one big array is much faster than through
  /// nested structures", §V.B).
  uint64_t nestedArrayHandle = 50;
  // Aggregates.
  uint64_t tupleMakeBase = 10, tupleMakePerElem = 7, tupleGet = 1;
  uint64_t tupleDynAccess = 4;   // run-time tuple index: an indexed load
  uint64_t recordNewBase = 6, recordNewPerField = 2;
  // Domains / arrays.
  uint64_t domainMake = 8, domainExpand = 6, domainQuery = 2;
  uint64_t arrayNewBase = 220, arrayNewPerElem = 70;     // alloc + default-init per scalar slot
  uint64_t arrayViewBase = 240;                         // slice/remap descriptor (allocates)
  uint64_t arrayFillPerElem = 2, arrayCopyPerElem = 3;
  // Control.
  uint64_t branch = 1, condBranch = 2, ret = 2, callOverhead = 18;
  uint64_t spawnBase = 400, spawnPerTask = 120;         // tasking-layer cost
  uint64_t iterOverheadPerIterand = 135;          // zippered leader/follower protocol
  // Builtins.
  uint64_t randomC = 20, clockC = 4, yieldC = 30, writelnBase = 200, configGet = 10;
  // PGAS communication (multi-locale simulation). A remote GET/PUT models a
  // one-sided transfer through the comm layer; an `on` fork to a different
  // locale models active-message dispatch (`chpl_comm_fork`). Network
  // round-trip latency is microseconds against nanosecond ALU ops, so these
  // sit two to three orders of magnitude above scalar costs — fine-grained
  // remote access has to dominate any loop it appears in, which is exactly
  // the regime where aggregation pays off (the conveyors/bale result).
  uint64_t remoteGet = 600, remotePut = 700, onFork = 900;
  /// Simulated remote-access aggregation (Src/DstAggregator intents): a
  /// buffer of up to aggBufferCap elements per destination locale flushes
  /// for aggFlushLatency + n * aggPerElemBandwidth cycles instead of paying
  /// n full remote latencies — the bandwidth-vs-latency trade batching
  /// exploits (one round trip amortized over the whole buffer).
  /// aggCopyLocal is the per-copy bookkeeping charge.
  uint64_t aggFlushLatency = 600, aggPerElemBandwidth = 3, aggBufferCap = 64;
  uint64_t aggCopyLocal = 4;

  // ---- Bandwidth ceilings (opt-in) ----------------------------------------
  // Every rate below defaults to 0 = disabled, so the default profiles keep
  // the pure-latency model bit-for-bit. The ceilings are enforced by a
  // deterministic virtual-clock token bucket per stream (src/runtime/
  // bandwidth.h): transfers accrue an allowance at `rate` bytes per 1024
  // virtual cycles up to a burst cap; a transfer that outruns the allowance
  // stalls the stream for the cycles needed to earn the deficit, which is
  // exactly the roofline: steady-state time/op = max(compute, bytes/rate).

  /// Local memory-bandwidth roof. Only arrays whose allocation footprint
  /// exceeds memCacheResidentBytes are charged (smaller arrays live in
  /// cache); each element access then consumes 8 * scalarWidth(elem) bytes.
  /// Stream 0 gets the full rate; each worker stream gets rate/numWorkers
  /// (concurrent tasks share the socket's bandwidth).
  uint64_t memBandwidthBytesPerKCycle = 0;
  uint64_t memBandwidthBurstBytes = 256;
  uint64_t memCacheResidentBytes = 256 * 1024;

  /// Per-locale network injection-bandwidth roof for the PGAS simulation:
  /// remote GET/PUT elements and aggregator flush payloads consume
  /// netElemBytes per element from the injection bucket, splitting remote
  /// cost into the latency leg (remoteGet/remotePut/aggFlushLatency) and a
  /// bandwidth leg (stall cycles, counted in RunLog::commNetStallCycles).
  uint64_t netInjectionBytesPerKCycle = 0;
  uint64_t netInjectionBurstBytes = 512;
  uint64_t netElemBytes = 8;

  /// Owner contention: when one stream keeps hitting the SAME destination
  /// locale, accesses beyond the free allowance within a window stall for
  /// netContentionStallCycles each (the home-node hot-spot penalty; counted
  /// in RunLog::commContentionCycles). Window 0 disables the charge.
  uint64_t netContentionWindowCycles = 0;
  uint64_t netContentionFreePerWindow = 0;
  uint64_t netContentionStallCycles = 0;

  // Instruction-footprint (icache) pressure: functions larger than the
  // threshold pay a per-cycle multiplier growing with the excess size.
  // This is what makes aggressive `param` unrolling counter-productive
  // (Table VII: "sometimes it would be counterproductive since it enlarges
  // the code size"). Multiplier = 1 + min(maxQ10, excess*slopeQ10)/1024.
  uint64_t icacheThresholdInstrs = 700;
  uint64_t icacheSlopeQ10 = 1;    // +1/1024 per excess instruction
  uint64_t icacheMaxQ10 = 900;    // cap at ~1.88x

  /// The --fast profile: what an optimizing backend does to abstraction
  /// overheads (registers instead of stack traffic, inlined accessors,
  /// leaner iterator protocol).
  static CostProfile fast();
  static CostProfile standard() { return CostProfile{}; }
  /// The calibrated bandwidth-ceiling profile: standard()/fast() costs plus
  /// the memory roof and network injection/contention ceilings. This is the
  /// profile that reproduces Table V row 4's memory-bandwidth collapse
  /// (EXPERIMENTS.md) and the weak-scaling saturation in bench_weak_scale.
  static CostProfile bandwidthCeiling(bool fastCodegen);
};

class CostModel {
 public:
  explicit CostModel(const CostProfile& p) : p_(p) {}
  const CostProfile& profile() const { return p_; }

  /// Static (per-instruction) cost. Size-dependent extras (array allocation,
  /// fills, copies) are charged by the interpreter on top of this.
  uint64_t cost(const ir::Instr& in) const;

 private:
  CostProfile p_;
};

}  // namespace cb::rt
