// Virtual-cycle cost model.
//
// Plays the role of the hardware the paper measured on (PAPI_TOT_CYC on a
// 2.53 GHz Xeon SMP): each executed IR operation is charged a cycle cost.
// Relative costs encode the performance phenomena the case studies hinge on:
//   - zippered-iterator coordination and domain-remapping views are
//     expensive (MiniMD, §V.A; "domain remapping and zippered iterations are
//     expensive to use");
//   - per-call dynamic array allocation is expensive (LULESH VG, §V.C);
//   - tuple construction/destruction is non-trivial (LULESH CENN, §V.C);
//   - multi-level struct/element indirection costs per level (CLOMP, §V.B).
// The `fast()` profile models --fast codegen: cheaper loads/stores/branches
// and cheaper abstraction overheads, as an optimizing backend would emit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ir/instr.h"

namespace cb::rt {

struct CostProfile {
  // Scalar ALU.
  uint64_t addSub = 1, mul = 3, div = 20, mod = 20, pow = 40, cmp = 1, logical = 1, minmax = 2;
  uint64_t neg = 1, conv = 1, sqrtC = 20, trig = 40, absC = 1;
  // Memory.
  uint64_t load = 3, store = 3, fieldAddr = 2, tupleAddr = 1;
  uint64_t indexBase = 3, indexPerDim = 3, indexLinear = 2, viewIndexExtra = 10;
  /// Loading an array handle out of a record field is a dependent pointer
  /// chase through a nested descriptor (the CLOMP nested-structs penalty;
  /// "accessing elements in one big array is much faster than through
  /// nested structures", §V.B).
  uint64_t nestedArrayHandle = 50;
  // Aggregates.
  uint64_t tupleMakeBase = 10, tupleMakePerElem = 7, tupleGet = 1;
  uint64_t tupleDynAccess = 4;   // run-time tuple index: an indexed load
  uint64_t recordNewBase = 6, recordNewPerField = 2;
  // Domains / arrays.
  uint64_t domainMake = 8, domainExpand = 6, domainQuery = 2;
  uint64_t arrayNewBase = 220, arrayNewPerElem = 70;     // alloc + default-init per scalar slot
  uint64_t arrayViewBase = 240;                         // slice/remap descriptor (allocates)
  uint64_t arrayFillPerElem = 2, arrayCopyPerElem = 3;
  // Control.
  uint64_t branch = 1, condBranch = 2, ret = 2, callOverhead = 18;
  uint64_t spawnBase = 400, spawnPerTask = 120;         // tasking-layer cost
  uint64_t iterOverheadPerIterand = 135;          // zippered leader/follower protocol
  // Builtins.
  uint64_t randomC = 20, clockC = 4, yieldC = 30, writelnBase = 200, configGet = 10;
  // PGAS communication (multi-locale simulation). A remote GET/PUT models a
  // one-sided transfer through the comm layer; an `on` fork to a different
  // locale models active-message dispatch (`chpl_comm_fork`). Network
  // round-trip latency is microseconds against nanosecond ALU ops, so these
  // sit two to three orders of magnitude above scalar costs — fine-grained
  // remote access has to dominate any loop it appears in, which is exactly
  // the regime where aggregation pays off (the conveyors/bale result).
  uint64_t remoteGet = 600, remotePut = 700, onFork = 900;
  /// Simulated remote-access aggregation (Src/DstAggregator intents): a
  /// buffer of up to aggBufferCap elements per destination locale flushes
  /// for aggFlushLatency + n * aggPerElemBandwidth cycles instead of paying
  /// n full remote latencies — the bandwidth-vs-latency trade batching
  /// exploits (one round trip amortized over the whole buffer).
  /// aggCopyLocal is the per-copy bookkeeping charge.
  uint64_t aggFlushLatency = 600, aggPerElemBandwidth = 3, aggBufferCap = 64;
  uint64_t aggCopyLocal = 4;

  // ---- Bandwidth ceilings (opt-in) ----------------------------------------
  // Every rate below defaults to 0 = disabled, so the default profiles keep
  // the pure-latency model bit-for-bit. The ceilings are enforced by a
  // deterministic virtual-clock token bucket per stream (src/runtime/
  // bandwidth.h): transfers accrue an allowance at `rate` bytes per 1024
  // virtual cycles up to a burst cap; a transfer that outruns the allowance
  // stalls the stream for the cycles needed to earn the deficit, which is
  // exactly the roofline: steady-state time/op = max(compute, bytes/rate).

  /// Local memory-bandwidth roof. Only arrays whose allocation footprint
  /// exceeds memCacheResidentBytes are charged (smaller arrays live in
  /// cache); each element access then consumes 8 * scalarWidth(elem) bytes.
  /// Stream 0 gets the full rate; each worker stream gets rate/numWorkers
  /// (concurrent tasks share the socket's bandwidth).
  uint64_t memBandwidthBytesPerKCycle = 0;
  uint64_t memBandwidthBurstBytes = 256;
  uint64_t memCacheResidentBytes = 256 * 1024;

  /// Per-locale network injection-bandwidth roof for the PGAS simulation:
  /// remote GET/PUT elements and aggregator flush payloads consume
  /// netElemBytes per element from the injection bucket, splitting remote
  /// cost into the latency leg (remoteGet/remotePut/aggFlushLatency) and a
  /// bandwidth leg (stall cycles, counted in RunLog::commNetStallCycles).
  uint64_t netInjectionBytesPerKCycle = 0;
  uint64_t netInjectionBurstBytes = 512;
  uint64_t netElemBytes = 8;

  /// Owner contention: when one stream keeps hitting the SAME destination
  /// locale, accesses beyond the free allowance within a window stall for
  /// netContentionStallCycles each (the home-node hot-spot penalty; counted
  /// in RunLog::commContentionCycles). Window 0 disables the charge.
  uint64_t netContentionWindowCycles = 0;
  uint64_t netContentionFreePerWindow = 0;
  uint64_t netContentionStallCycles = 0;

  // Instruction-footprint (icache) pressure: functions larger than the
  // threshold pay a per-cycle multiplier growing with the excess size.
  // This is what makes aggressive `param` unrolling counter-productive
  // (Table VII: "sometimes it would be counterproductive since it enlarges
  // the code size"). Multiplier = 1 + min(maxQ10, excess*slopeQ10)/1024.
  uint64_t icacheThresholdInstrs = 700;
  uint64_t icacheSlopeQ10 = 1;    // +1/1024 per excess instruction
  uint64_t icacheMaxQ10 = 900;    // cap at ~1.88x

  /// The --fast profile: what an optimizing backend does to abstraction
  /// overheads (registers instead of stack traffic, inlined accessors,
  /// leaner iterator protocol).
  static CostProfile fast();
  static CostProfile standard() { return CostProfile{}; }
  /// The calibrated bandwidth-ceiling profile: standard()/fast() costs plus
  /// the memory roof and network injection/contention ceilings. This is the
  /// profile that reproduces Table V row 4's memory-bandwidth collapse
  /// (EXPERIMENTS.md) and the weak-scaling saturation in bench_weak_scale.
  static CostProfile bandwidthCeiling(bool fastCodegen);
};

/// Per-charge causal scaling: the cost of one charge after an (num/den)-fold
/// virtual speedup, rounded up so a charge never scales to a negative saving
/// (ceil(c*den/num) <= c whenever den <= num). num == 0 encodes k = ∞: the
/// charge vanishes entirely. Shared by the runtime ground-truth oracle
/// (RunOptions::causalScale) and the analysis-side predictor
/// (analysis/causal.h) so both round identically — that identity is what the
/// differential oracle test checks.
inline uint64_t causalScaledCost(uint64_t c, uint32_t num, uint32_t den) {
  if (num == 0) return 0;
  return (c * den + num - 1) / num;
}

/// Per-segment site accumulator behind RunOptions::trackCausalSites, shared
/// by both engines so their span site splits stay bit-identical. Charges
/// index a dense flat array (slot of (fid, instr) = siteBase[fid] + instr)
/// and the hot path touches one 8-byte slot: a charge count plus the slot's
/// uniform per-charge cost. Everything else is deferred to drain time: while
/// every charge at a site costs the same — the overwhelmingly common case,
/// since a site is one static instruction with a static cost — the
/// per-charge ceil-rounded scaled sum of n charges of cost u is exactly
/// n * causalScaledCost(u, ...) and the raw sum is n * u, so neither the
/// raw accumulation nor the three k ∈ {1.25, 2, 4} scalings ever run per
/// charge. A slot's uniform cost is sticky: it is either seeded up front
/// from the program's static cost table (the bytecode engine does this,
/// which lets its dispatch loop count a static prologue charge with a plain
/// increment and no compare) or latched by the first charge. Charges that
/// don't match it — builtin extras, bandwidth stalls, causally re-scaled
/// costs — land in a sparse exact side table (`mixed_`) that overlays the
/// count * uniform sum at drain time; the slot itself never changes mode.
///
/// drain() walks the dense array merged against the sorted overlay keys, so
/// sites come out in ascending (fid, instr) — i.e. ascending
/// RunLog::siteKey — order without sorting; the scan is cheap because
/// segments are orders of magnitude rarer than charges.
class CausalAccumulator {
 public:
  struct Slot {
    uint32_t count = 0;    ///< charges this segment (0 = untouched)
    uint32_t uniform = 0;  ///< the common per-charge cost; 0 = mixed costs
  };

  bool ready() const { return !slots_.empty(); }

  /// Raw slot array for dispatch loops that inline the fast path with the
  /// site base hoisted out of the loop (see Engine::execFrame). Callers that
  /// take this pointer mirror charge() exactly: compare against `uniform`,
  /// bump `count`, and fall back to chargeSlow() on a cost mismatch.
  Slot* slotData() { return slots_.data(); }

  /// Sizes the slot array from the module's per-function instruction-count
  /// prefix sums (slots_.size() == siteBase.back()). `siteBase` must outlive
  /// the accumulator; one init serves the whole run — drains reset in place.
  /// `staticCost` (same length as the slot array, may be null) seeds every
  /// slot's uniform cost with the site's static per-charge cost; callers
  /// that seed may count a charge of exactly that cost with countUniform()
  /// and skip the compare.
  void init(const std::vector<uint32_t>& siteBase, const uint32_t* staticCost = nullptr) {
    siteBase_ = &siteBase;
    slots_.assign(siteBase.back(), {});
    if (staticCost != nullptr)
      for (size_t i = 0; i < slots_.size(); ++i) slots_[i].uniform = staticCost[i];
    mixed_.assign(slots_.size(), {});
    mixedKeys_.clear();
    lastCount_ = 0;
  }

  inline void charge(uint32_t idx, uint64_t c) {
    Slot s = slots_[idx];
    if (__builtin_expect(c == s.uniform, 1)) {  // c > 0, so never an empty slot
      ++s.count;
      slots_[idx] = s;
      return;
    }
    chargeSlow(idx, c);
  }

  /// Counts one charge of exactly the slot's uniform cost. Only valid when
  /// the caller knows the charge matches (static-cost-seeded slots charged
  /// their static cost); anything else must go through charge().
  inline void countUniform(uint32_t idx) { ++slots_[idx].count; }

  /// Emits every charged slot as (fid, instr, raw, s125, s2, s4) in
  /// ascending site order and resets counts for the next segment (uniform
  /// costs are sticky — see the class comment).
  template <typename Emit>
  void drain(Emit&& emit) {
    std::sort(mixedKeys_.begin(), mixedKeys_.end());
    size_t mi = 0;
    const std::vector<uint32_t>& base = *siteBase_;
    uint32_t fid = 0;
    uint64_t emitted = 0;
    for (uint32_t idx = 0; idx < static_cast<uint32_t>(slots_.size()); ++idx) {
      Slot& s = slots_[idx];
      bool overlaid = mi < mixedKeys_.size() && mixedKeys_[mi] == idx;
      if (s.count == 0 && !overlaid) continue;
      while (base[fid + 1] <= idx) ++fid;  // ascending idx: cursor walk
      uint64_t n = s.count, u = s.uniform;
      uint64_t raw = n * u;
      uint64_t s125 = n * causalScaledCost(u, 5, 4);
      uint64_t s2 = n * causalScaledCost(u, 2, 1);
      uint64_t s4 = n * causalScaledCost(u, 4, 1);
      if (overlaid) {
        Mixed& m = mixed_[idx];
        raw += m.raw;
        s125 += m.s125;
        s2 += m.s2;
        s4 += m.s4;
        m = {};
        ++mi;
      }
      emit(fid, idx - base[fid], raw, s125, s2, s4);
      s.count = 0;
      ++emitted;
    }
    mixedKeys_.clear();
    lastCount_ = emitted;
  }

  /// Sites emitted by the previous drain — a reserve() hint for the caller's
  /// span site vector (consecutive segments of the same program touch
  /// similar site populations).
  uint64_t lastDrainCount() const { return lastCount_; }

  /// Resets all charged slots without emitting (zero-length segment elided).
  void discard() {
    for (Slot& s : slots_) s.count = 0;
    for (uint32_t idx : mixedKeys_) mixed_[idx] = {};
    mixedKeys_.clear();
  }

  void chargeSlow(uint32_t idx, uint64_t c) {
    Slot& s = slots_[idx];
    if (s.uniform == 0 && s.count == 0 && c <= 0xffffffffull) {
      s.uniform = static_cast<uint32_t>(c);  // latch the first-seen cost
      s.count = 1;
      return;
    }
    // Exact dense overlay; the slot keeps its uniform cost. Every overlay
    // charge has c > 0, so raw == 0 detects this segment's first touch.
    Mixed& m = mixed_[idx];
    if (m.raw == 0) mixedKeys_.push_back(idx);
    m.raw += c;
    m.s125 += causalScaledCost(c, 5, 4);
    m.s2 += causalScaledCost(c, 2, 1);
    m.s4 += causalScaledCost(c, 4, 1);
  }

 private:
  struct Mixed {  ///< exact per-charge sums for non-uniform charges
    uint64_t raw = 0, s125 = 0, s2 = 0, s4 = 0;
  };

  const std::vector<uint32_t>* siteBase_ = nullptr;
  std::vector<Slot> slots_;
  std::vector<Mixed> mixed_;         // dense overlay, indexed like slots_
  std::vector<uint32_t> mixedKeys_;  // overlay slots touched this segment
  uint64_t lastCount_ = 0;
};

class CostModel {
 public:
  explicit CostModel(const CostProfile& p) : p_(p) {}
  const CostProfile& profile() const { return p_; }

  /// Static (per-instruction) cost. Size-dependent extras (array allocation,
  /// fills, copies) are charged by the interpreter on top of this.
  uint64_t cost(const ir::Instr& in) const;

 private:
  CostProfile p_;
};

}  // namespace cb::rt
