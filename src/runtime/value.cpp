#include "runtime/value.h"

#include <sstream>

namespace cb::rt {

namespace {

uint64_t valueBytes(const Value& v) {
  switch (v.kind) {
    case VKind::Tuple:
    case VKind::Record: {
      uint64_t n = 0;
      for (const Value& e : v.elems) n += valueBytes(e);
      return n;
    }
    case VKind::Array:
      return v.arr ? v.arr->approxBytes() : 0;
    default:
      return 8;
  }
}

}  // namespace

uint64_t ArrayObj::approxBytes() const {
  if (base) return 0;  // views own nothing
  uint64_t n = 0;
  for (const Value& e : data) n += valueBytes(e);
  return n;
}

std::string renderValue(const Value& v) {
  std::ostringstream out;
  switch (v.kind) {
    case VKind::None: out << "<none>"; break;
    case VKind::Int: out << v.i; break;
    case VKind::Real: out << v.d; break;
    case VKind::Bool: out << (v.b ? "true" : "false"); break;
    case VKind::Str: out << (v.str ? *v.str : ""); break;
    case VKind::Ref: out << "<ref>"; break;
    case VKind::Tuple: {
      out << "(";
      for (size_t i = 0; i < v.elems.size(); ++i) {
        if (i) out << ", ";
        out << renderValue(v.elems[i]);
      }
      out << ")";
      break;
    }
    case VKind::Record: {
      out << "{";
      for (size_t i = 0; i < v.elems.size(); ++i) {
        if (i) out << ", ";
        out << renderValue(v.elems[i]);
      }
      out << "}";
      break;
    }
    case VKind::Domain: {
      out << "{";
      for (int d = 0; d < v.dom.rank; ++d) {
        if (d) out << ", ";
        out << v.dom.lo[d] << ".." << v.dom.hi[d];
      }
      out << "}";
      break;
    }
    case VKind::Array: {
      if (!v.arr) {
        out << "[]";
        break;
      }
      out << "[" << v.arr->dom.size() << " elements]";
      break;
    }
  }
  return out.str();
}

}  // namespace cb::rt
