// Post-mortem blame attribution (paper §IV.C): combine the static blame
// database with consolidated instances, bubble blame up the call path via
// exit variables / transfer functions, and aggregate per source variable.
#pragma once

#include <string>
#include <vector>

#include "analysis/blame.h"
#include "postmortem/instance.h"
#include "sampling/sample.h"

namespace cb::pm {

struct VariableBlame {
  std::string name;      // "Pos", "->partArray[i].zoneArray[j].value", ...
  std::string type;      // Chapel-style type display
  std::string context;   // defining function ("main" for module-scope vars)
  uint64_t sampleCount = 0;
  double percent = 0.0;  // of user samples; rows can sum to > 100% (paper §III)
};

struct BlameReport {
  uint64_t totalUserSamples = 0;  // denominator for percentages
  uint64_t totalRawSamples = 0;   // including idle/runtime samples
  std::vector<VariableBlame> rows;  // sorted by percent, descending

  /// Finds a row by display name (first match); nullptr if absent.
  const VariableBlame* find(const std::string& name) const;
};

struct AttributionOptions {
  bool interprocedural = true;  // transfer-function bubbling (ablatable)
  bool includeHidden = false;   // include compiler temps (debugging aid)
};

/// Attributes every instance and aggregates per (variable, context).
BlameReport attribute(const an::ModuleBlame& mb, const std::vector<Instance>& instances,
                      const AttributionOptions& opts = {});

/// Step 4 for multi-locale runs (paper §IV.C: "for multi-locale, we need to
/// aggregate the results across the nodes"): merges per-locale blame
/// reports by summing sample counts per (variable, context) and recomputing
/// percentages over the combined denominator. Step 3 is embarrassingly
/// parallel across locales; this is the final combine.
BlameReport aggregateAcrossLocales(const std::vector<const BlameReport*>& perLocale);

/// Resolves the user-facing context of a function: task functions report
/// their lexically-enclosing user function; _module_init reports "main".
std::string userContextName(const ir::Module& m, ir::FuncId f);

}  // namespace cb::pm
