// Post-mortem blame attribution (paper §IV.C): combine the static blame
// database with consolidated instances, bubble blame up the call path via
// exit variables / transfer functions, and aggregate per source variable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/blame.h"
#include "postmortem/instance.h"
#include "sampling/sample.h"

namespace cb::pm {

/// One cell of a sparse locale-pair communication matrix: `samples` remote
/// samples crossed from executing locale `src` to owning locale `dst`.
/// Matrices are stored as vectors sorted by (src, dst) with no zero cells,
/// so merges and comparisons are order-stable at any locale count.
struct CommCell {
  int32_t src = 0;
  int32_t dst = 0;
  uint64_t samples = 0;

  friend bool operator==(const CommCell&, const CommCell&) = default;
};

struct VariableBlame {
  std::string name;      // "Pos", "->partArray[i].zoneArray[j].value", ...
  std::string type;      // Chapel-style type display
  std::string context;   // defining function ("main" for module-scope vars)
  uint64_t sampleCount = 0;
  double percent = 0.0;  // of user samples; rows can sum to > 100% (paper §III)
  /// PGAS split of `sampleCount` by the comm classification the sample
  /// carried (sampling::AccessKind): pure compute (no array access pending),
  /// accesses that stayed on the executing locale, and accesses that crossed
  /// locales as GETs/PUTs. Always sums to sampleCount.
  uint64_t computeSamples = 0;
  uint64_t localSamples = 0;
  uint64_t remoteGetSamples = 0;
  uint64_t remotePutSamples = 0;

  /// Sparse per-variable locale-pair matrix: how this variable's remote
  /// samples distribute over (executing, owning) locale pairs. Sorted by
  /// (src, dst), zero cells omitted; cell samples sum to remoteSamples().
  std::vector<CommCell> commMatrix;

  uint64_t remoteSamples() const { return remoteGetSamples + remotePutSamples; }

  friend bool operator==(const VariableBlame&, const VariableBlame&) = default;
};

/// The canonical row order of every BlameReport: percent (i.e. sample count)
/// descending, then name, then context, then type. A *total* order — reports
/// keyed on (context, name, type) have no equal elements under it — so any
/// merge order of per-shard or per-locale partial reports sorts to the same
/// row sequence.
bool blameRowLess(const VariableBlame& a, const VariableBlame& b);

struct BlameReport {
  uint64_t totalUserSamples = 0;  // denominator for percentages
  uint64_t totalRawSamples = 0;   // including idle/runtime samples
  /// Global locale-pair matrix over remote *user samples* (each remote
  /// sample counts exactly once, independent of how many variables it
  /// blames — per-variable rows overlap and cannot be summed for this).
  /// Sparse, sorted by (src, dst).
  std::vector<CommCell> totalComm;
  std::vector<VariableBlame> rows;  // sorted by blameRowLess

  /// Finds a row by display name (first match); nullptr if absent.
  const VariableBlame* find(const std::string& name) const;

  friend bool operator==(const BlameReport&, const BlameReport&) = default;
};

struct AttributionOptions {
  bool interprocedural = true;  // transfer-function bubbling (ablatable)
  bool includeHidden = false;   // include compiler temps (debugging aid)
};

/// Opaque carrier of attributor state (the per-stack blame memo and per-key
/// tallies) between an `attribute` call and a later `attributionSites` call
/// over the same (blame map, instances, options). When primed, sites come
/// straight out of the memo — no second pass over the samples and no repeat
/// of the entity-matching walk. Only the sequential postmortem path primes
/// it; the sharded path leaves it empty and `attributionSites` falls back to
/// a full collection run, so the output is identical either way.
class AttributionCache {
 public:
  AttributionCache();
  ~AttributionCache();
  AttributionCache(AttributionCache&&) noexcept;
  AttributionCache& operator=(AttributionCache&&) noexcept;

  /// Drops any primed state; the next attributionSites call falls back.
  void clear();

  struct Impl;
  Impl* impl() const { return impl_.get(); }

 private:
  std::unique_ptr<Impl> impl_;
};

/// Attributes every instance and aggregates per (variable, context).
/// A non-null `cache` is (re)primed with this run's attributor state for a
/// later attributionSites call over the same blame map and instances.
BlameReport attribute(const an::ModuleBlame& mb, const std::vector<Instance>& instances,
                      const AttributionOptions& opts = {}, AttributionCache* cache = nullptr);

/// Subset form (the parallel post-mortem shard kernel): attributes only the
/// pointed-to instances. Null entries are skipped. Attribution is a pure
/// per-instance map-reduce, so attributing a partition of the instances
/// shard-by-shard and merging with aggregateAcrossLocales reproduces the
/// full-vector result exactly.
BlameReport attribute(const an::ModuleBlame& mb, const std::vector<const Instance*>& instances,
                      const AttributionOptions& opts = {});

/// The shared order-independent reduction kernel, used both as the paper's
/// step 4 for multi-locale runs (§IV.C: "for multi-locale, we need to
/// aggregate the results across the nodes") and as the merge step of the
/// parallel sharded post-mortem pipeline. Sums sample counts per
/// (context, variable, type), recomputes percentages over the combined
/// denominator, and re-sorts with blameRowLess — the result is bit-identical
/// for every permutation and partition of the inputs.
BlameReport aggregateAcrossLocales(const std::vector<const BlameReport*>& perLocale);

/// Incremental form of the same reduction for memory-bounded weak scaling:
/// per-locale reports are folded in one at a time (and can be discarded by
/// the caller immediately after), so peak memory is O(distinct rows in the
/// aggregate), not O(locales × report). Every accumulator operation is a
/// commutative sum or a sorted-vector merge and percentages/row order are
/// fixed only in finish(), so ANY arrival order of the same report set —
/// completion order under a thread pool included — finishes bit-identically
/// to aggregateAcrossLocales over the batch (enforced by the
/// WeakScaleProperty tests).
class StreamingAggregator {
 public:
  StreamingAggregator();
  ~StreamingAggregator();
  StreamingAggregator(StreamingAggregator&&) noexcept;
  StreamingAggregator& operator=(StreamingAggregator&&) noexcept;

  /// Folds one per-locale (or per-shard) report into the accumulator.
  void add(const BlameReport& report);

  /// Recomputes percentages over the combined denominator, sorts with
  /// blameRowLess and returns the aggregate. The accumulator is consumed:
  /// reuse requires a fresh instance.
  BlameReport finish();

  /// Reports folded in so far.
  uint64_t reportsAdded() const;

  /// Allocator-counter style accounting of the accumulator's heap footprint
  /// (interned strings, row table, comm cells). Used by bench_weak_scale to
  /// assert the 1024-locale aggregate stays within a fixed budget.
  size_t approxMemoryBytes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Resolves the user-facing context of a function: task functions report
/// their lexically-enclosing user function; _module_init reports "main".
std::string userContextName(const ir::Module& m, ir::FuncId f);

/// The code sites behind one blame row: for the variable row keyed
/// (context, name, type), the distinct RunLog::siteKey values of the sampled
/// (leaf) instructions of every instance that blamed it. This is the bridge
/// from data-centric attribution into the causal what-if replay
/// (an::causal::VariableSites): scaling these sites by k scales exactly the
/// code the variable's blame was measured at.
struct VariableSiteSet {
  std::string context;
  std::string name;
  std::string type;
  uint64_t sampleCount = 0;     // instances that blamed this row
  std::vector<uint64_t> sites;  // sorted ascending, deduplicated

  friend bool operator==(const VariableSiteSet&, const VariableSiteSet&) = default;
};

/// Runs the same attribution pass as `attribute` but collects, per row, the
/// leaf-site set instead of the comm tally. Rows come back in the matching
/// BlameReport's order (blameRowLess over the same keys and counts), so
/// sites[i] corresponds to report.rows[i] when both were built from the same
/// instances and options.
///
/// When `cache` was primed by an `attribute` call over the same blame map
/// (and the same instances/options — the caller's contract), the site sets
/// are derived from the cached per-stack memo instead of re-attributing:
/// same rows, same order, no second pass. An unprimed or mismatched cache
/// falls back to the full run.
std::vector<VariableSiteSet> attributionSites(const an::ModuleBlame& mb,
                                              const std::vector<Instance>& instances,
                                              const AttributionOptions& opts = {},
                                              const AttributionCache* cache = nullptr);

}  // namespace cb::pm
