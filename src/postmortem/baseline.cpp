#include "postmortem/baseline.h"

#include <algorithm>
#include <unordered_map>

#include "analysis/resolve.h"

namespace cb::pm {

namespace {

/// For each function: alloca instruction -> the ArrayNew feeding it (the
/// allocation site a heap-tracking profiler would intercept).
std::unordered_map<uint64_t, uint64_t> buildAllocSiteMap(const ir::Module& m) {
  std::unordered_map<uint64_t, uint64_t> out;  // (func, alloca) -> (func, arraynew)
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    const ir::Function& fn = m.function(f);
    for (ir::InstrId i = 0; i < fn.numInstrs(); ++i) {
      const ir::Instr& in = fn.instrs[i];
      if (in.op != ir::Opcode::Store) continue;
      const ir::ValueRef& val = in.ops[0];
      const ir::ValueRef& addr = in.ops[1];
      if (val.kind != ir::ValueRef::Kind::Reg || addr.kind != ir::ValueRef::Kind::Reg) continue;
      if (fn.instrs[val.reg].op != ir::Opcode::ArrayNew) continue;
      if (fn.instrs[addr.reg].op != ir::Opcode::Alloca) continue;
      out[sampling::RunLog::siteKey(f, addr.reg)] = sampling::RunLog::siteKey(f, val.reg);
    }
  }
  return out;
}

bool isMemoryTouch(ir::Opcode op) {
  switch (op) {
    case ir::Opcode::Load:
    case ir::Opcode::Store:
    case ir::Opcode::IndexAddr:
      return true;
    default:
      return false;
  }
}

}  // namespace

BaselineReport baselineAttribute(const ir::Module& m, const sampling::RunLog& log,
                                 const std::vector<Instance>& instances,
                                 const BaselineOptions& opts) {
  auto allocSites = buildAllocSiteMap(m);
  BaselineReport report;
  std::unordered_map<std::string, uint64_t> agg;
  uint64_t unknown = 0;

  for (const Instance& inst : instances) {
    if (inst.idle || inst.frames.empty()) continue;
    ++report.totalSamples;
    const ResolvedFrame& leaf = inst.frames.back();
    const ir::Function& fn = m.function(leaf.func);
    std::string attributed;
    if (leaf.instr < fn.numInstrs()) {
      const ir::Instr& in = fn.instrs[leaf.instr];
      if (isMemoryTouch(in.op)) {
        // Which address is touched? Store: ops[1]; Load: ops[0]; IndexAddr:
        // ops[0] (the array value).
        const ir::ValueRef& addr = in.op == ir::Opcode::Store ? in.ops[1] : in.ops[0];
        an::EntityKey key = an::resolveChainKey(m, fn, addr);
        if (key.root == an::RootKind::Local) {
          const ir::Instr& a = fn.instrs[key.rootId];
          bool isArrayVar =
              m.types().kindOf(m.types().pointee(a.type)) == ir::TypeKind::Array;
          if (isArrayVar && a.extra.debugVar != ir::kNone &&
              m.debugVar(a.extra.debugVar).displayable()) {
            auto site = allocSites.find(sampling::RunLog::siteKey(leaf.func, key.rootId));
            if (site != allocSites.end()) {
              auto bytes = log.allocBytesBySite.find(site->second);
              if (bytes != log.allocBytesBySite.end() && bytes->second >= opts.minBytes) {
                attributed = m.interner().str(m.debugVar(a.extra.debugVar).name);
              }
            }
          }
        }
      }
    }
    if (attributed.empty()) ++unknown;
    else ++agg[attributed];
  }

  for (const auto& [name, count] : agg) {
    BaselineRow row;
    row.name = name;
    row.sampleCount = count;
    row.percent =
        report.totalSamples ? 100.0 * static_cast<double>(count) / report.totalSamples : 0.0;
    report.rows.push_back(std::move(row));
  }
  BaselineRow unk;
  unk.name = "unknown data";
  unk.sampleCount = unknown;
  unk.percent =
      report.totalSamples ? 100.0 * static_cast<double>(unknown) / report.totalSamples : 0.0;
  report.unknownPercent = unk.percent;
  report.rows.push_back(std::move(unk));
  std::sort(report.rows.begin(), report.rows.end(),
            [](const auto& a, const auto& b) { return a.sampleCount > b.sampleCount; });
  return report;
}

}  // namespace cb::pm
