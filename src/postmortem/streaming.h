// Memory-bounded streaming post-mortem: chunked consolidation + attribution
// over an incrementally-decoded run log. Where the batch pipeline
// materializes every RawSample and every Instance before attributing, this
// path holds at most
//
//   spawn registry + comm metadata      (RunLogStreamer::readMeta)
// + one chunk of consolidated instances (opts.chunkSamples)
// + the blame accumulator               (O(distinct rows), not O(samples))
// + one fixed decode buffer             (ChunkReader, default 256 KiB)
//
// so peak memory is a function of the PROGRAM being profiled (distinct
// blamed variables, live tasks), never of the log length. Attribution is a
// pure per-instance map-reduce and StreamingAggregator's fold is partition-
// and order-invariant, so the streamed report is bit-identical to
// attribute(consolidate(log)) for every chunk size — the same contract the
// sharded parallel path keeps, enforced by the streaming property tests.
#pragma once

#include <cstdint>

#include "postmortem/attribution.h"
#include "postmortem/instance.h"
#include "sampling/log_stream.h"

namespace cb::pm {

struct StreamingPostmortemOptions {
  ConsolidateOptions consolidate;
  AttributionOptions attribution;
  /// Instances consolidated per attribution batch. Any value >= 1 produces
  /// the identical report; larger chunks trade memory for fewer partial
  /// attribution passes.
  uint32_t chunkSamples = 4096;
};

/// Accounting for the bounded-memory claim (allocator-counter style, same
/// discipline as StreamingAggregator::approxMemoryBytes).
struct StreamingPostmortemStats {
  uint64_t samples = 0;        // samples consolidated
  uint64_t chunks = 0;         // partial attribution batches folded
  size_t decodeBufferBytes = 0;   // resident ChunkReader buffer
  size_t peakAccumulatorBytes = 0;  // max aggregator footprint observed
};

/// Runs the two-pass streaming protocol over an opened streamer: readMeta
/// (validates the whole log, collects spawns/alloc/comm), then consolidates
/// and attributes samples chunk-by-chunk, folding partial reports through
/// StreamingAggregator. Fills `out` with the aggregate; with mb == nullptr
/// attribution is skipped and `out` is the empty report (matching the
/// sharded path's --fast semantics). Returns false on malformed input —
/// accepting exactly the logs the batch loader accepts. `meta` (optional)
/// receives the non-sample log contents (header counters, spawns,
/// alloc sites, comm matrix).
bool runPostmortemStreaming(const ir::Module& m, const an::ModuleBlame* mb,
                            sampling::RunLogStreamer& streamer,
                            const StreamingPostmortemOptions& opts, BlameReport& out,
                            sampling::RunLog* meta = nullptr,
                            StreamingPostmortemStats* stats = nullptr);

/// File convenience wrapper: opens `path` (format auto-detected) and streams
/// it through runPostmortemStreaming.
bool runPostmortemStreamingFile(const ir::Module& m, const an::ModuleBlame* mb,
                                const std::string& path, const StreamingPostmortemOptions& opts,
                                BlameReport& out, sampling::RunLog* meta = nullptr,
                                StreamingPostmortemStats* stats = nullptr);

}  // namespace cb::pm
