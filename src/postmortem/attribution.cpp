#include "postmortem/attribution.h"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "support/common.h"
#include "support/interner.h"

namespace cb::pm {

using an::Entity;
using an::EntityId;
using an::EntityKey;
using an::FunctionBlame;
using an::kNoEntity;
using an::PathElem;
using an::RootKind;

namespace {

/// Aggregation key: interned (context, name, type) symbol ids. The seed
/// concatenated the three display strings with '\x01' separators and hashed
/// that composite per sample; interning hashes each distinct string once and
/// reduces the per-sample work to a 12-byte POD hash. Display strings are
/// materialized only when rows are emitted.
struct AttrKey {
  uint32_t context = 0;
  uint32_t name = 0;
  uint32_t type = 0;

  friend bool operator==(const AttrKey&, const AttrKey&) = default;
};

/// Per-key sample tally, split by the sample's comm classification
/// (sampling::AccessKind) — index order None/Local/RemoteGet/RemotePut —
/// plus the sparse locale-pair tally of the remote kinds (pairKey -> count;
/// a sorted map so emission order is deterministic).
struct AttrCounts {
  uint64_t byKind[4] = {0, 0, 0, 0};
  std::map<uint64_t, uint64_t> cells;

  uint64_t total() const { return byKind[0] + byKind[1] + byKind[2] + byKind[3]; }
};

/// Renders a sparse pairKey->count map as the sorted CommCell vector the
/// report structures carry.
std::vector<CommCell> cellsOf(const std::map<uint64_t, uint64_t>& m) {
  std::vector<CommCell> out;
  out.reserve(m.size());
  for (const auto& [k, n] : m)
    out.push_back(CommCell{sampling::RunLog::pairSrc(k), sampling::RunLog::pairDst(k), n});
  return out;
}

/// Accumulates `add` into `into`, both sorted by (src, dst): a two-pointer
/// merge with no per-cell map nodes. `scratch` is caller-provided so a long
/// sequence of merges (one per input report) reuses one buffer instead of
/// allocating per row.
void mergeSortedCells(std::vector<CommCell>& into, const std::vector<CommCell>& add,
                      std::vector<CommCell>& scratch) {
  if (add.empty()) return;
  if (into.empty()) {
    into = add;
    return;
  }
  scratch.clear();
  scratch.reserve(into.size() + add.size());
  auto key = [](const CommCell& c) { return sampling::RunLog::pairKey(c.src, c.dst); };
  size_t i = 0, j = 0;
  while (i < into.size() && j < add.size()) {
    uint64_t ka = key(into[i]), kb = key(add[j]);
    if (ka < kb) {
      scratch.push_back(into[i++]);
    } else if (kb < ka) {
      scratch.push_back(add[j++]);
    } else {
      CommCell c = into[i++];
      c.samples += add[j++].samples;
      scratch.push_back(c);
    }
  }
  scratch.insert(scratch.end(), into.begin() + i, into.end());
  scratch.insert(scratch.end(), add.begin() + j, add.end());
  into.swap(scratch);
}

struct AttrKeyHash {
  size_t operator()(const AttrKey& k) const {
    uint64_t h = k.context;
    h = (h ^ k.name) * 0x9E3779B97F4A7C15ull;
    h = (h ^ k.type) * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

/// Renders additional path elements appended below an already-rendered
/// entity (used when a callee's sub-object path lands on a caller variable).
std::string renderExtraPath(const std::vector<PathElem>& path, int indexDepth) {
  static const char* kIndexNames[] = {"i", "j", "k", "l", "m"};
  std::string out;
  for (const PathElem& pe : path) {
    switch (pe.kind) {
      case PathElem::Kind::Field:
        out += "." + (pe.fieldName.empty() ? ("f" + std::to_string(pe.idx)) : pe.fieldName);
        break;
      case PathElem::Kind::Index:
        out += std::string("[") + kIndexNames[std::min(indexDepth, 4)] + "]";
        ++indexDepth;
        break;
      case PathElem::Kind::TupleElem:
        out += pe.idx == ~0u ? "(i)" : "(" + std::to_string(pe.idx + 1) + ")";
        break;
    }
  }
  return out;
}

int indexDepthOf(const std::vector<PathElem>& path) {
  int n = 0;
  for (const PathElem& pe : path)
    if (pe.kind == PathElem::Kind::Index) ++n;
  return n;
}

class Attributor {
 public:
  Attributor(const an::ModuleBlame& mb, const AttributionOptions& opts)
      : mb_(mb), m_(*mb.mod), opts_(opts) {
    // One context name per function plus a name+type pair per displayable
    // entity is the steady-state symbol population; reserving it up front
    // keeps the interner from rehashing mid-attribution.
    size_t displayable = 0;
    for (const FunctionBlame& fb : mb.functions)
      for (const Entity& ent : fb.entities) displayable += ent.displayable ? 1 : 0;
    syms_.reserve(1 + m_.numFunctions() + 2 * displayable);
    mainSym_ = syms_.intern("main").id();
    contextSym_.assign(m_.numFunctions(), kUncached);
    entSym_.resize(m_.numFunctions());
    aliasKeys_.resize(m_.numGlobals());
  }

  BlameReport run(const std::vector<const Instance*>& instances) {
    for (const Instance* instPtr : instances) {
      if (!instPtr) continue;
      const Instance& inst = *instPtr;
      ++report_.totalRawSamples;
      if (inst.idle || inst.frames.empty()) continue;
      ++report_.totalUserSamples;
      // The blamed key set is a pure function of the resolved frame vector
      // (blameOne only ever consults inst.frames), and samples repeat the
      // same hot stacks constantly, so memoise per distinct stack: the
      // entity matching and interprocedural transfer walk run once per
      // stack shape instead of once per sample.
      stackKey_.clear();
      for (const ResolvedFrame& fr : inst.frames)
        stackKey_.push_back(sampling::RunLog::siteKey(fr.func, fr.instr));
      auto [memoIt, freshStack] = stackMemo_.try_emplace(stackKey_);
      if (freshStack) {
        perSample_.clear();
        // Inclusive attribution: every frame of the call path is matched
        // against its function's blame sets (a sample deep in a callee also
        // blames caller variables whose blame lines include the callsite).
        for (size_t fi = 0; fi < inst.frames.size(); ++fi) {
          const ResolvedFrame& fr = inst.frames[fi];
          const FunctionBlame& fb = mb_.fn(fr.func);
          if (fr.instr >= fb.instrEntities.size()) continue;
          for (EntityId e : fb.instrEntities[fr.instr])
            blameOne(inst, fi, fb, e, {});
        }
        memoIt->second.assign(perSample_.begin(), perSample_.end());
        // Causal bridge: remember which sampled instruction fed each row.
        // The leaf frame is where the overflow fired, i.e. the site whose
        // charges the sample stands for (RunLog::siteKey space, same as
        // taskSpan sites), so scaling a row's site set scales its measured
        // code. Site and blamed keys are both pure functions of the stack,
        // so one insert per distinct stack covers every repeat sample.
        if (collectSites_ && !perSample_.empty()) {
          uint64_t site = stackKey_.back();  // == siteKey(leaf.func, leaf.instr)
          for (const AttrKey& key : perSample_) siteAgg_[key].insert(site);
        }
      }
      const std::vector<AttrKey>& blamed = memoIt->second;
      // Each blamed key absorbs one sample, tallied under the sample's comm
      // classification so finish() can emit the compute/local/remote split;
      // remote samples also land in the blamed variables' locale-pair cells
      // and (once per sample) in the report-global matrix.
      size_t kind = static_cast<size_t>(inst.accessKind);
      bool remote = inst.accessKind == sampling::AccessKind::RemoteGet ||
                    inst.accessKind == sampling::AccessKind::RemotePut;
      uint64_t pk =
          remote ? sampling::RunLog::pairKey(inst.srcLocale, inst.dstLocale) : 0;
      if (remote) ++totalComm_[pk];
      for (const AttrKey& key : blamed) {
        AttrCounts& ac = agg_[key];
        ++ac.byKind[kind];
        if (remote) ++ac.cells[pk];
      }
    }
    return finish();
  }

  std::vector<VariableSiteSet> runForSites(const std::vector<const Instance*>& instances) {
    collectSites_ = true;
    run(instances);  // agg_ keeps the per-key tallies finish() snapshotted
    return emitSites(siteAgg_);
  }

  /// Derives the site sets from a completed run() without touching the
  /// samples again: the per-stack memo already pairs every distinct stack
  /// (whose back() is the sampled leaf site) with its blamed keys, and agg_
  /// still holds the per-key sample tallies finish() snapshotted. Rebuilding
  /// siteAgg from the memo therefore reproduces runForSites' collection
  /// exactly — one insert per (distinct stack, blamed key), same keys, same
  /// counts — at per-stack cost instead of per-sample cost.
  std::vector<VariableSiteSet> sitesFromMemo() {
    std::unordered_map<AttrKey, std::unordered_set<uint64_t>, AttrKeyHash> siteAgg;
    for (const auto& [stack, blamed] : stackMemo_) {
      if (stack.empty() || blamed.empty()) continue;
      uint64_t site = stack.back();  // == siteKey(leaf.func, leaf.instr)
      for (const AttrKey& key : blamed) siteAgg[key].insert(site);
    }
    return emitSites(siteAgg);
  }

 private:
  std::vector<VariableSiteSet> emitSites(
      std::unordered_map<AttrKey, std::unordered_set<uint64_t>, AttrKeyHash>& siteAgg) {
    std::vector<VariableSiteSet> out;
    out.reserve(siteAgg.size());
    for (auto& [key, sites] : siteAgg) {
      VariableSiteSet row;
      row.context = syms_.str(Symbol(key.context));
      row.name = syms_.str(Symbol(key.name));
      row.type = syms_.str(Symbol(key.type));
      row.sampleCount = agg_[key].total();
      row.sites.assign(sites.begin(), sites.end());
      std::sort(row.sites.begin(), row.sites.end());
      out.push_back(std::move(row));
    }
    // Same total order as blameRowLess, so row i lines up with the matching
    // BlameReport's rows[i].
    std::sort(out.begin(), out.end(), [](const VariableSiteSet& a, const VariableSiteSet& b) {
      if (a.sampleCount != b.sampleCount) return a.sampleCount > b.sampleCount;
      if (a.name != b.name) return a.name < b.name;
      if (a.context != b.context) return a.context < b.context;
      return a.type < b.type;
    });
    return out;
  }

 public:

 private:
  static constexpr uint32_t kUncached = ~0u;

  uint32_t contextSymOf(ir::FuncId f) {
    uint32_t& slot = contextSym_[f];
    if (slot == kUncached) slot = syms_.intern(userContextName(m_, f)).id();
    return slot;
  }

  /// Interned (name, type) of an entity's fixed display strings, cached per
  /// (function, entity) so repeated samples never re-hash the strings.
  std::pair<uint32_t, uint32_t> entitySyms(const FunctionBlame& fb, EntityId e) {
    auto& table = entSym_[fb.func];
    if (table.empty()) table.assign(fb.entities.size(), {kUncached, kUncached});
    auto& slot = table[e];
    if (slot.first == kUncached) {
      slot.first = syms_.intern(fb.entities[e].displayName).id();
      slot.second = syms_.intern(fb.entities[e].typeDisplay).id();
    }
    return slot;
  }

  void blameOne(const Instance& inst, size_t frameIdx, const FunctionBlame& fb, EntityId e,
                std::vector<PathElem> extraPath) {
    if (depth_ > 64) return;  // cyclic transfer guard
    const Entity& ent = fb.entities[e];
    switch (ent.key.root) {
      case RootKind::Param:
        if (opts_.interprocedural && fb.exitViaCaller[e] && frameIdx > 0) {
          const ResolvedFrame& caller = inst.frames[frameIdx - 1];
          const FunctionBlame& cfb = mb_.fn(caller.func);
          auto cs = cfb.callsites.find(caller.instr);
          if (cs != cfb.callsites.end() &&
              ent.key.rootId < cs->second.paramToCallerEntity.size()) {
            EntityId ce = cs->second.paramToCallerEntity[ent.key.rootId];
            if (ce != kNoEntity) {
              std::vector<PathElem> combined = ent.key.path;
              combined.insert(combined.end(), extraPath.begin(), extraPath.end());
              ++depth_;
              blameOne(inst, frameIdx - 1, cfb, ce, std::move(combined));
              --depth_;
              return;
            }
          }
        }
        record(inst, frameIdx, fb, e, extraPath);
        return;
      case RootKind::Ret:
        if (opts_.interprocedural && frameIdx > 0) {
          const ResolvedFrame& caller = inst.frames[frameIdx - 1];
          const FunctionBlame& cfb = mb_.fn(caller.func);
          auto cs = cfb.callsites.find(caller.instr);
          if (cs != cfb.callsites.end()) {
            for (EntityId t : cs->second.resultTargets) {
              ++depth_;
              blameOne(inst, frameIdx - 1, cfb, t, {});
              --depth_;
            }
          }
        }
        return;  // return values are never reported directly
      case RootKind::Global:
      case RootKind::Local:
      case RootKind::Unknown:
        record(inst, frameIdx, fb, e, extraPath);
        return;
    }
  }

  void record(const Instance& inst, size_t frameIdx, const FunctionBlame& fb, EntityId e,
              const std::vector<PathElem>& extraPath) {
    const Entity& ent = fb.entities[e];
    if (!ent.displayable && !opts_.includeHidden) return;

    uint32_t nameSym, typeSym;
    if (extraPath.empty()) {
      std::tie(nameSym, typeSym) = entitySyms(fb, e);
    } else {
      // Prefer the statically-known combined entity if the function formed
      // one (better type display); otherwise render the suffix by hand.
      EntityKey combined = ent.key;
      combined.path.insert(combined.path.end(), extraPath.begin(), extraPath.end());
      EntityId ce = fb.find(combined);
      if (ce != kNoEntity) {
        std::tie(nameSym, typeSym) = entitySyms(fb, ce);
      } else {
        std::string name = ent.displayName;
        if (ent.key.path.empty()) name = "->" + name;
        name += renderExtraPath(extraPath, indexDepthOf(ent.key.path));
        nameSym = syms_.intern(name).id();
        typeSym = syms_.intern("?").id();
      }
    }

    uint32_t context = ent.key.root == RootKind::Global
                           ? mainSym_
                           : contextSymOf(inst.frames[frameIdx].func);
    perSample_.insert(AttrKey{context, nameSym, typeSym});

    // Module-scope aliases share their region: blaming RealPos blames Pos
    // (and vice versa) — §III: "writes to the memory region allocated to
    // the variable v, the aliases of v, ...".
    if (ent.key.root == RootKind::Global) {
      for (const AttrKey& k : aliasKeysOf(ent.key.rootId)) perSample_.insert(k);
    }
  }

  const std::vector<AttrKey>& aliasKeysOf(ir::GlobalId g) {
    auto& cached = aliasKeys_[g];
    if (cached) return *cached;
    cached.emplace();
    for (ir::GlobalId sib : mb_.aliasSiblings(g)) {
      const ir::GlobalVar& gv = m_.global(sib);
      if (gv.debugVar == ir::kNone || !m_.debugVar(gv.debugVar).displayable()) continue;
      const ir::DebugVar& dv = m_.debugVar(gv.debugVar);
      uint32_t sname = syms_.intern(m_.interner().str(dv.name)).id();
      uint32_t stype = syms_
                           .intern(dv.typeDisplay.empty()
                                       ? m_.types().display(gv.type, m_.interner())
                                       : dv.typeDisplay)
                           .id();
      cached->push_back(AttrKey{mainSym_, sname, stype});
    }
    return *cached;
  }

  BlameReport finish() {
    report_.rows.reserve(agg_.size());
    for (const auto& [key, counts] : agg_) {
      VariableBlame row;
      row.context = syms_.str(Symbol(key.context));
      row.name = syms_.str(Symbol(key.name));
      row.type = syms_.str(Symbol(key.type));
      row.computeSamples = counts.byKind[0];
      row.localSamples = counts.byKind[1];
      row.remoteGetSamples = counts.byKind[2];
      row.remotePutSamples = counts.byKind[3];
      row.commMatrix = cellsOf(counts.cells);
      row.sampleCount = counts.total();
      row.percent = report_.totalUserSamples
                        ? 100.0 * static_cast<double>(row.sampleCount) / report_.totalUserSamples
                        : 0.0;
      report_.rows.push_back(std::move(row));
    }
    report_.totalComm = cellsOf(totalComm_);
    std::sort(report_.rows.begin(), report_.rows.end(), blameRowLess);
    return std::move(report_);
  }

  const an::ModuleBlame& mb_;
  const ir::Module& m_;
  AttributionOptions opts_;
  BlameReport report_;
  StringInterner syms_;
  uint32_t mainSym_ = 0;
  std::vector<uint32_t> contextSym_;  // FuncId -> interned context name
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> entSym_;  // per func, per entity
  std::vector<std::optional<std::vector<AttrKey>>> aliasKeys_;      // per global
  std::unordered_set<AttrKey, AttrKeyHash> perSample_;
  /// Blamed-key sets memoised per distinct resolved stack (packed as
  /// siteKey(func, instr) per frame). FNV-1a over the packed frames; exact
  /// vector equality guards against collisions.
  struct StackHash {
    size_t operator()(const std::vector<uint64_t>& v) const {
      uint64_t h = 1469598103934665603ull;
      for (uint64_t x : v) {
        h ^= x;
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };
  std::vector<uint64_t> stackKey_;
  std::unordered_map<std::vector<uint64_t>, std::vector<AttrKey>, StackHash> stackMemo_;
  std::unordered_map<AttrKey, AttrCounts, AttrKeyHash> agg_;
  bool collectSites_ = false;
  std::unordered_map<AttrKey, std::unordered_set<uint64_t>, AttrKeyHash> siteAgg_;
  std::map<uint64_t, uint64_t> totalComm_;  // once-per-remote-sample pairs
  int depth_ = 0;
};

}  // namespace

const VariableBlame* BlameReport::find(const std::string& name) const {
  for (const VariableBlame& r : rows)
    if (r.name == name) return &r;
  return nullptr;
}

bool blameRowLess(const VariableBlame& a, const VariableBlame& b) {
  // sampleCount descending is percent descending: within one report every
  // row shares the denominator, so comparing counts avoids float ties.
  if (a.sampleCount != b.sampleCount) return a.sampleCount > b.sampleCount;
  if (a.name != b.name) return a.name < b.name;
  if (a.context != b.context) return a.context < b.context;
  return a.type < b.type;
}

std::string userContextName(const ir::Module& m, ir::FuncId f) {
  ir::FuncId cur = f;
  int guard = 0;
  while (cur != ir::kNone && m.function(cur).isTaskFn() && guard++ < 64)
    cur = m.function(cur).spawnParent;
  if (cur == ir::kNone) return "?";
  const std::string& n = m.function(cur).displayName;
  return n == "_module_init" ? "main" : n;
}

/// Holds the attributor whose run() primed the cache, plus the blame map it
/// ran against (identity-checked before reuse — a cache primed for one
/// module must never answer for another).
struct AttributionCache::Impl {
  std::optional<Attributor> attributor;
  const an::ModuleBlame* mb = nullptr;
};

AttributionCache::AttributionCache() : impl_(std::make_unique<Impl>()) {}
AttributionCache::~AttributionCache() = default;
AttributionCache::AttributionCache(AttributionCache&&) noexcept = default;
AttributionCache& AttributionCache::operator=(AttributionCache&&) noexcept = default;

void AttributionCache::clear() {
  impl_->attributor.reset();
  impl_->mb = nullptr;
}

BlameReport attribute(const an::ModuleBlame& mb, const std::vector<Instance>& instances,
                      const AttributionOptions& opts, AttributionCache* cache) {
  std::vector<const Instance*> ptrs;
  ptrs.reserve(instances.size());
  for (const Instance& inst : instances) ptrs.push_back(&inst);
  if (cache != nullptr) {
    cache->impl()->attributor.emplace(mb, opts);
    cache->impl()->mb = &mb;
    return cache->impl()->attributor->run(ptrs);
  }
  return Attributor(mb, opts).run(ptrs);
}

BlameReport attribute(const an::ModuleBlame& mb, const std::vector<const Instance*>& instances,
                      const AttributionOptions& opts) {
  return Attributor(mb, opts).run(instances);
}

std::vector<VariableSiteSet> attributionSites(const an::ModuleBlame& mb,
                                              const std::vector<Instance>& instances,
                                              const AttributionOptions& opts,
                                              const AttributionCache* cache) {
  if (cache != nullptr && cache->impl()->attributor.has_value() && cache->impl()->mb == &mb)
    return cache->impl()->attributor->sitesFromMemo();
  std::vector<const Instance*> ptrs;
  ptrs.reserve(instances.size());
  for (const Instance& inst : instances) ptrs.push_back(&inst);
  return Attributor(mb, opts).runForSites(ptrs);
}

namespace {

/// Shared accumulator behind both the batch and the streaming reductions.
/// Keys on (context, name, type) — the same key the attributor aggregates
/// per sample — so a merge of per-shard partial reports is row-for-row
/// identical to attributing the union sequentially. Strings are interned
/// once per distinct value, comm matrices merge as sorted CommCell vectors
/// via two-pointer passes (no per-cell map nodes), and percentages plus the
/// final row order are applied only in finish() — every fold is a
/// commutative sum, so arrival order cannot change the result.
struct AggAccum {
  StringInterner syms;
  std::unordered_map<AttrKey, VariableBlame, AttrKeyHash> agg;
  std::vector<CommCell> totalComm;
  std::vector<CommCell> scratch;
  uint64_t totalUserSamples = 0;
  uint64_t totalRawSamples = 0;
  uint64_t reports = 0;

  void add(const BlameReport& r) {
    ++reports;
    totalUserSamples += r.totalUserSamples;
    totalRawSamples += r.totalRawSamples;
    mergeSortedCells(totalComm, r.totalComm, scratch);
    // Rehash at most once per input report, never per row — in the row
    // table and in the interner alike (3 symbols per row upper-bounds the
    // distinct context/name/type strings this report can introduce).
    if (agg.size() + r.rows.size() > agg.bucket_count() * agg.max_load_factor())
      agg.reserve(agg.size() + r.rows.size());
    syms.reserve(3 * r.rows.size() + syms.size());
    for (const VariableBlame& row : r.rows) {
      AttrKey key{syms.intern(row.context).id(), syms.intern(row.name).id(),
                  syms.intern(row.type).id()};
      auto [it, inserted] = agg.emplace(key, row);
      if (!inserted) {
        it->second.sampleCount += row.sampleCount;
        it->second.computeSamples += row.computeSamples;
        it->second.localSamples += row.localSamples;
        it->second.remoteGetSamples += row.remoteGetSamples;
        it->second.remotePutSamples += row.remotePutSamples;
        mergeSortedCells(it->second.commMatrix, row.commMatrix, scratch);
      }
    }
  }

  BlameReport finish() {
    BlameReport out;
    out.totalUserSamples = totalUserSamples;
    out.totalRawSamples = totalRawSamples;
    out.totalComm = std::move(totalComm);
    out.rows.reserve(agg.size());
    for (auto& [key, row] : agg) {
      row.percent = totalUserSamples
                        ? 100.0 * static_cast<double>(row.sampleCount) / totalUserSamples
                        : 0.0;
      out.rows.push_back(std::move(row));
    }
    agg.clear();
    std::sort(out.rows.begin(), out.rows.end(), blameRowLess);
    return out;
  }

  size_t approxMemoryBytes() const {
    size_t bytes = sizeof(*this);
    // Arena-backed interner: owned characters once, map keys are views.
    bytes += syms.approxMemoryBytes();
    bytes += agg.bucket_count() * sizeof(void*);
    for (const auto& [key, row] : agg) {
      bytes += sizeof(key) + sizeof(row) + 2 * sizeof(void*);
      bytes += row.name.capacity() + row.type.capacity() + row.context.capacity();
      bytes += row.commMatrix.capacity() * sizeof(CommCell);
    }
    bytes += (totalComm.capacity() + scratch.capacity()) * sizeof(CommCell);
    return bytes;
  }
};

}  // namespace

BlameReport aggregateAcrossLocales(const std::vector<const BlameReport*>& perLocale) {
  AggAccum acc;
  for (const BlameReport* r : perLocale)
    if (r) acc.add(*r);
  return acc.finish();
}

struct StreamingAggregator::Impl {
  AggAccum acc;
};

StreamingAggregator::StreamingAggregator() : impl_(std::make_unique<Impl>()) {}
StreamingAggregator::~StreamingAggregator() = default;
StreamingAggregator::StreamingAggregator(StreamingAggregator&&) noexcept = default;
StreamingAggregator& StreamingAggregator::operator=(StreamingAggregator&&) noexcept = default;

void StreamingAggregator::add(const BlameReport& report) { impl_->acc.add(report); }

BlameReport StreamingAggregator::finish() { return impl_->acc.finish(); }

uint64_t StreamingAggregator::reportsAdded() const { return impl_->acc.reports; }

size_t StreamingAggregator::approxMemoryBytes() const { return impl_->acc.approxMemoryBytes(); }

}  // namespace cb::pm
