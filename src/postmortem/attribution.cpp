#include "postmortem/attribution.h"

#include <algorithm>
#include <unordered_set>

#include "support/common.h"

namespace cb::pm {

using an::Entity;
using an::EntityId;
using an::EntityKey;
using an::FunctionBlame;
using an::kNoEntity;
using an::PathElem;
using an::RootKind;

namespace {

/// Renders additional path elements appended below an already-rendered
/// entity (used when a callee's sub-object path lands on a caller variable).
std::string renderExtraPath(const std::vector<PathElem>& path, int indexDepth) {
  static const char* kIndexNames[] = {"i", "j", "k", "l", "m"};
  std::string out;
  for (const PathElem& pe : path) {
    switch (pe.kind) {
      case PathElem::Kind::Field:
        out += "." + (pe.fieldName.empty() ? ("f" + std::to_string(pe.idx)) : pe.fieldName);
        break;
      case PathElem::Kind::Index:
        out += std::string("[") + kIndexNames[std::min(indexDepth, 4)] + "]";
        ++indexDepth;
        break;
      case PathElem::Kind::TupleElem:
        out += pe.idx == ~0u ? "(i)" : "(" + std::to_string(pe.idx + 1) + ")";
        break;
    }
  }
  return out;
}

int indexDepthOf(const std::vector<PathElem>& path) {
  int n = 0;
  for (const PathElem& pe : path)
    if (pe.kind == PathElem::Kind::Index) ++n;
  return n;
}

class Attributor {
 public:
  Attributor(const an::ModuleBlame& mb, const AttributionOptions& opts)
      : mb_(mb), m_(*mb.mod), opts_(opts) {}

  BlameReport run(const std::vector<const Instance*>& instances) {
    for (const Instance* instPtr : instances) {
      if (!instPtr) continue;
      const Instance& inst = *instPtr;
      ++report_.totalRawSamples;
      if (inst.idle || inst.frames.empty()) continue;
      ++report_.totalUserSamples;
      perSample_.clear();
      // Inclusive attribution: every frame of the call path is matched
      // against its function's blame sets (a sample deep in a callee also
      // blames caller variables whose blame lines include the callsite).
      for (size_t fi = 0; fi < inst.frames.size(); ++fi) {
        const ResolvedFrame& fr = inst.frames[fi];
        const FunctionBlame& fb = mb_.fn(fr.func);
        if (fr.instr >= fb.instrEntities.size()) continue;
        for (EntityId e : fb.instrEntities[fr.instr])
          blameOne(inst, fi, fb, e, {});
      }
      for (const auto& key : perSample_) {
        auto& row = agg_[key];
        ++row;
      }
    }
    return finish();
  }

 private:
  void blameOne(const Instance& inst, size_t frameIdx, const FunctionBlame& fb, EntityId e,
                std::vector<PathElem> extraPath) {
    if (depth_ > 64) return;  // cyclic transfer guard
    const Entity& ent = fb.entities[e];
    switch (ent.key.root) {
      case RootKind::Param:
        if (opts_.interprocedural && fb.exitViaCaller[e] && frameIdx > 0) {
          const ResolvedFrame& caller = inst.frames[frameIdx - 1];
          const FunctionBlame& cfb = mb_.fn(caller.func);
          auto cs = cfb.callsites.find(caller.instr);
          if (cs != cfb.callsites.end() &&
              ent.key.rootId < cs->second.paramToCallerEntity.size()) {
            EntityId ce = cs->second.paramToCallerEntity[ent.key.rootId];
            if (ce != kNoEntity) {
              std::vector<PathElem> combined = ent.key.path;
              combined.insert(combined.end(), extraPath.begin(), extraPath.end());
              ++depth_;
              blameOne(inst, frameIdx - 1, cfb, ce, std::move(combined));
              --depth_;
              return;
            }
          }
        }
        record(inst, frameIdx, fb, ent, extraPath);
        return;
      case RootKind::Ret:
        if (opts_.interprocedural && frameIdx > 0) {
          const ResolvedFrame& caller = inst.frames[frameIdx - 1];
          const FunctionBlame& cfb = mb_.fn(caller.func);
          auto cs = cfb.callsites.find(caller.instr);
          if (cs != cfb.callsites.end()) {
            for (EntityId t : cs->second.resultTargets) {
              ++depth_;
              blameOne(inst, frameIdx - 1, cfb, t, {});
              --depth_;
            }
          }
        }
        return;  // return values are never reported directly
      case RootKind::Global:
      case RootKind::Local:
      case RootKind::Unknown:
        record(inst, frameIdx, fb, ent, extraPath);
        return;
    }
  }

  void record(const Instance& inst, size_t frameIdx, const FunctionBlame& fb, const Entity& ent,
              const std::vector<PathElem>& extraPath) {
    if (!ent.displayable && !opts_.includeHidden) return;

    std::string name = ent.displayName;
    std::string type = ent.typeDisplay;
    if (!extraPath.empty()) {
      // Prefer the statically-known combined entity if the function formed
      // one (better type display); otherwise render the suffix by hand.
      EntityKey combined = ent.key;
      combined.path.insert(combined.path.end(), extraPath.begin(), extraPath.end());
      EntityId ce = fb.find(combined);
      if (ce != kNoEntity) {
        name = fb.entities[ce].displayName;
        type = fb.entities[ce].typeDisplay;
      } else {
        if (ent.key.path.empty()) name = "->" + name;
        name += renderExtraPath(extraPath, indexDepthOf(ent.key.path));
        type = "?";
      }
    }

    std::string context = ent.key.root == RootKind::Global
                              ? "main"
                              : userContextName(m_, inst.frames[frameIdx].func);
    perSample_.insert(context + "\x01" + name + "\x01" + type);

    // Module-scope aliases share their region: blaming RealPos blames Pos
    // (and vice versa) — §III: "writes to the memory region allocated to
    // the variable v, the aliases of v, ...".
    if (ent.key.root == RootKind::Global) {
      for (ir::GlobalId sib : mb_.aliasSiblings(ent.key.rootId)) {
        const ir::GlobalVar& gv = m_.global(sib);
        if (gv.debugVar == ir::kNone || !m_.debugVar(gv.debugVar).displayable()) continue;
        const ir::DebugVar& dv = m_.debugVar(gv.debugVar);
        std::string sname = m_.interner().str(dv.name);
        std::string stype = dv.typeDisplay.empty()
                                ? m_.types().display(gv.type, m_.interner())
                                : dv.typeDisplay;
        perSample_.insert("main\x01" + sname + "\x01" + stype);
      }
    }
  }

  BlameReport finish() {
    for (const auto& [key, count] : agg_) {
      size_t p1 = key.find('\x01');
      size_t p2 = key.find('\x01', p1 + 1);
      VariableBlame row;
      row.context = key.substr(0, p1);
      row.name = key.substr(p1 + 1, p2 - p1 - 1);
      row.type = key.substr(p2 + 1);
      row.sampleCount = count;
      row.percent = report_.totalUserSamples
                        ? 100.0 * static_cast<double>(count) / report_.totalUserSamples
                        : 0.0;
      report_.rows.push_back(std::move(row));
    }
    std::sort(report_.rows.begin(), report_.rows.end(), blameRowLess);
    return std::move(report_);
  }

  const an::ModuleBlame& mb_;
  const ir::Module& m_;
  AttributionOptions opts_;
  BlameReport report_;
  std::unordered_set<std::string> perSample_;
  std::unordered_map<std::string, uint64_t> agg_;
  int depth_ = 0;
};

}  // namespace

const VariableBlame* BlameReport::find(const std::string& name) const {
  for (const VariableBlame& r : rows)
    if (r.name == name) return &r;
  return nullptr;
}

bool blameRowLess(const VariableBlame& a, const VariableBlame& b) {
  // sampleCount descending is percent descending: within one report every
  // row shares the denominator, so comparing counts avoids float ties.
  if (a.sampleCount != b.sampleCount) return a.sampleCount > b.sampleCount;
  if (a.name != b.name) return a.name < b.name;
  if (a.context != b.context) return a.context < b.context;
  return a.type < b.type;
}

std::string userContextName(const ir::Module& m, ir::FuncId f) {
  ir::FuncId cur = f;
  int guard = 0;
  while (cur != ir::kNone && m.function(cur).isTaskFn() && guard++ < 64)
    cur = m.function(cur).spawnParent;
  if (cur == ir::kNone) return "?";
  const std::string& n = m.function(cur).displayName;
  return n == "_module_init" ? "main" : n;
}

BlameReport attribute(const an::ModuleBlame& mb, const std::vector<Instance>& instances,
                      const AttributionOptions& opts) {
  std::vector<const Instance*> ptrs;
  ptrs.reserve(instances.size());
  for (const Instance& inst : instances) ptrs.push_back(&inst);
  return Attributor(mb, opts).run(ptrs);
}

BlameReport attribute(const an::ModuleBlame& mb, const std::vector<const Instance*>& instances,
                      const AttributionOptions& opts) {
  return Attributor(mb, opts).run(instances);
}

BlameReport aggregateAcrossLocales(const std::vector<const BlameReport*>& perLocale) {
  BlameReport out;
  // Key on (context, name, type) — the same key the attributor aggregates
  // per sample — so a merge of per-shard partial reports is row-for-row
  // identical to attributing the union sequentially.
  std::unordered_map<std::string, VariableBlame> agg;
  for (const BlameReport* r : perLocale) {
    if (!r) continue;
    out.totalUserSamples += r->totalUserSamples;
    out.totalRawSamples += r->totalRawSamples;
    for (const VariableBlame& row : r->rows) {
      std::string key = row.context + "\x01" + row.name + "\x01" + row.type;
      auto [it, inserted] = agg.emplace(key, row);
      if (!inserted) it->second.sampleCount += row.sampleCount;
    }
  }
  out.rows.reserve(agg.size());
  for (auto& [key, row] : agg) {
    row.percent = out.totalUserSamples
                      ? 100.0 * static_cast<double>(row.sampleCount) / out.totalUserSamples
                      : 0.0;
    out.rows.push_back(std::move(row));
  }
  std::sort(out.rows.begin(), out.rows.end(), blameRowLess);
  return out;
}

}  // namespace cb::pm
