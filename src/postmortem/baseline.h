// Allocation-threshold baseline profiler (the HPCToolkit-data-centric
// stand-in the paper argues against in §II.B).
//
// This baseline attributes a sample to a variable only when the sampled
// instruction directly touches a *heap array of at least `minBytes`
// (default 4 KiB) allocated for a local variable of the current function* —
// i.e. the allocation-interception model: static/heap variables above a
// size threshold, no local scalars, no blame propagation, and no handling
// of Chapel's module-scope variables (which the Chapel compiler lowers
// through module-init indirection, so the baseline files them under
// "unknown data"). On the paper's benchmarks ~95-97% of samples end up in
// "unknown data", which is the motivation for blame analysis.
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"
#include "postmortem/instance.h"
#include "sampling/sample.h"

namespace cb::pm {

struct BaselineRow {
  std::string name;       // variable name or "unknown data"
  uint64_t sampleCount = 0;
  double percent = 0.0;
};

struct BaselineReport {
  uint64_t totalSamples = 0;        // user samples
  std::vector<BaselineRow> rows;    // sorted desc; contains "unknown data"
  double unknownPercent = 0.0;
};

struct BaselineOptions {
  uint64_t minBytes = 4096;  // the ">= 4K bytes" tracking threshold
};

BaselineReport baselineAttribute(const ir::Module& m, const sampling::RunLog& log,
                                 const std::vector<Instance>& instances,
                                 const BaselineOptions& opts = {});

}  // namespace cb::pm
