// Parallel sharded post-mortem pipeline. The paper observes that step 3
// (consolidation + blame attribution) is embarrassingly parallel across
// locales; the same holds across samples within one locale, because both
// consolidation and attribution are pure per-sample map-reduces. This module
// shards the raw samples of a run log by (stream, taskTag), runs the two
// per-sample kernels on a fixed-size worker pool, and reduces the per-shard
// partial BlameReports with the order-independent aggregateAcrossLocales
// kernel. The contract — enforced by the shard-invariance property suite and
// the golden fixtures — is bit-identical output to the sequential path for
// every worker and shard count.
#pragma once

#include <cstdint>
#include <vector>

#include "postmortem/attribution.h"
#include "postmortem/instance.h"

namespace cb {
class ThreadPool;
}

namespace cb::pm {

struct ParallelOptions {
  /// Worker threads for the post-mortem step. 0 = hardware concurrency;
  /// 1 preserves today's exact sequential path (no pool, no sharding).
  uint32_t workers = 0;
  /// Shard count. 0 = auto (kShardsPerWorker per resolved worker, so the
  /// pool load-balances uneven shards). Clamped to >= 1.
  uint32_t shards = 0;
};

/// Shards-per-worker factor used when ParallelOptions.shards == 0.
inline constexpr uint32_t kShardsPerWorker = 4;

/// ParallelOptions.workers resolved against the machine: 0 -> hardware
/// concurrency (>= 1), anything else unchanged.
uint32_t resolveWorkers(uint32_t requested);

/// Deterministic shard assignment: sample i goes to shard
/// hash(taskTag != 0 ? taskTag : stream) % numShards, so all samples of one
/// task (and all non-task samples of one stream) land in the same shard.
/// The assignment depends only on the log contents and numShards — never on
/// scheduling — and every index of `log.samples` appears in exactly one
/// shard, in ascending order.
std::vector<std::vector<uint32_t>> shardSamples(const sampling::RunLog& log, uint32_t numShards);

struct PostmortemResult {
  /// Consolidated instances in original log order — bit-identical to the
  /// sequential consolidate() output regardless of worker/shard counts
  /// (each worker writes its shard's instances into pre-assigned slots).
  std::vector<Instance> instances;
  /// Merged blame report; empty (zero rows) when mb == nullptr.
  BlameReport report;
};

/// Runs consolidation and attribution sharded over `pool`. Pass
/// mb == nullptr to skip attribution (the --fast path, where the
/// source-variable mapping is stripped); consolidation still parallelizes.
PostmortemResult runPostmortemSharded(const ir::Module& m, const an::ModuleBlame* mb,
                                      const sampling::RunLog& log,
                                      const ConsolidateOptions& copts,
                                      const AttributionOptions& aopts, ThreadPool& pool,
                                      uint32_t numShards);

/// Convenience wrapper: resolves `popts`, creates the pool, and dispatches.
/// workers == 1 (after resolution) runs the plain sequential kernels on the
/// calling thread — exactly today's path, no pool created. A non-null
/// `cache` is primed on that sequential path (one attributor covers every
/// instance, so its memo is complete) for a later attributionSites call;
/// the sharded path clears it instead — per-shard memos are partial and
/// must not masquerade as full coverage.
PostmortemResult runPostmortem(const ir::Module& m, const an::ModuleBlame* mb,
                               const sampling::RunLog& log, const ConsolidateOptions& copts,
                               const AttributionOptions& aopts, const ParallelOptions& popts,
                               AttributionCache* cache = nullptr);

}  // namespace cb::pm
