#include "postmortem/parallel.h"

#include <algorithm>

#include "support/thread_pool.h"

namespace cb::pm {

namespace {

/// splitmix64 finalizer: spreads consecutive tags/stream ids across shards
/// instead of clustering them modulo the shard count.
uint64_t mixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint32_t resolveWorkers(uint32_t requested) {
  return requested == 0 ? ThreadPool::defaultConcurrency() : requested;
}

std::vector<std::vector<uint32_t>> shardSamples(const sampling::RunLog& log,
                                                uint32_t numShards) {
  numShards = std::max(1u, numShards);
  std::vector<std::vector<uint32_t>> shards(numShards);
  for (uint32_t i = 0; i < log.samples.size(); ++i) {
    const sampling::RawSample& s = log.samples[i];
    // taskTags are unique per spawn while stream ids are small and dense;
    // offset streams into their own key space so stream 3 and tag 3 differ.
    uint64_t key = s.taskTag != 0 ? s.taskTag : (0x8000000000000000ULL | s.stream);
    shards[mixKey(key) % numShards].push_back(i);
  }
  return shards;
}

PostmortemResult runPostmortemSharded(const ir::Module& m, const an::ModuleBlame* mb,
                                      const sampling::RunLog& log,
                                      const ConsolidateOptions& copts,
                                      const AttributionOptions& aopts, ThreadPool& pool,
                                      uint32_t numShards) {
  PostmortemResult out;
  std::vector<std::vector<uint32_t>> shards = shardSamples(log, numShards);

  // Stage 1 — consolidate. Each worker owns a disjoint set of output slots
  // (its shard's original sample indices), so no two jobs touch the same
  // element and the merged vector is in original log order by construction.
  out.instances.resize(log.samples.size());
  std::vector<Instance>& instances = out.instances;
  for (const std::vector<uint32_t>& shard : shards) {
    if (shard.empty()) continue;
    pool.submit([&m, &log, &copts, &instances, &shard] {
      for (uint32_t idx : shard)
        instances[idx] = consolidateSample(m, log, log.samples[idx], copts);
    });
  }
  pool.wait();

  if (!mb) return out;  // --fast: no source-variable mapping, no attribution

  // Stage 2 — attribute each shard independently into its own slot.
  std::vector<BlameReport> partials(shards.size());
  for (uint32_t s = 0; s < shards.size(); ++s) {
    if (shards[s].empty()) continue;
    pool.submit([mb, &aopts, &instances, &partials, &shards, s] {
      std::vector<const Instance*> ptrs;
      ptrs.reserve(shards[s].size());
      for (uint32_t idx : shards[s]) ptrs.push_back(&instances[idx]);
      partials[s] = attribute(*mb, ptrs, aopts);
    });
  }
  pool.wait();

  // Stage 3 — deterministic reduce: the multi-locale aggregation kernel is
  // order-independent, so the shard order (or any other) gives identical
  // rows, counts, percentages and row order to the sequential path.
  std::vector<const BlameReport*> ptrs;
  ptrs.reserve(partials.size());
  for (const BlameReport& r : partials) ptrs.push_back(&r);
  out.report = aggregateAcrossLocales(ptrs);
  return out;
}

PostmortemResult runPostmortem(const ir::Module& m, const an::ModuleBlame* mb,
                               const sampling::RunLog& log, const ConsolidateOptions& copts,
                               const AttributionOptions& aopts, const ParallelOptions& popts,
                               AttributionCache* cache) {
  if (cache) cache->clear();  // never leave a stale prime from a prior run
  uint32_t workers = resolveWorkers(popts.workers);
  if (workers <= 1) {
    // The exact sequential path: no pool, no sharding, no merge.
    PostmortemResult out;
    out.instances = consolidate(m, log, copts);
    if (mb) out.report = attribute(*mb, out.instances, aopts, cache);
    return out;
  }
  uint32_t numShards = popts.shards != 0 ? popts.shards : workers * kShardsPerWorker;
  ThreadPool pool(workers);
  return runPostmortemSharded(m, mb, log, copts, aopts, pool, numShards);
}

}  // namespace cb::pm
