#include "postmortem/instance.h"

namespace cb::pm {

namespace {

ResolvedFrame resolve(const ir::Module& m, const sampling::Frame& f) {
  ResolvedFrame out;
  out.func = f.func;
  out.instr = f.instr;
  const ir::Function& fn = m.function(f.func);
  out.funcName = fn.displayName;
  if (f.instr < fn.numInstrs()) {
    const SourceLoc& loc = fn.instrs[f.instr].loc;
    if (loc.valid()) {
      out.file = m.sourceManager().name(loc.file);
      out.line = loc.line;
    }
  }
  return out;
}

}  // namespace

Instance consolidateSample(const ir::Module& m, const sampling::RunLog& log,
                           const sampling::RawSample& s, const ConsolidateOptions& opts) {
  Instance inst;
  inst.stream = s.stream;
  inst.accessKind = s.accessKind;
  inst.srcLocale = s.srcLocale;
  inst.dstLocale = s.dstLocale;
  if (s.runtimeFrame != sampling::RuntimeFrameKind::None) {
    inst.idle = true;
    inst.runtimeFrame = s.runtimeFrame;
    return inst;
  }

  // Glue: prepend pre-spawn stacks, innermost tag first, walking the
  // parent chain ("we glue the pre-spawn stack trace and post-spawn stack
  // trace based on the unique spawn tag").
  std::vector<sampling::Frame> full;
  std::vector<const sampling::SpawnRecord*> chain;
  if (opts.glueSpawns) {
    uint64_t tag = s.taskTag;
    while (tag != 0) {
      auto it = log.spawns.find(tag);
      if (it == log.spawns.end()) break;
      chain.push_back(&it->second);
      tag = it->second.parentTag;
    }
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const sampling::SpawnRecord& rec = **it;
    for (const sampling::Frame& f : rec.preSpawnStack) {
      // Trim redundancy: if the pre-spawn leaf repeats the previous glue
      // point, skip the duplicate.
      if (!full.empty() && full.back() == f) continue;
      full.push_back(f);
    }
  }
  for (const sampling::Frame& f : s.stack) full.push_back(f);

  inst.frames.reserve(full.size());
  for (const sampling::Frame& f : full) inst.frames.push_back(resolve(m, f));
  return inst;
}

std::vector<Instance> consolidate(const ir::Module& m, const sampling::RunLog& log,
                                  const ConsolidateOptions& opts) {
  std::vector<Instance> out;
  out.reserve(log.samples.size());
  for (const sampling::RawSample& s : log.samples)
    out.push_back(consolidateSample(m, log, s, opts));
  return out;
}

}  // namespace cb::pm
