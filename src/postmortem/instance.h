// Post-mortem step 1 (paper §IV.C): convert raw context-sensitive samples
// into consolidated "instances" — complete, clean call paths with
// pre-/post-spawn stacks glued via spawn tags and resolved to file/line.
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"
#include "sampling/sample.h"

namespace cb::pm {

/// One resolved call-path frame.
struct ResolvedFrame {
  ir::FuncId func = ir::kNone;
  ir::InstrId instr = ir::kNone;
  std::string funcName;
  std::string file;
  uint32_t line = 0;

  friend bool operator==(const ResolvedFrame&, const ResolvedFrame&) = default;
};

/// A consolidated sample: the paper's "instance" abstraction (module, file,
/// line and stack order number for every level of the call path).
struct Instance {
  std::vector<ResolvedFrame> frames;   // outermost first; leaf last
  uint32_t stream = 0;
  bool idle = false;
  sampling::RuntimeFrameKind runtimeFrame = sampling::RuntimeFrameKind::None;
  /// Comm classification carried over from the raw sample (PGAS): what kind
  /// of array access the stream had most recently resolved at overflow time,
  /// and — for remote kinds — which locale pair it crossed (src = executing
  /// locale, dst = owning locale; both 0 otherwise).
  sampling::AccessKind accessKind = sampling::AccessKind::None;
  int32_t srcLocale = 0;
  int32_t dstLocale = 0;

  friend bool operator==(const Instance&, const Instance&) = default;
};

struct ConsolidateOptions {
  /// Glue worker samples to their spawn context (ablatable: without gluing,
  /// task-function samples lose their user-code calling context, which is
  /// the HPCToolkit-on-Chapel failure the paper describes in §II.B).
  bool glueSpawns = true;
};

/// Glues, trims and resolves every sample of a run.
std::vector<Instance> consolidate(const ir::Module& m, const sampling::RunLog& log,
                                  const ConsolidateOptions& opts = {});

/// Consolidates a single sample. Samples are independent of one another —
/// this is the per-item kernel the parallel post-mortem pipeline shards
/// over; `consolidate` is exactly a sequential map of it over `log.samples`.
/// Only reads `log.spawns` (for glue-chain lookups), never mutates the log.
Instance consolidateSample(const ir::Module& m, const sampling::RunLog& log,
                           const sampling::RawSample& s, const ConsolidateOptions& opts = {});

}  // namespace cb::pm
