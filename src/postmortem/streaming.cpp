#include "postmortem/streaming.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace cb::pm {

bool runPostmortemStreaming(const ir::Module& m, const an::ModuleBlame* mb,
                            sampling::RunLogStreamer& streamer,
                            const StreamingPostmortemOptions& opts, BlameReport& out,
                            sampling::RunLog* meta, StreamingPostmortemStats* stats) {
  // Pass 1: full validation + everything except the samples. The spawn
  // registry collected here is what consolidateSample glues stacks through.
  sampling::RunLog local;
  sampling::RunLog& header = meta ? *meta : local;
  if (!streamer.readMeta(header)) return false;

  const uint32_t chunkCap = std::max<uint32_t>(opts.chunkSamples, 1);
  StreamingAggregator agg;
  std::vector<Instance> chunk;
  chunk.reserve(chunkCap);
  StreamingPostmortemStats acct;

  auto flush = [&] {
    if (chunk.empty()) return;
    if (mb) agg.add(attribute(*mb, chunk, opts.attribution));
    ++acct.chunks;
    chunk.clear();
    acct.peakAccumulatorBytes = std::max(acct.peakAccumulatorBytes, agg.approxMemoryBytes());
  };

  // Pass 2: one sample in flight at a time; the chunk buffer is the only
  // sample-proportional storage and it is capped at chunkCap entries.
  bool ok = streamer.forEachSample([&](sampling::RawSample&& s) {
    chunk.push_back(consolidateSample(m, header, s, opts.consolidate));
    ++acct.samples;
    if (chunk.size() >= chunkCap) flush();
    return true;
  });
  if (!ok) return false;
  flush();

  out = mb ? agg.finish() : BlameReport{};
  if (stats) {
    acct.decodeBufferBytes = streamer.bufferBytes();
    *stats = acct;
  }
  return true;
}

bool runPostmortemStreamingFile(const ir::Module& m, const an::ModuleBlame* mb,
                                const std::string& path, const StreamingPostmortemOptions& opts,
                                BlameReport& out, sampling::RunLog* meta,
                                StreamingPostmortemStats* stats) {
  sampling::RunLogStreamer s;
  if (!s.openFile(path)) return false;
  return runPostmortemStreaming(m, mb, s, opts, out, meta, stats);
}

}  // namespace cb::pm
