#include "sampling/chunk_reader.h"

#include <algorithm>
#include <cstring>

namespace cb::sampling {

bool ChunkReader::openFile(const std::string& path, size_t chunkBytes) {
  close();
  f_ = std::fopen(path.c_str(), "rb");
  if (!f_) return false;
  path_ = path;
  isMem_ = false;
  buf_.resize(std::max<size_t>(chunkBytes, 4096));
  data_ = buf_.data();
  pos_ = len_ = 0;
  consumed_ = 0;
  open_ = true;
  if (std::fseek(f_, 0, SEEK_END) == 0) {
    long sz = std::ftell(f_);
    total_ = sz > 0 ? static_cast<uint64_t>(sz) : 0;
    std::fseek(f_, 0, SEEK_SET);
  }
  return true;
}

void ChunkReader::openString(std::string_view data) {
  close();
  mem_ = data;
  isMem_ = true;
  data_ = mem_.data();
  pos_ = 0;
  len_ = mem_.size();
  consumed_ = 0;
  total_ = mem_.size();
  open_ = true;
}

bool ChunkReader::rewind() {
  if (!open_) return false;
  if (isMem_) {
    pos_ = 0;
    len_ = mem_.size();
    consumed_ = 0;
    return true;
  }
  if (std::fseek(f_, 0, SEEK_SET) != 0) return false;
  pos_ = len_ = 0;
  consumed_ = 0;
  return true;
}

void ChunkReader::close() {
  if (f_) std::fclose(f_);
  f_ = nullptr;
  mem_ = {};
  data_ = nullptr;
  pos_ = len_ = 0;
  consumed_ = total_ = 0;
  open_ = isMem_ = false;
}

bool ChunkReader::refill() {
  if (!open_ || isMem_) return false;  // memory windows never refill
  consumed_ += len_;
  len_ = std::fread(buf_.data(), 1, buf_.size(), f_);
  pos_ = 0;
  return len_ > 0;
}

bool ChunkReader::getline(std::string& out) {
  out.clear();
  bool any = false;
  while (true) {
    if (pos_ >= len_ && !refill()) return any;
    const char* start = data_ + pos_;
    const char* nl = static_cast<const char*>(std::memchr(start, '\n', len_ - pos_));
    if (nl) {
      out.append(start, nl);
      pos_ += static_cast<size_t>(nl - start) + 1;
      return true;
    }
    out.append(start, len_ - pos_);
    pos_ = len_;
    any = true;
  }
}

size_t ChunkReader::peek(uint8_t* dst, size_t n) {
  if (!open_) return 0;
  if (isMem_) {
    size_t avail = std::min(n, len_ - pos_);
    std::memcpy(dst, data_ + pos_, avail);
    return avail;
  }
  // Compact the unread tail to the front so the peek window is contiguous,
  // then top the buffer up (also the first fill after open, when the buffer
  // is empty at pos_ == 0).
  if (len_ - pos_ < n) {
    if (pos_ > 0) {
      std::memmove(buf_.data(), buf_.data() + pos_, len_ - pos_);
      consumed_ += pos_;
      len_ -= pos_;
      pos_ = 0;
    }
    len_ += std::fread(buf_.data() + len_, 1, buf_.size() - len_, f_);
  }
  size_t avail = std::min(n, len_ - pos_);
  std::memcpy(dst, data_ + pos_, avail);
  return avail;
}

}  // namespace cb::sampling
