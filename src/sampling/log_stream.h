// Incremental run-log decoding over the buffered ChunkReader — the
// streaming-ingestion layer of the profiling service. One scanner decodes
// both on-disk formats (text and binary, versions 1-5, auto-detected), and
// every load path goes through it:
//
//   - deserializeRunLog / loadRunLog (the batch compatibility shims) run a
//     single full scan that materializes the whole RunLog, byte-for-byte
//     equivalent to the seed's load-everything parser;
//   - the streaming post-mortem (postmortem/streaming.h) runs the TWO-PASS
//     protocol below, so peak memory is the spawn registry + one sample at
//     a time instead of the whole sample vector.
//
// Two-pass protocol: samples reference the spawn registry (stack gluing),
// but spawn records may follow the samples in the byte stream (the binary
// format always orders them after). readMeta() therefore scans the whole
// log once — validating every record, exactly as strict as the batch parser
// — collecting everything EXCEPT the samples; forEachSample() rescans and
// hands each decoded sample to the caller in log order.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "sampling/chunk_reader.h"
#include "sampling/sample.h"

namespace cb::sampling {

/// Binary format magic + current version (shared with the serializer).
inline constexpr char kRunLogBinaryMagic[4] = {'\x89', 'C', 'B', 'L'};
inline constexpr uint8_t kRunLogBinaryVersion = 6;

class RunLogStreamer {
 public:
  /// False when the file cannot be opened. Decoding errors surface later.
  bool openFile(const std::string& path, size_t chunkBytes = ChunkReader::kDefaultChunkBytes);

  /// Serves from an in-memory buffer the caller keeps alive.
  void openString(std::string_view data);

  /// Pass 1: validates the ENTIRE log (header, every sample, spawn/alloc/
  /// matrix records, trailing-garbage check) and fills `meta` with all of it
  /// except the samples. Returns false on malformed input, truncation, or an
  /// unsupported version — accepting exactly the inputs deserializeRunLog
  /// accepts. `meta` is unspecified on failure.
  bool readMeta(RunLog& meta);

  /// Pass 2 (requires a successful readMeta): re-scans, invoking `fn` once
  /// per sample in log order. A false return from `fn` aborts the scan (and
  /// this returns false).
  bool forEachSample(const std::function<bool(RawSample&&)>& fn);

  /// Single full scan: meta + samples materialized into `out` in one pass —
  /// the batch shim. Equivalent to readMeta + forEachSample{push_back} but
  /// touches the backing stream once.
  bool readAll(RunLog& out);

  /// Number of samples in the log; valid after a successful readMeta/readAll.
  uint64_t sampleCount() const { return samples_; }

  /// Resident decode-buffer footprint (0 for in-memory sources).
  size_t bufferBytes() const { return reader_.bufferCapacity(); }

 private:
  bool reopen();
  bool scan(RunLog* meta, const std::function<bool(RawSample&&)>* fn);
  bool scanBinary(RunLog* meta, const std::function<bool(RawSample&&)>* fn);
  bool scanText(RunLog* meta, const std::function<bool(RawSample&&)>* fn);

  ChunkReader reader_;
  bool isFile_ = false;
  bool opened_ = false;
  bool metaDone_ = false;
  std::string path_;
  size_t chunkBytes_ = ChunkReader::kDefaultChunkBytes;
  std::string_view mem_;
  uint64_t samples_ = 0;
};

}  // namespace cb::sampling
