// Run-log (de)serialization — the "raw sample data" files the paper's
// monitoring process writes to disk between step 2 and the post-mortem
// step 3 (6-20 MB per run at the paper's scale). A compact line-based
// format; fully round-trippable.
#pragma once

#include <string>

#include "sampling/sample.h"

namespace cb::sampling {

/// Serializes a run log. Line-based:
///   cblog 1 <threshold> <streams> <totalCycles>
///   S <stream> <tag> <cycle> <runtimeFrameKind> <n> <func:instr>*
///   W <tag> <parentTag> <taskFn> <spawnInstr> <n> <func:instr>*
///   A <siteKey> <bytes>
std::string serializeRunLog(const RunLog& log);

/// Parses a serialized log. Returns false (leaving `out` unspecified) on a
/// malformed input.
bool deserializeRunLog(const std::string& text, RunLog& out);

/// File convenience wrappers; return false on I/O or format errors.
bool saveRunLog(const RunLog& log, const std::string& path);
bool loadRunLog(const std::string& path, RunLog& out);

}  // namespace cb::sampling
