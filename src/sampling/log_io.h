// Run-log (de)serialization — the "raw sample data" files the paper's
// monitoring process writes to disk between step 2 and the post-mortem
// step 3 (6-20 MB per run at the paper's scale).
//
// Two formats, auto-detected on load:
//   - Text ("cblog 3 ..."): the portable line-based fallback, human-readable
//     and diff-friendly.
//   - Binary (magic 0x89 'C' 'B' 'L'): a versioned compact encoding —
//     LEB128 varints throughout, zigzag-delta compression for sample
//     timestamps and for the func/instr pairs within each stack, records
//     sorted by tag/site key so the bytes are deterministic. Typically
//     several times smaller than the text form.
// Both round-trip losslessly and interchangeably (text -> binary -> text is
// the identity on the parsed structure).
#pragma once

#include <string>

#include "sampling/sample.h"

namespace cb::sampling {

enum class RunLogFormat {
  Text,    // "cblog 2 ..." line format (portable fallback)
  Binary,  // compact varint/delta format (see serializeRunLogBinary)
};

/// Serializes a run log. Line-based (version 1/2 files, which lack some or
/// all of the comm channel, still deserialize with the newer fields
/// defaulted):
///   cblog 3 <threshold> <streams> <totalCycles> <commGets> <commPuts>
///           <commOnForks> <commAggGets> <commAggPuts> <commAggFlushes>
///   S <stream> <tag> <cycle> <runtimeFrameKind> <accessKind> <srcLocale>
///     <dstLocale> <n> <func:instr>*
///   W <tag> <parentTag> <taskFn> <spawnInstr> <n> <func:instr>*
///   A <siteKey> <bytes>
///   M <srcLocale> <dstLocale> <count>
///   T <tag> <chunk> <stream> <startCycle> <endCycle> <n>
///     <site:raw:s125:s2:s4>*                        (version 6 task spans)
std::string serializeRunLog(const RunLog& log);

/// Serializes a run log in the compact binary format (version-1/2 files
/// still deserialize with the newer fields defaulted):
///   magic(4) = 89 43 42 4C ("\x89CBL"), version(1) = 0x03
///   varint threshold, streams, totalCycles, commGets, commPuts, commOnForks,
///   varint commAggGets, commAggPuts, commAggFlushes
///   varint nSamples, then per sample:
///     varint stream, taskTag, zigzag(atCycle - prevAtCycle),
///     varint runtimeFrameKind, varint accessKind,
///     [varint srcLocale, dstLocale — only when accessKind is remote],
///     varint stackLen,
///     per frame: zigzag(func - prevFunc), zigzag(instr - prevInstr)
///     (prev func/instr reset to 0 at each stack; prevAtCycle spans samples)
///   varint nSpawns (sorted by tag), per record:
///     varint tag - prevTag, parentTag, taskFn, spawnInstr, stack as above
///   varint nAllocSites (sorted by key): varint key - prevKey, bytes
///   varint nMatrixCells (sorted by pair key): varint key - prevKey, count
///   varint nTaskSpans (version 6, canonical emission order), per span:
///     varint tag, chunk, stream, zigzag(start - prevStart), end - start,
///     varint nSites (sorted by site), per site:
///       zigzag(site - prevSite), raw, raw - s125, raw - s2, raw - s4
std::string serializeRunLogBinary(const RunLog& log);

/// Parses a serialized log in EITHER format (auto-detected from the leading
/// magic). Returns false (leaving `out` unspecified) on malformed input,
/// truncation, trailing garbage, or an unsupported format version.
bool deserializeRunLog(const std::string& data, RunLog& out);

/// File convenience wrappers; return false on I/O or format errors.
/// `loadRunLog` auto-detects the on-disk format.
bool saveRunLog(const RunLog& log, const std::string& path,
                RunLogFormat format = RunLogFormat::Text);
bool loadRunLog(const std::string& path, RunLog& out);

}  // namespace cb::sampling
