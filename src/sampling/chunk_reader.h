// Reusable buffered chunk reader: the single byte source behind every
// run-log load path. A fixed-size buffer (default 256 KiB) is refilled from
// the backing file as bytes are consumed, so loading — and, via
// RunLogStreamer, post-mortem ingestion — of an arbitrarily large log never
// materializes the file in memory. An in-memory backend serves
// `deserializeRunLog` through the exact same decoder, keeping one code path
// (and one corruption/truncation acceptance) for both.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace cb::sampling {

class ChunkReader {
 public:
  static constexpr size_t kDefaultChunkBytes = 256 * 1024;

  ChunkReader() = default;
  ~ChunkReader() { close(); }
  ChunkReader(const ChunkReader&) = delete;
  ChunkReader& operator=(const ChunkReader&) = delete;

  /// Opens a file-backed source. Returns false when the file cannot be
  /// opened. `chunkBytes` caps the resident buffer (clamped to >= 4 KiB).
  bool openFile(const std::string& path, size_t chunkBytes = kDefaultChunkBytes);

  /// Serves bytes directly from an in-memory buffer the CALLER keeps alive.
  void openString(std::string_view data);

  /// Restarts the stream from offset 0 (both backends). Returns false on a
  /// seek failure or when nothing is open.
  bool rewind();

  void close();

  /// Pulls one byte; false at end of stream.
  bool byte(uint8_t& out) {
    if (pos_ >= len_ && !refill()) return false;
    out = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  /// Reads one '\n'-terminated line (terminator stripped) into `out`.
  /// Returns false only at end-of-stream with nothing read; a final
  /// unterminated line is returned as-is.
  bool getline(std::string& out);

  /// Copies up to `n` leading bytes WITHOUT consuming them; returns how many
  /// were available. `n` must be small (at most the chunk size).
  size_t peek(uint8_t* dst, size_t n);

  /// True when every byte has been consumed.
  bool atEnd() {
    return pos_ >= len_ && !refill();
  }

  /// Bounds-checked LEB128 varint (false on truncation/over-long encoding).
  bool varint(uint64_t& out) {
    out = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t b;
      if (!byte(b)) return false;
      out |= static_cast<uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) return true;
    }
    return false;
  }

  bool varint32(uint32_t& out) {
    uint64_t v;
    if (!varint(v) || v > ~0u) return false;
    out = static_cast<uint32_t>(v);
    return true;
  }

  /// Total bytes consumed so far (survives refills; reset by rewind).
  uint64_t bytesConsumed() const { return consumed_ + pos_; }

  /// Known total size of the backing source (file size / view length).
  uint64_t totalBytes() const { return total_; }

  /// Resident buffer footprint — what a memory-bounded ingest accounts for.
  size_t bufferCapacity() const { return isMem_ ? 0 : buf_.capacity(); }

 private:
  bool refill();

  std::FILE* f_ = nullptr;
  std::string path_;
  std::string_view mem_;
  bool isMem_ = false;
  bool open_ = false;
  std::vector<char> buf_;
  const char* data_ = nullptr;  // current window (buf_ or mem_)
  size_t pos_ = 0;              // cursor within window
  size_t len_ = 0;              // valid bytes in window
  uint64_t consumed_ = 0;       // bytes consumed before the current window
  uint64_t total_ = 0;
};

}  // namespace cb::sampling
