#include "sampling/sample.h"

#include <sstream>

namespace cb::sampling {

namespace {

bool sameSample(const RawSample& a, const RawSample& b) {
  return a.stream == b.stream && a.taskTag == b.taskTag && a.atCycle == b.atCycle &&
         a.runtimeFrame == b.runtimeFrame && a.accessKind == b.accessKind &&
         a.srcLocale == b.srcLocale && a.dstLocale == b.dstLocale && a.stack == b.stack;
}

bool sameSpawn(const SpawnRecord& a, const SpawnRecord& b) {
  return a.tag == b.tag && a.parentTag == b.parentTag && a.taskFn == b.taskFn &&
         a.spawnInstr == b.spawnInstr && a.preSpawnStack == b.preSpawnStack;
}

}  // namespace

bool identical(const RunLog& a, const RunLog& b) {
  if (a.sampleThreshold != b.sampleThreshold || a.numStreams != b.numStreams ||
      a.totalCycles != b.totalCycles)
    return false;
  if (a.commGets != b.commGets || a.commPuts != b.commPuts || a.commOnForks != b.commOnForks)
    return false;
  if (a.commAggGets != b.commAggGets || a.commAggPuts != b.commAggPuts ||
      a.commAggFlushes != b.commAggFlushes)
    return false;
  if (a.commMemStallCycles != b.commMemStallCycles ||
      a.commNetStallCycles != b.commNetStallCycles ||
      a.commContentionCycles != b.commContentionCycles)
    return false;
  if (a.raceFallbackRegions != b.raceFallbackRegions) return false;
  if (a.commMatrix != b.commMatrix) return false;
  if (a.samples.size() != b.samples.size()) return false;
  for (size_t i = 0; i < a.samples.size(); ++i)
    if (!sameSample(a.samples[i], b.samples[i])) return false;
  if (a.spawns.size() != b.spawns.size()) return false;
  for (const auto& [tag, rec] : a.spawns) {
    auto it = b.spawns.find(tag);
    if (it == b.spawns.end() || !sameSpawn(rec, it->second)) return false;
  }
  if (a.allocBytesBySite.size() != b.allocBytesBySite.size()) return false;
  for (const auto& [site, bytes] : a.allocBytesBySite) {
    auto it = b.allocBytesBySite.find(site);
    if (it == b.allocBytesBySite.end() || it->second != bytes) return false;
  }
  if (a.taskSpans != b.taskSpans) return false;
  return true;
}

std::string firstDifference(const RunLog& a, const RunLog& b) {
  std::ostringstream os;
  if (a.sampleThreshold != b.sampleThreshold)
    os << "sampleThreshold " << a.sampleThreshold << " vs " << b.sampleThreshold;
  else if (a.numStreams != b.numStreams)
    os << "numStreams " << a.numStreams << " vs " << b.numStreams;
  else if (a.totalCycles != b.totalCycles)
    os << "totalCycles " << a.totalCycles << " vs " << b.totalCycles;
  else if (a.commGets != b.commGets)
    os << "commGets " << a.commGets << " vs " << b.commGets;
  else if (a.commPuts != b.commPuts)
    os << "commPuts " << a.commPuts << " vs " << b.commPuts;
  else if (a.commOnForks != b.commOnForks)
    os << "commOnForks " << a.commOnForks << " vs " << b.commOnForks;
  else if (a.commAggGets != b.commAggGets)
    os << "commAggGets " << a.commAggGets << " vs " << b.commAggGets;
  else if (a.commAggPuts != b.commAggPuts)
    os << "commAggPuts " << a.commAggPuts << " vs " << b.commAggPuts;
  else if (a.commAggFlushes != b.commAggFlushes)
    os << "commAggFlushes " << a.commAggFlushes << " vs " << b.commAggFlushes;
  else if (a.commMemStallCycles != b.commMemStallCycles)
    os << "commMemStallCycles " << a.commMemStallCycles << " vs " << b.commMemStallCycles;
  else if (a.commNetStallCycles != b.commNetStallCycles)
    os << "commNetStallCycles " << a.commNetStallCycles << " vs " << b.commNetStallCycles;
  else if (a.commContentionCycles != b.commContentionCycles)
    os << "commContentionCycles " << a.commContentionCycles << " vs "
       << b.commContentionCycles;
  else if (a.raceFallbackRegions != b.raceFallbackRegions)
    os << "raceFallbackRegions " << a.raceFallbackRegions << " vs " << b.raceFallbackRegions;
  else if (a.commMatrix != b.commMatrix)
    os << "commMatrix differs (" << a.commMatrix.size() << " vs " << b.commMatrix.size()
       << " cells)";
  else if (a.samples.size() != b.samples.size())
    os << "sample count " << a.samples.size() << " vs " << b.samples.size();
  else {
    for (size_t i = 0; i < a.samples.size(); ++i) {
      if (sameSample(a.samples[i], b.samples[i])) continue;
      const RawSample &x = a.samples[i], &y = b.samples[i];
      os << "sample " << i << ": stream " << x.stream << "/" << y.stream << " tag "
         << x.taskTag << "/" << y.taskTag << " cycle " << x.atCycle << "/" << y.atCycle
         << " access " << static_cast<int>(x.accessKind) << "/"
         << static_cast<int>(y.accessKind) << " pair " << x.srcLocale << "->"
         << x.dstLocale << "/" << y.srcLocale << "->" << y.dstLocale << " depth "
         << x.stack.size() << "/" << y.stack.size();
      return os.str();
    }
    if (a.spawns.size() != b.spawns.size())
      os << "spawn count " << a.spawns.size() << " vs " << b.spawns.size();
    else if (a.allocBytesBySite.size() != b.allocBytesBySite.size())
      os << "alloc-site count " << a.allocBytesBySite.size() << " vs "
         << b.allocBytesBySite.size();
    else if (a.taskSpans.size() != b.taskSpans.size())
      os << "task-span count " << a.taskSpans.size() << " vs " << b.taskSpans.size();
    else if (a.taskSpans != b.taskSpans) {
      for (size_t i = 0; i < a.taskSpans.size(); ++i) {
        if (a.taskSpans[i] == b.taskSpans[i]) continue;
        const TaskSpan &x = a.taskSpans[i], &y = b.taskSpans[i];
        os << "task span " << i << ": tag " << x.tag << "/" << y.tag << " chunk " << x.chunk
           << "/" << y.chunk << " stream " << x.stream << "/" << y.stream << " ["
           << x.startCycle << "," << x.endCycle << ")/[" << y.startCycle << "," << y.endCycle
           << ") sites " << x.sites.size() << "/" << y.sites.size();
        break;
      }
    } else if (!identical(a, b))
      os << "spawn/alloc content differs";
  }
  return os.str();
}

const char* runtimeFrameName(RuntimeFrameKind k) {
  switch (k) {
    case RuntimeFrameKind::None: return "<user>";
    case RuntimeFrameKind::SchedYield: return "__sched_yield";
    case RuntimeFrameKind::ChplTaskYield: return "chpl_thread_yield";
    case RuntimeFrameKind::PthreadState: return "__pthread_setcancelstate";
  }
  return "?";
}

}  // namespace cb::sampling
