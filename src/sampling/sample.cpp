#include "sampling/sample.h"

namespace cb::sampling {

const char* runtimeFrameName(RuntimeFrameKind k) {
  switch (k) {
    case RuntimeFrameKind::None: return "<user>";
    case RuntimeFrameKind::SchedYield: return "__sched_yield";
    case RuntimeFrameKind::ChplTaskYield: return "chpl_thread_yield";
    case RuntimeFrameKind::PthreadState: return "__pthread_setcancelstate";
  }
  return "?";
}

}  // namespace cb::sampling
