// Raw profiling artefacts produced during execution (the paper's step 2).
//
// A sample is a context-sensitive stack snapshot taken when a virtual PMU
// stream overflows. Samples taken inside spawned tasks carry the spawn tag
// chain; the matching pre-spawn stack snapshots live in the SpawnRegistry so
// the post-mortem step can glue full call paths (§IV.B/C).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/module.h"

namespace cb::sampling {

/// One call-stack frame: a function plus the instruction the frame is
/// currently at (the callsite for parent frames, the sampled instruction for
/// the leaf).
struct Frame {
  ir::FuncId func = ir::kNone;
  ir::InstrId instr = ir::kNone;

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Synthetic runtime frames for idle workers (what gperftools sees as
/// __sched_yield / chpl_thread_yield in the paper's Fig. 4).
enum class RuntimeFrameKind : uint8_t {
  None,
  SchedYield,         // __sched_yield
  ChplTaskYield,      // chpl_thread_yield
  PthreadState,       // __pthread_setcancelstate
};

/// Comm-event channel: what kind of array access the stream most recently
/// resolved when the overflow fired. Local means the access stayed on the
/// executing locale; RemoteGet/RemotePut crossed locales (PGAS simulation).
enum class AccessKind : uint8_t {
  None,       // no array access pending (pure compute / idle)
  Local,
  RemoteGet,
  RemotePut,
};

struct RawSample {
  uint32_t stream = 0;           // 0 = main thread, 1..W = workers
  uint64_t taskTag = 0;          // 0 when not inside a spawned task
  uint64_t atCycle = 0;          // stream-local virtual time of the overflow
  RuntimeFrameKind runtimeFrame = RuntimeFrameKind::None;  // set for idle samples
  AccessKind accessKind = AccessKind::None;  // pending comm attribution
  /// Locale pair of the pending remote access: srcLocale is the requesting
  /// (executing) locale, dstLocale the owner of the touched element. Both 0
  /// unless accessKind is RemoteGet/RemotePut.
  int32_t srcLocale = 0;
  int32_t dstLocale = 0;
  std::vector<Frame> stack;      // post-spawn stack, outermost first; empty for idle
};

/// Recorded once per spawn operation ("we keep a unique tag for each spawn
/// operation and record the stack trace before the spawn operation begins").
struct SpawnRecord {
  uint64_t tag = 0;
  uint64_t parentTag = 0;        // 0 when spawned from the main thread context
  ir::FuncId taskFn = ir::kNone;
  ir::InstrId spawnInstr = ir::kNone;  // the Spawn instruction in the parent
  std::vector<Frame> preSpawnStack;    // outermost first; leaf is the spawn site
};

/// Exact cycles charged at one code site (RunLog::siteKey of the charging
/// instruction) within one task span, together with the per-charge
/// ceil-scaled sums for the fixed causal what-if factor set. `s2` is
/// Σ ceil(c/2) over every individual charge at the site, NOT ceil(raw/2) —
/// the ground-truth oracle re-runs the program with each charge scaled by
/// ceil(c·den/num) at charge time, so exact virtual-speedup prediction needs
/// the same per-charge rounding (see analysis/causal.h). k = ∞ scales every
/// charge to 0, so its sum needs no field.
struct SiteCycles {
  uint64_t site = 0;   // RunLog::siteKey(func, instr)
  uint64_t raw = 0;    // exact cycles charged at this site in this span
  uint64_t s125 = 0;   // Σ ceil(4c/5)  — k = 1.25
  uint64_t s2 = 0;     // Σ ceil(c/2)   — k = 2
  uint64_t s4 = 0;     // Σ ceil(c/4)   — k = 4

  friend bool operator==(const SiteCycles&, const SiteCycles&) = default;
};

/// One contiguous execution segment on one stream's continuous virtual
/// clock, the raw material for spawn-tree critical-path reconstruction
/// (analysis/causal.h). tag == 0 marks a main-thread serial segment between
/// top-level parallel regions; otherwise `tag` names the SpawnRecord whose
/// chunk `chunk` (the task ordinal ti) this span executed. Segments are
/// emitted in canonical order — serial segment at the fork, then chunk
/// spans in ti order with any nested-task spans of chunk ti directly before
/// chunk ti's own span — identically by both engines and every replay
/// width. `sites` (populated only under RunOptions::trackCausalSites) holds
/// the exact per-site cycle split of the span, sorted by site; nested-task
/// spans carry no sites — their cycles accrue to the enclosing top-level
/// chunk.
struct TaskSpan {
  uint64_t tag = 0;
  uint32_t chunk = 0;
  uint32_t stream = 0;
  uint64_t startCycle = 0;
  uint64_t endCycle = 0;
  std::vector<SiteCycles> sites;

  uint64_t duration() const { return endCycle - startCycle; }

  friend bool operator==(const TaskSpan&, const TaskSpan&) = default;
};

/// Everything a monitored run produces.
struct RunLog {
  std::vector<RawSample> samples;
  std::unordered_map<uint64_t, SpawnRecord> spawns;
  uint64_t sampleThreshold = 0;
  uint32_t numStreams = 0;
  uint64_t totalCycles = 0;      // main-thread end-to-end virtual time

  /// Exact communication counters (not sampled): remote GETs/PUTs resolved
  /// and cross-locale `on` forks executed over the whole run.
  uint64_t commGets = 0;
  uint64_t commPuts = 0;
  uint64_t commOnForks = 0;

  /// Aggregated transfers (simulated Src/DstAggregator copies): remote
  /// elements moved through aggregation buffers instead of naive GET/PUT,
  /// plus the number of buffer flushes that carried them.
  uint64_t commAggGets = 0;
  uint64_t commAggPuts = 0;
  uint64_t commAggFlushes = 0;

  /// Bandwidth-ceiling stall cycles (runtime/bandwidth.h; all zero under the
  /// default pure-latency profiles): cycles streams spent stalled on the
  /// local memory roof, on the network injection ceiling, and on
  /// destination-locale contention. These split remote traffic into
  /// latency-bound (latency charges dominate, stalls near zero) versus
  /// bandwidth-bound (stalls rival the latency charges).
  uint64_t commMemStallCycles = 0;
  uint64_t commNetStallCycles = 0;
  uint64_t commContentionCycles = 0;

  /// Top-level forall/coforall regions the race-freedom prover
  /// (analysis/race.h) could NOT prove independent, so their worker streams
  /// replayed sequentially. Counts executed region entries (not distinct
  /// spawn sites) and is identical across engines and replay widths — it
  /// depends only on the static verdict. Makes silent serialization
  /// observable: a hot region stuck at width 1 shows up here instead of
  /// being indistinguishable from a parallel replay.
  uint64_t raceFallbackRegions = 0;

  /// Exact source→destination locale communication matrix: pairKey(src,dst)
  /// -> remote element transfers (naive and aggregated alike). Sparse and
  /// sorted, so iteration order is deterministic.
  std::map<uint64_t, uint64_t> commMatrix;

  static uint64_t pairKey(int64_t src, int64_t dst) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
           static_cast<uint32_t>(dst);
  }
  static int32_t pairSrc(uint64_t key) { return static_cast<int32_t>(key >> 32); }
  static int32_t pairDst(uint64_t key) { return static_cast<int32_t>(key & 0xffffffffu); }

  /// Heap allocations observed at each ArrayNew site: (func<<32|instr) ->
  /// largest allocation in bytes. Feeds the allocation-threshold baseline
  /// profiler (the ">= 4K bytes" rule the paper criticizes in §II.B).
  std::unordered_map<uint64_t, uint64_t> allocBytesBySite;

  static uint64_t siteKey(ir::FuncId f, ir::InstrId i) {
    return (static_cast<uint64_t>(f) << 32) | i;
  }

  /// Per-task clock spans in canonical emission order (log format v6; empty
  /// when loading older logs). Serial segments and top-level chunk spans
  /// tile [0, totalCycles]: each serial segment runs on stream 0, each
  /// top-level region spans [fork, join] with its chunks chained
  /// back-to-back per worker stream, and nested-task spans lie inside their
  /// enclosing chunk. Zero-length serial segments are elided.
  std::vector<TaskSpan> taskSpans;

  size_t numIdleSamples() const {
    size_t n = 0;
    for (const RawSample& s : samples)
      if (s.runtimeFrame != RuntimeFrameKind::None) ++n;
    return n;
  }
  size_t numUserSamples() const { return samples.size() - numIdleSamples(); }
};

const char* runtimeFrameName(RuntimeFrameKind k);

/// Field-by-field bit-identity of two run logs (samples in order, spawn
/// registry, allocation sites, threshold/stream/cycle metadata). This is the
/// oracle check for alternative execution engines: any engine must reproduce
/// the reference interpreter's log exactly.
bool identical(const RunLog& a, const RunLog& b);

/// When `identical` fails, a short human-readable description of the first
/// divergence (for test diagnostics); empty when the logs match.
std::string firstDifference(const RunLog& a, const RunLog& b);

/// Event-overflow virtual PMU: one counter per execution stream. `advance`
/// returns the number of overflows that occurred while charging `cost`
/// cycles (normally 0 or 1; large single costs can trigger several).
class VirtualPmu {
 public:
  VirtualPmu(uint64_t threshold, uint32_t numStreams)
      : threshold_(threshold), next_(numStreams, threshold), clock_(numStreams, 0) {
    // A threshold of 0 disables sampling.
    if (threshold_ == 0)
      for (auto& n : next_) n = ~0ull;
  }

  uint32_t advance(uint32_t stream, uint64_t cost) {
    clock_[stream] += cost;
    uint32_t overflows = 0;
    while (clock_[stream] >= next_[stream]) {
      next_[stream] += threshold_ == 0 ? ~0ull : threshold_;
      ++overflows;
    }
    return overflows;
  }

  uint64_t clock(uint32_t stream) const { return clock_[stream]; }
  void setClock(uint32_t stream, uint64_t t) {
    clock_[stream] = t;
    if (threshold_ != 0) next_[stream] = ((t / threshold_) + 1) * threshold_;
  }
  uint64_t threshold() const { return threshold_; }

 private:
  uint64_t threshold_;
  std::vector<uint64_t> next_;
  std::vector<uint64_t> clock_;
};

}  // namespace cb::sampling
