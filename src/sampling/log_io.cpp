#include "sampling/log_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace cb::sampling {

std::string serializeRunLog(const RunLog& log) {
  std::ostringstream out;
  out << "cblog 1 " << log.sampleThreshold << " " << log.numStreams << " " << log.totalCycles
      << "\n";
  for (const RawSample& s : log.samples) {
    out << "S " << s.stream << " " << s.taskTag << " " << s.atCycle << " "
        << static_cast<int>(s.runtimeFrame) << " " << s.stack.size();
    for (const Frame& f : s.stack) out << " " << f.func << ":" << f.instr;
    out << "\n";
  }
  for (const auto& [tag, rec] : log.spawns) {
    out << "W " << rec.tag << " " << rec.parentTag << " " << rec.taskFn << " " << rec.spawnInstr
        << " " << rec.preSpawnStack.size();
    for (const Frame& f : rec.preSpawnStack) out << " " << f.func << ":" << f.instr;
    out << "\n";
  }
  for (const auto& [key, bytes] : log.allocBytesBySite)
    out << "A " << key << " " << bytes << "\n";
  return out.str();
}

namespace {

bool parseFrames(std::istringstream& in, size_t n, std::vector<Frame>& out) {
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string tok;
    if (!(in >> tok)) return false;
    size_t colon = tok.find(':');
    if (colon == std::string::npos) return false;
    Frame f;
    f.func = static_cast<ir::FuncId>(std::strtoul(tok.c_str(), nullptr, 10));
    f.instr = static_cast<ir::InstrId>(std::strtoul(tok.c_str() + colon + 1, nullptr, 10));
    out.push_back(f);
  }
  return true;
}

}  // namespace

bool deserializeRunLog(const std::string& text, RunLog& out) {
  out = RunLog{};
  std::istringstream lines(text);
  std::string line;
  if (!std::getline(lines, line)) return false;
  {
    std::istringstream h(line);
    std::string magic;
    int version = 0;
    if (!(h >> magic >> version >> out.sampleThreshold >> out.numStreams >> out.totalCycles))
      return false;
    if (magic != "cblog" || version != 1) return false;
  }
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream in(line);
    char kind;
    in >> kind;
    if (kind == 'S') {
      RawSample s;
      int rtk = 0;
      size_t n = 0;
      if (!(in >> s.stream >> s.taskTag >> s.atCycle >> rtk >> n)) return false;
      s.runtimeFrame = static_cast<RuntimeFrameKind>(rtk);
      if (!parseFrames(in, n, s.stack)) return false;
      out.samples.push_back(std::move(s));
    } else if (kind == 'W') {
      SpawnRecord rec;
      size_t n = 0;
      if (!(in >> rec.tag >> rec.parentTag >> rec.taskFn >> rec.spawnInstr >> n)) return false;
      if (!parseFrames(in, n, rec.preSpawnStack)) return false;
      out.spawns.emplace(rec.tag, std::move(rec));
    } else if (kind == 'A') {
      uint64_t key = 0, bytes = 0;
      if (!(in >> key >> bytes)) return false;
      out.allocBytesBySite[key] = bytes;
    } else {
      return false;
    }
  }
  return true;
}

bool saveRunLog(const RunLog& log, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  std::string text = serializeRunLog(log);
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  return f.good();
}

bool loadRunLog(const std::string& path, RunLog& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  return deserializeRunLog(ss.str(), out);
}

}  // namespace cb::sampling
