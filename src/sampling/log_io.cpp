#include "sampling/log_io.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace cb::sampling {

// ---------------------------------------------------------------------------
// Text format — the portable fallback. Version 2 appended the exact comm
// counters to the header and the per-sample AccessKind after the runtime
// frame; version 3 appends the aggregated-transfer counters to the header,
// the per-sample (srcLocale, dstLocale) pair after the access kind, and `M`
// lines carrying the exact src→dst comm matrix; version 4 appends the three
// bandwidth-ceiling stall counters (mem / net-injection / contention) to the
// header. Version 1/2/3 files still load, defaulting every newer field.
// ---------------------------------------------------------------------------

std::string serializeRunLog(const RunLog& log) {
  std::ostringstream out;
  out << "cblog 5 " << log.sampleThreshold << " " << log.numStreams << " " << log.totalCycles
      << " " << log.commGets << " " << log.commPuts << " " << log.commOnForks << " "
      << log.commAggGets << " " << log.commAggPuts << " " << log.commAggFlushes << " "
      << log.commMemStallCycles << " " << log.commNetStallCycles << " "
      << log.commContentionCycles << " " << log.raceFallbackRegions << "\n";
  for (const RawSample& s : log.samples) {
    out << "S " << s.stream << " " << s.taskTag << " " << s.atCycle << " "
        << static_cast<int>(s.runtimeFrame) << " " << static_cast<int>(s.accessKind) << " "
        << s.srcLocale << " " << s.dstLocale << " " << s.stack.size();
    for (const Frame& f : s.stack) out << " " << f.func << ":" << f.instr;
    out << "\n";
  }
  for (const auto& [tag, rec] : log.spawns) {
    out << "W " << rec.tag << " " << rec.parentTag << " " << rec.taskFn << " " << rec.spawnInstr
        << " " << rec.preSpawnStack.size();
    for (const Frame& f : rec.preSpawnStack) out << " " << f.func << ":" << f.instr;
    out << "\n";
  }
  for (const auto& [key, bytes] : log.allocBytesBySite)
    out << "A " << key << " " << bytes << "\n";
  for (const auto& [key, count] : log.commMatrix)
    out << "M " << RunLog::pairSrc(key) << " " << RunLog::pairDst(key) << " " << count << "\n";
  return out.str();
}

namespace {

bool parseFrames(std::istringstream& in, size_t n, std::vector<Frame>& out) {
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string tok;
    if (!(in >> tok)) return false;
    size_t colon = tok.find(':');
    if (colon == std::string::npos) return false;
    Frame f;
    f.func = static_cast<ir::FuncId>(std::strtoul(tok.c_str(), nullptr, 10));
    f.instr = static_cast<ir::InstrId>(std::strtoul(tok.c_str() + colon + 1, nullptr, 10));
    out.push_back(f);
  }
  return true;
}

bool deserializeRunLogText(const std::string& text, RunLog& out) {
  out = RunLog{};
  std::istringstream lines(text);
  std::string line;
  int version = 0;
  if (!std::getline(lines, line)) return false;
  {
    std::istringstream h(line);
    std::string magic;
    if (!(h >> magic >> version >> out.sampleThreshold >> out.numStreams >> out.totalCycles))
      return false;
    if (magic != "cblog" || version < 1 || version > 5) return false;
    if (version >= 2 && !(h >> out.commGets >> out.commPuts >> out.commOnForks)) return false;
    if (version >= 3 && !(h >> out.commAggGets >> out.commAggPuts >> out.commAggFlushes))
      return false;
    if (version >= 4 && !(h >> out.commMemStallCycles >> out.commNetStallCycles >>
                          out.commContentionCycles))
      return false;
    if (version >= 5 && !(h >> out.raceFallbackRegions)) return false;
  }
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream in(line);
    char kind;
    in >> kind;
    if (kind == 'S') {
      RawSample s;
      int rtk = 0, ak = 0;
      size_t n = 0;
      if (!(in >> s.stream >> s.taskTag >> s.atCycle >> rtk)) return false;
      if (version >= 2 && !(in >> ak)) return false;
      if (version >= 3 && !(in >> s.srcLocale >> s.dstLocale)) return false;
      if (!(in >> n)) return false;
      s.runtimeFrame = static_cast<RuntimeFrameKind>(rtk);
      s.accessKind = static_cast<AccessKind>(ak);
      if (!parseFrames(in, n, s.stack)) return false;
      out.samples.push_back(std::move(s));
    } else if (kind == 'W') {
      SpawnRecord rec;
      size_t n = 0;
      if (!(in >> rec.tag >> rec.parentTag >> rec.taskFn >> rec.spawnInstr >> n)) return false;
      if (!parseFrames(in, n, rec.preSpawnStack)) return false;
      out.spawns.emplace(rec.tag, std::move(rec));
    } else if (kind == 'A') {
      uint64_t key = 0, bytes = 0;
      if (!(in >> key >> bytes)) return false;
      out.allocBytesBySite[key] = bytes;
    } else if (kind == 'M' && version >= 3) {
      int64_t src = 0, dst = 0;
      uint64_t count = 0;
      if (!(in >> src >> dst >> count)) return false;
      out.commMatrix[RunLog::pairKey(src, dst)] = count;
    } else {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Binary format — LEB128 varints, zigzag deltas, deterministic order.
// Version 2 added the three comm counters after totalCycles and a varint
// AccessKind per sample after the runtime-frame kind. Version 3 adds the
// aggregated-transfer counters after commOnForks, the (srcLocale, dstLocale)
// pair per sample — encoded ONLY when the access kind is RemoteGet or
// RemotePut — and the sparse comm matrix (sorted by pair key) after the
// alloc-site section. Version 4 adds the three bandwidth-ceiling stall
// counters after the aggregated-transfer counters. Version 1/2/3 files
// still load with all newer fields defaulted.
// ---------------------------------------------------------------------------

constexpr char kBinaryMagic[4] = {'\x89', 'C', 'B', 'L'};
constexpr uint8_t kBinaryVersion = 5;

void putVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

uint64_t zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t unzigzag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Delta between two unsigned values as a signed quantity (two's-complement
/// wraparound makes encode/decode exact even across the full u64 range).
void putDelta(std::string& out, uint64_t cur, uint64_t prev) {
  putVarint(out, zigzag(static_cast<int64_t>(cur - prev)));
}

void putFrames(std::string& out, const std::vector<Frame>& stack) {
  putVarint(out, stack.size());
  uint32_t prevFunc = 0, prevInstr = 0;
  for (const Frame& f : stack) {
    // Stacks share long prefixes frame-to-frame in func id space; instr ids
    // are small offsets. Zigzag deltas keep both to 1-2 bytes each.
    putDelta(out, f.func, prevFunc);
    putDelta(out, f.instr, prevInstr);
    prevFunc = f.func;
    prevInstr = f.instr;
  }
}

class ByteReader {
 public:
  explicit ByteReader(const std::string& data) : data_(data) {}

  bool varint(uint64_t& out) {
    out = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= data_.size()) return false;
      uint8_t b = static_cast<uint8_t>(data_[pos_++]);
      out |= static_cast<uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) return true;
    }
    return false;  // over-long encoding
  }

  bool varint32(uint32_t& out) {
    uint64_t v;
    if (!varint(v) || v > ~0u) return false;
    out = static_cast<uint32_t>(v);
    return true;
  }

  bool delta(uint64_t& cur, uint64_t prev) {
    uint64_t z;
    if (!varint(z)) return false;
    cur = prev + static_cast<uint64_t>(unzigzag(z));
    return true;
  }

  bool delta32(uint32_t& cur, uint32_t prev) {
    uint64_t c;
    if (!delta(c, prev)) return false;
    cur = static_cast<uint32_t>(c);  // ids wrap in 32 bits by construction
    return true;
  }

  bool frames(std::vector<Frame>& out) {
    uint64_t n;
    if (!varint(n) || n > remaining()) return false;  // each frame >= 2 bytes
    out.reserve(n);
    uint32_t prevFunc = 0, prevInstr = 0;
    for (uint64_t i = 0; i < n; ++i) {
      Frame f;
      if (!delta32(f.func, prevFunc) || !delta32(f.instr, prevInstr)) return false;
      prevFunc = f.func;
      prevInstr = f.instr;
      out.push_back(f);
    }
    return true;
  }

  bool byte(uint8_t& out) {
    if (pos_ >= data_.size()) return false;
    out = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool atEnd() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

bool deserializeRunLogBinary(const std::string& data, RunLog& out) {
  out = RunLog{};
  ByteReader r(data);
  uint8_t b;
  for (char m : kBinaryMagic)
    if (!r.byte(b) || b != static_cast<uint8_t>(m)) return false;
  uint8_t version;
  if (!r.byte(version) || version < 1 || version > kBinaryVersion) return false;

  uint64_t nStreams;
  if (!r.varint(out.sampleThreshold) || !r.varint(nStreams) || nStreams > ~0u ||
      !r.varint(out.totalCycles))
    return false;
  out.numStreams = static_cast<uint32_t>(nStreams);
  if (version >= 2 &&
      (!r.varint(out.commGets) || !r.varint(out.commPuts) || !r.varint(out.commOnForks)))
    return false;
  if (version >= 3 && (!r.varint(out.commAggGets) || !r.varint(out.commAggPuts) ||
                       !r.varint(out.commAggFlushes)))
    return false;
  if (version >= 4 && (!r.varint(out.commMemStallCycles) || !r.varint(out.commNetStallCycles) ||
                       !r.varint(out.commContentionCycles)))
    return false;
  if (version >= 5 && !r.varint(out.raceFallbackRegions)) return false;

  uint64_t nSamples;
  if (!r.varint(nSamples) || nSamples > r.remaining()) return false;
  out.samples.reserve(nSamples);
  uint64_t prevCycle = 0;
  for (uint64_t i = 0; i < nSamples; ++i) {
    RawSample s;
    uint64_t rtk;
    if (!r.varint32(s.stream) || !r.varint(s.taskTag) || !r.delta(s.atCycle, prevCycle) ||
        !r.varint(rtk) || rtk > 255)
      return false;
    prevCycle = s.atCycle;
    s.runtimeFrame = static_cast<RuntimeFrameKind>(rtk);
    if (version >= 2) {
      uint64_t ak;
      if (!r.varint(ak) || ak > 3) return false;
      s.accessKind = static_cast<AccessKind>(ak);
      if (version >= 3 && (s.accessKind == AccessKind::RemoteGet ||
                           s.accessKind == AccessKind::RemotePut)) {
        uint64_t src, dst;
        if (!r.varint(src) || src > ~0u || !r.varint(dst) || dst > ~0u) return false;
        s.srcLocale = static_cast<int32_t>(src);
        s.dstLocale = static_cast<int32_t>(dst);
      }
    }
    if (!r.frames(s.stack)) return false;
    out.samples.push_back(std::move(s));
  }

  uint64_t nSpawns;
  if (!r.varint(nSpawns) || nSpawns > r.remaining()) return false;
  uint64_t prevTag = 0;
  for (uint64_t i = 0; i < nSpawns; ++i) {
    SpawnRecord rec;
    if (!r.delta(rec.tag, prevTag) || !r.varint(rec.parentTag) || !r.varint32(rec.taskFn) ||
        !r.varint32(rec.spawnInstr) || !r.frames(rec.preSpawnStack))
      return false;
    prevTag = rec.tag;
    uint64_t tag = rec.tag;
    out.spawns.emplace(tag, std::move(rec));
  }

  uint64_t nSites;
  if (!r.varint(nSites) || nSites > r.remaining()) return false;
  uint64_t prevKey = 0;
  for (uint64_t i = 0; i < nSites; ++i) {
    uint64_t key, bytes;
    if (!r.delta(key, prevKey) || !r.varint(bytes)) return false;
    prevKey = key;
    out.allocBytesBySite[key] = bytes;
  }

  if (version >= 3) {
    uint64_t nCells;
    if (!r.varint(nCells) || nCells > r.remaining()) return false;
    uint64_t prevCell = 0;
    for (uint64_t i = 0; i < nCells; ++i) {
      uint64_t key, count;
      if (!r.delta(key, prevCell) || !r.varint(count)) return false;
      prevCell = key;
      out.commMatrix[key] = count;
    }
  }
  return r.atEnd();  // trailing garbage is a format error
}

}  // namespace

std::string serializeRunLogBinary(const RunLog& log) {
  std::string out;
  out.append(kBinaryMagic, sizeof(kBinaryMagic));
  out.push_back(static_cast<char>(kBinaryVersion));
  putVarint(out, log.sampleThreshold);
  putVarint(out, log.numStreams);
  putVarint(out, log.totalCycles);
  putVarint(out, log.commGets);
  putVarint(out, log.commPuts);
  putVarint(out, log.commOnForks);
  putVarint(out, log.commAggGets);
  putVarint(out, log.commAggPuts);
  putVarint(out, log.commAggFlushes);
  putVarint(out, log.commMemStallCycles);
  putVarint(out, log.commNetStallCycles);
  putVarint(out, log.commContentionCycles);
  putVarint(out, log.raceFallbackRegions);

  putVarint(out, log.samples.size());
  uint64_t prevCycle = 0;
  for (const RawSample& s : log.samples) {
    putVarint(out, s.stream);
    putVarint(out, s.taskTag);
    putDelta(out, s.atCycle, prevCycle);
    prevCycle = s.atCycle;
    putVarint(out, static_cast<uint64_t>(s.runtimeFrame));
    putVarint(out, static_cast<uint64_t>(s.accessKind));
    // The locale pair is only meaningful (and only encoded) for remote
    // accesses; local/compute samples carry the defaults.
    if (s.accessKind == AccessKind::RemoteGet || s.accessKind == AccessKind::RemotePut) {
      putVarint(out, static_cast<uint32_t>(s.srcLocale));
      putVarint(out, static_cast<uint32_t>(s.dstLocale));
    }
    putFrames(out, s.stack);
  }

  // Hash-map records are emitted in sorted key order so the encoding is a
  // deterministic function of the log contents.
  std::vector<uint64_t> tags;
  tags.reserve(log.spawns.size());
  for (const auto& [tag, rec] : log.spawns) tags.push_back(tag);
  std::sort(tags.begin(), tags.end());
  putVarint(out, tags.size());
  uint64_t prevTag = 0;
  for (uint64_t tag : tags) {
    const SpawnRecord& rec = log.spawns.at(tag);
    putDelta(out, rec.tag, prevTag);
    prevTag = rec.tag;
    putVarint(out, rec.parentTag);
    putVarint(out, rec.taskFn);
    putVarint(out, rec.spawnInstr);
    putFrames(out, rec.preSpawnStack);
  }

  std::vector<uint64_t> keys;
  keys.reserve(log.allocBytesBySite.size());
  for (const auto& [key, bytes] : log.allocBytesBySite) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  putVarint(out, keys.size());
  uint64_t prevKey = 0;
  for (uint64_t key : keys) {
    putDelta(out, key, prevKey);
    prevKey = key;
    putVarint(out, log.allocBytesBySite.at(key));
  }

  // Comm matrix: a std::map already iterates in ascending key order.
  putVarint(out, log.commMatrix.size());
  uint64_t prevCell = 0;
  for (const auto& [key, count] : log.commMatrix) {
    putDelta(out, key, prevCell);
    prevCell = key;
    putVarint(out, count);
  }
  return out;
}

bool deserializeRunLog(const std::string& data, RunLog& out) {
  if (data.size() >= sizeof(kBinaryMagic) &&
      std::equal(kBinaryMagic, kBinaryMagic + sizeof(kBinaryMagic), data.begin()))
    return deserializeRunLogBinary(data, out);
  return deserializeRunLogText(data, out);
}

bool saveRunLog(const RunLog& log, const std::string& path, RunLogFormat format) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  std::string data =
      format == RunLogFormat::Binary ? serializeRunLogBinary(log) : serializeRunLog(log);
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  return f.good();
}

bool loadRunLog(const std::string& path, RunLog& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  return deserializeRunLog(ss.str(), out);
}

}  // namespace cb::sampling
