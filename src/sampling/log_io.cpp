#include "sampling/log_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sampling/log_stream.h"
#include "support/varint.h"

namespace cb::sampling {

// ---------------------------------------------------------------------------
// Text format — the portable fallback. Version 2 appended the exact comm
// counters to the header and the per-sample AccessKind after the runtime
// frame; version 3 appends the aggregated-transfer counters to the header,
// the per-sample (srcLocale, dstLocale) pair after the access kind, and `M`
// lines carrying the exact src→dst comm matrix; version 4 appends the three
// bandwidth-ceiling stall counters (mem / net-injection / contention) to the
// header. Version 6 appends `T` lines carrying the per-task clock spans (in
// canonical emission order, each with its optional per-site cycle split).
// Version 1..5 files still load, defaulting every newer field.
//
// Decoding for BOTH formats lives in log_stream.cpp: the batch entry points
// below are compatibility shims over the chunked streaming scanner, so batch
// and streaming ingestion share one parser (and one corruption/truncation
// acceptance) by construction.
// ---------------------------------------------------------------------------

std::string serializeRunLog(const RunLog& log) {
  std::ostringstream out;
  out << "cblog 6 " << log.sampleThreshold << " " << log.numStreams << " " << log.totalCycles
      << " " << log.commGets << " " << log.commPuts << " " << log.commOnForks << " "
      << log.commAggGets << " " << log.commAggPuts << " " << log.commAggFlushes << " "
      << log.commMemStallCycles << " " << log.commNetStallCycles << " "
      << log.commContentionCycles << " " << log.raceFallbackRegions << "\n";
  for (const RawSample& s : log.samples) {
    out << "S " << s.stream << " " << s.taskTag << " " << s.atCycle << " "
        << static_cast<int>(s.runtimeFrame) << " " << static_cast<int>(s.accessKind) << " "
        << s.srcLocale << " " << s.dstLocale << " " << s.stack.size();
    for (const Frame& f : s.stack) out << " " << f.func << ":" << f.instr;
    out << "\n";
  }
  for (const auto& [tag, rec] : log.spawns) {
    out << "W " << rec.tag << " " << rec.parentTag << " " << rec.taskFn << " " << rec.spawnInstr
        << " " << rec.preSpawnStack.size();
    for (const Frame& f : rec.preSpawnStack) out << " " << f.func << ":" << f.instr;
    out << "\n";
  }
  for (const auto& [key, bytes] : log.allocBytesBySite)
    out << "A " << key << " " << bytes << "\n";
  for (const auto& [key, count] : log.commMatrix)
    out << "M " << RunLog::pairSrc(key) << " " << RunLog::pairDst(key) << " " << count << "\n";
  // Task spans keep their canonical emission order — it encodes the
  // serial/region alternation the causal layer reconstructs.
  for (const TaskSpan& sp : log.taskSpans) {
    out << "T " << sp.tag << " " << sp.chunk << " " << sp.stream << " " << sp.startCycle << " "
        << sp.endCycle << " " << sp.sites.size();
    for (const SiteCycles& sc : sp.sites)
      out << " " << sc.site << ":" << sc.raw << ":" << sc.s125 << ":" << sc.s2 << ":" << sc.s4;
    out << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Binary format — LEB128 varints, zigzag deltas, deterministic order.
// Version 2 added the three comm counters after totalCycles and a varint
// AccessKind per sample after the runtime-frame kind. Version 3 adds the
// aggregated-transfer counters after commOnForks, the (srcLocale, dstLocale)
// pair per sample — encoded ONLY when the access kind is RemoteGet or
// RemotePut — and the sparse comm matrix (sorted by pair key) after the
// alloc-site section. Version 4 adds the three bandwidth-ceiling stall
// counters after the aggregated-transfer counters. Version 1/2/3 files
// still load with all newer fields defaulted.
// ---------------------------------------------------------------------------

namespace {

void putFrames(std::string& out, const std::vector<Frame>& stack) {
  putVarint(out, stack.size());
  uint32_t prevFunc = 0, prevInstr = 0;
  for (const Frame& f : stack) {
    // Stacks share long prefixes frame-to-frame in func id space; instr ids
    // are small offsets. Zigzag deltas keep both to 1-2 bytes each.
    putDelta(out, f.func, prevFunc);
    putDelta(out, f.instr, prevInstr);
    prevFunc = f.func;
    prevInstr = f.instr;
  }
}

}  // namespace

std::string serializeRunLogBinary(const RunLog& log) {
  std::string out;
  out.append(kRunLogBinaryMagic, sizeof(kRunLogBinaryMagic));
  out.push_back(static_cast<char>(kRunLogBinaryVersion));
  putVarint(out, log.sampleThreshold);
  putVarint(out, log.numStreams);
  putVarint(out, log.totalCycles);
  putVarint(out, log.commGets);
  putVarint(out, log.commPuts);
  putVarint(out, log.commOnForks);
  putVarint(out, log.commAggGets);
  putVarint(out, log.commAggPuts);
  putVarint(out, log.commAggFlushes);
  putVarint(out, log.commMemStallCycles);
  putVarint(out, log.commNetStallCycles);
  putVarint(out, log.commContentionCycles);
  putVarint(out, log.raceFallbackRegions);

  putVarint(out, log.samples.size());
  uint64_t prevCycle = 0;
  for (const RawSample& s : log.samples) {
    putVarint(out, s.stream);
    putVarint(out, s.taskTag);
    putDelta(out, s.atCycle, prevCycle);
    prevCycle = s.atCycle;
    putVarint(out, static_cast<uint64_t>(s.runtimeFrame));
    putVarint(out, static_cast<uint64_t>(s.accessKind));
    // The locale pair is only meaningful (and only encoded) for remote
    // accesses; local/compute samples carry the defaults.
    if (s.accessKind == AccessKind::RemoteGet || s.accessKind == AccessKind::RemotePut) {
      putVarint(out, static_cast<uint32_t>(s.srcLocale));
      putVarint(out, static_cast<uint32_t>(s.dstLocale));
    }
    putFrames(out, s.stack);
  }

  // Hash-map records are emitted in sorted key order so the encoding is a
  // deterministic function of the log contents.
  std::vector<uint64_t> tags;
  tags.reserve(log.spawns.size());
  for (const auto& [tag, rec] : log.spawns) tags.push_back(tag);
  std::sort(tags.begin(), tags.end());
  putVarint(out, tags.size());
  uint64_t prevTag = 0;
  for (uint64_t tag : tags) {
    const SpawnRecord& rec = log.spawns.at(tag);
    putDelta(out, rec.tag, prevTag);
    prevTag = rec.tag;
    putVarint(out, rec.parentTag);
    putVarint(out, rec.taskFn);
    putVarint(out, rec.spawnInstr);
    putFrames(out, rec.preSpawnStack);
  }

  std::vector<uint64_t> keys;
  keys.reserve(log.allocBytesBySite.size());
  for (const auto& [key, bytes] : log.allocBytesBySite) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  putVarint(out, keys.size());
  uint64_t prevKey = 0;
  for (uint64_t key : keys) {
    putDelta(out, key, prevKey);
    prevKey = key;
    putVarint(out, log.allocBytesBySite.at(key));
  }

  // Comm matrix: a std::map already iterates in ascending key order.
  putVarint(out, log.commMatrix.size());
  uint64_t prevCell = 0;
  for (const auto& [key, count] : log.commMatrix) {
    putDelta(out, key, prevCell);
    prevCell = key;
    putVarint(out, count);
  }

  // Version 6: per-task clock spans in canonical emission order. Start
  // cycles are near-monotonic across spans (zigzag delta); the end is
  // encoded as the span length; sites are sorted ascending within a span
  // (plain delta) with the scaled sums stored as savings off `raw` — they
  // satisfy raw/2 <= s2 <= raw etc., so the differences are small.
  putVarint(out, log.taskSpans.size());
  uint64_t prevStart = 0;
  for (const TaskSpan& sp : log.taskSpans) {
    putVarint(out, sp.tag);
    putVarint(out, sp.chunk);
    putVarint(out, sp.stream);
    putDelta(out, sp.startCycle, prevStart);
    prevStart = sp.startCycle;
    putVarint(out, sp.endCycle - sp.startCycle);
    putVarint(out, sp.sites.size());
    uint64_t prevSite = 0;
    for (const SiteCycles& sc : sp.sites) {
      putDelta(out, sc.site, prevSite);
      prevSite = sc.site;
      putVarint(out, sc.raw);
      putVarint(out, sc.raw - sc.s125);
      putVarint(out, sc.raw - sc.s2);
      putVarint(out, sc.raw - sc.s4);
    }
  }
  return out;
}

bool deserializeRunLog(const std::string& data, RunLog& out) {
  RunLogStreamer s;
  s.openString(data);
  return s.readAll(out);
}

bool saveRunLog(const RunLog& log, const std::string& path, RunLogFormat format) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  std::string data =
      format == RunLogFormat::Binary ? serializeRunLogBinary(log) : serializeRunLog(log);
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  return f.good();
}

bool loadRunLog(const std::string& path, RunLog& out) {
  // Chunked single-pass scan: the file is decoded through a fixed-size
  // buffer instead of being slurped into one contiguous string first.
  RunLogStreamer s;
  if (!s.openFile(path)) return false;
  return s.readAll(out);
}

}  // namespace cb::sampling
