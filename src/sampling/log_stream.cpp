#include "sampling/log_stream.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/varint.h"

namespace cb::sampling {

namespace {

/// Exactly the batch parser's frame tokenizer: `strtoul` reads the digits
/// before the colon (non-digits parse as 0, preserving the seed's
/// acceptance) and the instr starts right after it.
bool parseFrames(std::istringstream& in, size_t n, std::vector<Frame>& out) {
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string tok;
    if (!(in >> tok)) return false;
    size_t colon = tok.find(':');
    if (colon == std::string::npos) return false;
    Frame f;
    f.func = static_cast<ir::FuncId>(std::strtoul(tok.c_str(), nullptr, 10));
    f.instr = static_cast<ir::InstrId>(std::strtoul(tok.c_str() + colon + 1, nullptr, 10));
    out.push_back(f);
  }
  return true;
}

/// Pull-based mirror of StringByteReader's zigzag-delta decoding.
bool readDelta(ChunkReader& r, uint64_t& cur, uint64_t prev) {
  uint64_t z;
  if (!r.varint(z)) return false;
  cur = prev + static_cast<uint64_t>(unzigzag(z));
  return true;
}

bool readDelta32(ChunkReader& r, uint32_t& cur, uint32_t prev) {
  uint64_t c;
  if (!readDelta(r, c, prev)) return false;
  cur = static_cast<uint32_t>(c);  // ids wrap in 32 bits by construction
  return true;
}

bool readFramesBinary(ChunkReader& r, uint64_t remaining, std::vector<Frame>& out) {
  uint64_t n;
  if (!r.varint(n) || n > remaining) return false;  // each frame >= 2 bytes
  out.reserve(n);
  uint32_t prevFunc = 0, prevInstr = 0;
  for (uint64_t i = 0; i < n; ++i) {
    Frame f;
    if (!readDelta32(r, f.func, prevFunc) || !readDelta32(r, f.instr, prevInstr)) return false;
    prevFunc = f.func;
    prevInstr = f.instr;
    out.push_back(f);
  }
  return true;
}

}  // namespace

bool RunLogStreamer::openFile(const std::string& path, size_t chunkBytes) {
  isFile_ = true;
  path_ = path;
  chunkBytes_ = chunkBytes;
  metaDone_ = false;
  samples_ = 0;
  opened_ = reader_.openFile(path, chunkBytes);
  return opened_;
}

void RunLogStreamer::openString(std::string_view data) {
  isFile_ = false;
  mem_ = data;
  metaDone_ = false;
  samples_ = 0;
  reader_.openString(data);
  opened_ = true;
}

bool RunLogStreamer::reopen() {
  if (!opened_) return false;
  return reader_.rewind();
}

bool RunLogStreamer::readMeta(RunLog& meta) {
  if (!reopen()) return false;
  samples_ = 0;
  metaDone_ = scan(&meta, nullptr);
  return metaDone_;
}

bool RunLogStreamer::forEachSample(const std::function<bool(RawSample&&)>& fn) {
  if (!metaDone_ || !reopen()) return false;
  return scan(nullptr, &fn);
}

bool RunLogStreamer::readAll(RunLog& out) {
  if (!reopen()) return false;
  samples_ = 0;
  std::function<bool(RawSample&&)> sink = [&out](RawSample&& s) {
    out.samples.push_back(std::move(s));
    return true;
  };
  metaDone_ = scan(&out, &sink);
  return metaDone_;
}

bool RunLogStreamer::scan(RunLog* meta, const std::function<bool(RawSample&&)>* fn) {
  if (meta) *meta = RunLog{};
  uint8_t magic[4];
  size_t got = reader_.peek(magic, 4);
  bool binary = got == 4;
  for (size_t i = 0; binary && i < 4; ++i)
    binary = magic[i] == static_cast<uint8_t>(kRunLogBinaryMagic[i]);
  return binary ? scanBinary(meta, fn) : scanText(meta, fn);
}

// ---------------------------------------------------------------------------
// Binary scan — the decoding twin of serializeRunLogBinary (see log_io.h for
// the wire layout). Version 1..5 files load with newer fields defaulted.
// ---------------------------------------------------------------------------

bool RunLogStreamer::scanBinary(RunLog* meta, const std::function<bool(RawSample&&)>* fn) {
  ChunkReader& r = reader_;
  auto remaining = [&r] { return r.totalBytes() - r.bytesConsumed(); };
  RunLog scratch;
  RunLog& dst = meta ? *meta : scratch;

  uint8_t b;
  for (char m : kRunLogBinaryMagic)
    if (!r.byte(b) || b != static_cast<uint8_t>(m)) return false;
  uint8_t version;
  if (!r.byte(version) || version < 1 || version > kRunLogBinaryVersion) return false;

  uint64_t nStreams;
  if (!r.varint(dst.sampleThreshold) || !r.varint(nStreams) || nStreams > ~0u ||
      !r.varint(dst.totalCycles))
    return false;
  dst.numStreams = static_cast<uint32_t>(nStreams);
  if (version >= 2 &&
      (!r.varint(dst.commGets) || !r.varint(dst.commPuts) || !r.varint(dst.commOnForks)))
    return false;
  if (version >= 3 && (!r.varint(dst.commAggGets) || !r.varint(dst.commAggPuts) ||
                       !r.varint(dst.commAggFlushes)))
    return false;
  if (version >= 4 && (!r.varint(dst.commMemStallCycles) || !r.varint(dst.commNetStallCycles) ||
                       !r.varint(dst.commContentionCycles)))
    return false;
  if (version >= 5 && !r.varint(dst.raceFallbackRegions)) return false;

  uint64_t nSamples;
  if (!r.varint(nSamples) || nSamples > remaining()) return false;
  uint64_t prevCycle = 0;
  for (uint64_t i = 0; i < nSamples; ++i) {
    RawSample s;
    uint64_t rtk;
    if (!r.varint32(s.stream) || !r.varint(s.taskTag) || !readDelta(r, s.atCycle, prevCycle) ||
        !r.varint(rtk) || rtk > 255)
      return false;
    prevCycle = s.atCycle;
    s.runtimeFrame = static_cast<RuntimeFrameKind>(rtk);
    if (version >= 2) {
      uint64_t ak;
      if (!r.varint(ak) || ak > 3) return false;
      s.accessKind = static_cast<AccessKind>(ak);
      if (version >= 3 &&
          (s.accessKind == AccessKind::RemoteGet || s.accessKind == AccessKind::RemotePut)) {
        uint64_t src, dst2;
        if (!r.varint(src) || src > ~0u || !r.varint(dst2) || dst2 > ~0u) return false;
        s.srcLocale = static_cast<int32_t>(src);
        s.dstLocale = static_cast<int32_t>(dst2);
      }
    }
    if (!readFramesBinary(r, remaining(), s.stack)) return false;
    if (fn && !(*fn)(std::move(s))) return false;
  }
  samples_ = nSamples;

  // A sample-only pass (pass 2) stops here: the trailing sections were
  // already validated and collected by readMeta.
  if (!meta) return true;

  uint64_t nSpawns;
  if (!r.varint(nSpawns) || nSpawns > remaining()) return false;
  uint64_t prevTag = 0;
  for (uint64_t i = 0; i < nSpawns; ++i) {
    SpawnRecord rec;
    if (!readDelta(r, rec.tag, prevTag) || !r.varint(rec.parentTag) ||
        !r.varint32(rec.taskFn) || !r.varint32(rec.spawnInstr) ||
        !readFramesBinary(r, remaining(), rec.preSpawnStack))
      return false;
    prevTag = rec.tag;
    uint64_t tag = rec.tag;
    dst.spawns.emplace(tag, std::move(rec));
  }

  uint64_t nSites;
  if (!r.varint(nSites) || nSites > remaining()) return false;
  uint64_t prevKey = 0;
  for (uint64_t i = 0; i < nSites; ++i) {
    uint64_t key, bytes;
    if (!readDelta(r, key, prevKey) || !r.varint(bytes)) return false;
    prevKey = key;
    dst.allocBytesBySite[key] = bytes;
  }

  if (version >= 3) {
    uint64_t nCells;
    if (!r.varint(nCells) || nCells > remaining()) return false;
    uint64_t prevCell = 0;
    for (uint64_t i = 0; i < nCells; ++i) {
      uint64_t key, count;
      if (!readDelta(r, key, prevCell) || !r.varint(count)) return false;
      prevCell = key;
      dst.commMatrix[key] = count;
    }
  }

  if (version >= 6) {
    uint64_t nSpans;
    if (!r.varint(nSpans) || nSpans > remaining()) return false;
    dst.taskSpans.reserve(nSpans);
    uint64_t prevStart = 0;
    for (uint64_t i = 0; i < nSpans; ++i) {
      TaskSpan sp;
      uint64_t len, nSites;
      if (!r.varint(sp.tag) || !r.varint32(sp.chunk) || !r.varint32(sp.stream) ||
          !readDelta(r, sp.startCycle, prevStart) || !r.varint(len) || !r.varint(nSites) ||
          nSites > remaining())
        return false;
      prevStart = sp.startCycle;
      sp.endCycle = sp.startCycle + len;
      sp.sites.reserve(nSites);
      uint64_t prevSite = 0;
      for (uint64_t k = 0; k < nSites; ++k) {
        SiteCycles sc;
        uint64_t d125, d2, d4;
        if (!readDelta(r, sc.site, prevSite) || !r.varint(sc.raw) || !r.varint(d125) ||
            !r.varint(d2) || !r.varint(d4) || d125 > sc.raw || d2 > sc.raw || d4 > sc.raw)
          return false;
        prevSite = sc.site;
        sc.s125 = sc.raw - d125;
        sc.s2 = sc.raw - d2;
        sc.s4 = sc.raw - d4;
        sp.sites.push_back(sc);
      }
      dst.taskSpans.push_back(std::move(sp));
    }
  }
  return r.atEnd();  // trailing garbage is a format error
}

// ---------------------------------------------------------------------------
// Text scan — the line format (see serializeRunLog). Lines of different
// kinds may interleave in any order; versions gate which fields appear.
// ---------------------------------------------------------------------------

bool RunLogStreamer::scanText(RunLog* meta, const std::function<bool(RawSample&&)>* fn) {
  ChunkReader& r = reader_;
  RunLog scratch;
  RunLog& dst = meta ? *meta : scratch;
  std::string line;
  int version = 0;
  if (!r.getline(line)) return false;
  {
    std::istringstream h(line);
    std::string magic;
    if (!(h >> magic >> version >> dst.sampleThreshold >> dst.numStreams >> dst.totalCycles))
      return false;
    if (magic != "cblog" || version < 1 || version > 6) return false;
    if (version >= 2 && !(h >> dst.commGets >> dst.commPuts >> dst.commOnForks)) return false;
    if (version >= 3 && !(h >> dst.commAggGets >> dst.commAggPuts >> dst.commAggFlushes))
      return false;
    if (version >= 4 &&
        !(h >> dst.commMemStallCycles >> dst.commNetStallCycles >> dst.commContentionCycles))
      return false;
    if (version >= 5 && !(h >> dst.raceFallbackRegions)) return false;
  }
  uint64_t nSamples = 0;
  while (r.getline(line)) {
    if (line.empty()) continue;
    // The record kind is the first non-whitespace character (operator>>
    // semantics); whitespace-only lines are malformed, as in the batch
    // parser. Pass 2 only re-decodes samples — every other record kind was
    // validated and collected by readMeta.
    size_t first = line.find_first_not_of(" \t\r\v\f");
    if (first == std::string::npos) return false;
    char kind = line[first];
    if (!meta && kind != 'S') continue;
    std::istringstream in(line);
    in >> kind;
    if (kind == 'S') {
      RawSample s;
      int rtk = 0, ak = 0;
      size_t n = 0;
      if (!(in >> s.stream >> s.taskTag >> s.atCycle >> rtk)) return false;
      if (version >= 2 && !(in >> ak)) return false;
      if (version >= 3 && !(in >> s.srcLocale >> s.dstLocale)) return false;
      if (!(in >> n)) return false;
      s.runtimeFrame = static_cast<RuntimeFrameKind>(rtk);
      s.accessKind = static_cast<AccessKind>(ak);
      if (!parseFrames(in, n, s.stack)) return false;
      ++nSamples;
      if (fn && !(*fn)(std::move(s))) return false;
    } else if (kind == 'W') {
      SpawnRecord rec;
      size_t n = 0;
      if (!(in >> rec.tag >> rec.parentTag >> rec.taskFn >> rec.spawnInstr >> n)) return false;
      if (!parseFrames(in, n, rec.preSpawnStack)) return false;
      dst.spawns.emplace(rec.tag, std::move(rec));
    } else if (kind == 'A') {
      uint64_t key = 0, bytes = 0;
      if (!(in >> key >> bytes)) return false;
      dst.allocBytesBySite[key] = bytes;
    } else if (kind == 'M' && version >= 3) {
      int64_t src = 0, dstLoc = 0;
      uint64_t count = 0;
      if (!(in >> src >> dstLoc >> count)) return false;
      dst.commMatrix[RunLog::pairKey(src, dstLoc)] = count;
    } else if (kind == 'T' && version >= 6) {
      TaskSpan sp;
      size_t n = 0;
      if (!(in >> sp.tag >> sp.chunk >> sp.stream >> sp.startCycle >> sp.endCycle >> n) ||
          sp.endCycle < sp.startCycle)
        return false;
      sp.sites.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        std::string tok;
        if (!(in >> tok)) return false;
        SiteCycles sc;
        // site:raw:s125:s2:s4 — five colon-separated decimal fields.
        if (std::sscanf(tok.c_str(), "%" SCNu64 ":%" SCNu64 ":%" SCNu64 ":%" SCNu64 ":%" SCNu64,
                        &sc.site, &sc.raw, &sc.s125, &sc.s2, &sc.s4) != 5)
          return false;
        sp.sites.push_back(sc);
      }
      dst.taskSpans.push_back(std::move(sp));
    } else {
      return false;
    }
  }
  samples_ = nSamples;
  return true;
}

}  // namespace cb::sampling
