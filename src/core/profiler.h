// ChapelBlame public facade — the paper's tool, end to end:
//
//   Profiler p;
//   p.compileFile(cb::assetProgram("minimd"));   // step 0: chpl --llvm -g
//   p.analyze();                                 // step 1: static blame
//   p.run();                                     // step 2: sampled execution
//   p.postProcess();                             // step 3: glue + attribute
//   std::cout << p.dataCentricText();            // step 4: present
//
// Every intermediate artefact (IR module, blame database, raw samples,
// instances, reports) stays accessible for tests, benches and ablations.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "analysis/blame.h"
#include "analysis/causal.h"
#include "analysis/diagnose.h"
#include "cache/analysis_cache.h"
#include "frontend/compiler.h"
#include "postmortem/attribution.h"
#include "postmortem/baseline.h"
#include "postmortem/instance.h"
#include "postmortem/parallel.h"
#include "report/views.h"
#include "runtime/interp.h"

namespace cb {

struct ProfileOptions {
  fe::CompileOptions compile;
  an::BlameOptions blame;
  /// Execution-engine selection rides along here: `run.referenceInterp`
  /// forces the tree-walking oracle interpreter, and `run.replayThreads`
  /// lets the default bytecode engine replay eligible parallel regions on
  /// OS threads. Every combination produces a bit-identical RunLog, so
  /// profiles are comparable regardless of engine (see src/runtime/exec.cpp).
  rt::RunOptions run;
  pm::ConsolidateOptions consolidate;
  pm::AttributionOptions attribution;
  /// Parallel post-mortem (step 3) sharding. `postmortem.workers` defaults
  /// to hardware concurrency; 1 forces the sequential path. Any worker
  /// count yields a bit-identical BlameReport (see src/postmortem/parallel.h).
  pm::ParallelOptions postmortem;
  pm::BaselineOptions baseline;
  rpt::ViewOptions view;
  /// profileMultiLocale pool width: each simulated locale is an independent
  /// compile+run+postmortem pipeline, so locales execute on a ThreadPool of
  /// this many workers. 0 = auto (min(numLocales, hardware)); 1 = fully
  /// sequential. Any value yields bit-identical per-locale and aggregate
  /// reports — locale results land in pre-sized slots and the aggregate is
  /// streamed through a commutative accumulator, so completion order cannot
  /// change it.
  uint32_t localeWorkers = 0;
  /// On-disk analysis cache directory; empty disables caching. When set,
  /// analyze() tries the cache (keyed by a content hash over the source and
  /// the compile/blame options) before running the blame fixpoint, and
  /// stores the result after a cold success. Cached and uncached analyses
  /// are bit-identical; any invalid entry is a silent cold fallback.
  std::string cacheDir;
  /// When false, profileMultiLocale drops each locale's BlameReport as soon
  /// as it has been folded into the streaming aggregate, leaving
  /// MultiLocaleResult::perLocale slots empty. That bounds peak memory at
  /// O(distinct aggregate rows) + O(localeWorkers in-flight pipelines)
  /// instead of O(numLocales × report) — the difference between 1024
  /// simulated locales fitting comfortably and not.
  bool keepPerLocaleReports = true;
};

/// Highest `numLocales` profileMultiLocale (and the profile_program
/// `--locales` flag) accepts. 1024-locale weak scaling is a supported,
/// benchmarked configuration; the cap only rejects typo-sized requests that
/// would spawn an absurd number of pipelines.
inline constexpr uint32_t kMaxSimulatedLocales = 4096;

/// Validates a requested simulated-locale count: returns an empty string
/// when `1 <= n <= kMaxSimulatedLocales`, else a human-readable error.
std::string validateLocaleCount(uint64_t n);

/// Absolute path of a bundled mini-Chapel program, e.g. assetProgram("clomp")
/// -> "<repo>/assets/programs/clomp.chpl".
std::string assetProgram(const std::string& name);

class Profiler {
 public:
  explicit Profiler(ProfileOptions opts = {}) : opts_(std::move(opts)) {}

  const ProfileOptions& options() const { return opts_; }
  ProfileOptions& options() { return opts_; }

  /// Step 0: compile. Returns false (and keeps diagnostics) on error.
  bool compileString(const std::string& name, const std::string& source);
  bool compileFile(const std::string& path);

  /// Steps 0+1 by adoption: attaches an already-built program (typically a
  /// resident-cache hit), so compileX() and analyze() are skipped entirely.
  /// `blame` may be null for --fast pipelines. `key` records the program's
  /// content hash (0 = unknown). Downstream artefacts are reset.
  void attachProgram(std::shared_ptr<const fe::Compilation> comp,
                     std::shared_ptr<const an::ModuleBlame> blame, uint64_t key = 0);

  /// Step 1: static blame analysis. Requires a successful compile. Consults
  /// the on-disk cache when options().cacheDir is set.
  bool analyze();

  /// Step 2: execute under the monitor. Requires a successful compile.
  bool run();

  /// Step 3: consolidate instances and attribute blame. Requires analyze()
  /// and run(). Data-centric attribution refuses --fast modules (the
  /// source-variable mapping is gone) but code-centric results still work.
  bool postProcess();

  /// Convenience: all four steps. Returns false on the first failure.
  bool profileString(const std::string& name, const std::string& source);
  bool profileFile(const std::string& path);

  // ---- artefacts ----------------------------------------------------------
  const fe::Compilation* compilation() const { return comp_.get(); }
  const an::ModuleBlame* moduleBlame() const { return blame_.get(); }
  /// Shared ownership of the built program, for the resident cache: a
  /// CachedProgram made of these stays valid after this Profiler dies.
  std::shared_ptr<const fe::Compilation> sharedCompilation() const { return comp_; }
  std::shared_ptr<const an::ModuleBlame> sharedModuleBlame() const { return blame_; }
  /// Content hash of the compiled program + options (0 before a compile).
  uint64_t programKey() const { return programKey_; }
  /// True when the last analyze() was served from the on-disk cache.
  bool analysisCacheHit() const { return analysisCacheHit_; }
  const rt::RunResult* runResult() const { return result_ ? &*result_ : nullptr; }
  const std::vector<pm::Instance>* instances() const {
    return instances_ ? &*instances_ : nullptr;
  }
  const pm::BlameReport* blameReport() const { return report_ ? &*report_ : nullptr; }
  /// Mutable access so short-lived pipelines can move the report out instead
  /// of copying it (profileMultiLocale folds then steals each locale's).
  pm::BlameReport* blameReportMutable() { return report_ ? &*report_ : nullptr; }
  const rpt::CodeCentricReport* codeReport() const {
    return codeReport_ ? &*codeReport_ : nullptr;
  }

  /// Baseline (allocation-threshold) attribution, computed on demand.
  pm::BaselineReport baselineReport() const;

  /// Static locality-and-race lint (analysis/locality.h), computed on
  /// demand from the compiled module. Requires a successful compile. Locale
  /// count, config overrides, and cost profile come from `options().run` so
  /// predictions line up with what run() would measure. `numLocalesOverride`
  /// (when nonzero) models a different locale count than the run options.
  an::loc::LintReport lintReport(uint32_t numLocalesOverride = 0) const;

  /// lintView rendering of lintReport(); includes the static-vs-dynamic
  /// differential when postProcess() has produced a BlameReport.
  std::string lintText(uint32_t numLocalesOverride = 0) const;

  /// Adopts a previously saved run log as this profiler's step-2 artefact
  /// (the `--diagnose --from-log` path): postProcess() and the causal /
  /// diagnose accessors then behave as if run() had produced it. Downstream
  /// artefacts are reset.
  void attachRunLog(sampling::RunLog log);

  /// Causal what-if report (analysis/causal.h): spawn-tree critical path,
  /// region widths, and per-variable virtual-speedup predictions, computed
  /// on demand from the recorded task spans. Requires run() (or an attached
  /// log); predictions additionally need per-site tracking
  /// (options().run.trackCausalSites) and a postProcess()'d data-centric
  /// report — the variable→site bridge comes from pm::attributionSites.
  an::causal::CausalReport causalReport(size_t maxVariables = 8) const;

  /// Rule-based diagnosis (`cb --diagnose`): the causal report, the static
  /// lint, and the measured blame rows run through an::diag::diagnose,
  /// rendered by rpt::diagnoseView with the trailing metric block that
  /// --diagnose-baseline compares against.
  std::string diagnoseText() const;

  // ---- renderings ---------------------------------------------------------
  std::string dataCentricText() const;
  std::string codeCentricText() const;
  std::string pprofText(const std::string& binaryName) const;
  std::string hybridText() const;
  std::string guiText() const;

  /// Last failure description (compile diagnostics / runtime error / usage).
  const std::string& lastError() const { return error_; }

 private:
  ProfileOptions opts_;
  std::shared_ptr<const fe::Compilation> comp_;
  std::shared_ptr<const an::ModuleBlame> blame_;
  uint64_t programKey_ = 0;
  bool analysisCacheHit_ = false;
  std::optional<rt::RunResult> result_;
  std::optional<std::vector<pm::Instance>> instances_;
  /// Primed by postProcess() (sequential path only) so causalReport()'s
  /// variable→site bridge reuses the attribution memo instead of
  /// re-attributing every sample.
  pm::AttributionCache attrCache_;
  std::optional<pm::BlameReport> report_;
  std::optional<rpt::CodeCentricReport> codeReport_;
  std::string error_;
};

/// Multi-locale simulation (paper §VI future work / §IV.C step 4): runs the
/// full pipeline once per simulated locale — each locale gets its own RNG
/// stream and a `hereId` config override programs can branch on — then
/// aggregates the per-locale blame reports. Step 3 is embarrassingly
/// parallel across locales; step 4 is the combine.
struct MultiLocaleResult {
  pm::BlameReport aggregate;
  /// One slot per locale; empty on failure, and empty for EVERY locale when
  /// ProfileOptions::keepPerLocaleReports is false (the aggregate is then
  /// the only retained artefact).
  std::vector<pm::BlameReport> perLocale;
  /// Per-locale failure descriptions, one slot per locale; empty string =
  /// success. Every failing locale is surfaced (not just the first), and
  /// reports from locales that completed are kept in `perLocale` and still
  /// contribute to `aggregate`.
  std::vector<std::string> localeErrors;
  bool ok = false;
  std::string error;  // all locale failures, joined
};

MultiLocaleResult profileMultiLocale(const std::string& path, uint32_t numLocales,
                                     ProfileOptions opts = {});

}  // namespace cb
