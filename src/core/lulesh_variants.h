// Source-level LULESH optimization variants (paper §V.C).
//
// The paper's LULESH experiments are source edits: toggling the three
// `param` keywords (Table VII), hoisting determ/dvdx to module scope
// ("VG", variable globalization), and removing the tuple temporaries in
// CalcElemNodeNormals ("CENN"). This helper applies those edits to the
// bundled lulesh.chpl, exactly as a programmer following the tool's
// guidance would.
#pragma once

#include <string>

namespace cb {

struct LuleshVariant {
  bool p1 = true;    // `param` on the Fig. 5 outer loop
  bool p2 = true;    // `param` on CalcElemFBHourglassForce's first loop
  bool p3 = true;    // `param` on CalcElemFBHourglassForce's second loop
  bool vg = false;   // variable globalization of determ/dvdx(y/z)
  bool cenn = false; // direct-assignment CalcElemNodeNormals

  /// The paper's Table VII row labels ("Original", "P 1", "P1+P2", ...).
  static LuleshVariant original() { return {}; }
  static LuleshVariant noParams() { return {false, false, false, false, false}; }
  static LuleshVariant best() { return {true, false, false, true, true}; }
};

/// Loads assets/programs/lulesh.chpl and applies the variant's edits.
/// Aborts (CB_ASSERT) if the expected code patterns are missing — the
/// transforms are anchored to exact source snippets.
std::string luleshSource(const LuleshVariant& v);

}  // namespace cb
