#include "core/profiler.h"

#include <algorithm>
#include <mutex>

#include "cb_config.h"
#include "support/thread_pool.h"

namespace cb {

std::string assetProgram(const std::string& name) {
  return std::string(kAssetDir) + "/programs/" + name + ".chpl";
}

namespace {

/// Content hash of the program buffer a compilation was built from (file id
/// 1 is the primary buffer) combined with the options that shape analysis.
uint64_t keyOf(const fe::Compilation& comp, const ProfileOptions& opts) {
  const SourceManager& sm = comp.sourceManager();
  if (sm.numBuffers() < 1) return 0;
  return cache::hashProgram(sm.name(1), sm.contents(1), opts.compile, opts.blame);
}

}  // namespace

bool Profiler::compileString(const std::string& name, const std::string& source) {
  programKey_ = 0;
  comp_ = fe::Compilation::fromString(name, source, opts_.compile);
  if (!comp_->ok()) {
    error_ = comp_->diags().renderAll();
    return false;
  }
  programKey_ = keyOf(*comp_, opts_);
  return true;
}

bool Profiler::compileFile(const std::string& path) {
  programKey_ = 0;
  comp_ = fe::Compilation::fromFile(path, opts_.compile);
  if (!comp_->ok()) {
    error_ = comp_->diags().renderAll();
    return false;
  }
  programKey_ = keyOf(*comp_, opts_);
  return true;
}

void Profiler::attachProgram(std::shared_ptr<const fe::Compilation> comp,
                             std::shared_ptr<const an::ModuleBlame> blame, uint64_t key) {
  comp_ = std::move(comp);
  blame_ = std::move(blame);
  programKey_ = key;
  analysisCacheHit_ = false;
  result_.reset();
  instances_.reset();
  report_.reset();
  codeReport_.reset();
  error_.clear();
}

bool Profiler::analyze() {
  if (!comp_ || !comp_->ok()) {
    error_ = "analyze() requires a successful compile";
    return false;
  }
  analysisCacheHit_ = false;
  const ir::Module& m = comp_->module();
  if (!opts_.cacheDir.empty() && programKey_ != 0) {
    cache::AnalysisCache disk(opts_.cacheDir);
    an::ModuleBlame mb;
    if (disk.load(programKey_, m, mb)) {
      blame_ = std::make_shared<const an::ModuleBlame>(std::move(mb));
      analysisCacheHit_ = true;
      return true;
    }
    blame_ = std::make_shared<const an::ModuleBlame>(an::analyzeModule(m, opts_.blame));
    disk.store(programKey_, m, *blame_);
    return true;
  }
  blame_ = std::make_shared<const an::ModuleBlame>(an::analyzeModule(m, opts_.blame));
  return true;
}

bool Profiler::run() {
  if (!comp_ || !comp_->ok()) {
    error_ = "run() requires a successful compile";
    return false;
  }
  result_ = rt::execute(comp_->module(), opts_.run);
  if (!result_->ok) {
    error_ = "runtime error: " + result_->error;
    return false;
  }
  return true;
}

bool Profiler::postProcess() {
  if (!blame_ || !result_) {
    error_ = "postProcess() requires analyze() and run()";
    return false;
  }
  // --fast strips the IR -> source-variable mapping, so only the
  // code-centric view is meaningful (paper §V, footnote 1); attribution is
  // skipped by passing a null blame database.
  bool stripped = comp_->module().debugInfoStripped;
  pm::PostmortemResult res =
      pm::runPostmortem(comp_->module(), stripped ? nullptr : blame_.get(), result_->log,
                        opts_.consolidate, opts_.attribution, opts_.postmortem, &attrCache_);
  instances_ = std::move(res.instances);
  codeReport_ = rpt::codeCentric(*instances_);
  report_ = std::move(res.report);
  if (stripped) report_->totalRawSamples = instances_->size();
  return true;
}

bool Profiler::profileString(const std::string& name, const std::string& source) {
  return compileString(name, source) && analyze() && run() && postProcess();
}

bool Profiler::profileFile(const std::string& path) {
  return compileFile(path) && analyze() && run() && postProcess();
}

pm::BaselineReport Profiler::baselineReport() const {
  if (!comp_ || !result_ || !instances_) return {};
  return pm::baselineAttribute(comp_->module(), result_->log, *instances_, opts_.baseline);
}

an::loc::LintReport Profiler::lintReport(uint32_t numLocalesOverride) const {
  if (!comp_ || !comp_->ok()) {
    an::loc::LintReport r;
    r.error = "lint requires a successfully compiled module";
    return r;
  }
  an::loc::Params p;
  p.numLocales = numLocalesOverride ? numLocalesOverride
                                    : std::max<uint32_t>(1, opts_.run.numLocales);
  p.homeLocale = opts_.run.localeId;
  p.configOverrides = opts_.run.configOverrides;
  p.rngSeed = opts_.run.rngSeed;
  // Cost selection mirrors the runtime engines so the expected-sample-mass
  // model lines up with what run() would measure.
  rt::CostProfile prof = opts_.run.costProfileOverride
                             ? *opts_.run.costProfileOverride
                             : (opts_.run.fastCostProfile ? rt::CostProfile::fast()
                                                          : rt::CostProfile::standard());
  auto model = std::make_shared<rt::CostModel>(prof);
  p.instrCost = [model](const ir::Instr& in) { return model->cost(in); };
  p.remoteGetCost = prof.remoteGet;
  p.remotePutCost = prof.remotePut;
  p.viewIndexExtraCost = prof.viewIndexExtra;
  return an::loc::lint(comp_->module(), p);
}

std::string Profiler::lintText(uint32_t numLocalesOverride) const {
  if (!comp_ || !comp_->ok()) return "<no compiled module>";
  an::loc::LintReport r = lintReport(numLocalesOverride);
  return rpt::lintView(comp_->module(), r, report_ ? &*report_ : nullptr);
}

void Profiler::attachRunLog(sampling::RunLog log) {
  result_.emplace();
  result_->log = std::move(log);
  result_->totalCycles = result_->log.totalCycles;
  result_->ok = true;
  instances_.reset();
  report_.reset();
  codeReport_.reset();
  error_.clear();
}

an::causal::CausalReport Profiler::causalReport(size_t maxVariables) const {
  if (!result_) {
    an::causal::CausalReport r;
    r.error = "causal analysis requires run()";
    return r;
  }
  // Variable → site bridge: each blame row carries the leaf sites its
  // samples fired at — served from postProcess()'s attribution memo when
  // primed, otherwise by a fresh site-collection pass. Skipped for
  // --fast modules (no data-centric mapping) — the critical-path breakdown
  // still works, only the what-if table is empty.
  std::vector<an::causal::VariableSites> vars;
  if (blame_ && instances_ && comp_ && !comp_->module().debugInfoStripped) {
    std::vector<pm::VariableSiteSet> sets =
        pm::attributionSites(*blame_, *instances_, opts_.attribution, &attrCache_);
    vars.reserve(sets.size());
    for (pm::VariableSiteSet& s : sets) {
      an::causal::VariableSites v;
      v.context = std::move(s.context);
      v.name = std::move(s.name);
      v.type = std::move(s.type);
      v.sampleCount = s.sampleCount;
      v.sites = std::move(s.sites);
      vars.push_back(std::move(v));
    }
  }
  an::causal::Options copts;
  copts.maxVariables = maxVariables;
  return an::causal::analyze(result_->log, vars, copts);
}

std::string Profiler::diagnoseText() const {
  if (!result_) return "<no run>";
  an::causal::CausalReport causal = causalReport();
  static const pm::BlameReport kEmptyReport;
  const pm::BlameReport& rep = report_ ? *report_ : kEmptyReport;
  uint32_t workers = result_->log.numStreams > 1 ? result_->log.numStreams - 1
                                                 : opts_.run.numWorkers;
  an::diag::Inputs in = rpt::diagnoseInputs(result_->log, workers, rep);
  in.causal = &causal;
  an::loc::LintReport lint;
  if (comp_ && comp_->ok() && !comp_->module().debugInfoStripped) {
    lint = lintReport();
    in.lint = &lint;
  }
  std::vector<std::string> regionNames;
  if (comp_ && comp_->ok()) {
    const ir::Module& m = comp_->module();
    regionNames.reserve(causal.regions.size());
    for (const an::causal::RegionSummary& r : causal.regions)
      regionNames.push_back(r.taskFn != ir::kNone ? pm::userContextName(m, r.taskFn) : "");
  }
  in.regionNames = regionNames;
  an::diag::DiagnoseReport diag = an::diag::diagnose(in);
  return rpt::diagnoseView(causal, diag, regionNames);
}

std::string Profiler::dataCentricText() const {
  if (!report_) return "<no blame report>";
  return rpt::dataCentricView(*report_, opts_.view);
}

std::string Profiler::codeCentricText() const {
  if (!codeReport_) return "<no code-centric report>";
  return rpt::codeCentricView(*codeReport_, opts_.view.maxRows);
}

std::string Profiler::pprofText(const std::string& binaryName) const {
  if (!codeReport_) return "<no code-centric report>";
  return rpt::pprofView(*codeReport_, binaryName);
}

std::string Profiler::hybridText() const {
  if (!report_) return "<no blame report>";
  return rpt::hybridView(*report_, opts_.view);
}

std::string Profiler::guiText() const {
  if (!report_ || !codeReport_) return "<no reports>";
  return rpt::guiView(*report_, *codeReport_, opts_.view);
}

std::string validateLocaleCount(uint64_t n) {
  if (n == 0) return "locale count must be at least 1";
  if (n > kMaxSimulatedLocales)
    return "locale count " + std::to_string(n) + " exceeds the supported maximum of " +
           std::to_string(kMaxSimulatedLocales);
  return {};
}

MultiLocaleResult profileMultiLocale(const std::string& path, uint32_t numLocales,
                                     ProfileOptions opts) {
  MultiLocaleResult result;
  if (std::string err = validateLocaleCount(numLocales); !err.empty()) {
    result.error = std::move(err);
    result.ok = false;
    return result;
  }
  result.perLocale.resize(numLocales);
  result.localeErrors.resize(numLocales);

  // The program is identical across locales — only the run options (seed,
  // localeId, hereId override) differ — so compilation and static analysis
  // are hoisted out of the per-locale loop and shared read-only by every
  // pipeline. A compile/analyze failure fails every locale with the same
  // message the per-locale compile produced before the hoist.
  Profiler shared(opts);
  bool sharedOk = shared.compileFile(path) && shared.analyze();
  if (!sharedOk) {
    for (uint32_t locale = 0; locale < numLocales; ++locale)
      result.localeErrors[locale] =
          "locale " + std::to_string(locale) + ": " + shared.lastError();
  }
  std::shared_ptr<const fe::Compilation> sharedComp = shared.sharedCompilation();
  std::shared_ptr<const an::ModuleBlame> sharedBlame = shared.sharedModuleBlame();
  uint64_t sharedKey = shared.programKey();

  // Each locale is one monitored execution + post-mortem over the shared
  // program — embarrassingly parallel, so fan the locales out over a pool.
  // Every locale writes only its own pre-sized slots, and each finished
  // report is folded straight into a streaming aggregator (guarded by a
  // mutex) whose folds are all commutative sums, so the aggregate is
  // bit-identical for any worker count and any completion order. With
  // keepPerLocaleReports off, the report dies with its pipeline right after
  // the fold: peak memory is the accumulator plus the in-flight pipelines,
  // never numLocales full reports.
  pm::StreamingAggregator agg;
  std::mutex aggMutex;
  auto runLocale = [&, numLocales](uint32_t locale) {
    ProfileOptions o = opts;
    o.run.rngSeed = opts.run.rngSeed + locale;
    o.run.numLocales = numLocales;
    o.run.localeId = locale;
    o.run.configOverrides["hereId"] = std::to_string(locale);
    Profiler p(o);
    p.attachProgram(sharedComp, sharedBlame, sharedKey);
    if (!p.run() || !p.postProcess()) {
      result.localeErrors[locale] = "locale " + std::to_string(locale) + ": " + p.lastError();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(aggMutex);
      agg.add(*p.blameReport());
    }
    if (opts.keepPerLocaleReports) result.perLocale[locale] = std::move(*p.blameReportMutable());
  };

  uint32_t workers = opts.localeWorkers != 0
                         ? opts.localeWorkers
                         : std::min(numLocales, ThreadPool::defaultConcurrency());
  if (!sharedOk) {
    // Locale errors already record the shared failure; skip the runs.
  } else if (workers <= 1 || numLocales <= 1) {
    for (uint32_t locale = 0; locale < numLocales; ++locale) runLocale(locale);
  } else {
    ThreadPool pool(std::min(workers, numLocales));
    for (uint32_t locale = 0; locale < numLocales; ++locale)
      pool.submit([&runLocale, locale] { runLocale(locale); });
    pool.wait();
  }

  // Surface every failing locale, and keep aggregating the locales that did
  // complete — a partial profile still answers "where does the blame go".
  for (uint32_t locale = 0; locale < numLocales; ++locale) {
    if (result.localeErrors[locale].empty()) continue;
    if (!result.error.empty()) result.error += "; ";
    result.error += result.localeErrors[locale];
  }
  result.aggregate = agg.finish();
  result.ok = result.error.empty();
  return result;
}

}  // namespace cb
