#include "core/profiler.h"

#include "cb_config.h"

namespace cb {

std::string assetProgram(const std::string& name) {
  return std::string(kAssetDir) + "/programs/" + name + ".chpl";
}

bool Profiler::compileString(const std::string& name, const std::string& source) {
  comp_ = fe::Compilation::fromString(name, source, opts_.compile);
  if (!comp_->ok()) {
    error_ = comp_->diags().renderAll();
    return false;
  }
  return true;
}

bool Profiler::compileFile(const std::string& path) {
  comp_ = fe::Compilation::fromFile(path, opts_.compile);
  if (!comp_->ok()) {
    error_ = comp_->diags().renderAll();
    return false;
  }
  return true;
}

bool Profiler::analyze() {
  if (!comp_ || !comp_->ok()) {
    error_ = "analyze() requires a successful compile";
    return false;
  }
  blame_ = an::analyzeModule(comp_->module(), opts_.blame);
  return true;
}

bool Profiler::run() {
  if (!comp_ || !comp_->ok()) {
    error_ = "run() requires a successful compile";
    return false;
  }
  result_ = rt::execute(comp_->module(), opts_.run);
  if (!result_->ok) {
    error_ = "runtime error: " + result_->error;
    return false;
  }
  return true;
}

bool Profiler::postProcess() {
  if (!blame_ || !result_) {
    error_ = "postProcess() requires analyze() and run()";
    return false;
  }
  // --fast strips the IR -> source-variable mapping, so only the
  // code-centric view is meaningful (paper §V, footnote 1); attribution is
  // skipped by passing a null blame database.
  bool stripped = comp_->module().debugInfoStripped;
  pm::PostmortemResult res =
      pm::runPostmortem(comp_->module(), stripped ? nullptr : &*blame_, result_->log,
                        opts_.consolidate, opts_.attribution, opts_.postmortem);
  instances_ = std::move(res.instances);
  codeReport_ = rpt::codeCentric(*instances_);
  report_ = std::move(res.report);
  if (stripped) report_->totalRawSamples = instances_->size();
  return true;
}

bool Profiler::profileString(const std::string& name, const std::string& source) {
  return compileString(name, source) && analyze() && run() && postProcess();
}

bool Profiler::profileFile(const std::string& path) {
  return compileFile(path) && analyze() && run() && postProcess();
}

pm::BaselineReport Profiler::baselineReport() const {
  if (!comp_ || !result_ || !instances_) return {};
  return pm::baselineAttribute(comp_->module(), result_->log, *instances_, opts_.baseline);
}

std::string Profiler::dataCentricText() const {
  if (!report_) return "<no blame report>";
  return rpt::dataCentricView(*report_, opts_.view);
}

std::string Profiler::codeCentricText() const {
  if (!codeReport_) return "<no code-centric report>";
  return rpt::codeCentricView(*codeReport_, opts_.view.maxRows);
}

std::string Profiler::pprofText(const std::string& binaryName) const {
  if (!codeReport_) return "<no code-centric report>";
  return rpt::pprofView(*codeReport_, binaryName);
}

std::string Profiler::hybridText() const {
  if (!report_) return "<no blame report>";
  return rpt::hybridView(*report_, opts_.view);
}

std::string Profiler::guiText() const {
  if (!report_ || !codeReport_) return "<no reports>";
  return rpt::guiView(*report_, *codeReport_, opts_.view);
}

MultiLocaleResult profileMultiLocale(const std::string& path, uint32_t numLocales,
                                     ProfileOptions opts) {
  MultiLocaleResult result;
  for (uint32_t locale = 0; locale < numLocales; ++locale) {
    ProfileOptions o = opts;
    o.run.rngSeed = opts.run.rngSeed + locale;
    o.run.configOverrides["hereId"] = std::to_string(locale);
    Profiler p(o);
    if (!p.profileFile(path)) {
      result.error = "locale " + std::to_string(locale) + ": " + p.lastError();
      return result;
    }
    result.perLocale.push_back(*p.blameReport());
  }
  std::vector<const pm::BlameReport*> ptrs;
  ptrs.reserve(result.perLocale.size());
  for (const pm::BlameReport& r : result.perLocale) ptrs.push_back(&r);
  result.aggregate = pm::aggregateAcrossLocales(ptrs);
  result.ok = true;
  return result;
}

}  // namespace cb
