#include "core/lulesh_variants.h"

#include <fstream>
#include <sstream>

#include "core/profiler.h"
#include "support/common.h"

namespace cb {

namespace {

/// Replaces exactly one occurrence; aborts if the pattern is absent (the
/// transforms must track the bundled source).
void replaceOnce(std::string& s, const std::string& from, const std::string& to) {
  size_t pos = s.find(from);
  CB_ASSERT(pos != std::string::npos, "lulesh variant anchor not found: " + from);
  s.replace(pos, from.size(), to);
}

}  // namespace

std::string luleshSource(const LuleshVariant& v) {
  std::ifstream in(assetProgram("lulesh"));
  CB_ASSERT(in.good(), "cannot open bundled lulesh.chpl");
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string s = ss.str();

  if (!v.p1) replaceOnce(s, "for /*P1*/param j in 1..4 {", "for j in 1..4 {");
  if (!v.p2) replaceOnce(s, "for /*P2*/param i in 1..4 {", "for i in 1..4 {");
  if (!v.p3) replaceOnce(s, "for /*P3*/param i in 1..8 {", "for i in 1..8 {");

  if (v.vg) {
    // Variable Globalization: "moves the declarations of several safe local
    // variables to the global space so that they won't be dynamically
    // allocated every time when the function is called" (§V.C).
    replaceOnce(s,
                "proc CalcVolumeForceForElems() {\n"
                "  var determ: [Elems] real;\n"
                "  var sigxx: [Elems] real;\n"
                "  var sigyy: [Elems] real;\n"
                "  var sigzz: [Elems] real;\n",
                "proc CalcVolumeForceForElems() {\n");
    replaceOnce(s,
                "proc CalcHourglassControlForElems(determ: [Elems] real) {\n"
                "  var dvdx: [Elems] 8*real;\n"
                "  var dvdy: [Elems] 8*real;\n"
                "  var dvdz: [Elems] 8*real;\n"
                "  var x8n: [Elems] 8*real;\n"
                "  var y8n: [Elems] 8*real;\n"
                "  var z8n: [Elems] 8*real;\n",
                "proc CalcHourglassControlForElems(determ: [Elems] real) {\n");
    replaceOnce(s,
                "var elemToNode: [Elems] 8*int;\n",
                "var elemToNode: [Elems] 8*int;\n"
                "\n"
                "/* VG: hoisted from CalcVolumeForceForElems /\n"
                "   CalcHourglassControlForElems so they are allocated once. */\n"
                "var determ: [Elems] real;\n"
                "var sigxx: [Elems] real;\n"
                "var sigyy: [Elems] real;\n"
                "var sigzz: [Elems] real;\n"
                "var dvdx: [Elems] 8*real;\n"
                "var dvdy: [Elems] 8*real;\n"
                "var dvdz: [Elems] 8*real;\n"
                "var x8n: [Elems] 8*real;\n"
                "var y8n: [Elems] 8*real;\n"
                "var z8n: [Elems] 8*real;\n");
  }

  if (v.cenn) {
    // CENN: "We optimized this part by directly assigning intermediate
    // results to the passed-in variables, thus avoiding redundant tuple
    // constructions" (§V.C).
    replaceOnce(s,
                "    var tx: 8*real;\n"
                "    var ty: 8*real;\n"
                "    var tz: 8*real;\n"
                "    tx(f) = n(1) * 0.25;\n"
                "    tx(f%8+1) = n(1) * 0.25;\n"
                "    ty(f) = n(2) * 0.25;\n"
                "    ty(f%8+1) = n(2) * 0.25;\n"
                "    tz(f) = n(3) * 0.25;\n"
                "    tz(f%8+1) = n(3) * 0.25;\n"
                "    b_x = b_x + tx;\n"
                "    b_y = b_y + ty;\n"
                "    b_z = b_z + tz;\n",
                "    b_x(f) = b_x(f) + n(1) * 0.25;\n"
                "    b_x(f%8+1) = b_x(f%8+1) + n(1) * 0.25;\n"
                "    b_y(f) = b_y(f) + n(2) * 0.25;\n"
                "    b_y(f%8+1) = b_y(f%8+1) + n(2) * 0.25;\n"
                "    b_z(f) = b_z(f) + n(3) * 0.25;\n"
                "    b_z(f%8+1) = b_z(f%8+1) + n(3) * 0.25;\n");
  }

  return s;
}

}  // namespace cb
