#include "report/views.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "support/table.h"

namespace cb::rpt {

std::string dataCentricView(const pm::BlameReport& report, const ViewOptions& opts) {
  TextTable t({"Name", "Type", "Blame", "Context"});
  size_t shown = 0;
  for (const pm::VariableBlame& row : report.rows) {
    if (shown >= opts.maxRows) break;
    if (row.percent < opts.minPercent) continue;
    t.addRow({row.name, row.type, formatFixed(row.percent, 1) + "%", row.context});
    ++shown;
  }
  std::ostringstream out;
  out << "Data-centric (blame) view — " << report.totalUserSamples << " user samples ("
      << report.totalRawSamples << " total)\n"
      << t.render();
  return out.str();
}

std::string dataCentricCsv(const pm::BlameReport& report) {
  TextTable t({"name", "type", "blame_percent", "samples", "context"});
  for (const pm::VariableBlame& row : report.rows) {
    t.addRow({row.name, row.type, formatFixed(row.percent, 3), std::to_string(row.sampleCount),
              row.context});
  }
  return t.renderCsv();
}

CodeCentricReport codeCentric(const std::vector<pm::Instance>& instances) {
  CodeCentricReport report;
  std::unordered_map<std::string, CodeCentricRow> rows;
  for (const pm::Instance& inst : instances) {
    ++report.totalSamples;
    if (inst.idle) {
      const char* name = sampling::runtimeFrameName(inst.runtimeFrame);
      auto& r = rows[name];
      r.function = name;
      ++r.self;
      ++r.inclusive;
      continue;
    }
    if (inst.frames.empty()) continue;
    auto& leaf = rows[inst.frames.back().funcName];
    leaf.function = inst.frames.back().funcName;
    ++leaf.self;
    std::set<std::string> seen;
    for (const pm::ResolvedFrame& fr : inst.frames) {
      if (!seen.insert(fr.funcName).second) continue;  // recursion: count once
      auto& r = rows[fr.funcName];
      r.function = fr.funcName;
      ++r.inclusive;
    }
  }
  report.rows.reserve(rows.size());
  for (auto& [_, row] : rows) report.rows.push_back(std::move(row));
  std::sort(report.rows.begin(), report.rows.end(), [](const auto& a, const auto& b) {
    if (a.self != b.self) return a.self > b.self;
    return a.function < b.function;
  });
  return report;
}

std::string codeCentricView(const CodeCentricReport& report, size_t maxRows) {
  TextTable t({"Function", "Self", "Self%", "Inclusive", "Incl%"});
  double total = static_cast<double>(std::max<uint64_t>(1, report.totalSamples));
  for (size_t i = 0; i < report.rows.size() && i < maxRows; ++i) {
    const CodeCentricRow& r = report.rows[i];
    t.addRow({r.function, std::to_string(r.self), formatFixed(100.0 * r.self / total, 1) + "%",
              std::to_string(r.inclusive), formatFixed(100.0 * r.inclusive / total, 1) + "%"});
  }
  std::ostringstream out;
  out << "Code-centric view — " << report.totalSamples << " samples\n" << t.render();
  return out.str();
}

std::string pprofView(const CodeCentricReport& report, const std::string& binaryName,
                      size_t maxRows) {
  std::ostringstream out;
  out << "Using local file ./" << binaryName << ".\n";
  out << "Using local file prof.log.\n";
  out << "Total: " << report.totalSamples << " samples\n";
  double total = static_cast<double>(std::max<uint64_t>(1, report.totalSamples));
  double cum = 0.0;
  char buf[256];
  for (size_t i = 0; i < report.rows.size() && i < maxRows; ++i) {
    const CodeCentricRow& r = report.rows[i];
    double selfPct = 100.0 * r.self / total;
    double inclPct = 100.0 * r.inclusive / total;
    cum += selfPct;
    // gperftools sees the Chapel compiler's mangled symbols: user functions
    // carry a _chpl suffix; runtime frames (__sched_yield et al.) don't.
    std::string name = r.function;
    bool runtimeFrame = name.rfind("__", 0) == 0 || name.rfind("chpl_", 0) == 0;
    bool alreadyMangled = name.find("_chpl") != std::string::npos;
    if (!runtimeFrame && !alreadyMangled && name != "main" && name != "_init")
      name += "_chpl";
    std::snprintf(buf, sizeof buf, "%8llu %5.1f%% %5.1f%% %8llu %5.1f%% %s\n",
                  static_cast<unsigned long long>(r.self), selfPct, cum,
                  static_cast<unsigned long long>(r.inclusive), inclPct, name.c_str());
    out << buf;
  }
  return out.str();
}

std::string hybridView(const pm::BlameReport& report, const ViewOptions& opts) {
  // Group rows by context; main first (the paper: "the most common blame
  // point is the main function, since the variables in there cannot be
  // bubbled up any further").
  std::map<std::string, std::vector<const pm::VariableBlame*>> byContext;
  for (const pm::VariableBlame& row : report.rows) {
    if (row.percent < opts.minPercent) continue;
    byContext[row.context].push_back(&row);
  }
  std::ostringstream out;
  out << "Hybrid view (blame points)\n";
  auto renderPoint = [&](const std::string& ctx) {
    auto it = byContext.find(ctx);
    if (it == byContext.end()) return;
    out << "\n== blame point: " << ctx << " ==\n";
    TextTable t({"Name", "Type", "Blame"});
    size_t shown = 0;
    for (const pm::VariableBlame* row : it->second) {
      if (shown++ >= opts.maxRows) break;
      t.addRow({row->name, row->type, formatFixed(row->percent, 1) + "%"});
    }
    out << t.render();
    byContext.erase(it);
  };
  renderPoint("main");
  while (!byContext.empty()) renderPoint(byContext.begin()->first);
  return out.str();
}

std::string commView(const pm::BlameReport& report, const ViewOptions& opts) {
  // Remote-heavy rows first: remote samples descending breaks out the
  // mis-distributed arrays; the canonical blame order breaks ties so the
  // view is deterministic across merge orders.
  std::vector<const pm::VariableBlame*> rows;
  rows.reserve(report.rows.size());
  for (const pm::VariableBlame& row : report.rows) {
    if (row.percent < opts.minPercent) continue;
    rows.push_back(&row);
  }
  std::sort(rows.begin(), rows.end(), [](const pm::VariableBlame* a, const pm::VariableBlame* b) {
    if (a->remoteSamples() != b->remoteSamples()) return a->remoteSamples() > b->remoteSamples();
    return pm::blameRowLess(*a, *b);
  });
  auto pct = [](uint64_t part, uint64_t whole) {
    return formatFixed(whole ? 100.0 * static_cast<double>(part) / whole : 0.0, 1) + "%";
  };
  TextTable t({"Name", "Blame", "Compute", "Local", "RemoteGet", "RemotePut", "Remote%", "Context"});
  size_t shown = 0;
  for (const pm::VariableBlame* row : rows) {
    if (shown++ >= opts.maxRows) break;
    t.addRow({row->name, formatFixed(row->percent, 1) + "%",
              std::to_string(row->computeSamples), std::to_string(row->localSamples),
              std::to_string(row->remoteGetSamples), std::to_string(row->remotePutSamples),
              pct(row->remoteSamples(), row->sampleCount), row->context});
  }
  std::ostringstream out;
  out << "Comm (PGAS) view — " << report.totalUserSamples << " user samples ("
      << report.totalRawSamples << " total)\n"
      << t.render();
  return out.str();
}

std::string commMatrixView(const pm::BlameReport& report, const ViewOptions& opts) {
  std::ostringstream out;
  out << "Comm matrix view — " << report.totalUserSamples << " user samples ("
      << report.totalRawSamples << " total)\n";
  if (report.totalComm.empty()) {
    out << "(no remote communication sampled)\n";
    return out.str();
  }

  // Active locales only: a 64-locale run where 3 pairs communicate renders
  // a grid over the handful of locales that appear, never L×L.
  std::set<int32_t> act;
  uint64_t maxCell = 0, totalRemote = 0;
  std::map<std::pair<int32_t, int32_t>, uint64_t> cells;
  for (const pm::CommCell& c : report.totalComm) {
    act.insert(c.src);
    act.insert(c.dst);
    maxCell = std::max(maxCell, c.samples);
    totalRemote += c.samples;
    cells[{c.src, c.dst}] = c.samples;
  }
  std::vector<int32_t> locs(act.begin(), act.end());
  out << "Global src->dst remote samples — " << totalRemote << " across " << cells.size()
      << " locale pair(s), " << locs.size() << " active locale(s)\n";

  // Heat grid: one glyph per cell, ramp scaled to the hottest cell. The grid
  // is quadratic in active locales, so it only renders when it still fits a
  // terminal (<= 16 active); larger runs fall through to the sparse tables,
  // which stay O(maxRows) at any locale count.
  constexpr size_t kDenseGridMaxLocales = 16;
  if (locs.size() <= kDenseGridMaxLocales) {
    static const char kRamp[] = " .:-=+*#%@";
    char buf[32];
    out << "      ";
    for (int32_t d : locs) {
      std::snprintf(buf, sizeof buf, "%4d", d);
      out << buf;
    }
    out << "  (dst)\n";
    for (int32_t s : locs) {
      std::snprintf(buf, sizeof buf, "%5d ", s);
      out << buf;
      for (int32_t d : locs) {
        auto it = cells.find({s, d});
        char g = ' ';
        if (it != cells.end() && it->second > 0)
          g = kRamp[1 + static_cast<size_t>((it->second - 1) * 8 / maxCell)];
        out << "   " << g;
      }
      out << "\n";
    }
  } else {
    out << "(heat grid suppressed: " << locs.size() << " active locales > "
        << kDenseGridMaxLocales << "; showing hottest cells only)\n";
  }

  // Hottest cells, numerically.
  std::vector<pm::CommCell> top(report.totalComm);
  std::sort(top.begin(), top.end(), [](const pm::CommCell& a, const pm::CommCell& b) {
    if (a.samples != b.samples) return a.samples > b.samples;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });
  TextTable t({"Src", "Dst", "Samples", "Share"});
  for (size_t i = 0; i < top.size() && i < opts.maxRows; ++i) {
    const pm::CommCell& c = top[i];
    t.addRow({std::to_string(c.src), std::to_string(c.dst), std::to_string(c.samples),
              formatFixed(totalRemote ? 100.0 * static_cast<double>(c.samples) / totalRemote : 0.0,
                          1) +
                  "%"});
  }
  out << "\nHottest cells\n" << t.render();

  // Per-variable hot cells: remote-heavy variables first (same order as the
  // comm view), each with its top pairs inline.
  std::vector<const pm::VariableBlame*> rows;
  for (const pm::VariableBlame& row : report.rows)
    if (!row.commMatrix.empty()) rows.push_back(&row);
  std::sort(rows.begin(), rows.end(), [](const pm::VariableBlame* a, const pm::VariableBlame* b) {
    if (a->remoteSamples() != b->remoteSamples()) return a->remoteSamples() > b->remoteSamples();
    return pm::blameRowLess(*a, *b);
  });
  TextTable v({"Name", "Remote", "Hot cells (src->dst:samples)", "Context"});
  size_t shown = 0;
  for (const pm::VariableBlame* row : rows) {
    if (shown++ >= opts.maxRows) break;
    std::vector<pm::CommCell> vc(row->commMatrix);
    std::sort(vc.begin(), vc.end(), [](const pm::CommCell& a, const pm::CommCell& b) {
      if (a.samples != b.samples) return a.samples > b.samples;
      if (a.src != b.src) return a.src < b.src;
      return a.dst < b.dst;
    });
    std::string hot;
    for (size_t i = 0; i < vc.size() && i < 3; ++i) {
      if (i) hot += ", ";
      hot += std::to_string(vc[i].src) + "->" + std::to_string(vc[i].dst) + ":" +
             std::to_string(vc[i].samples);
    }
    if (vc.size() > 3) hot += ", +" + std::to_string(vc.size() - 3) + " more";
    v.addRow({row->name, std::to_string(row->remoteSamples()), hot, row->context});
  }
  out << "\nPer-variable hot cells\n" << v.render();
  return out.str();
}

std::string perLocaleView(const std::vector<pm::BlameReport>& perLocale,
                          const ViewOptions& opts) {
  TextTable t({"Locale", "User", "Raw", "Local", "RemoteGet", "RemotePut", "Top remote variable"});
  for (size_t locale = 0; locale < perLocale.size(); ++locale) {
    const pm::BlameReport& r = perLocale[locale];
    if (r.totalRawSamples == 0 && r.rows.empty()) {
      t.addRow({std::to_string(locale), "-", "-", "-", "-", "-", "-"});
      continue;
    }
    // Blame rows overlap (a sample can blame several variables), so these
    // sums are blamed-sample tallies, comparable across locales of one run.
    uint64_t local = 0, gets = 0, puts = 0;
    const pm::VariableBlame* top = nullptr;
    for (const pm::VariableBlame& row : r.rows) {
      local += row.localSamples;
      gets += row.remoteGetSamples;
      puts += row.remotePutSamples;
      if (row.remoteSamples() > 0 && (!top || row.remoteSamples() > top->remoteSamples()))
        top = &row;
    }
    t.addRow({std::to_string(locale), std::to_string(r.totalUserSamples),
              std::to_string(r.totalRawSamples), std::to_string(local), std::to_string(gets),
              std::to_string(puts), top ? top->name : "-"});
  }
  (void)opts;
  std::ostringstream out;
  out << "Per-locale view — " << perLocale.size() << " locales\n" << t.render();
  return out.str();
}

std::string baselineView(const pm::BaselineReport& report) {
  TextTable t({"Variable", "Samples", "Percent"});
  for (const pm::BaselineRow& row : report.rows) {
    t.addRow({row.name, std::to_string(row.sampleCount), formatFixed(row.percent, 2) + "%"});
  }
  std::ostringstream out;
  out << "Allocation-threshold baseline (HPCToolkit-data-centric stand-in) — "
      << report.totalSamples << " samples\n"
      << t.render();
  return out.str();
}

namespace {

/// basename:line:col, matching the policy of the lint findings themselves.
std::string lintLoc(const ir::Module& m, SourceLoc loc) {
  std::string s = m.sourceManager().render(loc);
  size_t slash = s.rfind('/');
  return slash == std::string::npos ? s : s.substr(slash + 1);
}

}  // namespace

std::string lintView(const ir::Module& m, const an::loc::LintReport& lint,
                     const pm::BlameReport* measured, double divergenceThreshold) {
  std::ostringstream out;
  out << "Lint — static locality & race analysis (" << lint.numLocales
      << " simulated locales, " << lint.steps << " abstract steps)\n";
  if (!lint.error.empty()) out << "note: " << lint.error << "\n";

  // Findings, plus the static-vs-dynamic differential when a measured
  // profile is available.
  std::vector<an::loc::Finding> findings = lint.findings;
  if (measured) {
    for (const an::loc::ArrayStats& a : lint.arrays) {
      // Match by variable name; ties go to the row with the most samples.
      const pm::VariableBlame* best = nullptr;
      for (const pm::VariableBlame& row : measured->rows) {
        if (row.name != a.name) continue;
        if (!best || row.sampleCount > best->sampleCount) best = &row;
      }
      if (!best) continue;
      uint64_t accessSamples = best->localSamples + best->remoteSamples();
      if (accessSamples < 16) continue;  // too few samples to call it
      double meas = static_cast<double>(best->remoteSamples()) /
                    static_cast<double>(accessSamples);
      double pred = a.remoteFraction();
      if (std::abs(pred - meas) <= divergenceThreshold) continue;
      an::loc::Finding f;
      f.kind = an::loc::FindingKind::StaticDynamicDivergence;
      f.variable = a.name;
      f.loc = a.declLoc;
      f.predictedRemoteFraction = pred;
      f.measuredRemoteFraction = meas;
      std::ostringstream msg;
      msg << "`" << a.name << "` predicted " << formatFixed(pred * 100.0, 1)
          << "% remote but measured " << formatFixed(meas * 100.0, 1) << "%";
      if (!a.staticallyAffine)
        msg << " (irregular indexing: the static model saw data-dependent"
               " indices)";
      if (!a.strideRegular) msg << " (non-constant stride at some sites)";
      f.message = msg.str();
      findings.push_back(std::move(f));
    }
  }
  if (findings.empty()) {
    out << "\n(clean) no findings\n";
  } else {
    out << "\nFindings (" << findings.size() << "):\n";
    for (const an::loc::Finding& f : findings) {
      out << "  [" << an::loc::findingKindName(f.kind) << "] "
          << lintLoc(m, f.loc) << " — " << f.message << "\n";
    }
  }

  out << "\nPredicted comm: " << lint.predictedGets << " GETs, "
      << lint.predictedPuts << " PUTs, " << lint.predictedAggGets
      << " aggregated GETs, " << lint.predictedAggPuts << " aggregated PUTs, "
      << lint.predictedOnForks << " on-forks\n";

  if (!lint.arrays.empty()) {
    out << "\nArrays (predicted locality):\n";
    TextTable t({"Name", "Dist", "Elems", "Accesses", "RemoteGet", "RemotePut",
                 "Agg", "Remote%", "Swapped%", "Affine"});
    for (const an::loc::ArrayStats& a : lint.arrays) {
      const char* dist = a.distKind == 1 ? "Block" : a.distKind == 2 ? "Cyclic" : "local";
      t.addRow({a.name, dist, std::to_string(a.elems), std::to_string(a.accesses),
                std::to_string(a.remoteGets), std::to_string(a.remotePuts),
                std::to_string(a.aggGets + a.aggPuts),
                formatFixed(a.countFraction() * 100.0, 1) + "%",
                a.distKind == 0 ? "-"
                                : formatFixed(a.counterfactualFraction() * 100.0, 1) + "%",
                a.staticallyAffine ? (a.inductionIndexed ? "yes" : "invariant")
                                   : "no"});
    }
    out << t.render();
  }

  if (!lint.regions.empty()) {
    out << "\nParallel regions:\n";
    TextTable t({"Region", "Kind", "Executed", "Verdict", "Reason"});
    for (const an::loc::RegionReport& r : lint.regions) {
      std::string name = r.parentName.empty() ? "?" : r.parentName;
      t.addRow({name + "@" + lintLoc(m, r.loc), r.isCoforall ? "coforall" : "forall",
                r.executed ? "yes" : "no",
                r.verdict.raceFree ? "race-free" : "may-race", r.verdict.reason});
    }
    out << t.render();
  }
  return out.str();
}

an::diag::Inputs diagnoseInputs(const sampling::RunLog& log, uint32_t numWorkers,
                                const pm::BlameReport& report) {
  an::diag::Inputs in;
  in.totalCycles = log.totalCycles;
  in.numWorkers = numWorkers;
  in.commGets = log.commGets;
  in.commPuts = log.commPuts;
  in.commAggGets = log.commAggGets;
  in.commAggPuts = log.commAggPuts;
  in.raceFallbackRegions = log.raceFallbackRegions;
  in.totalUserSamples = report.totalUserSamples;
  in.vars.reserve(report.rows.size());
  for (const pm::VariableBlame& row : report.rows) {
    an::diag::VarStat v;
    v.context = row.context;
    v.name = row.name;
    v.type = row.type;
    v.sampleCount = row.sampleCount;
    v.percent = row.percent;
    v.computeSamples = row.computeSamples;
    v.localSamples = row.localSamples;
    v.remoteGetSamples = row.remoteGetSamples;
    v.remotePutSamples = row.remotePutSamples;
    in.vars.push_back(std::move(v));
  }
  return in;
}

namespace {

/// Metric values render integer-exact when they are whole numbers (cycle
/// counts, op counts) and as fixed-point otherwise, so the block is both
/// stable across platforms and strtod-parseable for compareBaseline.
std::string metricValue(double v) {
  if (std::floor(v) == v && std::abs(v) < 1e15)
    return std::to_string(static_cast<long long>(v));
  return formatFixed(v, 6);
}

std::string speedupCell(const an::causal::FactorPrediction& fp) {
  return formatFixed(fp.speedup, 3) + "x";
}

}  // namespace

std::string diagnoseView(const an::causal::CausalReport& causal,
                         const an::diag::DiagnoseReport& diag,
                         const std::vector<std::string>& regionNames) {
  std::ostringstream out;
  out << "Diagnose — causal what-if profile\n";
  if (!causal.ok) {
    out << "note: schedule reconstruction failed: " << causal.error << "\n";
  } else {
    double total = static_cast<double>(std::max<uint64_t>(1, causal.totalCycles));
    out << "total " << causal.totalCycles << " cycles, work " << causal.workCycles
        << ", critical path " << causal.criticalPath << " (parallelism "
        << formatFixed(causal.parallelism, 2) << "x)\n";
    out << "serial " << causal.serialCycles << " cycles ("
        << formatFixed(100.0 * static_cast<double>(causal.serialCycles) / total, 1) << "%), "
        << causal.regions.size() << " parallel region"
        << (causal.regions.size() == 1 ? "" : "s") << "\n";
  }

  if (diag.findings.empty()) {
    out << "\n(clean) no findings\n";
  } else {
    out << "\nFindings (" << diag.findings.size() << "):\n";
    for (const an::diag::Diagnosis& d : diag.findings) {
      out << "  [" << an::diag::ruleName(d.kind) << "] " << d.message << " (impact "
          << formatFixed(d.impact * 100.0, 1) << "%)\n";
    }
  }

  if (causal.ok && !causal.regions.empty()) {
    out << "\nParallel regions (schedule order):\n";
    TextTable t({"Region", "Cycles", "Tasks", "Width", "MaxChunk"});
    for (size_t i = 0; i < causal.regions.size(); ++i) {
      const an::causal::RegionSummary& r = causal.regions[i];
      std::string name = i < regionNames.size() && !regionNames[i].empty()
                             ? regionNames[i]
                             : "#" + std::to_string(i + 1);
      t.addRow({name, std::to_string(r.cycles), std::to_string(r.tasks),
                std::to_string(r.width), std::to_string(r.maxChunkCycles)});
    }
    out << t.render();
  }

  if (!causal.predictions.empty()) {
    out << "\nWhat-if (whole-program speedup when the variable's sites run k-times"
           " faster):\n";
    TextTable t({"Name", "Context", "Cycles%", "k=1.25", "k=2", "k=4", "k=inf"});
    for (const an::causal::VariablePrediction& vp : causal.predictions) {
      if (vp.factors.size() < an::causal::kNumFactors) continue;
      t.addRow({vp.name, vp.context, formatFixed(vp.attributedFraction * 100.0, 1) + "%",
                speedupCell(vp.factors[0]), speedupCell(vp.factors[1]),
                speedupCell(vp.factors[2]), speedupCell(vp.factors[3])});
    }
    out << t.render();
  } else if (causal.ok && !causal.hasSites) {
    out << "\n(what-if predictions need a run with per-site tracking"
           " — rerun with --diagnose or RunOptions::trackCausalSites)\n";
  }

  out << "\n";
  for (const auto& [name, value] : diag.metrics)
    out << "metric " << name << " " << metricValue(value) << "\n";
  return out.str();
}

std::string guiView(const pm::BlameReport& blame, const CodeCentricReport& code,
                    const ViewOptions& opts) {
  std::ostringstream out;
  out << "================ ChapelBlame viewer ================\n\n";
  out << codeCentricView(code, opts.maxRows) << "\n";
  out << dataCentricView(blame, opts);
  return out.str();
}

}  // namespace cb::rpt
