// Standalone HTML report — the paper's GUI (Fig. 3) as a self-contained
// page with the three windows: flat data-centric view (default), classic
// code-centric view, and the hybrid blame-points view.
#pragma once

#include <string>

#include "postmortem/attribution.h"
#include "report/views.h"

namespace cb::rpt {

/// Renders a self-contained HTML page (no external assets) with tabs for
/// the three views. `title` labels the profiled program.
std::string htmlReport(const std::string& title, const pm::BlameReport& blame,
                       const CodeCentricReport& code);

/// Writes the page to a file; returns false on I/O error.
bool writeHtmlReport(const std::string& path, const std::string& title,
                     const pm::BlameReport& blame, const CodeCentricReport& code);

}  // namespace cb::rpt
