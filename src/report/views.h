// Presentation layer (paper §IV.D): the flat data-centric view, the
// traditional code-centric view (plain table and gperftools/pprof text
// format, Fig. 4), and the hybrid "blame points" view. Text-mode stand-ins
// for the paper's GUI windows (Fig. 3).
#pragma once

#include <string>
#include <vector>

#include "analysis/causal.h"
#include "analysis/diagnose.h"
#include "analysis/locality.h"
#include "postmortem/attribution.h"
#include "postmortem/baseline.h"
#include "postmortem/instance.h"

namespace cb::rpt {

struct ViewOptions {
  size_t maxRows = 25;
  double minPercent = 1.0;  // hide rows below this blame share
};

/// Flat data-centric view: variables ranked by blame, with type and context
/// (Tables II / IV / VI).
std::string dataCentricView(const pm::BlameReport& report, const ViewOptions& opts = {});

/// CSV twin of the data-centric view (all rows).
std::string dataCentricCsv(const pm::BlameReport& report);

// ---- code-centric ---------------------------------------------------------

struct CodeCentricRow {
  std::string function;
  uint64_t self = 0;        // samples with this function at the leaf
  uint64_t inclusive = 0;   // samples with this function anywhere on the path
};

struct CodeCentricReport {
  uint64_t totalSamples = 0;  // all samples, idle included (like pprof)
  std::vector<CodeCentricRow> rows;  // sorted by self, descending
};

/// Builds the function-granularity profile from consolidated instances.
/// Runtime frames (__sched_yield etc.) are included, as gperftools sees them.
CodeCentricReport codeCentric(const std::vector<pm::Instance>& instances);

/// Plain table rendering of the code-centric view.
std::string codeCentricView(const CodeCentricReport& report, size_t maxRows = 25);

/// gperftools pprof --text format, reproducing Fig. 4:
///   samples  self%  cum%  inclusive  incl%  name
std::string pprofView(const CodeCentricReport& report, const std::string& binaryName,
                      size_t maxRows = 10);

// ---- hybrid -----------------------------------------------------------------

/// Hybrid blame-points view: variables grouped by the function ("blame
/// point") where their blame comes to rest; main is the primary blame point.
std::string hybridView(const pm::BlameReport& report, const ViewOptions& opts = {});

// ---- PGAS / multi-locale ---------------------------------------------------

/// Comm view: variables ranked by remote-access blame. Each row shows the
/// split of the variable's samples by comm classification — pure compute,
/// local array accesses, and remote GETs/PUTs — so mis-distributed arrays
/// (high remote share) stand out even when total blame is similar.
std::string commView(const pm::BlameReport& report, const ViewOptions& opts = {});

/// Comm-matrix view: the global locale×locale remote-sample matrix as a
/// heat-style text grid over the locales that actually communicate, the
/// hottest (src, dst) cells, and each remote-heavy variable's top cells —
/// the per-variable scatter/gather structure the aggregator story hinges on.
std::string commMatrixView(const pm::BlameReport& report, const ViewOptions& opts = {});

/// Per-locale view: one summary row per locale (sample totals plus the
/// locale's comm mix aggregated over its blamed variables), followed by the
/// top remote-heavy variable of each locale. `perLocale` uses one report per
/// locale in locale order; failed locales (empty reports) render as "-".
std::string perLocaleView(const std::vector<pm::BlameReport>& perLocale,
                          const ViewOptions& opts = {});

// ---- static lint ------------------------------------------------------------

/// Lint view (`cb --lint`): findings from the static locality-and-race
/// analysis, the predicted per-array comm splits, and the race verdict of
/// every forall/coforall region. When `measured` is non-null, appends the
/// static-vs-dynamic differential: each predicted remote fraction is
/// cross-checked against the measured VariableBlame comm split, and
/// divergences above `divergenceThreshold` (fraction points) are flagged as
/// findings. Source locations render as basename:line:col so the output is
/// checkout-path independent (golden fixtures under tests/golden/).
std::string lintView(const ir::Module& m, const an::loc::LintReport& lint,
                     const pm::BlameReport* measured = nullptr,
                     double divergenceThreshold = 0.15);

// ---- causal diagnosis -------------------------------------------------------

/// Bridges measured artefacts into the neutral diag::Inputs the rule engine
/// consumes: VarStat copies of the blame rows plus the log's exact comm
/// counters. The caller attaches the causal report / lint / region names
/// before calling an::diag::diagnose (the same layering as the lint
/// differential: the analysis library never sees postmortem types).
an::diag::Inputs diagnoseInputs(const sampling::RunLog& log, uint32_t numWorkers,
                                const pm::BlameReport& report);

/// Diagnose view (`cb --diagnose`): the causal critical-path summary, the
/// ranked findings, the per-variable what-if prediction table, and the
/// trailing `metric <name> <value>` block that an::diag::compareBaseline
/// re-parses from a saved report for --diagnose-baseline regression checks.
/// `regionNames` labels causal.regions rows (same order; "#i" fallback).
std::string diagnoseView(const an::causal::CausalReport& causal,
                         const an::diag::DiagnoseReport& diag,
                         const std::vector<std::string>& regionNames = {});

/// Baseline (allocation-threshold) report rendering.
std::string baselineView(const pm::BaselineReport& report);

/// Fig. 3 stand-in: code-centric and data-centric views side by side.
std::string guiView(const pm::BlameReport& blame, const CodeCentricReport& code,
                    const ViewOptions& opts = {});

}  // namespace cb::rpt
