#include "report/html.h"

#include <fstream>
#include <map>
#include <sstream>

#include "support/table.h"

namespace cb::rpt {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

void emitBar(std::ostringstream& out, double pct) {
  out << "<td class=bar><div style=\"width:" << formatFixed(pct, 1)
      << "%\"></div><span>" << formatFixed(pct, 1) << "%</span></td>";
}

}  // namespace

std::string htmlReport(const std::string& title, const pm::BlameReport& blame,
                       const CodeCentricReport& code) {
  std::ostringstream out;
  out << "<!doctype html><html><head><meta charset=\"utf-8\">"
         "<title>ChapelBlame — "
      << escape(title)
      << "</title><style>"
         "body{font:14px/1.45 system-ui,sans-serif;margin:1.5em;background:#fafafa;color:#222}"
         "h1{font-size:1.3em} .tabs button{padding:.5em 1em;border:1px solid #bbb;"
         "background:#eee;cursor:pointer} .tabs button.on{background:#fff;font-weight:600}"
         "table{border-collapse:collapse;margin-top:1em;background:#fff}"
         "th,td{border:1px solid #ddd;padding:.3em .6em;text-align:left;font-variant-numeric:tabular-nums}"
         "th{background:#f0f0f0} td.bar{min-width:180px;position:relative}"
         "td.bar div{background:#4a90d9;height:1em;opacity:.35;position:absolute;left:0;top:.3em}"
         "td.bar span{position:relative} .pane{display:none} .pane.on{display:block}"
         "code{background:#eee;padding:0 .25em}"
         "</style></head><body>"
         "<h1>ChapelBlame report — <code>"
      << escape(title) << "</code></h1><p>" << blame.totalUserSamples << " user samples, "
      << blame.totalRawSamples << " total.</p><div class=tabs>"
         "<button class=on onclick=\"show(0,this)\">Data-centric (blame)</button>"
         "<button onclick=\"show(1,this)\">Code-centric</button>"
         "<button onclick=\"show(2,this)\">Hybrid (blame points)</button></div>";

  // Pane 0: flat data-centric view.
  out << "<div class=\"pane on\"><table><tr><th>Name</th><th>Type</th><th>Blame</th>"
         "<th>Context</th><th>Samples</th></tr>";
  for (const pm::VariableBlame& row : blame.rows) {
    if (row.percent < 0.05) continue;
    out << "<tr><td><code>" << escape(row.name) << "</code></td><td>" << escape(row.type)
        << "</td>";
    emitBar(out, row.percent);
    out << "<td>" << escape(row.context) << "</td><td>" << row.sampleCount << "</td></tr>";
  }
  out << "</table></div>";

  // Pane 1: code-centric view.
  out << "<div class=pane><table><tr><th>Function</th><th>Self</th><th>Self %</th>"
         "<th>Inclusive</th><th>Incl %</th></tr>";
  double total = static_cast<double>(code.totalSamples ? code.totalSamples : 1);
  for (const CodeCentricRow& row : code.rows) {
    out << "<tr><td><code>" << escape(row.function) << "</code></td><td>" << row.self << "</td>";
    emitBar(out, 100.0 * row.self / total);
    out << "<td>" << row.inclusive << "</td>";
    emitBar(out, 100.0 * row.inclusive / total);
    out << "</tr>";
  }
  out << "</table></div>";

  // Pane 2: hybrid blame points, grouped by context (main first).
  out << "<div class=pane>";
  std::map<std::string, std::vector<const pm::VariableBlame*>> byContext;
  for (const pm::VariableBlame& row : blame.rows)
    if (row.percent >= 0.05) byContext[row.context].push_back(&row);
  auto emitPoint = [&](const std::string& ctx) {
    auto it = byContext.find(ctx);
    if (it == byContext.end()) return;
    out << "<h2>blame point: <code>" << escape(ctx) << "</code></h2><table>"
           "<tr><th>Name</th><th>Type</th><th>Blame</th></tr>";
    for (const pm::VariableBlame* row : it->second) {
      out << "<tr><td><code>" << escape(row->name) << "</code></td><td>" << escape(row->type)
          << "</td>";
      emitBar(out, row->percent);
      out << "</tr>";
    }
    out << "</table>";
    byContext.erase(it);
  };
  emitPoint("main");
  while (!byContext.empty()) emitPoint(byContext.begin()->first);
  out << "</div>";

  out << "<script>function show(i,b){document.querySelectorAll('.pane').forEach("
         "(p,k)=>p.classList.toggle('on',k===i));document.querySelectorAll('.tabs button')"
         ".forEach(x=>x.classList.toggle('on',x===b));}</script></body></html>";
  return out.str();
}

bool writeHtmlReport(const std::string& path, const std::string& title,
                     const pm::BlameReport& blame, const CodeCentricReport& code) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  std::string html = htmlReport(title, blame, code);
  f.write(html.data(), static_cast<std::streamsize>(html.size()));
  return f.good();
}

}  // namespace cb::rpt
