// CIR module: functions, globals, debug variables, string pool.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/debug.h"
#include "ir/function.h"
#include "ir/type.h"
#include "support/interner.h"
#include "support/source_manager.h"

namespace cb::ir {

struct GlobalVar {
  Symbol name;
  TypeId type = kInvalidType;
  DebugVarId debugVar = kNone;
  SourceLoc loc;
};

/// One translation unit. Owns the type context; the interner and source
/// manager are shared with the frontend and referenced here.
class Module {
 public:
  Module(StringInterner& interner, SourceManager& sm) : interner_(&interner), sm_(&sm) {}

  TypeContext& types() { return types_; }
  const TypeContext& types() const { return types_; }
  StringInterner& interner() { return *interner_; }
  const StringInterner& interner() const { return *interner_; }
  SourceManager& sourceManager() { return *sm_; }
  const SourceManager& sourceManager() const { return *sm_; }

  FuncId addFunction(Function f) {
    functions_.push_back(std::move(f));
    return static_cast<FuncId>(functions_.size() - 1);
  }
  Function& function(FuncId id) { return functions_.at(id); }
  const Function& function(FuncId id) const { return functions_.at(id); }
  size_t numFunctions() const { return functions_.size(); }
  FuncId findFunction(Symbol name) const;

  GlobalId addGlobal(GlobalVar g) {
    globals_.push_back(std::move(g));
    return static_cast<GlobalId>(globals_.size() - 1);
  }
  GlobalVar& global(GlobalId id) { return globals_.at(id); }
  const GlobalVar& global(GlobalId id) const { return globals_.at(id); }
  size_t numGlobals() const { return globals_.size(); }

  DebugVarId addDebugVar(DebugVar v) {
    debugVars_.push_back(std::move(v));
    return static_cast<DebugVarId>(debugVars_.size() - 1);
  }
  const DebugVar& debugVar(DebugVarId id) const { return debugVars_.at(id); }
  DebugVar& debugVar(DebugVarId id) { return debugVars_.at(id); }
  size_t numDebugVars() const { return debugVars_.size(); }

  uint32_t addString(std::string s) {
    stringPool_.push_back(std::move(s));
    return static_cast<uint32_t>(stringPool_.size() - 1);
  }
  const std::string& string(uint32_t id) const { return stringPool_.at(id); }

  /// Entry points: `moduleInit` runs global initializers, then `main`.
  FuncId mainFunc = kNone;
  FuncId moduleInitFunc = kNone;

  /// True once the --fast pipeline stripped the source-variable mapping.
  bool debugInfoStripped = false;

  /// For record fields of array type: the generated thunk evaluating the
  /// field's declared domain (may reference globals only). The runtime calls
  /// these when default-initializing a record value. Key: (record TypeId,
  /// field index).
  std::map<std::pair<TypeId, uint32_t>, FuncId> fieldDomainThunks;

 private:
  TypeContext types_;
  StringInterner* interner_;
  SourceManager* sm_;
  std::vector<Function> functions_;
  std::vector<GlobalVar> globals_;
  std::vector<DebugVar> debugVars_;
  std::vector<std::string> stringPool_;
};

}  // namespace cb::ir
