// Structural verifier for CIR modules. Run after lowering and after every
// pass pipeline: the profiler trusts these invariants.
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace cb::ir {

/// Returns a list of violation messages; empty means the module is well
/// formed.
std::vector<std::string> verifyModule(const Module& m);

/// Convenience: asserts (aborts) on the first violation.
void verifyModuleOrDie(const Module& m);

}  // namespace cb::ir
