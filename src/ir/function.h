// CIR functions: parameter lists, basic blocks, instruction storage, and the
// task-function metadata used for spawn-trace gluing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instr.h"
#include "support/interner.h"

namespace cb::ir {

struct Param {
  Symbol name;
  TypeId type = kInvalidType;   // refs are passed as Ref(T)
  bool byRef = false;           // true when this formal is an exit variable
  DebugVarId debugVar = kNone;
};

struct BasicBlock {
  std::vector<InstrId> instrs;
  std::string label;
};

/// Task functions are the outlined bodies of forall/coforall blocks, the
/// analogue of Chapel's generated `coforall_fn_chplNN`. `spawnParent` and
/// `spawnLoc` tie them back to the user construct for call-path gluing.
enum class TaskKind : uint8_t { None, Forall, Coforall };

struct Function {
  Symbol name;
  std::string displayName;            // user-facing name for reports
  std::vector<Param> params;
  TypeId returnType = kInvalidType;
  std::vector<Instr> instrs;          // all instructions, indexed by InstrId
  std::vector<BasicBlock> blocks;     // block 0 is the entry
  SourceLoc loc;                      // declaration location

  // Task-function metadata.
  TaskKind taskKind = TaskKind::None;
  FuncId spawnParent = kNone;         // lexically-enclosing user function
  SourceLoc spawnLoc;                 // source location of the forall/coforall

  bool isTaskFn() const { return taskKind != TaskKind::None; }

  const Instr& instr(InstrId id) const { return instrs.at(id); }
  Instr& instr(InstrId id) { return instrs.at(id); }
  size_t numInstrs() const { return instrs.size(); }
  size_t numBlocks() const { return blocks.size(); }

  /// The terminator of a block (asserts the block is terminated).
  const Instr& terminator(BlockId b) const;
  /// Successor block ids of a block.
  std::vector<BlockId> successors(BlockId b) const;
};

}  // namespace cb::ir
