// CIR instructions and operand references.
//
// The IR is register-based, alloca-backed (clang -O0 shape): every mutable
// user variable lives behind an Alloca/GlobalVar address; expression
// temporaries are virtual registers identified by the id of the defining
// instruction. This is exactly the representation the paper's blame analysis
// assumes ("we did not use --fast since our intraprocedural analysis heavily
// depends on the generated LLVM bitcode").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"
#include "support/source_manager.h"

namespace cb::ir {

using InstrId = uint32_t;
using BlockId = uint32_t;
using FuncId = uint32_t;
using GlobalId = uint32_t;
using DebugVarId = uint32_t;
inline constexpr uint32_t kNone = ~0u;

/// Operand: a register (result of an instruction), a function argument, a
/// module global's address, or an immediate constant.
struct ValueRef {
  enum class Kind : uint8_t { None, Reg, Arg, GlobalAddr, ConstInt, ConstReal, ConstBool, ConstString };
  Kind kind = Kind::None;
  union {
    InstrId reg;
    uint32_t arg;
    GlobalId global;
    int64_t i;
    double r;
    bool b;
    uint32_t stringId;  // index into Module::stringPool
  };

  ValueRef() : reg(0) {}
  static ValueRef none() { return ValueRef(); }
  static ValueRef makeReg(InstrId id) { ValueRef v; v.kind = Kind::Reg; v.reg = id; return v; }
  static ValueRef makeArg(uint32_t idx) { ValueRef v; v.kind = Kind::Arg; v.arg = idx; return v; }
  static ValueRef makeGlobal(GlobalId g) { ValueRef v; v.kind = Kind::GlobalAddr; v.global = g; return v; }
  static ValueRef makeInt(int64_t x) { ValueRef v; v.kind = Kind::ConstInt; v.i = x; return v; }
  static ValueRef makeReal(double x) { ValueRef v; v.kind = Kind::ConstReal; v.r = x; return v; }
  static ValueRef makeBool(bool x) { ValueRef v; v.kind = Kind::ConstBool; v.b = x; return v; }
  static ValueRef makeString(uint32_t id) { ValueRef v; v.kind = Kind::ConstString; v.stringId = id; return v; }

  bool isReg() const { return kind == Kind::Reg; }
  bool isNone() const { return kind == Kind::None; }
};

enum class Opcode : uint8_t {
  // Memory.
  Alloca,      // result: Ref(T). extra.debugVar names the user variable (or temp)
  Load,        // ops: [addr] -> value
  Store,       // ops: [value, addr]
  FieldAddr,   // ops: [recordAddr], imm = field index -> Ref(fieldTy)
  IndexAddr,   // ops: [arrayValue, idx...] -> Ref(elemTy); one per access, cost
               // scales with rank. imm is a bit-field: bit0 = linear (flat
               // 0-based index), bit1 = feeds a Store (set by markIndexStores)
  TupleAddr,   // ops: [tupleAddr], imm = element index -> Ref(elemTy)

  // Values.
  Bin,         // ops: [lhs, rhs], binKind
  Un,          // ops: [v], unKind
  TupleMake,   // ops: elems -> Tuple value (construct cost: the CENN story)
  TupleGet,    // ops: [tupleValue], imm = index

  // Aggregates / Chapel-specific.
  DomainMake,    // ops: [lo0, hi0, lo1, hi1, ...], imm = rank -> Domain
  DomainExpand,  // ops: [domain, amount] -> Domain       (binSpace.expand(k))
  DomainSize,    // ops: [domain] -> Int                  (D.size)
  DomainDim,     // ops: [domain], imm = dim*2 + (0=lo,1=hi) -> Int
  ArrayNew,      // ops: [domain] -> Array over domain; heap allocation (VG story)
  ArrayView,     // ops: [array, domain] -> Array alias (slice / domain remap)
  RecordNew,     // no ops -> Record value with default-initialized fields

  // Control.
  Call,        // callee = extra.func, ops = args (refs passed as addresses)
  Ret,         // ops: [value?]
  Br,          // target0
  CondBr,      // ops: [cond], target0 = then, target1 = else

  // Parallelism (lowered forms of forall / coforall).
  Spawn,       // extra.func = outlined task fn; ops: [lo, hi, capturedArgs...]
               // imm: 0 = forall (range chunked over workers), 1 = coforall
               // (one task per index)

  // Iterator bookkeeping the lowering inserts so the cost model can charge
  // Chapel's iterator machinery (the zippered-iteration / domain-remapping
  // overhead the paper's case studies hinge on).
  IterOverhead,  // imm = number of coordinated iterands (>=2 means zippered)

  // Builtins.
  Builtin,     // extra.builtin, ops = args
};

enum class BinKind : uint8_t {
  Add, Sub, Mul, Div, Mod, Pow,
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or, Min, Max,
};

enum class UnKind : uint8_t { Neg, Not, IntToReal, RealToInt, Abs, Sqrt, Sin, Cos, Exp, Floor };

enum class BuiltinKind : uint8_t {
  Writeln,     // prints args (suppressed under profiling by default)
  Random,      // deterministic PRNG double in [0,1)
  Clock,       // current virtual cycle count of this task
  Yield,       // cooperative yield marker (charged as chpl_task_yield)
  HeapHint,    // marks the preceding ArrayNew as a tracked heap allocation
  ArrayFill,   // ops: [array, scalar] — whole-array broadcast assignment
  ArrayCopy,   // ops: [dstArray, srcArray] — whole-array copy
  ConfigGet,   // ops: [nameString, default] — config-const with CLI override

  // Multi-locale PGAS simulation (`on` blocks and distributed domains).
  Dmapped,     // ops: [domain, distKind] — stamp a distribution onto a domain
               // (1 = Block, 2 = Cyclic); locale count is bound at run time
  OnBegin,     // ops: [locale] — push the current locale, switch to `locale`
  OnEnd,       // pop the locale pushed by the matching OnBegin
  HereId,      // -> Int: the current locale id (`here.id`)
  NumLocales,  // -> Int: the simulated locale count (`numLocales`)

  // Remote-access aggregation (simulated Src/DstAggregator task intents).
  AggOpen,     // ops: [isSrc] -> Int handle; opens a per-task aggregator
  AggCopy,     // ops: [handle, a, b, c] — one agg.copy(). Src form: a = dst
               // element address, (b, c) = source array + index. Dst form:
               // (a, b) = destination array + index, c = source value.
  AggClose,    // ops: [handle] — flush all buffered peers, close
};

/// One instruction. Result registers are identified by the instruction's own
/// id within the function.
struct Instr {
  Opcode op = Opcode::Ret;
  TypeId type = kInvalidType;            // result type (void -> no result)
  std::vector<ValueRef> ops;
  SourceLoc loc;
  BlockId target0 = kNone;               // Br/CondBr successors
  BlockId target1 = kNone;
  uint32_t imm = 0;                      // field/tuple index, rank, spawn kind…
  union Extra {
    BinKind bin;
    UnKind un;
    BuiltinKind builtin;
    FuncId func;
    DebugVarId debugVar;
    uint32_t raw;
    Extra() : raw(0) {}
  } extra;

  bool isTerminator() const {
    return op == Opcode::Ret || op == Opcode::Br || op == Opcode::CondBr;
  }
  bool producesValue(const TypeContext& types) const {
    return type != kInvalidType && types.kindOf(type) != TypeKind::Void;
  }
};

const char* opcodeName(Opcode op);
const char* binKindName(BinKind k);
const char* unKindName(UnKind k);
const char* builtinName(BuiltinKind k);

}  // namespace cb::ir
