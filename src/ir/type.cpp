#include "ir/type.h"

#include "support/common.h"

namespace cb::ir {

TypeContext::TypeContext() {
  // Pre-seed the scalar singletons in the order the inline accessors expect.
  auto scalar = [](TypeKind k) {
    Type t;
    t.kind = k;
    return t;
  };
  add(scalar(TypeKind::Void));
  add(scalar(TypeKind::Bool));
  add(scalar(TypeKind::Int));
  add(scalar(TypeKind::Real));
  add(scalar(TypeKind::String));
}

TypeId TypeContext::add(Type t) {
  types_.push_back(std::move(t));
  return static_cast<TypeId>(types_.size() - 1);
}

TypeId TypeContext::tuple(std::vector<TypeId> elems) {
  for (TypeId i = 0; i < types_.size(); ++i) {
    if (types_[i].kind == TypeKind::Tuple && types_[i].elems == elems) return i;
  }
  Type t;
  t.kind = TypeKind::Tuple;
  t.elems = std::move(elems);
  return add(std::move(t));
}

TypeId TypeContext::homogeneousTuple(uint32_t n, TypeId elem) {
  return tuple(std::vector<TypeId>(n, elem));
}

TypeId TypeContext::record(Symbol name, std::vector<RecordField> fields) {
  TypeId existing = findRecord(name);
  if (existing != kInvalidType) return existing;
  Type t;
  t.kind = TypeKind::Record;
  t.recordName = name;
  for (const RecordField& f : fields) t.elems.push_back(f.type);
  t.fields = std::move(fields);
  return add(std::move(t));
}

TypeId TypeContext::findRecord(Symbol name) const {
  for (TypeId i = 0; i < types_.size(); ++i) {
    if (types_[i].kind == TypeKind::Record && types_[i].recordName == name) return i;
  }
  return kInvalidType;
}

TypeId TypeContext::domain(uint8_t rank) {
  for (TypeId i = 0; i < types_.size(); ++i) {
    if (types_[i].kind == TypeKind::Domain && types_[i].rank == rank) return i;
  }
  Type t;
  t.kind = TypeKind::Domain;
  t.rank = rank;
  return add(std::move(t));
}

TypeId TypeContext::array(TypeId elem, uint8_t rank) {
  for (TypeId i = 0; i < types_.size(); ++i) {
    if (types_[i].kind == TypeKind::Array && types_[i].elem == elem && types_[i].rank == rank)
      return i;
  }
  Type t;
  t.kind = TypeKind::Array;
  t.elem = elem;
  t.rank = rank;
  return add(std::move(t));
}

TypeId TypeContext::ref(TypeId pointeeTy) {
  for (TypeId i = 0; i < types_.size(); ++i) {
    if (types_[i].kind == TypeKind::Ref && types_[i].elem == pointeeTy) return i;
  }
  Type t;
  t.kind = TypeKind::Ref;
  t.elem = pointeeTy;
  return add(std::move(t));
}

TypeId TypeContext::pointee(TypeId refTy) const {
  const Type& t = get(refTy);
  CB_ASSERT(t.kind == TypeKind::Ref, "pointee() on non-ref type");
  return t.elem;
}

TypeId TypeContext::arrayElem(TypeId arrTy) const {
  const Type& t = get(arrTy);
  CB_ASSERT(t.kind == TypeKind::Array, "arrayElem() on non-array type");
  return t.elem;
}

std::string TypeContext::display(TypeId id, const StringInterner& interner) const {
  const Type& t = get(id);
  switch (t.kind) {
    case TypeKind::Void: return "void";
    case TypeKind::Bool: return "bool";
    case TypeKind::Int: return "int(64)";
    case TypeKind::Real: return "real";
    case TypeKind::String: return "string";
    case TypeKind::Tuple: {
      // Homogeneous tuples print Chapel-style "N*T".
      bool homogeneous = true;
      for (TypeId e : t.elems)
        if (e != t.elems.front()) homogeneous = false;
      if (homogeneous && !t.elems.empty()) {
        return std::to_string(t.elems.size()) + "*" + display(t.elems.front(), interner);
      }
      std::string out = "(";
      for (size_t i = 0; i < t.elems.size(); ++i) {
        if (i) out += ", ";
        out += display(t.elems[i], interner);
      }
      return out + ")";
    }
    case TypeKind::Record: return interner.str(t.recordName);
    case TypeKind::Domain: return "domain";
    case TypeKind::Array: {
      std::string out = "[";
      for (uint8_t i = 0; i < t.rank; ++i) out += (i ? ",.." : "..");
      return out + "] " + display(t.elem, interner);
    }
    case TypeKind::Ref: return "ref " + display(t.elem, interner);
  }
  return "?";
}

}  // namespace cb::ir
