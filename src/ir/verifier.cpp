#include "ir/verifier.h"

#include <sstream>
#include <unordered_set>

#include "support/common.h"

namespace cb::ir {

namespace {

class FunctionVerifier {
 public:
  FunctionVerifier(const Module& m, FuncId fid, std::vector<std::string>& out)
      : mod_(m), fn_(m.function(fid)), fid_(fid), out_(out) {}

  void run() {
    if (fn_.blocks.empty()) {
      fail("function has no blocks");
      return;
    }
    // Every block must be non-empty and end in exactly one terminator, with
    // no terminator in the middle.
    std::unordered_set<InstrId> seen;
    for (BlockId b = 0; b < fn_.blocks.size(); ++b) {
      const BasicBlock& bb = fn_.blocks[b];
      if (bb.instrs.empty()) {
        fail("block " + std::to_string(b) + " is empty");
        continue;
      }
      for (size_t i = 0; i < bb.instrs.size(); ++i) {
        InstrId id = bb.instrs[i];
        if (id >= fn_.instrs.size()) {
          fail("block references out-of-range instruction");
          continue;
        }
        if (!seen.insert(id).second) fail("instruction appears in two blocks");
        const Instr& in = fn_.instrs[id];
        bool last = (i + 1 == bb.instrs.size());
        if (in.isTerminator() != last)
          fail("terminator placement wrong in block " + std::to_string(b));
        checkInstr(id, in);
      }
    }
  }

 private:
  void fail(std::string msg) {
    out_.push_back("fn " + fn_.displayName + " (#" + std::to_string(fid_) + "): " + std::move(msg));
  }

  void checkOperand(InstrId user, const ValueRef& v) {
    switch (v.kind) {
      case ValueRef::Kind::Reg:
        if (v.reg >= fn_.instrs.size()) fail("operand register out of range");
        else if (!fn_.instrs[v.reg].producesValue(mod_.types()))
          fail("operand register #" + std::to_string(v.reg) + " of instr #" +
               std::to_string(user) + " produces no value");
        break;
      case ValueRef::Kind::Arg:
        if (v.arg >= fn_.params.size()) fail("operand arg index out of range");
        break;
      case ValueRef::Kind::GlobalAddr:
        if (v.global >= mod_.numGlobals()) fail("operand global out of range");
        break;
      case ValueRef::Kind::None:
        fail("operand is None");
        break;
      default:
        break;  // constants are always fine
    }
  }

  void checkTarget(BlockId t) {
    if (t == kNone || t >= fn_.blocks.size()) fail("branch target out of range");
  }

  void checkInstr(InstrId id, const Instr& in) {
    for (const ValueRef& v : in.ops) checkOperand(id, v);
    switch (in.op) {
      case Opcode::Store:
        if (in.ops.size() != 2) fail("store needs 2 operands");
        break;
      case Opcode::Load:
        if (in.ops.size() != 1) fail("load needs 1 operand");
        break;
      case Opcode::Br:
        checkTarget(in.target0);
        break;
      case Opcode::CondBr:
        if (in.ops.size() != 1) fail("condbr needs 1 operand");
        checkTarget(in.target0);
        checkTarget(in.target1);
        break;
      case Opcode::Call:
      case Opcode::Spawn:
        if (in.extra.func >= mod_.numFunctions()) fail("call target out of range");
        if (in.op == Opcode::Call) {
          const Function& callee = mod_.function(in.extra.func);
          if (callee.params.size() != in.ops.size())
            fail("call to " + callee.displayName + " arity mismatch");
        }
        break;
      case Opcode::Alloca:
        if (in.extra.debugVar != kNone && in.extra.debugVar >= mod_.numDebugVars())
          fail("alloca debug var out of range");
        break;
      case Opcode::FieldAddr: {
        if (in.ops.size() != 1) { fail("fieldaddr needs 1 operand"); break; }
        break;
      }
      default:
        break;
    }
  }

  const Module& mod_;
  const Function& fn_;
  FuncId fid_;
  std::vector<std::string>& out_;
};

}  // namespace

std::vector<std::string> verifyModule(const Module& m) {
  std::vector<std::string> out;
  for (FuncId f = 0; f < m.numFunctions(); ++f) FunctionVerifier(m, f, out).run();
  if (m.mainFunc == kNone || m.mainFunc >= m.numFunctions())
    out.push_back("module has no main function");
  return out;
}

void verifyModuleOrDie(const Module& m) {
  auto errs = verifyModule(m);
  if (!errs.empty()) {
    std::ostringstream ss;
    for (const auto& e : errs) ss << e << "\n";
    CB_ASSERT(false, "IR verification failed:\n" + ss.str());
  }
}

}  // namespace cb::ir
