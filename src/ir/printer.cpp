#include "ir/printer.h"

#include <sstream>

namespace cb::ir {

namespace {

std::string refStr(const Module& m, const ValueRef& v) {
  switch (v.kind) {
    case ValueRef::Kind::None: return "<none>";
    case ValueRef::Kind::Reg: return "%" + std::to_string(v.reg);
    case ValueRef::Kind::Arg: return "$arg" + std::to_string(v.arg);
    case ValueRef::Kind::GlobalAddr:
      return "@" + m.interner().str(m.global(v.global).name);
    case ValueRef::Kind::ConstInt: return std::to_string(v.i);
    case ValueRef::Kind::ConstReal: {
      std::ostringstream ss;
      ss << v.r;
      return ss.str();
    }
    case ValueRef::Kind::ConstBool: return v.b ? "true" : "false";
    case ValueRef::Kind::ConstString: return "\"" + m.string(v.stringId) + "\"";
  }
  return "?";
}

}  // namespace

std::string printFunction(const Module& m, FuncId fid) {
  const Function& f = m.function(fid);
  std::ostringstream out;
  out << "func @" << f.displayName << "(";
  for (size_t i = 0; i < f.params.size(); ++i) {
    if (i) out << ", ";
    if (f.params[i].byRef) out << "ref ";
    out << m.interner().str(f.params[i].name) << ": "
        << m.types().display(f.params[i].type, m.interner());
  }
  out << ") -> " << m.types().display(f.returnType, m.interner());
  if (f.isTaskFn())
    out << "  // task fn (" << (f.taskKind == TaskKind::Forall ? "forall" : "coforall") << ")";
  out << "\n";
  for (BlockId b = 0; b < f.blocks.size(); ++b) {
    out << "  bb" << b;
    if (!f.blocks[b].label.empty()) out << " <" << f.blocks[b].label << ">";
    out << ":\n";
    for (InstrId id : f.blocks[b].instrs) {
      const Instr& in = f.instrs[id];
      out << "    ";
      if (in.producesValue(m.types())) out << "%" << id << " = ";
      out << opcodeName(in.op);
      if (in.op == Opcode::Bin) out << "." << binKindName(in.extra.bin);
      if (in.op == Opcode::Un) out << "." << unKindName(in.extra.un);
      if (in.op == Opcode::Builtin) out << "." << builtinName(in.extra.builtin);
      if (in.op == Opcode::Call || in.op == Opcode::Spawn)
        out << " @" << m.function(in.extra.func).displayName;
      if (in.op == Opcode::FieldAddr || in.op == Opcode::TupleAddr || in.op == Opcode::TupleGet ||
          in.op == Opcode::IterOverhead || in.op == Opcode::Spawn)
        out << " #" << in.imm;
      if (in.op == Opcode::Alloca && in.extra.debugVar != kNone) {
        const DebugVar& dv = m.debugVar(in.extra.debugVar);
        out << " !" << m.interner().str(dv.name) << (dv.displayable() ? "" : " (temp)");
      }
      for (const ValueRef& v : in.ops) out << " " << refStr(m, v);
      if (in.op == Opcode::Br) out << " -> bb" << in.target0;
      if (in.op == Opcode::CondBr) out << " -> bb" << in.target0 << ", bb" << in.target1;
      if (in.loc.valid()) out << "   ; line " << in.loc.line;
      out << "\n";
    }
  }
  return out.str();
}

std::string printModule(const Module& m) {
  std::ostringstream out;
  for (GlobalId g = 0; g < m.numGlobals(); ++g) {
    const GlobalVar& gv = m.global(g);
    out << "global @" << m.interner().str(gv.name) << ": "
        << m.types().display(gv.type, m.interner()) << "\n";
  }
  for (FuncId f = 0; f < m.numFunctions(); ++f) out << "\n" << printFunction(m, f);
  return out.str();
}

}  // namespace cb::ir
