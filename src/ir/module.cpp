#include "ir/module.h"

#include "support/common.h"

namespace cb::ir {

const char* opcodeName(Opcode op) {
  switch (op) {
    case Opcode::Alloca: return "alloca";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::FieldAddr: return "fieldaddr";
    case Opcode::IndexAddr: return "indexaddr";
    case Opcode::TupleAddr: return "tupleaddr";
    case Opcode::Bin: return "bin";
    case Opcode::Un: return "un";
    case Opcode::TupleMake: return "tuplemake";
    case Opcode::TupleGet: return "tupleget";
    case Opcode::DomainMake: return "domainmake";
    case Opcode::DomainExpand: return "domainexpand";
    case Opcode::DomainSize: return "domainsize";
    case Opcode::DomainDim: return "domaindim";
    case Opcode::ArrayNew: return "arraynew";
    case Opcode::ArrayView: return "arrayview";
    case Opcode::RecordNew: return "recordnew";
    case Opcode::Call: return "call";
    case Opcode::Ret: return "ret";
    case Opcode::Br: return "br";
    case Opcode::CondBr: return "condbr";
    case Opcode::Spawn: return "spawn";
    case Opcode::IterOverhead: return "iteroverhead";
    case Opcode::Builtin: return "builtin";
  }
  return "?";
}

const char* binKindName(BinKind k) {
  switch (k) {
    case BinKind::Add: return "add";
    case BinKind::Sub: return "sub";
    case BinKind::Mul: return "mul";
    case BinKind::Div: return "div";
    case BinKind::Mod: return "mod";
    case BinKind::Pow: return "pow";
    case BinKind::Eq: return "eq";
    case BinKind::Ne: return "ne";
    case BinKind::Lt: return "lt";
    case BinKind::Le: return "le";
    case BinKind::Gt: return "gt";
    case BinKind::Ge: return "ge";
    case BinKind::And: return "and";
    case BinKind::Or: return "or";
    case BinKind::Min: return "min";
    case BinKind::Max: return "max";
  }
  return "?";
}

const char* unKindName(UnKind k) {
  switch (k) {
    case UnKind::Neg: return "neg";
    case UnKind::Not: return "not";
    case UnKind::IntToReal: return "int2real";
    case UnKind::RealToInt: return "real2int";
    case UnKind::Abs: return "abs";
    case UnKind::Sqrt: return "sqrt";
    case UnKind::Sin: return "sin";
    case UnKind::Cos: return "cos";
    case UnKind::Exp: return "exp";
    case UnKind::Floor: return "floor";
  }
  return "?";
}

const char* builtinName(BuiltinKind k) {
  switch (k) {
    case BuiltinKind::Writeln: return "writeln";
    case BuiltinKind::Random: return "random";
    case BuiltinKind::Clock: return "clock";
    case BuiltinKind::Yield: return "yield";
    case BuiltinKind::HeapHint: return "heaphint";
    case BuiltinKind::ArrayFill: return "arrayfill";
    case BuiltinKind::ArrayCopy: return "arraycopy";
    case BuiltinKind::ConfigGet: return "configget";
    case BuiltinKind::Dmapped: return "dmapped";
    case BuiltinKind::OnBegin: return "onbegin";
    case BuiltinKind::OnEnd: return "onend";
    case BuiltinKind::HereId: return "hereid";
    case BuiltinKind::NumLocales: return "numlocales";
    case BuiltinKind::AggOpen: return "aggopen";
    case BuiltinKind::AggCopy: return "aggcopy";
    case BuiltinKind::AggClose: return "aggclose";
  }
  return "?";
}

const Instr& Function::terminator(BlockId b) const {
  const BasicBlock& bb = blocks.at(b);
  CB_ASSERT(!bb.instrs.empty(), "empty block has no terminator");
  const Instr& last = instrs.at(bb.instrs.back());
  CB_ASSERT(last.isTerminator(), "block not terminated");
  return last;
}

std::vector<BlockId> Function::successors(BlockId b) const {
  const Instr& t = terminator(b);
  switch (t.op) {
    case Opcode::Ret: return {};
    case Opcode::Br: return {t.target0};
    case Opcode::CondBr: return {t.target0, t.target1};
    default: CB_UNREACHABLE("bad terminator");
  }
}

FuncId Module::findFunction(Symbol name) const {
  for (FuncId i = 0; i < functions_.size(); ++i) {
    if (functions_[i].name == name) return i;
  }
  return kNone;
}

}  // namespace cb::ir
