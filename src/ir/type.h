// CIR type system.
//
// Mirrors the slice of LLVM/Chapel types the paper's analysis manipulates:
// scalars, homogeneous tuples (Chapel's `3*real`), records with named fields,
// rectangular domains, arrays over domains, and references (addresses).
// Types are uniqued within a TypeContext and referred to by dense TypeId.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "support/interner.h"

namespace cb::ir {

using TypeId = uint32_t;
inline constexpr TypeId kInvalidType = ~0u;

enum class TypeKind : uint8_t {
  Void,
  Bool,
  Int,     // 64-bit signed (Chapel's default int)
  Real,    // 64-bit IEEE double (Chapel's default real)
  String,  // runtime-managed immutable string
  Tuple,   // fixed arity; element types may differ (homogeneous N*T common)
  Record,  // nominal, named fields
  Domain,  // rectangular index set of a given rank
  Array,   // elements of elem type over a domain of given rank
  Ref,     // address of a value of the pointee type
};

struct RecordField {
  Symbol name;
  TypeId type = kInvalidType;
};

/// One type node. Payload members are meaningful per kind (see accessors on
/// TypeContext).
struct Type {
  TypeKind kind = TypeKind::Void;
  // Tuple: element types. Record: field types mirror `fields`.
  std::vector<TypeId> elems;
  // Record only.
  Symbol recordName;
  std::vector<RecordField> fields;
  // Domain/Array rank; Ref/Array element type.
  uint8_t rank = 0;
  TypeId elem = kInvalidType;
};

/// Owns and uniques all types of one module.
class TypeContext {
 public:
  TypeContext();

  TypeId voidTy() const { return 0; }
  TypeId boolTy() const { return 1; }
  TypeId intTy() const { return 2; }
  TypeId realTy() const { return 3; }
  TypeId stringTy() const { return 4; }

  TypeId tuple(std::vector<TypeId> elems);
  /// Homogeneous tuple `n*t` (Chapel syntax).
  TypeId homogeneousTuple(uint32_t n, TypeId t);
  /// Records are nominal: the first call registers the body; later calls with
  /// the same name return the same id (bodies must match).
  TypeId record(Symbol name, std::vector<RecordField> fields);
  /// Looks up an already-declared record by name; kInvalidType if unknown.
  TypeId findRecord(Symbol name) const;
  TypeId domain(uint8_t rank);
  TypeId array(TypeId elem, uint8_t rank);
  TypeId ref(TypeId pointee);

  /// The returned reference stays valid while this context lives, even as
  /// later calls add types — lowering routinely holds one across builder
  /// calls that intern new Ref/Tuple types.
  const Type& get(TypeId id) const { return types_.at(id); }
  TypeKind kindOf(TypeId id) const { return get(id).kind; }
  bool isScalar(TypeId id) const {
    TypeKind k = kindOf(id);
    return k == TypeKind::Bool || k == TypeKind::Int || k == TypeKind::Real;
  }
  bool isNumeric(TypeId id) const {
    TypeKind k = kindOf(id);
    return k == TypeKind::Int || k == TypeKind::Real;
  }

  /// Pointee of a Ref type.
  TypeId pointee(TypeId refTy) const;
  /// Element type of an Array type.
  TypeId arrayElem(TypeId arrTy) const;

  /// Chapel-flavoured rendering used in blame tables, e.g. "8*real",
  /// "[binSpace] int(64)", "domain".
  std::string display(TypeId id, const StringInterner& interner) const;

  size_t size() const { return types_.size(); }

 private:
  TypeId add(Type t);

  // Deque, not vector: growth must not invalidate references handed out by
  // get() (see its contract above).
  std::deque<Type> types_;
};

}  // namespace cb::ir
