// Human-readable CIR dumps for tests and debugging.
#pragma once

#include <string>

#include "ir/module.h"

namespace cb::ir {

std::string printFunction(const Module& m, FuncId f);
std::string printModule(const Module& m);

}  // namespace cb::ir
