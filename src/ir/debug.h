// Debug information: the variable records and source locations that make
// data-centric attribution possible.
//
// The paper had to modify the Chapel compiler's LLVM frontend to emit this
// information; in our substrate the frontend emits it natively, and the
// `--fast` pass pipeline strips it (mirroring why the paper cannot profile
// `--fast` binaries data-centrically).
#pragma once

#include <cstdint>
#include <string>

#include "ir/instr.h"
#include "support/interner.h"
#include "support/source_manager.h"

namespace cb::ir {

enum class VarKind : uint8_t {
  Global,      // module-scope variable (Chapel globals, config consts)
  Local,       // user-declared local
  Param,       // formal parameter
  Temp,        // compiler-generated temporary — tracked, never displayed
  FieldPath,   // synthetic "->parent.field" entry for hierarchical display
};

/// One debug-variable record. Temps are flagged so the static analysis can
/// track them through the data flow while the GUI/report layer hides them
/// (paper §IV.A: "we flag these internal elements and don't display them").
struct DebugVar {
  Symbol name;
  std::string typeDisplay;     // Chapel-style type string for reports
  TypeId type = kInvalidType;
  VarKind kind = VarKind::Temp;
  FuncId scope = kNone;        // defining function; kNone for globals
  SourceLoc declLoc;
  // FieldPath entries: the variable this is a field of, and the field chain
  // rendered for display (e.g. "partArray[i].zoneArray[j].value").
  DebugVarId parent = kNone;

  bool displayable() const { return kind != VarKind::Temp; }
};

}  // namespace cb::ir
