#include "ir/builder.h"

#include "support/common.h"

namespace cb::ir {

BlockId IRBuilder::newBlock(std::string label) {
  fn_->blocks.push_back(BasicBlock{{}, std::move(label)});
  return static_cast<BlockId>(fn_->blocks.size() - 1);
}

bool IRBuilder::blockTerminated() const {
  const BasicBlock& bb = fn_->blocks.at(cur_);
  if (bb.instrs.empty()) return false;
  return fn_->instrs.at(bb.instrs.back()).isTerminator();
}

InstrId IRBuilder::append(Instr in) {
  CB_ASSERT(!blockTerminated(), "appending to terminated block");
  in.loc = loc_;
  InstrId id = static_cast<InstrId>(fn_->instrs.size());
  fn_->instrs.push_back(std::move(in));
  fn_->blocks.at(cur_).instrs.push_back(id);
  return id;
}

ValueRef IRBuilder::alloca_(TypeId pointee, DebugVarId dv) {
  Instr in;
  in.op = Opcode::Alloca;
  in.type = mod_->types().ref(pointee);
  in.extra.debugVar = dv;
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::load(ValueRef addr, TypeId valueTy) {
  Instr in;
  in.op = Opcode::Load;
  in.type = valueTy;
  in.ops = {addr};
  return ValueRef::makeReg(append(std::move(in)));
}

void IRBuilder::store(ValueRef value, ValueRef addr) {
  Instr in;
  in.op = Opcode::Store;
  in.type = mod_->types().voidTy();
  in.ops = {value, addr};
  append(std::move(in));
}

ValueRef IRBuilder::fieldAddr(ValueRef recAddr, uint32_t fieldIdx, TypeId fieldTy) {
  Instr in;
  in.op = Opcode::FieldAddr;
  in.type = mod_->types().ref(fieldTy);
  in.ops = {recAddr};
  in.imm = fieldIdx;
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::indexAddr(ValueRef arrayValue, const std::vector<ValueRef>& idx, TypeId elemTy,
                              bool linear) {
  Instr in;
  in.op = Opcode::IndexAddr;
  in.type = mod_->types().ref(elemTy);
  in.ops = {arrayValue};
  in.ops.insert(in.ops.end(), idx.begin(), idx.end());
  in.imm = linear ? 1 : 0;
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::tupleAddr(ValueRef tupAddr, uint32_t elemIdx, TypeId elemTy) {
  Instr in;
  in.op = Opcode::TupleAddr;
  in.type = mod_->types().ref(elemTy);
  in.ops = {tupAddr};
  in.imm = elemIdx;
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::tupleAddrDyn(ValueRef tupAddr, ValueRef idx1Based, TypeId elemTy) {
  Instr in;
  in.op = Opcode::TupleAddr;
  in.type = mod_->types().ref(elemTy);
  in.ops = {tupAddr, idx1Based};
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::tupleGetDyn(ValueRef tup, ValueRef idx1Based, TypeId elemTy) {
  Instr in;
  in.op = Opcode::TupleGet;
  in.type = elemTy;
  in.ops = {tup, idx1Based};
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::bin(BinKind k, ValueRef a, ValueRef b, TypeId ty) {
  Instr in;
  in.op = Opcode::Bin;
  in.type = ty;
  in.ops = {a, b};
  in.extra.bin = k;
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::un(UnKind k, ValueRef v, TypeId ty) {
  Instr in;
  in.op = Opcode::Un;
  in.type = ty;
  in.ops = {v};
  in.extra.un = k;
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::tupleMake(const std::vector<ValueRef>& elems, TypeId tupleTy) {
  Instr in;
  in.op = Opcode::TupleMake;
  in.type = tupleTy;
  in.ops = elems;
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::tupleGet(ValueRef tup, uint32_t idx, TypeId elemTy) {
  Instr in;
  in.op = Opcode::TupleGet;
  in.type = elemTy;
  in.ops = {tup};
  in.imm = idx;
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::recordNew(TypeId recTy) {
  Instr in;
  in.op = Opcode::RecordNew;
  in.type = recTy;
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::domainMake(const std::vector<ValueRef>& bounds, uint8_t rank) {
  Instr in;
  in.op = Opcode::DomainMake;
  in.type = mod_->types().domain(rank);
  in.ops = bounds;
  in.imm = rank;
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::domainExpand(ValueRef dom, ValueRef amount, uint8_t rank) {
  Instr in;
  in.op = Opcode::DomainExpand;
  in.type = mod_->types().domain(rank);
  in.ops = {dom, amount};
  in.imm = rank;
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::domainSize(ValueRef dom) {
  Instr in;
  in.op = Opcode::DomainSize;
  in.type = mod_->types().intTy();
  in.ops = {dom};
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::domainDim(ValueRef dom, uint32_t dim, bool hi) {
  Instr in;
  in.op = Opcode::DomainDim;
  in.type = mod_->types().intTy();
  in.ops = {dom};
  in.imm = dim * 2 + (hi ? 1 : 0);
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::arrayNew(ValueRef dom, TypeId arrayTy) {
  Instr in;
  in.op = Opcode::ArrayNew;
  in.type = arrayTy;
  in.ops = {dom};
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::arrayView(ValueRef arr, ValueRef dom, TypeId arrayTy) {
  Instr in;
  in.op = Opcode::ArrayView;
  in.type = arrayTy;
  in.ops = {arr, dom};
  return ValueRef::makeReg(append(std::move(in)));
}

ValueRef IRBuilder::call(FuncId callee, const std::vector<ValueRef>& args, TypeId retTy) {
  Instr in;
  in.op = Opcode::Call;
  in.type = retTy;
  in.ops = args;
  in.extra.func = callee;
  return ValueRef::makeReg(append(std::move(in)));
}

void IRBuilder::ret(ValueRef v) {
  Instr in;
  in.op = Opcode::Ret;
  in.type = mod_->types().voidTy();
  if (!v.isNone()) in.ops = {v};
  append(std::move(in));
}

void IRBuilder::br(BlockId target) {
  Instr in;
  in.op = Opcode::Br;
  in.type = mod_->types().voidTy();
  in.target0 = target;
  append(std::move(in));
}

void IRBuilder::condBr(ValueRef cond, BlockId thenB, BlockId elseB) {
  Instr in;
  in.op = Opcode::CondBr;
  in.type = mod_->types().voidTy();
  in.ops = {cond};
  in.target0 = thenB;
  in.target1 = elseB;
  append(std::move(in));
}

void IRBuilder::spawn(FuncId taskFn, uint32_t kindImm, const std::vector<ValueRef>& args) {
  Instr in;
  in.op = Opcode::Spawn;
  in.type = mod_->types().voidTy();
  in.ops = args;
  in.imm = kindImm;
  in.extra.func = taskFn;
  append(std::move(in));
}

void IRBuilder::iterOverhead(uint32_t numIterands, const std::vector<ValueRef>& iterands) {
  Instr in;
  in.op = Opcode::IterOverhead;
  in.type = mod_->types().voidTy();
  in.imm = numIterands;
  in.ops = iterands;
  append(std::move(in));
}

ValueRef IRBuilder::builtin(BuiltinKind k, const std::vector<ValueRef>& args, TypeId retTy) {
  Instr in;
  in.op = Opcode::Builtin;
  in.type = retTy;
  in.ops = args;
  in.extra.builtin = k;
  InstrId id = append(std::move(in));
  return fn_->instrs[id].producesValue(mod_->types()) ? ValueRef::makeReg(id) : ValueRef::none();
}

}  // namespace cb::ir
