// IRBuilder: append-style construction of CIR functions.
#pragma once

#include "ir/module.h"

namespace cb::ir {

class IRBuilder {
 public:
  IRBuilder(Module& m, Function& f) : mod_(&m), fn_(&f) {}

  Module& module() { return *mod_; }
  Function& func() { return *fn_; }

  /// Creates a new (empty, unterminated) block and returns its id.
  BlockId newBlock(std::string label);
  /// Switches the insertion point.
  void setBlock(BlockId b) { cur_ = b; }
  BlockId currentBlock() const { return cur_; }
  /// True if the current block already ends in a terminator.
  bool blockTerminated() const;

  void setLoc(SourceLoc loc) { loc_ = loc; }
  SourceLoc loc() const { return loc_; }

  // --- memory ---
  ValueRef alloca_(TypeId pointee, DebugVarId dv);
  ValueRef load(ValueRef addr, TypeId valueTy);
  void store(ValueRef value, ValueRef addr);
  ValueRef fieldAddr(ValueRef recAddr, uint32_t fieldIdx, TypeId fieldTy);
  /// `linear` selects 0-based flat-offset indexing (compiler-generated
  /// element iteration); otherwise indices are per-dimension domain indices.
  ValueRef indexAddr(ValueRef arrayValue, const std::vector<ValueRef>& idx, TypeId elemTy,
                     bool linear = false);
  ValueRef tupleAddr(ValueRef tupAddr, uint32_t elemIdx, TypeId elemTy);
  /// Dynamic (run-time, 1-based) tuple element addressing — Chapel allows
  /// it but it compiles to a dispatch, which is why `for param` loops win.
  ValueRef tupleAddrDyn(ValueRef tupAddr, ValueRef idx1Based, TypeId elemTy);
  ValueRef tupleGetDyn(ValueRef tup, ValueRef idx1Based, TypeId elemTy);

  // --- values ---
  ValueRef bin(BinKind k, ValueRef a, ValueRef b, TypeId ty);
  ValueRef un(UnKind k, ValueRef v, TypeId ty);
  ValueRef tupleMake(const std::vector<ValueRef>& elems, TypeId tupleTy);
  ValueRef tupleGet(ValueRef tup, uint32_t idx, TypeId elemTy);
  ValueRef recordNew(TypeId recTy);

  // --- domains / arrays ---
  ValueRef domainMake(const std::vector<ValueRef>& bounds, uint8_t rank);
  ValueRef domainExpand(ValueRef dom, ValueRef amount, uint8_t rank);
  ValueRef domainSize(ValueRef dom);
  ValueRef domainDim(ValueRef dom, uint32_t dim, bool hi);
  ValueRef arrayNew(ValueRef dom, TypeId arrayTy);
  ValueRef arrayView(ValueRef arr, ValueRef dom, TypeId arrayTy);

  // --- control ---
  ValueRef call(FuncId callee, const std::vector<ValueRef>& args, TypeId retTy);
  void ret(ValueRef v = ValueRef::none());
  void br(BlockId target);
  void condBr(ValueRef cond, BlockId thenB, BlockId elseB);
  void spawn(FuncId taskFn, uint32_t kindImm, const std::vector<ValueRef>& args);
  /// `iterands` are the zipped array/domain values being driven — the blame
  /// analysis treats the per-iteration iterator advance as an IR-level
  /// write to them.
  void iterOverhead(uint32_t numIterands, const std::vector<ValueRef>& iterands = {});
  ValueRef builtin(BuiltinKind k, const std::vector<ValueRef>& args, TypeId retTy);

 private:
  InstrId append(Instr in);

  Module* mod_;
  Function* fn_;
  BlockId cur_ = 0;
  SourceLoc loc_;
};

}  // namespace cb::ir
