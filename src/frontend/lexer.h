// Mini-Chapel lexer.
#pragma once

#include <vector>

#include "frontend/token.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace cb::fe {

class Lexer {
 public:
  Lexer(const SourceManager& sm, uint32_t file, DiagnosticEngine& diags);

  /// Tokenizes the whole buffer (ends with an Eof token).
  std::vector<Token> lexAll();

 private:
  Token next();
  char peek(size_t ahead = 0) const;
  char advance();
  bool match(char c);
  SourceLoc here() const;
  void skipTrivia();

  const std::string& src_;
  uint32_t file_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t col_ = 1;
  DiagnosticEngine& diags_;
};

}  // namespace cb::fe
