// Compilation driver: source -> tokens -> AST -> CIR (+ optional --fast
// pipeline). Owns everything a compiled program needs (sources, interner,
// diagnostics, module).
#pragma once

#include <memory>
#include <string>

#include "ir/module.h"
#include "support/diagnostics.h"
#include "support/interner.h"
#include "support/source_manager.h"

namespace cb::fe {

struct CompileOptions {
  /// Run the --fast optimization pipeline (strips the source-variable
  /// mapping; data-centric profiling then degrades, as in the paper).
  bool fast = false;
  /// Verify the produced IR (cheap; on by default).
  bool verify = true;
};

class Compilation {
 public:
  /// Compiles an in-memory buffer. Always returns an object; check ok().
  static std::unique_ptr<Compilation> fromString(const std::string& name,
                                                 const std::string& source,
                                                 const CompileOptions& opts = {});
  /// Compiles a file from disk.
  static std::unique_ptr<Compilation> fromFile(const std::string& path,
                                               const CompileOptions& opts = {});

  bool ok() const { return ok_; }
  /// False when compilation stopped before lowering began (lex/parse
  /// errors): there is no IR at all and module() must not be called. True
  /// whenever lowering started, even if it then failed — the partial module
  /// is valid input for tools that tolerate recovered IR (analysis/locality).
  bool hasModule() const { return module_ != nullptr; }
  ir::Module& module() { return *module_; }
  const ir::Module& module() const { return *module_; }
  SourceManager& sourceManager() { return sm_; }
  const SourceManager& sourceManager() const { return sm_; }
  DiagnosticEngine& diags() { return diags_; }
  const DiagnosticEngine& diags() const { return diags_; }
  const CompileOptions& options() const { return opts_; }

 private:
  explicit Compilation(const CompileOptions& opts);
  void compileBuffer(uint32_t file);

  CompileOptions opts_;
  SourceManager sm_;
  StringInterner interner_;
  DiagnosticEngine diags_;
  std::unique_ptr<ir::Module> module_;
  bool ok_ = false;
};

}  // namespace cb::fe
