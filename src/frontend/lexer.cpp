#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace cb::fe {

const char* tokName(Tok t) {
  switch (t) {
    case Tok::Eof: return "<eof>";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::RealLit: return "real literal";
    case Tok::StringLit: return "string literal";
    case Tok::KwConfig: return "'config'";
    case Tok::KwConst: return "'const'";
    case Tok::KwVar: return "'var'";
    case Tok::KwRecord: return "'record'";
    case Tok::KwProc: return "'proc'";
    case Tok::KwRef: return "'ref'";
    case Tok::KwIn: return "'in'";
    case Tok::KwIf: return "'if'";
    case Tok::KwThen: return "'then'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwFor: return "'for'";
    case Tok::KwForall: return "'forall'";
    case Tok::KwCoforall: return "'coforall'";
    case Tok::KwParam: return "'param'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwZip: return "'zip'";
    case Tok::KwTrue: return "'true'";
    case Tok::KwFalse: return "'false'";
    case Tok::KwDomain: return "'domain'";
    case Tok::KwUse: return "'use'";
    case Tok::KwType: return "'type'";
    case Tok::KwReduce: return "'reduce'";
    case Tok::KwSelect: return "'select'";
    case Tok::KwWhen: return "'when'";
    case Tok::KwOtherwise: return "'otherwise'";
    case Tok::KwOn: return "'on'";
    case Tok::KwDmapped: return "'dmapped'";
    case Tok::KwWith: return "'with'";
    case Tok::KwNew: return "'new'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Dot: return "'.'";
    case Tok::DotDot: return "'..'";
    case Tok::Hash: return "'#'";
    case Tok::Arrow: return "'=>'";
    case Tok::Assign: return "'='";
    case Tok::PlusAssign: return "'+='";
    case Tok::MinusAssign: return "'-='";
    case Tok::StarAssign: return "'*='";
    case Tok::SlashAssign: return "'/='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::StarStar: return "'**'";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Not: return "'!'";
  }
  return "?";
}

namespace {
const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kw = {
      {"config", Tok::KwConfig},   {"const", Tok::KwConst},
      {"var", Tok::KwVar},         {"record", Tok::KwRecord},
      {"proc", Tok::KwProc},       {"ref", Tok::KwRef},
      {"in", Tok::KwIn},           {"if", Tok::KwIf},
      {"then", Tok::KwThen},       {"else", Tok::KwElse},
      {"while", Tok::KwWhile},     {"for", Tok::KwFor},
      {"forall", Tok::KwForall},   {"coforall", Tok::KwCoforall},
      {"param", Tok::KwParam},     {"return", Tok::KwReturn},
      {"zip", Tok::KwZip},         {"true", Tok::KwTrue},
      {"false", Tok::KwFalse},     {"domain", Tok::KwDomain},
      {"use", Tok::KwUse},         {"type", Tok::KwType},
      {"reduce", Tok::KwReduce},   {"select", Tok::KwSelect},
      {"when", Tok::KwWhen},       {"otherwise", Tok::KwOtherwise},
      {"on", Tok::KwOn},           {"dmapped", Tok::KwDmapped},
      {"with", Tok::KwWith},       {"new", Tok::KwNew},
  };
  return kw;
}
}  // namespace

Lexer::Lexer(const SourceManager& sm, uint32_t file, DiagnosticEngine& diags)
    : src_(sm.contents(file)), file_(file), diags_(diags) {}

char Lexer::peek(size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char c = peek();
  ++pos_;
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::match(char c) {
  if (peek() != c) return false;
  advance();
  return true;
}

SourceLoc Lexer::here() const { return {file_, line_, col_}; }

void Lexer::skipTrivia() {
  for (;;) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          diags_.error(here(), "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::next() {
  skipTrivia();
  Token t;
  t.loc = here();
  if (pos_ >= src_.size()) {
    t.kind = Tok::Eof;
    return t;
  }
  char c = advance();

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string ident(1, c);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') ident += advance();
    auto it = keywords().find(ident);
    if (it != keywords().end()) {
      t.kind = it->second;
    } else {
      t.kind = Tok::Ident;
      t.text = std::move(ident);
    }
    return t;
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string num(1, c);
    while (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '_') {
      char d = advance();
      if (d != '_') num += d;  // Chapel-style digit separators
    }
    // A '.' starts a fractional part only when NOT followed by another '.'
    // (so `0..n` lexes as int, dotdot, ident).
    bool isReal = false;
    if (peek() == '.' && peek(1) != '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      isReal = true;
      num += advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) num += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      isReal = true;
      num += advance();
      if (peek() == '+' || peek() == '-') num += advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) num += advance();
    }
    if (isReal) {
      t.kind = Tok::RealLit;
      t.realVal = std::strtod(num.c_str(), nullptr);
    } else {
      t.kind = Tok::IntLit;
      t.intVal = std::strtoll(num.c_str(), nullptr, 10);
    }
    return t;
  }

  if (c == '"') {
    std::string s;
    while (peek() != '"') {
      if (peek() == '\0' || peek() == '\n') {
        diags_.error(t.loc, "unterminated string literal");
        break;
      }
      char d = advance();
      if (d == '\\') {
        char e = advance();
        switch (e) {
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case '\\': s += '\\'; break;
          case '"': s += '"'; break;
          default: s += e; break;
        }
      } else {
        s += d;
      }
    }
    if (peek() == '"') advance();
    t.kind = Tok::StringLit;
    t.text = std::move(s);
    return t;
  }

  switch (c) {
    case '{': t.kind = Tok::LBrace; return t;
    case '}': t.kind = Tok::RBrace; return t;
    case '(': t.kind = Tok::LParen; return t;
    case ')': t.kind = Tok::RParen; return t;
    case '[': t.kind = Tok::LBracket; return t;
    case ']': t.kind = Tok::RBracket; return t;
    case ',': t.kind = Tok::Comma; return t;
    case ';': t.kind = Tok::Semi; return t;
    case ':': t.kind = Tok::Colon; return t;
    case '#': t.kind = Tok::Hash; return t;
    case '.':
      t.kind = match('.') ? Tok::DotDot : Tok::Dot;
      return t;
    case '=':
      if (match('=')) t.kind = Tok::EqEq;
      else if (match('>')) t.kind = Tok::Arrow;
      else t.kind = Tok::Assign;
      return t;
    case '+': t.kind = match('=') ? Tok::PlusAssign : Tok::Plus; return t;
    case '-': t.kind = match('=') ? Tok::MinusAssign : Tok::Minus; return t;
    case '*':
      if (match('*')) t.kind = Tok::StarStar;
      else if (match('=')) t.kind = Tok::StarAssign;
      else t.kind = Tok::Star;
      return t;
    case '/': t.kind = match('=') ? Tok::SlashAssign : Tok::Slash; return t;
    case '%': t.kind = Tok::Percent; return t;
    case '!': t.kind = match('=') ? Tok::NotEq : Tok::Not; return t;
    case '<': t.kind = match('=') ? Tok::Le : Tok::Lt; return t;
    case '>': t.kind = match('=') ? Tok::Ge : Tok::Gt; return t;
    case '&':
      if (match('&')) {
        t.kind = Tok::AndAnd;
        return t;
      }
      break;
    case '|':
      if (match('|')) {
        t.kind = Tok::OrOr;
        return t;
      }
      break;
    default:
      break;
  }
  diags_.error(t.loc, std::string("unexpected character '") + c + "'");
  return next();  // skip the bad character and keep lexing (error recovery)
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> out;
  for (;;) {
    Token t = next();
    bool eof = (t.kind == Tok::Eof);
    out.push_back(std::move(t));
    if (eof) return out;
  }
}

}  // namespace cb::fe
