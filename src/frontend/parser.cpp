#include "frontend/parser.h"

#include <utility>

namespace cb::fe {

const Token& Parser::peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= toks_.size()) i = toks_.size() - 1;  // Eof
  return toks_[i];
}

Token Parser::advance() {
  Token t = toks_[pos_];
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::accept(Tok k) {
  if (!check(k)) return false;
  advance();
  return true;
}

Token Parser::expect(Tok k, const char* what) {
  if (check(k)) return advance();
  diags_.error(cur().loc,
               std::string("expected ") + tokName(k) + " " + what + ", got " + tokName(cur().kind));
  return cur();
}

void Parser::error(const char* msg) { diags_.error(cur().loc, msg); }

void Parser::syncToDeclOrSemi() {
  while (!check(Tok::Eof)) {
    if (accept(Tok::Semi)) return;
    switch (cur().kind) {
      case Tok::KwProc:
      case Tok::KwRecord:
      case Tok::KwConfig:
      case Tok::RBrace:
        return;
      default:
        advance();
    }
  }
}

Program Parser::parseProgram() {
  Program p;
  p.file = file_;
  while (!check(Tok::Eof)) {
    switch (cur().kind) {
      case Tok::KwUse:  // accepted for Chapel flavour, ignored
        advance();
        while (!check(Tok::Semi) && !check(Tok::Eof)) advance();
        accept(Tok::Semi);
        break;
      case Tok::KwRecord:
        p.order.push_back({TopLevelRef::Kind::Record, p.records.size()});
        p.records.push_back(parseRecord());
        break;
      case Tok::KwType: {
        advance();
        TypeAliasDecl a;
        a.loc = cur().loc;
        a.name = expect(Tok::Ident, "type alias name").text;
        expect(Tok::Assign, "in type alias");
        a.type = parseType();
        expect(Tok::Semi, "after type alias");
        p.order.push_back({TopLevelRef::Kind::TypeAlias, p.typeAliases.size()});
        p.typeAliases.push_back(std::move(a));
        break;
      }
      case Tok::KwProc:
        p.order.push_back({TopLevelRef::Kind::Proc, p.procs.size()});
        p.procs.push_back(parseProc());
        break;
      case Tok::KwConfig: {
        advance();
        bool isConst = accept(Tok::KwConst);
        if (!isConst) expect(Tok::KwVar, "after 'config'");
        GlobalDecl g = parseGlobal(/*isConfig=*/true);
        g.isConst = isConst;
        p.order.push_back({TopLevelRef::Kind::Global, p.globals.size()});
        p.globals.push_back(std::move(g));
        break;
      }
      case Tok::KwConst:
      case Tok::KwVar: {
        bool isConst = advance().kind == Tok::KwConst;
        GlobalDecl g = parseGlobal(/*isConfig=*/false);
        g.isConst = isConst;
        p.order.push_back({TopLevelRef::Kind::Global, p.globals.size()});
        p.globals.push_back(std::move(g));
        break;
      }
      default:
        error("expected top-level declaration");
        // syncToDeclOrSemi stops AT a closing brace without consuming it; a
        // stray `}` at top level must be eaten here or recovery never
        // advances.
        if (check(Tok::RBrace)) advance();
        else syncToDeclOrSemi();
        break;
    }
  }
  return p;
}

RecordDecl Parser::parseRecord() {
  RecordDecl r;
  r.loc = cur().loc;
  expect(Tok::KwRecord, "");
  r.name = expect(Tok::Ident, "record name").text;
  expect(Tok::LBrace, "to open record body");
  while (!check(Tok::RBrace) && !check(Tok::Eof)) {
    expect(Tok::KwVar, "field declaration");
    FieldDecl f;
    f.loc = cur().loc;
    f.name = expect(Tok::Ident, "field name").text;
    expect(Tok::Colon, "after field name");
    f.type = parseType();
    expect(Tok::Semi, "after field");
    r.fields.push_back(std::move(f));
  }
  expect(Tok::RBrace, "to close record body");
  return r;
}

ProcDecl Parser::parseProc() {
  ProcDecl d;
  d.loc = cur().loc;
  expect(Tok::KwProc, "");
  d.name = expect(Tok::Ident, "procedure name").text;
  expect(Tok::LParen, "to open parameter list");
  if (!check(Tok::RParen)) {
    do {
      ParamDecl pd;
      pd.loc = cur().loc;
      if (accept(Tok::KwRef)) pd.intent = Intent::Ref;
      else accept(Tok::KwIn);
      pd.name = expect(Tok::Ident, "parameter name").text;
      expect(Tok::Colon, "after parameter name");
      pd.type = parseType();
      d.params.push_back(std::move(pd));
    } while (accept(Tok::Comma));
  }
  expect(Tok::RParen, "to close parameter list");
  if (accept(Tok::Colon)) d.returnType = parseType();
  expect(Tok::LBrace, "to open procedure body");
  while (!check(Tok::RBrace) && !check(Tok::Eof)) d.body.push_back(parseStmt());
  expect(Tok::RBrace, "to close procedure body");
  return d;
}

GlobalDecl Parser::parseGlobal(bool isConfig) {
  GlobalDecl g;
  g.isConfig = isConfig;
  g.loc = cur().loc;
  g.name = expect(Tok::Ident, "variable name").text;
  if (accept(Tok::Arrow)) {
    // `var RealPos => Pos[binSpace];` — module-scope array alias.
    g.isAlias = true;
    g.init = parseExpr();
  } else {
    if (accept(Tok::Colon)) g.type = parseType();
    if (accept(Tok::Assign)) g.init = parseExpr();
  }
  expect(Tok::Semi, "after declaration");
  return g;
}

TypeExprPtr Parser::parseType() {
  auto t = std::make_unique<TypeExpr>();
  t->loc = cur().loc;
  switch (cur().kind) {
    case Tok::Ident: {
      t->kind = TypeExprKind::Named;
      t->name = advance().text;
      return t;
    }
    case Tok::IntLit: {
      // Homogeneous tuple: N*T.
      t->kind = TypeExprKind::HomTuple;
      t->tupleArity = static_cast<uint32_t>(advance().intVal);
      expect(Tok::Star, "in homogeneous tuple type");
      t->elem = parseType();
      return t;
    }
    case Tok::LParen: {
      advance();
      t->kind = TypeExprKind::Tuple;
      do {
        t->elems.push_back(parseType());
      } while (accept(Tok::Comma));
      expect(Tok::RParen, "to close tuple type");
      if (t->elems.size() == 1) return std::move(t->elems.front());  // (T) == T
      return t;
    }
    case Tok::LBracket: {
      advance();
      t->kind = TypeExprKind::Array;
      t->domainExpr = parseExpr();
      expect(Tok::RBracket, "to close array domain");
      t->elem = parseType();
      return t;
    }
    case Tok::KwDomain: {
      advance();
      t->kind = TypeExprKind::Domain;
      expect(Tok::LParen, "after 'domain'");
      t->rank = static_cast<uint32_t>(expect(Tok::IntLit, "domain rank").intVal);
      expect(Tok::RParen, "to close domain rank");
      return t;
    }
    default:
      error("expected a type");
      advance();
      t->kind = TypeExprKind::Named;
      t->name = "int";
      return t;
  }
}

std::vector<StmtPtr> Parser::parseBlock() {
  std::vector<StmtPtr> body;
  expect(Tok::LBrace, "to open block");
  while (!check(Tok::RBrace) && !check(Tok::Eof)) body.push_back(parseStmt());
  expect(Tok::RBrace, "to close block");
  return body;
}

StmtPtr Parser::parseStmt() {
  switch (cur().kind) {
    case Tok::KwVar: advance(); return parseDeclVar(false);
    case Tok::KwConst: advance(); return parseDeclVar(true);
    case Tok::KwIf: return parseIf();
    case Tok::KwWhile: return parseWhile();
    case Tok::KwFor:
      if (peek(1).kind == Tok::KwParam) return parseForLike(StmtKind::ForParam);
      return parseForLike(StmtKind::For);
    case Tok::KwForall: return parseForLike(StmtKind::Forall);
    case Tok::KwCoforall: return parseForLike(StmtKind::Coforall);
    case Tok::KwSelect: {
      auto s = std::make_unique<Stmt>(StmtKind::Select, cur().loc);
      advance();
      s->expr = parseExpr();
      expect(Tok::LBrace, "to open select body");
      while (!check(Tok::RBrace) && !check(Tok::Eof)) {
        if (accept(Tok::KwWhen)) {
          WhenClause w;
          w.loc = cur().loc;
          do {
            w.values.push_back(parseExpr());
          } while (accept(Tok::Comma));
          w.body = parseBlock();
          s->whens.push_back(std::move(w));
        } else if (accept(Tok::KwOtherwise)) {
          s->elseBody = parseBlock();
        } else {
          error("expected 'when' or 'otherwise' in select");
          advance();
        }
      }
      expect(Tok::RBrace, "to close select body");
      return s;
    }
    case Tok::KwOn: {
      // `on <target> { ... }` — target is typically `Locales[e]` or `here`.
      auto s = std::make_unique<Stmt>(StmtKind::On, cur().loc);
      advance();
      s->expr = parseExpr();
      if (accept(Tok::KwThen)) s->body.push_back(parseStmt());
      else s->body = parseBlock();
      return s;
    }
    case Tok::KwReturn: {
      auto s = std::make_unique<Stmt>(StmtKind::Return, cur().loc);
      advance();
      if (!check(Tok::Semi)) s->expr = parseExpr();
      expect(Tok::Semi, "after return");
      return s;
    }
    case Tok::LBrace: {
      auto s = std::make_unique<Stmt>(StmtKind::Block, cur().loc);
      s->body = parseBlock();
      return s;
    }
    default:
      return parseSimpleStmt();
  }
}

StmtPtr Parser::parseDeclVar(bool isConst) {
  auto s = std::make_unique<Stmt>(StmtKind::DeclVar, cur().loc);
  s->isConst = isConst;
  s->name = expect(Tok::Ident, "variable name").text;
  if (accept(Tok::Arrow)) {
    // `var a => expr;` — array alias (Chapel 1.x slice alias syntax).
    s->isAlias = true;
    s->init = parseExpr();
  } else {
    if (accept(Tok::Colon)) s->declType = parseType();
    if (accept(Tok::Assign)) s->init = parseExpr();
  }
  expect(Tok::Semi, "after declaration");
  return s;
}

StmtPtr Parser::parseIf() {
  auto s = std::make_unique<Stmt>(StmtKind::If, cur().loc);
  expect(Tok::KwIf, "");
  s->expr = parseExpr();
  if (accept(Tok::KwThen)) {
    s->body.push_back(parseStmt());
  } else {
    s->body = parseBlock();
  }
  if (accept(Tok::KwElse)) {
    if (check(Tok::KwIf)) {
      s->elseBody.push_back(parseIf());
    } else if (check(Tok::LBrace)) {
      s->elseBody = parseBlock();
    } else {
      s->elseBody.push_back(parseStmt());
    }
  }
  return s;
}

StmtPtr Parser::parseWhile() {
  auto s = std::make_unique<Stmt>(StmtKind::While, cur().loc);
  expect(Tok::KwWhile, "");
  s->expr = parseExpr();
  s->body = parseBlock();
  return s;
}

LoopHead Parser::parseLoopHead() {
  LoopHead h;
  if (accept(Tok::LParen)) {
    do {
      h.indexNames.push_back(expect(Tok::Ident, "loop index").text);
    } while (accept(Tok::Comma));
    expect(Tok::RParen, "to close index tuple");
  } else {
    h.indexNames.push_back(expect(Tok::Ident, "loop index").text);
  }
  expect(Tok::KwIn, "in loop header");
  if (accept(Tok::KwZip)) {
    h.zipped = true;
    expect(Tok::LParen, "after zip");
    do {
      h.iterands.push_back(parseExpr());
    } while (accept(Tok::Comma));
    expect(Tok::RParen, "to close zip");
  } else {
    h.iterands.push_back(parseExpr());
  }
  return h;
}

StmtPtr Parser::parseForLike(StmtKind kind) {
  auto s = std::make_unique<Stmt>(kind, cur().loc);
  advance();  // for / forall / coforall
  if (kind == StmtKind::ForParam) {
    expect(Tok::KwParam, "");
    s->head.indexNames.push_back(expect(Tok::Ident, "loop index").text);
    expect(Tok::KwIn, "in loop header");
    // Bounds must be integer literals (possibly negated): `param` loops are
    // unrolled at compile time, exactly like Chapel's.
    auto parseBound = [&]() -> int64_t {
      bool neg = accept(Tok::Minus);
      int64_t v = expect(Tok::IntLit, "param loop bound").intVal;
      return neg ? -v : v;
    };
    s->paramLo = parseBound();
    expect(Tok::DotDot, "in param loop range");
    if (accept(Tok::Hash)) {
      int64_t n = parseBound();
      s->paramHi = s->paramLo + n - 1;
    } else {
      s->paramHi = parseBound();
    }
  } else {
    s->head = parseLoopHead();
  }
  // Optional aggregator task intents on parallel loops:
  //   forall i in D with (var agg = new SrcAggregator(int)) { ... }
  if ((kind == StmtKind::Forall || kind == StmtKind::Coforall) && accept(Tok::KwWith)) {
    expect(Tok::LParen, "after with");
    do {
      AggIntent intent;
      intent.loc = cur().loc;
      expect(Tok::KwVar, "in with clause");
      intent.name = expect(Tok::Ident, "aggregator name").text;
      expect(Tok::Assign, "in with clause");
      expect(Tok::KwNew, "in with clause");
      std::string ctor = expect(Tok::Ident, "aggregator type").text;
      if (ctor == "SrcAggregator") {
        intent.isSrc = true;
      } else if (ctor == "DstAggregator") {
        intent.isSrc = false;
      } else {
        error("expected SrcAggregator or DstAggregator");
      }
      // The element-type argument list is accepted and ignored: the
      // simulation is untyped, so `(int)` is documentation.
      if (accept(Tok::LParen)) {
        int depth = 1;
        while (depth > 0 && !check(Tok::Eof)) {
          if (check(Tok::LParen)) ++depth;
          else if (check(Tok::RParen)) --depth;
          if (depth > 0) advance();
        }
        expect(Tok::RParen, "to close aggregator arguments");
      }
      s->aggIntents.push_back(std::move(intent));
    } while (accept(Tok::Comma));
    expect(Tok::RParen, "to close with clause");
  }
  s->body = parseBlock();
  return s;
}

StmtPtr Parser::parseSimpleStmt() {
  SourceLoc loc = cur().loc;
  ExprPtr e = parseExpr();
  AssignOp op;
  switch (cur().kind) {
    case Tok::Assign: op = AssignOp::Plain; break;
    case Tok::PlusAssign: op = AssignOp::Add; break;
    case Tok::MinusAssign: op = AssignOp::Sub; break;
    case Tok::StarAssign: op = AssignOp::Mul; break;
    case Tok::SlashAssign: op = AssignOp::Div; break;
    default: {
      auto s = std::make_unique<Stmt>(StmtKind::ExprStmt, loc);
      s->expr = std::move(e);
      expect(Tok::Semi, "after expression statement");
      return s;
    }
  }
  advance();
  auto s = std::make_unique<Stmt>(StmtKind::Assign, loc);
  s->lhs = std::move(e);
  s->assignOp = op;
  s->rhs = parseExpr();
  expect(Tok::Semi, "after assignment");
  return s;
}

// ------------------------------------------------------------- expressions

ExprPtr Parser::parseExpr() { return parseOr(); }

ExprPtr Parser::parseOr() {
  ExprPtr e = parseAnd();
  while (check(Tok::OrOr)) {
    SourceLoc loc = advance().loc;
    auto b = std::make_unique<Expr>(ExprKind::Binary, loc);
    b->binOp = BinOp::Or;
    b->args.push_back(std::move(e));
    b->args.push_back(parseAnd());
    e = std::move(b);
  }
  return e;
}

ExprPtr Parser::parseAnd() {
  ExprPtr e = parseEquality();
  while (check(Tok::AndAnd)) {
    SourceLoc loc = advance().loc;
    auto b = std::make_unique<Expr>(ExprKind::Binary, loc);
    b->binOp = BinOp::And;
    b->args.push_back(std::move(e));
    b->args.push_back(parseEquality());
    e = std::move(b);
  }
  return e;
}

ExprPtr Parser::parseEquality() {
  ExprPtr e = parseComparison();
  while (check(Tok::EqEq) || check(Tok::NotEq)) {
    Tok k = cur().kind;
    SourceLoc loc = advance().loc;
    auto b = std::make_unique<Expr>(ExprKind::Binary, loc);
    b->binOp = (k == Tok::EqEq) ? BinOp::Eq : BinOp::Ne;
    b->args.push_back(std::move(e));
    b->args.push_back(parseComparison());
    e = std::move(b);
  }
  return e;
}

ExprPtr Parser::parseComparison() {
  ExprPtr e = parseRange();
  while (check(Tok::Lt) || check(Tok::Le) || check(Tok::Gt) || check(Tok::Ge)) {
    Tok k = cur().kind;
    SourceLoc loc = advance().loc;
    auto b = std::make_unique<Expr>(ExprKind::Binary, loc);
    b->binOp = (k == Tok::Lt) ? BinOp::Lt : (k == Tok::Le) ? BinOp::Le
             : (k == Tok::Gt) ? BinOp::Gt : BinOp::Ge;
    b->args.push_back(std::move(e));
    b->args.push_back(parseRange());
    e = std::move(b);
  }
  return e;
}

ExprPtr Parser::parseRange() {
  ExprPtr e = parseAdditive();
  if (check(Tok::DotDot)) {
    SourceLoc loc = advance().loc;
    auto r = std::make_unique<Expr>(ExprKind::Range, loc);
    r->counted = accept(Tok::Hash);
    r->args.push_back(std::move(e));
    r->args.push_back(parseAdditive());
    return r;
  }
  return e;
}

ExprPtr Parser::parseAdditive() {
  ExprPtr e = parseMultiplicative();
  while (check(Tok::Plus) || check(Tok::Minus)) {
    Tok k = cur().kind;
    SourceLoc loc = advance().loc;
    auto b = std::make_unique<Expr>(ExprKind::Binary, loc);
    b->binOp = (k == Tok::Plus) ? BinOp::Add : BinOp::Sub;
    b->args.push_back(std::move(e));
    b->args.push_back(parseMultiplicative());
    e = std::move(b);
  }
  return e;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr e = parsePower();
  while (check(Tok::Star) || check(Tok::Slash) || check(Tok::Percent)) {
    Tok k = cur().kind;
    SourceLoc loc = advance().loc;
    auto b = std::make_unique<Expr>(ExprKind::Binary, loc);
    b->binOp = (k == Tok::Star) ? BinOp::Mul : (k == Tok::Slash) ? BinOp::Div : BinOp::Mod;
    b->args.push_back(std::move(e));
    b->args.push_back(parsePower());
    e = std::move(b);
  }
  return e;
}

ExprPtr Parser::parsePower() {
  ExprPtr e = parseUnary();
  if (check(Tok::StarStar)) {
    SourceLoc loc = advance().loc;
    auto b = std::make_unique<Expr>(ExprKind::Binary, loc);
    b->binOp = BinOp::Pow;
    b->args.push_back(std::move(e));
    b->args.push_back(parsePower());  // right-associative
    return b;
  }
  return e;
}

ExprPtr Parser::parseUnary() {
  // Chapel reduction expressions: `+ reduce A`, `* reduce A`,
  // `min reduce A`, `max reduce A`.
  bool isReduce =
      (check(Tok::Plus) || check(Tok::Star)) ? peek(1).kind == Tok::KwReduce
      : (check(Tok::Ident) && (cur().text == "min" || cur().text == "max"))
          ? peek(1).kind == Tok::KwReduce
          : false;
  if (isReduce) {
    SourceLoc loc = cur().loc;
    auto r = std::make_unique<Expr>(ExprKind::Reduce, loc);
    if (check(Tok::Plus)) r->binOp = BinOp::Add;
    else if (check(Tok::Star)) r->binOp = BinOp::Mul;
    else r->strVal = cur().text;  // "min" / "max"
    advance();                    // the operator
    advance();                    // 'reduce'
    r->args.push_back(parseUnary());
    return r;
  }
  if (check(Tok::Minus) || check(Tok::Not)) {
    Tok k = cur().kind;
    SourceLoc loc = advance().loc;
    auto u = std::make_unique<Expr>(ExprKind::Unary, loc);
    u->unOp = (k == Tok::Minus) ? UnOp::Neg : UnOp::Not;
    u->args.push_back(parseUnary());
    return u;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr e = parsePrimary();
  for (;;) {
    if (check(Tok::LBracket)) {
      SourceLoc loc = advance().loc;
      auto idx = std::make_unique<Expr>(ExprKind::Index, loc);
      idx->args.push_back(std::move(e));
      do {
        idx->args.push_back(parseExpr());
      } while (accept(Tok::Comma));
      expect(Tok::RBracket, "to close index");
      e = std::move(idx);
    } else if (check(Tok::Dot)) {
      SourceLoc loc = advance().loc;
      std::string name = expect(Tok::Ident, "member name").text;
      if (check(Tok::LParen)) {
        advance();
        auto m = std::make_unique<Expr>(ExprKind::MethodCall, loc);
        m->strVal = std::move(name);
        m->args.push_back(std::move(e));
        if (!check(Tok::RParen)) {
          do {
            m->args.push_back(parseExpr());
          } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "to close method call");
        e = std::move(m);
      } else {
        auto f = std::make_unique<Expr>(ExprKind::Field, loc);
        f->strVal = std::move(name);
        f->args.push_back(std::move(e));
        e = std::move(f);
      }
    } else if (check(Tok::KwDmapped)) {
      // `{0..#n} dmapped Block` / `D dmapped Cyclic` — distribution postfix.
      SourceLoc loc = advance().loc;
      auto d = std::make_unique<Expr>(ExprKind::Dmapped, loc);
      d->strVal = expect(Tok::Ident, "distribution name after 'dmapped'").text;
      // Accept Chapel-flavoured constructor syntax: `dmapped Block(boundingBox=...)`
      // — the argument list is descriptive only and is skipped.
      if (accept(Tok::LParen)) {
        int depth = 1;
        while (depth > 0 && !check(Tok::Eof)) {
          if (check(Tok::LParen)) ++depth;
          else if (check(Tok::RParen)) --depth;
          if (depth > 0) advance();
        }
        expect(Tok::RParen, "to close dmapped arguments");
      }
      d->args.push_back(std::move(e));
      e = std::move(d);
    } else if (check(Tok::LParen) && e->kind == ExprKind::Ident) {
      // Call — or tuple indexing `t(1)`, disambiguated during lowering.
      SourceLoc loc = advance().loc;
      auto c = std::make_unique<Expr>(ExprKind::Call, loc);
      c->strVal = e->strVal;
      if (!check(Tok::RParen)) {
        do {
          c->args.push_back(parseExpr());
        } while (accept(Tok::Comma));
      }
      expect(Tok::RParen, "to close call");
      e = std::move(c);
    } else if (check(Tok::LParen) &&
               (e->kind == ExprKind::Index || e->kind == ExprKind::Field ||
                e->kind == ExprKind::TupleIndex || e->kind == ExprKind::Call)) {
      // Postfix tuple indexing on a compound expression: `Pos[b][i](1)`,
      // `hourgam(j)(i)` (tuple-of-tuples).
      SourceLoc loc = advance().loc;
      auto t = std::make_unique<Expr>(ExprKind::TupleIndex, loc);
      t->args.push_back(std::move(e));
      t->args.push_back(parseExpr());
      expect(Tok::RParen, "to close tuple index");
      e = std::move(t);
    } else {
      return e;
    }
  }
}

ExprPtr Parser::parsePrimary() {
  SourceLoc loc = cur().loc;
  switch (cur().kind) {
    case Tok::IntLit: {
      auto e = std::make_unique<Expr>(ExprKind::IntLit, loc);
      e->intVal = advance().intVal;
      return e;
    }
    case Tok::RealLit: {
      auto e = std::make_unique<Expr>(ExprKind::RealLit, loc);
      e->realVal = advance().realVal;
      return e;
    }
    case Tok::StringLit: {
      auto e = std::make_unique<Expr>(ExprKind::StringLit, loc);
      e->strVal = advance().text;
      return e;
    }
    case Tok::KwTrue:
    case Tok::KwFalse: {
      auto e = std::make_unique<Expr>(ExprKind::BoolLit, loc);
      e->boolVal = (advance().kind == Tok::KwTrue);
      return e;
    }
    case Tok::Ident: {
      auto e = std::make_unique<Expr>(ExprKind::Ident, loc);
      e->strVal = advance().text;
      return e;
    }
    case Tok::LParen: {
      advance();
      ExprPtr first = parseExpr();
      if (accept(Tok::RParen)) return first;  // parenthesized expression
      auto t = std::make_unique<Expr>(ExprKind::TupleLit, loc);
      t->args.push_back(std::move(first));
      while (accept(Tok::Comma)) t->args.push_back(parseExpr());
      expect(Tok::RParen, "to close tuple literal");
      return t;
    }
    case Tok::LBrace: {
      advance();
      auto d = std::make_unique<Expr>(ExprKind::DomainLit, loc);
      do {
        d->args.push_back(parseExpr());
      } while (accept(Tok::Comma));
      expect(Tok::RBrace, "to close domain literal");
      return d;
    }
    default:
      error("expected an expression");
      advance();
      return std::make_unique<Expr>(ExprKind::IntLit, loc);
  }
}

}  // namespace cb::fe
