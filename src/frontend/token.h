// Token definitions for the mini-Chapel lexer.
#pragma once

#include <cstdint>
#include <string>

#include "support/source_manager.h"

namespace cb::fe {

enum class Tok : uint8_t {
  Eof,
  Ident,
  IntLit,
  RealLit,
  StringLit,

  // Keywords.
  KwConfig, KwConst, KwVar, KwRecord, KwProc, KwRef, KwIn, KwIf, KwThen,
  KwElse, KwWhile, KwFor, KwForall, KwCoforall, KwParam, KwReturn, KwZip,
  KwTrue, KwFalse, KwDomain, KwUse, KwType, KwReduce, KwSelect, KwWhen, KwOtherwise,
  KwOn, KwDmapped, KwWith, KwNew,

  // Punctuation / operators.
  LBrace, RBrace, LParen, RParen, LBracket, RBracket,
  Comma, Semi, Colon, Dot, DotDot, Hash, Arrow,      // Arrow: "=>"
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
  Plus, Minus, Star, Slash, Percent, StarStar,
  EqEq, NotEq, Lt, Le, Gt, Ge, AndAnd, OrOr, Not,
};

struct Token {
  Tok kind = Tok::Eof;
  SourceLoc loc;
  std::string text;   // identifier / string literal contents
  int64_t intVal = 0;
  double realVal = 0;
};

const char* tokName(Tok t);

}  // namespace cb::fe
