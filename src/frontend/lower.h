// AST -> CIR lowering.
//
// Produces clang -O0-shaped IR: every user variable is an alloca (or module
// global) with a DebugVar record; forall/coforall bodies are outlined into
// task functions (the analogue of Chapel's coforall_fn_chplNN) that receive
// a [lo, hi] index range plus one ref parameter per captured variable —
// which is precisely what makes interprocedural blame transfer and spawn
// gluing work downstream.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "frontend/ast.h"
#include "ir/builder.h"
#include "ir/module.h"
#include "support/diagnostics.h"

namespace cb::fe {

class Lowerer {
 public:
  Lowerer(const Program& prog, ir::Module& mod, DiagnosticEngine& diags);

  /// Lowers the whole program. Returns false if any error was diagnosed.
  bool run();

 private:
  // ---- per-function lowering context -----------------------------------
  struct Binding {
    enum class Kind {
      VarAddr,   // addr is a Ref(T)-typed ValueRef (alloca / ref arg / global)
      ConstVal,  // compile-time value (param-loop index)
      Value,     // run-time value binding (read-only, e.g. zip index value)
    };
    Kind kind = Kind::VarAddr;
    ir::ValueRef ref;    // address (VarAddr) or value (ConstVal/Value)
    ir::TypeId type = ir::kInvalidType;  // pointee type (VarAddr) / value type
  };
  using Scope = std::unordered_map<std::string, Binding>;

  struct FnCtx {
    ir::Function fn;        // built locally, moved into the module at the end
    ir::FuncId fid = ir::kNone;
    std::unique_ptr<ir::IRBuilder> builder;
    std::vector<Scope> scopes;
    ir::TypeId retTy = ir::kInvalidType;
  };

  // ---- phases -----------------------------------------------------------
  void registerRecord(const RecordDecl& r);
  void processGlobal(const GlobalDecl& g);
  void declareProcSignature(const ProcDecl& p);
  void lowerProcBody(const ProcDecl& p);

  // ---- context helpers --------------------------------------------------
  FnCtx& ctx() { return *ctxStack_.back(); }
  ir::IRBuilder& b() { return *ctx().builder; }
  void pushFnCtx(ir::FuncId fid, ir::Function shell);
  void popFnCtxAndCommit();
  void pushScope() { ctx().scopes.emplace_back(); }
  void popScope() { ctx().scopes.pop_back(); }
  Binding* lookup(const std::string& name);
  void bind(const std::string& name, Binding bind);

  // ---- types ------------------------------------------------------------
  ir::TypeId resolveTypeForSignature(const TypeExpr& t);
  uint32_t syntacticDomainRank(const Expr& e);
  std::string typeDisplayOf(const TypeExpr& t);

  // ---- declarations / debug info ----------------------------------------
  ir::DebugVarId makeDebugVar(const std::string& name, ir::TypeId ty, ir::VarKind kind,
                              SourceLoc loc, ir::FuncId scope);
  ir::DebugVarId makeTempVar(const std::string& hint, ir::TypeId ty, SourceLoc loc);

  // ---- statements -------------------------------------------------------
  void lowerStmts(const std::vector<StmtPtr>& body);
  void lowerStmt(const Stmt& s);
  void lowerDeclVar(const Stmt& s);
  void lowerAssign(const Stmt& s);
  void lowerIf(const Stmt& s);
  void lowerWhile(const Stmt& s);
  void lowerFor(const Stmt& s);
  void lowerForParam(const Stmt& s);
  void lowerParallel(const Stmt& s);  // forall / coforall
  void lowerSelect(const Stmt& s);
  void lowerReturn(const Stmt& s);
  void lowerOn(const Stmt& s);

  // Loop plumbing shared between sequential and outlined loops.
  struct IterInfo {
    enum class Kind { Range, Domain1D, Domain2D, Array } kind = Kind::Range;
    ir::ValueRef value;           // domain or array value (if applicable)
    ir::ValueRef lo, hi;          // linear bounds (inclusive)
    ir::TypeId type = ir::kInvalidType;  // array type for Kind::Array
  };
  IterInfo classifyIterand(const Expr& e);
  /// Binds one loop index name for iterand `info` given the current linear
  /// index value `idx` (emits element-addressing for arrays, (i,j)
  /// reconstruction for 2-D domains).
  void bindLoopIndex(const std::string& name, const IterInfo& info, ir::ValueRef idx,
                     SourceLoc loc);
  /// Emits a sequential `for idx in lo..hi` skeleton around `emitBody(idxVal)`.
  template <typename F>
  void emitCountedLoop(ir::ValueRef lo, ir::ValueRef hi, SourceLoc loc, F emitBody);

  /// For `var A: [D] [P] T;` declarations: allocates one inner array per
  /// element of the freshly-created outer array (recursively). `elemTE` is
  /// the syntactic element type (aliases are resolved here).
  void initNestedArrayElems(ir::ValueRef arrValue, ir::TypeId arrTy, const TypeExpr& elemTE,
                            SourceLoc loc);

  // Free-variable analysis for outlining.
  void collectFreeVarsStmt(const Stmt& s, std::set<std::string>& bound,
                           std::vector<std::string>& out);
  void collectFreeVarsExpr(const Expr& e, std::set<std::string>& bound,
                           std::vector<std::string>& out);

  // ---- expressions ------------------------------------------------------
  struct TypedValue {
    ir::ValueRef v;
    ir::TypeId type = ir::kInvalidType;
  };
  struct LValue {
    ir::ValueRef addr;                    // Ref(T)-typed
    ir::TypeId type = ir::kInvalidType;   // T
    bool valid = false;
  };
  TypedValue lowerExpr(const Expr& e);
  LValue lowerLValue(const Expr& e);
  /// True when the expression denotes an addressable location (so field and
  /// element reads can go through FieldAddr/IndexAddr instead of copying
  /// whole aggregates — required for blame-chain resolution).
  bool isLValueExpr(const Expr& e);
  TypedValue lowerBinary(const Expr& e);
  TypedValue lowerCall(const Expr& e);
  TypedValue lowerMethodCall(const Expr& e);
  /// One `agg.copy(dst, src)` against an active aggregator intent: the
  /// remote leg is lowered as (array value, index value) operands so the
  /// engines can buffer it instead of charging the naive per-element
  /// latency through IndexAddr.
  struct AggBinding {
    ir::ValueRef slot;      // alloca holding the AggOpen handle
    bool isSrc = true;
    size_t ctxDepth = 0;    // ctxStack_ depth of the owning task function
  };
  TypedValue lowerAggCopy(const Expr& e, const AggBinding& ab);
  TypedValue lowerIndexExpr(const Expr& e);
  /// Inserts int->real conversion when needed; diagnoses other mismatches.
  ir::ValueRef coerce(TypedValue v, ir::TypeId want, SourceLoc loc);
  TypedValue makeError(SourceLoc loc);

  // Tuple element-wise arithmetic (the CENN cost story: TupleGet xN, op xN,
  // TupleMake).
  TypedValue tupleElementwise(BinOp op, TypedValue a, TypedValue b, SourceLoc loc);

  ir::BinKind toIrBin(BinOp op) const;

  /// Compile-time integer value of an expression (literal or `for param`
  /// index), or INT64_MIN when not statically known.
  int64_t constIntOf(const Expr& e);

  /// Emits the default value for a type (zeros, recursively for tuples,
  /// RecordNew for records). Returns none() for types without an emittable
  /// default (arrays/domains).
  ir::ValueRef emitDefaultValue(ir::TypeId ty);

  void error(SourceLoc loc, const std::string& msg) { diags_.error(loc, msg); }

  // ---- members ----------------------------------------------------------
  const Program& prog_;
  ir::Module& mod_;
  DiagnosticEngine& diags_;

  std::unordered_map<std::string, ir::GlobalId> globalsByName_;
  std::unordered_map<std::string, ir::FuncId> procsByName_;
  std::unordered_map<std::string, const RecordDecl*> recordAst_;
  std::unordered_map<std::string, const TypeExpr*> typeAliases_;

  std::vector<std::unique_ptr<FnCtx>> ctxStack_;
  /// Aggregator intents currently in scope (name -> handle binding); keyed
  /// per name with shadowing handled by save/restore in lowerParallel.
  std::unordered_map<std::string, AggBinding> aggBindings_;
  uint32_t tempCounter_ = 0;
  uint32_t taskFnCounter_ = 0;
};

}  // namespace cb::fe
