#include "frontend/compiler.h"

#include "frontend/lexer.h"
#include "frontend/lower.h"
#include "frontend/parser.h"
#include "frontend/passes.h"
#include "ir/verifier.h"

namespace cb::fe {

Compilation::Compilation(const CompileOptions& opts) : opts_(opts), diags_(sm_) {}

std::unique_ptr<Compilation> Compilation::fromString(const std::string& name,
                                                     const std::string& source,
                                                     const CompileOptions& opts) {
  auto c = std::unique_ptr<Compilation>(new Compilation(opts));
  uint32_t file = c->sm_.addBuffer(name, source);
  c->compileBuffer(file);
  return c;
}

std::unique_ptr<Compilation> Compilation::fromFile(const std::string& path,
                                                   const CompileOptions& opts) {
  auto c = std::unique_ptr<Compilation>(new Compilation(opts));
  auto file = c->sm_.addFile(path);
  if (!file) {
    c->diags_.error(SourceLoc{}, "cannot open '" + path + "'");
    return c;
  }
  c->compileBuffer(*file);
  return c;
}

void Compilation::compileBuffer(uint32_t file) {
  Lexer lexer(sm_, file, diags_);
  std::vector<Token> tokens = lexer.lexAll();
  if (diags_.hasErrors()) return;

  Parser parser(std::move(tokens), diags_, file);
  Program prog = parser.parseProgram();
  if (diags_.hasErrors()) return;

  module_ = std::make_unique<ir::Module>(interner_, sm_);
  Lowerer lowerer(prog, *module_, diags_);
  if (!lowerer.run()) return;

  if (opts_.fast) runFastPipeline(*module_);
  markIndexStores(*module_);
  markLoopInductionAllocas(*module_);

  if (opts_.verify) {
    auto errs = ir::verifyModule(*module_);
    for (const auto& e : errs) diags_.error(SourceLoc{}, "IR verifier: " + e);
    if (!errs.empty()) return;
  }
  ok_ = true;
}

}  // namespace cb::fe
