#include "frontend/passes.h"

#include <cmath>
#include <map>
#include <optional>
#include <vector>

#include "support/common.h"

namespace cb::fe {

using ir::BinKind;
using ir::Function;
using ir::Instr;
using ir::InstrId;
using ir::Module;
using ir::Opcode;
using ir::TypeKind;
using ir::UnKind;
using ir::ValueRef;

namespace {

bool isConst(const ValueRef& v) {
  return v.kind == ValueRef::Kind::ConstInt || v.kind == ValueRef::Kind::ConstReal ||
         v.kind == ValueRef::Kind::ConstBool;
}

std::optional<ValueRef> foldBin(const Module& m, const Instr& in) {
  const ValueRef& a = in.ops[0];
  const ValueRef& b = in.ops[1];
  if (!isConst(a) || !isConst(b)) return std::nullopt;
  TypeKind rk = m.types().kindOf(in.type);
  auto asReal = [](const ValueRef& v) {
    return v.kind == ValueRef::Kind::ConstReal ? v.r : static_cast<double>(v.i);
  };
  if (rk == TypeKind::Int && a.kind == ValueRef::Kind::ConstInt &&
      b.kind == ValueRef::Kind::ConstInt) {
    int64_t x = a.i, y = b.i;
    switch (in.extra.bin) {
      case BinKind::Add: return ValueRef::makeInt(x + y);
      case BinKind::Sub: return ValueRef::makeInt(x - y);
      case BinKind::Mul: return ValueRef::makeInt(x * y);
      case BinKind::Div: return y == 0 ? std::nullopt : std::optional(ValueRef::makeInt(x / y));
      case BinKind::Mod: return y == 0 ? std::nullopt : std::optional(ValueRef::makeInt(x % y));
      case BinKind::Min: return ValueRef::makeInt(x < y ? x : y);
      case BinKind::Max: return ValueRef::makeInt(x > y ? x : y);
      default: return std::nullopt;
    }
  }
  if (rk == TypeKind::Real) {
    double x = asReal(a), y = asReal(b);
    switch (in.extra.bin) {
      case BinKind::Add: return ValueRef::makeReal(x + y);
      case BinKind::Sub: return ValueRef::makeReal(x - y);
      case BinKind::Mul: return ValueRef::makeReal(x * y);
      case BinKind::Div: return ValueRef::makeReal(x / y);
      case BinKind::Pow: return ValueRef::makeReal(std::pow(x, y));
      case BinKind::Min: return ValueRef::makeReal(x < y ? x : y);
      case BinKind::Max: return ValueRef::makeReal(x > y ? x : y);
      default: return std::nullopt;
    }
  }
  if (rk == TypeKind::Bool) {
    if (a.kind == ValueRef::Kind::ConstBool && b.kind == ValueRef::Kind::ConstBool) {
      switch (in.extra.bin) {
        case BinKind::And: return ValueRef::makeBool(a.b && b.b);
        case BinKind::Or: return ValueRef::makeBool(a.b || b.b);
        case BinKind::Eq: return ValueRef::makeBool(a.b == b.b);
        case BinKind::Ne: return ValueRef::makeBool(a.b != b.b);
        default: return std::nullopt;
      }
    }
    double x = asReal(a), y = asReal(b);
    switch (in.extra.bin) {
      case BinKind::Eq: return ValueRef::makeBool(x == y);
      case BinKind::Ne: return ValueRef::makeBool(x != y);
      case BinKind::Lt: return ValueRef::makeBool(x < y);
      case BinKind::Le: return ValueRef::makeBool(x <= y);
      case BinKind::Gt: return ValueRef::makeBool(x > y);
      case BinKind::Ge: return ValueRef::makeBool(x >= y);
      default: return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<ValueRef> foldUn(const Instr& in) {
  const ValueRef& v = in.ops[0];
  if (!isConst(v)) return std::nullopt;
  switch (in.extra.un) {
    case UnKind::Neg:
      if (v.kind == ValueRef::Kind::ConstInt) return ValueRef::makeInt(-v.i);
      if (v.kind == ValueRef::Kind::ConstReal) return ValueRef::makeReal(-v.r);
      return std::nullopt;
    case UnKind::Not:
      if (v.kind == ValueRef::Kind::ConstBool) return ValueRef::makeBool(!v.b);
      return std::nullopt;
    case UnKind::IntToReal:
      if (v.kind == ValueRef::Kind::ConstInt)
        return ValueRef::makeReal(static_cast<double>(v.i));
      return std::nullopt;
    case UnKind::Sqrt:
      if (v.kind == ValueRef::Kind::ConstReal) return ValueRef::makeReal(std::sqrt(v.r));
      return std::nullopt;
    case UnKind::Abs:
      if (v.kind == ValueRef::Kind::ConstInt) return ValueRef::makeInt(std::abs(v.i));
      if (v.kind == ValueRef::Kind::ConstReal) return ValueRef::makeReal(std::fabs(v.r));
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

bool hasSideEffects(const Instr& in) {
  switch (in.op) {
    case Opcode::Store:
    case Opcode::Call:
    case Opcode::Spawn:
    case Opcode::Builtin:
    case Opcode::Ret:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::IterOverhead:
    case Opcode::ArrayNew:   // allocation is observable (cost + identity)
    case Opcode::Alloca:     // address identity matters for blame analysis
      return true;
    default:
      return false;
  }
}

/// Rebuilds a function's instruction vector keeping only instructions in
/// `keep`, remapping register operands. Block structure is preserved.
void compactFunction(Function& fn, const std::vector<bool>& keep) {
  std::vector<InstrId> remap(fn.instrs.size(), ir::kNone);
  std::vector<Instr> newInstrs;
  newInstrs.reserve(fn.instrs.size());
  for (InstrId i = 0; i < fn.instrs.size(); ++i) {
    if (!keep[i]) continue;
    remap[i] = static_cast<InstrId>(newInstrs.size());
    newInstrs.push_back(std::move(fn.instrs[i]));
  }
  for (Instr& in : newInstrs) {
    for (ValueRef& v : in.ops) {
      if (v.kind == ValueRef::Kind::Reg) {
        CB_ASSERT(remap[v.reg] != ir::kNone, "operand of kept instr was removed");
        v.reg = remap[v.reg];
      }
    }
  }
  for (ir::BasicBlock& bb : fn.blocks) {
    std::vector<InstrId> ids;
    ids.reserve(bb.instrs.size());
    for (InstrId id : bb.instrs)
      if (remap[id] != ir::kNone) ids.push_back(remap[id]);
    bb.instrs = std::move(ids);
  }
  fn.instrs = std::move(newInstrs);
}

}  // namespace

size_t constantFold(Module& m) {
  size_t folded = 0;
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    Function& fn = m.function(f);
    // Map: register -> folded constant.
    std::vector<std::optional<ValueRef>> constOf(fn.instrs.size());
    for (InstrId i = 0; i < fn.instrs.size(); ++i) {
      Instr& in = fn.instrs[i];
      // Propagate known constants into operands first.
      for (ValueRef& v : in.ops) {
        if (v.kind == ValueRef::Kind::Reg && constOf[v.reg]) v = *constOf[v.reg];
      }
      std::optional<ValueRef> c;
      if (in.op == Opcode::Bin) c = foldBin(m, in);
      else if (in.op == Opcode::Un) c = foldUn(in);
      else if (in.op == Opcode::TupleGet && in.ops[0].kind == ValueRef::Kind::Reg) {
        const Instr& def = fn.instrs[in.ops[0].reg];
        if (def.op == Opcode::TupleMake && in.imm < def.ops.size() && isConst(def.ops[in.imm]))
          c = def.ops[in.imm];
      }
      if (c) {
        constOf[i] = c;
        ++folded;
      }
    }
  }
  return folded;
}

size_t deadCodeElim(Module& m) {
  size_t removed = 0;
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    Function& fn = m.function(f);
    std::vector<uint32_t> uses(fn.instrs.size(), 0);
    for (const Instr& in : fn.instrs)
      for (const ValueRef& v : in.ops)
        if (v.kind == ValueRef::Kind::Reg) ++uses[v.reg];
    // Iterate to fixpoint within the function (removing a use may free its
    // operands).
    bool changed = true;
    std::vector<bool> keep(fn.instrs.size(), true);
    while (changed) {
      changed = false;
      for (InstrId i = 0; i < fn.instrs.size(); ++i) {
        if (!keep[i] || hasSideEffects(fn.instrs[i]) || uses[i] > 0) continue;
        keep[i] = false;
        changed = true;
        ++removed;
        for (const ValueRef& v : fn.instrs[i].ops)
          if (v.kind == ValueRef::Kind::Reg) --uses[v.reg];
      }
    }
    compactFunction(fn, keep);
  }
  return removed;
}

size_t forwardLoads(Module& m) {
  size_t forwarded = 0;
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    Function& fn = m.function(f);

    // Only provably non-aliased scalar slots are tracked: a scalar alloca's
    // address can never be reconstructed through a Field/Index chain, and a
    // scalar global is only reachable via its GlobalAddr. Aggregate slots
    // (records, tuples, array handles) can be written through derived
    // addresses, so forwarding them is unsound.
    auto trackable = [&](const ValueRef& addr) -> bool {
      if (addr.kind == ValueRef::Kind::GlobalAddr)
        return m.types().isScalar(m.global(addr.global).type);
      if (addr.kind == ValueRef::Kind::Reg && fn.instrs[addr.reg].op == Opcode::Alloca)
        return m.types().isScalar(m.types().pointee(fn.instrs[addr.reg].type));
      return false;
    };

    for (ir::BasicBlock& bb : fn.blocks) {
      std::vector<std::pair<ValueRef, ValueRef>> known;  // (addr, value)
      auto findKnown = [&](const ValueRef& addr) -> ValueRef* {
        for (auto& [a, v] : known) {
          if (a.kind != addr.kind) continue;
          if (a.kind == ValueRef::Kind::Reg && a.reg == addr.reg) return &v;
          if (a.kind == ValueRef::Kind::GlobalAddr && a.global == addr.global) return &v;
        }
        return nullptr;
      };
      std::vector<std::optional<ValueRef>> replaceWith(fn.instrs.size());
      for (InstrId id : bb.instrs) {
        Instr& in = fn.instrs[id];
        for (ValueRef& v : in.ops)
          if (v.kind == ValueRef::Kind::Reg && replaceWith[v.reg]) v = *replaceWith[v.reg];
        switch (in.op) {
          case Opcode::Store: {
            if (!trackable(in.ops[1])) {
              // A store through an unknown address (ref formal, element or
              // field chain) may alias any global — drop global knowledge.
              std::erase_if(known, [](const auto& kv) {
                return kv.first.kind == ValueRef::Kind::GlobalAddr;
              });
              break;
            }
            if (ValueRef* slot = findKnown(in.ops[1])) *slot = in.ops[0];
            else known.emplace_back(in.ops[1], in.ops[0]);
            break;
          }
          case Opcode::Load: {
            if (!trackable(in.ops[0])) break;
            if (ValueRef* slot = findKnown(in.ops[0])) {
              replaceWith[id] = *slot;
              ++forwarded;
            }
            break;
          }
          case Opcode::Call:
          case Opcode::Spawn:
          case Opcode::Builtin:
            known.clear();  // conservatively invalidate across side effects
            break;
          default:
            break;
        }
      }
    }
  }
  return forwarded;
}

void stripDebugInfo(Module& m) {
  for (uint32_t i = 0; i < m.numDebugVars(); ++i) {
    ir::DebugVar& dv = m.debugVar(i);
    dv.kind = ir::VarKind::Temp;
    dv.name = m.interner().intern("_opt" + std::to_string(i));
  }
  m.debugInfoStripped = true;
}

size_t markIndexStores(Module& m) {
  size_t marked = 0;
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    Function& fn = m.function(f);
    for (const Instr& in : fn.instrs) {
      if (in.op != Opcode::Store) continue;
      const ValueRef& addr = in.ops[1];
      if (addr.kind != ValueRef::Kind::Reg) continue;
      Instr& def = fn.instrs[addr.reg];
      if (def.op == Opcode::IndexAddr && (def.imm & 2) == 0) {
        def.imm |= 2;
        ++marked;
      }
    }
  }
  return marked;
}

size_t markLoopInductionAllocas(Module& m) {
  size_t marked = 0;
  for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
    Function& fn = m.function(f);
    // Stores per alloca register.
    std::map<InstrId, std::vector<const Instr*>> stores;
    for (const Instr& in : fn.instrs) {
      if (in.op != Opcode::Store) continue;
      const ValueRef& addr = in.ops[1];
      if (addr.kind != ValueRef::Kind::Reg) continue;
      if (fn.instrs[addr.reg].op == Opcode::Alloca) stores[addr.reg].push_back(&in);
    }
    for (const auto& [id, sts] : stores) {
      if (sts.size() != 2) continue;
      auto selfStep = [&](const Instr* st) {
        const ValueRef& val = st->ops[0];
        if (val.kind != ValueRef::Kind::Reg) return false;
        const Instr& d = fn.instrs[val.reg];
        if (d.op != Opcode::Bin ||
            (d.extra.bin != BinKind::Add && d.extra.bin != BinKind::Sub))
          return false;
        for (const ValueRef& o : d.ops) {
          if (o.kind != ValueRef::Kind::Reg) continue;
          const Instr& ld = fn.instrs[o.reg];
          if (ld.op == Opcode::Load && ld.ops[0].kind == ValueRef::Kind::Reg &&
              ld.ops[0].reg == id)
            return true;
        }
        return false;
      };
      // Exactly one initializer and one self-increment: the lowered shape of
      // every counted-loop induction variable.
      if (selfStep(sts[0]) != selfStep(sts[1])) {
        Instr& al = fn.instrs[id];
        if (!(al.imm & 1)) {
          al.imm |= 1;
          ++marked;
        }
      }
    }
    // Derived copies: `for i in lo..hi` lowers to a hidden marked counter
    // plus one per-iteration store into the user variable `i`, and nested
    // bounds like `lo = l * chunk` chain further. Propagate the bit through
    // single-store allocas whose value is an affine expression walking a
    // marked alloca, to a fixpoint.
    auto walksInduction = [&](auto&& self, const ValueRef& v, int depth) -> bool {
      if (depth > 8 || v.kind != ValueRef::Kind::Reg) return false;
      const Instr& d = fn.instrs[v.reg];
      switch (d.op) {
        case Opcode::Load:
          return d.ops[0].kind == ValueRef::Kind::Reg &&
                 fn.instrs[d.ops[0].reg].op == Opcode::Alloca &&
                 (fn.instrs[d.ops[0].reg].imm & 1);
        case Opcode::Bin:
          if (d.extra.bin != BinKind::Add && d.extra.bin != BinKind::Sub &&
              d.extra.bin != BinKind::Mul)
            return false;
          return self(self, d.ops[0], depth + 1) || self(self, d.ops[1], depth + 1);
        case Opcode::Un:
          return self(self, d.ops[0], depth + 1);
        default:
          return false;
      }
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [id, sts] : stores) {
        Instr& al = fn.instrs[id];
        if ((al.imm & 1) || sts.size() != 1) continue;
        if (walksInduction(walksInduction, sts[0]->ops[0], 0)) {
          al.imm |= 1;
          ++marked;
          changed = true;
        }
      }
    }
  }
  return marked;
}

void runFastPipeline(Module& m) {
  for (int round = 0; round < 4; ++round) {
    size_t changed = constantFold(m);
    changed += forwardLoads(m);
    changed += deadCodeElim(m);
    if (changed == 0) break;
  }
  stripDebugInfo(m);
}

}  // namespace cb::fe
