// Recursive-descent parser for mini-Chapel.
#pragma once

#include <vector>

#include "frontend/ast.h"
#include "frontend/token.h"
#include "support/diagnostics.h"

namespace cb::fe {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags, uint32_t file)
      : toks_(std::move(tokens)), diags_(diags), file_(file) {}

  /// Parses a whole translation unit. Errors are reported to the diagnostic
  /// engine; the returned Program is best-effort on error.
  Program parseProgram();

 private:
  // Token stream helpers.
  const Token& peek(size_t ahead = 0) const;
  const Token& cur() const { return peek(); }
  Token advance();
  bool check(Tok k) const { return cur().kind == k; }
  bool accept(Tok k);
  Token expect(Tok k, const char* what);
  void error(const char* msg);
  void syncToDeclOrSemi();

  // Declarations.
  RecordDecl parseRecord();
  ProcDecl parseProc();
  GlobalDecl parseGlobal(bool isConfig);

  // Types.
  TypeExprPtr parseType();

  // Statements.
  StmtPtr parseStmt();
  std::vector<StmtPtr> parseBlock();
  StmtPtr parseDeclVar(bool isConst);
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseForLike(StmtKind kind);
  LoopHead parseLoopHead();
  StmtPtr parseSimpleStmt();  // assignment / expression statement

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseEquality();
  ExprPtr parseComparison();
  ExprPtr parseRange();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parsePower();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  std::vector<Token> toks_;
  size_t pos_ = 0;
  DiagnosticEngine& diags_;
  uint32_t file_;
};

}  // namespace cb::fe
