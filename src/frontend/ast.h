// Mini-Chapel abstract syntax tree.
//
// Fat-node representation: one Expr struct and one Stmt struct, each with a
// kind tag and only the fields that kind uses. Nodes are arena-owned by the
// Program. This keeps the frontend small while covering every construct the
// paper's case studies need (domains, records, tuples, zippered forall,
// `for param` unrolling, array aliases).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "frontend/token.h"
#include "support/source_manager.h"

namespace cb::fe {

struct Expr;
struct Stmt;
struct TypeExpr;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;
using TypeExprPtr = std::unique_ptr<TypeExpr>;

// ---------------------------------------------------------------- TypeExpr

enum class TypeExprKind {
  Named,    // int, real, bool, string, or a record name
  HomTuple, // N * T
  Tuple,    // (T1, T2, ...)
  Array,    // [domainExpr] T   — the domain expression is evaluated at decl
  Domain,   // domain(rank)
};

struct TypeExpr {
  TypeExprKind kind = TypeExprKind::Named;
  SourceLoc loc;
  std::string name;                 // Named
  uint32_t tupleArity = 0;          // HomTuple
  TypeExprPtr elem;                 // HomTuple / Array element
  std::vector<TypeExprPtr> elems;   // Tuple
  ExprPtr domainExpr;               // Array
  uint32_t rank = 1;                // Domain
};

// -------------------------------------------------------------------- Expr

enum class ExprKind {
  IntLit, RealLit, BoolLit, StringLit,
  Ident,
  Binary,        // binOp, args[0], args[1]
  Unary,         // unOp, args[0]
  Call,          // callee name + args (procs, builtins, tuple indexing —
                 // disambiguated during lowering)
  Index,         // args[0] = base, args[1..] = indices (also array slices /
                 // domain remaps when the index is a domain)
  Field,         // args[0] = base, name = field
  MethodCall,    // args[0] = base, name = method, args[1..] = call args
  TupleLit,      // args = elements
  TupleIndex,    // args[0] = base expr, args[1] = 1-based index
  Range,         // args[0] = lo, args[1] = hi-or-count; counted == `lo..#n`
  DomainLit,     // args = ranges (rank = args.size())
  Reduce,        // Chapel reduction: `+ reduce A`; binOp in {Add,Mul} or
                 // min/max via strVal; args[0] = the reduced array
  Dmapped,       // `domainExpr dmapped Block|Cyclic`; args[0] = base domain,
                 // strVal = distribution name
};

enum class BinOp { Add, Sub, Mul, Div, Mod, Pow, Eq, Ne, Lt, Le, Gt, Ge, And, Or };
enum class UnOp { Neg, Not };

struct Expr {
  ExprKind kind;
  SourceLoc loc;
  int64_t intVal = 0;
  double realVal = 0;
  bool boolVal = false;
  std::string strVal;     // Ident / Call / Field / MethodCall name, string lit
  BinOp binOp = BinOp::Add;
  UnOp unOp = UnOp::Neg;
  bool counted = false;   // Range: `lo..#n`
  std::vector<ExprPtr> args;

  explicit Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}
};

// -------------------------------------------------------------------- Stmt

enum class StmtKind {
  Block,
  DeclVar,     // var/const name [: type] [= init] — or alias `var a => expr;`
  Assign,      // lhs (op)= rhs
  ExprStmt,
  If,
  While,
  For,         // sequential loop; indexNames over iterands (zip if >1 iterand)
  ForParam,    // compile-time unrolled loop over a literal range
  Forall,      // data-parallel loop (chunked over workers)
  Coforall,    // one task per index
  Select,      // select expr { when v1, v2 { } ... otherwise { } }
  Return,
  On,          // `on Locales[e] { }` — expr = target locale, body = block
};

enum class AssignOp { Plain, Add, Sub, Mul, Div };

struct LoopHead {
  std::vector<std::string> indexNames;  // 1 for `i`, n for `(i,j)` / zip refs
  std::vector<ExprPtr> iterands;        // >1 means zip(...)
  bool zipped = false;
};

/// A simulated aggregator task intent on a forall/coforall:
///   `with (var agg = new SrcAggregator(int), ...)`.
/// Each intent gives every task a private buffered-copy channel; the body
/// issues `agg.copy(dst, src)` calls against it.
struct AggIntent {
  std::string name;   // the per-task binding, e.g. `agg`
  bool isSrc = true;  // SrcAggregator (remote reads) vs DstAggregator (writes)
  SourceLoc loc;
};

struct WhenClause {
  std::vector<ExprPtr> values;  // the `when v1, v2` match values
  std::vector<StmtPtr> body;
  SourceLoc loc;
};

struct Stmt {
  StmtKind kind;
  SourceLoc loc;

  std::vector<StmtPtr> body;      // Block / loop bodies / If-then
  std::vector<StmtPtr> elseBody;  // If-else / Select-otherwise
  std::vector<WhenClause> whens;  // Select

  // DeclVar.
  std::string name;
  bool isConst = false;
  bool isAlias = false;           // `var a => expr;` array alias
  TypeExprPtr declType;
  ExprPtr init;

  // Assign.
  ExprPtr lhs;
  AssignOp assignOp = AssignOp::Plain;
  ExprPtr rhs;

  // ExprStmt / Return / If / While condition.
  ExprPtr expr;

  // Loops.
  LoopHead head;
  std::vector<AggIntent> aggIntents;  // Forall/Coforall `with (...)` clause
  int64_t paramLo = 0, paramHi = 0;   // ForParam bounds (literal)

  explicit Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}
};

// ------------------------------------------------------------ Declarations

struct FieldDecl {
  std::string name;
  TypeExprPtr type;
  SourceLoc loc;
};

struct RecordDecl {
  std::string name;
  std::vector<FieldDecl> fields;
  SourceLoc loc;
};

enum class Intent { Value, Ref };

struct ParamDecl {
  std::string name;
  TypeExprPtr type;
  Intent intent = Intent::Value;
  SourceLoc loc;
};

struct ProcDecl {
  std::string name;
  std::vector<ParamDecl> params;
  TypeExprPtr returnType;  // null = void
  std::vector<StmtPtr> body;
  SourceLoc loc;
};

struct TypeAliasDecl {
  std::string name;
  TypeExprPtr type;
  SourceLoc loc;
};

struct GlobalDecl {
  std::string name;
  bool isConfig = false;
  bool isConst = false;
  bool isAlias = false;  // `var a => expr;` module-scope array alias
  TypeExprPtr type;   // may be null (inferred)
  ExprPtr init;       // may be null (default init)
  SourceLoc loc;
};

/// Reference to a top-level declaration in source order. Order matters:
/// record field domains may reference earlier globals, and global array
/// types may reference earlier records — exactly as in Chapel modules.
struct TopLevelRef {
  enum class Kind { Record, Global, Proc, TypeAlias } kind;
  size_t index;
};

/// A whole parsed translation unit.
struct Program {
  std::vector<RecordDecl> records;
  std::vector<GlobalDecl> globals;
  std::vector<ProcDecl> procs;
  std::vector<TypeAliasDecl> typeAliases;
  std::vector<TopLevelRef> order;
  uint32_t file = 0;
};

}  // namespace cb::fe
