// Lowerer driver: top-level declarations, records, globals, signatures,
// types, debug info, and the free-variable analysis used for outlining.
// Statement and expression lowering live in lower_stmt.cpp.
#include "frontend/lower.h"

#include <algorithm>

#include "support/common.h"

namespace cb::fe {

using ir::TypeId;
using ir::TypeKind;
using ir::ValueRef;

Lowerer::Lowerer(const Program& prog, ir::Module& mod, DiagnosticEngine& diags)
    : prog_(prog), mod_(mod), diags_(diags) {}

bool Lowerer::run() {
  // Module initializer shell: runs global initializers in declaration order,
  // like Chapel's module initialization.
  ir::Function initShell;
  initShell.name = mod_.interner().intern("_module_init");
  initShell.displayName = "_module_init";
  initShell.returnType = mod_.types().voidTy();
  ir::FuncId initId = mod_.addFunction(initShell);
  mod_.moduleInitFunc = initId;

  pushFnCtx(initId, std::move(initShell));
  pushScope();

  // Pass 1: records and globals, in source order.
  for (const TopLevelRef& ref : prog_.order) {
    switch (ref.kind) {
      case TopLevelRef::Kind::Record:
        registerRecord(prog_.records[ref.index]);
        break;
      case TopLevelRef::Kind::Global:
        processGlobal(prog_.globals[ref.index]);
        break;
      case TopLevelRef::Kind::TypeAlias: {
        const TypeAliasDecl& a = prog_.typeAliases[ref.index];
        if (!typeAliases_.emplace(a.name, a.type.get()).second)
          error(a.loc, "type alias '" + a.name + "' redefined");
        break;
      }
      case TopLevelRef::Kind::Proc:
        break;  // handled in passes 2/3
    }
  }
  popScope();
  popFnCtxAndCommit();  // terminates _module_init

  // Pass 2: proc signatures (so bodies can call in any order).
  for (const ProcDecl& p : prog_.procs) declareProcSignature(p);

  // Pass 3: proc bodies.
  for (const ProcDecl& p : prog_.procs) lowerProcBody(p);

  if (mod_.mainFunc == ir::kNone) {
    SourceLoc loc;
    loc.file = prog_.file;
    loc.line = 1;
    error(loc, "program has no 'main' procedure");
  }
  return !diags_.hasErrors();
}

// --------------------------------------------------------------- contexts

void Lowerer::pushFnCtx(ir::FuncId fid, ir::Function shell) {
  auto c = std::make_unique<FnCtx>();
  c->fn = std::move(shell);
  c->fid = fid;
  c->retTy = c->fn.returnType;
  c->builder = std::make_unique<ir::IRBuilder>(mod_, c->fn);
  ctxStack_.push_back(std::move(c));
  ir::BlockId entry = b().newBlock("entry");
  b().setBlock(entry);
}

void Lowerer::popFnCtxAndCommit() {
  FnCtx& c = ctx();
  if (!c.builder->blockTerminated()) {
    // Fall-through return; non-void functions return a default value (a
    // diagnosed error path keeps the IR well-formed).
    if (mod_.types().kindOf(c.retTy) == TypeKind::Void) {
      c.builder->ret();
    } else if (mod_.types().kindOf(c.retTy) == TypeKind::Real) {
      c.builder->ret(ValueRef::makeReal(0.0));
    } else {
      c.builder->ret(ValueRef::makeInt(0));
    }
  }
  mod_.function(c.fid) = std::move(c.fn);
  ctxStack_.pop_back();
}

Lowerer::Binding* Lowerer::lookup(const std::string& name) {
  auto& scopes = ctx().scopes;
  for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
    auto f = it->find(name);
    if (f != it->end()) return &f->second;
  }
  return nullptr;
}

void Lowerer::bind(const std::string& name, Binding bd) {
  CB_ASSERT(!ctx().scopes.empty(), "no open scope");
  ctx().scopes.back()[name] = bd;
}

// ------------------------------------------------------------------ types

uint32_t Lowerer::syntacticDomainRank(const Expr& e) {
  switch (e.kind) {
    case ExprKind::DomainLit:
      return static_cast<uint32_t>(e.args.size());
    case ExprKind::Range:
      return 1;
    case ExprKind::Ident: {
      auto g = globalsByName_.find(e.strVal);
      if (g != globalsByName_.end()) {
        const ir::Type& t = mod_.types().get(mod_.global(g->second).type);
        if (t.kind == TypeKind::Domain) return t.rank;
        if (t.kind == TypeKind::Array) return t.rank;
      }
      if (Binding* bnd = !ctxStack_.empty() ? lookup(e.strVal) : nullptr) {
        const ir::Type& t = mod_.types().get(bnd->type);
        if (t.kind == TypeKind::Domain) return t.rank;
        if (t.kind == TypeKind::Array) return t.rank;
      }
      break;
    }
    case ExprKind::MethodCall:
      if (e.strVal == "expand" && !e.args.empty()) return syntacticDomainRank(*e.args[0]);
      break;
    default:
      break;
  }
  error(e.loc, "cannot determine domain rank of this expression");
  return 1;
}

TypeId Lowerer::resolveTypeForSignature(const TypeExpr& t) {
  ir::TypeContext& types = mod_.types();
  switch (t.kind) {
    case TypeExprKind::Named: {
      if (t.name == "int") return types.intTy();
      if (t.name == "real") return types.realTy();
      if (t.name == "bool") return types.boolTy();
      if (t.name == "string") return types.stringTy();
      auto alias = typeAliases_.find(t.name);
      if (alias != typeAliases_.end()) return resolveTypeForSignature(*alias->second);
      TypeId rec = types.findRecord(mod_.interner().intern(t.name));
      if (rec != ir::kInvalidType) return rec;
      error(t.loc, "unknown type '" + t.name + "'");
      return types.intTy();
    }
    case TypeExprKind::HomTuple:
      return types.homogeneousTuple(t.tupleArity, resolveTypeForSignature(*t.elem));
    case TypeExprKind::Tuple: {
      std::vector<TypeId> elems;
      for (const auto& e : t.elems) elems.push_back(resolveTypeForSignature(*e));
      return types.tuple(std::move(elems));
    }
    case TypeExprKind::Array: {
      uint32_t rank = syntacticDomainRank(*t.domainExpr);
      return types.array(resolveTypeForSignature(*t.elem), static_cast<uint8_t>(rank));
    }
    case TypeExprKind::Domain:
      return types.domain(static_cast<uint8_t>(t.rank));
  }
  CB_UNREACHABLE("bad type expr");
}

std::string Lowerer::typeDisplayOf(const TypeExpr& t) {
  // Chapel-flavoured source-level type rendering for blame tables, keeping
  // the *names* the user wrote (e.g. "[DistSpace][perBinSpace] v3").
  switch (t.kind) {
    case TypeExprKind::Named:
      if (t.name == "int") return "int(64)";
      return t.name;
    case TypeExprKind::HomTuple:
      return std::to_string(t.tupleArity) + "*" + typeDisplayOf(*t.elem);
    case TypeExprKind::Tuple: {
      std::string out = "(";
      for (size_t i = 0; i < t.elems.size(); ++i) {
        if (i) out += ", ";
        out += typeDisplayOf(*t.elems[i]);
      }
      return out + ")";
    }
    case TypeExprKind::Array: {
      std::string dom = "[?]";
      if (t.domainExpr->kind == ExprKind::Ident) dom = "[" + t.domainExpr->strVal + "]";
      return dom + " " + typeDisplayOf(*t.elem);
    }
    case TypeExprKind::Domain:
      return "domain";
  }
  return "?";
}

// ------------------------------------------------------------- debug info

ir::DebugVarId Lowerer::makeDebugVar(const std::string& name, TypeId ty, ir::VarKind kind,
                                     SourceLoc loc, ir::FuncId scope) {
  ir::DebugVar dv;
  dv.name = mod_.interner().intern(name);
  dv.type = ty;
  dv.typeDisplay = mod_.types().display(ty, mod_.interner());
  dv.kind = kind;
  dv.scope = scope;
  dv.declLoc = loc;
  return mod_.addDebugVar(std::move(dv));
}

ir::DebugVarId Lowerer::makeTempVar(const std::string& hint, TypeId ty, SourceLoc loc) {
  return makeDebugVar("_tmp_" + hint + std::to_string(tempCounter_++), ty, ir::VarKind::Temp,
                      loc, ctx().fid);
}

// ---------------------------------------------------------------- records

void Lowerer::registerRecord(const RecordDecl& r) {
  recordAst_[r.name] = &r;
  std::vector<ir::RecordField> fields;
  std::vector<const Expr*> arrayFieldDomains(r.fields.size(), nullptr);
  for (size_t i = 0; i < r.fields.size(); ++i) {
    const FieldDecl& f = r.fields[i];
    ir::RecordField rf;
    rf.name = mod_.interner().intern(f.name);
    rf.type = resolveTypeForSignature(*f.type);
    if (f.type->kind == TypeExprKind::Array) arrayFieldDomains[i] = f.type->domainExpr.get();
    fields.push_back(rf);
  }
  Symbol name = mod_.interner().intern(r.name);
  if (mod_.types().findRecord(name) != ir::kInvalidType) {
    error(r.loc, "record '" + r.name + "' redefined");
    return;
  }
  TypeId recTy = mod_.types().record(name, std::move(fields));

  // Generate a domain thunk per array field so the runtime can
  // default-initialize record values ("[zoneDomain] Zone" evaluates
  // zoneDomain, a global, at construction time).
  for (size_t i = 0; i < r.fields.size(); ++i) {
    if (!arrayFieldDomains[i]) continue;
    ir::Function shell;
    std::string fname = "_fielddom_" + r.name + "_" + r.fields[i].name;
    shell.name = mod_.interner().intern(fname);
    shell.displayName = fname;
    shell.loc = r.fields[i].loc;
    uint32_t rank = syntacticDomainRank(*arrayFieldDomains[i]);
    shell.returnType = mod_.types().domain(static_cast<uint8_t>(rank));
    ir::FuncId fid = mod_.addFunction(shell);
    pushFnCtx(fid, std::move(shell));
    pushScope();
    b().setLoc(r.fields[i].loc);
    TypedValue dv = lowerExpr(*arrayFieldDomains[i]);
    if (mod_.types().kindOf(dv.type) != TypeKind::Domain)
      error(r.fields[i].loc, "array field domain expression is not a domain");
    b().ret(dv.v);
    popScope();
    popFnCtxAndCommit();
    mod_.fieldDomainThunks[{recTy, static_cast<uint32_t>(i)}] = fid;
  }
}

// ---------------------------------------------------------------- globals

void Lowerer::processGlobal(const GlobalDecl& g) {
  if (globalsByName_.count(g.name)) {
    error(g.loc, "global '" + g.name + "' redefined");
    return;
  }
  b().setLoc(g.loc);
  ir::TypeContext& types = mod_.types();

  auto registerGlobal = [&](TypeId ty, const std::string& display) -> ir::GlobalId {
    ir::GlobalVar gv;
    gv.name = mod_.interner().intern(g.name);
    gv.type = ty;
    gv.loc = g.loc;
    gv.debugVar = makeDebugVar(g.name, ty, ir::VarKind::Global, g.loc, ir::kNone);
    if (!display.empty()) mod_.debugVar(gv.debugVar).typeDisplay = display;
    ir::GlobalId id = mod_.addGlobal(std::move(gv));
    globalsByName_[g.name] = id;
    return id;
  };

  if (g.isAlias) {
    // `var RealPos => Pos[binSpace];` — module-scope array alias.
    TypedValue v = lowerExpr(*g.init);
    if (types.kindOf(v.type) != TypeKind::Array) {
      error(g.loc, "'=>' alias initializer must be an array expression");
      return;
    }
    ir::GlobalId id = registerGlobal(v.type, "");
    b().store(v.v, ValueRef::makeGlobal(id));
    return;
  }

  auto wrapConfig = [&](ValueRef v, TypeId ty) -> ValueRef {
    if (!g.isConfig) return v;
    if (!types.isScalar(ty)) {
      error(g.loc, "config variables must be scalar");
      return v;
    }
    uint32_t sid = mod_.addString(g.name);
    return b().builtin(ir::BuiltinKind::ConfigGet, {ValueRef::makeString(sid), v}, ty);
  };

  if (g.type && g.type->kind == TypeExprKind::Array) {
    // `var A: [D] T;` — evaluate the domain now, allocate the array.
    TypedValue dom = lowerExpr(*g.type->domainExpr);
    if (types.kindOf(dom.type) != TypeKind::Domain) {
      error(g.loc, "array global domain expression is not a domain");
      return;
    }
    TypeId elem = resolveTypeForSignature(*g.type->elem);
    TypeId arrTy = types.array(elem, types.get(dom.type).rank);
    ir::GlobalId id = registerGlobal(arrTy, typeDisplayOf(*g.type));
    ValueRef arr = b().arrayNew(dom.v, arrTy);
    initNestedArrayElems(arr, arrTy, *g.type->elem, g.loc);
    b().store(arr, ValueRef::makeGlobal(id));
    if (g.init) error(g.loc, "array globals take no initializer expression");
    return;
  }

  if (g.init) {
    TypedValue v = lowerExpr(*g.init);
    TypeId ty = v.type;
    ValueRef val = v.v;
    if (g.type) {
      ty = resolveTypeForSignature(*g.type);
      val = coerce(v, ty, g.loc);
    }
    val = wrapConfig(val, ty);
    ir::GlobalId id = registerGlobal(ty, g.type ? typeDisplayOf(*g.type) : "");
    b().store(val, ValueRef::makeGlobal(id));
    return;
  }

  if (!g.type) {
    error(g.loc, "global '" + g.name + "' needs a type or an initializer");
    return;
  }
  TypeId ty = resolveTypeForSignature(*g.type);
  ir::GlobalId id = registerGlobal(ty, typeDisplayOf(*g.type));
  ValueRef def = emitDefaultValue(ty);
  if (def.isNone()) {
    error(g.loc, "global '" + g.name + "' of this type needs an initializer");
    return;
  }
  b().store(def, ValueRef::makeGlobal(id));
}

// -------------------------------------------------------------- signatures

void Lowerer::declareProcSignature(const ProcDecl& p) {
  if (procsByName_.count(p.name)) {
    error(p.loc, "procedure '" + p.name + "' redefined");
    return;
  }
  ir::Function shell;
  shell.name = mod_.interner().intern(p.name);
  shell.displayName = p.name;
  shell.loc = p.loc;
  shell.returnType = p.returnType ? resolveTypeForSignature(*p.returnType) : mod_.types().voidTy();
  for (const ParamDecl& pd : p.params) {
    ir::Param prm;
    prm.name = mod_.interner().intern(pd.name);
    prm.type = resolveTypeForSignature(*pd.type);
    TypeKind k = mod_.types().kindOf(prm.type);
    // Arrays and domains have reference semantics in Chapel; explicit `ref`
    // makes anything an exit variable.
    prm.byRef = (pd.intent == Intent::Ref) || k == TypeKind::Array || k == TypeKind::Domain;
    shell.params.push_back(prm);
  }
  ir::FuncId fid = mod_.addFunction(std::move(shell));
  procsByName_[p.name] = fid;
  if (p.name == "main") mod_.mainFunc = fid;
}

void Lowerer::lowerProcBody(const ProcDecl& p) {
  auto it = procsByName_.find(p.name);
  if (it == procsByName_.end()) return;
  ir::FuncId fid = it->second;
  ir::Function shell = mod_.function(fid);  // copy of the signature shell

  pushFnCtx(fid, std::move(shell));
  pushScope();
  b().setLoc(p.loc);

  for (uint32_t i = 0; i < ctx().fn.params.size(); ++i) {
    ir::Param& prm = ctx().fn.params[i];
    const ParamDecl& pd = p.params[i];
    prm.debugVar = makeDebugVar(pd.name, prm.type, ir::VarKind::Param, pd.loc, fid);
    mod_.debugVar(prm.debugVar).typeDisplay = typeDisplayOf(*pd.type);
    if (prm.byRef) {
      bind(pd.name, Binding{Binding::Kind::VarAddr, ValueRef::makeArg(i), prm.type});
    } else {
      // clang -O0 shape: value params are spilled to an alloca so they are
      // addressable and carry debug info.
      ValueRef slot = b().alloca_(prm.type, prm.debugVar);
      b().store(ValueRef::makeArg(i), slot);
      bind(pd.name, Binding{Binding::Kind::VarAddr, slot, prm.type});
    }
  }

  lowerStmts(p.body);
  popScope();
  popFnCtxAndCommit();
}

// ------------------------------------------------------ free-var analysis

void Lowerer::collectFreeVarsExpr(const Expr& e, std::set<std::string>& bound,
                                  std::vector<std::string>& out) {
  auto consider = [&](const std::string& name) {
    if (bound.count(name)) return;
    if (!lookup(name)) return;  // not a variable in the enclosing scopes
    if (std::find(out.begin(), out.end(), name) == out.end()) out.push_back(name);
  };
  switch (e.kind) {
    case ExprKind::Ident:
      consider(e.strVal);
      break;
    case ExprKind::Call:
      // `t(1)` tuple indexing references variable t; a real call does not.
      consider(e.strVal);
      break;
    default:
      break;
  }
  for (const ExprPtr& a : e.args) collectFreeVarsExpr(*a, bound, out);
}

void Lowerer::collectFreeVarsStmt(const Stmt& s, std::set<std::string>& bound,
                                  std::vector<std::string>& out) {
  switch (s.kind) {
    case StmtKind::DeclVar:
      if (s.init) collectFreeVarsExpr(*s.init, bound, out);
      if (s.declType && s.declType->kind == TypeExprKind::Array && s.declType->domainExpr)
        collectFreeVarsExpr(*s.declType->domainExpr, bound, out);
      bound.insert(s.name);
      return;
    case StmtKind::Assign:
      collectFreeVarsExpr(*s.lhs, bound, out);
      collectFreeVarsExpr(*s.rhs, bound, out);
      return;
    case StmtKind::ExprStmt:
    case StmtKind::Return:
      if (s.expr) collectFreeVarsExpr(*s.expr, bound, out);
      return;
    case StmtKind::If: {
      collectFreeVarsExpr(*s.expr, bound, out);
      std::set<std::string> b1 = bound;
      for (const StmtPtr& c : s.body) collectFreeVarsStmt(*c, b1, out);
      std::set<std::string> b2 = bound;
      for (const StmtPtr& c : s.elseBody) collectFreeVarsStmt(*c, b2, out);
      return;
    }
    case StmtKind::While: {
      collectFreeVarsExpr(*s.expr, bound, out);
      std::set<std::string> b1 = bound;
      for (const StmtPtr& c : s.body) collectFreeVarsStmt(*c, b1, out);
      return;
    }
    case StmtKind::Block: {
      std::set<std::string> b1 = bound;
      for (const StmtPtr& c : s.body) collectFreeVarsStmt(*c, b1, out);
      return;
    }
    case StmtKind::For:
    case StmtKind::Forall:
    case StmtKind::Coforall: {
      for (const ExprPtr& it : s.head.iterands) collectFreeVarsExpr(*it, bound, out);
      std::set<std::string> b1 = bound;
      for (const std::string& n : s.head.indexNames) b1.insert(n);
      for (const StmtPtr& c : s.body) collectFreeVarsStmt(*c, b1, out);
      return;
    }
    case StmtKind::ForParam: {
      std::set<std::string> b1 = bound;
      b1.insert(s.head.indexNames.front());
      for (const StmtPtr& c : s.body) collectFreeVarsStmt(*c, b1, out);
      return;
    }
    case StmtKind::On: {
      collectFreeVarsExpr(*s.expr, bound, out);
      std::set<std::string> b1 = bound;
      for (const StmtPtr& c : s.body) collectFreeVarsStmt(*c, b1, out);
      return;
    }
    case StmtKind::Select: {
      collectFreeVarsExpr(*s.expr, bound, out);
      for (const WhenClause& w : s.whens) {
        for (const ExprPtr& v : w.values) collectFreeVarsExpr(*v, bound, out);
        std::set<std::string> b1 = bound;
        for (const StmtPtr& c : w.body) collectFreeVarsStmt(*c, b1, out);
      }
      std::set<std::string> b2 = bound;
      for (const StmtPtr& c : s.elseBody) collectFreeVarsStmt(*c, b2, out);
      return;
    }
  }
}

}  // namespace cb::fe
