// Optimization passes — the `--fast` pipeline.
//
// The paper compiles WITHOUT --fast because optimization "would make it
// nearly impossible to map the performance data from the IR nodes back to
// the source level variables". Our pipeline reproduces both halves of that
// story: it genuinely transforms the IR (folding, dead-code elimination) and
// it strips the source-variable mapping, after which the profiler can only
// produce code-centric results.
#pragma once

#include <cstddef>

#include "ir/module.h"

namespace cb::fe {

/// Folds constant Bin/Un/TupleGet instructions and propagates the results
/// into operand positions. Returns the number of instructions folded.
size_t constantFold(ir::Module& m);

/// Removes side-effect-free instructions whose results are unused,
/// renumbering instruction ids. Returns the number removed.
size_t deadCodeElim(ir::Module& m);

/// Forwards loads from an alloca when the same block contains a preceding
/// store to the same address register with no intervening call/store/spawn
/// (a conservative slice of mem2reg). Returns the number of loads forwarded.
size_t forwardLoads(ir::Module& m);

/// Drops the IR -> source-variable mapping: every debug variable is
/// demoted to a compiler temp with a mangled name, exactly the effect the
/// paper observed with `--fast` ("functions removed or renamed, variables
/// optimized out"). Sets Module::debugInfoStripped.
void stripDebugInfo(ir::Module& m);

/// The full --fast pipeline: fold + forward + DCE to fixpoint, then strip.
void runFastPipeline(ir::Module& m);

/// Marks every IndexAddr whose address feeds a Store by setting bit 1 of its
/// `imm` (bit 0 keeps meaning "linear index"). The runtimes use the bit to
/// classify a remote array access as a PUT (store) vs a GET (load) without
/// any dynamic lookahead. Runs after all other passes; always called by the
/// compiler (with or without --fast). Returns the number of marked accesses.
size_t markIndexStores(ir::Module& m);

/// Marks loop-induction allocas by setting bit 0 of the Alloca's `imm`: a
/// local with exactly two stores, one initializer plus one self-increment
/// (store of Add/Sub over a load of the same alloca) — the shape every
/// lowered `for`/forall-chunk counter takes. The bit then propagates (to a
/// fixpoint) through single-store allocas whose value is an affine Add/Sub/
/// Mul chain over a marked alloca — the per-iteration copy `i` of a hidden
/// counter, and derived bounds like `lo = l * chunk`. The runtimes ignore
/// the bit entirely. The static locality analysis
/// (analysis/locality.h) uses the bit to label array accesses that are
/// affine in a loop iterator. Always called by the compiler, after all
/// other passes. Returns the number of marked allocas.
size_t markLoopInductionAllocas(ir::Module& m);

}  // namespace cb::fe
