// Statement and expression lowering (the Lowerer's second half; the driver
// lives in lower.cpp).
#include <algorithm>

#include "frontend/lower.h"
#include "support/common.h"

namespace cb::fe {

using ir::BinKind;
using ir::BuiltinKind;
using ir::Opcode;
using ir::TypeId;
using ir::TypeKind;
using ir::UnKind;
using ir::ValueRef;

ir::BinKind Lowerer::toIrBin(BinOp op) const {
  switch (op) {
    case BinOp::Add: return BinKind::Add;
    case BinOp::Sub: return BinKind::Sub;
    case BinOp::Mul: return BinKind::Mul;
    case BinOp::Div: return BinKind::Div;
    case BinOp::Mod: return BinKind::Mod;
    case BinOp::Pow: return BinKind::Pow;
    case BinOp::Eq: return BinKind::Eq;
    case BinOp::Ne: return BinKind::Ne;
    case BinOp::Lt: return BinKind::Lt;
    case BinOp::Le: return BinKind::Le;
    case BinOp::Gt: return BinKind::Gt;
    case BinOp::Ge: return BinKind::Ge;
    case BinOp::And: return BinKind::And;
    case BinOp::Or: return BinKind::Or;
  }
  CB_UNREACHABLE("bad binop");
}

// ---------------------------------------------------------------- helpers

Lowerer::TypedValue Lowerer::makeError(SourceLoc loc) {
  (void)loc;
  return {ValueRef::makeInt(0), mod_.types().intTy()};
}

ir::ValueRef Lowerer::coerce(TypedValue v, TypeId want, SourceLoc loc) {
  ir::TypeContext& types = mod_.types();
  if (v.type == want) return v.v;
  if (types.kindOf(want) == TypeKind::Real && types.kindOf(v.type) == TypeKind::Int)
    return b().un(UnKind::IntToReal, v.v, want);
  // Homogeneous-tuple widening: int tuple literal assigned to real tuple.
  if (types.kindOf(want) == TypeKind::Tuple && types.kindOf(v.type) == TypeKind::Tuple) {
    const ir::Type& wt = types.get(want);
    const ir::Type& vt = types.get(v.type);
    if (wt.elems.size() == vt.elems.size()) {
      std::vector<ValueRef> elems;
      for (uint32_t i = 0; i < wt.elems.size(); ++i) {
        ValueRef e = b().tupleGet(v.v, i, vt.elems[i]);
        elems.push_back(coerce({e, vt.elems[i]}, wt.elems[i], loc));
      }
      return b().tupleMake(elems, want);
    }
  }
  error(loc, "type mismatch: have " + types.display(v.type, mod_.interner()) + ", want " +
                 types.display(want, mod_.interner()));
  return v.v;
}

ir::ValueRef Lowerer::emitDefaultValue(TypeId ty) {
  ir::TypeContext& types = mod_.types();
  switch (types.kindOf(ty)) {
    case TypeKind::Int: return ValueRef::makeInt(0);
    case TypeKind::Real: return ValueRef::makeReal(0.0);
    case TypeKind::Bool: return ValueRef::makeBool(false);
    case TypeKind::Record: return b().recordNew(ty);
    case TypeKind::Tuple: {
      const ir::Type& t = types.get(ty);
      std::vector<ValueRef> elems;
      elems.reserve(t.elems.size());
      for (TypeId e : t.elems) elems.push_back(emitDefaultValue(e));
      return b().tupleMake(elems, ty);
    }
    default:
      return ValueRef::none();
  }
}

// ------------------------------------------------------------- statements

void Lowerer::lowerStmts(const std::vector<StmtPtr>& body) {
  for (const StmtPtr& s : body) {
    if (b().blockTerminated()) return;  // unreachable code after return
    lowerStmt(*s);
  }
}

void Lowerer::lowerStmt(const Stmt& s) {
  b().setLoc(s.loc);
  switch (s.kind) {
    case StmtKind::Block:
      pushScope();
      lowerStmts(s.body);
      popScope();
      return;
    case StmtKind::DeclVar: return lowerDeclVar(s);
    case StmtKind::Assign: return lowerAssign(s);
    case StmtKind::ExprStmt:
      lowerExpr(*s.expr);
      return;
    case StmtKind::If: return lowerIf(s);
    case StmtKind::While: return lowerWhile(s);
    case StmtKind::For: return lowerFor(s);
    case StmtKind::ForParam: return lowerForParam(s);
    case StmtKind::Forall:
    case StmtKind::Coforall: return lowerParallel(s);
    case StmtKind::Select: return lowerSelect(s);
    case StmtKind::Return: return lowerReturn(s);
    case StmtKind::On: return lowerOn(s);
  }
}

void Lowerer::lowerOn(const Stmt& s) {
  // `on Locales[e] { ... }` — switch the executing locale for the dynamic
  // extent of the body. The target is either the idiomatic `Locales[e]`
  // (in which case the index expression IS the locale id) or any integer
  // expression.
  ir::TypeContext& types = mod_.types();
  const Expr& target = *s.expr;
  ValueRef localeId;
  if (target.kind == ExprKind::Index && target.args.size() == 2 &&
      target.args[0]->kind == ExprKind::Ident && target.args[0]->strVal == "Locales" &&
      !lookup("Locales") && !globalsByName_.count("Locales")) {
    localeId = coerce(lowerExpr(*target.args[1]), types.intTy(), target.loc);
  } else {
    localeId = coerce(lowerExpr(target), types.intTy(), target.loc);
  }
  b().builtin(BuiltinKind::OnBegin, {localeId}, types.voidTy());
  pushScope();
  lowerStmts(s.body);
  popScope();
  // A `return` inside an `on` body unwinds the locale stack in the runtime
  // (callFunction save/restore), so only emit OnEnd on the fallthrough path.
  if (!b().blockTerminated()) b().builtin(BuiltinKind::OnEnd, {}, types.voidTy());
}

void Lowerer::lowerSelect(const Stmt& s) {
  // `select x { when v1, v2 {...} otherwise {...} }` lowers to an if-else
  // chain on a once-evaluated selector. The implicit blame transfer for the
  // bodies falls out of control dependence, exactly as for `if` (§IV.A:
  // "the same situation happens to ... select-when statements").
  ir::TypeContext& types = mod_.types();
  TypedValue sel = lowerExpr(*s.expr);
  ir::BlockId joinB = b().newBlock("select.join");

  for (const WhenClause& w : s.whens) {
    // cond = (sel == v1) || (sel == v2) || ...
    ValueRef cond;
    for (const ExprPtr& v : w.values) {
      TypedValue val = lowerExpr(*v);
      ValueRef eq = b().bin(BinKind::Eq, sel.v, coerce(val, sel.type, v->loc), types.boolTy());
      cond = cond.isNone() ? eq : b().bin(BinKind::Or, cond, eq, types.boolTy());
    }
    ir::BlockId thenB = b().newBlock("when.body");
    ir::BlockId nextB = b().newBlock("when.next");
    b().condBr(cond, thenB, nextB);
    b().setBlock(thenB);
    pushScope();
    lowerStmts(w.body);
    popScope();
    if (!b().blockTerminated()) b().br(joinB);
    b().setBlock(nextB);
  }
  pushScope();
  lowerStmts(s.elseBody);  // otherwise clause (may be empty)
  popScope();
  if (!b().blockTerminated()) b().br(joinB);
  b().setBlock(joinB);
}

void Lowerer::lowerDeclVar(const Stmt& s) {
  ir::TypeContext& types = mod_.types();
  if (lookup(s.name) && ctx().scopes.back().count(s.name)) {
    error(s.loc, "variable '" + s.name + "' redefined in this scope");
  }

  auto declare = [&](TypeId ty, ValueRef initVal, const std::string& display) {
    ir::DebugVarId dv = makeDebugVar(s.name, ty, ir::VarKind::Local, s.loc, ctx().fid);
    if (!display.empty()) mod_.debugVar(dv).typeDisplay = display;
    ValueRef slot = b().alloca_(ty, dv);
    if (!initVal.isNone()) b().store(initVal, slot);
    bind(s.name, Binding{Binding::Kind::VarAddr, slot, ty});
  };

  if (s.isAlias) {
    // `var RealPos => Pos[binSpace];` — the initializer is an array view.
    TypedValue v = lowerExpr(*s.init);
    if (types.kindOf(v.type) != TypeKind::Array) {
      error(s.loc, "'=>' alias initializer must be an array expression");
      return;
    }
    declare(v.type, v.v, "");
    return;
  }

  if (s.declType && s.declType->kind == TypeExprKind::Array) {
    // `var determ: [Elems] real;` — evaluate the domain, heap-allocate.
    TypedValue dom = lowerExpr(*s.declType->domainExpr);
    if (types.kindOf(dom.type) != TypeKind::Domain) {
      error(s.loc, "array variable domain expression is not a domain");
      return;
    }
    TypeId elem = resolveTypeForSignature(*s.declType->elem);
    TypeId arrTy = types.array(elem, types.get(dom.type).rank);
    ValueRef arr = b().arrayNew(dom.v, arrTy);
    initNestedArrayElems(arr, arrTy, *s.declType->elem, s.loc);
    declare(arrTy, arr, typeDisplayOf(*s.declType));
    if (s.init) error(s.loc, "array variables take no initializer expression");
    return;
  }

  if (s.init) {
    TypedValue v = lowerExpr(*s.init);
    TypeId ty = v.type;
    ValueRef val = v.v;
    if (s.declType) {
      ty = resolveTypeForSignature(*s.declType);
      val = coerce(v, ty, s.loc);
    }
    declare(ty, val, s.declType ? typeDisplayOf(*s.declType) : "");
    return;
  }

  if (!s.declType) {
    error(s.loc, "variable '" + s.name + "' needs a type or an initializer");
    return;
  }
  TypeId ty = resolveTypeForSignature(*s.declType);
  ValueRef def = emitDefaultValue(ty);
  if (def.isNone()) {
    error(s.loc, "variable '" + s.name + "' of this type needs an initializer");
    return;
  }
  declare(ty, def, typeDisplayOf(*s.declType));
}

void Lowerer::lowerAssign(const Stmt& s) {
  ir::TypeContext& types = mod_.types();
  LValue lhs = lowerLValue(*s.lhs);
  if (!lhs.valid) return;

  // Whole-array assignments: `A = 0;` broadcast, `A = B;` copy.
  if (types.kindOf(lhs.type) == TypeKind::Array) {
    TypedValue rhs = lowerExpr(*s.rhs);
    ValueRef dst = b().load(lhs.addr, lhs.type);
    if (types.kindOf(rhs.type) == TypeKind::Array) {
      if (s.assignOp != AssignOp::Plain) {
        error(s.loc, "compound assignment between arrays is not supported");
        return;
      }
      b().builtin(BuiltinKind::ArrayCopy, {dst, rhs.v}, types.voidTy());
    } else {
      TypeId elem = types.arrayElem(lhs.type);
      ValueRef v = coerce(rhs, elem, s.loc);
      if (s.assignOp != AssignOp::Plain) {
        error(s.loc, "compound broadcast assignment is not supported");
        return;
      }
      b().builtin(BuiltinKind::ArrayFill, {dst, v}, types.voidTy());
    }
    return;
  }

  TypedValue rhs = lowerExpr(*s.rhs);
  if (s.assignOp == AssignOp::Plain) {
    b().store(coerce(rhs, lhs.type, s.loc), lhs.addr);
    return;
  }
  // Compound: load-modify-store (tuple element-wise when applicable).
  BinOp op = s.assignOp == AssignOp::Add ? BinOp::Add
           : s.assignOp == AssignOp::Sub ? BinOp::Sub
           : s.assignOp == AssignOp::Mul ? BinOp::Mul
                                         : BinOp::Div;
  ValueRef cur = b().load(lhs.addr, lhs.type);
  TypedValue result;
  if (types.kindOf(lhs.type) == TypeKind::Tuple || types.kindOf(rhs.type) == TypeKind::Tuple) {
    result = tupleElementwise(op, {cur, lhs.type}, rhs, s.loc);
  } else {
    ValueRef r = coerce(rhs, lhs.type, s.loc);
    result = {b().bin(toIrBin(op), cur, r, lhs.type), lhs.type};
  }
  b().store(coerce(result, lhs.type, s.loc), lhs.addr);
}

void Lowerer::lowerIf(const Stmt& s) {
  TypedValue cond = lowerExpr(*s.expr);
  ir::BlockId thenB = b().newBlock("if.then");
  ir::BlockId elseB = s.elseBody.empty() ? ir::kNone : b().newBlock("if.else");
  ir::BlockId joinB = b().newBlock("if.join");
  b().condBr(cond.v, thenB, elseB == ir::kNone ? joinB : elseB);

  b().setBlock(thenB);
  pushScope();
  lowerStmts(s.body);
  popScope();
  if (!b().blockTerminated()) b().br(joinB);

  if (elseB != ir::kNone) {
    b().setBlock(elseB);
    pushScope();
    lowerStmts(s.elseBody);
    popScope();
    if (!b().blockTerminated()) b().br(joinB);
  }
  b().setBlock(joinB);
}

void Lowerer::lowerWhile(const Stmt& s) {
  ir::BlockId header = b().newBlock("while.header");
  ir::BlockId body = b().newBlock("while.body");
  ir::BlockId exit = b().newBlock("while.exit");
  b().br(header);
  b().setBlock(header);
  b().setLoc(s.loc);
  TypedValue cond = lowerExpr(*s.expr);
  b().condBr(cond.v, body, exit);
  b().setBlock(body);
  pushScope();
  lowerStmts(s.body);
  popScope();
  if (!b().blockTerminated()) b().br(header);
  b().setBlock(exit);
}

template <typename F>
void Lowerer::emitCountedLoop(ValueRef lo, ValueRef hi, SourceLoc loc, F emitBody) {
  ir::TypeContext& types = mod_.types();
  b().setLoc(loc);
  ir::DebugVarId dv = makeTempVar("idx", types.intTy(), loc);
  ValueRef idxSlot = b().alloca_(types.intTy(), dv);
  b().store(lo, idxSlot);
  ir::BlockId header = b().newBlock("loop.header");
  ir::BlockId body = b().newBlock("loop.body");
  ir::BlockId latch = b().newBlock("loop.latch");
  ir::BlockId exit = b().newBlock("loop.exit");
  b().br(header);

  b().setBlock(header);
  b().setLoc(loc);
  ValueRef idx = b().load(idxSlot, types.intTy());
  ValueRef cond = b().bin(BinKind::Le, idx, hi, types.boolTy());
  b().condBr(cond, body, exit);

  b().setBlock(body);
  emitBody(idx);
  if (!b().blockTerminated()) b().br(latch);

  b().setBlock(latch);
  b().setLoc(loc);
  ValueRef cur = b().load(idxSlot, types.intTy());
  ValueRef nxt = b().bin(BinKind::Add, cur, ValueRef::makeInt(1), types.intTy());
  b().store(nxt, idxSlot);
  b().br(header);

  b().setBlock(exit);
}

void Lowerer::initNestedArrayElems(ValueRef arrValue, TypeId arrTy, const TypeExpr& elemTE,
                                   SourceLoc loc) {
  const TypeExpr* et = &elemTE;
  while (et->kind == TypeExprKind::Named) {
    auto a = typeAliases_.find(et->name);
    if (a == typeAliases_.end()) break;
    et = a->second;
  }
  if (et->kind != TypeExprKind::Array) return;

  ir::TypeContext& types = mod_.types();
  TypeId innerTy = types.arrayElem(arrTy);
  // The inner domain is evaluated once, outside the loop (it may only
  // reference enclosing-scope values, like a record field domain).
  TypedValue dom = lowerExpr(*et->domainExpr);
  if (types.kindOf(dom.type) != TypeKind::Domain) {
    error(loc, "inner array domain expression is not a domain");
    return;
  }
  ValueRef n = b().domainSize(arrValue);
  ValueRef hi = b().bin(BinKind::Sub, n, ValueRef::makeInt(1), types.intTy());
  const TypeExpr* innerElem = et->elem.get();
  emitCountedLoop(ValueRef::makeInt(0), hi, loc, [&](ValueRef idx) {
    ValueRef inner = b().arrayNew(dom.v, innerTy);
    ValueRef addr = b().indexAddr(arrValue, {idx}, innerTy, /*linear=*/true);
    b().store(inner, addr);
    if (innerElem) initNestedArrayElems(inner, innerTy, *innerElem, loc);
  });
}

Lowerer::IterInfo Lowerer::classifyIterand(const Expr& e) {
  ir::TypeContext& types = mod_.types();
  IterInfo info;
  if (e.kind == ExprKind::Range) {
    info.kind = IterInfo::Kind::Range;
    TypedValue lo = lowerExpr(*e.args[0]);
    TypedValue cnt = lowerExpr(*e.args[1]);
    info.lo = coerce(lo, types.intTy(), e.loc);
    if (e.counted) {
      ValueRef n = coerce(cnt, types.intTy(), e.loc);
      ValueRef hiPlus = b().bin(BinKind::Add, info.lo, n, types.intTy());
      info.hi = b().bin(BinKind::Sub, hiPlus, ValueRef::makeInt(1), types.intTy());
    } else {
      info.hi = coerce(cnt, types.intTy(), e.loc);
    }
    return info;
  }
  TypedValue v = lowerExpr(e);
  switch (types.kindOf(v.type)) {
    case TypeKind::Domain: {
      uint8_t rank = types.get(v.type).rank;
      if (rank == 1) {
        info.kind = IterInfo::Kind::Domain1D;
        info.value = v.v;
        info.lo = b().domainDim(v.v, 0, false);
        info.hi = b().domainDim(v.v, 0, true);
      } else {
        info.kind = IterInfo::Kind::Domain2D;
        info.value = v.v;
        info.type = v.type;
        info.lo = ValueRef::makeInt(0);
        ValueRef size = b().domainSize(v.v);
        info.hi = b().bin(BinKind::Sub, size, ValueRef::makeInt(1), types.intTy());
      }
      return info;
    }
    case TypeKind::Array: {
      info.kind = IterInfo::Kind::Array;
      info.value = v.v;
      info.type = v.type;
      info.lo = ValueRef::makeInt(0);
      ValueRef size = b().domainSize(v.v);
      info.hi = b().bin(BinKind::Sub, size, ValueRef::makeInt(1), types.intTy());
      return info;
    }
    default:
      error(e.loc, "cannot iterate over this expression");
      info.lo = ValueRef::makeInt(0);
      info.hi = ValueRef::makeInt(-1);
      return info;
  }
}

void Lowerer::bindLoopIndex(const std::string& name, const IterInfo& info, ValueRef idx,
                            SourceLoc loc) {
  ir::TypeContext& types = mod_.types();
  switch (info.kind) {
    case IterInfo::Kind::Range:
    case IterInfo::Kind::Domain1D: {
      // User-visible index variable: an alloca written every iteration at
      // the loop-header line (this is what carries implicit blame).
      ValueRef actual = b().bin(BinKind::Add, info.lo, idx, types.intTy());
      ir::DebugVarId dv = makeDebugVar(name, types.intTy(), ir::VarKind::Local, loc, ctx().fid);
      ValueRef slot = b().alloca_(types.intTy(), dv);
      b().store(actual, slot);
      bind(name, Binding{Binding::Kind::VarAddr, slot, types.intTy()});
      return;
    }
    case IterInfo::Kind::Array: {
      TypeId elem = types.arrayElem(info.type);
      ValueRef addr = b().indexAddr(info.value, {idx}, elem, /*linear=*/true);
      bind(name, Binding{Binding::Kind::VarAddr, addr, elem});
      return;
    }
    case IterInfo::Kind::Domain2D:
      CB_UNREACHABLE("Domain2D is bound via bind2DIndices");
  }
}

void Lowerer::lowerForParam(const Stmt& s) {
  // Compile-time unrolled, exactly like Chapel's `for param`: the body is
  // lowered once per iteration with the index bound to a constant.
  for (int64_t k = s.paramLo; k <= s.paramHi; ++k) {
    pushScope();
    bind(s.head.indexNames.front(),
         Binding{Binding::Kind::ConstVal, ValueRef::makeInt(k), mod_.types().intTy()});
    lowerStmts(s.body);
    popScope();
    if (b().blockTerminated()) break;
  }
}

void Lowerer::lowerFor(const Stmt& s) {
  ir::TypeContext& types = mod_.types();
  std::vector<IterInfo> infos;
  for (const ExprPtr& it : s.head.iterands) infos.push_back(classifyIterand(*it));

  // Single 2-D domain iterand with (i, j): nested sequential loops.
  if (infos.size() == 1 && infos[0].kind == IterInfo::Kind::Domain2D) {
    if (s.head.indexNames.size() != 2) {
      error(s.loc, "iterating a 2-D domain needs two index names");
      return;
    }
    ValueRef dom = infos[0].value;
    ValueRef lo0 = b().domainDim(dom, 0, false), hi0 = b().domainDim(dom, 0, true);
    ValueRef lo1 = b().domainDim(dom, 1, false), hi1 = b().domainDim(dom, 1, true);
    emitCountedLoop(lo0, hi0, s.loc, [&](ValueRef i0) {
      pushScope();
      ir::DebugVarId dv0 =
          makeDebugVar(s.head.indexNames[0], types.intTy(), ir::VarKind::Local, s.loc, ctx().fid);
      ValueRef slot0 = b().alloca_(types.intTy(), dv0);
      b().store(i0, slot0);
      bind(s.head.indexNames[0], Binding{Binding::Kind::VarAddr, slot0, types.intTy()});
      emitCountedLoop(lo1, hi1, s.loc, [&](ValueRef i1) {
        pushScope();
        ir::DebugVarId dv1 = makeDebugVar(s.head.indexNames[1], types.intTy(), ir::VarKind::Local,
                                          s.loc, ctx().fid);
        ValueRef slot1 = b().alloca_(types.intTy(), dv1);
        b().store(i1, slot1);
        bind(s.head.indexNames[1], Binding{Binding::Kind::VarAddr, slot1, types.intTy()});
        lowerStmts(s.body);
        popScope();
      });
      popScope();
    });
    return;
  }

  if (s.head.indexNames.size() != infos.size()) {
    error(s.loc, "loop index count does not match iterand count");
    return;
  }

  // Linear loop over the first iterand's extent; every iterand is accessed
  // at the same linear position (zippered semantics).
  ValueRef count = b().bin(BinKind::Sub, infos[0].hi, infos[0].lo, types.intTy());
  emitCountedLoop(ValueRef::makeInt(0), count, s.loc, [&](ValueRef idx) {
    pushScope();
    if (s.head.zipped) {
      // Only array iterands have per-iteration follower state to advance;
      // domains are immutable index sets.
      std::vector<ValueRef> itvals;
      for (const IterInfo& info : infos)
        if (info.kind == IterInfo::Kind::Array) itvals.push_back(info.value);
      b().iterOverhead(static_cast<uint32_t>(infos.size()), itvals);
    }
    for (size_t k = 0; k < infos.size(); ++k)
      bindLoopIndex(s.head.indexNames[k], infos[k], idx, s.loc);
    lowerStmts(s.body);
    popScope();
  });
}

void Lowerer::lowerParallel(const Stmt& s) {
  ir::TypeContext& types = mod_.types();
  bool isCoforall = (s.kind == StmtKind::Coforall);
  b().setLoc(s.loc);

  std::vector<IterInfo> infos;
  for (const ExprPtr& it : s.head.iterands) infos.push_back(classifyIterand(*it));
  bool twoDSingle = infos.size() == 1 && infos[0].kind == IterInfo::Kind::Domain2D;
  if (!twoDSingle && s.head.indexNames.size() != infos.size()) {
    error(s.loc, "loop index count does not match iterand count");
    return;
  }
  if (twoDSingle && s.head.indexNames.size() != 2) {
    error(s.loc, "iterating a 2-D domain needs two index names");
    return;
  }

  // Free variables of the body (minus the loop indices and aggregator
  // intents) become ref captures.
  std::set<std::string> bound(s.head.indexNames.begin(), s.head.indexNames.end());
  for (const AggIntent& ai : s.aggIntents) bound.insert(ai.name);
  std::vector<std::string> captures;
  for (const StmtPtr& c : s.body) collectFreeVarsStmt(*c, bound, captures);

  // ---- build the task function shell ------------------------------------
  ir::Function shell;
  std::string fname = std::string(isCoforall ? "coforall" : "forall") + "_fn_chpl" +
                      std::to_string(++taskFnCounter_);
  shell.name = mod_.interner().intern(fname);
  shell.displayName = fname;
  shell.loc = s.loc;
  shell.returnType = types.voidTy();
  shell.taskKind = isCoforall ? ir::TaskKind::Coforall : ir::TaskKind::Forall;
  shell.spawnParent = ctx().fid;
  shell.spawnLoc = s.loc;

  auto addParam = [&](const std::string& name, TypeId ty, bool byRef) {
    ir::Param prm;
    prm.name = mod_.interner().intern(name);
    prm.type = ty;
    prm.byRef = byRef;
    shell.params.push_back(prm);
    return static_cast<uint32_t>(shell.params.size() - 1);
  };

  addParam("chunk_lo", types.intTy(), false);
  addParam("chunk_hi", types.intTy(), false);

  // One parameter per iterand carrying what the task needs to rebuild the
  // element/index bindings.
  struct IterParam {
    uint32_t argIdx;
    IterInfo::Kind kind;
    TypeId type;
  };
  std::vector<IterParam> iterParams;
  std::vector<ValueRef> spawnArgs;
  for (size_t k = 0; k < infos.size(); ++k) {
    const IterInfo& info = infos[k];
    switch (info.kind) {
      case IterInfo::Kind::Range:
      case IterInfo::Kind::Domain1D: {
        uint32_t a = addParam("_iterbase" + std::to_string(k), types.intTy(), false);
        iterParams.push_back({a, IterInfo::Kind::Range, types.intTy()});
        spawnArgs.push_back(info.lo);
        break;
      }
      case IterInfo::Kind::Domain2D: {
        uint32_t a = addParam("_iterdom" + std::to_string(k), info.type, false);
        iterParams.push_back({a, info.kind, info.type});
        spawnArgs.push_back(info.value);
        break;
      }
      case IterInfo::Kind::Array: {
        uint32_t a = addParam("_iterarr" + std::to_string(k), info.type, false);
        iterParams.push_back({a, info.kind, info.type});
        spawnArgs.push_back(info.value);
        break;
      }
    }
  }

  // Captures: always by reference (address of the variable), so writes in
  // the task blame the captured variable via the transfer function.
  struct CapturePlan {
    std::string name;
    TypeId type;
    uint32_t argIdx;
  };
  std::vector<CapturePlan> capturePlans;
  for (const std::string& cname : captures) {
    Binding* bd = lookup(cname);
    CB_ASSERT(bd != nullptr, "capture lookup failed");
    ValueRef addr;
    TypeId ty = bd->type;
    if (bd->kind == Binding::Kind::VarAddr) {
      addr = bd->ref;
    } else {
      // Constant / value bindings are materialized into a temp slot.
      ir::DebugVarId dv = makeTempVar("cap_" + cname, ty, s.loc);
      addr = b().alloca_(ty, dv);
      b().store(bd->ref, addr);
    }
    uint32_t a = addParam(cname, ty, true);
    capturePlans.push_back({cname, ty, a});
    spawnArgs.push_back(addr);
  }

  ir::FuncId taskId = mod_.addFunction(shell);

  // ---- caller side: spawn ------------------------------------------------
  // Chunk bounds are linear offsets [0, count).
  ValueRef count = b().bin(BinKind::Sub, infos[0].hi, infos[0].lo, types.intTy());
  std::vector<ValueRef> ops;
  ops.push_back(ValueRef::makeInt(0));
  ops.push_back(count);
  ops.insert(ops.end(), spawnArgs.begin(), spawnArgs.end());
  b().spawn(taskId, isCoforall ? 1u : 0u, ops);

  // ---- task body ----------------------------------------------------------
  pushFnCtx(taskId, std::move(shell));
  pushScope();
  b().setLoc(s.loc);

  for (const CapturePlan& cp : capturePlans) {
    ctx().fn.params[cp.argIdx].debugVar =
        makeDebugVar(cp.name, cp.type, ir::VarKind::Param, s.loc, taskId);
    bind(cp.name, Binding{Binding::Kind::VarAddr, ValueRef::makeArg(cp.argIdx), cp.type});
  }

  // Simulated aggregator intents: open one per-task buffer before the chunk
  // loop and close (flushing) after it, LIFO. The handle lives in a local
  // slot so `agg.copy` can load it anywhere in the body.
  std::vector<std::pair<std::string, AggBinding>> shadowedAggs;
  for (const AggIntent& ai : s.aggIntents) {
    b().setLoc(ai.loc);
    ValueRef h = b().builtin(ir::BuiltinKind::AggOpen,
                             {ValueRef::makeInt(ai.isSrc ? 1 : 0)}, types.intTy());
    ir::DebugVarId dv = makeDebugVar(ai.name, types.intTy(), ir::VarKind::Local, ai.loc, taskId);
    ValueRef slot = b().alloca_(types.intTy(), dv);
    b().store(h, slot);
    auto prev = aggBindings_.find(ai.name);
    if (prev != aggBindings_.end()) shadowedAggs.emplace_back(ai.name, prev->second);
    aggBindings_[ai.name] = AggBinding{slot, ai.isSrc, ctxStack_.size()};
  }
  b().setLoc(s.loc);

  ValueRef lo = ValueRef::makeArg(0);
  ValueRef hi = ValueRef::makeArg(1);
  emitCountedLoop(lo, hi, s.loc, [&](ValueRef idx) {
    pushScope();
    if (s.head.zipped) {
      std::vector<ValueRef> itvals;
      for (const IterParam& ip : iterParams)
        if (ip.kind == IterInfo::Kind::Array) itvals.push_back(ValueRef::makeArg(ip.argIdx));
      b().iterOverhead(static_cast<uint32_t>(infos.size()), itvals);
    }
    if (twoDSingle) {
      // Reconstruct (i, j) from the linear index: i = lo0 + idx / n1,
      // j = lo1 + idx % n1 — the per-iteration index math Chapel's
      // follower iterators perform.
      ValueRef dom = ValueRef::makeArg(iterParams[0].argIdx);
      ValueRef lo0 = b().domainDim(dom, 0, false);
      ValueRef lo1 = b().domainDim(dom, 1, false);
      ValueRef hi1 = b().domainDim(dom, 1, true);
      ValueRef n1p = b().bin(BinKind::Sub, hi1, lo1, types.intTy());
      ValueRef n1 = b().bin(BinKind::Add, n1p, ValueRef::makeInt(1), types.intTy());
      ValueRef q = b().bin(BinKind::Div, idx, n1, types.intTy());
      ValueRef r = b().bin(BinKind::Mod, idx, n1, types.intTy());
      ValueRef iV = b().bin(BinKind::Add, lo0, q, types.intTy());
      ValueRef jV = b().bin(BinKind::Add, lo1, r, types.intTy());
      for (int k = 0; k < 2; ++k) {
        ir::DebugVarId dv = makeDebugVar(s.head.indexNames[k], types.intTy(), ir::VarKind::Local,
                                         s.loc, taskId);
        ValueRef slot = b().alloca_(types.intTy(), dv);
        b().store(k == 0 ? iV : jV, slot);
        bind(s.head.indexNames[k], Binding{Binding::Kind::VarAddr, slot, types.intTy()});
      }
    } else {
      for (size_t k = 0; k < infos.size(); ++k) {
        const IterParam& ip = iterParams[k];
        // Rebuild an IterInfo against the task's own parameters.
        IterInfo local;
        local.kind = ip.kind;
        switch (ip.kind) {
          case IterInfo::Kind::Range:
            local.lo = ValueRef::makeArg(ip.argIdx);
            break;
          case IterInfo::Kind::Array:
            local.value = ValueRef::makeArg(ip.argIdx);
            local.type = ip.type;
            break;
          default:
            break;
        }
        bindLoopIndex(s.head.indexNames[k], local, idx, s.loc);
      }
    }
    lowerStmts(s.body);
    popScope();
  });

  for (auto rit = s.aggIntents.rbegin(); rit != s.aggIntents.rend(); ++rit) {
    ValueRef slot = aggBindings_[rit->name].slot;
    b().builtin(ir::BuiltinKind::AggClose, {b().load(slot, types.intTy())}, types.voidTy());
    aggBindings_.erase(rit->name);
  }
  for (auto& [nm, bnd] : shadowedAggs) aggBindings_[nm] = bnd;

  popScope();
  popFnCtxAndCommit();
}

void Lowerer::lowerReturn(const Stmt& s) {
  if (!s.expr) {
    b().ret();
    return;
  }
  TypedValue v = lowerExpr(*s.expr);
  b().ret(coerce(v, ctx().retTy, s.loc));
}

// ------------------------------------------------------------ expressions

Lowerer::TypedValue Lowerer::lowerExpr(const Expr& e) {
  ir::TypeContext& types = mod_.types();
  b().setLoc(e.loc);
  switch (e.kind) {
    case ExprKind::IntLit: return {ValueRef::makeInt(e.intVal), types.intTy()};
    case ExprKind::RealLit: return {ValueRef::makeReal(e.realVal), types.realTy()};
    case ExprKind::BoolLit: return {ValueRef::makeBool(e.boolVal), types.boolTy()};
    case ExprKind::StringLit:
      return {ValueRef::makeString(mod_.addString(e.strVal)), types.stringTy()};
    case ExprKind::Ident: {
      if (Binding* bd = lookup(e.strVal)) {
        if (bd->kind == Binding::Kind::VarAddr) return {b().load(bd->ref, bd->type), bd->type};
        return {bd->ref, bd->type};
      }
      auto g = globalsByName_.find(e.strVal);
      if (g != globalsByName_.end()) {
        TypeId ty = mod_.global(g->second).type;
        return {b().load(ValueRef::makeGlobal(g->second), ty), ty};
      }
      if (e.strVal == "numLocales")
        return {b().builtin(BuiltinKind::NumLocales, {}, types.intTy()), types.intTy()};
      error(e.loc, "unknown identifier '" + e.strVal + "'");
      return makeError(e.loc);
    }
    case ExprKind::Unary: {
      TypedValue v = lowerExpr(*e.args[0]);
      if (e.unOp == UnOp::Neg) {
        if (!types.isNumeric(v.type)) {
          error(e.loc, "negation needs a numeric operand");
          return makeError(e.loc);
        }
        return {b().un(UnKind::Neg, v.v, v.type), v.type};
      }
      return {b().un(UnKind::Not, v.v, types.boolTy()), types.boolTy()};
    }
    case ExprKind::Binary: return lowerBinary(e);
    case ExprKind::Call: return lowerCall(e);
    case ExprKind::MethodCall: return lowerMethodCall(e);
    case ExprKind::Index: return lowerIndexExpr(e);
    case ExprKind::Field: {
      // `here.id` — the simulated current-locale id.
      if (e.strVal == "id" && e.args[0]->kind == ExprKind::Ident &&
          e.args[0]->strVal == "here" && !lookup("here") && !globalsByName_.count("here"))
        return {b().builtin(BuiltinKind::HereId, {}, types.intTy()), types.intTy()};
      // Record field reads on addressable bases go through FieldAddr+Load,
      // keeping the address chain resolvable for the blame analysis (and
      // avoiding whole-record copies). `.size` stays a domain/array
      // pseudo-field.
      if (e.strVal != "size" && isLValueExpr(e)) {
        LValue lv = lowerLValue(e);
        if (!lv.valid) return makeError(e.loc);
        return {b().load(lv.addr, lv.type), lv.type};
      }
      TypedValue base = lowerExpr(*e.args[0]);
      TypeKind k = types.kindOf(base.type);
      if ((k == TypeKind::Domain || k == TypeKind::Array) && e.strVal == "size")
        return {b().domainSize(base.v), types.intTy()};
      if (k == TypeKind::Record) {
        const ir::Type& rt = types.get(base.type);
        for (uint32_t i = 0; i < rt.fields.size(); ++i) {
          if (mod_.interner().str(rt.fields[i].name) == e.strVal)
            return {b().tupleGet(base.v, i, rt.fields[i].type), rt.fields[i].type};
        }
        error(e.loc, "record has no field '" + e.strVal + "'");
        return makeError(e.loc);
      }
      error(e.loc, "'." + e.strVal + "' is not supported on this type");
      return makeError(e.loc);
    }
    case ExprKind::TupleLit: {
      std::vector<ValueRef> elems;
      std::vector<TypeId> elemTys;
      for (const ExprPtr& a : e.args) {
        TypedValue v = lowerExpr(*a);
        elems.push_back(v.v);
        elemTys.push_back(v.type);
      }
      TypeId ty = types.tuple(std::move(elemTys));
      return {b().tupleMake(elems, ty), ty};
    }
    case ExprKind::TupleIndex: {
      if (isLValueExpr(*e.args[0])) {
        LValue lv = lowerLValue(e);
        if (!lv.valid) return makeError(e.loc);
        return {b().load(lv.addr, lv.type), lv.type};
      }
      TypedValue base = lowerExpr(*e.args[0]);
      if (types.kindOf(base.type) != TypeKind::Tuple) {
        error(e.loc, "tuple indexing on a non-tuple value");
        return makeError(e.loc);
      }
      const ir::Type& tt = types.get(base.type);
      int64_t idx = constIntOf(*e.args[1]);
      if (idx >= 1 && static_cast<size_t>(idx) <= tt.elems.size()) {
        TypeId ety = tt.elems[idx - 1];
        return {b().tupleGet(base.v, static_cast<uint32_t>(idx - 1), ety), ety};
      }
      for (TypeId et : tt.elems) {
        if (et != tt.elems.front()) {
          error(e.loc, "run-time tuple indexing needs a homogeneous tuple");
          return makeError(e.loc);
        }
      }
      ValueRef iv = coerce(lowerExpr(*e.args[1]), types.intTy(), e.loc);
      return {b().tupleGetDyn(base.v, iv, tt.elems.front()), tt.elems.front()};
    }
    case ExprKind::Reduce: {
      // `+ reduce A` — lowered to a sequential accumulation loop over the
      // array's elements (the paper's §VI future work: reduction support).
      TypedValue arr = lowerExpr(*e.args[0]);
      if (types.kindOf(arr.type) != TypeKind::Array) {
        error(e.loc, "reduce expects an array operand");
        return makeError(e.loc);
      }
      TypeId elem = types.arrayElem(arr.type);
      if (!types.isNumeric(elem)) {
        error(e.loc, "reduce needs a numeric element type");
        return makeError(e.loc);
      }
      bool isReal = types.kindOf(elem) == TypeKind::Real;
      ir::BinKind op = e.strVal == "min"  ? BinKind::Min
                     : e.strVal == "max"  ? BinKind::Max
                     : e.binOp == BinOp::Mul ? BinKind::Mul
                                             : BinKind::Add;
      ValueRef acc = b().alloca_(elem, makeTempVar("reduce", elem, e.loc));
      // Identity for +/*; for min/max, seed with the first element (empty
      // arrays reduce to the identity of +, i.e. zero).
      ValueRef identity =
          (op == BinKind::Mul)
              ? (isReal ? ValueRef::makeReal(1.0) : ValueRef::makeInt(1))
              : (isReal ? ValueRef::makeReal(0.0) : ValueRef::makeInt(0));
      b().store(identity, acc);
      ValueRef n = b().domainSize(arr.v);
      ValueRef hi = b().bin(BinKind::Sub, n, ValueRef::makeInt(1), types.intTy());
      bool seedFirst = (op == BinKind::Min || op == BinKind::Max);
      if (seedFirst) {
        // Seed with the first element when the array is non-empty.
        ir::BlockId seedB = b().newBlock("reduce.seed");
        ir::BlockId contB = b().newBlock("reduce.cont");
        ValueRef nonEmpty = b().bin(BinKind::Gt, n, ValueRef::makeInt(0), types.boolTy());
        b().condBr(nonEmpty, seedB, contB);
        b().setBlock(seedB);
        ValueRef first =
            b().load(b().indexAddr(arr.v, {ValueRef::makeInt(0)}, elem, /*linear=*/true), elem);
        b().store(first, acc);
        b().br(contB);
        b().setBlock(contB);
      }
      emitCountedLoop(ValueRef::makeInt(seedFirst ? 1 : 0), hi, e.loc, [&](ValueRef idx) {
        ValueRef ev = b().load(b().indexAddr(arr.v, {idx}, elem, /*linear=*/true), elem);
        ValueRef cur = b().load(acc, elem);
        b().store(b().bin(op, cur, ev, elem), acc);
      });
      return {b().load(acc, elem), elem};
    }
    case ExprKind::Range: {
      // A naked range in value position becomes a 1-D domain.
      TypedValue lo = lowerExpr(*e.args[0]);
      TypedValue cnt = lowerExpr(*e.args[1]);
      ValueRef loV = coerce(lo, types.intTy(), e.loc);
      ValueRef hiV;
      if (e.counted) {
        ValueRef n = coerce(cnt, types.intTy(), e.loc);
        ValueRef p = b().bin(BinKind::Add, loV, n, types.intTy());
        hiV = b().bin(BinKind::Sub, p, ValueRef::makeInt(1), types.intTy());
      } else {
        hiV = coerce(cnt, types.intTy(), e.loc);
      }
      return {b().domainMake({loV, hiV}, 1), types.domain(1)};
    }
    case ExprKind::DomainLit: {
      std::vector<ValueRef> bounds;
      for (const ExprPtr& a : e.args) {
        if (a->kind != ExprKind::Range) {
          error(a->loc, "domain literal components must be ranges");
          return makeError(e.loc);
        }
        TypedValue lo = lowerExpr(*a->args[0]);
        TypedValue cnt = lowerExpr(*a->args[1]);
        ValueRef loV = coerce(lo, types.intTy(), a->loc);
        ValueRef hiV;
        if (a->counted) {
          ValueRef n = coerce(cnt, types.intTy(), a->loc);
          ValueRef p = b().bin(BinKind::Add, loV, n, types.intTy());
          hiV = b().bin(BinKind::Sub, p, ValueRef::makeInt(1), types.intTy());
        } else {
          hiV = coerce(cnt, types.intTy(), a->loc);
        }
        bounds.push_back(loV);
        bounds.push_back(hiV);
      }
      uint8_t rank = static_cast<uint8_t>(e.args.size());
      return {b().domainMake(bounds, rank), types.domain(rank)};
    }
    case ExprKind::Dmapped: {
      // `{...} dmapped Block` / `dmapped Cyclic` — stamp a distribution onto
      // a domain value. The locale count binds at run time (numLocales).
      TypedValue dom = lowerExpr(*e.args[0]);
      if (types.kindOf(dom.type) != TypeKind::Domain) {
        error(e.loc, "dmapped needs a domain operand");
        return makeError(e.loc);
      }
      int64_t distKind = e.strVal == "Block"  ? 1
                       : e.strVal == "Cyclic" ? 2
                                              : 0;
      if (distKind == 0) {
        error(e.loc, "unknown distribution '" + e.strVal + "' (expected Block or Cyclic)");
        return makeError(e.loc);
      }
      return {b().builtin(BuiltinKind::Dmapped, {dom.v, ValueRef::makeInt(distKind)}, dom.type),
              dom.type};
    }
  }
  CB_UNREACHABLE("bad expr kind");
}

Lowerer::TypedValue Lowerer::tupleElementwise(BinOp op, TypedValue a, TypedValue b_,
                                              SourceLoc loc) {
  ir::TypeContext& types = mod_.types();
  bool aTup = types.kindOf(a.type) == TypeKind::Tuple;
  bool bTup = types.kindOf(b_.type) == TypeKind::Tuple;
  const ir::Type& tt = types.get(aTup ? a.type : b_.type);
  TypeId resultTy = aTup ? a.type : b_.type;
  size_t n = tt.elems.size();
  if (aTup && bTup && types.get(a.type).elems.size() != types.get(b_.type).elems.size()) {
    error(loc, "tuple arity mismatch in element-wise operation");
    return makeError(loc);
  }
  // The expensive shape the paper's CENN optimization removes: N element
  // extractions, N scalar ops, then a fresh tuple construction.
  std::vector<ValueRef> elems;
  for (uint32_t i = 0; i < n; ++i) {
    TypeId ety = tt.elems[i];
    ValueRef av = aTup ? b().tupleGet(a.v, i, ety) : coerce(a, ety, loc);
    ValueRef bv = bTup ? b().tupleGet(b_.v, i, ety) : coerce(b_, ety, loc);
    elems.push_back(b().bin(toIrBin(op), av, bv, ety));
  }
  return {b().tupleMake(elems, resultTy), resultTy};
}

Lowerer::TypedValue Lowerer::lowerBinary(const Expr& e) {
  ir::TypeContext& types = mod_.types();
  TypedValue a = lowerExpr(*e.args[0]);
  TypedValue b2 = lowerExpr(*e.args[1]);

  if (types.kindOf(a.type) == TypeKind::Tuple || types.kindOf(b2.type) == TypeKind::Tuple) {
    switch (e.binOp) {
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::Mul:
      case BinOp::Div:
        return tupleElementwise(e.binOp, a, b2, e.loc);
      default:
        error(e.loc, "unsupported tuple operation");
        return makeError(e.loc);
    }
  }

  switch (e.binOp) {
    case BinOp::And:
    case BinOp::Or:
      return {b().bin(toIrBin(e.binOp), a.v, b2.v, types.boolTy()), types.boolTy()};
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge: {
      TypeId common = (types.kindOf(a.type) == TypeKind::Real ||
                       types.kindOf(b2.type) == TypeKind::Real)
                          ? types.realTy()
                          : a.type;
      ValueRef av = coerce(a, common, e.loc);
      ValueRef bv = coerce(b2, common, e.loc);
      return {b().bin(toIrBin(e.binOp), av, bv, types.boolTy()), types.boolTy()};
    }
    default: {
      if (!types.isNumeric(a.type) || !types.isNumeric(b2.type)) {
        error(e.loc, "arithmetic needs numeric operands");
        return makeError(e.loc);
      }
      TypeId common = (types.kindOf(a.type) == TypeKind::Real ||
                       types.kindOf(b2.type) == TypeKind::Real)
                          ? types.realTy()
                          : types.intTy();
      if (e.binOp == BinOp::Pow) common = types.realTy();
      ValueRef av = coerce(a, common, e.loc);
      ValueRef bv = coerce(b2, common, e.loc);
      return {b().bin(toIrBin(e.binOp), av, bv, common), common};
    }
  }
}

Lowerer::TypedValue Lowerer::lowerCall(const Expr& e) {
  ir::TypeContext& types = mod_.types();

  // Tuple indexing `t(i)` — 1-based, Chapel 1.x style. Compile-time
  // constant indices (literals, `for param` indices) compile to a direct
  // extraction; run-time indices compile to the expensive dynamic dispatch.
  {
    ValueRef tupleVal;
    TypeId tupleTy = ir::kInvalidType;
    if (Binding* bd = lookup(e.strVal)) {
      if (types.kindOf(bd->type) != TypeKind::Tuple) {
        error(e.loc, "'" + e.strVal + "' is not callable");
        return makeError(e.loc);
      }
      tupleTy = bd->type;
      tupleVal = (bd->kind == Binding::Kind::VarAddr) ? b().load(bd->ref, bd->type) : bd->ref;
    } else {
      auto g = globalsByName_.find(e.strVal);
      if (g != globalsByName_.end() &&
          types.kindOf(mod_.global(g->second).type) == TypeKind::Tuple) {
        tupleTy = mod_.global(g->second).type;
        tupleVal = b().load(ValueRef::makeGlobal(g->second), tupleTy);
      }
    }
    if (tupleTy != ir::kInvalidType) {
      if (e.args.size() != 1) {
        error(e.loc, "tuple indexing takes one index");
        return makeError(e.loc);
      }
      const ir::Type& tt = types.get(tupleTy);
      int64_t idx = -1;
      if (e.args[0]->kind == ExprKind::IntLit) {
        idx = e.args[0]->intVal;
      } else if (e.args[0]->kind == ExprKind::Ident) {
        Binding* ib = lookup(e.args[0]->strVal);
        if (ib && ib->kind == Binding::Kind::ConstVal &&
            ib->ref.kind == ValueRef::Kind::ConstInt)
          idx = ib->ref.i;
      }
      if (idx >= 1 && static_cast<size_t>(idx) <= tt.elems.size()) {
        TypeId ety = tt.elems[idx - 1];
        return {b().tupleGet(tupleVal, static_cast<uint32_t>(idx - 1), ety), ety};
      }
      // Dynamic index: requires a homogeneous tuple (single element type).
      for (TypeId et : tt.elems) {
        if (et != tt.elems.front()) {
          error(e.loc, "run-time tuple indexing needs a homogeneous tuple");
          return makeError(e.loc);
        }
      }
      ValueRef iv = coerce(lowerExpr(*e.args[0]), types.intTy(), e.loc);
      return {b().tupleGetDyn(tupleVal, iv, tt.elems.front()), tt.elems.front()};
    }
  }

  // User procedure call.
  auto p = procsByName_.find(e.strVal);
  if (p != procsByName_.end()) {
    ir::FuncId callee = p->second;
    const ir::Function& cf = mod_.function(callee);
    if (cf.params.size() != e.args.size()) {
      error(e.loc, "call to '" + e.strVal + "': expected " + std::to_string(cf.params.size()) +
                       " arguments, got " + std::to_string(e.args.size()));
      return makeError(e.loc);
    }
    std::vector<ValueRef> args;
    for (size_t i = 0; i < e.args.size(); ++i) {
      const ir::Param& prm = cf.params[i];
      if (prm.byRef) {
        LValue lv = lowerLValue(*e.args[i]);
        if (lv.valid && lv.type == prm.type) {
          args.push_back(lv.addr);
        } else {
          // Non-lvalue by-ref argument (e.g. a view expression): materialize
          // into a temporary slot.
          TypedValue v = lowerExpr(*e.args[i]);
          ValueRef slot =
              b().alloca_(prm.type, makeTempVar("arg_" + e.strVal, prm.type, e.loc));
          b().store(coerce(v, prm.type, e.loc), slot);
          args.push_back(slot);
        }
      } else {
        TypedValue v = lowerExpr(*e.args[i]);
        args.push_back(coerce(v, prm.type, e.loc));
      }
    }
    b().setLoc(e.loc);
    ValueRef r = b().call(callee, args, cf.returnType);
    return {r, cf.returnType};
  }

  // Builtins.
  auto unary = [&](UnKind k) -> TypedValue {
    if (e.args.size() != 1) {
      error(e.loc, e.strVal + " takes one argument");
      return makeError(e.loc);
    }
    TypedValue v = lowerExpr(*e.args[0]);
    if (e.strVal == "abs")
      return {b().un(UnKind::Abs, v.v, v.type), v.type};
    ValueRef rv = coerce(v, types.realTy(), e.loc);
    TypeId rty = (k == UnKind::Floor) ? types.intTy() : types.realTy();
    return {b().un(k, rv, rty), rty};
  };
  if (e.strVal == "sqrt") return unary(UnKind::Sqrt);
  if (e.strVal == "abs") return unary(UnKind::Abs);
  if (e.strVal == "sin") return unary(UnKind::Sin);
  if (e.strVal == "cos") return unary(UnKind::Cos);
  if (e.strVal == "exp") return unary(UnKind::Exp);
  if (e.strVal == "floor") return unary(UnKind::Floor);
  if (e.strVal == "min" || e.strVal == "max") {
    if (e.args.size() != 2) {
      error(e.loc, e.strVal + " takes two arguments");
      return makeError(e.loc);
    }
    TypedValue a = lowerExpr(*e.args[0]);
    TypedValue c = lowerExpr(*e.args[1]);
    TypeId common =
        (types.kindOf(a.type) == TypeKind::Real || types.kindOf(c.type) == TypeKind::Real)
            ? types.realTy()
            : types.intTy();
    ValueRef av = coerce(a, common, e.loc);
    ValueRef cv = coerce(c, common, e.loc);
    return {b().bin(e.strVal == "min" ? BinKind::Min : BinKind::Max, av, cv, common), common};
  }
  if (e.strVal == "random")
    return {b().builtin(BuiltinKind::Random, {}, types.realTy()), types.realTy()};
  if (e.strVal == "clock")
    return {b().builtin(BuiltinKind::Clock, {}, types.intTy()), types.intTy()};
  if (e.strVal == "yield") {
    b().builtin(BuiltinKind::Yield, {}, types.voidTy());
    return {ValueRef::makeInt(0), types.intTy()};
  }
  if (e.strVal == "writeln") {
    std::vector<ValueRef> args;
    for (const ExprPtr& a : e.args) args.push_back(lowerExpr(*a).v);
    b().builtin(BuiltinKind::Writeln, args, types.voidTy());
    return {ValueRef::makeInt(0), types.intTy()};
  }

  error(e.loc, "unknown procedure '" + e.strVal + "'");
  return makeError(e.loc);
}

Lowerer::TypedValue Lowerer::lowerMethodCall(const Expr& e) {
  ir::TypeContext& types = mod_.types();
  // `agg.copy(a, b)` against an active aggregator intent: the base name is
  // not an ordinary variable, so intercept before lowering it as a value.
  if (e.strVal == "copy" && e.args.size() == 3 && e.args[0]->kind == ExprKind::Ident) {
    auto ab = aggBindings_.find(e.args[0]->strVal);
    if (ab != aggBindings_.end()) return lowerAggCopy(e, ab->second);
  }
  TypedValue base = lowerExpr(*e.args[0]);
  TypeKind k = types.kindOf(base.type);
  if (k == TypeKind::Domain) {
    uint8_t rank = types.get(base.type).rank;
    if (e.strVal == "expand") {
      if (e.args.size() != 2) {
        error(e.loc, "expand takes one argument");
        return makeError(e.loc);
      }
      TypedValue amt = lowerExpr(*e.args[1]);
      ValueRef av = coerce(amt, types.intTy(), e.loc);
      return {b().domainExpand(base.v, av, rank), base.type};
    }
    if (e.strVal == "size" && e.args.size() == 1)
      return {b().domainSize(base.v), types.intTy()};
    if ((e.strVal == "low" || e.strVal == "high") && e.args.size() == 2 &&
        e.args[1]->kind == ExprKind::IntLit) {
      uint32_t dim = static_cast<uint32_t>(e.args[1]->intVal) - 1;  // 1-based dims
      return {b().domainDim(base.v, dim, e.strVal == "high"), types.intTy()};
    }
  }
  if (k == TypeKind::Array && e.strVal == "size" && e.args.size() == 1)
    return {b().domainSize(base.v), types.intTy()};
  if (k == TypeKind::Record && e.args.size() == 2) {
    // Tuple-typed field indexing parsed as a method call: `atom.force(1)`.
    const ir::Type& rt = types.get(base.type);
    for (uint32_t i = 0; i < rt.fields.size(); ++i) {
      if (mod_.interner().str(rt.fields[i].name) != e.strVal) continue;
      TypeId fty = rt.fields[i].type;
      if (types.kindOf(fty) != TypeKind::Tuple) break;
      ValueRef fv = b().tupleGet(base.v, i, fty);
      const ir::Type& tt = types.get(fty);
      int64_t idx = constIntOf(*e.args[1]);
      if (idx >= 1 && static_cast<size_t>(idx) <= tt.elems.size()) {
        TypeId ety = tt.elems[idx - 1];
        return {b().tupleGet(fv, static_cast<uint32_t>(idx - 1), ety), ety};
      }
      for (TypeId et : tt.elems) {
        if (et != tt.elems.front()) {
          error(e.loc, "run-time tuple indexing needs a homogeneous tuple");
          return makeError(e.loc);
        }
      }
      ValueRef iv = coerce(lowerExpr(*e.args[1]), types.intTy(), e.loc);
      return {b().tupleGetDyn(fv, iv, tt.elems.front()), tt.elems.front()};
    }
  }
  error(e.loc, "unknown method '" + e.strVal + "' on this type");
  return makeError(e.loc);
}

Lowerer::TypedValue Lowerer::lowerAggCopy(const Expr& e, const AggBinding& ab) {
  ir::TypeContext& types = mod_.types();
  if (ab.ctxDepth != ctxStack_.size()) {
    error(e.loc, "aggregator '" + e.args[0]->strVal + "' used outside its loop body");
    return makeError(e.loc);
  }
  ValueRef handle = b().load(ab.slot, types.intTy());
  // The aggregated (remote) leg must be a 1-D element A[i]; it is passed as
  // separate (array value, index value) operands — NOT through IndexAddr —
  // so the engines classify and buffer it instead of charging the naive
  // per-element remote latency.
  auto lowerRemoteLeg = [&](const Expr& le, ValueRef& arrV, ValueRef& idxV,
                            ir::TypeId& elemTy) -> bool {
    if (le.kind != ExprKind::Index || le.args.size() != 2) {
      error(le.loc, "the aggregated side of agg.copy must be an array element A[i]");
      return false;
    }
    TypedValue abase = lowerExpr(*le.args[0]);
    if (types.kindOf(abase.type) != TypeKind::Array || types.get(abase.type).rank != 1) {
      error(le.loc, "agg.copy expects a 1-D array element");
      return false;
    }
    arrV = abase.v;
    idxV = coerce(lowerExpr(*le.args[1]), types.intTy(), le.loc);
    elemTy = types.get(abase.type).elem;
    return true;
  };
  ValueRef arrV, idxV;
  ir::TypeId elemTy = ir::kInvalidType;
  if (ab.isSrc) {
    // agg.copy(dst, A[i]): buffered remote read of A[i] into local dst.
    LValue dst = lowerLValue(*e.args[1]);
    if (!dst.valid) return makeError(e.loc);
    if (!lowerRemoteLeg(*e.args[2], arrV, idxV, elemTy)) return makeError(e.loc);
    if (dst.type != elemTy) {
      error(e.loc, "agg.copy destination type does not match the element type");
      return makeError(e.loc);
    }
    b().builtin(ir::BuiltinKind::AggCopy, {handle, dst.addr, arrV, idxV}, types.voidTy());
  } else {
    // agg.copy(A[i], src): buffered remote write of src into A[i].
    if (!lowerRemoteLeg(*e.args[1], arrV, idxV, elemTy)) return makeError(e.loc);
    ValueRef srcV = coerce(lowerExpr(*e.args[2]), elemTy, e.loc);
    b().builtin(ir::BuiltinKind::AggCopy, {handle, arrV, idxV, srcV}, types.voidTy());
  }
  return {ValueRef::makeInt(0), types.intTy()};
}

Lowerer::TypedValue Lowerer::lowerIndexExpr(const Expr& e) {
  ir::TypeContext& types = mod_.types();
  TypedValue base = lowerExpr(*e.args[0]);
  if (types.kindOf(base.type) != TypeKind::Array) {
    error(e.loc, "indexing a non-array value");
    return makeError(e.loc);
  }
  const ir::Type& at = types.get(base.type);

  // Array view / domain remap: `Pos[binSpace]` (the expensive slice the
  // paper's MiniMD optimization hoists or removes).
  if (e.args.size() == 2) {
    // Peek at the index expression type without committing to scalar.
    TypedValue idx0 = lowerExpr(*e.args[1]);
    if (types.kindOf(idx0.type) == TypeKind::Domain) {
      return {b().arrayView(base.v, idx0.v, base.type), base.type};
    }
    // Scalar 1-D element access.
    if (at.rank != 1) {
      error(e.loc, "array of rank " + std::to_string(at.rank) + " indexed with 1 index");
      return makeError(e.loc);
    }
    ValueRef iv = coerce(idx0, types.intTy(), e.loc);
    ValueRef addr = b().indexAddr(base.v, {iv}, at.elem);
    return {b().load(addr, at.elem), at.elem};
  }

  if (e.args.size() - 1 != at.rank) {
    error(e.loc, "index count does not match array rank");
    return makeError(e.loc);
  }
  std::vector<ValueRef> idx;
  for (size_t i = 1; i < e.args.size(); ++i)
    idx.push_back(coerce(lowerExpr(*e.args[i]), types.intTy(), e.loc));
  ValueRef addr = b().indexAddr(base.v, idx, at.elem);
  return {b().load(addr, at.elem), at.elem};
}

int64_t Lowerer::constIntOf(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return e.intVal;
    case ExprKind::Ident: {
      Binding* ib = lookup(e.strVal);
      if (ib && ib->kind == Binding::Kind::ConstVal && ib->ref.kind == ValueRef::Kind::ConstInt)
        return ib->ref.i;
      return INT64_MIN;
    }
    case ExprKind::Unary: {
      if (e.unOp != UnOp::Neg) return INT64_MIN;
      int64_t v = constIntOf(*e.args[0]);
      return v == INT64_MIN ? INT64_MIN : -v;
    }
    case ExprKind::Binary: {
      // Fold `param`-index arithmetic (f%4+1 and friends) so tuple
      // accesses in unrolled loops stay static, exactly as Chapel's param
      // folding does.
      int64_t a = constIntOf(*e.args[0]);
      int64_t b = constIntOf(*e.args[1]);
      if (a == INT64_MIN || b == INT64_MIN) return INT64_MIN;
      switch (e.binOp) {
        case BinOp::Add: return a + b;
        case BinOp::Sub: return a - b;
        case BinOp::Mul: return a * b;
        case BinOp::Div: return b == 0 ? INT64_MIN : a / b;
        case BinOp::Mod: return b == 0 ? INT64_MIN : a % b;
        default: return INT64_MIN;
      }
    }
    default:
      return INT64_MIN;
  }
}

bool Lowerer::isLValueExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::Ident: {
      if (Binding* bd = lookup(e.strVal)) return bd->kind == Binding::Kind::VarAddr;
      return globalsByName_.count(e.strVal) > 0;
    }
    case ExprKind::Index:
      // Array elements are addressable (lowerLValue evaluates the base as
      // an array value). Slices `A[dom]` are views, not lvalues, but they
      // never appear under a field access, the only caller of this check.
      return true;
    case ExprKind::Field:
    case ExprKind::TupleIndex:
      return isLValueExpr(*e.args[0]);
    case ExprKind::Call: {
      if (Binding* bd = lookup(e.strVal))
        return bd->kind == Binding::Kind::VarAddr &&
               mod_.types().kindOf(bd->type) == TypeKind::Tuple;
      auto g = globalsByName_.find(e.strVal);
      return g != globalsByName_.end() &&
             mod_.types().kindOf(mod_.global(g->second).type) == TypeKind::Tuple;
    }
    default:
      return false;
  }
}

Lowerer::LValue Lowerer::lowerLValue(const Expr& e) {
  ir::TypeContext& types = mod_.types();
  b().setLoc(e.loc);
  switch (e.kind) {
    case ExprKind::Ident: {
      if (Binding* bd = lookup(e.strVal)) {
        if (bd->kind != Binding::Kind::VarAddr) {
          error(e.loc, "'" + e.strVal + "' is not assignable");
          return {};
        }
        return {bd->ref, bd->type, true};
      }
      auto g = globalsByName_.find(e.strVal);
      if (g != globalsByName_.end())
        return {ValueRef::makeGlobal(g->second), mod_.global(g->second).type, true};
      error(e.loc, "unknown identifier '" + e.strVal + "'");
      return {};
    }
    case ExprKind::Index: {
      TypedValue base = lowerExpr(*e.args[0]);
      if (types.kindOf(base.type) != TypeKind::Array) {
        error(e.loc, "indexing a non-array value");
        return {};
      }
      const ir::Type& at = types.get(base.type);
      if (e.args.size() - 1 != at.rank) {
        error(e.loc, "index count does not match array rank");
        return {};
      }
      std::vector<ValueRef> idx;
      for (size_t i = 1; i < e.args.size(); ++i)
        idx.push_back(coerce(lowerExpr(*e.args[i]), types.intTy(), e.loc));
      return {b().indexAddr(base.v, idx, at.elem), at.elem, true};
    }
    case ExprKind::Field: {
      LValue base = lowerLValue(*e.args[0]);
      if (!base.valid) return {};
      if (types.kindOf(base.type) != TypeKind::Record) {
        error(e.loc, "field access on a non-record value");
        return {};
      }
      const ir::Type& rt = types.get(base.type);
      for (uint32_t i = 0; i < rt.fields.size(); ++i) {
        if (mod_.interner().str(rt.fields[i].name) == e.strVal)
          return {b().fieldAddr(base.addr, i, rt.fields[i].type), rt.fields[i].type, true};
      }
      error(e.loc, "record has no field '" + e.strVal + "'");
      return {};
    }
    case ExprKind::TupleIndex: {
      LValue base = lowerLValue(*e.args[0]);
      if (!base.valid) return {};
      if (types.kindOf(base.type) != TypeKind::Tuple) {
        error(e.loc, "tuple indexing on a non-tuple value");
        return {};
      }
      const ir::Type& tt = types.get(base.type);
      int64_t idx = constIntOf(*e.args[1]);
      if (idx >= 1 && static_cast<size_t>(idx) <= tt.elems.size()) {
        TypeId ety = tt.elems[idx - 1];
        return {b().tupleAddr(base.addr, static_cast<uint32_t>(idx - 1), ety), ety, true};
      }
      for (TypeId et : tt.elems) {
        if (et != tt.elems.front()) {
          error(e.loc, "run-time tuple indexing needs a homogeneous tuple");
          return {};
        }
      }
      ValueRef iv = coerce(lowerExpr(*e.args[1]), types.intTy(), e.loc);
      return {b().tupleAddrDyn(base.addr, iv, tt.elems.front()), tt.elems.front(), true};
    }
    case ExprKind::Call: {
      // Tuple element lvalue `t(1)`.
      Binding* bd = lookup(e.strVal);
      ValueRef baseAddr;
      TypeId baseTy = ir::kInvalidType;
      if (bd && bd->kind == Binding::Kind::VarAddr) {
        baseAddr = bd->ref;
        baseTy = bd->type;
      } else {
        auto g = globalsByName_.find(e.strVal);
        if (g != globalsByName_.end()) {
          baseAddr = ValueRef::makeGlobal(g->second);
          baseTy = mod_.global(g->second).type;
        }
      }
      if (baseTy == ir::kInvalidType || types.kindOf(baseTy) != TypeKind::Tuple) {
        error(e.loc, "cannot assign to this expression");
        return {};
      }
      if (e.args.size() != 1) {
        error(e.loc, "tuple indexing takes one index");
        return {};
      }
      int64_t idx = -1;
      if (e.args[0]->kind == ExprKind::IntLit) idx = e.args[0]->intVal;
      else if (e.args[0]->kind == ExprKind::Ident) {
        Binding* ib = lookup(e.args[0]->strVal);
        if (ib && ib->kind == Binding::Kind::ConstVal &&
            ib->ref.kind == ValueRef::Kind::ConstInt)
          idx = ib->ref.i;
      }
      const ir::Type& tt = types.get(baseTy);
      if (idx >= 1 && static_cast<size_t>(idx) <= tt.elems.size()) {
        TypeId ety = tt.elems[idx - 1];
        return {b().tupleAddr(baseAddr, static_cast<uint32_t>(idx - 1), ety), ety, true};
      }
      for (TypeId et : tt.elems) {
        if (et != tt.elems.front()) {
          error(e.loc, "run-time tuple indexing needs a homogeneous tuple");
          return {};
        }
      }
      ValueRef iv = coerce(lowerExpr(*e.args[0]), types.intTy(), e.loc);
      return {b().tupleAddrDyn(baseAddr, iv, tt.elems.front()), tt.elems.front(), true};
    }
    default:
      error(e.loc, "cannot assign to this expression");
      return {};
  }
}

// Explicit instantiation not needed: emitCountedLoop is used only within
// this translation unit and lower.cpp does not reference it.

}  // namespace cb::fe
