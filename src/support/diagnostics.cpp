#include "support/diagnostics.h"

#include <sstream>

namespace cb {

namespace {
const char* levelName(DiagLevel l) {
  switch (l) {
    case DiagLevel::Note: return "note";
    case DiagLevel::Warning: return "warning";
    case DiagLevel::Error: return "error";
  }
  return "?";
}
}  // namespace

std::string DiagnosticEngine::renderAll() const {
  std::ostringstream out;
  for (const Diagnostic& d : diags_) {
    out << sm_->render(d.loc) << ": " << levelName(d.level) << ": " << d.message << "\n";
  }
  return out.str();
}

}  // namespace cb
