// A small fixed-size worker pool for the parallel post-mortem pipeline and
// other embarrassingly-parallel batch work. Deliberately minimal: submit
// `void()` jobs, then `wait()` for the batch to drain. Results are
// communicated through pre-sized output slots owned by the caller, so jobs
// never contend on shared mutable state.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cb {

class ThreadPool {
 public:
  /// Spawns `numThreads` workers (clamped to >= 1). A pool of size 1 still
  /// runs jobs on its single worker thread, preserving one code path.
  explicit ThreadPool(uint32_t numThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Safe to call from any thread, including from inside a
  /// running job (jobs may fan out further work before the batch drains).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished. The pool is reusable
  /// afterwards: submit/wait cycles can repeat.
  ///
  /// Exception safety: if any job of the batch threw, the FIRST captured
  /// exception is rethrown here (the worker thread itself never terminates
  /// the process). Later exceptions of the same batch are dropped; the pool
  /// stays usable for the next submit/wait cycle.
  void wait();

  uint32_t size() const { return static_cast<uint32_t>(threads_.size()); }

  /// Hardware concurrency, clamped to >= 1 (hardware_concurrency() may
  /// return 0 on exotic platforms).
  static uint32_t defaultConcurrency();

 private:
  void workerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable workAvailable_;
  std::condition_variable batchDone_;
  uint64_t pending_ = 0;  // queued + running jobs
  std::exception_ptr firstError_;  // first exception thrown by a job
  bool shutdown_ = false;
};

}  // namespace cb
