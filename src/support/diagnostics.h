// Diagnostic reporting for the mini-Chapel frontend and the analysis layers.
#pragma once

#include <string>
#include <vector>

#include "support/source_manager.h"

namespace cb {

enum class DiagLevel { Note, Warning, Error };

struct Diagnostic {
  DiagLevel level = DiagLevel::Error;
  SourceLoc loc;
  std::string message;
};

/// Collects diagnostics; rendering is deferred so tests can assert on
/// structured contents.
class DiagnosticEngine {
 public:
  explicit DiagnosticEngine(const SourceManager& sm) : sm_(&sm) {}

  void error(SourceLoc loc, std::string msg) { add(DiagLevel::Error, loc, std::move(msg)); }
  void warning(SourceLoc loc, std::string msg) { add(DiagLevel::Warning, loc, std::move(msg)); }
  void note(SourceLoc loc, std::string msg) { add(DiagLevel::Note, loc, std::move(msg)); }

  bool hasErrors() const { return numErrors_ > 0; }
  size_t numErrors() const { return numErrors_; }
  const std::vector<Diagnostic>& all() const { return diags_; }

  /// Renders every diagnostic as "file:line:col: level: message" lines.
  std::string renderAll() const;

 private:
  void add(DiagLevel level, SourceLoc loc, std::string msg) {
    if (level == DiagLevel::Error) ++numErrors_;
    diags_.push_back({level, loc, std::move(msg)});
  }

  const SourceManager* sm_;
  std::vector<Diagnostic> diags_;
  size_t numErrors_ = 0;
};

}  // namespace cb
