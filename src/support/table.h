// Plain-text table and CSV rendering used by the report layer and the
// benchmark harnesses to regenerate the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace cb {

/// Column-aligned text table. Rows may be added cell-by-cell or as a whole.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void addRow(std::vector<std::string> row);

  /// Adds a horizontal separator before the next row (used to group related
  /// rows, e.g. Table VIII's optimization groups).
  void addSeparator();

  size_t numRows() const { return rows_.size(); }

  /// Renders with a header rule and padded columns.
  std::string render() const;

  /// Renders as RFC-4180-ish CSV (fields containing comma/quote/newline are
  /// quoted).
  std::string renderCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> separators_;  // row indices before which to draw a rule
};

/// Formats a double with the given number of decimal places.
std::string formatFixed(double v, int places);

/// Formats a fraction (0..1) as a percentage with one decimal, e.g. "96.3%".
std::string formatPercent(double fraction, int places = 1);

}  // namespace cb
