#include "support/source_manager.h"

#include <fstream>
#include <sstream>

#include "support/common.h"

namespace cb {

uint32_t SourceManager::addBuffer(std::string name, std::string contents) {
  Buffer b;
  b.name = std::move(name);
  b.contents = std::move(contents);
  b.lineStarts.push_back(0);
  for (size_t i = 0; i < b.contents.size(); ++i) {
    if (b.contents[i] == '\n') b.lineStarts.push_back(i + 1);
  }
  buffers_.push_back(std::move(b));
  return static_cast<uint32_t>(buffers_.size());  // ids are 1-based
}

std::optional<uint32_t> SourceManager::addFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return addBuffer(path, ss.str());
}

const SourceManager::Buffer& SourceManager::buf(uint32_t file) const {
  CB_ASSERT(file >= 1 && file <= buffers_.size(), "invalid file id");
  return buffers_[file - 1];
}

const std::string& SourceManager::name(uint32_t file) const { return buf(file).name; }
const std::string& SourceManager::contents(uint32_t file) const { return buf(file).contents; }

std::string_view SourceManager::lineText(uint32_t file, uint32_t line) const {
  const Buffer& b = buf(file);
  if (line == 0 || line > b.lineStarts.size()) return {};
  size_t start = b.lineStarts[line - 1];
  size_t end = (line < b.lineStarts.size()) ? b.lineStarts[line] : b.contents.size();
  while (end > start && (b.contents[end - 1] == '\n' || b.contents[end - 1] == '\r')) --end;
  return std::string_view(b.contents).substr(start, end - start);
}

uint32_t SourceManager::lineCount(uint32_t file) const {
  return static_cast<uint32_t>(buf(file).lineStarts.size());
}

std::string SourceManager::render(const SourceLoc& loc) const {
  if (!loc.valid()) return "<unknown>";
  std::string out = name(loc.file) + ":" + std::to_string(loc.line);
  if (loc.col != 0) out += ":" + std::to_string(loc.col);
  return out;
}

}  // namespace cb
