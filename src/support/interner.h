// String interning: maps strings to dense 32-bit symbols for cheap
// comparison and use as map keys throughout the compiler and profiler.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace cb {

/// A handle to an interned string. Value 0 is the empty symbol.
class Symbol {
 public:
  constexpr Symbol() = default;
  constexpr explicit Symbol(uint32_t id) : id_(id) {}

  constexpr uint32_t id() const { return id_; }
  constexpr bool empty() const { return id_ == 0; }
  friend constexpr bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend constexpr bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend constexpr bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  uint32_t id_ = 0;
};

/// Owns the interned strings. Not thread-safe to mutate; each compilation
/// pipeline owns exactly one interner. Concurrent *readers* (str() on
/// already-interned symbols, e.g. locale pipelines sharing one const
/// compilation) are safe as long as nobody interns.
///
/// Storage is arena-style: the owned strings live in a std::deque (chunked
/// allocation, element addresses never move on growth), and the lookup map
/// keys string_views INTO that arena instead of owning a second copy of
/// every string. Compared with the seed's vector<string> + string-keyed map
/// this halves the per-string storage, removes the per-intern key copy, and
/// — together with reserve() — removes the rehash/realloc churn that showed
/// up in consolidate+attribute (see bench_pipeline_micro BM_InternChurn).
class StringInterner {
 public:
  StringInterner() {
    strings_.emplace_back();  // symbol 0 = ""
    map_.emplace(std::string_view(strings_.back()), 0u);
  }

  /// Pre-sizes the hash table for about `n` distinct strings so a burst of
  /// interns (one per entity/context, as in attribution) never rehashes.
  void reserve(size_t n) { map_.reserve(n + 1); }

  Symbol intern(std::string_view s) {
    auto it = map_.find(s);
    if (it != map_.end()) return Symbol(it->second);
    uint32_t id = static_cast<uint32_t>(strings_.size());
    strings_.emplace_back(s);
    // Deque elements are address-stable, so the view stays valid for the
    // interner's lifetime.
    map_.emplace(std::string_view(strings_.back()), id);
    return Symbol(id);
  }

  const std::string& str(Symbol s) const { return strings_.at(s.id()); }

  size_t size() const { return strings_.size(); }

  /// Approximate heap footprint (arena characters + map buckets), for
  /// allocator-counter style accounting (StreamingAggregator).
  size_t approxMemoryBytes() const {
    size_t bytes = map_.bucket_count() * sizeof(void*) +
                   map_.size() * (sizeof(std::string_view) + 2 * sizeof(void*) + 8);
    for (const std::string& s : strings_) bytes += sizeof(std::string) + s.capacity();
    return bytes;
  }

 private:
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const { return std::hash<std::string_view>{}(s); }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a == b; }
  };
  std::deque<std::string> strings_;  // arena: addresses stable under growth
  std::unordered_map<std::string_view, uint32_t, SvHash, SvEq> map_;
};

}  // namespace cb

template <>
struct std::hash<cb::Symbol> {
  size_t operator()(cb::Symbol s) const { return std::hash<uint32_t>{}(s.id()); }
};
