// String interning: maps strings to dense 32-bit symbols for cheap
// comparison and use as map keys throughout the compiler and profiler.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cb {

/// A handle to an interned string. Value 0 is the empty symbol.
class Symbol {
 public:
  constexpr Symbol() = default;
  constexpr explicit Symbol(uint32_t id) : id_(id) {}

  constexpr uint32_t id() const { return id_; }
  constexpr bool empty() const { return id_ == 0; }
  friend constexpr bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend constexpr bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend constexpr bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  uint32_t id_ = 0;
};

/// Owns the interned strings. Not thread-safe; each compilation pipeline owns
/// exactly one interner and the runtime only reads resolved strings.
class StringInterner {
 public:
  StringInterner() {
    strings_.emplace_back();  // symbol 0 = ""
    map_.emplace(std::string(), 0u);
  }

  Symbol intern(std::string_view s) {
    auto it = map_.find(s);
    if (it != map_.end()) return Symbol(it->second);
    uint32_t id = static_cast<uint32_t>(strings_.size());
    strings_.emplace_back(s);
    map_.emplace(strings_.back(), id);
    return Symbol(id);
  }

  const std::string& str(Symbol s) const { return strings_.at(s.id()); }

  size_t size() const { return strings_.size(); }

 private:
  // Node-based map keyed by views into strings_ (deque-like stability is
  // guaranteed because std::string contents don't move on vector growth only
  // if we store them indirectly; we therefore key on owned copies).
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const { return std::hash<std::string_view>{}(s); }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a == b; }
  };
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t, SvHash, SvEq> map_;
};

}  // namespace cb

template <>
struct std::hash<cb::Symbol> {
  size_t operator()(cb::Symbol s) const { return std::hash<uint32_t>{}(s.id()); }
};
