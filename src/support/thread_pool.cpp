#include "support/thread_pool.h"

#include <algorithm>

namespace cb {

ThreadPool::ThreadPool(uint32_t numThreads) {
  uint32_t n = std::max<uint32_t>(1, numThreads);
  threads_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  workAvailable_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
    ++pending_;
  }
  workAvailable_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  batchDone_.wait(lock, [this] { return pending_ == 0; });
  if (firstError_) {
    std::exception_ptr e = std::move(firstError_);
    firstError_ = nullptr;
    std::rethrow_exception(e);
  }
}

uint32_t ThreadPool::defaultConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      workAvailable_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      // A throwing job must not escape the worker thread (std::terminate);
      // capture the first failure of the batch and surface it from wait().
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !firstError_) firstError_ = std::move(err);
      if (--pending_ == 0) batchDone_.notify_all();
    }
  }
}

}  // namespace cb
