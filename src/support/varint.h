// LEB128 varint + zigzag-delta encoding helpers shared by the run-log
// serializers (sampling/log_io) and the analysis-cache entry format
// (cache/analysis_cache). Decode-side bounds checking lives with the
// readers (sampling/chunk_reader for pull-based streams, StringByteReader
// below for in-memory buffers).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cb {

inline void putVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

inline uint64_t zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t unzigzag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Delta between two unsigned values as a signed quantity (two's-complement
/// wraparound makes encode/decode exact even across the full u64 range).
inline void putDelta(std::string& out, uint64_t cur, uint64_t prev) {
  putVarint(out, zigzag(static_cast<int64_t>(cur - prev)));
}

/// Bounds-checked varint reader over an in-memory buffer. Every method
/// returns false on truncation or over-long encodings and never reads past
/// the view.
class StringByteReader {
 public:
  explicit StringByteReader(std::string_view data) : data_(data) {}

  bool varint(uint64_t& out) {
    out = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= data_.size()) return false;
      uint8_t b = static_cast<uint8_t>(data_[pos_++]);
      out |= static_cast<uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) return true;
    }
    return false;  // over-long encoding
  }

  bool varint32(uint32_t& out) {
    uint64_t v;
    if (!varint(v) || v > ~0u) return false;
    out = static_cast<uint32_t>(v);
    return true;
  }

  bool delta(uint64_t& cur, uint64_t prev) {
    uint64_t z;
    if (!varint(z)) return false;
    cur = prev + static_cast<uint64_t>(unzigzag(z));
    return true;
  }

  bool byte(uint8_t& out) {
    if (pos_ >= data_.size()) return false;
    out = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool bytes(char* dst, size_t n) {
    if (n > remaining()) return false;
    data_.copy(dst, n, pos_);
    pos_ += n;
    return true;
  }

  /// Reads a varint length followed by that many raw bytes.
  bool str(std::string& out) {
    uint64_t n;
    if (!varint(n) || n > remaining()) return false;
    out.assign(data_.substr(pos_, n));
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool atEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Length-prefixed string: varint byte count + raw bytes.
inline void putString(std::string& out, std::string_view s) {
  putVarint(out, s.size());
  out.append(s);
}

}  // namespace cb
