// Dense and sparse bit-set containers for the analysis hot paths.
//
// `BitSet` is a growable dense bitmap over 32-bit ids (blame sets are keyed
// by InstrId within one function, so the universe is small and dense).
// Word-wise union replaces the per-element `std::set::insert` that dominated
// the seed's propagation fixpoint. `SparseBitSet` is a sorted unique vector
// for wide-universe / low-population rows (inheritance edges, written-global
// sets) where a dense bitmap would waste space and iteration time.
//
// Both iterate in ascending id order — the same order `std::set` produced —
// so every consumer (blameLines, invertIndex, the attributor) sees
// bit-identical sequences.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

namespace cb {

class BitSet {
 public:
  BitSet() = default;
  /// Capacity hint: pre-sizes the bitmap for ids in [0, universe).
  explicit BitSet(uint32_t universe) : words_((universe + 63) / 64, 0) {}

  /// Sets bit `i`; returns true when it was newly set.
  bool insert(uint32_t i) {
    size_t w = i >> 6;
    if (w >= words_.size()) words_.resize(w + 1, 0);
    uint64_t mask = 1ull << (i & 63);
    if (words_[w] & mask) return false;
    words_[w] |= mask;
    ++count_;
    return true;
  }

  template <typename It>
  void insert(It first, It last) {
    for (; first != last; ++first) insert(static_cast<uint32_t>(*first));
  }

  bool test(uint32_t i) const {
    size_t w = i >> 6;
    return w < words_.size() && (words_[w] >> (i & 63)) & 1;
  }
  bool count(uint32_t i) const { return test(i); }

  /// `*this |= o`; returns true when any bit was added.
  bool unionWith(const BitSet& o) {
    if (o.count_ == 0) return false;
    if (o.words_.size() > words_.size()) words_.resize(o.words_.size(), 0);
    bool changed = false;
    for (size_t w = 0; w < o.words_.size(); ++w) {
      uint64_t add = o.words_[w] & ~words_[w];
      if (add) {
        words_[w] |= add;
        count_ += static_cast<size_t>(__builtin_popcountll(add));
        changed = true;
      }
    }
    return changed;
  }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  void clear() {
    words_.clear();
    count_ = 0;
  }

  friend bool operator==(const BitSet& a, const BitSet& b) {
    if (a.count_ != b.count_) return false;
    size_t common = std::min(a.words_.size(), b.words_.size());
    for (size_t w = 0; w < common; ++w)
      if (a.words_[w] != b.words_[w]) return false;
    // Trailing words (if any) must be zero — counts already match, but a
    // mismatch there with compensating bits earlier is caught above.
    for (size_t w = common; w < a.words_.size(); ++w)
      if (a.words_[w]) return false;
    for (size_t w = common; w < b.words_.size(); ++w)
      if (b.words_[w]) return false;
    return true;
  }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const uint32_t*;
    using reference = uint32_t;
    const_iterator(const std::vector<uint64_t>* words, size_t word, uint64_t rest)
        : words_(words), word_(word), rest_(rest) {
      advance();
    }

    uint32_t operator*() const {
      return static_cast<uint32_t>((word_ << 6) + __builtin_ctzll(rest_));
    }
    const_iterator& operator++() {
      rest_ &= rest_ - 1;
      advance();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.word_ == b.word_ && a.rest_ == b.rest_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) { return !(a == b); }

   private:
    void advance() {
      while (rest_ == 0 && word_ + 1 < words_->size()) rest_ = (*words_)[++word_];
      if (rest_ == 0) word_ = words_->size();  // canonical end state
    }
    const std::vector<uint64_t>* words_;
    size_t word_;
    uint64_t rest_;
  };

  const_iterator begin() const {
    if (words_.empty()) return end();
    return const_iterator(&words_, 0, words_[0]);
  }
  const_iterator end() const { return const_iterator(&words_, words_.size(), 0); }

 private:
  std::vector<uint64_t> words_;
  size_t count_ = 0;
};

class SparseBitSet {
 public:
  SparseBitSet() = default;

  /// Returns true when `i` was newly inserted.
  bool insert(uint32_t i) {
    auto it = std::lower_bound(v_.begin(), v_.end(), i);
    if (it != v_.end() && *it == i) return false;
    v_.insert(it, i);
    return true;
  }

  bool contains(uint32_t i) const { return std::binary_search(v_.begin(), v_.end(), i); }
  bool count(uint32_t i) const { return contains(i); }

  /// `*this |= o`; returns true when any element was added.
  bool unionWith(const SparseBitSet& o) {
    if (o.v_.empty()) return false;
    std::vector<uint32_t> merged;
    merged.reserve(v_.size() + o.v_.size());
    std::set_union(v_.begin(), v_.end(), o.v_.begin(), o.v_.end(), std::back_inserter(merged));
    if (merged.size() == v_.size()) return false;
    v_ = std::move(merged);
    return true;
  }

  size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  void clear() { v_.clear(); }

  std::vector<uint32_t>::const_iterator begin() const { return v_.begin(); }
  std::vector<uint32_t>::const_iterator end() const { return v_.end(); }

  friend bool operator==(const SparseBitSet& a, const SparseBitSet& b) { return a.v_ == b.v_; }

 private:
  std::vector<uint32_t> v_;  // sorted, unique
};

}  // namespace cb
