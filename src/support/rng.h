// Deterministic PRNG (splitmix64 + xoshiro256**) used by the runtime's
// builtin random() and by workload generators in tests/benches. Determinism
// matters: every table in EXPERIMENTS.md must reproduce bit-for-bit.
#pragma once

#include <cstdint>

namespace cb {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    auto rotl = [](uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double nextDouble() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound).
  uint64_t nextBounded(uint64_t bound) { return bound == 0 ? 0 : next() % bound; }

 private:
  uint64_t s_[4];
};

}  // namespace cb
