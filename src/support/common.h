// Basic assertion and utility macros shared by every ChapelBlame module.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace cb {

[[noreturn]] inline void fatal(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "chapelblame fatal: %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace cb

/// Internal invariant check. Active in all build types: the profiler's
/// correctness claims rest on these invariants, and the cost of the checks is
/// negligible next to interpretation.
#define CB_ASSERT(cond, msg)                              \
  do {                                                    \
    if (!(cond)) ::cb::fatal(__FILE__, __LINE__, (msg));  \
  } while (false)

#define CB_UNREACHABLE(msg) ::cb::fatal(__FILE__, __LINE__, (msg))
