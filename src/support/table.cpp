#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/common.h"

namespace cb {

void TextTable::addRow(std::vector<std::string> row) {
  CB_ASSERT(row.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::addSeparator() { separators_.push_back(rows_.size()); }

std::string TextTable::render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto renderRow = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return out + "\n";
  };
  auto rule = [&] {
    std::string out = "+";
    for (size_t w : widths) out += std::string(w + 2, '-') + "+";
    return out + "\n";
  };

  std::string out = rule() + renderRow(header_) + rule();
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) != separators_.end() && r != 0)
      out += rule();
    out += renderRow(rows_[r]);
  }
  out += rule();
  return out;
}

namespace {
std::string csvEscape(const std::string& f) {
  if (f.find_first_of(",\"\n") == std::string::npos) return f;
  std::string out = "\"";
  for (char ch : f) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  return out + "\"";
}
}  // namespace

std::string TextTable::renderCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << csvEscape(row[c]);
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string formatFixed(double v, int places) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", places, v);
  return buf;
}

std::string formatPercent(double fraction, int places) {
  return formatFixed(fraction * 100.0, places) + "%";
}

}  // namespace cb
