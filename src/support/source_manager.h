// Source buffer management and (file, line, column) resolution.
//
// The profiler's entire data-centric mapping hinges on reliable
// instruction -> source-location resolution, so locations are first-class
// here: a SourceLoc is a file id plus 1-based line/column, and the manager
// can render them and slice out source lines for reports.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cb {

/// A resolved source position. line/col are 1-based; 0 means "unknown".
struct SourceLoc {
  uint32_t file = 0;  ///< index into SourceManager; 0 = invalid file
  uint32_t line = 0;
  uint32_t col = 0;

  bool valid() const { return file != 0 && line != 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Owns all source buffers for one compilation.
class SourceManager {
 public:
  /// Registers a buffer under the given display name; returns its file id
  /// (>= 1).
  uint32_t addBuffer(std::string name, std::string contents);

  /// Loads a file from disk. Returns std::nullopt on I/O failure.
  std::optional<uint32_t> addFile(const std::string& path);

  const std::string& name(uint32_t file) const;
  const std::string& contents(uint32_t file) const;
  size_t numBuffers() const { return buffers_.size(); }

  /// Returns the text of the given 1-based line (without newline), or "" if
  /// out of range.
  std::string_view lineText(uint32_t file, uint32_t line) const;

  /// Number of lines in the buffer.
  uint32_t lineCount(uint32_t file) const;

  /// Renders "name:line:col" (or "name:line" when col==0).
  std::string render(const SourceLoc& loc) const;

 private:
  struct Buffer {
    std::string name;
    std::string contents;
    std::vector<size_t> lineStarts;  // byte offset of each line start
  };
  const Buffer& buf(uint32_t file) const;

  std::vector<Buffer> buffers_;
};

}  // namespace cb
