// Content-hash analysis caching — the "N-th profile of an unchanged
// program" fast path of the profiling service.
//
// Two tiers, both keyed by one content hash over (source bytes, program
// name, compile options, blame options, format version):
//
//   - RESIDENT tier (ResidentProgramCache): live Compilation + ModuleBlame
//     objects behind shared_ptr<const>, LRU-bounded. A hit skips the entire
//     front half of the pipeline — lex, parse, lowering, CFG/dominators and
//     the blame fixpoint. This is what cb-serve and profileMultiLocale
//     consult; immutability after construction makes concurrent readers
//     safe without locking the entry itself.
//
//   - DISK tier (AnalysisCache): a versioned entry per key under a cache
//     directory, holding the serialized ModuleBlame. A hit re-lowers the
//     (deterministic) compilation and skips only the analysis fixpoint —
//     the dominant cost on analysis-heavy modules. Entries are validated by
//     magic, format version, key hash, module fingerprint and payload
//     checksum; ANY validation failure — truncation, corruption, version
//     bump, hash mismatch, concurrent writer — falls back silently to a
//     cold analysis. Writes go to a temp file first and are published with
//     an atomic rename, so readers never observe a partial entry. Only
//     successful analyses are ever stored.
//
// Cached and uncached profiles are bit-identical: the serialized form
// round-trips every field attribution reads (enforced by the cache property
// tests over the asset corpus).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "analysis/blame.h"
#include "frontend/compiler.h"

namespace cb::cache {

/// Bumped whenever the serialized ModuleBlame layout (or anything the key
/// hash covers) changes shape; old entries then miss and are overwritten.
inline constexpr uint8_t kAnalysisCacheVersion = 1;

/// Content hash identifying one (program, options) analysis input.
uint64_t hashProgram(const std::string& name, const std::string& source,
                     const fe::CompileOptions& copts, const an::BlameOptions& bopts);

/// Structural fingerprint of a lowered module: function/instruction/block
/// shape, globals, debug-var count. Guards a disk entry against being
/// rebound to a module the (same-sourced) compiler lowered differently.
uint64_t moduleFingerprint(const ir::Module& m);

/// Deterministic byte encoding of everything attribution reads from a
/// ModuleBlame. Exposed for the round-trip property tests.
std::string serializeModuleBlame(const an::ModuleBlame& mb);

/// Rebuilds a ModuleBlame bound to `m` from serialized bytes. Returns false
/// (leaving `mb` unspecified) on truncation, corruption, or a structural
/// mismatch with `m`.
bool deserializeModuleBlame(const std::string& payload, const ir::Module& m,
                            an::ModuleBlame& mb);

/// The on-disk tier. Thread-safe; every method tolerates a missing or
/// unwritable directory (load misses, store fails silently).
class AnalysisCache {
 public:
  /// `dir` empty disables the cache (all loads miss, stores no-op).
  explicit AnalysisCache(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Loads the entry for `key` and rebinds it to `m`. Returns true only when
  /// every validation layer passes; any failure is a silent miss.
  bool load(uint64_t key, const ir::Module& m, an::ModuleBlame& mb);

  /// Serializes and atomically publishes the entry for `key`. Returns false
  /// on I/O failure (callers need not care — the cache is best-effort).
  bool store(uint64_t key, const ir::Module& m, const an::ModuleBlame& mb);

  /// Entry path for `key` (for tests that corrupt/truncate entries).
  std::string entryPath(uint64_t key) const;

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t stores() const { return stores_; }

 private:
  std::string dir_;
  std::atomic<uint64_t> hits_{0}, misses_{0}, stores_{0};
};

/// Default disk-cache directory: $CB_CACHE_DIR, else empty (disabled).
std::string defaultCacheDir();

/// One fully-built program: the compilation (owning the module the blame
/// database points into) plus its analysis. Immutable after construction.
struct CachedProgram {
  std::shared_ptr<const fe::Compilation> comp;
  std::shared_ptr<const an::ModuleBlame> blame;
};

/// The resident tier: an LRU map from content hash to live CachedProgram.
/// Thread-safe; entries are shared, so eviction never invalidates a pipeline
/// still holding one.
class ResidentProgramCache {
 public:
  explicit ResidentProgramCache(size_t capacity = 32);

  /// nullptr on miss; bumps the entry to most-recently-used on hit.
  std::shared_ptr<const CachedProgram> find(uint64_t key);

  /// Inserts (or refreshes) an entry, evicting the LRU tail past capacity.
  void insert(uint64_t key, std::shared_ptr<const CachedProgram> prog);

  size_t size() const;
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  mutable std::mutex mu_;
  size_t cap_;
  std::list<uint64_t> lru_;  // front = most recently used
  std::unordered_map<uint64_t,
                     std::pair<std::shared_ptr<const CachedProgram>, std::list<uint64_t>::iterator>>
      map_;
  std::atomic<uint64_t> hits_{0}, misses_{0};
};

}  // namespace cb::cache
