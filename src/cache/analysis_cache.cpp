#include "cache/analysis_cache.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "support/varint.h"

namespace cb::cache {

namespace {

constexpr char kEntryMagic[4] = {'C', 'B', 'A', 'C'};

uint64_t fnv1a(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t fnv1a(uint64_t h, std::string_view s) { return fnv1a(h, s.data(), s.size()); }

uint64_t fnv1a(uint64_t h, uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  return fnv1a(h, b, 8);
}

constexpr uint64_t kFnvBasis = 14695981039346656037ull;

// ---- ModuleBlame byte encoding --------------------------------------------

void putBitSet(std::string& out, const BitSet& bs) {
  putVarint(out, bs.size());
  uint64_t prev = 0;
  for (uint32_t id : bs) {
    putDelta(out, id, prev);
    prev = id;
  }
}

bool getBitSet(StringByteReader& r, BitSet& bs) {
  uint64_t n;
  if (!r.varint(n) || n > r.remaining() + 1) return false;  // each id >= 1 byte
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id;
    if (!r.delta(id, prev) || id > ~0u) return false;
    prev = id;
    if (!bs.insert(static_cast<uint32_t>(id))) return false;  // dup = corrupt
  }
  return true;
}

void putSparse(std::string& out, const SparseBitSet& s) {
  putVarint(out, s.size());
  uint64_t prev = 0;
  for (uint32_t id : s) {
    putDelta(out, id, prev);
    prev = id;
  }
}

bool getSparse(StringByteReader& r, SparseBitSet& s) {
  uint64_t n;
  if (!r.varint(n) || n > r.remaining() + 1) return false;
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id;
    if (!r.delta(id, prev) || id > ~0u) return false;
    prev = id;
    if (!s.insert(static_cast<uint32_t>(id))) return false;
  }
  return true;
}

void putEntity(std::string& out, const an::Entity& e) {
  out.push_back(static_cast<char>(e.key.root));
  putVarint(out, e.key.rootId);
  putVarint(out, e.key.path.size());
  for (const an::PathElem& p : e.key.path) {
    out.push_back(static_cast<char>(p.kind));
    putVarint(out, p.idx);
    putString(out, p.fieldName);
  }
  putVarint(out, e.debugVar);
  putString(out, e.displayName);
  putString(out, e.typeDisplay);
  out.push_back(e.displayable ? 1 : 0);
  putVarint(out, e.parent);
}

bool getEntity(StringByteReader& r, an::Entity& e) {
  uint8_t root, kind, displayable;
  uint64_t rootId, nPath, debugVar, parent;
  if (!r.byte(root) || root > static_cast<uint8_t>(an::RootKind::Unknown) ||
      !r.varint(rootId) || rootId > ~0u || !r.varint(nPath) || nPath > r.remaining())
    return false;
  e.key.root = static_cast<an::RootKind>(root);
  e.key.rootId = static_cast<uint32_t>(rootId);
  e.key.path.resize(nPath);
  for (an::PathElem& p : e.key.path) {
    uint64_t idx;
    if (!r.byte(kind) || kind > static_cast<uint8_t>(an::PathElem::Kind::Index) ||
        !r.varint(idx) || idx > ~0u || !r.str(p.fieldName))
      return false;
    p.kind = static_cast<an::PathElem::Kind>(kind);
    p.idx = static_cast<uint32_t>(idx);
  }
  if (!r.varint(debugVar) || debugVar > ~0u || !r.str(e.displayName) ||
      !r.str(e.typeDisplay) || !r.byte(displayable) || displayable > 1 || !r.varint(parent) ||
      parent > ~0u)
    return false;
  e.debugVar = static_cast<ir::DebugVarId>(debugVar);
  e.displayable = displayable != 0;
  e.parent = static_cast<an::EntityId>(parent);
  return true;
}

void putFunctionBlame(std::string& out, const an::FunctionBlame& fb) {
  putVarint(out, fb.func);
  const size_t nEnt = fb.entities.size();
  putVarint(out, nEnt);
  for (const an::Entity& e : fb.entities) putEntity(out, e);
  for (const BitSet& bs : fb.blameInstrs) putBitSet(out, bs);
  for (const BitSet& bs : fb.regionInstrs) putBitSet(out, bs);
  for (const SparseBitSet& s : fb.inheritsFrom) putSparse(out, s);
  for (const SparseBitSet& s : fb.regionInheritsFrom) putSparse(out, s);
  for (size_t i = 0; i < nEnt; ++i) out.push_back(fb.exitViaCaller[i] ? 1 : 0);

  // unordered_map iterated in sorted key order so the bytes are a pure
  // function of the contents.
  std::vector<ir::InstrId> sites;
  sites.reserve(fb.callsites.size());
  for (const auto& [instr, cs] : fb.callsites) sites.push_back(instr);
  std::sort(sites.begin(), sites.end());
  putVarint(out, sites.size());
  for (ir::InstrId instr : sites) {
    const an::FunctionBlame::CallSite& cs = fb.callsites.at(instr);
    putVarint(out, instr);
    putVarint(out, cs.callee);
    putVarint(out, cs.paramToCallerEntity.size());
    for (an::EntityId id : cs.paramToCallerEntity) putVarint(out, id);
    putSparse(out, cs.resultTargets);
  }

  putVarint(out, fb.instrEntities.size());
  for (const std::vector<an::EntityId>& ids : fb.instrEntities) {
    putVarint(out, ids.size());
    // Raw ids in stored order: the inverted index's element order is part of
    // the attribution contract, so it is preserved verbatim.
    for (an::EntityId id : ids) putVarint(out, id);
  }
}

bool getFunctionBlame(StringByteReader& r, an::FunctionBlame& fb) {
  uint64_t func, nEnt;
  if (!r.varint(func) || func > ~0u || !r.varint(nEnt) || nEnt > r.remaining()) return false;
  fb.func = static_cast<ir::FuncId>(func);
  fb.entities.resize(nEnt);
  for (an::Entity& e : fb.entities)
    if (!getEntity(r, e)) return false;
  fb.blameInstrs.resize(nEnt);
  for (BitSet& bs : fb.blameInstrs)
    if (!getBitSet(r, bs)) return false;
  fb.regionInstrs.resize(nEnt);
  for (BitSet& bs : fb.regionInstrs)
    if (!getBitSet(r, bs)) return false;
  fb.inheritsFrom.resize(nEnt);
  for (SparseBitSet& s : fb.inheritsFrom)
    if (!getSparse(r, s)) return false;
  fb.regionInheritsFrom.resize(nEnt);
  for (SparseBitSet& s : fb.regionInheritsFrom)
    if (!getSparse(r, s)) return false;
  fb.exitViaCaller.resize(nEnt);
  for (uint64_t i = 0; i < nEnt; ++i) {
    uint8_t b;
    if (!r.byte(b) || b > 1) return false;
    fb.exitViaCaller[i] = b != 0;
  }

  uint64_t nSites;
  if (!r.varint(nSites) || nSites > r.remaining()) return false;
  for (uint64_t i = 0; i < nSites; ++i) {
    uint64_t instr, callee, nParams;
    an::FunctionBlame::CallSite cs;
    if (!r.varint(instr) || instr > ~0u || !r.varint(callee) || callee > ~0u ||
        !r.varint(nParams) || nParams > r.remaining() + 1)
      return false;
    cs.callee = static_cast<ir::FuncId>(callee);
    cs.paramToCallerEntity.resize(nParams);
    for (an::EntityId& id : cs.paramToCallerEntity) {
      uint64_t v;
      if (!r.varint(v) || v > ~0u) return false;
      id = static_cast<an::EntityId>(v);
    }
    if (!getSparse(r, cs.resultTargets)) return false;
    if (!fb.callsites.emplace(static_cast<ir::InstrId>(instr), std::move(cs)).second)
      return false;  // duplicate site = corrupt
  }

  uint64_t nInstrs;
  if (!r.varint(nInstrs) || nInstrs > r.remaining() + 1) return false;
  fb.instrEntities.resize(nInstrs);
  for (std::vector<an::EntityId>& ids : fb.instrEntities) {
    uint64_t n;
    if (!r.varint(n) || n > r.remaining() + 1) return false;
    ids.resize(n);
    for (an::EntityId& id : ids) {
      uint64_t v;
      if (!r.varint(v) || v > ~0u) return false;
      id = static_cast<an::EntityId>(v);
    }
  }

  fb.index.reserve(nEnt);
  for (an::EntityId i = 0; i < fb.entities.size(); ++i)
    if (!fb.index.emplace(fb.entities[i].key, i).second) return false;  // dup key
  return true;
}

}  // namespace

uint64_t hashProgram(const std::string& name, const std::string& source,
                     const fe::CompileOptions& copts, const an::BlameOptions& bopts) {
  uint64_t h = kFnvBasis;
  h = fnv1a(h, "cb-analysis-cache");
  h = fnv1a(h, static_cast<uint64_t>(kAnalysisCacheVersion));
  h = fnv1a(h, name);
  h = fnv1a(h, static_cast<uint64_t>(source.size()));
  h = fnv1a(h, source);
  h = fnv1a(h, static_cast<uint64_t>(copts.fast) | static_cast<uint64_t>(copts.verify) << 1 |
                   static_cast<uint64_t>(bopts.implicitTransfer) << 2 |
                   static_cast<uint64_t>(bopts.aliasTransfer) << 3 |
                   static_cast<uint64_t>(bopts.referenceFixpoint) << 4);
  return h;
}

uint64_t moduleFingerprint(const ir::Module& m) {
  uint64_t h = kFnvBasis;
  h = fnv1a(h, static_cast<uint64_t>(m.numFunctions()));
  for (size_t f = 0; f < m.numFunctions(); ++f) {
    const ir::Function& fn = m.function(static_cast<ir::FuncId>(f));
    h = fnv1a(h, fn.displayName);
    h = fnv1a(h, static_cast<uint64_t>(fn.numInstrs()));
    h = fnv1a(h, static_cast<uint64_t>(fn.numBlocks()));
    h = fnv1a(h, static_cast<uint64_t>(fn.params.size()));
  }
  h = fnv1a(h, static_cast<uint64_t>(m.numGlobals()));
  h = fnv1a(h, static_cast<uint64_t>(m.numDebugVars()));
  h = fnv1a(h, static_cast<uint64_t>(m.debugInfoStripped));
  return h;
}

std::string serializeModuleBlame(const an::ModuleBlame& mb) {
  std::string out;
  putVarint(out, mb.functions.size());
  for (const an::FunctionBlame& fb : mb.functions) putFunctionBlame(out, fb);
  putVarint(out, mb.globalAliasGroup.size());
  for (uint32_t g : mb.globalAliasGroup) putVarint(out, g);
  putVarint(out, mb.aliasGroups.size());
  for (const std::vector<ir::GlobalId>& grp : mb.aliasGroups) {
    putVarint(out, grp.size());
    for (ir::GlobalId g : grp) putVarint(out, g);
  }
  return out;
}

bool deserializeModuleBlame(const std::string& payload, const ir::Module& m,
                            an::ModuleBlame& mb) {
  StringByteReader r(payload);
  mb = an::ModuleBlame{};
  mb.mod = &m;
  uint64_t nFuncs;
  if (!r.varint(nFuncs) || nFuncs != m.numFunctions()) return false;
  mb.functions.resize(nFuncs);
  for (size_t f = 0; f < nFuncs; ++f) {
    if (!getFunctionBlame(r, mb.functions[f])) return false;
    if (mb.functions[f].func != static_cast<ir::FuncId>(f)) return false;
    // The inverted index spans the function's instruction universe.
    if (mb.functions[f].instrEntities.size() !=
        m.function(static_cast<ir::FuncId>(f)).numInstrs())
      return false;
  }
  uint64_t nGroups;
  if (!r.varint(nGroups) || nGroups != m.numGlobals()) return false;
  mb.globalAliasGroup.resize(nGroups);
  for (uint32_t& g : mb.globalAliasGroup) {
    uint64_t v;
    if (!r.varint(v) || v > ~0u) return false;
    g = static_cast<uint32_t>(v);
  }
  uint64_t nAlias;
  if (!r.varint(nAlias) || nAlias > r.remaining() + 1) return false;
  mb.aliasGroups.resize(nAlias);
  for (std::vector<ir::GlobalId>& grp : mb.aliasGroups) {
    uint64_t n;
    if (!r.varint(n) || n > r.remaining() + 1) return false;
    grp.resize(n);
    for (ir::GlobalId& g : grp) {
      uint64_t v;
      if (!r.varint(v) || v > ~0u) return false;
      g = static_cast<ir::GlobalId>(v);
    }
  }
  return r.atEnd();
}

// ---- on-disk tier ---------------------------------------------------------

AnalysisCache::AnalysisCache(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) dir_.clear();  // unusable directory -> disabled cache
}

std::string AnalysisCache::entryPath(uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.cbac", static_cast<unsigned long long>(key));
  return dir_ + "/" + name;
}

bool AnalysisCache::load(uint64_t key, const ir::Module& m, an::ModuleBlame& mb) {
  if (!enabled()) return false;
  std::ifstream f(entryPath(key), std::ios::binary);
  if (!f) {
    ++misses_;
    return false;
  }
  std::string data((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());

  auto miss = [this] {
    ++misses_;
    return false;
  };
  StringByteReader r(data);
  char magic[4];
  uint8_t version;
  if (!r.bytes(magic, 4) || std::memcmp(magic, kEntryMagic, 4) != 0) return miss();
  if (!r.byte(version) || version != kAnalysisCacheVersion) return miss();
  uint64_t storedKey, fingerprint, payloadSize;
  if (!r.varint(storedKey) || storedKey != key) return miss();
  if (!r.varint(fingerprint) || fingerprint != moduleFingerprint(m)) return miss();
  if (!r.varint(payloadSize) || payloadSize > r.remaining()) return miss();
  std::string payload(payloadSize, '\0');
  if (!r.bytes(payload.data(), payloadSize)) return miss();
  uint64_t checksum;
  if (!r.varint(checksum) || !r.atEnd()) return miss();
  if (checksum != fnv1a(kFnvBasis, payload)) return miss();
  if (!deserializeModuleBlame(payload, m, mb)) return miss();
  ++hits_;
  return true;
}

bool AnalysisCache::store(uint64_t key, const ir::Module& m, const an::ModuleBlame& mb) {
  if (!enabled()) return false;
  std::string payload = serializeModuleBlame(mb);
  std::string entry;
  entry.append(kEntryMagic, 4);
  entry.push_back(static_cast<char>(kAnalysisCacheVersion));
  putVarint(entry, key);
  putVarint(entry, moduleFingerprint(m));
  putString(entry, payload);
  putVarint(entry, fnv1a(kFnvBasis, payload));

  // Publish atomically: a concurrent reader sees either the old entry or
  // the complete new one, never a partial write. The tmp name is unique per
  // process AND per store call, so concurrent writers never share one.
  static std::atomic<uint64_t> seq{0};
  std::string tmp = entryPath(key) + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f.write(entry.data(), static_cast<std::streamsize>(entry.size()));
    if (!f.good()) {
      f.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, entryPath(key), ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  ++stores_;
  return true;
}

std::string defaultCacheDir() {
  const char* env = std::getenv("CB_CACHE_DIR");
  return env ? env : "";
}

// ---- resident tier --------------------------------------------------------

ResidentProgramCache::ResidentProgramCache(size_t capacity) : cap_(std::max<size_t>(capacity, 1)) {}

std::shared_ptr<const CachedProgram> ResidentProgramCache::find(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.second);
  ++hits_;
  return it->second.first;
}

void ResidentProgramCache::insert(uint64_t key, std::shared_ptr<const CachedProgram> prog) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.first = std::move(prog);
    lru_.splice(lru_.begin(), lru_, it->second.second);
    return;
  }
  lru_.push_front(key);
  map_.emplace(key, std::make_pair(std::move(prog), lru_.begin()));
  while (map_.size() > cap_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
}

size_t ResidentProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace cb::cache
