file(REMOVE_RECURSE
  "libcb_ir.a"
)
