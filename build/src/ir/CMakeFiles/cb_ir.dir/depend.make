# Empty dependencies file for cb_ir.
# This may be replaced when dependencies are built.
