file(REMOVE_RECURSE
  "CMakeFiles/cb_ir.dir/builder.cpp.o"
  "CMakeFiles/cb_ir.dir/builder.cpp.o.d"
  "CMakeFiles/cb_ir.dir/module.cpp.o"
  "CMakeFiles/cb_ir.dir/module.cpp.o.d"
  "CMakeFiles/cb_ir.dir/printer.cpp.o"
  "CMakeFiles/cb_ir.dir/printer.cpp.o.d"
  "CMakeFiles/cb_ir.dir/type.cpp.o"
  "CMakeFiles/cb_ir.dir/type.cpp.o.d"
  "CMakeFiles/cb_ir.dir/verifier.cpp.o"
  "CMakeFiles/cb_ir.dir/verifier.cpp.o.d"
  "libcb_ir.a"
  "libcb_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
