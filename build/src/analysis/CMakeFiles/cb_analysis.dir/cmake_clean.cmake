file(REMOVE_RECURSE
  "CMakeFiles/cb_analysis.dir/blame_analysis.cpp.o"
  "CMakeFiles/cb_analysis.dir/blame_analysis.cpp.o.d"
  "CMakeFiles/cb_analysis.dir/cfg.cpp.o"
  "CMakeFiles/cb_analysis.dir/cfg.cpp.o.d"
  "CMakeFiles/cb_analysis.dir/control_dep.cpp.o"
  "CMakeFiles/cb_analysis.dir/control_dep.cpp.o.d"
  "CMakeFiles/cb_analysis.dir/dominators.cpp.o"
  "CMakeFiles/cb_analysis.dir/dominators.cpp.o.d"
  "CMakeFiles/cb_analysis.dir/resolve.cpp.o"
  "CMakeFiles/cb_analysis.dir/resolve.cpp.o.d"
  "libcb_analysis.a"
  "libcb_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
