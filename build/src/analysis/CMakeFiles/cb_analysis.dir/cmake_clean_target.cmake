file(REMOVE_RECURSE
  "libcb_analysis.a"
)
