# Empty compiler generated dependencies file for cb_analysis.
# This may be replaced when dependencies are built.
