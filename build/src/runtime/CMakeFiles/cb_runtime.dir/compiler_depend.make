# Empty compiler generated dependencies file for cb_runtime.
# This may be replaced when dependencies are built.
