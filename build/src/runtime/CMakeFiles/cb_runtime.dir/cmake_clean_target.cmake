file(REMOVE_RECURSE
  "libcb_runtime.a"
)
