file(REMOVE_RECURSE
  "CMakeFiles/cb_runtime.dir/cost_model.cpp.o"
  "CMakeFiles/cb_runtime.dir/cost_model.cpp.o.d"
  "CMakeFiles/cb_runtime.dir/interp.cpp.o"
  "CMakeFiles/cb_runtime.dir/interp.cpp.o.d"
  "CMakeFiles/cb_runtime.dir/value.cpp.o"
  "CMakeFiles/cb_runtime.dir/value.cpp.o.d"
  "libcb_runtime.a"
  "libcb_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
