# Empty compiler generated dependencies file for cb_postmortem.
# This may be replaced when dependencies are built.
