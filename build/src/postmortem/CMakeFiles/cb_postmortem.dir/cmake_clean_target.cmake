file(REMOVE_RECURSE
  "libcb_postmortem.a"
)
