
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/postmortem/attribution.cpp" "src/postmortem/CMakeFiles/cb_postmortem.dir/attribution.cpp.o" "gcc" "src/postmortem/CMakeFiles/cb_postmortem.dir/attribution.cpp.o.d"
  "/root/repo/src/postmortem/baseline.cpp" "src/postmortem/CMakeFiles/cb_postmortem.dir/baseline.cpp.o" "gcc" "src/postmortem/CMakeFiles/cb_postmortem.dir/baseline.cpp.o.d"
  "/root/repo/src/postmortem/instance.cpp" "src/postmortem/CMakeFiles/cb_postmortem.dir/instance.cpp.o" "gcc" "src/postmortem/CMakeFiles/cb_postmortem.dir/instance.cpp.o.d"
  "/root/repo/src/postmortem/parallel.cpp" "src/postmortem/CMakeFiles/cb_postmortem.dir/parallel.cpp.o" "gcc" "src/postmortem/CMakeFiles/cb_postmortem.dir/parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/cb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/cb_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cb_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
