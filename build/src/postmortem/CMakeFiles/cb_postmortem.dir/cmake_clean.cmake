file(REMOVE_RECURSE
  "CMakeFiles/cb_postmortem.dir/attribution.cpp.o"
  "CMakeFiles/cb_postmortem.dir/attribution.cpp.o.d"
  "CMakeFiles/cb_postmortem.dir/baseline.cpp.o"
  "CMakeFiles/cb_postmortem.dir/baseline.cpp.o.d"
  "CMakeFiles/cb_postmortem.dir/instance.cpp.o"
  "CMakeFiles/cb_postmortem.dir/instance.cpp.o.d"
  "CMakeFiles/cb_postmortem.dir/parallel.cpp.o"
  "CMakeFiles/cb_postmortem.dir/parallel.cpp.o.d"
  "libcb_postmortem.a"
  "libcb_postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
