file(REMOVE_RECURSE
  "libcb_report.a"
)
