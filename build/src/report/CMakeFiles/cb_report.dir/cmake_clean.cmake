file(REMOVE_RECURSE
  "CMakeFiles/cb_report.dir/html.cpp.o"
  "CMakeFiles/cb_report.dir/html.cpp.o.d"
  "CMakeFiles/cb_report.dir/views.cpp.o"
  "CMakeFiles/cb_report.dir/views.cpp.o.d"
  "libcb_report.a"
  "libcb_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
