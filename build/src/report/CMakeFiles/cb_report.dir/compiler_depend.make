# Empty compiler generated dependencies file for cb_report.
# This may be replaced when dependencies are built.
