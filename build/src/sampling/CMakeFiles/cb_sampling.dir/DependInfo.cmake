
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/log_io.cpp" "src/sampling/CMakeFiles/cb_sampling.dir/log_io.cpp.o" "gcc" "src/sampling/CMakeFiles/cb_sampling.dir/log_io.cpp.o.d"
  "/root/repo/src/sampling/sample.cpp" "src/sampling/CMakeFiles/cb_sampling.dir/sample.cpp.o" "gcc" "src/sampling/CMakeFiles/cb_sampling.dir/sample.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cb_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
