file(REMOVE_RECURSE
  "libcb_sampling.a"
)
