file(REMOVE_RECURSE
  "CMakeFiles/cb_sampling.dir/log_io.cpp.o"
  "CMakeFiles/cb_sampling.dir/log_io.cpp.o.d"
  "CMakeFiles/cb_sampling.dir/sample.cpp.o"
  "CMakeFiles/cb_sampling.dir/sample.cpp.o.d"
  "libcb_sampling.a"
  "libcb_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
