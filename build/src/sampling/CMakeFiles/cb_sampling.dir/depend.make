# Empty dependencies file for cb_sampling.
# This may be replaced when dependencies are built.
