file(REMOVE_RECURSE
  "libcb_frontend.a"
)
