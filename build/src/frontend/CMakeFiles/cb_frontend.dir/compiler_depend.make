# Empty compiler generated dependencies file for cb_frontend.
# This may be replaced when dependencies are built.
