file(REMOVE_RECURSE
  "CMakeFiles/cb_frontend.dir/compiler.cpp.o"
  "CMakeFiles/cb_frontend.dir/compiler.cpp.o.d"
  "CMakeFiles/cb_frontend.dir/lexer.cpp.o"
  "CMakeFiles/cb_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/cb_frontend.dir/lower.cpp.o"
  "CMakeFiles/cb_frontend.dir/lower.cpp.o.d"
  "CMakeFiles/cb_frontend.dir/lower_stmt.cpp.o"
  "CMakeFiles/cb_frontend.dir/lower_stmt.cpp.o.d"
  "CMakeFiles/cb_frontend.dir/parser.cpp.o"
  "CMakeFiles/cb_frontend.dir/parser.cpp.o.d"
  "CMakeFiles/cb_frontend.dir/passes.cpp.o"
  "CMakeFiles/cb_frontend.dir/passes.cpp.o.d"
  "libcb_frontend.a"
  "libcb_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
