file(REMOVE_RECURSE
  "libcb_support.a"
)
