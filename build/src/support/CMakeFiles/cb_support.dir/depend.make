# Empty dependencies file for cb_support.
# This may be replaced when dependencies are built.
