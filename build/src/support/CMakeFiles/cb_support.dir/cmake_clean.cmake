file(REMOVE_RECURSE
  "CMakeFiles/cb_support.dir/diagnostics.cpp.o"
  "CMakeFiles/cb_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/cb_support.dir/source_manager.cpp.o"
  "CMakeFiles/cb_support.dir/source_manager.cpp.o.d"
  "CMakeFiles/cb_support.dir/table.cpp.o"
  "CMakeFiles/cb_support.dir/table.cpp.o.d"
  "CMakeFiles/cb_support.dir/thread_pool.cpp.o"
  "CMakeFiles/cb_support.dir/thread_pool.cpp.o.d"
  "libcb_support.a"
  "libcb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
