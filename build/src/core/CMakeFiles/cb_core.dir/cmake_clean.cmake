file(REMOVE_RECURSE
  "CMakeFiles/cb_core.dir/lulesh_variants.cpp.o"
  "CMakeFiles/cb_core.dir/lulesh_variants.cpp.o.d"
  "CMakeFiles/cb_core.dir/profiler.cpp.o"
  "CMakeFiles/cb_core.dir/profiler.cpp.o.d"
  "libcb_core.a"
  "libcb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
