# Empty compiler generated dependencies file for cb_core.
# This may be replaced when dependencies are built.
