
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/cb_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_blame.cpp" "tests/CMakeFiles/cb_tests.dir/test_blame.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_blame.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/cb_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_html.cpp" "tests/CMakeFiles/cb_tests.dir/test_html.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_html.cpp.o.d"
  "/root/repo/tests/test_interp.cpp" "tests/CMakeFiles/cb_tests.dir/test_interp.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_interp.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/cb_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_lexer.cpp" "tests/CMakeFiles/cb_tests.dir/test_lexer.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_lexer.cpp.o.d"
  "/root/repo/tests/test_log_io.cpp" "tests/CMakeFiles/cb_tests.dir/test_log_io.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_log_io.cpp.o.d"
  "/root/repo/tests/test_lower.cpp" "tests/CMakeFiles/cb_tests.dir/test_lower.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_lower.cpp.o.d"
  "/root/repo/tests/test_main.cpp" "tests/CMakeFiles/cb_tests.dir/test_main.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_main.cpp.o.d"
  "/root/repo/tests/test_parallel_postmortem.cpp" "tests/CMakeFiles/cb_tests.dir/test_parallel_postmortem.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_parallel_postmortem.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/cb_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_postmortem.cpp" "tests/CMakeFiles/cb_tests.dir/test_postmortem.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_postmortem.cpp.o.d"
  "/root/repo/tests/test_profiler.cpp" "tests/CMakeFiles/cb_tests.dir/test_profiler.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_profiler.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/cb_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/cb_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_sampling.cpp" "tests/CMakeFiles/cb_tests.dir/test_sampling.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_sampling.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/cb_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/cb_tests.dir/test_support.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/cb_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/cb_report.dir/DependInfo.cmake"
  "/root/repo/build/src/postmortem/CMakeFiles/cb_postmortem.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/cb_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cb_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
