# Empty compiler generated dependencies file for cb_tests.
# This may be replaced when dependencies are built.
