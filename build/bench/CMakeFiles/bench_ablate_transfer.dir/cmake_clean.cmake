file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_transfer.dir/bench_ablate_transfer.cpp.o"
  "CMakeFiles/bench_ablate_transfer.dir/bench_ablate_transfer.cpp.o.d"
  "bench_ablate_transfer"
  "bench_ablate_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
