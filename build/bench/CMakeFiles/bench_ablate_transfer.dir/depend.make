# Empty dependencies file for bench_ablate_transfer.
# This may be replaced when dependencies are built.
