file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_pprof.dir/bench_fig4_pprof.cpp.o"
  "CMakeFiles/bench_fig4_pprof.dir/bench_fig4_pprof.cpp.o.d"
  "bench_fig4_pprof"
  "bench_fig4_pprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
