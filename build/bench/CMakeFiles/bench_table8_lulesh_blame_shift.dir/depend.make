# Empty dependencies file for bench_table8_lulesh_blame_shift.
# This may be replaced when dependencies are built.
