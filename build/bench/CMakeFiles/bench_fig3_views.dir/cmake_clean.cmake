file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_views.dir/bench_fig3_views.cpp.o"
  "CMakeFiles/bench_fig3_views.dir/bench_fig3_views.cpp.o.d"
  "bench_fig3_views"
  "bench_fig3_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
