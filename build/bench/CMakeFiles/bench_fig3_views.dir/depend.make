# Empty dependencies file for bench_fig3_views.
# This may be replaced when dependencies are built.
