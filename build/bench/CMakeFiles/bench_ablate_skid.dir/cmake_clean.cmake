file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_skid.dir/bench_ablate_skid.cpp.o"
  "CMakeFiles/bench_ablate_skid.dir/bench_ablate_skid.cpp.o.d"
  "bench_ablate_skid"
  "bench_ablate_skid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_skid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
