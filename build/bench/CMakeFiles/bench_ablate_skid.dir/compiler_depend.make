# Empty compiler generated dependencies file for bench_ablate_skid.
# This may be replaced when dependencies are built.
