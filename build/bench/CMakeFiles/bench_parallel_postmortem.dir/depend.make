# Empty dependencies file for bench_parallel_postmortem.
# This may be replaced when dependencies are built.
