file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_postmortem.dir/bench_parallel_postmortem.cpp.o"
  "CMakeFiles/bench_parallel_postmortem.dir/bench_parallel_postmortem.cpp.o.d"
  "bench_parallel_postmortem"
  "bench_parallel_postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
