
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_parallel_postmortem.cpp" "bench/CMakeFiles/bench_parallel_postmortem.dir/bench_parallel_postmortem.cpp.o" "gcc" "bench/CMakeFiles/bench_parallel_postmortem.dir/bench_parallel_postmortem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/cb_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/cb_report.dir/DependInfo.cmake"
  "/root/repo/build/src/postmortem/CMakeFiles/cb_postmortem.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/cb_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cb_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
