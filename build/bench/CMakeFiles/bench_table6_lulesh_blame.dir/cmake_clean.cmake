file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_lulesh_blame.dir/bench_table6_lulesh_blame.cpp.o"
  "CMakeFiles/bench_table6_lulesh_blame.dir/bench_table6_lulesh_blame.cpp.o.d"
  "bench_table6_lulesh_blame"
  "bench_table6_lulesh_blame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_lulesh_blame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
