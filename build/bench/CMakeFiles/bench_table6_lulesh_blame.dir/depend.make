# Empty dependencies file for bench_table6_lulesh_blame.
# This may be replaced when dependencies are built.
