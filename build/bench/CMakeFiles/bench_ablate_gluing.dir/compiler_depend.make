# Empty compiler generated dependencies file for bench_ablate_gluing.
# This may be replaced when dependencies are built.
