file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_gluing.dir/bench_ablate_gluing.cpp.o"
  "CMakeFiles/bench_ablate_gluing.dir/bench_ablate_gluing.cpp.o.d"
  "bench_ablate_gluing"
  "bench_ablate_gluing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_gluing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
