# Empty dependencies file for bench_table5_clomp_speedup.
# This may be replaced when dependencies are built.
