# Empty dependencies file for bench_table4_clomp_blame.
# This may be replaced when dependencies are built.
