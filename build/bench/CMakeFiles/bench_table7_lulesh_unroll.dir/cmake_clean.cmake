file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_lulesh_unroll.dir/bench_table7_lulesh_unroll.cpp.o"
  "CMakeFiles/bench_table7_lulesh_unroll.dir/bench_table7_lulesh_unroll.cpp.o.d"
  "bench_table7_lulesh_unroll"
  "bench_table7_lulesh_unroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_lulesh_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
