# Empty compiler generated dependencies file for bench_table7_lulesh_unroll.
# This may be replaced when dependencies are built.
