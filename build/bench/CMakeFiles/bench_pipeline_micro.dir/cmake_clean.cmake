file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline_micro.dir/bench_pipeline_micro.cpp.o"
  "CMakeFiles/bench_pipeline_micro.dir/bench_pipeline_micro.cpp.o.d"
  "bench_pipeline_micro"
  "bench_pipeline_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
