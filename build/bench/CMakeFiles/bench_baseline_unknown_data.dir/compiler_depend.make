# Empty compiler generated dependencies file for bench_baseline_unknown_data.
# This may be replaced when dependencies are built.
