file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_unknown_data.dir/bench_baseline_unknown_data.cpp.o"
  "CMakeFiles/bench_baseline_unknown_data.dir/bench_baseline_unknown_data.cpp.o.d"
  "bench_baseline_unknown_data"
  "bench_baseline_unknown_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_unknown_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
