file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_minimd_blame.dir/bench_table2_minimd_blame.cpp.o"
  "CMakeFiles/bench_table2_minimd_blame.dir/bench_table2_minimd_blame.cpp.o.d"
  "bench_table2_minimd_blame"
  "bench_table2_minimd_blame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_minimd_blame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
