# Empty dependencies file for bench_table2_minimd_blame.
# This may be replaced when dependencies are built.
