# Empty dependencies file for bench_table9_lulesh_speedup.
# This may be replaced when dependencies are built.
