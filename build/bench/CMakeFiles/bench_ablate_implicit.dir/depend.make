# Empty dependencies file for bench_ablate_implicit.
# This may be replaced when dependencies are built.
