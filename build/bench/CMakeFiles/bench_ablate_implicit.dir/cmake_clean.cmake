file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_implicit.dir/bench_ablate_implicit.cpp.o"
  "CMakeFiles/bench_ablate_implicit.dir/bench_ablate_implicit.cpp.o.d"
  "bench_ablate_implicit"
  "bench_ablate_implicit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_implicit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
