file(REMOVE_RECURSE
  "CMakeFiles/clomp_study.dir/clomp_study.cpp.o"
  "CMakeFiles/clomp_study.dir/clomp_study.cpp.o.d"
  "clomp_study"
  "clomp_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clomp_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
