# Empty dependencies file for clomp_study.
# This may be replaced when dependencies are built.
