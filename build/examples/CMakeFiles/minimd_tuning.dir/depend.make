# Empty dependencies file for minimd_tuning.
# This may be replaced when dependencies are built.
