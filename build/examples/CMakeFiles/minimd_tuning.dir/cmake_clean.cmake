file(REMOVE_RECURSE
  "CMakeFiles/minimd_tuning.dir/minimd_tuning.cpp.o"
  "CMakeFiles/minimd_tuning.dir/minimd_tuning.cpp.o.d"
  "minimd_tuning"
  "minimd_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimd_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
