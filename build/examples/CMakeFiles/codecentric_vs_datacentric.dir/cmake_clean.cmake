file(REMOVE_RECURSE
  "CMakeFiles/codecentric_vs_datacentric.dir/codecentric_vs_datacentric.cpp.o"
  "CMakeFiles/codecentric_vs_datacentric.dir/codecentric_vs_datacentric.cpp.o.d"
  "codecentric_vs_datacentric"
  "codecentric_vs_datacentric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codecentric_vs_datacentric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
