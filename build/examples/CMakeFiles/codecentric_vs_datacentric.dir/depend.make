# Empty dependencies file for codecentric_vs_datacentric.
# This may be replaced when dependencies are built.
