# Empty dependencies file for profile_program.
# This may be replaced when dependencies are built.
