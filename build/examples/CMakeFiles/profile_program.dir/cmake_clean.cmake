file(REMOVE_RECURSE
  "CMakeFiles/profile_program.dir/profile_program.cpp.o"
  "CMakeFiles/profile_program.dir/profile_program.cpp.o.d"
  "profile_program"
  "profile_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
