// Regenerates the paper's Fig. 4: the gperftools pprof --text profile of
// LULESH. The expected shape: __sched_yield dominates (the paper: "time
// spent in this function is often due to load imbalance or lack of
// parallelism elsewhere"), runtime/task frames fill most of the top ten,
// and the only recognizable user function (CalcElemNodeNormals) sits in
// the low single digits.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace cb;
  bench::printHeader("Fig. 4 — pprof profile output of LULESH");

  Profiler p = bench::profileAsset("lulesh");
  std::printf("%s", p.pprofText("lulesh").c_str());

  std::printf("\nPaper's Fig. 4 (for comparison):\n");
  std::printf("   14180 79.0%% 79.0%%    14180 79.0%% __sched_yield\n");
  std::printf("     829  4.6%% 83.7%%      959  5.3%% coforall_fn_chpl22\n");
  std::printf("     691  3.9%% 87.5%%      691  3.9%% __pthread_setcancelstate\n");
  std::printf("     216  1.2%% 88.7%%      216  1.2%% atomic_fetch_add_explicit__real64\n");
  std::printf("     163  0.9%% 89.6%%      164  0.9%% coforall_fn_chpl38\n");
  std::printf("     160  0.9%% 90.5%%      164  1.5%% CalcElemNodeNormals_chpl\n");
  return 0;
}
