// Regenerates the paper's Table IV: profiling result for CLOMP, including
// the hierarchical "->" sub-object rows.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace cb;
  bench::printHeader("Table IV — CLOMP variables and their blame");

  Profiler p = bench::profileAsset("clomp");

  struct Row {
    const char* name;
    const char* paper;
    const char* paperContext;
  };
  const Row rows[] = {
      {"partArray", "99.5%", "main"},
      {"->partArray[i]", "99.5%", "main"},
      {"->partArray[i].zoneArray[j]", "99.0%", "main"},
      {"->partArray[i].zoneArray[j].value", "99.0%", "main"},
      {"->partArray[i].residue", "12.3%", "main"},
      {"remaining_deposit", "11.8%", "update_part"},
  };

  TextTable t({"Name", "Blame (measured)", "Blame (paper)", "Context"});
  for (const Row& r : rows) {
    const pm::VariableBlame* row = p.blameReport()->find(r.name);
    t.addRow({r.name, bench::blameOf(p, r.name), r.paper, row ? row->context : "-"});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nFull top rows:\n%s", p.dataCentricText().c_str());
  return 0;
}
