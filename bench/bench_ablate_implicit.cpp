// Ablation: implicit (control-dependence) blame transfer ON vs OFF.
// Without it, condition statements stop blaming the variables they guard
// (Table I's `a` loses line 18) and loop indices stop transferring blame
// into loop bodies — exactly the information §IV.A argues is essential.
#include <cstdio>

#include "bench_common.h"

namespace {

cb::Profiler profileWith(const std::string& program, bool implicitOn) {
  cb::Profiler p;
  p.options().blame.implicitTransfer = implicitOn;
  p.options().run.sampleThreshold = program == "example" ? 7 : 9973;
  if (!p.profileFile(cb::assetProgram(program))) {
    std::fprintf(stderr, "%s\n", p.lastError().c_str());
    std::exit(1);
  }
  return p;
}

}  // namespace

int main() {
  using namespace cb;
  bench::printHeader("Ablation — implicit (control-dependence) transfer on/off");

  {
    Profiler on = profileWith("example", true);
    Profiler off = profileWith("example", false);
    const ir::Module& m = on.compilation()->module();
    auto lines = [&](const Profiler& p, const char* name) {
      const an::FunctionBlame& fb = p.moduleBlame()->fn(m.mainFunc);
      for (an::EntityId e = 0; e < fb.entities.size(); ++e) {
        if (fb.entities[e].displayName != name) continue;
        std::string out;
        for (uint32_t l : fb.blameLines(p.compilation()->module(), e)) {
          if (l < 16 || l > 20) continue;
          out += (out.empty() ? "" : ", ") + std::to_string(l);
        }
        return out;
      }
      return std::string("-");
    };
    TextTable t({"Fig. 1 variable", "blame lines (implicit ON)", "blame lines (implicit OFF)"});
    for (const char* v : {"a", "b", "c"}) t.addRow({v, lines(on, v), lines(off, v)});
    std::printf("%s", t.render().c_str());
    std::printf("Expected: with implicit OFF, 'a' and 'c' lose the condition line 18.\n\n");
  }

  {
    Profiler on = profileWith("clomp", true);
    Profiler off = profileWith("clomp", false);
    TextTable t({"CLOMP variable", "implicit ON", "implicit OFF"});
    for (const char* v :
         {"->partArray[i].zoneArray[j].value", "remaining_deposit", "deposit", "j"})
      t.addRow({v, bench::blameOf(on, v), bench::blameOf(off, v)});
    std::printf("%s", t.render().c_str());
    std::printf("Expected: loop-dependent variables lose the loop-control share.\n");
  }
  return 0;
}
