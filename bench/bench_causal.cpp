// Causal what-if profiler gate (LULESH):
//   - overhead: per-site cycle tracking (RunOptions::trackCausalSites) plus
//     the causal analysis itself must cost < 10% host time over the plain
//     post-mortem pipeline (the paper's "always-on" bar for a profiling
//     feature you leave enabled);
//   - oracle: for the top blamed variable and k in {2, 4}, the schedule
//     replay's predicted cycle count must equal a ground-truth re-run with
//     that variable's charges divided by k, on both engines.
// Non-zero exit on either violation, so CI catches both cost and
// correctness regressions. The predicted-vs-actual rows feed EXPERIMENTS.md.
#include <chrono>
#include <cstdio>

#include "analysis/causal.h"
#include "bench_common.h"

using Clock = std::chrono::steady_clock;

namespace {

/// Host milliseconds for run() + postProcess() on a fresh Profiler (the
/// compile + analyze phases are shared setup and excluded: per-site
/// tracking cannot affect them).
double pipelineMs(const cb::Profiler& compiled, bool trackSites, bool causal) {
  cb::Profiler p;
  p.options() = compiled.options();
  p.options().run.trackCausalSites = trackSites;
  p.attachProgram(compiled.sharedCompilation(), compiled.sharedModuleBlame(),
                  compiled.programKey());
  auto t0 = Clock::now();
  if (!p.run() || !p.postProcess()) {
    std::fprintf(stderr, "bench_causal: pipeline failed: %s\n", p.lastError().c_str());
    std::exit(1);
  }
  if (causal && !p.causalReport().ok) {
    std::fprintf(stderr, "bench_causal: causal analysis failed\n");
    std::exit(1);
  }
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  using namespace cb;
  bench::printHeader("causal what-if profiler — overhead + oracle gate (LULESH)");

  Profiler compiled;
  compiled.options().run.sampleThreshold = 9973;
  if (!compiled.compileFile(assetProgram("lulesh")) || !compiled.analyze()) {
    std::fprintf(stderr, "bench_causal: compile/analyze failed: %s\n",
                 compiled.lastError().c_str());
    return 1;
  }

  // Best-of-5 per configuration to damp scheduler noise (min-of-N converges
  // on the true floor under one-sided load spikes); alternate the order so
  // neither side systematically benefits from a warm cache, and throw away
  // one warmup round so frequency scaling and cold caches hit neither.
  pipelineMs(compiled, false, false);
  double plain = 1e300, causal = 1e300;
  for (int i = 0; i < 5; ++i) {
    plain = std::min(plain, pipelineMs(compiled, false, false));
    causal = std::min(causal, pipelineMs(compiled, true, true));
  }
  double overheadPct = plain > 0 ? (causal - plain) / plain * 100.0 : 0.0;
  std::printf("plain post-mortem:   %8.1f ms\n", plain);
  std::printf("causal post-mortem:  %8.1f ms  (per-site tracking + critical path + what-if)\n",
              causal);
  std::printf("overhead:            %8.1f %%  (gate: < 10%%)\n\n", overheadPct);

  // Oracle gate: predictions vs ground-truth scaled re-runs.
  Profiler p;
  p.options() = compiled.options();
  p.options().run.trackCausalSites = true;
  p.attachProgram(compiled.sharedCompilation(), compiled.sharedModuleBlame(),
                  compiled.programKey());
  if (!p.run() || !p.postProcess()) {
    std::fprintf(stderr, "bench_causal: profiling failed: %s\n", p.lastError().c_str());
    return 1;
  }
  const sampling::RunLog& log = p.runResult()->log;
  an::causal::Timeline tl = an::causal::buildTimeline(log);
  if (!tl.ok) {
    std::fprintf(stderr, "bench_causal: timeline reconstruction failed: %s\n",
                 tl.error.c_str());
    return 1;
  }
  std::vector<pm::VariableSiteSet> rows =
      pm::attributionSites(*p.moduleBlame(), *p.instances(), p.options().attribution);
  const pm::VariableSiteSet* top = nullptr;
  for (const pm::VariableSiteSet& r : rows)
    if (!r.sites.empty()) {
      top = &r;
      break;
    }
  if (!top) {
    std::fprintf(stderr, "bench_causal: no attributed sites\n");
    return 1;
  }

  std::printf("oracle — variable `%s` (%s), %zu sites, %llu total cycles:\n",
              top->name.c_str(), top->context.c_str(), top->sites.size(),
              static_cast<unsigned long long>(log.totalCycles));
  bool diverged = false;
  for (size_t factorIdx : {size_t{1}, size_t{2}}) {  // k = 2, k = 4
    uint64_t predicted = an::causal::predictTotal(log, tl, top->sites, factorIdx);
    rt::RunOptions o = p.options().run;
    o.causalScale.sites = top->sites;
    o.causalScale.num = an::causal::kFactors[factorIdx].num;
    o.causalScale.den = an::causal::kFactors[factorIdx].den;
    rt::RunResult bytecode = rt::execute(p.compilation()->module(), o);
    o.referenceInterp = true;
    rt::RunResult reference = rt::execute(p.compilation()->module(), o);
    if (!bytecode.ok || !reference.ok) {
      std::fprintf(stderr, "bench_causal: scaled re-run failed\n");
      return 1;
    }
    bool exact =
        predicted == bytecode.totalCycles && predicted == reference.totalCycles;
    std::printf("  k=%-4s predicted %llu  bytecode %llu  reference %llu  %s\n",
                an::causal::factorName(an::causal::kFactors[factorIdx]).c_str(),
                static_cast<unsigned long long>(predicted),
                static_cast<unsigned long long>(bytecode.totalCycles),
                static_cast<unsigned long long>(reference.totalCycles),
                exact ? "exact" : "DIVERGED");
    diverged = diverged || !exact;
  }

  if (diverged) {
    std::fprintf(stderr, "bench_causal: FAIL — prediction diverged from ground truth\n");
    return 1;
  }
  if (overheadPct >= 10.0) {
    std::fprintf(stderr, "bench_causal: FAIL — %.1f%% causal overhead exceeds the 10%% gate\n",
                 overheadPct);
    return 1;
  }
  std::printf("\nPASS: oracle exact, overhead %.1f%% < 10%%\n", overheadPct);
  return 0;
}
