// google-benchmark microbenchmarks of the profiler pipeline stages:
// lexing, parsing, full compilation, static blame analysis, monitored
// execution, trace consolidation and blame attribution. These measure the
// tool itself (host time), not the virtual workloads.
#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>

#include "analysis/blame.h"
#include "core/profiler.h"
#include "frontend/compiler.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "postmortem/attribution.h"
#include "postmortem/instance.h"
#include "runtime/interp.h"
#include "support/interner.h"

namespace {

std::string loadAsset(const std::string& name) {
  std::ifstream in(cb::assetProgram(name));
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void BM_Lex(benchmark::State& state) {
  std::string src = loadAsset("lulesh");
  for (auto _ : state) {
    cb::SourceManager sm;
    uint32_t f = sm.addBuffer("lulesh.chpl", src);
    cb::DiagnosticEngine diags(sm);
    cb::fe::Lexer lexer(sm, f, diags);
    benchmark::DoNotOptimize(lexer.lexAll());
  }
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  std::string src = loadAsset("lulesh");
  for (auto _ : state) {
    cb::SourceManager sm;
    uint32_t f = sm.addBuffer("lulesh.chpl", src);
    cb::DiagnosticEngine diags(sm);
    cb::fe::Lexer lexer(sm, f, diags);
    cb::fe::Parser parser(lexer.lexAll(), diags, f);
    benchmark::DoNotOptimize(parser.parseProgram());
  }
}
BENCHMARK(BM_Parse);

void BM_CompileToIR(benchmark::State& state) {
  std::string src = loadAsset("lulesh");
  for (auto _ : state) {
    auto c = cb::fe::Compilation::fromString("lulesh.chpl", src);
    benchmark::DoNotOptimize(c->ok());
  }
}
BENCHMARK(BM_CompileToIR);

void BM_BlameAnalysis(benchmark::State& state) {
  auto c = cb::fe::Compilation::fromString("lulesh.chpl", loadAsset("lulesh"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cb::an::analyzeModule(c->module()));
  }
}
BENCHMARK(BM_BlameAnalysis);

void BM_MonitoredExecution(benchmark::State& state) {
  auto c = cb::fe::Compilation::fromString("clomp.chpl", loadAsset("clomp"));
  cb::rt::RunOptions opts;
  opts.sampleThreshold = 9973;
  opts.configOverrides["CLOMP_numParts"] = "16";
  opts.configOverrides["CLOMP_zonesPerPart"] = "64";
  opts.configOverrides["CLOMP_timeScale"] = "1";
  for (auto _ : state) {
    cb::rt::RunResult r = cb::rt::execute(c->module(), opts);
    benchmark::DoNotOptimize(r.totalCycles);
    state.counters["MIPS(virtual)"] = benchmark::Counter(
        static_cast<double>(r.instructionsExecuted), benchmark::Counter::kIsRate,
        benchmark::Counter::kIs1000);
  }
}
BENCHMARK(BM_MonitoredExecution);

void BM_ConsolidateAndAttribute(benchmark::State& state) {
  cb::Profiler p;
  p.options().run.sampleThreshold = 997;
  if (!p.compileFile(cb::assetProgram("clomp"))) return;
  p.options().run.configOverrides["CLOMP_timeScale"] = "1";
  p.analyze();
  p.run();
  const auto& m = p.compilation()->module();
  for (auto _ : state) {
    auto instances = cb::pm::consolidate(m, p.runResult()->log);
    auto report = cb::pm::attribute(*p.moduleBlame(), instances);
    benchmark::DoNotOptimize(report.rows.size());
    state.counters["samples/s"] = benchmark::Counter(
        static_cast<double>(instances.size()), benchmark::Counter::kIsRate);
  }
}
BENCHMARK(BM_ConsolidateAndAttribute);

// Symbol-interner churn under attribution-like load: the same entity-path
// strings interned over and over (the hot pattern in Attributor). The arena
// + transparent-lookup interner answers repeats without allocating; pass
// `--benchmark_filter=InternChurn` to compare against the pre-arena
// baseline recorded in EXPERIMENTS.md.
void BM_InternChurn(benchmark::State& state) {
  std::vector<std::string> names;
  for (int v = 0; v < 64; ++v)
    for (const char* field : {"", ".zoneArray", ".zoneArray[j]", ".firstZone", ".mass"})
      names.push_back("partArray[" + std::to_string(v) + "]" + field);
  size_t i = 0;
  for (auto _ : state) {
    cb::StringInterner syms;
    syms.reserve(names.size());
    // 16 repeat rounds ~ one attribution pass re-resolving hot rows.
    for (int round = 0; round < 16; ++round)
      for (const std::string& n : names) benchmark::DoNotOptimize(syms.intern(n));
    benchmark::DoNotOptimize(syms.approxMemoryBytes());
    i += names.size() * 16;
  }
  state.counters["interns/s"] =
      benchmark::Counter(static_cast<double>(i), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InternChurn);

}  // namespace

BENCHMARK_MAIN();
