// Regenerates the paper's Table VII: LULESH loop-unrolling variants.
// 'P k' keeps the `param` keyword only at location k; 'U k' is manual
// unrolling at location k — identical IR to 'P k' in this reproduction, so
// P1+U2 == P1+P2 etc. (the paper's P-vs-U differences are within its
// run-to-run variance).
#include <cstdio>

#include "bench_common.h"
#include "core/lulesh_variants.h"

int main() {
  using namespace cb;
  bench::printHeader("Table VII — LULESH loop-unrolling variants");

  struct Row {
    const char* tag;
    LuleshVariant v;
    const char* paper;
  };
  const Row rows[] = {
      {"Original", {true, true, true, false, false}, "1.00"},
      {"0 params", {false, false, false, false, false}, "1.04"},
      {"P 1", {true, false, false, false, false}, "1.07"},
      {"P 2", {false, true, false, false, false}, "0.96"},
      {"P 3", {false, false, true, false, false}, "1.06"},
      {"P1+P2", {true, true, false, false, false}, "0.99"},
      {"P1+P3", {true, false, true, false, false}, "1.05"},
      {"P2+P3", {false, true, true, false, false}, "0.99"},
      {"P1+U2", {true, true, false, false, false}, "1.03"},
      {"P1+U3", {true, false, true, false, false}, "1.01"},
      {"P1+U2+U3", {true, true, true, false, false}, "0.98"},
  };

  uint64_t orig = bench::runtimeCyclesSource(luleshSource(rows[0].v));
  TextTable t({"Unrolling tag", "Run time (cycles)", "Speedup", "Paper speedup"});
  for (const Row& r : rows) {
    uint64_t cycles = bench::runtimeCyclesSource(luleshSource(r.v));
    double speedup = static_cast<double>(orig) / static_cast<double>(cycles);
    t.addRow({r.tag, std::to_string(cycles), formatFixed(speedup, 3), r.paper});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
