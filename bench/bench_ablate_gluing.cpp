// Ablation: spawn-trace gluing ON vs OFF. Without gluing, samples taken in
// worker tasks have no user-code calling context — the failure the paper
// attributes to HPCToolkit on Chapel ("it does not associate the work
// offloaded to worker threads to the full calling context it came from").
#include <cstdio>

#include "bench_common.h"

namespace {

cb::Profiler profileWith(bool glue) {
  cb::Profiler p;
  p.options().consolidate.glueSpawns = glue;
  p.options().run.sampleThreshold = 9973;
  if (!p.profileFile(cb::assetProgram("minimd"))) {
    std::fprintf(stderr, "%s\n", p.lastError().c_str());
    std::exit(1);
  }
  return p;
}

double inclusiveOf(const cb::rpt::CodeCentricReport& r, const std::string& fn) {
  for (const auto& row : r.rows)
    if (row.function == fn)
      return 100.0 * static_cast<double>(row.inclusive) /
             static_cast<double>(r.totalSamples ? r.totalSamples : 1);
  return 0.0;
}

}  // namespace

int main() {
  using namespace cb;
  bench::printHeader("Ablation — pre/post-spawn stack gluing on/off (MiniMD)");

  Profiler on = profileWith(true);
  Profiler off = profileWith(false);

  TextTable t({"Measure", "gluing ON", "gluing OFF"});
  t.addRow({"inclusive % of buildNeighbors",
            formatFixed(inclusiveOf(*on.codeReport(), "buildNeighbors"), 1) + "%",
            formatFixed(inclusiveOf(*off.codeReport(), "buildNeighbors"), 1) + "%"});
  t.addRow({"inclusive % of computeForce",
            formatFixed(inclusiveOf(*on.codeReport(), "computeForce"), 1) + "%",
            formatFixed(inclusiveOf(*off.codeReport(), "computeForce"), 1) + "%"});
  t.addRow({"inclusive % of main", formatFixed(inclusiveOf(*on.codeReport(), "main"), 1) + "%",
            formatFixed(inclusiveOf(*off.codeReport(), "main"), 1) + "%"});
  t.addRow({"blame of Count", bench::blameOf(on, "Count"), bench::blameOf(off, "Count")});
  t.addRow({"blame of binSpace", bench::blameOf(on, "binSpace"), bench::blameOf(off, "binSpace")});
  std::printf("%s", t.render().c_str());
  std::printf(
      "Expected: without gluing, worker samples never reach the user functions\n"
      "that spawned them, so inclusive attribution of user code collapses and\n"
      "domain/global variables lose their call-path credit.\n");
  return 0;
}
