// Profiling-as-a-service throughput: the acceptance gate for the resident
// daemon + analysis cache + streaming ingestion stack.
//
// Emits one JSON object (the CI timing-smoke artifact) and exits non-zero
// when any acceptance bar fails:
//   - warm analysis (resident tier) is >= 5x faster than cold
//     compile+analyze on an analysis-heavy synthetic module, and the disk
//     tier's warm profile skips the blame fixpoint (cache hit observed)
//     with a bit-identical report;
//   - the streaming post-mortem ingests a log ~100x larger than its decode
//     buffer within a fixed memory budget (decode buffer + accumulator),
//     producing the batch report bit for bit;
//   - a resident cb-serve daemon answers 1/2/4/8 concurrent clients with
//     responses bit-identical to local runJob for the same argv.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cache/analysis_cache.h"
#include "postmortem/streaming.h"
#include "sampling/log_io.h"
#include "service/client.h"
#include "service/job.h"
#include "service/server.h"
#include "support/rng.h"

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double peakRssMb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

// Analysis-heavy synthetic program: a deep caller-before-callee chain with
// dense intra-function def-use edges, the worst case for the blame fixpoint
// (same generator family as bench_analysis_scale), with a trivial main so
// compile+analyze dominates end-to-end cost.
std::string makeAnalysisHeavyModule(int numFuncs, int chainLen, int extraEdges) {
  cb::Rng rng(0x5CCBE4Cull);
  std::ostringstream out;
  for (int f = 0; f < numFuncs; ++f) {
    out << "proc f" << f << "(ref x: real) {\n";
    for (int v = 1; v <= chainLen; ++v)
      out << "  var v" << v << " = " << (v == 1 ? "x" : "v" + std::to_string(v - 1))
          << " + 1.0;\n";
    for (int e = 0; e < extraEdges; ++e) {
      int a = 1 + static_cast<int>(rng.nextBounded(static_cast<uint64_t>(chainLen)));
      int b = 1 + static_cast<int>(rng.nextBounded(static_cast<uint64_t>(chainLen)));
      if (a == b) continue;
      out << "  v" << a << " = v" << b << " * 0.5;\n";
    }
    out << "  x = v1;\n";
    if (f + 1 < numFuncs) out << "  f" << f + 1 << "(x);\n";
    out << "}\n";
  }
  out << "proc main() {\n  var acc = 0.0;\n  f0(acc);\n  writeln(acc);\n}\n";
  return out.str();
}

}  // namespace

int main() {
  bool ok = true;

  // -------------------------------------------------------------------
  // 1. Cold vs warm analysis: disk tier and resident tier.
  // -------------------------------------------------------------------
  const std::string src = makeAnalysisHeavyModule(40, 24, 48);
  const std::string cacheDir =
      std::filesystem::temp_directory_path().string() + "/cb_bench_cache";
  std::filesystem::remove_all(cacheDir);

  cb::ProfileOptions copts;
  copts.cacheDir = cacheDir;

  auto t0 = Clock::now();
  cb::Profiler cold(copts);
  if (!(cold.compileString("bench.chpl", src) && cold.analyze())) {
    std::fprintf(stderr, "bench: cold analysis failed: %s\n", cold.lastError().c_str());
    return 1;
  }
  double coldMs = msSince(t0);

  t0 = Clock::now();
  cb::Profiler warmDisk(copts);
  if (!(warmDisk.compileString("bench.chpl", src) && warmDisk.analyze())) {
    std::fprintf(stderr, "bench: warm analysis failed: %s\n", warmDisk.lastError().c_str());
    return 1;
  }
  double warmDiskMs = msSince(t0);
  bool diskHit = warmDisk.analysisCacheHit();

  // Resident tier: the daemon's steady state. A warm lookup re-hashes the
  // source and hands back the shared compilation+analysis, skipping parse,
  // lowering, CFG/dominators and the fixpoint entirely.
  cb::cache::ResidentProgramCache resident(8);
  {
    auto prog = std::make_shared<cb::cache::CachedProgram>();
    prog->comp = cold.sharedCompilation();
    prog->blame = cold.sharedModuleBlame();
    resident.insert(cold.programKey(), std::move(prog));
  }
  t0 = Clock::now();
  uint64_t key = cb::cache::hashProgram("bench.chpl", src, copts.compile, copts.blame);
  auto hit = resident.find(key);
  cb::Profiler warmRes(copts);
  if (hit) warmRes.attachProgram(hit->comp, hit->blame, key);
  double warmResMs = msSince(t0);
  if (!hit || !warmRes.moduleBlame()) {
    std::fprintf(stderr, "bench: resident tier missed its own entry\n");
    return 1;
  }

  // Bit-identity: the cached analysis serializes to the cold bytes.
  bool cacheBitIdentical =
      cb::cache::serializeModuleBlame(*warmDisk.moduleBlame()) ==
          cb::cache::serializeModuleBlame(*cold.moduleBlame()) &&
      cb::cache::serializeModuleBlame(*warmRes.moduleBlame()) ==
          cb::cache::serializeModuleBlame(*cold.moduleBlame());

  double speedupDisk = warmDiskMs > 0 ? coldMs / warmDiskMs : 0;
  double speedupRes = warmResMs > 0 ? coldMs / warmResMs : 0;
  constexpr double kMinWarmSpeedup = 5.0;

  // -------------------------------------------------------------------
  // 2. Streaming ingestion: large log, fixed memory, batch bit-identity.
  // -------------------------------------------------------------------
  cb::Profiler prof = cb::bench::profileAsset("minimd");
  const cb::ir::Module& m = prof.compilation()->module();
  cb::sampling::RunLog big = prof.runResult()->log;
  const int replicas = 24;
  for (int r = 1; r < replicas; ++r)
    big.samples.insert(big.samples.end(), prof.runResult()->log.samples.begin(),
                       prof.runResult()->log.samples.end());
  std::string logPath =
      std::filesystem::temp_directory_path().string() + "/cb_bench_stream.cblog";
  if (!cb::sampling::saveRunLog(big, logPath, cb::sampling::RunLogFormat::Binary)) {
    std::fprintf(stderr, "bench: cannot write %s\n", logPath.c_str());
    return 1;
  }
  uint64_t logBytes = std::filesystem::file_size(logPath);

  std::vector<cb::pm::Instance> inst = cb::pm::consolidate(m, big, {});
  cb::pm::BlameReport batch = cb::pm::attribute(*prof.moduleBlame(), inst, {});

  cb::pm::StreamingPostmortemOptions sopts;
  cb::pm::BlameReport streamed;
  cb::pm::StreamingPostmortemStats stats;
  t0 = Clock::now();
  if (!cb::pm::runPostmortemStreamingFile(m, prof.moduleBlame(), logPath, sopts, streamed,
                                          nullptr, &stats)) {
    std::fprintf(stderr, "bench: streaming post-mortem failed on %s\n", logPath.c_str());
    return 1;
  }
  double streamMs = msSince(t0);
  std::filesystem::remove(logPath);

  bool streamBitIdentical = streamed == batch;
  // Fixed budget: decode window + accumulator must stay under 8 MiB while
  // the log itself is tens of MiB.
  constexpr size_t kStreamBudgetBytes = 8ull * 1024 * 1024;
  size_t streamFootprint = stats.decodeBufferBytes + stats.peakAccumulatorBytes;
  bool streamBounded = streamFootprint <= kStreamBudgetBytes &&
                       logBytes > 4 * (uint64_t)stats.decodeBufferBytes;

  // -------------------------------------------------------------------
  // 3. Served vs local: concurrent soak at widths 1/2/4/8.
  // -------------------------------------------------------------------
  const std::vector<std::vector<std::string>> jobs = {
      {"minimd", "--view", "data"},
      {"example", "--view", "data"},
      {"minimd", "--view", "code"},
  };
  std::vector<cb::svc::JobResult> expected;
  for (const auto& argv : jobs) expected.push_back(cb::svc::runJob(argv));

  struct SoakRow {
    uint32_t width;
    uint32_t requests;
    double ms;
    bool identical;
  };
  std::vector<SoakRow> soak;
  bool servedIdentical = true;
  for (uint32_t width : {1u, 2u, 4u, 8u}) {
    cb::svc::ServerOptions so;
    so.socketPath = std::filesystem::temp_directory_path().string() + "/cb_bench_" +
                    std::to_string(width) + ".sock";
    std::filesystem::remove(so.socketPath);
    so.workers = width;
    cb::svc::Server server(so);
    if (!server.start()) {
      std::fprintf(stderr, "bench: daemon failed to start: %s\n",
                   server.lastError().c_str());
      return 1;
    }
    uint32_t requests = 2 * width;
    std::vector<std::thread> clients;
    std::vector<bool> match(requests, false);
    t0 = Clock::now();
    for (uint32_t i = 0; i < requests; ++i)
      clients.emplace_back([&, i] {
        const auto& argv = jobs[i % jobs.size()];
        const cb::svc::JobResult& want = expected[i % jobs.size()];
        cb::svc::ClientResult got = cb::svc::runRemote(so.socketPath, argv);
        match[i] = got.ok && got.job.exitCode == want.exitCode &&
                   got.job.out == want.out && got.job.err == want.err;
      });
    for (auto& t : clients) t.join();
    double ms = msSince(t0);
    server.stop();
    bool all = true;
    for (bool b : match) all = all && b;
    servedIdentical = servedIdentical && all;
    soak.push_back({width, requests, ms, all});
  }

  // -------------------------------------------------------------------
  // Report + gates.
  // -------------------------------------------------------------------
  std::printf("{\n");
  std::printf("  \"analysis_cache\": {\"cold_ms\": %.2f, \"warm_disk_ms\": %.2f, "
              "\"warm_resident_ms\": %.4f, \"speedup_disk\": %.1f, "
              "\"speedup_resident\": %.1f, \"disk_hit\": %s, \"bit_identical\": %s},\n",
              coldMs, warmDiskMs, warmResMs, speedupDisk, speedupRes,
              diskHit ? "true" : "false", cacheBitIdentical ? "true" : "false");
  std::printf("  \"streaming\": {\"log_bytes\": %llu, \"samples\": %llu, \"ms\": %.1f, "
              "\"decode_buffer_bytes\": %zu, \"peak_accumulator_bytes\": %zu, "
              "\"budget_bytes\": %zu, \"bit_identical\": %s},\n",
              (unsigned long long)logBytes, (unsigned long long)stats.samples, streamMs,
              stats.decodeBufferBytes, stats.peakAccumulatorBytes, kStreamBudgetBytes,
              streamBitIdentical ? "true" : "false");
  std::printf("  \"soak\": [\n");
  for (size_t i = 0; i < soak.size(); ++i)
    std::printf("    {\"width\": %u, \"requests\": %u, \"ms\": %.1f, \"jobs_per_sec\": "
                "%.1f, \"bit_identical\": %s}%s\n",
                soak[i].width, soak[i].requests, soak[i].ms,
                soak[i].requests * 1000.0 / soak[i].ms,
                soak[i].identical ? "true" : "false", i + 1 < soak.size() ? "," : "");
  std::printf("  ],\n  \"peak_rss_mb\": %.1f\n}\n", peakRssMb());

  if (!diskHit) {
    std::fprintf(stderr, "bench: warm profile did not hit the disk cache\n");
    ok = false;
  }
  if (!cacheBitIdentical) {
    std::fprintf(stderr, "bench: cached analysis diverged from cold analysis\n");
    ok = false;
  }
  if (speedupRes < kMinWarmSpeedup) {
    std::fprintf(stderr, "bench: resident warm speedup %.1fx below the %.0fx bar\n",
                 speedupRes, kMinWarmSpeedup);
    ok = false;
  }
  if (!streamBitIdentical) {
    std::fprintf(stderr, "bench: streamed report != batch report\n");
    ok = false;
  }
  if (!streamBounded) {
    std::fprintf(stderr,
                 "bench: streaming footprint %zu bytes vs budget %zu (log %llu bytes)\n",
                 streamFootprint, kStreamBudgetBytes, (unsigned long long)logBytes);
    ok = false;
  }
  if (!servedIdentical) {
    std::fprintf(stderr, "bench: served responses diverged from local runJob\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
