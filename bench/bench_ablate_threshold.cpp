// Ablation: sampling-threshold sweep. Blame percentages are sampling
// estimates; this sweep shows the estimate converging as the threshold
// shrinks (more samples) while the monitoring dataset grows linearly —
// the trade-off behind the paper's choice of a large prime threshold.
#include <cmath>
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace cb;
  bench::printHeader("Ablation — sampling threshold sweep (CLOMP, blame of partArray[i].zoneArray[j].value)");

  // Dense-sampling reference.
  Profiler ref = bench::profileAsset("clomp", false, 997);
  const pm::VariableBlame* refRow = ref.blameReport()->find("->partArray[i].zoneArray[j].value");
  double refPct = refRow ? refRow->percent : 0.0;

  TextTable t({"Threshold (cycles)", "Samples", "Blame estimate", "Error vs dense"});
  for (uint64_t threshold : {997ULL, 9973ULL, 99991ULL, 999983ULL, 9999991ULL}) {
    Profiler p = bench::profileAsset("clomp", false, threshold);
    const pm::VariableBlame* row = p.blameReport()->find("->partArray[i].zoneArray[j].value");
    double pct = row ? row->percent : 0.0;
    t.addRow({std::to_string(threshold),
              std::to_string(p.blameReport()->totalUserSamples),
              formatFixed(pct, 2) + "%", formatFixed(std::fabs(pct - refPct), 2) + "pp"});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(the paper used 608,888,809 — 'a large prime' — on multi-second runs)\n");
  return 0;
}
